package pxml_test

// Telemetry smoke test: boot the real pxmld binary with the statsd
// exporter pointed at an in-process UDP sink, drive a little traffic,
// and check that (a) the sink receives counters, gauges, and timer
// percentiles, and (b) GET /v1/metrics reports the same percentile
// timers under schema_version 1. Run directly via `make telemetry-smoke`;
// skipped with -short like the other integration tests.

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pxml"
)

func TestTelemetrySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("telemetry smoke runs the daemon; skipped with -short")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not available")
	}

	// In-process statsd stand-in: a UDP listener collecting datagrams.
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	var mu sync.Mutex
	var lines []string
	go func() {
		buf := make([]byte, 65536)
		for {
			n, _, err := pc.ReadFrom(buf)
			if err != nil {
				return
			}
			mu.Lock()
			for _, l := range strings.Split(string(buf[:n]), "\n") {
				if l != "" {
					lines = append(lines, l)
				}
			}
			mu.Unlock()
		}
	}()
	sinkText := func() string {
		mu.Lock()
		defer mu.Unlock()
		return strings.Join(lines, "\n")
	}

	dir := t.TempDir()
	bin := filepath.Join(dir, "pxmld")
	if out, err := exec.Command(goBin, "build", "-o", bin, "./cmd/pxmld").CombinedOutput(); err != nil {
		t.Fatalf("building pxmld: %v\n%s", err, out)
	}
	addr := "127.0.0.1:39482"
	cmd := exec.Command(bin,
		"-addr", addr,
		"-statsd-addr", pc.LocalAddr().String(),
		"-statsd-interval", "100ms",
		"-quiet",
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	}()
	ready := false
	for i := 0; i < 100; i++ {
		resp, err := http.Get("http://" + addr + "/v1/instances")
		if err == nil {
			resp.Body.Close()
			ready = true
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !ready {
		t.Fatal("pxmld did not start")
	}

	// Traffic: upload an instance, query it a few times so the endpoint
	// and statement-shape timers accumulate observations.
	w, err := pxml.GenerateWorkload(pxml.GenConfig{Depth: 2, Branch: 2, Labeling: pxml.SL, Seed: 11, LeafDomainSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pxml.EncodeText(&buf, w.PI); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest("PUT", "http://"+addr+"/v1/instances/gen", bytes.NewReader(buf.Bytes()))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT status %d", resp.StatusCode)
	}
	for i := 0; i < 10; i++ {
		qr, err := http.Post("http://"+addr+"/v1/instances/gen/query", "text/plain",
			strings.NewReader("PROB EXISTS R.n1"))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, qr.Body)
		qr.Body.Close()
		if qr.StatusCode != http.StatusOK {
			t.Fatalf("query status %d", qr.StatusCode)
		}
	}

	// The statsd stream must carry counters, OS gauges, and percentile
	// timers for both the HTTP endpoint and the pxql statement shape.
	wantMetrics := []string{
		"pxmld.http_requests:",
		"pxmld.os_rss_bytes:",
		"pxmld.http_latency.query.p99_ms:",
		"pxmld.http_latency.query.count:",
		"pxmld.pxql_latency.exists.p95_ms:",
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		text := sinkText()
		missing := false
		for _, want := range wantMetrics {
			if !strings.Contains(text, want) {
				missing = true
				break
			}
		}
		if !missing {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	text := sinkText()
	for _, want := range wantMetrics {
		if !strings.Contains(text, want) {
			t.Errorf("statsd sink missing %q", want)
		}
	}
	if t.Failed() {
		max := len(text)
		if max > 4000 {
			max = 4000
		}
		t.Logf("sink received:\n%s", text[:max])
	}

	// Every line is well-formed statsd: name:value|type.
	mu.Lock()
	for _, l := range lines {
		colon := strings.IndexByte(l, ':')
		pipe := strings.LastIndexByte(l, '|')
		if colon <= 0 || pipe <= colon {
			t.Errorf("malformed statsd line %q", l)
		}
		switch kind := l[pipe+1:]; kind {
		case "c", "g":
		default:
			t.Errorf("unexpected statsd type %q in line %q", kind, l)
		}
	}
	mu.Unlock()

	// /v1/metrics agrees: schema_version 1, the same timers with
	// count and percentiles, and the exporter's own delivery counters.
	mresp, err := http.Get("http://" + addr + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	var payload struct {
		SchemaVersion int                        `json:"schema_version"`
		Server        map[string]json.RawMessage `json:"server"`
		Telemetry     struct {
			Addr    string `json:"addr"`
			Flushes int64  `json:"flushes"`
		} `json:"telemetry"`
	}
	if err := json.Unmarshal(mbody, &payload); err != nil {
		t.Fatalf("decoding /v1/metrics: %v\n%s", err, mbody)
	}
	if payload.SchemaVersion != 1 {
		t.Errorf("schema_version = %d, want 1", payload.SchemaVersion)
	}
	if payload.Telemetry.Flushes < 1 {
		t.Errorf("telemetry.flushes = %d, want >= 1", payload.Telemetry.Flushes)
	}
	for _, name := range []string{"http_latency.query", "pxql_latency.exists"} {
		raw, ok := payload.Server[name]
		if !ok {
			t.Errorf("/v1/metrics missing timer %q", name)
			continue
		}
		var snap struct {
			Count int64   `json:"count"`
			P50MS float64 `json:"p50_ms"`
			P95MS float64 `json:"p95_ms"`
			P99MS float64 `json:"p99_ms"`
		}
		if err := json.Unmarshal(raw, &snap); err != nil {
			t.Fatal(err)
		}
		if snap.Count < 1 || snap.P99MS < snap.P50MS {
			t.Errorf("timer %q snapshot implausible: %+v", name, snap)
		}
	}
}

package pxml

import (
	"fmt"

	"pxml/internal/core"
	"pxml/internal/prob"
	"pxml/internal/sets"
)

// Builder assembles a probabilistic instance fluently, deferring error
// handling to Build. Every method returns the receiver; the first error
// encountered is remembered and reported by Build, which also validates
// the finished instance.
type Builder struct {
	pi  *core.ProbInstance
	err error
}

// NewBuilder starts a probabilistic instance rooted at root.
func NewBuilder(root string) *Builder {
	return &Builder{pi: core.NewProbInstance(root)}
}

// fail records the first error.
func (b *Builder) fail(err error) *Builder {
	if b.err == nil && err != nil {
		b.err = err
	}
	return b
}

// Type registers a leaf type with the given domain.
func (b *Builder) Type(name string, domain ...string) *Builder {
	return b.fail(b.pi.RegisterType(NewType(name, domain...)))
}

// Children declares lch(o, label) = kids.
func (b *Builder) Children(o, label string, kids ...string) *Builder {
	if len(kids) == 0 {
		return b.fail(fmt.Errorf("pxml: Children(%s, %s) needs at least one child", o, label))
	}
	b.pi.SetLCh(o, label, kids...)
	return b
}

// Card sets card(o, label) = [min, max].
func (b *Builder) Card(o, label string, min, max int) *Builder {
	b.pi.SetCard(o, label, min, max)
	return b
}

// OPFEntry is one (probability, child set) pair for Builder.OPF.
type OPFEntry struct {
	P    float64
	Kids []string
}

// Entry builds an OPFEntry.
func Entry(p float64, kids ...string) OPFEntry { return OPFEntry{P: p, Kids: kids} }

// OPF assigns ℘(o) from explicit entries.
func (b *Builder) OPF(o string, entries ...OPFEntry) *Builder {
	w := prob.NewOPF()
	for _, e := range entries {
		w.Add(sets.NewSet(e.Kids...), e.P)
	}
	b.pi.SetOPF(o, w)
	return b
}

// IndependentOPF assigns ℘(o) from independent per-child probabilities
// (the compact ProTDB-style form), expanded to the explicit table.
func (b *Builder) IndependentOPF(o string, probs map[string]float64) *Builder {
	iw := prob.NewIndependentOPF()
	for c, p := range probs {
		iw.Put(c, p)
	}
	if err := iw.Validate(); err != nil {
		return b.fail(err)
	}
	w, err := iw.Expand()
	if err != nil {
		return b.fail(err)
	}
	b.pi.SetOPF(o, w)
	return b
}

// SymRow is one row of a symmetric OPF table: the probability of drawing
// Counts[i] children from the i-th indistinguishability group.
type SymRow struct {
	P      float64
	Counts []int
}

// SymEntry builds a SymRow.
func SymEntry(p float64, counts ...int) SymRow { return SymRow{P: p, Counts: counts} }

// SymmetricOPF assigns ℘(o) from a count-vector table over groups of
// indistinguishable children (the Section 3.2 vehicle example), expanded
// to the explicit form.
func (b *Builder) SymmetricOPF(o string, groups [][]string, rows ...SymRow) *Builder {
	w, err := prob.NewSymmetricOPF(groups...)
	if err != nil {
		return b.fail(err)
	}
	for _, row := range rows {
		if err := w.Put(row.Counts, row.P); err != nil {
			return b.fail(err)
		}
	}
	ex, err := w.Expand()
	if err != nil {
		return b.fail(err)
	}
	b.pi.SetOPF(o, ex)
	return b
}

// Leaf assigns τ(o) = typeName (the type must have been registered).
func (b *Builder) Leaf(o, typeName string) *Builder {
	return b.fail(b.pi.SetLeafType(o, typeName))
}

// LeafValue assigns τ(o) and a certain value: a point-mass VPF plus the
// Definition 3.4 default value.
func (b *Builder) LeafValue(o, typeName, value string) *Builder {
	if err := b.pi.SetLeafType(o, typeName); err != nil {
		return b.fail(err)
	}
	if err := b.pi.SetDefaultValue(o, value); err != nil {
		return b.fail(err)
	}
	b.pi.SetVPF(o, prob.PointMass(value))
	return b
}

// VPF assigns ℘(o) for a typed leaf from a value→probability map.
func (b *Builder) VPF(o string, dist map[string]float64) *Builder {
	v := prob.NewVPF()
	for val, p := range dist {
		v.Put(val, p)
	}
	b.pi.SetVPF(o, v)
	return b
}

// Build validates and returns the instance. The builder must not be
// reused afterwards.
func (b *Builder) Build() (*ProbInstance, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.pi.Validate(); err != nil {
		return nil, err
	}
	return b.pi, nil
}

// MustBuild is Build that panics on error, for tests and fixtures.
func (b *Builder) MustBuild() *ProbInstance {
	pi, err := b.Build()
	if err != nil {
		panic(err)
	}
	return pi
}

module pxml

go 1.22

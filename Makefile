# PXML-Go build targets. Everything is stdlib Go; `go` is the only tool.

GO ?= go

.PHONY: all build check test test-short race bench bench-store fig7 fuzz vet cover clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The default verification path: compile, vet, full test suite.
check: build vet test

test:
	$(GO) test ./...

# Race-detector pass (the engine and server suites hammer shared state).
race:
	$(GO) test -race ./...

# Skips the binary-driving integration tests and large smoke tests.
test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Storage-engine benchmarks: WAL append under each fsync policy,
# recovery replay, compaction, and the binary-vs-text codec pair.
bench-store:
	$(GO) test -run '^$$' -bench . -benchmem ./internal/store
	$(GO) test -run '^$$' -bench 'Binary|Text' -benchmem ./internal/codec

# Reproduce the paper's Figure 7 panels into results/.
fig7:
	$(GO) run ./cmd/pxmlbench -panel a -instances 2 -queries 4 -csv results/fig7a.csv | tee results/fig7a.txt
	$(GO) run ./cmd/pxmlbench -panel b -instances 2 -queries 4 -csv results/fig7b.csv | tee results/fig7b.txt
	$(GO) run ./cmd/pxmlbench -panel c -instances 2 -queries 4 -csv results/fig7c.csv | tee results/fig7c.txt

# Short fuzz passes over the codecs and the path-expression parser.
fuzz:
	$(GO) test ./internal/codec -fuzz FuzzDecodeText -fuzztime 30s
	$(GO) test ./internal/codec -fuzz FuzzDecodeJSON -fuzztime 30s
	$(GO) test ./internal/codec -fuzz FuzzDecodeBinary -fuzztime 30s
	$(GO) test ./internal/pathexpr -fuzz FuzzParse -fuzztime 30s

cover:
	$(GO) test -cover ./...

clean:
	rm -f test_output.txt bench_output.txt

# PXML-Go build targets. Everything is stdlib Go; `go` is the only tool.

GO ?= go

.PHONY: all build check test test-short race bench bench-store bench-json bench-smoke fig7 fuzz fuzz-smoke faults soak soak-smoke mvcc-smoke telemetry-smoke repl-smoke failover-smoke govern-smoke vet staticcheck cover clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet. staticcheck is optional locally; CI
# installs it. Skips quietly when the binary is absent.
staticcheck:
	@command -v staticcheck >/dev/null 2>&1 && staticcheck ./... || echo "staticcheck not installed; skipping"

# The default verification path: compile, vet, full test suite.
check: build vet test

test:
	$(GO) test ./...

# Race-detector pass (the engine and server suites hammer shared state).
race:
	$(GO) test -race ./...

# Skips the binary-driving integration tests and large smoke tests.
test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Storage-engine benchmarks: WAL append under each fsync policy,
# recovery replay, compaction, and the binary-vs-text codec pair.
bench-store:
	$(GO) test -run '^$$' -bench . -benchmem ./internal/store
	$(GO) test -run '^$$' -bench 'Binary|Text' -benchmem ./internal/codec

# Benchmark trajectory baseline: run the Fig7/store/engine/codec suites
# and record ns/op, B/op, allocs/op per benchmark as JSON (schema in
# EXPERIMENTS.md) so future PRs can diff against this PR's numbers.
#
# For statistically sound before/after comparisons use benchstat
# (golang.org/x/perf/cmd/benchstat) on raw `go test -bench` output:
#   go test -run '^$$' -bench ConcurrentPut -count 10 ./internal/store > old.txt
#   ... apply the change ...
#   go test -run '^$$' -bench ConcurrentPut -count 10 ./internal/store > new.txt
#   benchstat old.txt new.txt
bench-json:
	$(GO) run ./cmd/benchjson -out results/BENCH_pr9.json

# Quick benchmark smoke for CI: a handful of iterations per benchmark,
# enough to catch perf-critical paths that stop compiling or start
# failing, without CI-grade timing noise pretending to be data.
bench-smoke:
	$(GO) run ./cmd/benchjson -benchtime 5x -out /tmp/pxml_bench_smoke.json

# Reproduce the paper's Figure 7 panels into results/.
fig7:
	$(GO) run ./cmd/pxmlbench -panel a -instances 2 -queries 4 -csv results/fig7a.csv | tee results/fig7a.txt
	$(GO) run ./cmd/pxmlbench -panel b -instances 2 -queries 4 -csv results/fig7b.csv | tee results/fig7b.txt
	$(GO) run ./cmd/pxmlbench -panel c -instances 2 -queries 4 -csv results/fig7c.csv | tee results/fig7c.txt

# Fault-injection suite: the FaultFS matrix over the store (torn WAL
# writes, failed fsyncs, snapshot rename failures, degraded mode) and
# the hardened serving path, all under the race detector.
faults:
	$(GO) test -race -run 'Fault|Torn|Degrad|Injected|Retries|Healthz|Limiter|Bypass|Panic|Deadline|CloseReports' ./internal/vfs ./internal/store ./internal/server

# Chaos soak: randomized Put/Delete traffic under randomized fault
# schedules with kill-reopen cycles and online backups, asserting zero
# acknowledged-write loss and byte-identical backup restores. Replay a
# failure with PXML_SOAK_SEED=<seed from the log>.
soak:
	PXML_SOAK_CYCLES=150 $(GO) test -race -run TestChaosSoak -v -timeout 20m ./internal/store

# Short chaos soak for CI: the same harness at the 25-cycle floor.
soak-smoke:
	PXML_SOAK_CYCLES=25 $(GO) test -race -run TestChaosSoak -v ./internal/store

# MVCC publication smoke: the epoch-catalog stress suite (point readers,
# Names/All scanners, a 16-writer storm, follower ReplApply, and a
# degraded-mode flip, all asserting monotone epochs/versions) under the
# race detector, plus the mmap/lazy-decode seams and a cold-open
# benchmark pass at GOMAXPROCS>1 to catch the lazy path regressing.
mvcc-smoke:
	$(GO) test -race -run 'TestMVCCStress|TestMapFile|TestCheckBinary|TestDecodeBinaryInterned' -v ./internal/store ./internal/vfs ./internal/codec
	$(GO) test -run '^$$' -bench 'StormRead|ColdOpen' -benchtime 20x -cpu 2 -benchmem ./internal/store

# Telemetry end-to-end smoke: boot the real pxmld with the statsd
# exporter aimed at an in-process UDP sink, drive traffic, and assert
# the sink sees counters/gauges/percentile timers and /v1/metrics
# agrees (schema_version, percentiles). Plus the exporter/admission
# unit suites under the race detector.
telemetry-smoke:
	$(GO) test -race -run TestTelemetrySmoke -v .
	$(GO) test -race ./internal/telemetry ./internal/admission ./internal/metrics

# Replication smoke: an in-process leader with two followers streaming
# its WAL through partition proxies — leader killed and restarted
# mid-run, partitions healed — asserting followers converge to the
# leader's position with zero acknowledged-write loss, plus the
# store-level streaming edge cases (rotation-boundary resume, timeline
# gaps, torn tails), all under the race detector.
repl-smoke:
	$(GO) test -race -run 'TestRepl|TestStream|TestFollower' -v ./internal/server ./internal/store

# Failover smoke: the full leader-kill/promote/fence cycle under the
# race detector — chaos failover with a writer storm across the epoch
# flip, monitor-driven auto-promotion, promote/demote endpoint
# validation, epoch-param fencing of a stale leader, and the
# store-level EPOCH persistence/fencing suite plus the fake-clock
# failover-monitor tests.
failover-smoke:
	$(GO) test -race -short -run 'TestFailover|TestPromote|TestDemote|TestFollowerEpoch|TestFence|TestEpoch|TestMonitor' -v ./internal/server ./internal/store ./internal/repl

# Governor smoke: boot the real pxmld with a query budget and circuit
# breaker, feed it width-bomb instances, and assert typed refusals
# (intractable/budget_exceeded), breaker open/half-open/reclose over
# the wire, and unaffected healthy traffic — plus the governor,
# result-cache-cancellation, and engine suites (admission, runtime
# budget trips, prompt cancellation, panic isolation, goroutine-leak
# TestMain), all under the race detector.
govern-smoke:
	$(GO) test -race -run TestGovernSmoke -v .
	$(GO) test -race ./internal/govern ./internal/rescache ./internal/engine

# Quick fuzz smoke for CI: a few seconds per fuzzer, catching gross
# decoder/parser regressions without the cost of a long campaign.
fuzz-smoke:
	$(GO) test ./internal/codec -run '^$$' -fuzz FuzzDecodeBinary -fuzztime 10s
	$(GO) test ./internal/pathexpr -run '^$$' -fuzz FuzzParse -fuzztime 10s

# Short fuzz passes over the codecs and the path-expression parser.
fuzz:
	$(GO) test ./internal/codec -fuzz FuzzDecodeText -fuzztime 30s
	$(GO) test ./internal/codec -fuzz FuzzDecodeJSON -fuzztime 30s
	$(GO) test ./internal/codec -fuzz FuzzDecodeBinary -fuzztime 30s
	$(GO) test ./internal/pathexpr -fuzz FuzzParse -fuzztime 30s

cover:
	$(GO) test -cover ./...

clean:
	rm -f test_output.txt bench_output.txt

// pxmld serves a catalog of probabilistic instances over HTTP — a small
// probabilistic semistructured database daemon. Instances can be uploaded,
// fetched, visualized and queried with pxql statements; instance-valued
// query results can be stored back into the catalog.
//
//	pxmld -addr :8080
//	pxmld -addr :8080 -data /var/lib/pxmld -fsync always
//	pxmld -addr :8080 -load bib=inst.pxml -load web=crawl.json
//	pxmld -addr :8080 -request-timeout 5s -max-inflight 256
//
// With -data, the catalog is durable: writes go through a write-ahead
// log with periodic snapshots (see internal/store), startup runs crash
// recovery, and -fsync/-snapshot-interval tune the durability/latency
// trade-off. Concurrent writes are group-committed: -commit-batch bounds
// how many mutations share one WAL write + fsync and -commit-delay lets
// the committer linger to fill a batch.
//
// Performance knobs: -query-workers bounds each engine's batch worker
// pool (default GOMAXPROCS), and -pprof serves net/http/pprof on a
// separate loopback listener (off by default) for live profiling:
//
//	pxmld -addr :8080 -pprof 127.0.0.1:6060
//	go tool pprof http://127.0.0.1:6060/debug/pprof/profile
//
// The mutex and block profiles served there are empty unless sampling is
// turned on: -mutex-profile-fraction n feeds
// runtime.SetMutexProfileFraction (1 = every contended mutex event) and
// -block-profile-rate n feeds runtime.SetBlockProfileRate (nanoseconds;
// 1 = every blocking event). Both default to off — sampling costs a few
// percent under contention — and exist to audit lock-free read-path
// claims against a live process:
//
//	pxmld -pprof 127.0.0.1:6060 -mutex-profile-fraction 1
//	go tool pprof http://127.0.0.1:6060/debug/pprof/mutex
//
// Runaway-query protection: -query-deadline, -query-max-nodes, and
// -query-max-bytes impose a per-statement resource budget enforced
// cooperatively inside the inference kernels — statements whose upfront
// cost estimate provably exceeds the budget are refused with 422
// (intractable) before allocating, and ones that trip the budget at
// runtime stop within one loop iteration and answer 503
// (budget_exceeded). -breaker-threshold arms a per-statement-shape
// circuit breaker on top: shapes that trip repeatedly shed instantly
// with 503 (breaker_open) until -breaker-cooldown passes, then a
// half-open probe (-breaker-probes) decides whether to reclose.
//
// The serving path is hardened: GET /healthz answers liveness, GET
// /readyz readiness (503 while draining or once the store degrades to
// read-only), -request-timeout bounds each API request, -max-inflight
// sheds excess load with 429 + Retry-After, and panics in handlers are
// turned into 500s without killing the process. On SIGINT/SIGTERM the
// daemon flips /readyz to 503, drains in-flight requests, then closes
// the store so the WAL is flushed before exit.
//
// Endpoints (see internal/server and docs/API.md; unversioned legacy
// paths answer 308 redirects onto /v1):
//
//	GET    /v1/instances
//	PUT    /v1/instances/{name}
//	GET    /v1/instances/{name}
//	DELETE /v1/instances/{name}
//	GET    /v1/instances/{name}/dot
//	POST   /v1/instances/{name}/query[?store=name]
//	POST   /v1/instances/{name}/batch
//	GET    /v1/metrics
//	POST   /v1/admin/backup
//	POST   /v1/admin/scrub
//	GET    /v1/admin/quotas, PUT /v1/admin/quotas
//	POST   /v1/admin/promote, POST /v1/admin/demote
//	GET    /v1/repl/stream, GET /v1/repl/bootstrap, GET /v1/repl/epoch
//	GET    /healthz
//	GET    /readyz
//
// Telemetry: -statsd-addr pushes counters, gauges, and p50/p95/p99 timer
// percentiles to a StatsD/Graphite sink every -statsd-interval; a dead
// sink never blocks the request path (flushes are dropped and counted).
// Admission control: -quota-default and repeated -quota flags impose
// per-instance token-bucket rate limits, and under overload the inflight
// capacity is shared fairly by quota weight; over-quota requests answer
// 429 with a Retry-After hint. Quotas can be reloaded at runtime via
// PUT /v1/admin/quotas.
//
// Operational durability: -segment-size rotates the WAL into numbered
// segments, -archive copies sealed segments into an archive directory
// (the raw material for point-in-time recovery with pxmlbackup),
// -scrub-interval re-verifies at-rest checksums in the background, and
// POST /admin/backup cuts a consistent online backup while writes keep
// flowing. The backup endpoint is disabled unless -backup-dir names a
// directory; clients then request backups by name and the daemon places
// them in subdirectories of that root, so the HTTP API never accepts
// arbitrary server-side filesystem paths.
//
// Replication and failover: -follow runs the daemon as a read replica
// that bootstraps from and then tails the leader's WAL, redirecting
// writes there (see docs/API.md). POST /v1/admin/promote flips a
// follower into a leader under a new, durably persisted epoch; the
// superseded leader fences itself read-only (learning of the new era
// via demote notification, peer probes over -peers, or the epoch its
// followers echo on every pull) and redirects writers to the successor
// named by -advertise-url. -failover-priority arms automatic
// promotion after a leader-silence window (-failover-silence).
//
// Each instance is served through a query engine that caches its derived
// structures across queries; GET /metrics exposes per-instance query and
// cache counters. Requests are logged as structured JSON on stderr
// (disable with -quiet).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"pxml"
	"pxml/internal/admission"
	"pxml/internal/repl"
	"pxml/internal/retry"
	"pxml/internal/server"
	"pxml/internal/store"
)

// dirEmpty reports whether dir is absent or has no entries.
func dirEmpty(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return true, nil
	}
	if err != nil {
		return false, err
	}
	return len(entries) == 0, nil
}

// loadFlags collects repeated -load name=file flags.
type loadFlags []string

func (l *loadFlags) String() string { return strings.Join(*l, ",") }
func (l *loadFlags) Set(v string) error {
	*l = append(*l, v)
	return nil
}

// parseQuota parses "rate:burst" or "rate:burst:weight" (requests per
// second, bucket capacity, fairness weight).
func parseQuota(spec string) (admission.Quota, error) {
	var q admission.Quota
	parts := strings.Split(spec, ":")
	if len(parts) != 2 && len(parts) != 3 {
		return q, fmt.Errorf("quota %q: want rate:burst or rate:burst:weight", spec)
	}
	if _, err := fmt.Sscanf(parts[0], "%g", &q.Rate); err != nil {
		return q, fmt.Errorf("quota %q: bad rate: %w", spec, err)
	}
	if _, err := fmt.Sscanf(parts[1], "%g", &q.Burst); err != nil {
		return q, fmt.Errorf("quota %q: bad burst: %w", spec, err)
	}
	if len(parts) == 3 {
		if _, err := fmt.Sscanf(parts[2], "%g", &q.Weight); err != nil {
			return q, fmt.Errorf("quota %q: bad weight: %w", spec, err)
		}
	}
	return q, q.Validate()
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	dataDir := flag.String("data", "", "persist the catalog to this directory via the WAL+snapshot store (instances survive restarts and crashes)")
	dataDirAlias := flag.String("datadir", "", "alias for -data (kept for compatibility)")
	fsyncPolicy := flag.String("fsync", "always", "WAL flush policy: always, interval, or never")
	snapshotEvery := flag.Duration("snapshot-interval", 0, "snapshot the catalog and reset the WAL on this period (0 = size-triggered only)")
	quiet := flag.Bool("quiet", false, "disable structured request logging")
	maxBody := flag.Int64("maxbody", 0, "instance upload size limit in bytes (0 = default 64MiB)")
	reqTimeout := flag.Duration("request-timeout", 30*time.Second, "per-request deadline for API requests; expired requests answer 503 (0 = no deadline)")
	maxInflight := flag.Int("max-inflight", 0, "maximum concurrent API requests before shedding with 429 (0 = unlimited)")
	queryWorkers := flag.Int("query-workers", 0, "per-engine batch query worker bound (0 = GOMAXPROCS)")
	queryDeadline := flag.Duration("query-deadline", 0, "per-statement evaluation deadline inside the query engines (0 = none; -request-timeout still bounds the whole request)")
	queryMaxNodes := flag.Int64("query-max-nodes", 0, "per-statement work-unit budget: objects visited, OPF entries scanned, factor cells filled, samples drawn; provably-over-budget statements are refused upfront with 422 (0 = unlimited)")
	queryMaxBytes := flag.Int64("query-max-bytes", 0, "per-statement inference allocation budget in bytes (factor tables, enumeration state); 0 = unlimited")
	breakerThreshold := flag.Int("breaker-threshold", 0, "open the per-statement-shape circuit breaker after this many consecutive budget trips; tripped shapes shed with 503 breaker_open (0 = disabled)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "how long an open breaker rejects before probing again (0 = default 10s)")
	breakerProbes := flag.Int("breaker-probes", 0, "trial statements a half-open breaker admits; that many successes reclose it (0 = default 1)")
	commitBatch := flag.Int("commit-batch", 0, "max mutations coalesced into one WAL write+fsync (0 = default, 1 = no batching)")
	commitDelay := flag.Duration("commit-delay", 0, "how long the committer lingers to fill a batch (0 = commit as soon as the queue drains)")
	segmentSize := flag.Int64("segment-size", 0, "WAL segment rotation threshold in bytes (0 = default 1MiB, negative = rotate only on compaction)")
	archiveDir := flag.String("archive", "", "archive sealed WAL segments into this directory for point-in-time recovery (see pxmlbackup)")
	archiveRetention := flag.Int("archive-retention", 0, "keep at most this many archived segments, oldest pruned first (0 = keep all)")
	backupDir := flag.String("backup-dir", "", "enable POST /admin/backup and confine its destinations to subdirectories of this directory (empty = endpoint disabled)")
	scrubInterval := flag.Duration("scrub-interval", 0, "verify one at-rest store file's checksums on this cadence; corruption degrades to read-only (0 = off)")
	quarantineMax := flag.Int("quarantine-max", 0, "keep at most this many quarantined corrupt-region files (0 = default 64, negative = unbounded)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this loopback address, e.g. 127.0.0.1:6060 (empty = off)")
	mutexFraction := flag.Int("mutex-profile-fraction", 0, "sample 1/n of mutex contention events into /debug/pprof/mutex (0 = off, 1 = all)")
	blockRate := flag.Int("block-profile-rate", 0, "sample goroutine blocking events >= n ns into /debug/pprof/block (0 = off, 1 = all)")
	statsdAddr := flag.String("statsd-addr", "", "push metrics to this StatsD/Graphite sink (host:port; empty = off)")
	statsdInterval := flag.Duration("statsd-interval", 10*time.Second, "telemetry flush period")
	statsdNetwork := flag.String("statsd-network", "udp", "telemetry transport: udp or tcp")
	statsdPrefix := flag.String("statsd-prefix", "", "metric name prefix (empty = pxmld)")
	quotaDefault := flag.String("quota-default", "", "default per-instance admission quota as rate:burst[:weight] in requests/second (empty = unlimited)")
	adminToken := flag.String("admin-token", "", "require this bearer token on /v1/admin/* and /v1/repl/* (empty = open)")
	followLeader := flag.String("follow", "", "run as a read replica of the leader at this base URL (e.g. http://leader:8080); requires -data")
	followToken := flag.String("follow-token", "", "bearer token for the leader's replication endpoints (default: the -admin-token value)")
	replMaxStaleness := flag.Duration("repl-max-staleness", 0, "follower readiness threshold: /readyz answers 503 once replicated data is staler than this (0 = default 10s)")
	advertiseURL := flag.String("advertise-url", "", "base URL peers should use to reach this node (redirect targets and demote notifications after failover)")
	peersFlag := flag.String("peers", "", "comma-separated base URLs of the other cluster nodes; a leader probes them for higher epochs at startup and on a timer (split-brain guard)")
	failoverPriority := flag.Int("failover-priority", 0, "auto-promote this follower after the leader is silent for priority x failover-silence (0 = manual promotion only; requires -follow)")
	failoverSilence := flag.Duration("failover-silence", 0, "one leader-silence window for the failover monitor (0 = default 15s)")
	var quotaSpecs loadFlags
	flag.Var(&quotaSpecs, "quota", "per-instance admission quota: name=rate:burst[:weight] (repeatable)")
	var loads loadFlags
	flag.Var(&loads, "load", "preload an instance: name=file (repeatable)")
	flag.Parse()

	if *dataDir == "" {
		*dataDir = *dataDirAlias
	}
	if *followToken == "" {
		*followToken = *adminToken
	}
	cfg := server.Config{
		MaxBody:          *maxBody,
		RequestTimeout:   *reqTimeout,
		MaxInflight:      *maxInflight,
		QueryWorkers:     *queryWorkers,
		QueryDeadline:    *queryDeadline,
		QueryMaxNodes:    *queryMaxNodes,
		QueryMaxBytes:    *queryMaxBytes,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		BreakerProbes:    *breakerProbes,
		BackupRoot:       *backupDir,
		StatsdAddr:       *statsdAddr,
		StatsdNetwork:    *statsdNetwork,
		StatsdInterval:   *statsdInterval,
		StatsdPrefix:     *statsdPrefix,
		AdminToken:       *adminToken,
		FollowLeader:     *followLeader,
		FollowToken:      *followToken,
		ReplMaxStaleness: *replMaxStaleness,
		AdvertiseURL:     *advertiseURL,
		FailoverPriority: *failoverPriority,
		FailoverSilence:  *failoverSilence,
	}
	if *peersFlag != "" {
		for _, p := range strings.Split(*peersFlag, ",") {
			if p = strings.TrimSpace(p); p != "" {
				cfg.Peers = append(cfg.Peers, p)
			}
		}
	}
	if !*quiet {
		cfg.Logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	if *quotaDefault != "" {
		q, err := parseQuota(*quotaDefault)
		if err != nil {
			fatal(err)
		}
		cfg.DefaultQuota = q
	}
	for _, spec := range quotaSpecs {
		name, rest, ok := strings.Cut(spec, "=")
		if !ok {
			fatal(fmt.Errorf("bad -quota %q (want name=rate:burst[:weight])", spec))
		}
		q, err := parseQuota(rest)
		if err != nil {
			fatal(err)
		}
		if cfg.TenantQuotas == nil {
			cfg.TenantQuotas = make(map[string]admission.Quota)
		}
		cfg.TenantQuotas[name] = q
	}
	var policy store.FsyncPolicy
	if *dataDir != "" {
		var err error
		policy, err = store.ParseFsyncPolicy(*fsyncPolicy)
		if err != nil {
			fatal(err)
		}
		cfg.StoreDir = *dataDir
		cfg.StoreOptions = store.Options{
			Fsync:            policy,
			SnapshotInterval: *snapshotEvery,
			CommitBatch:      *commitBatch,
			CommitDelay:      *commitDelay,
			SegmentSize:      *segmentSize,
			ArchiveDir:       *archiveDir,
			ArchiveRetention: *archiveRetention,
			ScrubInterval:    *scrubInterval,
			QuarantineMax:    *quarantineMax,
			Logger:           log.New(os.Stderr, "pxmld: ", 0),
		}
	}
	if *followLeader != "" {
		if *dataDir == "" {
			fatal(fmt.Errorf("-follow requires -data (the replica's local WAL mirror)"))
		}
		// A fresh replica bootstraps from a leader backup before serving;
		// a replica with existing data resumes the stream from its
		// recovered position.
		if empty, err := dirEmpty(*dataDir); err != nil {
			fatal(err)
		} else if empty {
			fmt.Fprintf(os.Stderr, "pxmld: bootstrapping replica from %s\n", *followLeader)
			client := &repl.Client{BaseURL: *followLeader, Token: *followToken, Retry: retry.Default}
			res, err := client.Bootstrap(context.Background(), *dataDir)
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "pxmld: bootstrap complete: %d instances at %s\n", res.Instances, res.Pos)
		}
	}
	srv, err := server.New(cfg)
	if err != nil {
		fatal(err)
	}
	if *dataDir != "" {
		fmt.Fprintf(os.Stderr, "catalog persisted in %s (fsync=%s): %s\n", *dataDir, policy, srv.RecoveryReport())
	}
	if *followLeader != "" {
		fmt.Fprintf(os.Stderr, "pxmld: read replica of %s (writes 307-route there; readyz gates on staleness)\n", *followLeader)
	}
	if *statsdAddr != "" {
		fmt.Fprintf(os.Stderr, "telemetry to %s://%s every %s\n", *statsdNetwork, *statsdAddr, *statsdInterval)
	}
	if *mutexFraction > 0 {
		runtime.SetMutexProfileFraction(*mutexFraction)
	}
	if *blockRate > 0 {
		runtime.SetBlockProfileRate(*blockRate)
	}
	if *pprofAddr != "" {
		if err := servePprof(*pprofAddr); err != nil {
			fatal(err)
		}
		if *mutexFraction > 0 || *blockRate > 0 {
			fmt.Fprintf(os.Stderr, "pprof on %s (mutex fraction %d, block rate %d)\n", *pprofAddr, *mutexFraction, *blockRate)
		}
	}
	for _, spec := range loads {
		name, file, ok := strings.Cut(spec, "=")
		if !ok {
			fatal(fmt.Errorf("bad -load %q (want name=file)", spec))
		}
		f, err := os.Open(file)
		if err != nil {
			fatal(err)
		}
		var pi *pxml.ProbInstance
		if strings.HasSuffix(file, ".json") {
			pi, err = pxml.DecodeJSON(f)
		} else {
			pi, err = pxml.DecodeText(f)
		}
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("loading %s: %w", file, err))
		}
		if err := srv.Put(name, pi); err != nil {
			fatal(fmt.Errorf("storing %s: %w", name, err))
		}
		fmt.Fprintf(os.Stderr, "loaded %s from %s (%d objects)\n", name, file, pi.NumObjects())
	}
	// WriteTimeout must outlast the per-request deadline so slow requests
	// are answered with a 503 body instead of a snapped connection.
	writeTimeout := 5 * time.Minute
	if *reqTimeout > 0 {
		writeTimeout = *reqTimeout + 30*time.Second
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}
	// On SIGINT/SIGTERM: flip /readyz to 503 so load balancers stop
	// routing here, drain in-flight requests, and only then close the
	// store so the WAL is flushed before exit.
	idle := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		srv.SetDraining(true)
		fmt.Fprintln(os.Stderr, "pxmld: draining (readyz now 503)")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "pxmld: drain incomplete: %v\n", err)
		}
		close(idle)
	}()
	fmt.Fprintf(os.Stderr, "pxmld listening on %s\n", *addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	<-idle
	if err := srv.Close(); err != nil {
		fatal(err)
	}
}

// servePprof starts the debug profiling listener on addr, which must be
// loopback: the pprof endpoints expose heap contents and must never ride
// on the public API listener or an external interface.
func servePprof(addr string) error {
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		return fmt.Errorf("-pprof %q: %w", addr, err)
	}
	if ip := net.ParseIP(host); host != "localhost" && (ip == nil || !ip.IsLoopback()) {
		return fmt.Errorf("-pprof %q: refusing non-loopback address", addr)
	}
	// A private mux with explicit routes keeps the profiler off the API
	// handler (importing net/http/pprof only registers on the default mux).
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("-pprof %q: %w", addr, err)
	}
	fmt.Fprintf(os.Stderr, "pxmld: pprof on http://%s/debug/pprof/\n", ln.Addr())
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			fmt.Fprintf(os.Stderr, "pxmld: pprof listener: %v\n", err)
		}
	}()
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pxmld:", err)
	os.Exit(1)
}

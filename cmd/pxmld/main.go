// pxmld serves a catalog of probabilistic instances over HTTP — a small
// probabilistic semistructured database daemon. Instances can be uploaded,
// fetched, visualized and queried with pxql statements; instance-valued
// query results can be stored back into the catalog.
//
//	pxmld -addr :8080
//	pxmld -addr :8080 -load bib=inst.pxml -load web=crawl.json
//
// Endpoints (see internal/server):
//
//	GET    /instances
//	PUT    /instances/{name}
//	GET    /instances/{name}
//	DELETE /instances/{name}
//	GET    /instances/{name}/dot
//	POST   /instances/{name}/query[?store=name]
//	POST   /instances/{name}/batch
//	GET    /metrics
//
// Each instance is served through a query engine that caches its derived
// structures across queries; GET /metrics exposes per-instance query and
// cache counters. Requests are logged as structured JSON on stderr
// (disable with -quiet).
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"strings"

	"pxml"
	"pxml/internal/server"
)

// loadFlags collects repeated -load name=file flags.
type loadFlags []string

func (l *loadFlags) String() string { return strings.Join(*l, ",") }
func (l *loadFlags) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	dataDir := flag.String("datadir", "", "persist the catalog to this directory (instances survive restarts)")
	quiet := flag.Bool("quiet", false, "disable structured request logging")
	maxBody := flag.Int64("maxbody", 0, "instance upload size limit in bytes (0 = default 64MiB)")
	var loads loadFlags
	flag.Var(&loads, "load", "preload an instance: name=file (repeatable)")
	flag.Parse()

	var srv *server.Server
	if *dataDir != "" {
		var err error
		srv, err = server.NewPersistent(*dataDir)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "catalog persisted in %s (%d instances loaded)\n", *dataDir, len(srv.Names()))
	} else {
		srv = server.New()
	}
	if !*quiet {
		srv.SetLogger(slog.New(slog.NewJSONHandler(os.Stderr, nil)))
	}
	if *maxBody > 0 {
		srv.SetMaxBody(*maxBody)
	}
	for _, spec := range loads {
		name, file, ok := strings.Cut(spec, "=")
		if !ok {
			fatal(fmt.Errorf("bad -load %q (want name=file)", spec))
		}
		f, err := os.Open(file)
		if err != nil {
			fatal(err)
		}
		var pi *pxml.ProbInstance
		if strings.HasSuffix(file, ".json") {
			pi, err = pxml.DecodeJSON(f)
		} else {
			pi, err = pxml.DecodeText(f)
		}
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("loading %s: %w", file, err))
		}
		if err := srv.Put(name, pi); err != nil {
			fatal(fmt.Errorf("storing %s: %w", name, err))
		}
		fmt.Fprintf(os.Stderr, "loaded %s from %s (%d objects)\n", name, file, pi.NumObjects())
	}
	fmt.Fprintf(os.Stderr, "pxmld listening on %s\n", *addr)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pxmld:", err)
	os.Exit(1)
}

// pxmld serves a catalog of probabilistic instances over HTTP — a small
// probabilistic semistructured database daemon. Instances can be uploaded,
// fetched, visualized and queried with pxql statements; instance-valued
// query results can be stored back into the catalog.
//
//	pxmld -addr :8080
//	pxmld -addr :8080 -load bib=inst.pxml -load web=crawl.json
//
// Endpoints (see internal/server):
//
//	GET    /instances
//	PUT    /instances/{name}
//	GET    /instances/{name}
//	DELETE /instances/{name}
//	GET    /instances/{name}/dot
//	POST   /instances/{name}/query[?store=name]
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"

	"pxml"
	"pxml/internal/server"
)

// loadFlags collects repeated -load name=file flags.
type loadFlags []string

func (l *loadFlags) String() string { return strings.Join(*l, ",") }
func (l *loadFlags) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	dataDir := flag.String("datadir", "", "persist the catalog to this directory (instances survive restarts)")
	var loads loadFlags
	flag.Var(&loads, "load", "preload an instance: name=file (repeatable)")
	flag.Parse()

	var srv *server.Server
	if *dataDir != "" {
		var err error
		srv, err = server.NewPersistent(*dataDir)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "catalog persisted in %s (%d instances loaded)\n", *dataDir, len(srv.Names()))
	} else {
		srv = server.New()
	}
	for _, spec := range loads {
		name, file, ok := strings.Cut(spec, "=")
		if !ok {
			fatal(fmt.Errorf("bad -load %q (want name=file)", spec))
		}
		f, err := os.Open(file)
		if err != nil {
			fatal(err)
		}
		var pi *pxml.ProbInstance
		if strings.HasSuffix(file, ".json") {
			pi, err = pxml.DecodeJSON(f)
		} else {
			pi, err = pxml.DecodeText(f)
		}
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("loading %s: %w", file, err))
		}
		srv.Put(name, pi)
		fmt.Fprintf(os.Stderr, "loaded %s from %s (%d objects)\n", name, file, pi.NumObjects())
	}
	fmt.Fprintf(os.Stderr, "pxmld listening on %s\n", *addr)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pxmld:", err)
	os.Exit(1)
}

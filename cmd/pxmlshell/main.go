// pxmlshell is an interactive shell over PXML probabilistic instances: it
// loads instance files and evaluates pxql statements against the current
// instance. Algebra statements (PROJECT / SELECT / SINGLE / DESCEND)
// replace the current instance with their result, giving a pipeline-style
// workflow; UNDO restores the previous instance.
//
// Shell commands:
//
//	LOAD <file>        load an instance (text or JSON by extension)
//	SAVE <file>        save the current instance
//	UNDO               restore the instance before the last algebra op
//	METRICS            the current engine's query/cache counters
//	HEALTH             the attached store's health snapshot (needs -data)
//	HELP               statement summary
//	QUIT / EXIT        leave
//
// Everything else is parsed as a pxql statement; see internal/pxql. The
// current instance is held in a query engine, so repeated statements reuse
// its cached path index, Bayesian network and marginals.
//
// With -data the shell attaches a durable store directory (the same
// layout pxmld -data serves); HEALTH then reports degradation, WAL
// position and size, scrub results, and quarantine counts — the
// operator's offline view of a store's wellbeing.
//
// With -server the shell talks to a running pxmld over its v1 API:
// LOAD (and the positional argument) name instances in the daemon's
// catalog instead of local files, fetched via GET /v1/instances/NAME.
// Server errors are the v1 envelope and print with their machine code.
//
// Usage:
//
//	pxmlshell [-data DIR | -server URL] [instance-file-or-name]
//	echo "PROB R.book = B1" | pxmlshell inst.pxml
//	echo "HEALTH" | pxmlshell -data /var/lib/pxmld
//	echo "STATS" | pxmlshell -server http://127.0.0.1:8080 bib
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"pxml"
	"pxml/internal/apiv1"
	"pxml/internal/store"
)

// shellState is the engine-backed current/previous instance pair; each
// instance keeps its engine (and caches) across statements until an
// algebra result replaces it.
type shellState struct {
	cur, prev *pxml.Engine
}

func (st *shellState) setCur(pi *pxml.ProbInstance) {
	st.prev, st.cur = st.cur, pxml.NewEngine(pi)
}

func main() {
	dataDir := flag.String("data", "", "attach a durable store directory (enables HEALTH)")
	serverURL := flag.String("server", "", "fetch instances from this pxmld base URL; LOAD takes catalog names")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: pxmlshell [-data DIR | -server URL] [instance-file-or-name]")
		flag.PrintDefaults()
	}
	flag.Parse()
	var st shellState
	if flag.NArg() > 1 {
		flag.Usage()
		os.Exit(2)
	}
	if *dataDir != "" && *serverURL != "" {
		fmt.Fprintln(os.Stderr, "pxmlshell: -data and -server are mutually exclusive")
		os.Exit(2)
	}
	loadFrom := func(arg string) (*pxml.ProbInstance, error) {
		if *serverURL != "" {
			return fetch(*serverURL, arg)
		}
		return load(arg)
	}
	var catalog *store.Store
	if *dataDir != "" {
		s, report, err := store.Open(*dataDir, store.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "pxmlshell:", err)
			os.Exit(1)
		}
		catalog = s
		defer catalog.Close()
		fmt.Fprintf(os.Stderr, "attached store %s: %s\n", *dataDir, report)
	}
	if flag.NArg() == 1 {
		pi, err := loadFrom(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "pxmlshell:", err)
			os.Exit(1)
		}
		st.cur = pxml.NewEngine(pi)
		fmt.Fprintf(os.Stderr, "loaded %s (%d objects)\n", flag.Arg(0), pi.NumObjects())
	}
	ctx := context.Background()

	interactive := isTerminal()
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for {
		if interactive {
			fmt.Fprint(os.Stderr, "pxml> ")
		}
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch strings.ToUpper(fields[0]) {
		case "QUIT", "EXIT":
			return
		case "HELP":
			printHelp()
			continue
		case "LOAD":
			if len(fields) != 2 {
				fmt.Fprintln(os.Stderr, "LOAD needs one file (or instance name with -server)")
				continue
			}
			pi, err := loadFrom(fields[1])
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				continue
			}
			st.setCur(pi)
			fmt.Printf("loaded %s (%d objects)\n", fields[1], pi.NumObjects())
			continue
		case "SAVE":
			if len(fields) != 2 {
				fmt.Fprintln(os.Stderr, "SAVE needs one file")
				continue
			}
			if st.cur == nil {
				fmt.Fprintln(os.Stderr, "no instance loaded")
				continue
			}
			if err := save(fields[1], st.cur.Instance()); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				continue
			}
			fmt.Printf("saved %s\n", fields[1])
			continue
		case "UNDO":
			if st.prev == nil {
				fmt.Fprintln(os.Stderr, "nothing to undo")
				continue
			}
			st.cur, st.prev = st.prev, nil
			fmt.Printf("restored instance (%d objects)\n", st.cur.Instance().NumObjects())
			continue
		case "METRICS":
			if st.cur == nil {
				fmt.Fprintln(os.Stderr, "no instance loaded")
				continue
			}
			b, err := json.MarshalIndent(st.cur.Metrics(), "", "  ")
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				continue
			}
			fmt.Println(string(b))
			continue
		case "HEALTH":
			if catalog == nil {
				fmt.Fprintln(os.Stderr, "no store attached; run pxmlshell -data DIR")
				continue
			}
			b, err := json.MarshalIndent(catalog.Health(), "", "  ")
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				continue
			}
			fmt.Println(string(b))
			continue
		}
		if st.cur == nil {
			fmt.Fprintln(os.Stderr, "no instance loaded; use LOAD <file>")
			continue
		}
		res, err := st.cur.Run(ctx, line)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			continue
		}
		if res.Text != "" {
			fmt.Println(res.Text)
		}
		if res.Instance != nil {
			st.setCur(res.Instance)
		}
	}
}

// fetch pulls a named instance from a pxmld catalog over the v1 API.
func fetch(base, name string) (*pxml.ProbInstance, error) {
	url := strings.TrimRight(base, "/") + apiv1.Prefix + "/instances/" + name
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, apiv1.ErrorFromBody(resp.StatusCode, body)
	}
	if strings.Contains(resp.Header.Get("Content-Type"), "json") {
		return pxml.DecodeJSON(resp.Body)
	}
	return pxml.DecodeText(resp.Body)
}

func load(path string) (*pxml.ProbInstance, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".json") {
		return pxml.DecodeJSON(f)
	}
	return pxml.DecodeText(f)
}

func save(path string, pi *pxml.ProbInstance) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".json") {
		return pxml.EncodeJSON(f, pi)
	}
	return pxml.EncodeText(f, pi)
}

func isTerminal() bool {
	fi, err := os.Stdin.Stat()
	if err != nil {
		return false
	}
	return fi.Mode()&os.ModeCharDevice != 0
}

func printHelp() {
	fmt.Println(`pxql statements:
  PROJECT <path>                       ancestor projection (replaces current instance)
  SINGLE <path> | DESCEND <path>       single / descendant projection
  SELECT <path> = <obj> [AND ...]      object selection (replaces current instance)
  SELECT VAL(<path>) = <value>         value selection
  SELECT CARD(<path> = <obj>, <label>) IN [a,b]
  PROB <path> = <obj>                  point query
  PROB EXISTS <path>                   existence query
  PROB VAL(<path>) = <value>           value-existence query
  PROB OBJECT <obj>                    existence marginal (DAG-capable)
  CHAIN <r.o1.o2...>                   chain probability over object ids
  COUNT <path> | MARGINALS | WORLDS [n] | TOPK n | STATS
shell commands: LOAD <file>, SAVE <file>, UNDO, METRICS, HEALTH, HELP, QUIT`)
}

// pxmlquery runs PXML algebra operations and probabilistic queries over an
// instance file.
//
// Operations (-op):
//
//	project   ancestor projection Λ_p; writes the resulting instance
//	single    single projection (root + matched objects)
//	descend   descendant projection (matched objects + their substructure)
//	select    selection σ(p = o); writes the conditioned instance and
//	          prints the condition probability
//	selectval selection σ(val(p) = v)
//	point     P(o ∈ p) — probabilistic point query
//	exists    P(∃o. o ∈ p)
//	valexists P(∃ leaf o ∈ p with val(o) = v)
//	probex    P(o exists) via Bayesian-network inference (works on DAGs)
//	marginals P(o exists) for every object (one pass; tree instances)
//	worlds    enumerate the possible worlds with probabilities
//	topk      the N most probable worlds (best-first; no full enumeration)
//	count     distribution of the number of objects satisfying -path
//
// Examples:
//
//	pxmlquery -op project -path R.book.author -o out.pxml inst.pxml
//	pxmlquery -op select  -path R.book -object B1 inst.pxml
//	pxmlquery -op point   -path R.book.author -object A1 inst.pxml
//	pxmlquery -op probex  -object A1 inst.pxml
//
// With -server, the positional argument names an instance in a running
// pxmld catalog instead of a file; it is fetched over HTTP and the
// operation runs locally. Transient failures — load shedding (429),
// overload or a degraded store (503), dropped connections — are retried
// with exponential backoff and jitter, honoring the server's
// Retry-After; -retries caps the attempts:
//
//	pxmlquery -server http://127.0.0.1:8080 -op exists -path R.book bib
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"pxml"
	"pxml/internal/apiv1"
	"pxml/internal/retry"
)

func main() {
	op := flag.String("op", "project", "operation: project|single|descend|select|selectval|point|exists|valexists|probex")
	pathArg := flag.String("path", "", "path expression, e.g. R.book.author")
	object := flag.String("object", "", "object id (select/point/probex)")
	value := flag.String("value", "", "leaf value (selectval/valexists)")
	format := flag.String("format", "", "input format: text or json (default by extension)")
	out := flag.String("o", "", "output file for instance-valued results (default stdout)")
	outFormat := flag.String("oformat", "text", "output format: text or json")
	limit := flag.Int("limit", 0, "world-enumeration cap for -op worlds (0 = default)")
	top := flag.Int("top", 10, "print at most this many worlds for -op worlds (0 = all)")
	timeout := flag.Duration("timeout", 0, "abort probabilistic queries after this long (0 = no limit)")
	serverURL := flag.String("server", "", "fetch the instance from this pxmld base URL; the positional argument becomes an instance name")
	retries := flag.Int("retries", 3, "with -server: retries on 429/503 and transient network errors (exponential backoff + jitter, honors Retry-After)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pxmlquery [flags] <instance-file>")
		fmt.Fprintln(os.Stderr, "       pxmlquery -server URL [flags] <instance-name>")
		os.Exit(2)
	}
	var pi *pxml.ProbInstance
	var err error
	if *serverURL != "" {
		pi, err = fetch(*serverURL, flag.Arg(0), *retries)
	} else {
		pi, err = load(flag.Arg(0), *format)
	}
	if err != nil {
		fatal(err)
	}
	eng := pxml.NewEngine(pi)
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var path pxml.Path
	if *pathArg != "" {
		path, err = pxml.ParsePath(*pathArg)
		if err != nil {
			fatal(err)
		}
	}

	writeResult := func(res *pxml.ProbInstance) {
		dst := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			dst = f
		}
		if *outFormat == "json" {
			err = pxml.EncodeJSON(dst, res)
		} else {
			err = pxml.EncodeText(dst, res)
		}
		if err != nil {
			fatal(err)
		}
	}

	switch *op {
	case "project", "single", "descend":
		requirePath(path)
		var res *pxml.ProbInstance
		switch *op {
		case "project":
			res, err = pxml.AncestorProject(pi, path)
		case "single":
			res, err = pxml.SingleProject(pi, path)
		case "descend":
			res, err = pxml.DescendantProject(pi, path)
		}
		if err != nil {
			fatalHint(err)
		}
		writeResult(res)
	case "select":
		requirePath(path)
		require(*object, "-object")
		res, p, err := pxml.Select(pi, pxml.ObjectCondition{Path: path, Object: *object})
		if err != nil {
			fatalHint(err)
		}
		fmt.Fprintf(os.Stderr, "P(%s = %s) = %.9f\n", path, *object, p)
		writeResult(res)
	case "selectval":
		requirePath(path)
		require(*value, "-value")
		res, p, err := pxml.Select(pi, pxml.ValueCondition{Path: path, Value: *value})
		if err != nil {
			fatalHint(err)
		}
		fmt.Fprintf(os.Stderr, "P(val(%s) = %s) = %.9f\n", path, *value, p)
		writeResult(res)
	case "point":
		requirePath(path)
		require(*object, "-object")
		// The engine routes tree instances through the Section 6 fast
		// path and DAGs through Bayesian-network inference.
		p, err := eng.ProbPoint(ctx, path, *object)
		if err != nil {
			fatal(err)
		}
		noteDAG(eng)
		fmt.Printf("%.9f\n", p)
	case "exists":
		requirePath(path)
		p, err := eng.ProbExists(ctx, path)
		if err != nil {
			fatal(err)
		}
		noteDAG(eng)
		fmt.Printf("%.9f\n", p)
	case "valexists":
		requirePath(path)
		require(*value, "-value")
		p, err := pxml.ValueExistsQuery(pi, path, *value)
		if err != nil {
			fatalHint(err)
		}
		fmt.Printf("%.9f\n", p)
	case "probex":
		require(*object, "-object")
		p, err := eng.ProbObject(ctx, *object)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%.9f\n", p)
	case "marginals":
		marg, err := eng.Marginals()
		if err != nil {
			fatalHint(err)
		}
		for _, o := range pi.Objects() {
			fmt.Printf("%s\t%.9f\n", o, marg[o])
		}
	case "count":
		requirePath(path)
		d, err := pxml.CountDistribution(pi, path)
		if err != nil {
			fatalHint(err)
		}
		e, err := pxml.ExpectedCount(pi, path)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "E[count(%s)] = %.6f\n", path, e)
		maxK := 0
		for k := range d {
			if k > maxK {
				maxK = k
			}
		}
		for k := 0; k <= maxK; k++ {
			if d[k] > 0 {
				fmt.Printf("%d\t%.9f\n", k, d[k])
			}
		}
	case "topk":
		n := *top
		if n <= 0 {
			n = 10
		}
		worlds, err := pxml.TopK(pi, n, 0)
		if err != nil {
			fatal(err)
		}
		for _, w := range worlds {
			fmt.Printf("p=%.9f objects=%v\n", w.P, w.S.Objects())
		}
	case "worlds":
		gi, err := pxml.Enumerate(pi, *limit)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "%d worlds, total probability %.9f\n", gi.Len(), gi.TotalMass())
		for i, w := range gi.Worlds() {
			if *top > 0 && i == *top {
				break
			}
			fmt.Printf("p=%.9f objects=%v\n", w.P, w.S.Objects())
		}
	default:
		fatal(fmt.Errorf("unknown op %q", *op))
	}
}

// fetch pulls an instance out of a pxmld catalog over the v1 API,
// retrying transient failures (shed load, degraded/draining server,
// dropped connections) with backoff so a briefly overloaded daemon
// doesn't fail the query. Server errors arrive as the v1 envelope and
// are surfaced with their machine code.
func fetch(base, name string, retries int) (*pxml.ProbInstance, error) {
	policy := retry.Default.WithAttempts(retries + 1)
	policy.OnRetry = func(attempt int, wait time.Duration, cause error) {
		fmt.Fprintf(os.Stderr, "pxmlquery: fetch attempt %d failed (%v); retrying in %v\n", attempt, cause, wait)
	}
	url := strings.TrimRight(base, "/") + apiv1.Prefix + "/instances/" + name
	resp, err := policy.Get(context.Background(), nil, url)
	if err != nil {
		return nil, fmt.Errorf("fetching %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("fetching %s: %w", url, apiv1.ErrorFromBody(resp.StatusCode, msg))
	}
	if strings.Contains(resp.Header.Get("Content-Type"), "json") {
		return pxml.DecodeJSON(resp.Body)
	}
	return pxml.DecodeText(resp.Body)
}

func load(path, format string) (*pxml.ProbInstance, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if format == "json" || (format == "" && strings.HasSuffix(path, ".json")) {
		return pxml.DecodeJSON(f)
	}
	return pxml.DecodeText(f)
}

// noteDAG tells the user when the answer came from the network route.
func noteDAG(eng *pxml.Engine) {
	if !eng.IsTree() {
		fmt.Fprintln(os.Stderr, "note: DAG instance; answered via Bayesian-network inference")
	}
}

func requirePath(p pxml.Path) {
	if p.Root == "" {
		fatal(fmt.Errorf("missing -path"))
	}
}

func require(v, name string) {
	if v == "" {
		fatal(fmt.Errorf("missing %s", name))
	}
}

func fatalHint(err error) {
	if errors.Is(err, pxml.ErrNotTree) {
		fmt.Fprintln(os.Stderr, "pxmlquery: the instance's weak graph is a DAG; this operation's fast path needs a tree")
	}
	fatal(err)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pxmlquery:", err)
	os.Exit(1)
}

// pxmlinfo inspects and validates a probabilistic instance file: it
// reports object/edge/entry counts, depth, tree-ness (which decides
// whether the Section 6 fast algorithms apply), acyclicity, and full
// Definition 3.11 validity.
//
// Usage:
//
//	pxmlinfo inst.pxml
//	pxmlinfo -format json inst.json
//	pxmlinfo -worlds 1000 small.pxml   # also enumerate possible worlds
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pxml"
	"pxml/internal/dot"
)

func main() {
	format := flag.String("format", "", "input format: text or json (default: by extension, .json = json)")
	worlds := flag.Int("worlds", 0, "if > 0, enumerate up to this many possible worlds and report the count and total mass")
	lite := flag.Bool("lite", false, "skip the exponential PC-membership validation (for very large instances)")
	dotOut := flag.Bool("dot", false, "print the weak instance graph in Graphviz DOT form and exit")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pxmlinfo [flags] <instance-file>")
		os.Exit(2)
	}
	path := flag.Arg(0)
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	fm := *format
	if fm == "" {
		if strings.HasSuffix(path, ".json") {
			fm = "json"
		} else {
			fm = "text"
		}
	}
	var pi *pxml.ProbInstance
	switch fm {
	case "json":
		pi, err = pxml.DecodeJSON(f)
	case "text":
		pi, err = pxml.DecodeText(f)
	default:
		err = fmt.Errorf("unknown format %q", fm)
	}
	if err != nil {
		fatal(err)
	}

	if *dotOut {
		fmt.Print(dot.Weak(pi))
		return
	}

	st := pi.ComputeStats()
	fmt.Printf("root:        %s\n", pi.Root())
	fmt.Printf("objects:     %d\n", st.Objects)
	fmt.Printf("edges:       %d\n", st.Edges)
	fmt.Printf("leaves:      %d\n", st.Leaves)
	fmt.Printf("depth:       %d\n", st.Depth)
	fmt.Printf("OPF entries: %d\n", st.OPFEntries)
	fmt.Printf("VPF entries: %d\n", st.VPFEntries)
	fmt.Printf("tree:        %v (Section 6 fast algorithms %s)\n", pi.IsTree(),
		map[bool]string{true: "apply", false: "do not apply; use global/BN routes"}[pi.IsTree()])

	if err := pi.CheckAcyclic(); err != nil {
		fmt.Printf("acyclic:     NO — %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("acyclic:     yes\n")

	var verr error
	if *lite {
		verr = pi.ValidateLite()
	} else {
		verr = pi.Validate()
	}
	if verr != nil {
		fmt.Printf("valid:       NO — %v\n", verr)
		os.Exit(1)
	}
	fmt.Printf("valid:       yes\n")

	if *worlds > 0 {
		gi, err := pxml.Enumerate(pi, *worlds)
		if err != nil {
			fmt.Printf("worlds:      enumeration failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("worlds:      %d (total mass %.9f)\n", gi.Len(), gi.TotalMass())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pxmlinfo:", err)
	os.Exit(1)
}

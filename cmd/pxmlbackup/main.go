// pxmlbackup manages backups of a pxmld data directory: consistent
// online backups, integrity verification, and restores — including
// point-in-time recovery through a WAL segment archive.
//
//	pxmlbackup create -data /var/lib/pxmld /backups/monday
//	pxmlbackup create -server http://127.0.0.1:8080 monday
//	pxmlbackup verify /backups/monday
//	pxmlbackup list /backups
//	pxmlbackup restore -backup /backups/monday -data /var/lib/pxmld
//	pxmlbackup restore -backup /backups/monday -data /var/lib/pxmld \
//	    -archive /backups/wal-archive -to-time 2026-08-06T12:00:00Z -force
//
// create cuts a backup either through a running daemon (-server, which
// issues POST /admin/backup so the daemon's store does the copying) or
// directly from a data directory (-data; the store must not be open in a
// daemon at the same time). With -server the destination is a name
// relative to the daemon's configured backup root (pxmld -backup-dir) —
// the daemon never accepts absolute paths over HTTP; with -data it is a
// local directory path. The backup directory holds the snapshot, the
// WAL segments, and a MANIFEST.json written last — a backup without a
// valid manifest never verifies, so a half-written backup cannot be
// mistaken for a good one.
//
// restore verifies the backup, stages the restored tree next to the
// target, replays optional archived segments up to -to-offset (a seg:off
// WAL position) or -to-time (RFC3339), proves the staged store opens
// cleanly, and only then swaps it in. A non-empty target is refused
// without -force; even with -force the old directory is renamed aside
// and deleted only after the restored store has opened.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"pxml/internal/apiv1"
	"pxml/internal/store"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "create":
		err = cmdCreate(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "restore":
		err = cmdRestore(os.Args[2:])
	case "list":
		err = cmdList(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "pxmlbackup: unknown command %q\n\n", os.Args[1])
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pxmlbackup:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  pxmlbackup create  -data DIR BACKUPDIR
  pxmlbackup create  -server URL NAME      (NAME is relative to the daemon's -backup-dir)
  pxmlbackup verify  BACKUPDIR
  pxmlbackup list    DIR
  pxmlbackup restore -backup BACKUPDIR -data DIR
                     [-archive DIR] [-to-offset SEG:OFF | -to-time RFC3339] [-force]
`)
	os.Exit(2)
}

func cmdCreate(args []string) error {
	fs := flag.NewFlagSet("create", flag.ExitOnError)
	dataDir := fs.String("data", "", "data directory to back up directly (daemon must not be running)")
	serverURL := fs.String("server", "", "base URL of a running pxmld; the daemon cuts the backup via POST /admin/backup")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return errors.New("create needs exactly one backup destination argument")
	}
	switch {
	case (*dataDir == "") == (*serverURL == ""):
		return errors.New("create needs exactly one of -data or -server")
	case *serverURL != "":
		// The destination is a name under the daemon's backup root, not a
		// path on this machine — send it verbatim; the daemon resolves it.
		name := fs.Arg(0)
		man, err := serverBackup(*serverURL, name)
		if err != nil {
			return err
		}
		printManifest(name, man)
		return nil
	default:
		dest, err := filepath.Abs(fs.Arg(0))
		if err != nil {
			return err
		}
		s, report, err := store.Open(*dataDir, store.Options{})
		if err != nil {
			return err
		}
		defer s.Close()
		if report.Recovered == 0 && len(report.Quarantined) == 0 {
			// Plausibly an empty or wrong directory; still a legal backup.
			fmt.Fprintf(os.Stderr, "note: %s recovered no instances\n", *dataDir)
		}
		man, err := s.Backup(dest)
		if err != nil {
			return err
		}
		printManifest(dest, man)
		return nil
	}
}

// serverBackup asks a running daemon to back itself up under name, a
// destination relative to the daemon's configured backup root. It
// speaks the v1 API; failures come back as the v1 error envelope and
// keep their machine code (conflict for a concurrent backup, forbidden
// for an escaping path, and so on).
func serverBackup(base, name string) (*store.Manifest, error) {
	u := strings.TrimSuffix(base, "/") + apiv1.Prefix + "/admin/backup?dir=" + url.QueryEscape(name)
	resp, err := http.Post(u, "application/json", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("server: %w", apiv1.ErrorFromBody(resp.StatusCode, body))
	}
	var man store.Manifest
	if err := json.Unmarshal(body, &man); err != nil {
		return nil, fmt.Errorf("decoding server manifest: %w", err)
	}
	return &man, nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return errors.New("verify needs exactly one backup directory argument")
	}
	dir := fs.Arg(0)
	man, err := store.VerifyBackup(nil, dir)
	if err != nil {
		return err
	}
	fmt.Printf("%s: OK\n", dir)
	printManifest(dir, man)
	return nil
}

func cmdList(args []string) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return errors.New("list needs exactly one directory argument")
	}
	root := fs.Arg(0)
	// The directory itself may be a backup; otherwise list its children
	// that are.
	if man, err := store.ReadManifest(nil, root); err == nil {
		listLine(root, man)
		return nil
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		return err
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name() < entries[j].Name() })
	found := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(root, e.Name())
		man, err := store.ReadManifest(nil, dir)
		if err != nil {
			continue
		}
		listLine(dir, man)
		found++
	}
	if found == 0 {
		return fmt.Errorf("no backups under %s", root)
	}
	return nil
}

func listLine(dir string, man *store.Manifest) {
	var bytes int64
	if man.Snapshot != nil {
		bytes += man.Snapshot.Size
	}
	for _, mf := range man.Segments {
		bytes += mf.Size
	}
	fmt.Printf("%s\t%s\t%d instances\tpos %s\t%d files\t%d bytes\n",
		dir, man.CreatedAt, man.Instances, man.Pos, len(man.Segments)+boolToInt(man.Snapshot != nil), bytes)
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func cmdRestore(args []string) error {
	fs := flag.NewFlagSet("restore", flag.ExitOnError)
	backupDir := fs.String("backup", "", "backup directory to restore from")
	dataDir := fs.String("data", "", "data directory to restore into")
	archiveDir := fs.String("archive", "", "WAL archive directory for point-in-time recovery past the backup")
	toOffset := fs.String("to-offset", "", "stop replay at this WAL position (SEG:OFF, e.g. 3:4096)")
	toTime := fs.String("to-time", "", "stop replay at this wall-clock instant (RFC3339; needs segments written with archiving on)")
	force := fs.Bool("force", false, "allow restoring over a non-empty data directory (it is renamed aside and deleted only after the restored store opens cleanly)")
	fs.Parse(args)
	if fs.NArg() != 0 || *backupDir == "" || *dataDir == "" {
		return errors.New("restore needs -backup and -data")
	}
	opts := store.RestoreOptions{Force: *force, ArchiveDir: *archiveDir}
	if *toOffset != "" {
		pos, err := store.ParsePos(*toOffset)
		if err != nil {
			return err
		}
		opts.ToPos = &pos
	}
	if *toTime != "" {
		t, err := time.Parse(time.RFC3339, *toTime)
		if err != nil {
			return fmt.Errorf("-to-time: %w", err)
		}
		opts.ToTime = t
	}
	res, err := store.Restore(*backupDir, *dataDir, opts)
	if err != nil {
		if errors.Is(err, store.ErrRestoreNonEmpty) {
			return fmt.Errorf("%w\n(re-run with -force to replace it)", err)
		}
		return err
	}
	fmt.Printf("restored %d instances into %s (WAL position %s)\n", res.Instances, *dataDir, res.Pos)
	return nil
}

func printManifest(dir string, man *store.Manifest) {
	fmt.Printf("backup %s\n", dir)
	fmt.Printf("  created   %s\n", man.CreatedAt)
	fmt.Printf("  position  %s\n", man.Pos)
	fmt.Printf("  instances %d\n", man.Instances)
	if man.Snapshot != nil {
		fmt.Printf("  snapshot  %d bytes (crc32 %08x)\n", man.Snapshot.Size, man.Snapshot.CRC)
	}
	for _, mf := range man.Segments {
		fmt.Printf("  segment   %s  %d bytes (crc32 %08x)\n", mf.Name, mf.Size, mf.CRC)
	}
}

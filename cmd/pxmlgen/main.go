// pxmlgen generates random probabilistic instances following the PXML
// paper's Section 7.1 experimental design (balanced trees, SL/FR labeling,
// no cardinality constraints, random local probability tables) and writes
// them in either the text or JSON encoding.
//
// Usage:
//
//	pxmlgen -depth 5 -branch 4 -labeling FR -seed 7 -o inst.pxml
//	pxmlgen -depth 3 -branch 2 -format json -o inst.json
package main

import (
	"flag"
	"fmt"
	"os"

	"pxml"
)

func main() {
	depth := flag.Int("depth", 3, "tree depth (levels below the root); the paper sweeps 3-9")
	branch := flag.Int("branch", 2, "branching factor; the paper sweeps 2-8")
	labeling := flag.String("labeling", "SL", "edge labeling scheme: SL (same label per parent) or FR (fully random)")
	labels := flag.Int("labels", 2, "label alphabet size per level")
	leafDomain := flag.Int("leafdomain", 2, "leaf value domain size (0 = untyped leaves)")
	seed := flag.Int64("seed", 1, "random seed (generation is deterministic per seed)")
	format := flag.String("format", "text", "output format: text or json")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	w, err := pxml.GenerateWorkload(pxml.GenConfig{
		Depth:          *depth,
		Branch:         *branch,
		Labeling:       pxml.Labeling(*labeling),
		LabelsPerLevel: *labels,
		LeafDomainSize: *leafDomain,
		Seed:           *seed,
	})
	if err != nil {
		fatal(err)
	}
	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		dst = f
	}
	switch *format {
	case "text":
		err = pxml.EncodeText(dst, w.PI)
	case "json":
		err = pxml.EncodeJSON(dst, w.PI)
	default:
		err = fmt.Errorf("unknown format %q (want text or json)", *format)
	}
	if err != nil {
		fatal(err)
	}
	st := w.PI.ComputeStats()
	fmt.Fprintf(os.Stderr, "generated %d objects, %d edges, %d OPF entries, depth %d\n",
		st.Objects, st.Edges, st.OPFEntries, st.Depth)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pxmlgen:", err)
	os.Exit(1)
}

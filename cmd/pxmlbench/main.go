// pxmlbench reproduces the PXML paper's Figure 7 experiments and prints
// the series the paper plots.
//
// Panels:
//
//	-panel a   total query time of ancestor projection vs #objects
//	-panel b   ℘-update time of ancestor projection vs #objects
//	-panel c   total query time of selection vs #objects
//
// Examples:
//
//	pxmlbench -panel a
//	pxmlbench -panel c -branches 2,4,8 -depths 3,4,5,6,7 -csv fig7c.csv
//	pxmlbench -panel b -instances 10 -queries 10 -max 100000
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"pxml"
	"pxml/internal/bench"
	"pxml/internal/gen"
)

func main() {
	panel := flag.String("panel", "a", "figure panel: a, b (projection) or c (selection)")
	depths := flag.String("depths", "3,4,5,6,7,8,9", "comma-separated tree depths")
	branches := flag.String("branches", "2,4,8", "comma-separated branching factors")
	labelings := flag.String("labelings", "SL,FR", "comma-separated labeling schemes")
	instances := flag.Int("instances", 3, "instances per configuration (the paper uses 10)")
	queries := flag.Int("queries", 3, "queries per instance (the paper uses 10)")
	maxObjects := flag.Int("max", 100000, "skip configurations above this object count")
	seed := flag.Int64("seed", 1, "base random seed")
	csvPath := flag.String("csv", "", "also write the rows as CSV to this file")
	flag.Parse()

	var op bench.Op
	switch *panel {
	case "a", "b":
		op = bench.OpProjection
	case "c":
		op = bench.OpSelection
	default:
		fatal(fmt.Errorf("unknown panel %q (want a, b or c)", *panel))
	}

	cfg := pxml.BenchConfig{
		Op:                 op,
		Depths:             ints(*depths),
		Branches:           ints(*branches),
		Labelings:          labs(*labelings),
		InstancesPerConfig: *instances,
		QueriesPerInstance: *queries,
		MaxObjects:         *maxObjects,
		Seed:               *seed,
	}
	rows, err := pxml.RunBench(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("Figure 7(%s): %s — %d instances × %d queries per configuration\n\n",
		*panel, panelTitle(*panel), *instances, *queries)
	if err := bench.WriteTable(os.Stdout, rows); err != nil {
		fatal(err)
	}
	// Linearity report (the paper's Section 7.2 observations).
	metric := func(r pxml.BenchRow) float64 { return r.TotalNs }
	metricName := "total time"
	if *panel == "b" {
		metric = func(r pxml.BenchRow) float64 { return r.UpdateNs }
		metricName = "℘-update time"
	}
	fits := bench.SeriesLinearity(rows, metric)
	if len(fits) > 0 {
		fmt.Printf("\nlinear fits of %s vs #objects (paper: linear per series):\n", metricName)
		for name, fit := range fits {
			fmt.Printf("  %-8s slope %.1f ns/object, R² = %.4f\n", name, fit.Slope, fit.R2)
		}
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := bench.WriteCSV(f, rows); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote CSV to %s\n", *csvPath)
	}
}

func panelTitle(p string) string {
	switch p {
	case "a":
		return "total query time of ancestor projection"
	case "b":
		return "local-interpretation update time of ancestor projection"
	default:
		return "total query time of selection"
	}
}

func ints(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fatal(fmt.Errorf("bad integer %q", part))
		}
		out = append(out, n)
	}
	return out
}

func labs(s string) []pxml.Labeling {
	var out []pxml.Labeling
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "SL":
			out = append(out, gen.SL)
		case "FR":
			out = append(out, gen.FR)
		default:
			fatal(fmt.Errorf("bad labeling %q (want SL or FR)", part))
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pxmlbench:", err)
	os.Exit(1)
}

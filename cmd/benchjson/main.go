// benchjson runs the repo's benchmark suites (`go test -bench`) and
// records the results as machine-readable JSON, so each PR can leave a
// baseline behind (results/BENCH_pr9.json) and later PRs can diff
// against it without re-parsing test output.
//
//	go run ./cmd/benchjson -out results/BENCH_pr9.json
//	go run ./cmd/benchjson -benchtime 10x -cpu 1,4 -out /tmp/smoke.json
//
// The -cpu list is handed to `go test -cpu`, which runs every benchmark
// once per entry with GOMAXPROCS pinned to it — that is how concurrency
// suites get exercised at GOMAXPROCS>1 even on single-core runners. The
// GOMAXPROCS each line actually ran at is parsed from the -N name suffix
// and recorded per benchmark, and custom metrics emitted through
// b.ReportMetric (e.g. the storm-read suite's p99-ns) land in the
// benchmark's "extra" map.
//
// The output schema is documented in EXPERIMENTS.md. Besides the raw
// per-benchmark numbers, the tool derives the headline ratios earlier
// PRs are accountable for: the group-commit speedup on concurrent Puts
// and the result-cache speedup on repeated point queries.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// suite is one `go test -bench` invocation: a package and the benchmark
// name pattern to run inside it.
type suite struct {
	Pkg     string
	Pattern string
}

var suites = []suite{
	{".", "Fig7"},
	{"./internal/store", "WALAppend|ConcurrentPut|OpenReplay|Compact"},
	{"./internal/store", "StormRead|ColdOpen"},
	{"./internal/engine", "QueryPoint"},
	{"./internal/codec", "Encode|Decode"},
	{"./internal/server", "FollowerFanout"},
}

// result is one benchmark line, parsed.
type result struct {
	Package     string             `json:"package"`
	Name        string             `json:"name"`
	Gomaxprocs  int                `json:"gomaxprocs"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	MBPerS      float64            `json:"mb_per_s,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

type report struct {
	Schema     string             `json:"schema"`
	Generated  string             `json:"generated"`
	GoVersion  string             `json:"go_version"`
	GOOS       string             `json:"goos"`
	GOARCH     string             `json:"goarch"`
	CPUList    string             `json:"cpu_list"`
	Benchtime  string             `json:"benchtime"`
	Benchmarks []result           `json:"benchmarks"`
	Derived    map[string]float64 `json:"derived"`
}

// benchLine matches go test benchmark output up through ns/op; the
// remaining "<value> <unit>" pairs (MB/s, B/op, allocs/op, and any
// b.ReportMetric units like p99-ns) are parsed separately. The -N
// GOMAXPROCS suffix is captured; bare names (GOMAXPROCS=1 default on
// single-CPU machines) fall back to 1.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+([\d.]+) ns/op(.*)$`)

// metricPair matches one trailing "<value> <unit>" measurement.
var metricPair = regexp.MustCompile(`([\d.]+) (\S+)`)

func main() {
	out := flag.String("out", "results/BENCH_pr9.json", "where to write the JSON report")
	benchtime := flag.String("benchtime", "1s", "passed to go test -benchtime (e.g. 1s, 10x)")
	cpu := flag.String("cpu", "1,4", "passed to go test -cpu: GOMAXPROCS values to run each benchmark at")
	flag.Parse()

	rep := report{
		Schema:    "pxml-bench/v2",
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUList:   *cpu,
		Benchtime: *benchtime,
		Derived:   map[string]float64{},
	}
	for _, s := range suites {
		rs, err := runSuite(s, *benchtime, *cpu)
		if err != nil {
			fatal(err)
		}
		rep.Benchmarks = append(rep.Benchmarks, rs...)
	}
	derive(&rep)

	if dir := filepath.Dir(*out); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fatal(err)
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(rep.Benchmarks))
	for k, v := range rep.Derived {
		fmt.Printf("  %s: %.2fx\n", k, v)
	}
}

func runSuite(s suite, benchtime, cpu string) ([]result, error) {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", s.Pattern, "-benchmem", "-benchtime", benchtime, "-cpu", cpu, s.Pkg)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	fmt.Fprintf(os.Stderr, "benchjson: go test -bench '%s' -cpu %s %s\n", s.Pattern, cpu, s.Pkg)
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("%s: %w", s.Pkg, err)
	}
	var out []result
	pkg := s.Pkg
	for _, line := range strings.Split(buf.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		r := result{
			Package:    pkg,
			Name:       strings.TrimPrefix(m[1], "Benchmark"),
			Gomaxprocs: 1,
			Iterations: atoi(m[3]),
			NsPerOp:    atof(m[4]),
		}
		if m[2] != "" {
			r.Gomaxprocs = int(atoi(m[2]))
		}
		for _, pair := range metricPair.FindAllStringSubmatch(m[5], -1) {
			v, unit := atof(pair[1]), pair[2]
			switch unit {
			case "MB/s":
				r.MBPerS = v
			case "B/op":
				r.BytesPerOp = int64(v)
			case "allocs/op":
				r.AllocsPerOp = int64(v)
			default:
				if r.Extra == nil {
					r.Extra = map[string]float64{}
				}
				r.Extra[unit] = v
			}
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines matched pattern %q", s.Pkg, s.Pattern)
	}
	return out, nil
}

// derive records the headline before/after ratios when both sides ran.
// With a -cpu list each name appears once per GOMAXPROCS value; ratios
// are taken at the highest GOMAXPROCS, where contention effects show.
func derive(rep *report) {
	ns := map[string]float64{}
	procs := map[string]int{}
	for _, r := range rep.Benchmarks {
		if r.Gomaxprocs >= procs[r.Name] {
			procs[r.Name] = r.Gomaxprocs
			ns[r.Name] = r.NsPerOp
		}
	}
	if slow, fast := ns["ConcurrentPutNoBatch"], ns["ConcurrentPutGroupCommit"]; slow > 0 && fast > 0 {
		rep.Derived["concurrent_put_speedup"] = slow / fast
	}
	if slow, fast := ns["QueryPointUncached"], ns["QueryPointCached"]; slow > 0 && fast > 0 {
		rep.Derived["cached_query_speedup"] = slow / fast
	}
}

func atoi(s string) int64 {
	n, _ := strconv.ParseInt(s, 10, 64)
	return n
}

func atof(s string) float64 {
	f, _ := strconv.ParseFloat(s, 64)
	return f
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

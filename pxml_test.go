package pxml_test

import (
	"bytes"
	"context"
	"errors"
	"math"
	"testing"

	"pxml"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// bibliography builds the running example of the package documentation —
// a tree-shaped variant of the paper's Figure 2 — through the public API.
func bibliography(t testing.TB) *pxml.ProbInstance {
	t.Helper()
	inst, err := pxml.NewBuilder("R").
		Type("title-type", "VQDB", "Lore").
		Type("institution-type", "Stanford", "UMD").
		Children("R", "book", "B1", "B2").
		Card("R", "book", 1, 2).
		OPF("R",
			pxml.Entry(0.3, "B1"),
			pxml.Entry(0.2, "B2"),
			pxml.Entry(0.5, "B1", "B2")).
		Children("B1", "author", "A1").
		Children("B1", "title", "T1").
		OPF("B1",
			pxml.Entry(0.1),
			pxml.Entry(0.3, "A1"),
			pxml.Entry(0.2, "T1"),
			pxml.Entry(0.4, "A1", "T1")).
		Children("B2", "author", "A2").
		Card("B2", "author", 1, 1).
		OPF("B2", pxml.Entry(1, "A2")).
		Children("A2", "institution", "I1").
		IndependentOPF("A2", map[string]float64{"I1": 0.75}).
		Leaf("T1", "title-type").
		VPF("T1", map[string]float64{"VQDB": 0.6, "Lore": 0.4}).
		LeafValue("I1", "institution-type", "UMD").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestBuilderBuildsValidInstance(t *testing.T) {
	inst := bibliography(t)
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if !inst.IsTree() {
		t.Error("expected a tree")
	}
	st := inst.ComputeStats()
	if st.Objects != 7 {
		t.Errorf("objects = %d", st.Objects)
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := pxml.NewBuilder("r").Children("r", "l").Build(); err == nil {
		t.Error("empty children accepted")
	}
	if _, err := pxml.NewBuilder("r").Leaf("x", "missing").Build(); err == nil {
		t.Error("unknown type accepted")
	}
	if _, err := pxml.NewBuilder("r").
		Children("r", "l", "x").
		OPF("r", pxml.Entry(0.5, "x")).Build(); err == nil {
		t.Error("non-normalized OPF accepted")
	}
	if _, err := pxml.NewBuilder("r").
		Children("r", "l", "x").
		IndependentOPF("r", map[string]float64{"x": 1.5}).Build(); err == nil {
		t.Error("invalid independent probability accepted")
	}
	if _, err := pxml.NewBuilder("r").
		Type("t", "a").
		LeafValue("x", "t", "b").Build(); err == nil {
		t.Error("out-of-domain leaf value accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustBuild did not panic")
		}
	}()
	pxml.NewBuilder("r").Children("r", "l").MustBuild()
}

func TestEndToEndProjectionSelectionQuery(t *testing.T) {
	inst := bibliography(t)

	// Scenario 1 (Section 2): authors of all books, keeping probabilities.
	proj, err := pxml.AncestorProject(inst, pxml.MustParsePath("R.book.author"))
	if err != nil {
		t.Fatal(err)
	}
	if proj.HasObject("T1") || proj.HasObject("I1") {
		t.Error("projection kept titles/institutions")
	}

	// Scenario 2: condition on a book surely existing.
	sel, p, err := pxml.Select(inst, pxml.ObjectCondition{Path: pxml.MustParsePath("R.book"), Object: "B1"})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(p, 0.8) {
		t.Errorf("P(B1) = %v", p)
	}
	if got := sel.OPF("R").ProbContains("B1"); !approx(got, 1) {
		t.Errorf("conditioned P(B1) = %v", got)
	}

	// Scenario 4: probability that a particular author exists.
	pq, err := pxml.PointQuery(inst, pxml.MustParsePath("R.book.author"), "A1")
	if err != nil {
		t.Fatal(err)
	}
	if !approx(pq, 0.8*0.7) { // P(B1)·P(A1|B1)
		t.Errorf("P(A1) = %v", pq)
	}
	// The Bayesian-network route agrees.
	pe, err := pxml.ProbExists(inst, "A1")
	if err != nil {
		t.Fatal(err)
	}
	if !approx(pe, pq) {
		t.Errorf("bayes %v vs ε %v", pe, pq)
	}
	pp, err := pxml.PathProb(inst, pxml.MustParsePath("R.book.author"), "A1")
	if err != nil {
		t.Fatal(err)
	}
	if !approx(pp, pq) {
		t.Errorf("PathProb %v vs ε %v", pp, pq)
	}
}

func TestEndToEndProduct(t *testing.T) {
	// Scenario 3: combine two probabilistic instances.
	a := bibliography(t)
	b, err := pxml.NewBuilder("R2").
		Children("R2", "book", "B9").
		IndependentOPF("R2", map[string]float64{"B9": 0.5}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	prod, renames, err := pxml.CartesianProduct(a, b, "LIB")
	if err != nil {
		t.Fatal(err)
	}
	if len(renames) != 0 {
		t.Errorf("renames = %v", renames)
	}
	if err := prod.Validate(); err != nil {
		t.Fatal(err)
	}
	e, err := pxml.ExistsQuery(prod, pxml.MustParsePath("LIB.book"))
	if err != nil {
		t.Fatal(err)
	}
	if e <= 0.9 { // at least one book from either source almost surely
		t.Errorf("P(book) = %v", e)
	}
}

func TestEndToEndEnumerateAndGlobals(t *testing.T) {
	inst := bibliography(t)
	gi, err := pxml.Enumerate(inst, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(gi.TotalMass(), 1) {
		t.Errorf("mass = %v", gi.TotalMass())
	}
	naive, err := pxml.AncestorProjectGlobal(inst, pxml.MustParsePath("R.book.author"), 0)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := pxml.AncestorProject(inst, pxml.MustParsePath("R.book.author"))
	if err != nil {
		t.Fatal(err)
	}
	induced, err := pxml.Enumerate(fast, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !induced.Equal(naive, 1e-9) {
		t.Error("public API projection diverges from global semantics")
	}
	// SelectGlobal agrees with Select.
	cond := pxml.ObjectCondition{Path: pxml.MustParsePath("R.book"), Object: "B2"}
	_, pFast, err := pxml.Select(inst, cond)
	if err != nil {
		t.Fatal(err)
	}
	_, pNaive, err := pxml.SelectGlobal(inst, cond, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(pFast, pNaive) {
		t.Errorf("fast %v vs naive %v", pFast, pNaive)
	}
}

func TestEndToEndCodecs(t *testing.T) {
	inst := bibliography(t)
	var buf bytes.Buffer
	if err := pxml.EncodeJSON(&buf, inst); err != nil {
		t.Fatal(err)
	}
	back, err := pxml.DecodeJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !pxml.Equal(inst, back, 1e-12) {
		t.Error("JSON round trip changed instance")
	}
	buf.Reset()
	if err := pxml.EncodeText(&buf, inst); err != nil {
		t.Fatal(err)
	}
	back, err = pxml.DecodeText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !pxml.Equal(inst, back, 1e-12) {
		t.Error("text round trip changed instance")
	}
}

func TestEndToEndWorkloadAndBench(t *testing.T) {
	w, err := pxml.GenerateWorkload(pxml.GenConfig{Depth: 2, Branch: 2, Labeling: pxml.SL, Seed: 3, LeafDomainSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if w.PI.NumObjects() != 7 {
		t.Errorf("workload objects = %d", w.PI.NumObjects())
	}
	rows, err := pxml.RunBench(pxml.BenchConfig{
		Op:     "projection",
		Depths: []int{2}, Branches: []int{2},
		Labelings:          []pxml.Labeling{pxml.SL},
		InstancesPerConfig: 1, QueriesPerInstance: 1,
		MaxObjects: 100, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].TotalNs <= 0 {
		t.Errorf("bench rows = %+v", rows)
	}
}

func TestErrNotTreeSurfaces(t *testing.T) {
	// Build a DAG through the public API: shared child.
	dag := pxml.New("r")
	dag.SetLCh("r", "a", "x", "y")
	dag.SetLCh("x", "b", "s")
	dag.SetLCh("y", "b", "s") // s has two parents
	w := pxml.NewOPF()
	w.Put(pxml.NewSet("x", "y"), 1)
	dag.SetOPF("r", w)
	wx := pxml.NewOPF()
	wx.Put(pxml.NewSet("s"), 1)
	dag.SetOPF("x", wx)
	wy := pxml.NewOPF()
	wy.Put(pxml.NewSet("s"), 1)
	dag.SetOPF("y", wy)

	if _, err := pxml.AncestorProject(dag, pxml.MustParsePath("r.a.b")); !errors.Is(err, pxml.ErrNotTree) {
		t.Errorf("projection err = %v", err)
	}
	if _, err := pxml.ExistsQuery(dag, pxml.MustParsePath("r.a.b")); !errors.Is(err, pxml.ErrNotTree) {
		t.Errorf("exists err = %v", err)
	}
	// The DAG-capable route still answers.
	p, err := pxml.PathProb(dag, pxml.MustParsePath("r.a.b"), "s")
	if err != nil {
		t.Fatal(err)
	}
	if !approx(p, 1) {
		t.Errorf("PathProb = %v", p)
	}
}

func TestConjunctionPublicAPI(t *testing.T) {
	inst := bibliography(t)
	cond := pxml.Conjunction{Conds: []pxml.Condition{
		pxml.ObjectCondition{Path: pxml.MustParsePath("R.book.author"), Object: "A1"},
		pxml.ObjectCondition{Path: pxml.MustParsePath("R.book.author"), Object: "A2"},
	}}
	out, p, err := pxml.Select(inst, cond)
	if err != nil {
		t.Fatal(err)
	}
	// Both books must exist with their authors: 0.5 · 0.7 · 1.
	if !approx(p, 0.5*0.7) {
		t.Errorf("P = %v, want 0.35", p)
	}
	if got := out.OPF("R").Prob(pxml.NewSet("B1")); got != 0 {
		t.Errorf("single-book set survived: %v", got)
	}
	_, pNaive, err := pxml.SelectGlobal(inst, cond, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(p, pNaive) {
		t.Errorf("fast %v vs naive %v", p, pNaive)
	}
}

func TestExistenceMarginalsPublicAPI(t *testing.T) {
	inst := bibliography(t)
	marg, err := pxml.ExistenceMarginals(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(marg["R"], 1) || !approx(marg["A1"], 0.8*0.7) {
		t.Errorf("marginals = %v", marg)
	}
	// Agrees with the per-object point query.
	for _, o := range []string{"B1", "B2", "A1", "A2", "T1", "I1"} {
		pq, err := pxml.ProbExists(inst, o)
		if err != nil {
			t.Fatal(err)
		}
		if !approx(marg[o], pq) {
			t.Errorf("marg(%s) = %v, ProbExists = %v", o, marg[o], pq)
		}
	}
}

func TestSymmetricOPFBuilder(t *testing.T) {
	inst, err := pxml.NewBuilder("scene").
		Children("scene", "object", "v1", "v2").
		SymmetricOPF("scene",
			[][]string{{"v1", "v2"}},
			pxml.SymEntry(0.2, 0),
			pxml.SymEntry(0.6, 1),
			pxml.SymEntry(0.2, 2)).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	w := inst.OPF("scene")
	if !approx(w.Prob(pxml.NewSet("v1")), 0.3) || !approx(w.Prob(pxml.NewSet("v2")), 0.3) {
		t.Errorf("symmetric split = %v / %v", w.Prob(pxml.NewSet("v1")), w.Prob(pxml.NewSet("v2")))
	}
	// Builder surfaces symmetric-table errors.
	if _, err := pxml.NewBuilder("r").
		Children("r", "l", "x").
		SymmetricOPF("r", [][]string{{"x"}}, pxml.SymEntry(1, 5)).
		Build(); err == nil {
		t.Error("bad count accepted")
	}
}

func TestNewSymmetricOPFPublicAPI(t *testing.T) {
	w, err := pxml.NewSymmetricOPF([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Put([]int{1}, 1); err != nil {
		t.Fatal(err)
	}
	e, err := w.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(e.Prob(pxml.NewSet("a")), 0.5) {
		t.Errorf("P({a}) = %v", e.Prob(pxml.NewSet("a")))
	}
}

func TestTopKAndSamplingPublicAPI(t *testing.T) {
	inst := bibliography(t)
	top, err := pxml.TopK(inst, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 || top[0].P < top[1].P {
		t.Fatalf("top-k = %+v", top)
	}
	worlds, err := pxml.Enumerate(inst, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(top[0].P, worlds.Worlds()[0].P) {
		t.Errorf("top-1 %v vs enumeration %v", top[0].P, worlds.Worlds()[0].P)
	}

	r := newDeterministicRand()
	s, err := pxml.Sample(inst, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Compatible(s); err != nil {
		t.Fatalf("sample incompatible: %v", err)
	}
	est, err := pxml.EstimateProb(inst, func(w *pxml.Instance) bool { return w.HasObject("B1") }, 5000, r)
	if err != nil {
		t.Fatal(err)
	}
	if est.P < 0.75 || est.P > 0.85 { // exact 0.8
		t.Errorf("estimate = %v", est)
	}
}

func TestIngestPublicAPI(t *testing.T) {
	s := pxml.NewInstance("r")
	if err := s.RegisterType(pxml.NewType("t", "x", "y")); err != nil {
		t.Fatal(err)
	}
	if err := s.AddEdge("r", "a", "l"); err != nil {
		t.Fatal(err)
	}
	if err := s.SetLeaf("a", "t", "x"); err != nil {
		t.Fatal(err)
	}
	pi, err := pxml.Ingest(s, pxml.IngestOptions{
		Confidence: func(string) float64 { return 0.25 },
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := pxml.ProbExists(pi, "a")
	if err != nil {
		t.Fatal(err)
	}
	if !approx(p, 0.25) {
		t.Errorf("P(a) = %v", p)
	}
}

func TestPathIndexPublicAPI(t *testing.T) {
	inst := bibliography(t)
	idx := pxml.NewPathIndex(inst)
	p := pxml.MustParsePath("R.book.author")
	got := pxml.TargetsIndexed(idx, p)
	if len(got) != 2 || got[0] != "A1" || got[1] != "A2" {
		t.Errorf("indexed targets = %v", got)
	}
}

// probDAG builds a small DAG with a probabilistic shared child and a
// valued leaf, for exercising the facade's network fallback.
func probDAG(t testing.TB) *pxml.ProbInstance {
	t.Helper()
	dag := pxml.New("r")
	if err := dag.RegisterType(pxml.NewType("vt", "u", "w")); err != nil {
		t.Fatal(err)
	}
	dag.SetLCh("r", "a", "x", "y")
	dag.SetLCh("x", "b", "s")
	dag.SetLCh("y", "b", "s") // s has two parents
	w := pxml.NewOPF()
	w.Put(pxml.NewSet("x"), 0.5)
	w.Put(pxml.NewSet("x", "y"), 0.5)
	dag.SetOPF("r", w)
	wx := pxml.NewOPF()
	wx.Put(pxml.NewSet(), 0.4)
	wx.Put(pxml.NewSet("s"), 0.6)
	dag.SetOPF("x", wx)
	wy := pxml.NewOPF()
	wy.Put(pxml.NewSet("s"), 1)
	dag.SetOPF("y", wy)
	if err := dag.SetLeafType("s", "vt"); err != nil {
		t.Fatal(err)
	}
	v := pxml.NewVPF()
	v.Put("u", 0.3)
	v.Put("w", 0.7)
	dag.SetVPF("s", v)
	return dag
}

func TestProbFacadeTree(t *testing.T) {
	pi := bibliography(t)
	p := pxml.MustParsePath("R.book.author")
	want, err := pxml.ExistsQuery(pi, p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pxml.Prob(pi, p)
	if err != nil || !approx(got, want) {
		t.Errorf("Prob = %v, %v; want %v", got, err, want)
	}
	wantPt, err := pxml.PointQuery(pi, p, "A1")
	if err != nil {
		t.Fatal(err)
	}
	gotPt, err := pxml.ProbPoint(pi, p, "A1")
	if err != nil || !approx(gotPt, wantPt) {
		t.Errorf("ProbPoint = %v, %v; want %v", gotPt, err, wantPt)
	}
	tp := pxml.MustParsePath("R.book.title")
	wantV, err := pxml.ValuePointQuery(pi, tp, "T1", "Lore")
	if err != nil {
		t.Fatal(err)
	}
	gotV, err := pxml.ProbValue(pi, tp, "T1", "Lore")
	if err != nil || !approx(gotV, wantV) {
		t.Errorf("ProbValue = %v, %v; want %v", gotV, err, wantV)
	}
}

func TestProbFacadeDAGFallback(t *testing.T) {
	dag := probDAG(t)
	p := pxml.MustParsePath("r.a.b")
	// The explicit tree route refuses...
	if _, err := pxml.ExistsQuery(dag, p); !errors.Is(err, pxml.ErrNotTree) {
		t.Fatalf("tree route err = %v", err)
	}
	// ...but the facade falls back to the network route transparently.
	want, err := pxml.PathProb(dag, p, "")
	if err != nil {
		t.Fatal(err)
	}
	got, err := pxml.Prob(dag, p)
	if err != nil || !approx(got, want) {
		t.Errorf("Prob on DAG = %v, %v; want %v", got, err, want)
	}
	wantPt, err := pxml.PathProb(dag, p, "s")
	if err != nil {
		t.Fatal(err)
	}
	gotPt, err := pxml.ProbPoint(dag, p, "s")
	if err != nil || !approx(gotPt, wantPt) {
		t.Errorf("ProbPoint on DAG = %v, %v; want %v", gotPt, err, wantPt)
	}
	// ProbValue factors into P(s ∈ p) · VPF(s)(w) on the DAG route.
	gotV, err := pxml.ProbValue(dag, p, "s", "w")
	if err != nil || !approx(gotV, wantPt*0.7) {
		t.Errorf("ProbValue on DAG = %v, %v; want %v", gotV, err, wantPt*0.7)
	}
	// An unvalued object yields probability zero, not an error.
	if pr, err := pxml.ProbValue(dag, pxml.MustParsePath("r.a"), "x", "u"); err != nil || pr != 0 {
		t.Errorf("ProbValue on unvalued object = %v, %v", pr, err)
	}
}

func TestEnginePublicAPI(t *testing.T) {
	eng := pxml.NewEngine(bibliography(t), pxml.WithWorkers(2))
	ctx := context.Background()
	res, err := eng.Run(ctx, "PROB R.book.author = A1")
	if err != nil {
		t.Fatal(err)
	}
	want, err := pxml.EvalPXQL(eng.Instance(), "PROB R.book.author = A1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Prob == nil || want.Prob == nil || !approx(*res.Prob, *want.Prob) {
		t.Errorf("engine %v vs direct %v", res.Prob, want.Prob)
	}
	if _, err := eng.Run(ctx, "PROB R.book.author = A1"); err != nil {
		t.Fatal(err)
	}
	m := eng.Metrics()
	if m["queries"].(int64) != 2 || m["cache_hits"].(int64) == 0 {
		t.Errorf("engine metrics = %v", m)
	}
	batch := eng.RunBatch(ctx, []string{"STATS", "PROB EXISTS R.book"})
	for i, br := range batch {
		if br.Err != nil {
			t.Errorf("batch[%d]: %v", i, br.Err)
		}
	}
}

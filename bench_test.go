// Top-level benchmarks regenerating the PXML paper's evaluation (Section
// 7, Figure 7) plus the ablations DESIGN.md calls out. One benchmark per
// figure panel:
//
//	BenchmarkFig7aAncestorProjectionTotal — Fig 7(a): total query time of
//	    ancestor projection (copy + locate + structure + ℘ update + write).
//	BenchmarkFig7bAncestorProjectionUpdate — Fig 7(b): ℘-update time alone
//	    (reported as the "update-ms" metric).
//	BenchmarkFig7cSelectionTotal — Fig 7(c): total query time of selection.
//
// Ablations:
//
//	BenchmarkAblationPointQueryNaiveVsEfficient — the Section 6 claim that
//	    the local algorithms beat marginalizing over all compatible
//	    instances.
//	BenchmarkAblationPointQueryBayesVsEpsilon — generic BN inference vs the
//	    specialized ε recursion on trees.
//	BenchmarkAblationIndependentVsExplicitOPF — compact ProTDB-style OPFs
//	    vs explicit tables.
//	BenchmarkCodecEncode — the serialization leg that dominates Fig 7(c).
//
// Sub-benchmark names encode labeling, depth d, branching b and the object
// count n, so `go test -bench=Fig7` prints the panel series directly.
package pxml_test

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"testing"

	"pxml/internal/bayes"
	"pxml/internal/bench"
	"pxml/internal/codec"
	"pxml/internal/engine"
	"pxml/internal/enumerate"
	"pxml/internal/fixtures"
	"pxml/internal/gen"
	"pxml/internal/model"
	"pxml/internal/pathexpr"
	"pxml/internal/prob"
	"pxml/internal/query"
)

// panelConfigs is the sweep used by the Figure 7 benchmarks: a subset of
// the paper's depth 3–9 × branch 2–8 grid chosen so the whole suite runs in
// minutes while still spanning two decades of instance sizes per series.
var panelConfigs = []struct{ depth, branch int }{
	{3, 2}, {5, 2}, {7, 2}, {9, 2},
	{3, 4}, {4, 4}, {5, 4}, {6, 4},
	{3, 8}, {4, 8},
}

func benchPanel(b *testing.B, op bench.Op, metric string) {
	scratch, err := os.CreateTemp(b.TempDir(), "pxml-bench-*.out")
	if err != nil {
		b.Fatal(err)
	}
	defer scratch.Close()
	for _, lab := range []gen.Labeling{gen.SL, gen.FR} {
		for _, pc := range panelConfigs {
			n := gen.NumObjects(pc.depth, pc.branch)
			name := fmt.Sprintf("%s/d%d_b%d_n%d", lab, pc.depth, pc.branch, n)
			b.Run(name, func(b *testing.B) {
				in, err := gen.Generate(gen.Config{
					Depth: pc.depth, Branch: pc.branch, Labeling: lab,
					LeafDomainSize: 2, Seed: int64(pc.depth*100 + pc.branch),
				})
				if err != nil {
					b.Fatal(err)
				}
				r := rand.New(rand.NewSource(7))
				b.ResetTimer()
				var updateNs, totalNs float64
				for i := 0; i < b.N; i++ {
					m, err := bench.MeasureQuery(op, in, r, scratch)
					if err != nil {
						b.Fatal(err)
					}
					updateNs += float64(m.Update)
					totalNs += float64(m.Total())
				}
				b.ReportMetric(totalNs/float64(b.N)/1e6, "total-ms/op")
				if metric == "update" {
					b.ReportMetric(updateNs/float64(b.N)/1e6, "update-ms/op")
				}
			})
		}
	}
}

// BenchmarkFig7aAncestorProjectionTotal regenerates Figure 7(a).
func BenchmarkFig7aAncestorProjectionTotal(b *testing.B) {
	benchPanel(b, bench.OpProjection, "total")
}

// BenchmarkFig7bAncestorProjectionUpdate regenerates Figure 7(b): the same
// pipeline with the ℘-update time reported as its own metric.
func BenchmarkFig7bAncestorProjectionUpdate(b *testing.B) {
	benchPanel(b, bench.OpProjection, "update")
}

// BenchmarkFig7cSelectionTotal regenerates Figure 7(c).
func BenchmarkFig7cSelectionTotal(b *testing.B) {
	benchPanel(b, bench.OpSelection, "total")
}

// BenchmarkAblationPointQueryNaiveVsEfficient compares the Section 6.2
// ε algorithm against naive marginalization over all compatible instances
// (the paper's implicit baseline) on an instance small enough for the
// latter to finish.
func BenchmarkAblationPointQueryNaiveVsEfficient(b *testing.B) {
	in, err := gen.Generate(gen.Config{Depth: 3, Branch: 2, Labeling: gen.FR, Seed: 5, LeafDomainSize: 0})
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	p, _, ok := in.RandomSelection(r)
	if !ok {
		b.Fatal("no query")
	}
	targets := p.Targets(in.PI.WeakInstance.Graph())
	o := targets[0]

	b.Run("efficient-epsilon", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := query.PointQuery(in.PI, p, o); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive-enumerate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gi, err := enumerate.Enumerate(in.PI, 0)
			if err != nil {
				b.Fatal(err)
			}
			_ = gi.ProbWhere(func(s *model.Instance) bool { return p.Matches(s.Graph(), o) })
		}
	})
}

// BenchmarkAblationPointQueryBayesVsEpsilon compares generic variable
// elimination against the specialized ε recursion on tree instances of
// growing size.
func BenchmarkAblationPointQueryBayesVsEpsilon(b *testing.B) {
	for _, depth := range []int{3, 4, 5} {
		in, err := gen.Generate(gen.Config{Depth: depth, Branch: 2, Labeling: gen.SL, Seed: 11, LeafDomainSize: 0})
		if err != nil {
			b.Fatal(err)
		}
		r := rand.New(rand.NewSource(4))
		p, o, ok := in.RandomSelection(r)
		if !ok {
			b.Fatal("no query")
		}
		b.Run(fmt.Sprintf("epsilon/d%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := query.PointQuery(in.PI, p, o); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("bayes-ve/d%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bayes.PathProb(in.PI, p, o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationIndependentVsExplicitOPF measures the compact
// independent-children representation (ProTDB as a PXML special case)
// against the explicit table: expansion cost and membership-probability
// lookups.
func BenchmarkAblationIndependentVsExplicitOPF(b *testing.B) {
	for _, n := range []int{4, 8, 12} {
		iw := prob.NewIndependentOPF()
		names := make([]string, n)
		for i := range names {
			names[i] = fmt.Sprintf("c%02d", i)
			iw.Put(names[i], 0.5)
		}
		expanded, err := iw.Expand()
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("expand/n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := iw.Expand(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("marginal-independent/n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = iw.Prob(names[i%n])
			}
		})
		b.Run(fmt.Sprintf("marginal-explicit/n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = expanded.ProbContains(names[i%n])
			}
		})
	}
}

// BenchmarkCodecEncode measures the serialization leg of the total query
// time (the dominant cost of Figure 7(c)) for both codecs across sizes.
func BenchmarkCodecEncode(b *testing.B) {
	for _, pc := range []struct{ depth, branch int }{{5, 2}, {7, 2}, {5, 4}} {
		in, err := gen.Generate(gen.Config{Depth: pc.depth, Branch: pc.branch, Labeling: gen.FR, Seed: 2, LeafDomainSize: 2})
		if err != nil {
			b.Fatal(err)
		}
		n := gen.NumObjects(pc.depth, pc.branch)
		b.Run(fmt.Sprintf("text/n%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := codec.EncodeText(io.Discard, in.PI); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("json/n%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := codec.EncodeJSON(io.Discard, in.PI); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEnumerateFigure2 tracks the cost of the possible-worlds oracle
// on the paper's running example.
func BenchmarkEnumerateFigure2(b *testing.B) {
	pi := fixtures.Figure2()
	for i := 0; i < b.N; i++ {
		if _, err := enumerate.Enumerate(pi, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBayesCompileFigure2 tracks the BN compilation cost for the
// paper's running example.
func BenchmarkBayesCompileFigure2(b *testing.B) {
	pi := fixtures.Figure2()
	for i := 0; i < b.N; i++ {
		if _, err := bayes.Compile(pi); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPathEval measures bare path-expression evaluation (the locate
// leg) on a 100k-object instance.
func BenchmarkPathEval(b *testing.B) {
	in, err := gen.Generate(gen.Config{Depth: 9, Branch: 2, Labeling: gen.FR, Seed: 8, LeafDomainSize: 0})
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	p, ok := in.RandomQuery(r)
	if !ok {
		b.Fatal("no query")
	}
	g := in.PI.WeakInstance.Graph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = pathexpr.NewPlan(g, p, nil)
	}
}

// BenchmarkTopKVsEnumerate contrasts the best-first top-k search against
// full enumeration on the Figure 2 instance (152 worlds) — the gap widens
// exponentially with instance size.
func BenchmarkTopKVsEnumerate(b *testing.B) {
	pi := fixtures.Figure2()
	b.Run("topk-3", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := enumerate.TopK(pi, 3, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("enumerate-all", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := enumerate.Enumerate(pi, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSample measures forward-sampling throughput on a mid-size tree.
func BenchmarkSample(b *testing.B) {
	in, err := gen.Generate(gen.Config{Depth: 6, Branch: 2, Labeling: gen.FR, Seed: 3, LeafDomainSize: 2})
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enumerate.Sample(in.PI, r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPathIndexVsDirect contrasts path-plan computation with and
// without the label index on a 100k-object instance with a 4-label
// alphabet per level (the index touches only same-label edges).
func BenchmarkPathIndexVsDirect(b *testing.B) {
	in, err := gen.Generate(gen.Config{Depth: 9, Branch: 2, Labeling: gen.FR, Seed: 8, LeafDomainSize: 0, LabelsPerLevel: 4})
	if err != nil {
		b.Fatal(err)
	}
	g := in.PI.WeakInstance.Graph()
	// Derive a guaranteed-satisfiable path by walking one root-to-leaf
	// chain (random label paths rarely survive 9 levels of a 4-letter
	// alphabet).
	p := pathexpr.Path{Root: in.PI.Root()}
	cur := in.PI.Root()
	for len(g.Children(cur)) > 0 {
		child := g.Children(cur)[0]
		l, _ := g.Label(cur, child)
		p.Labels = append(p.Labels, l)
		cur = child
	}
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = pathexpr.NewPlan(g, p, nil)
		}
	})
	idx := pathexpr.NewIndex(g)
	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = pathexpr.NewPlanIndexed(idx, p, nil)
		}
	})
	b.Run("index-build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = pathexpr.NewIndex(g)
		}
	})
}

// BenchmarkEngineColdVsWarmPointQuery is the engine's headline pair: the
// same repeated point query against a generated workload instance, cold
// (every query re-derives the tree classification and walks the full edge
// set to plan the path) versus warm (an engine reusing its cached
// classification and label-partitioned index). The warm path must win by
// well over 2x on the 1000-object instance.
func BenchmarkEngineColdVsWarmPointQuery(b *testing.B) {
	in, err := gen.Generate(gen.Config{Depth: 9, Branch: 2, Labeling: gen.FR, Seed: 8, LeafDomainSize: 0, LabelsPerLevel: 4})
	if err != nil {
		b.Fatal(err)
	}
	g := in.PI.WeakInstance.Graph()
	// A guaranteed-satisfiable root-to-leaf path (cf. BenchmarkPathIndexVsDirect).
	p := pathexpr.Path{Root: in.PI.Root()}
	cur := in.PI.Root()
	for len(g.Children(cur)) > 0 {
		child := g.Children(cur)[0]
		l, _ := g.Label(cur, child)
		p.Labels = append(p.Labels, l)
		cur = child
	}
	o := cur
	ctx := context.Background()

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := query.PointQuery(in.PI, p, o); err != nil {
				b.Fatal(err)
			}
		}
	})
	eng := engine.New(in.PI)
	if err := eng.Warm(ctx); err != nil {
		b.Fatal(err)
	}
	b.Run("warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.ProbPoint(ctx, p, o); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEngineColdVsWarmDAG is the same pair on the paper's Figure 2
// DAG, where the cold path recompiles the Bayesian network per query and
// the warm engine compiles once and clones per query.
func BenchmarkEngineColdVsWarmDAG(b *testing.B) {
	pi := fixtures.Figure2()
	p := pathexpr.MustParse("R.book.author")
	ctx := context.Background()

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bayes.PathProb(pi, p, "A1"); err != nil {
				b.Fatal(err)
			}
		}
	})
	eng := engine.New(pi)
	if err := eng.Warm(ctx); err != nil {
		b.Fatal(err)
	}
	b.Run("warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.ProbPoint(ctx, p, "A1"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

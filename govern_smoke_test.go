package pxml_test

// Governor smoke test: boot the real pxmld binary with a query budget
// and circuit breaker configured, upload a width-bomb instance, and
// check end to end that (a) bomb inference is refused with the typed
// intractable envelope before any big allocation, (b) repeated bombs
// open the shape's breaker (observable in /v1/metrics) and shed with
// breaker_open + Retry-After, (c) half-open probing recloses the
// breaker once bombs stop, and (d) healthy instances keep serving point
// queries and accepting writes throughout. Run via `make govern-smoke`
// (which adds -race); skipped with -short like the other integration
// tests.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pxml"
)

func TestGovernSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("govern smoke runs the daemon; skipped with -short")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not available")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "pxmld")
	if out, err := exec.Command(goBin, "build", "-o", bin, "./cmd/pxmld").CombinedOutput(); err != nil {
		t.Fatalf("building pxmld: %v\n%s", err, out)
	}
	addr := "127.0.0.1:39486"
	cmd := exec.Command(bin,
		"-addr", addr,
		"-query-deadline", "5s",
		"-query-max-nodes", "1048576",
		"-query-max-bytes", "67108864",
		"-breaker-threshold", "3",
		"-breaker-cooldown", "500ms",
		"-breaker-probes", "1",
		"-quiet",
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	}()
	base := "http://" + addr
	ready := false
	for i := 0; i < 100; i++ {
		resp, err := http.Get(base + "/v1/instances")
		if err == nil {
			resp.Body.Close()
			ready = true
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !ready {
		t.Fatal("pxmld did not start")
	}

	put := func(name string, pi *pxml.ProbInstance) {
		t.Helper()
		var buf bytes.Buffer
		if err := pxml.EncodeText(&buf, pi); err != nil {
			t.Fatal(err)
		}
		req, _ := http.NewRequest("PUT", base+"/v1/instances/"+name, bytes.NewReader(buf.Bytes()))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode/100 != 2 {
			t.Fatalf("PUT %s status %d", name, resp.StatusCode)
		}
	}
	query := func(name, stmt string) (int, string, http.Header) {
		t.Helper()
		resp, err := http.Post(base+"/v1/instances/"+name+"/query", "text/plain", strings.NewReader(stmt))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body), resp.Header
	}
	codeOf := func(body string) string {
		var env struct {
			Error struct {
				Code         string `json:"code"`
				RetryAfterMS int64  `json:"retry_after_ms"`
			} `json:"error"`
		}
		_ = json.Unmarshal([]byte(body), &env)
		return env.Error.Code
	}

	// A healthy instance and the bomb side by side.
	w, err := pxml.GenerateWorkload(pxml.GenConfig{Depth: 2, Branch: 2, Labeling: pxml.SL, Seed: 11, LeafDomainSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	put("healthy", w.PI)
	bomb, err := pxml.GenerateWidthBomb(pxml.BombConfig{Width: 12, Parents: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	put("bomb", bomb)

	// (a) The bomb is refused upfront: 422 intractable, fast.
	start := time.Now()
	status, body, _ := query("bomb", "PROB OBJECT leaf0")
	if status != http.StatusUnprocessableEntity || codeOf(body) != "intractable" {
		t.Fatalf("bomb query: status %d code %q body %s", status, codeOf(body), body)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("refusal took %v, want fast upfront admission", d)
	}
	// A width-bomb ESTIMATE over the step budget is refused as
	// budget_exceeded (fewer samples would fit) with a retry hint.
	status, body, hdr := query("bomb", "ESTIMATE 100000000 EXISTS bomb.arm")
	if status != http.StatusServiceUnavailable || codeOf(body) != "budget_exceeded" {
		t.Fatalf("bomb estimate: status %d code %q body %s", status, codeOf(body), body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("budget_exceeded missing Retry-After header")
	}

	// (b) Two more bombs reach the threshold; the shape's breaker opens
	// and sheds fast.
	for i := 0; i < 2; i++ {
		query("bomb", "PROB OBJECT leaf0")
	}
	status, body, _ = query("bomb", "PROB OBJECT leaf0")
	if status != http.StatusServiceUnavailable || codeOf(body) != "breaker_open" {
		t.Fatalf("after repeated bombs: status %d code %q body %s", status, codeOf(body), body)
	}

	// (d) Healthy instances are untouched by the bomb's breaker: point
	// queries answer and writes land while bombs are being shed.
	if status, body, _ := query("healthy", "PROB EXISTS R.n1"); status != http.StatusOK {
		t.Fatalf("healthy query during shedding: %d %s", status, body)
	}
	put("healthy2", w.PI)

	// The open breaker is observable in /v1/metrics.
	mresp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	var payload struct {
		Governor struct {
			QueryMaxNodes int64 `json:"query_max_nodes"`
			Breaker       map[string]struct {
				State string `json:"state"`
			} `json:"breaker"`
		} `json:"governor"`
	}
	if err := json.Unmarshal(mbody, &payload); err != nil {
		t.Fatalf("decoding /v1/metrics: %v\n%s", err, mbody)
	}
	if payload.Governor.QueryMaxNodes != 1048576 {
		t.Errorf("governor.query_max_nodes = %d, want 1048576", payload.Governor.QueryMaxNodes)
	}
	if st := payload.Governor.Breaker["bomb.point"].State; st != "open" {
		t.Errorf("breaker bomb.point state = %q, want open\n%s", st, mbody)
	}

	// (c) Half-open probing, both outcomes. After the cooldown the bomb's
	// point circuit admits a probe; every point query on that instance is
	// intractable, so the probe fails and the circuit reopens at once.
	time.Sleep(700 * time.Millisecond)
	status, body, _ = query("bomb", "PROB OBJECT leaf0")
	if codeOf(body) != "intractable" {
		t.Fatalf("half-open probe not admitted: status %d code %q", status, codeOf(body))
	}
	status, body, _ = query("bomb", "PROB OBJECT leaf0")
	if codeOf(body) != "breaker_open" {
		t.Fatalf("failed probe did not reopen: status %d code %q", status, codeOf(body))
	}
	// For the reclosing outcome, open a circuit on a statement shape that
	// CAN succeed: trip the healthy instance's estimate circuit with
	// over-budget sample counts, wait out the cooldown, and probe with a
	// cheap estimate.
	for i := 0; i < 3; i++ {
		if _, b, _ := query("healthy", "ESTIMATE 100000000 EXISTS R.n1"); codeOf(b) != "budget_exceeded" {
			t.Fatalf("estimate trip %d: %s", i, b)
		}
	}
	if _, b, _ := query("healthy", "ESTIMATE 10 EXISTS R.n1"); codeOf(b) != "breaker_open" {
		t.Fatalf("healthy estimate circuit should be open: %s", b)
	}
	time.Sleep(700 * time.Millisecond)
	if status, b, _ := query("healthy", "ESTIMATE 10 EXISTS R.n1"); status != http.StatusOK {
		t.Fatalf("half-open probe failed: %d %s", status, b)
	}
	// Reclosed: cheap estimates flow freely again.
	for i := 0; i < 2; i++ {
		if status, b, _ := query("healthy", "ESTIMATE 10 EXISTS R.n1"); status != http.StatusOK {
			t.Fatalf("post-reclose estimate %d: %d %s", i, status, b)
		}
	}
}

// Package fixtures provides shared test data: the paper's running
// bibliographic example (Figures 1 and 2) and randomized small
// probabilistic instances for property-based testing. It lives outside the
// _test files so every package's tests and the examples can reuse it.
package fixtures

import (
	"fmt"
	"math/rand"

	"pxml/internal/core"
	"pxml/internal/model"
	"pxml/internal/prob"
	"pxml/internal/sets"
)

// Figure1 builds the deterministic semistructured instance of Figure 1.
func Figure1() *model.Instance {
	s := model.NewInstance("R")
	must(s.RegisterType(model.NewType("title-type", "VQDB", "Lore")))
	must(s.RegisterType(model.NewType("institution-type", "Stanford", "UMD")))
	type edge struct{ from, to, l string }
	for _, e := range []edge{
		{"R", "B1", "book"}, {"R", "B2", "book"}, {"R", "B3", "book"},
		{"B1", "T1", "title"}, {"B1", "A1", "author"}, {"B1", "A2", "author"},
		{"B2", "A1", "author"}, {"B2", "A2", "author"}, {"B2", "A3", "author"},
		{"B3", "T2", "title"}, {"B3", "A3", "author"},
		{"A1", "I1", "institution"}, {"A2", "I1", "institution"},
		{"A2", "I2", "institution"}, {"A3", "I2", "institution"},
	} {
		must(s.AddEdge(e.from, e.to, e.l))
	}
	must(s.SetLeaf("T1", "title-type", "VQDB"))
	must(s.SetLeaf("T2", "title-type", "Lore"))
	must(s.SetLeaf("I1", "institution-type", "Stanford"))
	must(s.SetLeaf("I2", "institution-type", "UMD"))
	return s
}

// Figure2 builds the probabilistic instance of Figure 2, the paper's
// running example. Leaf VPFs are point masses on the Figure 1 values so
// that Example 4.1's hand computation reproduces exactly. Note the weak
// instance graph is a DAG, not a tree: B1 and B2 share the potential
// authors A1 and A2, and A1 and A2 share the potential institution I1.
func Figure2() *core.ProbInstance {
	pi := core.NewProbInstance("R")
	must(pi.RegisterType(model.NewType("title-type", "VQDB", "Lore")))
	must(pi.RegisterType(model.NewType("institution-type", "Stanford", "UMD")))

	pi.SetLCh("R", "book", "B1", "B2", "B3")
	pi.SetCard("R", "book", 2, 3)
	opf(pi, "R", e("0.2", "B1", "B2"), e("0.2", "B1", "B3"), e("0.2", "B2", "B3"), e("0.4", "B1", "B2", "B3"))

	pi.SetLCh("B1", "title", "T1")
	pi.SetLCh("B1", "author", "A1", "A2")
	pi.SetCard("B1", "author", 1, 2)
	pi.SetCard("B1", "title", 0, 1)
	opf(pi, "B1",
		e("0.3", "A1"), e("0.35", "A1", "T1"),
		e("0.1", "A2"), e("0.15", "A2", "T1"),
		e("0.05", "A1", "A2"), e("0.05", "A1", "A2", "T1"))

	pi.SetLCh("B2", "author", "A1", "A2", "A3")
	pi.SetCard("B2", "author", 2, 2)
	opf(pi, "B2", e("0.4", "A1", "A2"), e("0.4", "A1", "A3"), e("0.2", "A2", "A3"))

	pi.SetLCh("B3", "title", "T2")
	pi.SetLCh("B3", "author", "A3")
	pi.SetCard("B3", "author", 1, 1)
	pi.SetCard("B3", "title", 1, 1)
	opf(pi, "B3", e("1.0", "A3", "T2"))

	pi.SetLCh("A1", "institution", "I1")
	pi.SetCard("A1", "institution", 0, 1)
	opf(pi, "A1", e("0.2"), e("0.8", "I1"))

	pi.SetLCh("A2", "institution", "I1", "I2")
	pi.SetCard("A2", "institution", 1, 1)
	opf(pi, "A2", e("0.5", "I1"), e("0.5", "I2"))

	pi.SetLCh("A3", "institution", "I2")
	pi.SetCard("A3", "institution", 1, 1)
	opf(pi, "A3", e("1.0", "I2"))

	must(pi.SetLeafType("T1", "title-type"))
	must(pi.SetLeafType("T2", "title-type"))
	must(pi.SetLeafType("I1", "institution-type"))
	must(pi.SetLeafType("I2", "institution-type"))
	pi.SetVPF("T1", prob.PointMass("VQDB"))
	pi.SetVPF("T2", prob.PointMass("Lore"))
	pi.SetVPF("I1", prob.PointMass("Stanford"))
	pi.SetVPF("I2", prob.PointMass("UMD"))
	return pi
}

// Figure2VariedLeaves is Figure2 with non-degenerate leaf VPFs, exercising
// value distributions in tests.
func Figure2VariedLeaves() *core.ProbInstance {
	pi := Figure2()
	t1 := prob.NewVPF()
	t1.Put("VQDB", 0.7)
	t1.Put("Lore", 0.3)
	pi.SetVPF("T1", t1)
	i1 := prob.NewVPF()
	i1.Put("Stanford", 0.6)
	i1.Put("UMD", 0.4)
	pi.SetVPF("I1", i1)
	return pi
}

type entry struct {
	p   float64
	ids []string
}

func e(p string, ids ...string) entry {
	var f float64
	if _, err := fmt.Sscanf(p, "%g", &f); err != nil {
		panic(err)
	}
	return entry{p: f, ids: ids}
}

func opf(pi *core.ProbInstance, o model.ObjectID, es ...entry) {
	w := prob.NewOPF()
	for _, en := range es {
		w.Put(sets.NewSet(en.ids...), en.p)
	}
	pi.SetOPF(o, w)
}

// RandomConfig controls RandomInstance.
type RandomConfig struct {
	// MaxDepth bounds the tree/DAG depth (levels below the root).
	MaxDepth int
	// MaxChildren bounds the number of potential children per object.
	MaxChildren int
	// DAG allows cross edges that share children between parents of the
	// same level, producing non-tree weak instance graphs.
	DAG bool
	// WithCard adds random non-trivial cardinality constraints.
	WithCard bool
	// LeafDomain is the leaf value domain size (0 leaves untyped).
	LeafDomain int
}

// RandomInstance builds a small random valid probabilistic instance for
// property-based tests. Object counts stay small enough (≤ ~40) for the
// enumeration oracle to remain tractable.
func RandomInstance(r *rand.Rand, cfg RandomConfig) *core.ProbInstance {
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 3
	}
	if cfg.MaxChildren <= 0 {
		cfg.MaxChildren = 3
	}
	pi := core.NewProbInstance("r")
	// The type name encodes the domain size so instances generated with
	// different configurations still share compatible type registries
	// (e.g. when combined by a Cartesian product).
	leafType := fmt.Sprintf("leaf%d", cfg.LeafDomain)
	if cfg.LeafDomain > 0 {
		dom := make([]string, cfg.LeafDomain)
		for i := range dom {
			dom[i] = fmt.Sprintf("v%d", i)
		}
		must(pi.RegisterType(model.NewType(leafType, dom...)))
	}
	counter := 0
	labels := []string{"a", "b"}
	level := []model.ObjectID{"r"}
	for depth := 0; depth < cfg.MaxDepth && len(level) > 0; depth++ {
		var next []model.ObjectID
		for _, o := range level {
			n := r.Intn(cfg.MaxChildren + 1)
			if o == "r" && n == 0 {
				n = 1 // keep the instance non-trivial
			}
			if n == 0 {
				continue
			}
			perLabel := make(map[string][]model.ObjectID)
			used := make(map[model.ObjectID]bool)
			for i := 0; i < n; i++ {
				var c model.ObjectID
				// In DAG mode occasionally reuse a child created for an
				// earlier parent at this level.
				if cfg.DAG && len(next) > 0 && r.Intn(3) == 0 {
					c = next[r.Intn(len(next))]
					if used[c] {
						continue
					}
				} else {
					counter++
					c = fmt.Sprintf("o%d", counter)
					next = append(next, c)
				}
				used[c] = true
				l := labels[r.Intn(len(labels))]
				perLabel[l] = append(perLabel[l], c)
			}
			for l, cs := range perLabel {
				pi.SetLCh(o, l, cs...)
				if cfg.WithCard && r.Intn(2) == 0 {
					lo := r.Intn(2)
					hi := lo + r.Intn(len(cs)-lo+1)
					if hi == 0 {
						// card [0,0] would delete the children from the
						// weak instance graph, leaving them unreachable.
						hi = 1
					}
					pi.SetCard(o, l, lo, hi)
				}
			}
		}
		level = next
	}
	// Assign OPFs to non-leaves and VPFs to typed leaves.
	for _, o := range pi.Objects() {
		if pi.IsLeaf(o) {
			if cfg.LeafDomain > 0 {
				must(pi.SetLeafType(o, leafType))
				v := prob.NewVPF()
				total := 0.0
				weights := make([]float64, cfg.LeafDomain)
				for i := range weights {
					weights[i] = r.Float64() + 1e-3
					total += weights[i]
				}
				for i, wt := range weights {
					v.Put(fmt.Sprintf("v%d", i), wt/total)
				}
				pi.SetVPF(o, v)
			}
			continue
		}
		pc, err := pi.PotentialChildSets(o, core.DefaultPCLimit)
		must(err)
		w := prob.NewOPF()
		total := 0.0
		weights := make([]float64, len(pc))
		for i := range pc {
			weights[i] = r.Float64() + 1e-3
			total += weights[i]
		}
		for i, c := range pc {
			w.Put(c, weights[i]/total)
		}
		pi.SetOPF(o, w)
	}
	return pi
}

// RandomTree returns a random instance whose weak instance graph is a tree
// (the structure the Section 6 fast algorithms assume).
func RandomTree(r *rand.Rand) *core.ProbInstance {
	return RandomInstance(r, RandomConfig{MaxDepth: 1 + r.Intn(3), MaxChildren: 1 + r.Intn(3), WithCard: r.Intn(2) == 0, LeafDomain: r.Intn(3)})
}

// RandomDAG returns a random instance whose weak instance graph may share
// children across parents.
func RandomDAG(r *rand.Rand) *core.ProbInstance {
	return RandomInstance(r, RandomConfig{MaxDepth: 1 + r.Intn(3), MaxChildren: 1 + r.Intn(3), DAG: true, WithCard: r.Intn(2) == 0, LeafDomain: r.Intn(3)})
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

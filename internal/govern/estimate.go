package govern

import (
	"math"

	"pxml/internal/core"
	"pxml/internal/model"
)

// Profile is the upfront width/cost estimate for one probabilistic
// instance: the structural quantities that determine how expensive
// inference can get, computed in O(objects + OPF entries) without
// allocating any factor tables. MaxCPTCells mirrors bayes.Compile's
// CPT construction cell for cell, so "Profile says it fits" and "the
// compile's own pre-allocation guard passes" agree.
//
// Cell counts are float64 on purpose: a width-bomb's CPT size overflows
// int64 long before it overflows float64's exponent, and the estimator
// must refuse such instances, not wrap around into a plausible number.
type Profile struct {
	// Objects reachable from the root (only those enter the BN).
	Objects int
	// Tree reports whether the weak instance graph is a tree (the
	// ε-algorithms apply; no BN compile needed for path queries).
	Tree bool
	// MaxFanout is the largest potential child set in any OPF entry.
	MaxFanout int
	// MaxOPFEntries is the entry count of the widest local distribution
	// (an OPF over b optional children holds up to 2^b entries).
	MaxOPFEntries int
	// TotalOPFEntries sums OPF and VPF entries over reachable objects —
	// the dominant per-sample and per-ε-pass scan cost.
	TotalOPFEntries int64
	// MaxCPTCells is the cell count of the largest conditional
	// probability table bayes.Compile would materialize.
	MaxCPTCells float64
	// TotalCPTCells sums predicted CPT cells over the compiled network —
	// a lower bound on exact-inference work before elimination even starts.
	TotalCPTCells float64
	// WorldsFloor is a lower bound on |Domain(I)|: each positive root
	// child set yields at least one distinct possible world.
	WorldsFloor float64
	// WidestObject names the object owning MaxCPTCells (diagnostics).
	WidestObject string
}

// Measure computes the Profile for pi. It never allocates proportional
// to the predicted cost — that is the point.
func Measure(pi *core.ProbInstance) Profile {
	p := Profile{Tree: pi.IsTree(), WorldsFloor: 1}
	g := pi.WeakInstance.Graph()
	root := pi.Root()
	reach := make(map[model.ObjectID]bool)
	for _, o := range g.ReachableFrom(root) {
		reach[o] = true
	}
	p.Objects = len(reach)

	// First pass: per-object BN state counts, mirroring bayes.Compile
	// (positive OPF entries for interior objects, positive VPF entries
	// or a single "present" state for leaves, +1 absent for non-roots).
	states := make(map[model.ObjectID]int, len(reach))
	for o := range reach {
		n := 0
		if !pi.IsLeaf(o) {
			if opf := pi.OPF(o); opf != nil {
				entries := opf.Entries()
				if len(entries) > p.MaxOPFEntries {
					p.MaxOPFEntries = len(entries)
				}
				p.TotalOPFEntries += int64(len(entries))
				for _, e := range entries {
					if len(e.Set) > p.MaxFanout {
						p.MaxFanout = len(e.Set)
					}
					if e.Prob > 0 {
						n++
					}
				}
				if o == root && n > 1 {
					p.WorldsFloor = float64(n)
				}
			}
		} else if vpf := pi.VPF(o); vpf != nil {
			p.TotalOPFEntries += int64(vpf.Len())
			for _, e := range vpf.Entries() {
				if e.Prob > 0 {
					n++
				}
			}
		} else {
			n = 1
		}
		if o != root {
			n++
		}
		if n < 1 {
			// A zero-state variable is invalid input, not a cost blowup;
			// count it as 1 so products stay meaningful.
			n = 1
		}
		states[o] = n
	}

	// Second pass: predicted CPT cells per object — its own cardinality
	// times the product of its kept (reachable) parents' cardinalities.
	for o := range reach {
		cells := float64(states[o])
		for _, par := range g.Parents(o) {
			if reach[par] {
				cells *= float64(states[par])
			}
		}
		p.TotalCPTCells += cells
		if cells > p.MaxCPTCells {
			p.MaxCPTCells = cells
			p.WidestObject = o
		}
	}
	return p
}

// ClampSteps converts a float64 cell/step count to an int64 suitable
// for Governor bookkeeping without overflow.
func ClampSteps(f float64) int64 {
	if f >= math.MaxInt64/2 {
		return math.MaxInt64 / 2
	}
	if f < 0 {
		return 0
	}
	return int64(f)
}

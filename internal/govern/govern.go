// Package govern is the per-query resource governor: a cooperative
// budget (wall-clock deadline via context, a step budget counting the
// work units the inference kernels visit, and an approximate allocation
// budget) carried through the evaluation by context, plus the upfront
// width/cost estimator (estimate.go) that refuses provably-over-budget
// queries before they allocate, and the per-key circuit breaker
// (breaker.go) the serving path uses to shed statement shapes that
// repeatedly trip their budgets.
//
// The PXML exact operators (variable elimination over the compiled BN,
// the ε-algorithms, possible-world enumeration) blow up as 2^b on wide
// OPF nodes, so a single adversarial statement can otherwise pin a CPU
// and the heap long after its HTTP request has been abandoned. Kernels
// call Step/Alloc at loop boundaries; both check the budget and the
// context's cancellation, so a cancelled or over-budget query unwinds
// within one loop iteration instead of running to completion.
//
// All Governor methods are nil-safe: library callers that never attach
// a governor pay one nil check and behave exactly as before.
package govern

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// ErrBudgetExceeded reports that a query ran past its configured runtime
// cost budget (step or byte). It is retryable in principle: a cheaper
// variant of the query (fewer samples, tighter path) may fit.
var ErrBudgetExceeded = errors.New("govern: query cost budget exceeded")

// ErrIntractable reports that the upfront estimator proved the query
// cannot complete within the configured budgets (or the hard factor-size
// cap) — it was refused before allocating. Retrying the same statement
// cannot succeed.
var ErrIntractable = errors.New("govern: query provably exceeds resource budget")

// Budget is the per-query resource envelope. The zero value imposes no
// limits (cancellation is still propagated by the governor).
type Budget struct {
	// Deadline bounds one query's wall-clock evaluation; 0 = none.
	// Callers apply it to the context before constructing the governor
	// (New does not start timers).
	Deadline time.Duration
	// MaxSteps bounds the cooperative step budget: the number of work
	// units (objects visited, OPF entries scanned, factor-table cells
	// filled, worlds materialized) one query may touch. 0 = unlimited.
	MaxSteps int64
	// MaxBytes bounds the approximate bytes one query may allocate for
	// inference state (factor tables, enumeration state). 0 = unlimited.
	MaxBytes int64
}

// IsZero reports whether the budget imposes no limits.
func (b Budget) IsZero() bool {
	return b.Deadline == 0 && b.MaxSteps == 0 && b.MaxBytes == 0
}

// Governor enforces one query's Budget. It is safe for concurrent use
// (batch evaluation fans one query's work over goroutines) and nil-safe:
// every method on a nil *Governor is a no-op that returns nil.
type Governor struct {
	ctx      context.Context
	done     <-chan struct{}
	maxSteps int64
	maxBytes int64

	steps    atomic.Int64
	bytes    atomic.Int64
	estimate atomic.Int64 // upfront predicted steps, for observability
}

// New builds a governor enforcing b against ctx's cancellation. The
// Deadline field is ignored here — apply it to ctx (context.WithTimeout)
// before calling New so that cancellation has a single source.
func New(ctx context.Context, b Budget) *Governor {
	return &Governor{
		ctx:      ctx,
		done:     ctx.Done(),
		maxSteps: b.MaxSteps,
		maxBytes: b.MaxBytes,
	}
}

type ctxKey struct{}

// With returns a context carrying g; From retrieves it.
func With(ctx context.Context, g *Governor) context.Context {
	return context.WithValue(ctx, ctxKey{}, g)
}

// From returns the governor carried by ctx, or nil.
func From(ctx context.Context) *Governor {
	g, _ := ctx.Value(ctxKey{}).(*Governor)
	return g
}

// Step charges n work units and reports whether the query should stop:
// a non-nil error means the step budget is exhausted or the context was
// cancelled. Kernels call it at loop boundaries with batched charges
// (one OPF scan, one factor table, one sample) so the per-call cost —
// an atomic add and a non-blocking channel poll — stays far below the
// work it meters.
func (g *Governor) Step(n int64) error {
	if g == nil {
		return nil
	}
	if s := g.steps.Add(n); g.maxSteps > 0 && s > g.maxSteps {
		return fmt.Errorf("%w: %d work units over the %d-unit step budget", ErrBudgetExceeded, s, g.maxSteps)
	}
	return g.poll()
}

// Alloc charges n bytes of inference state and reports whether the
// query should stop. Kernels call it BEFORE allocating (the point is to
// refuse the allocation, not to account for it after the heap grew).
func (g *Governor) Alloc(n int64) error {
	if g == nil {
		return nil
	}
	if b := g.bytes.Add(n); g.maxBytes > 0 && b > g.maxBytes {
		return fmt.Errorf("%w: %d bytes over the %d-byte allocation budget", ErrBudgetExceeded, b, g.maxBytes)
	}
	return g.poll()
}

// Err checks cancellation and the budgets without charging anything.
func (g *Governor) Err() error {
	if g == nil {
		return nil
	}
	if s := g.steps.Load(); g.maxSteps > 0 && s > g.maxSteps {
		return fmt.Errorf("%w: %d work units over the %d-unit step budget", ErrBudgetExceeded, s, g.maxSteps)
	}
	return g.poll()
}

// poll is the non-blocking cancellation check.
func (g *Governor) poll() error {
	select {
	case <-g.done:
		if err := g.ctx.Err(); err != nil {
			return err
		}
		return context.Canceled
	default:
		return nil
	}
}

// Steps returns the work units charged so far (the query's actual cost).
func (g *Governor) Steps() int64 {
	if g == nil {
		return 0
	}
	return g.steps.Load()
}

// Bytes returns the inference bytes charged so far.
func (g *Governor) Bytes() int64 {
	if g == nil {
		return 0
	}
	return g.bytes.Load()
}

// SetEstimate records the upfront predicted step cost (the admission
// estimator's figure), so observers can compare estimated vs actual.
func (g *Governor) SetEstimate(n int64) {
	if g != nil {
		g.estimate.Store(n)
	}
}

// Estimate returns the recorded predicted step cost (0 when none).
func (g *Governor) Estimate() int64 {
	if g == nil {
		return 0
	}
	return g.estimate.Load()
}

package govern

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"pxml/internal/core"
	"pxml/internal/prob"
	"pxml/internal/sets"
)

func TestNilGovernorIsNoop(t *testing.T) {
	var g *Governor
	if err := g.Step(1 << 40); err != nil {
		t.Fatalf("nil Step: %v", err)
	}
	if err := g.Alloc(1 << 40); err != nil {
		t.Fatalf("nil Alloc: %v", err)
	}
	if err := g.Err(); err != nil {
		t.Fatalf("nil Err: %v", err)
	}
	if g.Steps() != 0 || g.Bytes() != 0 || g.Estimate() != 0 {
		t.Fatal("nil counters nonzero")
	}
	g.SetEstimate(7) // must not panic
}

func TestStepBudget(t *testing.T) {
	g := New(context.Background(), Budget{MaxSteps: 100})
	if err := g.Step(100); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	err := g.Step(1)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	if err := g.Err(); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("Err after exhaustion: %v", err)
	}
}

func TestAllocBudget(t *testing.T) {
	g := New(context.Background(), Budget{MaxBytes: 1 << 20})
	if err := g.Alloc(1 << 20); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	if err := g.Alloc(1); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
}

func TestCancellationPropagates(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := New(ctx, Budget{})
	if err := g.Step(1); err != nil {
		t.Fatalf("before cancel: %v", err)
	}
	cancel()
	if err := g.Step(1); !errors.Is(err, context.Canceled) {
		t.Fatalf("after cancel: %v", err)
	}
	if err := g.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err after cancel: %v", err)
	}
}

func TestContextRoundTrip(t *testing.T) {
	if From(context.Background()) != nil {
		t.Fatal("empty context carries a governor")
	}
	g := New(context.Background(), Budget{MaxSteps: 5})
	ctx := With(context.Background(), g)
	if From(ctx) != g {
		t.Fatal("From did not return the attached governor")
	}
}

func TestBudgetIsZero(t *testing.T) {
	if !(Budget{}).IsZero() {
		t.Fatal("zero budget not IsZero")
	}
	for _, b := range []Budget{{Deadline: time.Second}, {MaxSteps: 1}, {MaxBytes: 1}} {
		if b.IsZero() {
			t.Fatalf("%+v reported IsZero", b)
		}
	}
}

func TestClampSteps(t *testing.T) {
	if ClampSteps(1e30) != math.MaxInt64/2 {
		t.Fatal("huge not clamped")
	}
	if ClampSteps(-1) != 0 {
		t.Fatal("negative not clamped")
	}
	if ClampSteps(42) != 42 {
		t.Fatal("small distorted")
	}
}

// widthBombProfile builds a diamond DAG by hand: root → p parents, each
// parent's OPF over all subsets of the same w shared leaves. The leaf
// CPT conditions on every parent, so predicted cells ≈ 2·(2^w+1)^p.
func widthBomb(t *testing.T, parents, width int) *core.ProbInstance {
	t.Helper()
	pi := core.NewProbInstance("root")
	var ps []string
	for i := 0; i < parents; i++ {
		ps = append(ps, "p"+string(rune('a'+i)))
	}
	var ls []string
	for j := 0; j < width; j++ {
		ls = append(ls, "l"+string(rune('a'+j)))
	}
	pi.SetLCh("root", "p", ps...)
	rootOPF := prob.NewOPF()
	rootOPF.Put(sets.NewSet(ps...), 1)
	pi.SetOPF("root", rootOPF)
	for _, p := range ps {
		pi.SetLCh(p, "l", ls...)
		opf := prob.NewOPF()
		n := 1 << width
		for m := 0; m < n; m++ {
			var sub []string
			for j := 0; j < width; j++ {
				if m&(1<<j) != 0 {
					sub = append(sub, ls[j])
				}
			}
			opf.Put(sets.NewSet(sub...), 1/float64(n))
		}
		pi.SetOPF(p, opf)
	}
	return pi
}

func TestMeasureWidthBomb(t *testing.T) {
	pi := widthBomb(t, 4, 8)
	p := Measure(pi)
	if p.Tree {
		t.Fatal("diamond DAG measured as tree")
	}
	if p.Objects != 1+4+8 {
		t.Fatalf("objects = %d, want 13", p.Objects)
	}
	if p.MaxOPFEntries != 256 {
		t.Fatalf("max OPF entries = %d, want 256", p.MaxOPFEntries)
	}
	if p.MaxFanout != 8 {
		t.Fatalf("max fanout = %d, want 8", p.MaxFanout)
	}
	// Leaf CPT: 2 states × (256 positive + 1 absent)^4 parents.
	want := 2 * math.Pow(257, 4)
	if p.MaxCPTCells != want {
		t.Fatalf("max CPT cells = %g, want %g", p.MaxCPTCells, want)
	}
	if p.TotalCPTCells <= p.MaxCPTCells {
		t.Fatalf("total %g not above max %g", p.TotalCPTCells, p.MaxCPTCells)
	}
}

func TestMeasureOverflowSafe(t *testing.T) {
	// 10 parents × width 14: (2^14+1)^10 ≈ 1.4e42 overflows int64 by 20+
	// orders of magnitude; the float64 profile must stay finite, positive,
	// and enormous.
	pi := widthBomb(t, 10, 14)
	p := Measure(pi)
	if math.IsInf(p.MaxCPTCells, 0) || math.IsNaN(p.MaxCPTCells) {
		t.Fatalf("cells not finite: %g", p.MaxCPTCells)
	}
	if p.MaxCPTCells < 1e40 {
		t.Fatalf("cells = %g, expected ≥ 1e40", p.MaxCPTCells)
	}
	if ClampSteps(p.MaxCPTCells) != math.MaxInt64/2 {
		t.Fatal("clamp should saturate")
	}
}

func TestMeasureTree(t *testing.T) {
	pi := core.NewProbInstance("r")
	pi.SetLCh("r", "a", "x", "y")
	opf := prob.NewOPF()
	opf.Put(sets.NewSet("x"), 0.5)
	opf.Put(sets.NewSet("x", "y"), 0.5)
	pi.SetOPF("r", opf)
	p := Measure(pi)
	if !p.Tree {
		t.Fatal("tree not detected")
	}
	if p.WorldsFloor != 2 {
		t.Fatalf("worlds floor = %g, want 2", p.WorldsFloor)
	}
	// r: 2 states, no parents → 2 cells; x,y: (1 present + 1 absent)
	// states × r's 2 states = 4 cells each.
	if p.MaxCPTCells != 4 {
		t.Fatalf("max CPT cells = %g, want 4 — profile %+v", p.MaxCPTCells, p)
	}
	if p.TotalCPTCells != 10 {
		t.Fatalf("total CPT cells = %g, want 10", p.TotalCPTCells)
	}
}

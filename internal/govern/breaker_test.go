package govern

import (
	"testing"
	"time"
)

// fakeClock is a manually-advanced clock for breaker tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(threshold, probes int, cooldown time.Duration) (*Breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(BreakerConfig{Threshold: threshold, Cooldown: cooldown, Probes: probes, Now: clk.now})
	return b, clk
}

func TestBreakerDisabled(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 0})
	if b != nil {
		t.Fatal("threshold 0 should return nil breaker")
	}
	if ok, _ := b.Allow("x"); !ok {
		t.Fatal("nil breaker must always allow")
	}
	b.Record("x", true) // must not panic
	if b.StateOf("x") != BreakerClosed {
		t.Fatal("nil breaker state not closed")
	}
	if b.Status() != nil {
		t.Fatal("nil breaker status not nil")
	}
}

func TestBreakerOpensAfterThreshold(t *testing.T) {
	b, _ := newTestBreaker(3, 1, 10*time.Second)
	for i := 0; i < 2; i++ {
		if ok, _ := b.Allow("estimate"); !ok {
			t.Fatalf("trip %d rejected while closed", i)
		}
		b.Record("estimate", true)
	}
	if st := b.StateOf("estimate"); st != BreakerClosed {
		t.Fatalf("state after 2 trips = %v, want closed", st)
	}
	b.Allow("estimate")
	b.Record("estimate", true)
	if st := b.StateOf("estimate"); st != BreakerOpen {
		t.Fatalf("state after 3 trips = %v, want open", st)
	}
	ok, retry := b.Allow("estimate")
	if ok {
		t.Fatal("open breaker admitted a request")
	}
	if retry <= 0 || retry > 10*time.Second {
		t.Fatalf("retryAfter = %v, want (0, 10s]", retry)
	}
	// Other keys are independent.
	if ok, _ := b.Allow("point"); !ok {
		t.Fatal("unrelated shape rejected")
	}
	b.Record("point", false)
}

func TestBreakerSuccessResetsTrips(t *testing.T) {
	b, _ := newTestBreaker(3, 1, time.Second)
	b.Allow("s")
	b.Record("s", true)
	b.Allow("s")
	b.Record("s", true)
	b.Allow("s")
	b.Record("s", false) // success wipes the streak
	b.Allow("s")
	b.Record("s", true)
	b.Allow("s")
	b.Record("s", true)
	if st := b.StateOf("s"); st != BreakerClosed {
		t.Fatalf("non-consecutive trips opened the breaker: %v", st)
	}
}

func TestBreakerHalfOpenRecloses(t *testing.T) {
	b, clk := newTestBreaker(2, 2, 10*time.Second)
	b.Allow("s")
	b.Record("s", true)
	b.Allow("s")
	b.Record("s", true)
	if b.StateOf("s") != BreakerOpen {
		t.Fatal("not open after threshold")
	}
	clk.advance(5 * time.Second)
	if ok, _ := b.Allow("s"); ok {
		t.Fatal("admitted during cooldown")
	}
	clk.advance(6 * time.Second)
	// First post-cooldown request becomes a probe.
	if ok, _ := b.Allow("s"); !ok {
		t.Fatal("probe rejected after cooldown")
	}
	if b.StateOf("s") != BreakerHalfOpen {
		t.Fatal("not half-open during probe")
	}
	// Second concurrent probe fits (Probes=2); a third is shed.
	if ok, _ := b.Allow("s"); !ok {
		t.Fatal("second probe rejected")
	}
	if ok, _ := b.Allow("s"); ok {
		t.Fatal("third request admitted beyond probe cap")
	}
	b.Record("s", false)
	if b.StateOf("s") != BreakerHalfOpen {
		t.Fatal("closed after 1 of 2 required successes")
	}
	b.Record("s", false)
	if b.StateOf("s") != BreakerClosed {
		t.Fatal("did not reclose after required successes")
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b, clk := newTestBreaker(1, 1, 10*time.Second)
	b.Allow("s")
	b.Record("s", true)
	clk.advance(11 * time.Second)
	if ok, _ := b.Allow("s"); !ok {
		t.Fatal("probe rejected")
	}
	b.Record("s", true) // probe trips → reopen, cooldown restarts
	if b.StateOf("s") != BreakerOpen {
		t.Fatal("failed probe did not reopen")
	}
	clk.advance(5 * time.Second)
	if ok, _ := b.Allow("s"); ok {
		t.Fatal("admitted before restarted cooldown elapsed")
	}
	clk.advance(6 * time.Second)
	if ok, _ := b.Allow("s"); !ok {
		t.Fatal("probe rejected after restarted cooldown")
	}
	b.Record("s", false)
	if b.StateOf("s") != BreakerClosed {
		t.Fatal("did not close after successful probe")
	}
}

func TestBreakerStatus(t *testing.T) {
	b, _ := newTestBreaker(1, 1, time.Second)
	b.Allow("s")
	b.Record("s", true)
	b.Allow("s") // shed
	st := b.Status()["s"]
	if st.State != "open" || st.Opens != 1 || st.Shed != 1 {
		t.Fatalf("status = %+v", st)
	}
}

package govern

import (
	"sync"
	"time"
)

// BreakerState is one key's position in the closed → open → half-open
// cycle. The numeric values double as the breaker_state gauge encoding.
type BreakerState int

const (
	BreakerClosed   BreakerState = 0
	BreakerHalfOpen BreakerState = 1
	BreakerOpen     BreakerState = 2
)

func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerConfig tunes a Breaker.
type BreakerConfig struct {
	// Threshold is the number of consecutive trips (budget exhaustion,
	// deadline expiry, kernel panic) that opens a key's breaker.
	// <= 0 disables the breaker entirely.
	Threshold int
	// Cooldown is how long an open breaker sheds before admitting
	// half-open probes. 0 defaults to 10s.
	Cooldown time.Duration
	// Probes is the number of consecutive half-open successes required
	// to close again, and the cap on concurrent half-open probes.
	// 0 defaults to 1.
	Probes int
	// Now is the clock; nil means time.Now. Tests inject a fake.
	Now func() time.Time
}

// Breaker is a per-key circuit breaker. The serving path keys it by
// pxql statement shape: a shape that keeps tripping its budget (a
// width-bomb ESTIMATE hammered in a retry loop) opens and sheds in
// O(map lookup) instead of re-running the estimator and parser for
// every attempt, then recloses via half-open probing once the bombs
// stop. All methods are safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu sync.Mutex
	m  map[string]*breakerEntry
}

type breakerEntry struct {
	state    BreakerState
	fails    int       // consecutive trips while closed
	openedAt time.Time // when the breaker last opened
	probing  int       // in-flight half-open probes
	succ     int       // consecutive half-open successes
	opens    int64     // cumulative closed→open transitions
	shed     int64     // requests rejected while open/half-open
}

// NewBreaker builds a breaker. A Threshold <= 0 returns nil — every
// method is nil-safe and behaves as an always-closed breaker, so
// "disabled" needs no call-site branching.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Threshold <= 0 {
		return nil
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 10 * time.Second
	}
	if cfg.Probes <= 0 {
		cfg.Probes = 1
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Breaker{cfg: cfg, m: make(map[string]*breakerEntry)}
}

// Allow reports whether a request for key may proceed. When it returns
// false, retryAfter is how long the caller should tell the client to
// wait (the cooldown remainder, or a short beat while a probe is in
// flight). Every Allow must be paired with exactly one Record for the
// same key once the request finishes.
func (b *Breaker) Allow(key string) (ok bool, retryAfter time.Duration) {
	if b == nil {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entry(key)
	switch e.state {
	case BreakerClosed:
		return true, 0
	case BreakerOpen:
		now := b.cfg.Now()
		if remain := e.openedAt.Add(b.cfg.Cooldown).Sub(now); remain > 0 {
			e.shed++
			return false, remain
		}
		// Cooldown elapsed: admit this request as the first probe.
		e.state = BreakerHalfOpen
		e.succ = 0
		e.probing = 1
		return true, 0
	default: // half-open
		if e.probing < b.cfg.Probes {
			e.probing++
			return true, 0
		}
		e.shed++
		return false, time.Second
	}
}

// Record reports the outcome of an admitted request: tripped=true means
// the request hit its budget, its deadline, or panicked — the failures
// the breaker exists to contain. Client-side cancellation is NOT a trip
// (the statement shape did nothing wrong) and callers must pass false.
func (b *Breaker) Record(key string, tripped bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entry(key)
	switch e.state {
	case BreakerClosed:
		if !tripped {
			e.fails = 0
			return
		}
		e.fails++
		if e.fails >= b.cfg.Threshold {
			e.state = BreakerOpen
			e.openedAt = b.cfg.Now()
			e.opens++
		}
	case BreakerOpen:
		// A straggler admitted before the breaker opened. A fresh trip
		// restarts the cooldown — failures are still arriving.
		if tripped {
			e.openedAt = b.cfg.Now()
		}
	default: // half-open: this is a probe landing
		if e.probing > 0 {
			e.probing--
		}
		if tripped {
			e.state = BreakerOpen
			e.openedAt = b.cfg.Now()
			e.opens++
			e.succ = 0
			e.probing = 0
			return
		}
		e.succ++
		if e.succ >= b.cfg.Probes {
			e.state = BreakerClosed
			e.fails = 0
			e.succ = 0
			e.probing = 0
		}
	}
}

// StateOf returns key's current state (closed for unknown keys).
func (b *Breaker) StateOf(key string) BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if e, ok := b.m[key]; ok {
		return e.state
	}
	return BreakerClosed
}

// BreakerStatus is one key's observable state for /v1/metrics.
type BreakerStatus struct {
	State            string `json:"state"`
	ConsecutiveTrips int    `json:"consecutive_trips"`
	Opens            int64  `json:"opens"`
	Shed             int64  `json:"shed"`
}

// Status snapshots every key the breaker has seen.
func (b *Breaker) Status() map[string]BreakerStatus {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]BreakerStatus, len(b.m))
	for k, e := range b.m {
		out[k] = BreakerStatus{
			State:            e.state.String(),
			ConsecutiveTrips: e.fails,
			Opens:            e.opens,
			Shed:             e.shed,
		}
	}
	return out
}

func (b *Breaker) entry(key string) *breakerEntry {
	e, ok := b.m[key]
	if !ok {
		e = &breakerEntry{}
		b.m[key] = e
	}
	return e
}

package vfs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"syscall"
	"time"
)

// ErrInjected is the default error a FaultFS rule returns. Tests can
// match it with errors.Is even when the store wraps it.
var ErrInjected = errors.New("vfs: injected fault")

// ErrDiskFull is the error DiskFull rules inject. It wraps both
// ErrInjected and syscall.ENOSPC, so callers can match either the
// generic "a fault fired" sentinel or the specific errno real kernels
// return when the volume fills.
var ErrDiskFull = fmt.Errorf("%w: disk full: %w", ErrInjected, syscall.ENOSPC)

// Op names one filesystem operation class for fault matching.
type Op string

const (
	OpMkdir      Op = "mkdir"
	OpOpenAppend Op = "open-append"
	OpCreate     Op = "create" // CreateTemp
	OpOpen       Op = "open"
	OpRead       Op = "read"  // ReadFile
	OpWrite      Op = "write" // File.Write and WriteFile
	OpSync       Op = "sync"  // File.Sync and FS.Sync
	OpSyncDir    Op = "sync-dir"
	OpRename     Op = "rename"
	OpLink       Op = "link"
	OpRemove     Op = "remove"
	OpTruncate   Op = "truncate" // File.Truncate and FS.Truncate
	OpGlob       Op = "glob"
	OpReadDir    Op = "read-dir"
)

// Rule describes one deterministic fault. A rule matches an operation
// when Op equals the operation's class and Path (when non-empty) is a
// substring of the operation's target path. Matches are counted per
// rule; the rule fires on matches number After+1 through After+Times
// (Times == 0 fires forever once active).
type Rule struct {
	// Op is the operation class to intercept.
	Op Op
	// Path, when non-empty, restricts the rule to paths containing it.
	Path string
	// After skips this many matching operations before the rule starts
	// firing (0 = fire from the first match).
	After int
	// Times bounds how many operations the rule fires on; 0 = no bound.
	Times int
	// Err is the injected error; nil defaults to ErrInjected unless the
	// rule is latency-only (Delay > 0, ShortWrite == 0).
	Err error
	// ShortWrite, for OpWrite, passes only the first ShortWrite bytes of
	// the buffer to the underlying writer and then fails — a torn write.
	ShortWrite int
	// Delay is injected latency before the operation proceeds. A rule
	// with only Delay set slows the operation without failing it.
	Delay time.Duration
}

// latencyOnly reports whether the rule slows but does not fail.
func (r Rule) latencyOnly() bool {
	return r.Err == nil && r.ShortWrite == 0 && r.Delay > 0
}

type ruleState struct {
	Rule
	matched int // matching operations seen so far
	fired   int // operations the rule has fired on
}

// FaultFS wraps a base FS and injects failures according to a mutable
// rule set. Rules can be added at any time, including while a store is
// live — that is the point: flip a healthy store into a failing world
// mid-test. All methods are safe for concurrent use.
type FaultFS struct {
	base FS

	mu       sync.Mutex
	rules    []*ruleState
	injected map[Op]int
}

// NewFaultFS wraps base (nil means OS) with an empty rule set.
func NewFaultFS(base FS) *FaultFS {
	if base == nil {
		base = OS
	}
	return &FaultFS{base: base, injected: make(map[Op]int)}
}

// Inject adds a rule. Rules are evaluated in insertion order; the first
// firing rule wins.
func (f *FaultFS) Inject(r Rule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = append(f.rules, &ruleState{Rule: r})
}

// FailAll makes every subsequent matching operation fail with ErrInjected.
func (f *FaultFS) FailAll(op Op, path string) {
	f.Inject(Rule{Op: op, Path: path})
}

// FailNth makes the nth (1-based) matching operation fail with
// ErrInjected, counting from now.
func (f *FaultFS) FailNth(op Op, path string, n int) {
	f.Inject(Rule{Op: op, Path: path, After: n - 1, Times: 1})
}

// diskFullOps are the operation classes that allocate blocks and hence
// fail first when a volume fills: data writes, file creation, appends,
// directory creation, and the metadata writes rename/link need for new
// directory entries.
var diskFullOps = []Op{OpWrite, OpCreate, OpOpenAppend, OpMkdir, OpRename, OpLink}

// DiskFull simulates the volume running out of space for paths
// containing path (empty = everywhere): every subsequent operation that
// allocates blocks fails with ErrDiskFull (ENOSPC). Reads, syncs of
// already-written data, removes, and truncates still succeed — matching
// how a full ext4/xfs volume behaves, where freeing space is the only
// mutation that works. skipWrites lets that many OpWrite operations
// succeed first, so a test can land the fault mid-batch.
func (f *FaultFS) DiskFull(path string, skipWrites int) {
	for _, op := range diskFullOps {
		after := 0
		if op == OpWrite {
			after = skipWrites
		}
		f.Inject(Rule{Op: op, Path: path, After: after, Err: ErrDiskFull})
	}
}

// Reset drops all rules and injection counts.
func (f *FaultFS) Reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = nil
	f.injected = make(map[Op]int)
}

// Injected returns how many operations of class op have had a fault
// injected (latency-only rules count too).
func (f *FaultFS) Injected(op Op) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected[op]
}

// outcome is the decision check makes for one operation.
type outcome struct {
	delay time.Duration
	short int // >0: torn write of this many bytes, then err
	err   error
}

// check consults the rules for one operation. It never blocks while
// holding the lock; the caller sleeps any returned delay.
func (f *FaultFS) check(op Op, path string) outcome {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, rs := range f.rules {
		if rs.Op != op {
			continue
		}
		if rs.Path != "" && !strings.Contains(path, rs.Path) {
			continue
		}
		rs.matched++
		if rs.matched <= rs.After {
			continue
		}
		if rs.Times > 0 && rs.fired >= rs.Times {
			continue
		}
		rs.fired++
		f.injected[op]++
		out := outcome{delay: rs.Delay}
		if rs.latencyOnly() {
			return out
		}
		out.err = rs.Err
		if out.err == nil {
			out.err = fmt.Errorf("%w: %s %s", ErrInjected, op, path)
		}
		out.short = rs.ShortWrite
		return out
	}
	return outcome{}
}

// apply runs the rule decision for an operation with no payload: sleeps
// injected latency and returns the injected error, if any.
func (f *FaultFS) apply(op Op, path string) error {
	out := f.check(op, path)
	if out.delay > 0 {
		time.Sleep(out.delay)
	}
	return out.err
}

func (f *FaultFS) MkdirAll(dir string) error {
	if err := f.apply(OpMkdir, dir); err != nil {
		return err
	}
	return f.base.MkdirAll(dir)
}

func (f *FaultFS) OpenAppend(name string) (File, error) {
	if err := f.apply(OpOpenAppend, name); err != nil {
		return nil, err
	}
	file, err := f.base.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, File: file, path: name}, nil
}

func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	if err := f.apply(OpCreate, dir); err != nil {
		return nil, err
	}
	file, err := f.base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, File: file, path: file.Name()}, nil
}

func (f *FaultFS) Open(name string) (io.ReadCloser, error) {
	if err := f.apply(OpOpen, name); err != nil {
		return nil, err
	}
	return f.base.Open(name)
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if err := f.apply(OpRead, name); err != nil {
		return nil, err
	}
	return f.base.ReadFile(name)
}

func (f *FaultFS) WriteFile(name string, data []byte) error {
	out := f.check(OpWrite, name)
	if out.delay > 0 {
		time.Sleep(out.delay)
	}
	if out.err != nil {
		if out.short > 0 && out.short < len(data) {
			// Torn write: persist a prefix, then report failure.
			_ = f.base.WriteFile(name, data[:out.short])
		}
		return out.err
	}
	return f.base.WriteFile(name, data)
}

func (f *FaultFS) Rename(oldname, newname string) error {
	if err := f.apply(OpRename, newname); err != nil {
		return err
	}
	return f.base.Rename(oldname, newname)
}

func (f *FaultFS) Link(oldname, newname string) error {
	if err := f.apply(OpLink, newname); err != nil {
		return err
	}
	return f.base.Link(oldname, newname)
}

func (f *FaultFS) Remove(name string) error {
	if err := f.apply(OpRemove, name); err != nil {
		return err
	}
	return f.base.Remove(name)
}

func (f *FaultFS) Truncate(name string, size int64) error {
	if err := f.apply(OpTruncate, name); err != nil {
		return err
	}
	return f.base.Truncate(name, size)
}

func (f *FaultFS) Sync(name string) error {
	if err := f.apply(OpSync, name); err != nil {
		return err
	}
	return f.base.Sync(name)
}

func (f *FaultFS) SyncDir(dir string) error {
	if err := f.apply(OpSyncDir, dir); err != nil {
		return err
	}
	return f.base.SyncDir(dir)
}

func (f *FaultFS) Glob(pattern string) ([]string, error) {
	if err := f.apply(OpGlob, pattern); err != nil {
		return nil, err
	}
	return f.base.Glob(pattern)
}

func (f *FaultFS) ReadDir(dir string) ([]os.DirEntry, error) {
	if err := f.apply(OpReadDir, dir); err != nil {
		return nil, err
	}
	return f.base.ReadDir(dir)
}

// faultFile threads writes, syncs, and truncates on an open file back
// through the rule set.
type faultFile struct {
	fs *FaultFS
	File
	path string
}

func (f *faultFile) Write(p []byte) (int, error) {
	out := f.fs.check(OpWrite, f.path)
	if out.delay > 0 {
		time.Sleep(out.delay)
	}
	if out.err != nil {
		n := 0
		if out.short > 0 && out.short < len(p) {
			// Torn write: the prefix reaches the file, the rest is lost.
			n, _ = f.File.Write(p[:out.short])
		}
		return n, out.err
	}
	return f.File.Write(p)
}

func (f *faultFile) Sync() error {
	if err := f.fs.apply(OpSync, f.path); err != nil {
		return err
	}
	return f.File.Sync()
}

func (f *faultFile) Truncate(size int64) error {
	if err := f.fs.apply(OpTruncate, f.path); err != nil {
		return err
	}
	return f.File.Truncate(size)
}

// Package vfs abstracts the handful of filesystem operations the storage
// engine performs, so failure paths can be exercised deterministically.
// OS is the production implementation (a thin passthrough to package os);
// FaultFS wraps any FS and injects failures — nth-operation errors, short
// (torn) writes, fsync errors, rename failures, latency — letting
// crash-recovery and degraded-mode behavior be tested without killing
// processes or filling disks.
package vfs

import (
	"io"
	"os"
	"path/filepath"
)

// File is the writable-file surface the store needs from an open WAL or
// snapshot temp file.
type File interface {
	io.Writer
	io.Closer
	// Sync flushes the file to stable storage.
	Sync() error
	// Truncate resizes the file.
	Truncate(size int64) error
	// Name returns the path the file was opened with.
	Name() string
	// Size returns the current file length.
	Size() (int64, error)
}

// FS is the filesystem surface of the storage engine. Implementations
// must be safe for concurrent use.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// OpenAppend opens name for appending, creating it if absent.
	OpenAppend(name string) (File, error)
	// CreateTemp creates a new temp file in dir (pattern as in
	// os.CreateTemp).
	CreateTemp(dir, pattern string) (File, error)
	// Open opens name for reading.
	Open(name string) (io.ReadCloser, error)
	// ReadFile returns the contents of name.
	ReadFile(name string) ([]byte, error)
	// WriteFile writes data to name, creating or truncating it.
	WriteFile(name string, data []byte) error
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Link creates newname as a hard link to oldname. Implementations
	// backed by filesystems without hard links return an error; callers
	// that only need the bytes duplicated should fall back to CopyFile.
	Link(oldname, newname string) error
	// Remove deletes name.
	Remove(name string) error
	// Truncate resizes the named file.
	Truncate(name string, size int64) error
	// Sync fsyncs the named file (opened read-write just for the flush).
	Sync(name string) error
	// SyncDir fsyncs a directory entry so renames survive power loss.
	SyncDir(dir string) error
	// Glob returns the names matching pattern (filepath.Glob syntax).
	Glob(pattern string) ([]string, error)
	// ReadDir lists dir.
	ReadDir(dir string) ([]os.DirEntry, error)
}

// OS is the production FS: a direct passthrough to package os.
var OS FS = osFS{}

type osFS struct{}

type osFile struct{ *os.File }

func (f osFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) OpenAppend(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) Open(name string) (io.ReadCloser, error) { return os.Open(name) }

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) WriteFile(name string, data []byte) error {
	return os.WriteFile(name, data, 0o644)
}

func (osFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

func (osFS) Link(oldname, newname string) error { return os.Link(oldname, newname) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (osFS) Sync(name string) error {
	f, err := os.OpenFile(name, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

func (osFS) Glob(pattern string) ([]string, error) { return filepath.Glob(pattern) }

func (osFS) ReadDir(dir string) ([]os.DirEntry, error) { return os.ReadDir(dir) }

// CopyFile duplicates src to dst through fsys and fsyncs the copy, so
// backup and archive copies are durable before anyone records their
// existence. Every step goes through fsys, which lets a FaultFS fail or
// tear the copy deterministically.
func CopyFile(fsys FS, src, dst string) error {
	data, err := fsys.ReadFile(src)
	if err != nil {
		return err
	}
	if err := fsys.WriteFile(dst, data); err != nil {
		return err
	}
	return fsys.Sync(dst)
}

//go:build unix && !pxml_nommap

package vfs

import (
	"os"
	"syscall"
)

// Mmap maps name read-only. Empty files return a heap-backed Mapping:
// zero-length mmap is an EINVAL on Linux.
func (osFS) Mmap(name string) (*Mapping, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return &Mapping{}, nil
	}
	if size != int64(int(size)) {
		return nil, syscall.EFBIG
	}
	// MAP_SHARED is safe: the store never writes a live snapshot in
	// place — replacements arrive as a rename of a new inode, which
	// leaves existing mappings pointing at the old, now-immutable one.
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, err
	}
	return &Mapping{data: data, unmap: syscall.Munmap}, nil
}

package vfs

import (
	"runtime"
	"sync/atomic"
)

// Mapping is a read-only view of a whole file. Mapped views point at the
// kernel's page cache (zero heap copies); fallback views hold the file's
// bytes on the heap. Bytes must not be written through either way.
//
// Close is idempotent and releases the view. A finalizer also releases
// it when the Mapping becomes unreachable, so holders that hand
// sub-slices of Bytes to long-lived structures can simply keep the
// Mapping referenced from those structures and never call Close — the
// view unmaps only after the last referent is gone. After Close (or the
// finalizer) runs, previously returned sub-slices are dangling; see
// DESIGN.md §16 for the lifetime rules the store layers on top.
type Mapping struct {
	data   []byte
	closed atomic.Bool
	// unmap releases a kernel mapping; nil for heap-backed fallbacks.
	unmap func([]byte) error
}

// Bytes returns the mapped contents. The slice is valid until Close.
func (m *Mapping) Bytes() []byte { return m.data }

// Mapped reports whether the view is a true kernel mapping (false for
// the heap-backed fallback).
func (m *Mapping) Mapped() bool { return m.unmap != nil }

// Close releases the view. Safe to call more than once.
func (m *Mapping) Close() error {
	if m.closed.Swap(true) {
		return nil
	}
	runtime.SetFinalizer(m, nil)
	data := m.data
	m.data = nil
	if m.unmap != nil {
		return m.unmap(data)
	}
	return nil
}

// Mapper is an optional FS capability: filesystems that can memory-map
// a file implement it. Callers should not type-assert directly; MapFile
// performs the capability check and the fallback.
type Mapper interface {
	// Mmap maps name read-only in its entirety.
	Mmap(name string) (*Mapping, error)
}

// MapFile returns a read-only Mapping of name. When fsys supports
// mmap (OS on unix builds) the file is mapped; otherwise — FaultFS,
// non-unix builds, or the pxml_nommap build tag — the contents are read
// through fsys.ReadFile so fault injection still sees the access.
func MapFile(fsys FS, name string) (*Mapping, error) {
	if mp, ok := fsys.(Mapper); ok {
		m, err := mp.Mmap(name)
		if err != nil {
			return nil, err
		}
		runtime.SetFinalizer(m, func(m *Mapping) { m.Close() })
		return m, nil
	}
	data, err := fsys.ReadFile(name)
	if err != nil {
		return nil, err
	}
	return &Mapping{data: data}, nil
}

package vfs

import (
	"errors"
	"io"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

func TestOSFSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "a", "b")
	if err := OS.MkdirAll(sub); err != nil {
		t.Fatal(err)
	}

	wal := filepath.Join(sub, "wal.log")
	f, err := OS.OpenAppend(wal)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if n, err := f.Size(); err != nil || n != 11 {
		t.Fatalf("Size = %d, %v; want 11, nil", n, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := OS.ReadFile(wal)
	if err != nil || string(data) != "hello world" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	if err := OS.Truncate(wal, 5); err != nil {
		t.Fatal(err)
	}
	if data, _ = OS.ReadFile(wal); string(data) != "hello" {
		t.Fatalf("after truncate: %q", data)
	}
	if err := OS.Sync(wal); err != nil {
		t.Fatal(err)
	}

	tmp, err := OS.CreateTemp(sub, "snap-*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tmp.Write([]byte("snapshot")); err != nil {
		t.Fatal(err)
	}
	if err := tmp.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := tmp.Close(); err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(sub, "snapshot.pxs")
	if err := OS.Rename(tmp.Name(), snap); err != nil {
		t.Fatal(err)
	}
	if err := OS.SyncDir(sub); err != nil {
		t.Fatal(err)
	}

	rc, err := OS.Open(snap)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(rc)
	rc.Close()
	if string(got) != "snapshot" {
		t.Fatalf("Open read %q", got)
	}

	matches, err := OS.Glob(filepath.Join(sub, "*.pxs"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("Glob = %v, %v", matches, err)
	}
	entries, err := OS.ReadDir(sub)
	if err != nil || len(entries) != 2 {
		t.Fatalf("ReadDir = %v, %v", entries, err)
	}
	if err := OS.WriteFile(filepath.Join(sub, "w.bin"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := OS.Remove(filepath.Join(sub, "w.bin")); err != nil {
		t.Fatal(err)
	}
}

func TestFaultFSFailNth(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS)
	ffs.FailNth(OpWrite, "wal", 2)

	f, err := ffs.OpenAppend(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("one")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if _, err := f.Write([]byte("two")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write 2: want ErrInjected, got %v", err)
	}
	if _, err := f.Write([]byte("three")); err != nil {
		t.Fatalf("write 3: %v", err)
	}
	if got := ffs.Injected(OpWrite); got != 1 {
		t.Fatalf("Injected(write) = %d, want 1", got)
	}
	data, _ := OS.ReadFile(filepath.Join(dir, "wal.log"))
	if string(data) != "onethree" {
		t.Fatalf("file = %q, want %q", data, "onethree")
	}
}

func TestFaultFSShortWrite(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS)
	ffs.Inject(Rule{Op: OpWrite, ShortWrite: 4, Times: 1})

	f, err := ffs.OpenAppend(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	n, err := f.Write([]byte("abcdefgh"))
	if !errors.Is(err, ErrInjected) || n != 4 {
		t.Fatalf("Write = %d, %v; want 4, ErrInjected", n, err)
	}
	data, _ := OS.ReadFile(filepath.Join(dir, "wal.log"))
	if string(data) != "abcd" {
		t.Fatalf("torn file = %q, want %q", data, "abcd")
	}
}

func TestFaultFSSyncAndRename(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS)
	ffs.FailAll(OpSync, "")
	boom := errors.New("boom")
	ffs.Inject(Rule{Op: OpRename, Err: boom})

	f, err := ffs.OpenAppend(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Sync: want ErrInjected, got %v", err)
	}
	if err := ffs.Rename(f.Name(), filepath.Join(dir, "x")); !errors.Is(err, boom) {
		t.Fatalf("Rename: want boom, got %v", err)
	}
	// After Reset everything passes through again.
	ffs.Reset()
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync after Reset: %v", err)
	}
	if got := ffs.Injected(OpSync); got != 0 {
		t.Fatalf("Injected(sync) after Reset = %d, want 0", got)
	}
}

func TestFaultFSPathFilterAndAfter(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS)
	// Only removals of paths containing "snapshot" fail, and only the
	// 2nd and 3rd matching ones.
	ffs.Inject(Rule{Op: OpRemove, Path: "snapshot", After: 1, Times: 2})

	mk := func(name string) string {
		p := filepath.Join(dir, name)
		if err := OS.WriteFile(p, []byte("x")); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if err := ffs.Remove(mk("wal.log")); err != nil {
		t.Fatalf("non-matching remove: %v", err)
	}
	if err := ffs.Remove(mk("snapshot-1")); err != nil {
		t.Fatalf("1st matching remove should pass: %v", err)
	}
	if err := ffs.Remove(mk("snapshot-2")); !errors.Is(err, ErrInjected) {
		t.Fatalf("2nd matching remove: want ErrInjected, got %v", err)
	}
	if err := ffs.Remove(mk("snapshot-3")); !errors.Is(err, ErrInjected) {
		t.Fatalf("3rd matching remove: want ErrInjected, got %v", err)
	}
	if err := ffs.Remove(mk("snapshot-4")); err != nil {
		t.Fatalf("rule exhausted, remove should pass: %v", err)
	}
}

func TestFaultFSLatencyOnly(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS)
	ffs.Inject(Rule{Op: OpWrite, Delay: 20 * time.Millisecond, Times: 1})

	f, err := ffs.OpenAppend(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	start := time.Now()
	if _, err := f.Write([]byte("slow")); err != nil {
		t.Fatalf("latency-only write must succeed: %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("write returned after %v, want >= 20ms", d)
	}
	if got := ffs.Injected(OpWrite); got != 1 {
		t.Fatalf("Injected(write) = %d, want 1", got)
	}
}

func TestFaultFSConcurrent(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS)
	ffs.Inject(Rule{Op: OpSync, After: 50})

	f, err := ffs.OpenAppend(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 25; j++ {
				_, _ = f.Write([]byte("x"))
				_ = f.Sync()
			}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	if got := ffs.Injected(OpSync); got != 50 {
		t.Fatalf("Injected(sync) = %d, want 50", got)
	}
}

func TestFaultFSDiskFull(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(OS)
	f, err := ffs.OpenAppend(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("before")); err != nil {
		t.Fatalf("write before disk full: %v", err)
	}

	ffs.DiskFull("", 1) // one more write squeezes in, then the volume is full

	if _, err := f.Write([]byte("last")); err != nil {
		t.Fatalf("skipWrites should let one write through: %v", err)
	}
	_, err = f.Write([]byte("lost"))
	if !errors.Is(err, ErrDiskFull) {
		t.Fatalf("write on full disk = %v, want ErrDiskFull", err)
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("disk-full error should match syscall.ENOSPC, got %v", err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("disk-full error should match ErrInjected, got %v", err)
	}

	// Every allocating op fails...
	if _, err := ffs.CreateTemp(dir, "t-*"); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("CreateTemp = %v, want ENOSPC", err)
	}
	if _, err := ffs.OpenAppend(filepath.Join(dir, "other.log")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("OpenAppend = %v, want ENOSPC", err)
	}
	if err := ffs.MkdirAll(filepath.Join(dir, "sub")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("MkdirAll = %v, want ENOSPC", err)
	}
	if err := ffs.Rename(filepath.Join(dir, "wal.log"), filepath.Join(dir, "wal2.log")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Rename = %v, want ENOSPC", err)
	}

	// ...but reads, syncs, and removes still work: freeing space is the
	// only mutation a full volume allows.
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync on full disk: %v", err)
	}
	if data, err := ffs.ReadFile(filepath.Join(dir, "wal.log")); err != nil || string(data) != "beforelast" {
		t.Fatalf("ReadFile = %q, %v; want %q", data, err, "beforelast")
	}
	if err := ffs.Remove(filepath.Join(dir, "wal.log")); err != nil {
		t.Fatalf("Remove on full disk: %v", err)
	}
}

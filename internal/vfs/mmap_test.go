package vfs

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestMapFileOS(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "blob")
	want := bytes.Repeat([]byte("pxml-mmap "), 1000)
	if err := os.WriteFile(name, want, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := MapFile(OS, name)
	if err != nil {
		t.Fatalf("MapFile: %v", err)
	}
	if !bytes.Equal(m.Bytes(), want) {
		t.Fatalf("mapped bytes differ: got %d bytes", len(m.Bytes()))
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if m.Bytes() != nil {
		t.Fatal("Bytes non-nil after Close")
	}
}

func TestMapFileEmpty(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "empty")
	if err := os.WriteFile(name, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := MapFile(OS, name)
	if err != nil {
		t.Fatalf("MapFile: %v", err)
	}
	if len(m.Bytes()) != 0 {
		t.Fatalf("want empty, got %d bytes", len(m.Bytes()))
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestMapFileMissing(t *testing.T) {
	if _, err := MapFile(OS, filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("want error for missing file")
	}
}

// fallbackFS hides any Mapper capability, forcing the ReadFile path.
type fallbackFS struct{ FS }

func TestMapFileFallback(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "blob")
	want := []byte("fallback bytes")
	if err := os.WriteFile(name, want, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := MapFile(fallbackFS{OS}, name)
	if err != nil {
		t.Fatalf("MapFile: %v", err)
	}
	if m.Mapped() {
		t.Fatal("fallback mapping claims to be kernel-mapped")
	}
	if !bytes.Equal(m.Bytes(), want) {
		t.Fatal("fallback bytes differ")
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

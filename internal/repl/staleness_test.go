package repl

// Staleness accounting under a fake clock: the never-synced and
// diverged sentinels, clamping of clock-skewed (future) leader stamps,
// and the healing path where a caught-up 204 long-poll refreshes
// FreshAsOf without any bytes flowing.

import (
	"sync"
	"testing"
	"time"

	"pxml/internal/store"
)

// fakeClock is a hand-advanced time source for deterministic
// staleness/monitor tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	// Any fixed, non-zero instant works; using a readable one keeps
	// failure output sane.
	return &fakeClock{t: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// maxStaleness is the "effectively infinite" sentinel Staleness returns
// for never-synced and diverged followers.
const maxStaleness = time.Duration(1<<63 - 1)

func TestStalenessTable(t *testing.T) {
	base := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	for _, tc := range []struct {
		name   string
		status Status
		now    time.Time
		want   time.Duration
	}{
		{
			name:   "never-synced sentinel",
			status: Status{}, // zero FreshAsOf: no stamp, no caught-up poll yet
			now:    base,
			want:   maxStaleness,
		},
		{
			name: "diverged is infinitely stale even with a recent stamp",
			status: Status{
				FreshAsOf: base.Add(-time.Second),
				Diverged:  true,
			},
			now:  base,
			want: maxStaleness,
		},
		{
			name:   "normal lag",
			status: Status{FreshAsOf: base.Add(-3 * time.Second)},
			now:    base,
			want:   3 * time.Second,
		},
		{
			name:   "exactly fresh",
			status: Status{FreshAsOf: base},
			now:    base,
			want:   0,
		},
		{
			name: "clock-skewed stamp from the future clamps to zero",
			// The leader's wall clock ran ahead of ours: FreshAsOf is
			// later than local now. Negative staleness would read as
			// "fresher than fresh" and destabilize readiness math.
			status: Status{FreshAsOf: base.Add(45 * time.Second)},
			now:    base,
			want:   0,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.status.Staleness(tc.now); got != tc.want {
				t.Fatalf("Staleness(%v) = %v, want %v", tc.now, got, tc.want)
			}
		})
	}
}

// newTestPuller opens a real follower store (staleness reads positions
// and stamps through it) and wires the fake clock in.
func newTestPuller(t *testing.T, clock *fakeClock) *Puller {
	t.Helper()
	st, _, err := store.Open(t.TempDir(), store.Options{Follower: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	p, err := NewPuller(PullerConfig{
		Store:  st,
		Client: &Client{BaseURL: "http://unused.invalid"},
		now:    clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestStalenessHealsAfterCaughtUpPoll(t *testing.T) {
	clock := newFakeClock()
	p := newTestPuller(t, clock)

	// Before any exchange: infinitely stale, not ready.
	if got := p.Status().Staleness(clock.Now()); got != maxStaleness {
		t.Fatalf("pre-sync staleness = %v, want sentinel", got)
	}
	if p.Ready(time.Second) {
		t.Fatal("never-synced follower must not be ready")
	}

	// A caught-up 204 (empty chunk, position unchanged) is a freshness
	// proof: the long poll confirmed nothing is missing as of now, so
	// FreshAsOf heals to the poll time even though zero bytes flowed.
	p.noteExchange(Chunk{End: store.Pos{Seg: 1, Off: 0}}, clock.Now(), true)
	if got := p.Status().Staleness(clock.Now()); got != 0 {
		t.Fatalf("staleness after caught-up poll = %v, want 0", got)
	}
	if !p.Ready(time.Second) {
		t.Fatal("caught-up follower must be ready")
	}

	// Staleness accrues as the clock moves with no further contact...
	clock.Advance(2 * time.Second)
	if got := p.Status().Staleness(clock.Now()); got != 2*time.Second {
		t.Fatalf("staleness after 2s silence = %v, want 2s", got)
	}
	if p.Ready(time.Second) {
		t.Fatal("follower 2s stale must fail a 1s staleness gate")
	}

	// ...and heals again on the next caught-up confirmation.
	p.noteExchange(Chunk{End: store.Pos{Seg: 1, Off: 0}}, clock.Now(), true)
	if got := p.Status().Staleness(clock.Now()); got != 0 {
		t.Fatalf("staleness after healing poll = %v, want 0", got)
	}
	if !p.Ready(time.Second) {
		t.Fatal("healed follower must be ready again")
	}
}

func TestStalenessCaughtUpNeverRegressesFreshness(t *testing.T) {
	clock := newFakeClock()
	p := newTestPuller(t, clock)

	// A skewed stamp put FreshAsOf ahead of the local clock.
	future := clock.Now().Add(30 * time.Second)
	p.mu.Lock()
	p.status.FreshAsOf = future
	p.mu.Unlock()

	// A caught-up poll stamped with the (earlier) local now must not
	// drag freshness backwards.
	p.noteExchange(Chunk{}, clock.Now(), true)
	if got := p.Status().FreshAsOf; !got.Equal(future) {
		t.Fatalf("FreshAsOf regressed to %v, want %v", got, future)
	}
	// And staleness stays clamped at zero until the local clock catches
	// up with the skew.
	if got := p.Status().Staleness(clock.Now()); got != 0 {
		t.Fatalf("staleness under skew = %v, want 0", got)
	}
	clock.Advance(31 * time.Second)
	if got := p.Status().Staleness(clock.Now()); got != time.Second {
		t.Fatalf("staleness after skew expires = %v, want 1s", got)
	}
}

func TestStalenessNotCaughtUpDoesNotHeal(t *testing.T) {
	clock := newFakeClock()
	p := newTestPuller(t, clock)
	p.noteExchange(Chunk{}, clock.Now(), true)
	clock.Advance(5 * time.Second)

	// A partial exchange (bytes applied but still behind the leader's
	// committed end, and no stamp in the batch) proves contact, not
	// freshness: LastContact moves, FreshAsOf must not.
	p.noteExchange(Chunk{LagBytes: 1024}, clock.Now(), false)
	st := p.Status()
	if !st.LastContact.Equal(clock.Now()) {
		t.Fatalf("LastContact = %v, want %v", st.LastContact, clock.Now())
	}
	if got := st.Staleness(clock.Now()); got != 5*time.Second {
		t.Fatalf("staleness after non-caught-up exchange = %v, want 5s", got)
	}
}

package repl

// Flat tar packing for bootstrap transfers. A store backup is a flat
// directory of regular files (MANIFEST.json, snapshot, segments), so
// the archive format is deliberately restricted: no directories, no
// symlinks, no path separators. extractTar enforces that on the way in
// — a malicious or corrupt archive cannot escape the target directory.

import (
	"archive/tar"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// maxBootstrapFile caps one extracted file so a bad archive cannot fill
// the disk unbounded.
const maxBootstrapFile int64 = 16 << 30

// writeTar streams every regular file in dir (flat, sorted by name —
// os.ReadDir order) as a tar archive.
func writeTar(w io.Writer, dir string) error {
	tw := tar.NewWriter(w)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !e.Type().IsRegular() {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return err
		}
		hdr := &tar.Header{
			Name: e.Name(),
			Mode: 0o644,
			Size: info.Size(),
		}
		if err := tw.WriteHeader(hdr); err != nil {
			return err
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return err
		}
		_, err = io.Copy(tw, f)
		f.Close()
		if err != nil {
			return err
		}
	}
	return tw.Close()
}

// extractTar unpacks a flat archive produced by writeTar into dir,
// rejecting anything that is not a plain file with a bare name.
func extractTar(r io.Reader, dir string) error {
	tr := tar.NewReader(r)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("repl: bootstrap archive: %w", err)
		}
		name := hdr.Name
		if name == "" || name != filepath.Base(name) || strings.ContainsAny(name, `/\`) || name == ".." {
			return fmt.Errorf("repl: bootstrap archive: unsafe entry name %q", name)
		}
		if hdr.Typeflag != tar.TypeReg {
			return fmt.Errorf("repl: bootstrap archive: entry %q is not a regular file", name)
		}
		if hdr.Size < 0 || hdr.Size > maxBootstrapFile {
			return fmt.Errorf("repl: bootstrap archive: entry %q has bad size %d", name, hdr.Size)
		}
		f, err := os.OpenFile(filepath.Join(dir, name), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		_, err = io.Copy(f, io.LimitReader(tr, hdr.Size+1))
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("repl: bootstrap archive: extract %q: %w", name, err)
		}
	}
}

package repl

// The Puller is the follower's replication engine: a single goroutine
// that pulls stream chunks from the leader and applies them to the
// local follower store, forever. It owns the reconnect backoff, the
// lag/staleness bookkeeping the serving layer exposes in /v1/metrics
// and /readyz, and the sticky-divergence rule: once the leader says the
// local WAL is off its timeline, the puller parks permanently not-ready
// rather than risk serving spliced history.

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"pxml/internal/retry"
	"pxml/internal/store"
)

// PullerConfig configures a Puller. Store and Client are required;
// Store must have been opened with store.Options.Follower.
type PullerConfig struct {
	Store  *store.Store
	Client *Client
	// PollWait is the server-side long-poll per request (default
	// DefaultPollWait). It bounds how stale a caught-up follower's
	// freshness reading can get between confirmations.
	PollWait time.Duration
	// MaxChunk bounds one chunk's bytes (default MaxChunkBytes).
	MaxChunk int
	// Backoff paces reconnects after transient failures: BaseDelay up to
	// MaxDelay, doubling, jittered, reset on the next success. Default
	// 250ms..5s (retry.Default's shape). MaxAttempts is ignored — the
	// puller never gives up on transient errors.
	Backoff retry.Policy
	// OnApply, when set, observes every applied chunk — the serving
	// layer uses it to install changed instances into warm engines.
	OnApply func(store.ApplyResult)
	// OnRetarget, when set, observes leader changes: when the old leader
	// answers 409 epoch_fenced naming its successor, the puller swaps
	// Client.BaseURL to the new leader and reports the URL here so the
	// serving layer can retarget its write redirects too.
	OnRetarget func(leaderURL string)
	// Logf, when set, receives connection-state transitions.
	Logf func(format string, args ...any)
	// now stubs time in tests.
	now func() time.Time
}

// Status is a point-in-time snapshot of replication state.
type Status struct {
	// Pos is the follower's current WAL position.
	Pos store.Pos
	// LeaderEnd is the leader's committed position as of the last
	// successful exchange (zero before first contact).
	LeaderEnd store.Pos
	// LagBytes is the byte lag behind LeaderEnd as of the last exchange.
	LagBytes int64
	// LastStampNanos is the newest leader wall-clock stamp applied (unix
	// nanoseconds; 0 before any stamp).
	LastStampNanos int64
	// FreshAsOf is the newest instant the local data is known current
	// for: the wall-clock of the last applied stamp, or the local time
	// of the last caught-up confirmation, whichever is later. Zero until
	// the follower has synced once.
	FreshAsOf time.Time
	// LastContact is the local time of the last successful exchange with
	// the leader (zero before first contact).
	LastContact time.Time
	// CaughtUp reports whether the last exchange ended at the leader's
	// committed position.
	CaughtUp bool
	// Diverged reports the sticky divergence state: the leader rejected
	// this follower's WAL as off its timeline. Only a re-bootstrap
	// clears it.
	Diverged bool
	// LeaderEpoch is the highest leader epoch observed on the stream (0
	// before first contact or against a pre-epoch leader).
	LeaderEpoch uint64
	// LastErr is the most recent transient error, cleared on success.
	LastErr string
	// Counters since the puller started.
	ChunksApplied  int64
	BytesApplied   int64
	RecordsApplied int64
	Reconnects     int64
}

// Staleness reports how far behind the leader the local data may be at
// now: time since FreshAsOf. Before the first sync it is time since the
// puller started; on a diverged follower it is effectively infinite.
func (s Status) Staleness(now time.Time) time.Duration {
	if s.Diverged || s.FreshAsOf.IsZero() {
		return 1<<63 - 1
	}
	d := now.Sub(s.FreshAsOf)
	if d < 0 {
		d = 0
	}
	return d
}

// Puller replicates one leader into one follower store.
type Puller struct {
	cfg PullerConfig

	mu     sync.Mutex
	status Status
}

// NewPuller validates cfg and returns a Puller ready to Run.
func NewPuller(cfg PullerConfig) (*Puller, error) {
	if cfg.Store == nil || cfg.Client == nil {
		return nil, fmt.Errorf("repl: puller needs a store and a client")
	}
	if cfg.PollWait <= 0 {
		cfg.PollWait = DefaultPollWait
	}
	if cfg.MaxChunk <= 0 || cfg.MaxChunk > MaxChunkBytes {
		cfg.MaxChunk = MaxChunkBytes
	}
	if cfg.Backoff.BaseDelay <= 0 {
		cfg.Backoff.BaseDelay = 250 * time.Millisecond
	}
	if cfg.Backoff.MaxDelay <= 0 {
		cfg.Backoff.MaxDelay = 5 * time.Second
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	return &Puller{cfg: cfg}, nil
}

// Status returns a snapshot of the replication state, with Pos read
// fresh from the store.
func (p *Puller) Status() Status {
	p.mu.Lock()
	s := p.status
	p.mu.Unlock()
	s.Pos = p.cfg.Store.Pos()
	if stamp := p.cfg.Store.LastReplStamp(); stamp > s.LastStampNanos {
		s.LastStampNanos = stamp
	}
	return s
}

// Ready reports whether the follower should serve: not diverged, synced
// at least once, and no staler than maxStaleness (0 disables the
// staleness gate but still requires one sync and no divergence).
func (p *Puller) Ready(maxStaleness time.Duration) bool {
	s := p.Status()
	if s.Diverged || s.FreshAsOf.IsZero() {
		return false
	}
	return maxStaleness <= 0 || s.Staleness(p.cfg.now()) <= maxStaleness
}

func (p *Puller) logf(format string, args ...any) {
	if p.cfg.Logf != nil {
		p.cfg.Logf(format, args...)
	}
}

// Run pulls and applies until ctx is cancelled (returns ctx.Err()), the
// leader declares divergence (returns an error matching ErrDiverged),
// or the local store refuses an apply for a non-positional reason, e.g.
// it degraded (returns that error). Transient failures — network,
// overload, leader restarts — are retried forever with capped backoff.
func (p *Puller) Run(ctx context.Context) error {
	delay := p.cfg.Backoff.BaseDelay
	wasConnected := false
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		from := p.cfg.Store.Pos()
		chunk, err := p.cfg.Client.Stream(ctx, from, p.cfg.MaxChunk, p.cfg.PollWait, p.cfg.Store.Epoch())
		now := p.cfg.now()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if errors.Is(err, ErrDiverged) {
				p.mu.Lock()
				p.status.Diverged = true
				p.status.CaughtUp = false
				p.status.LastErr = err.Error()
				p.mu.Unlock()
				p.logf("repl: follower diverged from leader at %s: %v", from, err)
				return err
			}
			if errors.Is(err, store.ErrEpochFenced) {
				// The node we stream from was superseded. If it named its
				// successor, follow the new leader immediately; otherwise
				// keep polling with backoff — the fenced node learns the
				// successor from the demote notification or its own probe
				// and names it on a later response.
				if leader := FencedLeader(err); leader != "" && leader != p.cfg.Client.BaseURL {
					p.logf("repl: leader %s fenced; retargeting to %s", p.cfg.Client.BaseURL, leader)
					p.cfg.Client.BaseURL = leader
					if p.cfg.OnRetarget != nil {
						p.cfg.OnRetarget(leader)
					}
					p.mu.Lock()
					p.status.LastErr = ""
					p.status.Reconnects++
					p.mu.Unlock()
					delay = p.cfg.Backoff.BaseDelay
					wasConnected = false
					continue
				}
			}
			p.mu.Lock()
			p.status.LastErr = err.Error()
			p.status.CaughtUp = false
			if wasConnected {
				p.status.Reconnects++
			}
			p.mu.Unlock()
			if wasConnected {
				p.logf("repl: lost leader at %s: %v", from, err)
			}
			wasConnected = false
			// Jittered capped exponential backoff, reset on success.
			wait := delay/2 + time.Duration(rand.Int64N(int64(delay/2)+1))
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(wait):
			}
			if delay *= 2; delay > p.cfg.Backoff.MaxDelay {
				delay = p.cfg.Backoff.MaxDelay
			}
			continue
		}
		delay = p.cfg.Backoff.BaseDelay
		if !wasConnected {
			p.logf("repl: streaming from leader at %s (lag %d bytes)", chunk.From, chunk.LagBytes)
		}
		wasConnected = true

		if len(chunk.Data) == 0 && chunk.From == from {
			// Caught up: the long poll confirmed nothing is missing as of
			// now. The response still carries the leader's epoch — adopt it,
			// or a follower bootstrapped straight to the leader's position
			// (no chunk ever flows) would never learn the current era.
			if chunk.Epoch > p.cfg.Store.Epoch() {
				if err := p.cfg.Store.AdoptEpoch(chunk.Epoch); err != nil {
					p.logf("repl: epoch adopt failed: %v", err)
				}
			}
			p.noteExchange(chunk, now, true)
			continue
		}
		res, err := p.cfg.Store.ReplApply(chunk.From, chunk.Epoch, chunk.Data)
		if err != nil {
			if errors.Is(err, store.ErrApplyMismatch) {
				// Raced a concurrent position change (e.g. recovery); loop
				// re-reads Pos and resumes.
				p.mu.Lock()
				p.status.LastErr = err.Error()
				p.mu.Unlock()
				continue
			}
			if errors.Is(err, store.ErrEpochFenced) {
				// The chunk came from a superseded era (our store has seen
				// a higher epoch than the node serving us). Don't apply,
				// don't die: back off and re-poll — our requests carry our
				// epoch, so a stale leader fences itself and names the
				// successor, and the retarget path above takes over.
				p.mu.Lock()
				p.status.LastErr = err.Error()
				p.status.CaughtUp = false
				p.mu.Unlock()
				select {
				case <-ctx.Done():
					return ctx.Err()
				case <-time.After(delay):
				}
				continue
			}
			p.mu.Lock()
			p.status.LastErr = err.Error()
			p.status.CaughtUp = false
			p.mu.Unlock()
			return fmt.Errorf("repl: apply at %s: %w", chunk.From, err)
		}
		p.mu.Lock()
		p.status.ChunksApplied++
		p.status.BytesApplied += int64(len(chunk.Data))
		p.status.RecordsApplied += int64(res.Records)
		if res.StampNanos > p.status.LastStampNanos {
			p.status.LastStampNanos = res.StampNanos
			if t := time.Unix(0, res.StampNanos); t.After(p.status.FreshAsOf) {
				p.status.FreshAsOf = t
			}
		}
		p.mu.Unlock()
		p.noteExchange(chunk, now, res.Pos == chunk.End)
		if p.cfg.OnApply != nil {
			p.cfg.OnApply(res)
		}
	}
}

// noteExchange records a successful leader exchange.
func (p *Puller) noteExchange(chunk Chunk, now time.Time, caughtUp bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.status.LastContact = now
	p.status.LeaderEnd = chunk.End
	p.status.LagBytes = chunk.LagBytes
	p.status.CaughtUp = caughtUp
	p.status.LastErr = ""
	if chunk.Epoch > p.status.LeaderEpoch {
		p.status.LeaderEpoch = chunk.Epoch
	}
	if caughtUp && now.After(p.status.FreshAsOf) {
		p.status.FreshAsOf = now
	}
}

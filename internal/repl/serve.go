package repl

// Leader-side HTTP handlers. They live next to the client so both ends
// of the wire share one definition of the protocol; internal/server
// mounts them behind its own auth, instrumentation, and admission
// layers.

import (
	"errors"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"time"

	"pxml/internal/apiv1"
	"pxml/internal/store"
)

// ServeStream answers one GET /v1/repl/stream request against st,
// long-polling at the tail for up to the client's wait_ms (capped at
// MaxPollWait, defaulting to DefaultPollWait).
//
// onSuperseded, when non-nil, is invoked (once, before the 409 is
// written) when the request's epoch parameter proves a higher leader
// era exists than st's own: the serving layer uses it to fence the
// store and tear down leader-only machinery. A fenced store answers
// every stream request with 409 epoch_fenced plus X-Pxml-Repl-Leader
// when the successor is known — followers of the old leader retarget
// off that header.
func ServeStream(w http.ResponseWriter, r *http.Request, st *store.Store, onSuperseded func(epoch uint64)) {
	q := r.URL.Query()
	from, err := store.ParsePos(q.Get(ParamFrom))
	if err != nil {
		apiv1.WriteError(w, http.StatusBadRequest, apiv1.CodeInvalidRequest,
			fmt.Sprintf("bad %s: %v", ParamFrom, err))
		return
	}
	var peerEpoch uint64
	if v := q.Get(ParamEpoch); v != "" {
		peerEpoch, err = strconv.ParseUint(v, 10, 64)
		if err != nil {
			apiv1.WriteError(w, http.StatusBadRequest, apiv1.CodeInvalidRequest,
				fmt.Sprintf("bad %s: %q", ParamEpoch, v))
			return
		}
	}
	// A follower that has seen a higher epoch than ours is proof we were
	// superseded: fence before serving a single byte. Only a node still
	// acting as leader can be superseded this way — followers legally
	// chain at any epoch.
	if peerEpoch > st.Epoch() && !st.IsFollower() {
		if onSuperseded != nil {
			onSuperseded(peerEpoch)
		} else {
			_ = st.Fence(peerEpoch, "")
		}
	}
	if writeFenced(w, st) {
		return
	}
	maxBytes := 0
	if v := q.Get(ParamMaxBytes); v != "" {
		maxBytes, err = strconv.Atoi(v)
		if err != nil || maxBytes < 0 {
			apiv1.WriteError(w, http.StatusBadRequest, apiv1.CodeInvalidRequest,
				fmt.Sprintf("bad %s: %q", ParamMaxBytes, v))
			return
		}
	}
	if maxBytes <= 0 || maxBytes > MaxChunkBytes {
		maxBytes = MaxChunkBytes
	}
	wait := DefaultPollWait
	if v := q.Get(ParamWaitMS); v != "" {
		ms, err := strconv.Atoi(v)
		if err != nil || ms < 0 {
			apiv1.WriteError(w, http.StatusBadRequest, apiv1.CodeInvalidRequest,
				fmt.Sprintf("bad %s: %q", ParamWaitMS, v))
			return
		}
		wait = time.Duration(ms) * time.Millisecond
	}
	if wait > MaxPollWait {
		wait = MaxPollWait
	}

	deadline := time.Now().Add(wait)
	for {
		// Grab the commit signal before reading: a commit that lands
		// between the read and the wait then wakes us instead of being
		// missed.
		sig := st.CommitSignal()
		chunk, err := st.ReadStream(from, maxBytes)
		if err != nil {
			if errors.Is(err, store.ErrTimelineDiverged) {
				apiv1.WriteError(w, http.StatusConflict, apiv1.CodeTimelineDiverged, err.Error())
				return
			}
			apiv1.WriteError(w, http.StatusInternalServerError, apiv1.CodeInternal, err.Error())
			return
		}
		if len(chunk.Data) > 0 || chunk.From != from {
			// Data, or a rotation cue (empty body, From moved to the next
			// segment's start).
			writeChunkHeaders(w, chunk)
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("Content-Length", strconv.Itoa(len(chunk.Data)))
			w.WriteHeader(http.StatusOK)
			w.Write(chunk.Data)
			return
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			writeChunkHeaders(w, chunk)
			w.WriteHeader(http.StatusNoContent)
			return
		}
		t := time.NewTimer(remain)
		select {
		case <-sig:
			t.Stop()
		case <-t.C:
		case <-r.Context().Done():
			t.Stop()
			return
		}
	}
}

func writeChunkHeaders(w http.ResponseWriter, chunk store.StreamChunk) {
	h := w.Header()
	h.Set(HeaderFrom, chunk.From.String())
	h.Set(HeaderNext, chunk.Next.String())
	h.Set(HeaderEnd, chunk.End.String())
	h.Set(HeaderLag, strconv.FormatInt(chunk.LagBytes, 10))
	h.Set(HeaderEpoch, strconv.FormatUint(chunk.Epoch, 10))
}

// writeFenced answers 409 epoch_fenced (naming the successor leader in
// X-Pxml-Repl-Leader when known) if st has been fenced, reporting
// whether it wrote. A fenced node serves neither the stream nor
// bootstraps: its history may have forked from the new era's, and
// feeding it to followers would spread the fork.
func writeFenced(w http.ResponseWriter, st *store.Store) bool {
	fenced, epoch, leader := st.Fenced()
	if !fenced {
		return false
	}
	if leader != "" {
		w.Header().Set(HeaderLeader, leader)
	}
	w.Header().Set(HeaderEpoch, strconv.FormatUint(epoch, 10))
	apiv1.WriteError(w, http.StatusConflict, apiv1.CodeEpochFenced,
		fmt.Sprintf("node fenced at epoch %d; replicate from the current leader", epoch))
	return true
}

// ServeBootstrap answers one GET /v1/repl/bootstrap request: it takes a
// fresh backup of st into a temporary directory and streams it out as a
// tar archive a follower can restore from.
func ServeBootstrap(w http.ResponseWriter, r *http.Request, st *store.Store) {
	if writeFenced(w, st) {
		return
	}
	tmp, err := os.MkdirTemp("", "pxml-bootstrap-")
	if err != nil {
		apiv1.WriteError(w, http.StatusInternalServerError, apiv1.CodeInternal, err.Error())
		return
	}
	defer os.RemoveAll(tmp)
	man, err := st.Backup(tmp)
	if err != nil {
		if errors.Is(err, store.ErrDegraded) {
			apiv1.WriteErrorRetry(w, http.StatusServiceUnavailable, apiv1.CodeDegraded, err.Error(), 5*time.Second)
			return
		}
		apiv1.WriteError(w, http.StatusInternalServerError, apiv1.CodeInternal, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/x-tar")
	w.Header().Set(HeaderEnd, man.Pos.String())
	w.Header().Set(HeaderEpoch, strconv.FormatUint(st.Epoch(), 10))
	w.WriteHeader(http.StatusOK)
	// A write error here means the follower went away mid-download; it
	// will retry the bootstrap from scratch.
	_ = writeTar(w, tmp)
}

// Package repl implements streaming WAL replication between pxmld
// nodes: a leader serves its write-ahead log as raw CRC-framed chunks
// addressed by store.Pos, and followers replay that stream into a
// byte-identical local WAL through store.ReplApply, serving reads from
// their own warm engines while routing writes back to the leader.
//
// The wire protocol is deliberately thin — the WAL frame format already
// self-describes and self-verifies (see internal/store), so replication
// ships segment bytes verbatim and carries positions in headers:
//
//	GET /v1/repl/stream?from=SEG:OFF&max_bytes=N&wait_ms=MS
//	  200  body = raw frames; X-Pxml-Repl-From names where they start
//	       (the requested position normalized past a rotation boundary —
//	       an empty 200 body with a moved From is the rotation cue),
//	       X-Pxml-Repl-Next where to resume, X-Pxml-Repl-End the
//	       leader's committed position, X-Pxml-Repl-Lag-Bytes the byte
//	       lag at Next.
//	  204  caught up: the long poll expired with nothing new.
//	  409  {"error":{"code":"timeline_diverged"}} — the position is not
//	       on this leader's timeline (restore gap, trimmed history, or
//	       bytes the leader never wrote). The follower cannot catch up
//	       by replaying and must re-bootstrap.
//	  401  bearer token required/wrong (when the leader enables auth).
//
//	GET /v1/repl/bootstrap
//	  200  application/x-tar of a fresh, verified store backup. The
//	       follower unpacks and restores it (keeping the leader's
//	       segment numbering), then resumes the stream from the restored
//	       position.
//
// Divergence is sticky by design: a follower whose WAL is not a prefix
// of the leader's history must never serve spliced data, so the puller
// parks not-ready until an operator re-bootstraps it.
package repl

import "time"

// Route paths, shared by the leader-side handlers and the client.
const (
	StreamPath    = "/v1/repl/stream"
	BootstrapPath = "/v1/repl/bootstrap"
)

// Stream response headers. Positions render as "seg:off" (store.Pos).
const (
	HeaderFrom = "X-Pxml-Repl-From"
	HeaderNext = "X-Pxml-Repl-Next"
	HeaderEnd  = "X-Pxml-Repl-End"
	HeaderLag  = "X-Pxml-Repl-Lag-Bytes"
)

// Stream request query parameters.
const (
	ParamFrom     = "from"
	ParamMaxBytes = "max_bytes"
	ParamWaitMS   = "wait_ms"
)

// DefaultPollWait is how long a stream request long-polls at the tail
// before answering 204, unless the client asks otherwise.
const DefaultPollWait = 2 * time.Second

// MaxPollWait caps client-requested long-poll waits so a stream request
// can never pin a connection indefinitely.
const MaxPollWait = 30 * time.Second

// MaxChunkBytes caps one stream response body. Larger catch-ups take
// multiple round trips, which keeps per-request memory bounded on both
// sides and lets lag metrics refresh as the follower closes the gap.
const MaxChunkBytes = 4 << 20

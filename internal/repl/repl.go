// Package repl implements streaming WAL replication between pxmld
// nodes: a leader serves its write-ahead log as raw CRC-framed chunks
// addressed by store.Pos, and followers replay that stream into a
// byte-identical local WAL through store.ReplApply, serving reads from
// their own warm engines while routing writes back to the leader.
//
// The wire protocol is deliberately thin — the WAL frame format already
// self-describes and self-verifies (see internal/store), so replication
// ships segment bytes verbatim and carries positions in headers:
//
//	GET /v1/repl/stream?from=SEG:OFF&max_bytes=N&wait_ms=MS&epoch=E
//	  200  body = raw frames; X-Pxml-Repl-From names where they start
//	       (the requested position normalized past a rotation boundary —
//	       an empty 200 body with a moved From is the rotation cue),
//	       X-Pxml-Repl-Next where to resume, X-Pxml-Repl-End the
//	       leader's committed position, X-Pxml-Repl-Lag-Bytes the byte
//	       lag at Next, X-Pxml-Repl-Epoch the leader epoch the bytes
//	       were committed under.
//	  204  caught up: the long poll expired with nothing new (epoch
//	       header still present).
//	  409  {"error":{"code":"timeline_diverged"}} — the position is not
//	       on this leader's timeline (restore gap, trimmed history, or
//	       bytes the leader never wrote). The follower cannot catch up
//	       by replaying and must re-bootstrap.
//	  409  {"error":{"code":"epoch_fenced"}} — this node has been
//	       superseded by a higher leader epoch and no longer serves the
//	       stream; X-Pxml-Repl-Leader names the successor when known, so
//	       the puller can retarget. The optional epoch=E request
//	       parameter is the follower's highest-seen epoch: a leader that
//	       receives a higher one than its own fences itself on the spot.
//	  401  bearer token required/wrong (when the leader enables auth).
//
//	GET /v1/repl/bootstrap
//	  200  application/x-tar of a fresh, verified store backup. The
//	       follower unpacks and restores it (keeping the leader's
//	       segment numbering), then resumes the stream from the restored
//	       position.
//
// Divergence is sticky by design: a follower whose WAL is not a prefix
// of the leader's history must never serve spliced data, so the puller
// parks not-ready until an operator re-bootstraps it.
package repl

import "time"

// Route paths, shared by the leader-side handlers and the client.
const (
	StreamPath    = "/v1/repl/stream"
	BootstrapPath = "/v1/repl/bootstrap"
	// EpochPath answers the lightweight peer epoch probe:
	// {"epoch":N,"role":"leader|follower|fenced","leader":"url"}.
	EpochPath = "/v1/repl/epoch"
)

// Stream response headers. Positions render as "seg:off" (store.Pos).
const (
	HeaderFrom = "X-Pxml-Repl-From"
	HeaderNext = "X-Pxml-Repl-Next"
	HeaderEnd  = "X-Pxml-Repl-End"
	HeaderLag  = "X-Pxml-Repl-Lag-Bytes"
	// HeaderEpoch carries the leader epoch a stream (or bootstrap)
	// response was served under.
	HeaderEpoch = "X-Pxml-Repl-Epoch"
	// HeaderLeader, on an epoch_fenced 409, names the successor leader's
	// base URL when the fenced node knows it.
	HeaderLeader = "X-Pxml-Repl-Leader"
)

// Stream request query parameters.
const (
	ParamFrom     = "from"
	ParamMaxBytes = "max_bytes"
	ParamWaitMS   = "wait_ms"
	// ParamEpoch is the follower's highest-seen leader epoch; a leader
	// that sees a higher epoch than its own in a pull request has been
	// superseded and fences itself.
	ParamEpoch = "epoch"
)

// DefaultPollWait is how long a stream request long-polls at the tail
// before answering 204, unless the client asks otherwise.
const DefaultPollWait = 2 * time.Second

// MaxPollWait caps client-requested long-poll waits so a stream request
// can never pin a connection indefinitely.
const MaxPollWait = 30 * time.Second

// MaxChunkBytes caps one stream response body. Larger catch-ups take
// multiple round trips, which keeps per-request memory bounded on both
// sides and lets lag metrics refresh as the follower closes the gap.
const MaxChunkBytes = 4 << 20

package repl

// The failover monitor is the flag-gated auto-promotion loop a follower
// runs when it is a designated failover candidate (pxmld
// -failover-priority). It rides the existing long-poll stream as its
// heartbeat: every successful exchange the Puller records (a chunk, a
// rotation cue, or a caught-up 204) refreshes Status.LastContact, so
// "the leader has been silent for the whole window" is exactly
// "LastContact is older than the window". No separate lease RPC exists
// to disagree with the replication stream about liveness.
//
// Priority staggers multiple candidates without coordination: candidate
// N waits N silence windows before acting, so the priority-1 follower
// moves first and the priority-2 follower only if the first one is dead
// too — by the time it checks, it has either heard from the new leader
// (contact refreshed, epoch bumped) or inherited the job.

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// DefaultFailoverSilence is the leader-silence window that triggers
// auto-promotion when MonitorConfig.Silence is zero.
const DefaultFailoverSilence = 15 * time.Second

// MonitorConfig configures a failover Monitor.
type MonitorConfig struct {
	// Puller is the replication engine whose contact times and
	// divergence state the monitor watches. Required.
	Puller *Puller
	// Priority is this follower's failover rank, >= 1: the candidate
	// waits Priority consecutive silence windows before promoting, so
	// lower numbers act first. Required.
	Priority int
	// Silence is one leader-silence window (default
	// DefaultFailoverSilence).
	Silence time.Duration
	// Promote performs the actual promotion (the serving layer's
	// stop-puller → drain → store.Promote sequence, with force
	// semantics: the leader is presumed dead, so an unreachable drain
	// must not stop the failover). Required.
	Promote func(ctx context.Context) error
	// Logf, when set, receives monitor decisions.
	Logf func(format string, args ...any)
	// now and tick stub time in tests.
	now  func() time.Time
	tick time.Duration
}

// Monitor watches leader liveness and auto-promotes its follower after
// the configured silence.
type Monitor struct {
	cfg MonitorConfig
}

// NewMonitor validates cfg and returns a Monitor ready to Run.
func NewMonitor(cfg MonitorConfig) (*Monitor, error) {
	if cfg.Puller == nil || cfg.Promote == nil {
		return nil, fmt.Errorf("repl: monitor needs a puller and a promote function")
	}
	if cfg.Priority < 1 {
		return nil, fmt.Errorf("repl: monitor priority must be >= 1, got %d", cfg.Priority)
	}
	if cfg.Silence <= 0 {
		cfg.Silence = DefaultFailoverSilence
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	if cfg.tick <= 0 {
		cfg.tick = cfg.Silence / 10
		if cfg.tick < 50*time.Millisecond {
			cfg.tick = 50 * time.Millisecond
		}
	}
	return &Monitor{cfg: cfg}, nil
}

// window is how long the leader must be silent before this candidate
// promotes itself.
func (m *Monitor) window() time.Duration {
	return m.cfg.Silence * time.Duration(m.cfg.Priority)
}

func (m *Monitor) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

// Run watches until ctx is cancelled or a promotion succeeds (returns
// nil). The silence clock starts at Run time, not at zero: a follower
// that boots into a dead cluster still waits its full window before
// claiming leadership, giving a live leader time to make contact. A
// diverged follower never promotes — its history forked from the
// cluster's, so making it the write authority would institutionalize
// the fork; Run parks until cancelled, logging once.
func (m *Monitor) Run(ctx context.Context) error {
	start := m.cfg.now()
	warnedDiverged := false
	promoteDelay := m.cfg.Silence // between failed promotion attempts
	ticker := time.NewTicker(m.cfg.tick)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
		st := m.cfg.Puller.Status()
		if st.Diverged {
			if !warnedDiverged {
				warnedDiverged = true
				m.logf("repl: failover monitor: follower diverged; refusing to ever promote it (re-bootstrap required)")
			}
			continue
		}
		warnedDiverged = false
		last := st.LastContact
		if last.Before(start) {
			last = start
		}
		silent := m.cfg.now().Sub(last)
		if silent < m.window() {
			continue
		}
		m.logf("repl: failover monitor: leader silent for %s (window %s, priority %d); promoting",
			silent.Round(time.Millisecond), m.window(), m.cfg.Priority)
		if err := m.cfg.Promote(ctx); err != nil {
			if errors.Is(err, context.Canceled) || ctx.Err() != nil {
				return ctx.Err()
			}
			m.logf("repl: failover monitor: promotion failed (will retry in %s): %v", promoteDelay, err)
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(promoteDelay):
			}
			continue
		}
		m.logf("repl: failover monitor: promotion succeeded; monitor exiting")
		return nil
	}
}

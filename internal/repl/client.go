package repl

// Follower-side HTTP client: one Stream round trip, and the bootstrap
// download+restore that seeds an empty follower onto the leader's
// timeline.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"time"

	"pxml/internal/apiv1"
	"pxml/internal/retry"
	"pxml/internal/store"
)

// ErrDiverged reports that the leader refused the follower's position as
// off its timeline (HTTP 409 timeline_diverged). The follower's WAL is
// not a prefix of the leader's history; replaying cannot fix that, only
// re-bootstrapping from a fresh backup can. Match with errors.Is.
var ErrDiverged = errors.New("repl: timeline diverged from leader")

// ErrUnauthorized reports a 401 from the leader: the replication surface
// wants a bearer token this client does not have (or has wrong). Match
// with errors.Is.
var ErrUnauthorized = errors.New("repl: leader rejected credentials")

// fencedError is a 409 epoch_fenced response: the node answering the
// stream has been superseded by a higher leader epoch. It matches
// store.ErrEpochFenced via errors.Is and carries the successor leader's
// URL when the fenced node named one (X-Pxml-Repl-Leader).
type fencedError struct {
	msg    string
	leader string
}

func (e *fencedError) Error() string {
	if e.leader != "" {
		return fmt.Sprintf("repl: %s (new leader %s)", e.msg, e.leader)
	}
	return "repl: " + e.msg
}

func (e *fencedError) Is(target error) bool { return target == store.ErrEpochFenced }

// FencedLeader extracts the successor leader URL from an epoch_fenced
// error chain ("" when the fenced node did not name one, or err is not
// a fencing error).
func FencedLeader(err error) string {
	var fe *fencedError
	if errors.As(err, &fe) {
		return fe.leader
	}
	return ""
}

// Client talks to one leader.
type Client struct {
	// BaseURL is the leader's root URL, e.g. "http://10.0.0.1:8080".
	BaseURL string
	// Token, when non-empty, is sent as a bearer token. Required when the
	// leader runs with -admin-token.
	Token string
	// HTTPClient defaults to http.DefaultClient. Stream long-polls, so
	// any client timeout must exceed MaxPollWait.
	HTTPClient *http.Client
	// Retry governs transient failures (network errors, 429/502/503/504)
	// within one Stream or Bootstrap call. The zero value means a single
	// attempt; the Puller layers its own reconnect loop on top.
	Retry retry.Policy
}

// Chunk is one successful Stream response.
type Chunk struct {
	// From is where Data starts: the requested position normalized past
	// any rotation boundary. Apply Data at From (store.ReplApply rotates
	// when From opens a later segment).
	From store.Pos
	// Next is where to resume streaming after applying Data.
	Next store.Pos
	// End is the leader's committed position at response time.
	End store.Pos
	// LagBytes is the committed byte lag remaining at Next.
	LagBytes int64
	// Data is raw CRC-framed WAL bytes (empty on a pure rotation cue or
	// when caught up).
	Data []byte
	// CaughtUp is true when the long poll expired with nothing new.
	CaughtUp bool
	// Epoch is the leader epoch the response was served under (0 when
	// the leader predates the epoch protocol).
	Epoch uint64
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) get(ctx context.Context, path string, query url.Values) (*http.Response, error) {
	u := strings.TrimSuffix(c.BaseURL, "/") + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	return c.Retry.Do(ctx, func() (*http.Response, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
		if err != nil {
			return nil, err
		}
		if c.Token != "" {
			req.Header.Set("Authorization", "Bearer "+c.Token)
		}
		return c.httpClient().Do(req)
	})
}

// apiError reads a non-2xx body and maps it onto the typed sentinel
// errors where one exists.
func apiError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	e := apiv1.ErrorFromBody(resp.StatusCode, body)
	switch e.Code {
	case apiv1.CodeTimelineDiverged:
		return fmt.Errorf("%w: %s", ErrDiverged, e.Message)
	case apiv1.CodeUnauthorized:
		return fmt.Errorf("%w: %s", ErrUnauthorized, e.Message)
	case apiv1.CodeEpochFenced:
		return &fencedError{msg: e.Message, leader: resp.Header.Get(HeaderLeader)}
	}
	return e
}

// Stream fetches one chunk of WAL starting at from, long-polling on the
// leader for up to wait when caught up (0 means the leader's default).
// epoch, when non-zero, is the follower's highest-seen leader epoch; a
// leader superseded by it fences itself and answers 409 epoch_fenced.
func (c *Client) Stream(ctx context.Context, from store.Pos, maxBytes int, wait time.Duration, epoch uint64) (Chunk, error) {
	q := url.Values{ParamFrom: {from.String()}}
	if maxBytes > 0 {
		q.Set(ParamMaxBytes, strconv.Itoa(maxBytes))
	}
	if wait > 0 {
		q.Set(ParamWaitMS, strconv.FormatInt(int64(wait/time.Millisecond), 10))
	}
	if epoch > 0 {
		q.Set(ParamEpoch, strconv.FormatUint(epoch, 10))
	}
	resp, err := c.get(ctx, StreamPath, q)
	if err != nil {
		return Chunk{}, fmt.Errorf("repl: stream: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK, http.StatusNoContent:
	default:
		return Chunk{}, fmt.Errorf("repl: stream: %w", apiError(resp))
	}
	chunk := Chunk{CaughtUp: resp.StatusCode == http.StatusNoContent}
	if chunk.From, err = store.ParsePos(resp.Header.Get(HeaderFrom)); err != nil {
		return Chunk{}, fmt.Errorf("repl: stream: bad %s header: %w", HeaderFrom, err)
	}
	if chunk.Next, err = store.ParsePos(resp.Header.Get(HeaderNext)); err != nil {
		return Chunk{}, fmt.Errorf("repl: stream: bad %s header: %w", HeaderNext, err)
	}
	if chunk.End, err = store.ParsePos(resp.Header.Get(HeaderEnd)); err != nil {
		return Chunk{}, fmt.Errorf("repl: stream: bad %s header: %w", HeaderEnd, err)
	}
	if v := resp.Header.Get(HeaderLag); v != "" {
		if chunk.LagBytes, err = strconv.ParseInt(v, 10, 64); err != nil {
			return Chunk{}, fmt.Errorf("repl: stream: bad %s header: %q", HeaderLag, v)
		}
	}
	if v := resp.Header.Get(HeaderEpoch); v != "" {
		if chunk.Epoch, err = strconv.ParseUint(v, 10, 64); err != nil {
			return Chunk{}, fmt.Errorf("repl: stream: bad %s header: %q", HeaderEpoch, v)
		}
	}
	if resp.StatusCode == http.StatusOK {
		chunk.Data, err = io.ReadAll(io.LimitReader(resp.Body, MaxChunkBytes+1))
		if err != nil {
			return Chunk{}, fmt.Errorf("repl: stream: read body: %w", err)
		}
		if len(chunk.Data) > MaxChunkBytes {
			return Chunk{}, fmt.Errorf("repl: stream: chunk exceeds %d bytes", MaxChunkBytes)
		}
	}
	return chunk, nil
}

// Bootstrap downloads a fresh backup from the leader and restores it
// into dataDir (which must be empty or absent), landing the follower
// exactly on the leader's timeline: the restore keeps the leader's
// segment numbering, so the recovered Pos is directly resumable against
// the leader's stream.
func (c *Client) Bootstrap(ctx context.Context, dataDir string) (*store.RestoreResult, error) {
	resp, err := c.get(ctx, BootstrapPath, nil)
	if err != nil {
		return nil, fmt.Errorf("repl: bootstrap: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("repl: bootstrap: %w", apiError(resp))
	}
	tmp := dataDir + ".bootstrap"
	if err := os.RemoveAll(tmp); err != nil {
		return nil, fmt.Errorf("repl: bootstrap: %w", err)
	}
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return nil, fmt.Errorf("repl: bootstrap: %w", err)
	}
	defer os.RemoveAll(tmp)
	if err := extractTar(resp.Body, tmp); err != nil {
		return nil, err
	}
	// Restore verifies the manifest and proves the tree opens cleanly
	// before anything lands in dataDir.
	res, err := store.Restore(tmp, dataDir, store.RestoreOptions{})
	if err != nil {
		return nil, fmt.Errorf("repl: bootstrap restore: %w", err)
	}
	return res, nil
}

package repl

// Failover monitor suite under a fake clock: the silence window scales
// with priority, leader contact resets the clock, a diverged follower
// never promotes, failed promotions retry, and cancellation wins.

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// startMonitor runs a monitor against p with the fake clock and a fast
// real ticker, returning the cancel func and Run's result channel. It
// only returns once Run has captured its start time — Run's first now()
// call — so tests can advance the fake clock without racing startup
// (an advance before start capture would push start past LastContact
// and silence would never accrue).
func startMonitor(t *testing.T, p *Puller, clock *fakeClock, priority int, silence time.Duration, promote func(context.Context) error) (context.CancelFunc, chan error) {
	t.Helper()
	started := make(chan struct{})
	var once sync.Once
	m, err := NewMonitor(MonitorConfig{
		Puller:   p,
		Priority: priority,
		Silence:  silence,
		Promote:  promote,
		now: func() time.Time {
			once.Do(func() { close(started) })
			return clock.Now()
		},
		tick: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- m.Run(ctx) }()
	t.Cleanup(cancel)
	<-started
	return cancel, done
}

// settle gives the real ticker a few cycles to observe the fake clock.
func settle() { time.Sleep(30 * time.Millisecond) }

func TestMonitorPromotesAfterSilenceWindow(t *testing.T) {
	clock := newFakeClock()
	p := newTestPuller(t, clock)
	p.noteExchange(Chunk{}, clock.Now(), true) // leader was alive at start

	var promoted atomic.Int32
	_, done := startMonitor(t, p, clock, 1, time.Minute, func(context.Context) error {
		promoted.Add(1)
		return nil
	})

	// Just short of the window: no action.
	clock.Advance(time.Minute - time.Second)
	settle()
	if promoted.Load() != 0 {
		t.Fatal("monitor promoted before the silence window elapsed")
	}
	// Past the window: promote, then Run exits nil.
	clock.Advance(2 * time.Second)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run after successful promotion = %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("monitor did not promote after the silence window")
	}
	if promoted.Load() != 1 {
		t.Fatalf("promotions = %d, want 1", promoted.Load())
	}
}

func TestMonitorPriorityStaggersWindow(t *testing.T) {
	clock := newFakeClock()
	p := newTestPuller(t, clock)
	p.noteExchange(Chunk{}, clock.Now(), true)

	var promoted atomic.Int32
	_, done := startMonitor(t, p, clock, 3, time.Minute, func(context.Context) error {
		promoted.Add(1)
		return nil
	})

	// One window of silence would trip priority 1; priority 3 waits
	// three full windows so the higher-priority candidates get to act
	// first.
	clock.Advance(2*time.Minute + 30*time.Second)
	settle()
	if promoted.Load() != 0 {
		t.Fatal("priority-3 monitor promoted before 3 windows of silence")
	}
	clock.Advance(time.Minute)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("priority-3 monitor never promoted")
	}
}

func TestMonitorContactResetsSilenceClock(t *testing.T) {
	clock := newFakeClock()
	p := newTestPuller(t, clock)
	p.noteExchange(Chunk{}, clock.Now(), true)

	var promoted atomic.Int32
	_, done := startMonitor(t, p, clock, 1, time.Minute, func(context.Context) error {
		promoted.Add(1)
		return nil
	})

	// The leader keeps talking just inside the window; the monitor must
	// never fire.
	for i := 0; i < 4; i++ {
		clock.Advance(45 * time.Second)
		p.noteExchange(Chunk{}, clock.Now(), true)
		settle()
	}
	if promoted.Load() != 0 {
		t.Fatal("monitor promoted despite ongoing leader contact")
	}
	// Contact stops; one full window later the monitor acts.
	clock.Advance(61 * time.Second)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("monitor did not promote after contact ceased")
	}
}

func TestMonitorNeverPromotesDivergedFollower(t *testing.T) {
	clock := newFakeClock()
	p := newTestPuller(t, clock)
	p.mu.Lock()
	p.status.Diverged = true
	p.mu.Unlock()

	var promoted atomic.Int32
	cancel, done := startMonitor(t, p, clock, 1, time.Minute, func(context.Context) error {
		promoted.Add(1)
		return nil
	})
	// Arbitrarily long silence changes nothing: promoting a forked
	// history would institutionalize the fork.
	clock.Advance(24 * time.Hour)
	settle()
	if promoted.Load() != 0 {
		t.Fatal("monitor promoted a diverged follower")
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Run after cancel = %v, want context.Canceled", err)
	}
}

func TestMonitorRetriesFailedPromotion(t *testing.T) {
	clock := newFakeClock()
	p := newTestPuller(t, clock)
	var attempts atomic.Int32
	// Silence is also the real-time delay between failed attempts, so
	// keep it small here.
	_, done := startMonitor(t, p, clock, 1, 20*time.Millisecond, func(context.Context) error {
		if attempts.Add(1) == 1 {
			return errors.New("drain blew up")
		}
		return nil
	})
	clock.Advance(time.Hour) // deep silence: promote immediately and keep trying
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run = %v, want nil after retry succeeded", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("monitor never retried the failed promotion")
	}
	if got := attempts.Load(); got != 2 {
		t.Fatalf("promotion attempts = %d, want 2", got)
	}
}

func TestMonitorConfigValidation(t *testing.T) {
	clock := newFakeClock()
	p := newTestPuller(t, clock)
	promote := func(context.Context) error { return nil }
	if _, err := NewMonitor(MonitorConfig{Priority: 1, Promote: promote}); err == nil {
		t.Fatal("NewMonitor without a puller must fail")
	}
	if _, err := NewMonitor(MonitorConfig{Puller: p, Priority: 1}); err == nil {
		t.Fatal("NewMonitor without a promote func must fail")
	}
	if _, err := NewMonitor(MonitorConfig{Puller: p, Priority: 0, Promote: promote}); err == nil {
		t.Fatal("NewMonitor with priority 0 must fail")
	}
	m, err := NewMonitor(MonitorConfig{Puller: p, Priority: 2, Promote: promote})
	if err != nil {
		t.Fatal(err)
	}
	if m.cfg.Silence != DefaultFailoverSilence {
		t.Fatalf("default silence = %v, want %v", m.cfg.Silence, DefaultFailoverSilence)
	}
	if m.window() != 2*DefaultFailoverSilence {
		t.Fatalf("window = %v, want %v", m.window(), 2*DefaultFailoverSilence)
	}
}

package core

import (
	"fmt"

	"pxml/internal/model"
	"pxml/internal/prob"
	"pxml/internal/sets"
)

// Loader assembles a ProbInstance from decoded input without the
// per-mutation overhead of the incremental API: internal tables are
// presized for the known object count, graph-cache invalidation is
// skipped (the instance is fresh, so there is nothing to invalidate), and
// potential-child sets are adopted as given rather than re-canonicalized.
//
// Unlike WeakInstance.SetLCh, SetEdges does NOT add mentioned children to
// V — loaders are expected to declare every object explicitly, and
// Instance()'s validation rejects edges to undeclared objects. This makes
// the loader strict where the incremental API is forgiving, which is the
// right trade for a decoder fed potentially corrupt bytes.
type Loader struct {
	pi *ProbInstance
}

// NewLoader starts a load of an instance with the given root and an
// expected total of nObjects objects.
func NewLoader(root model.ObjectID, nObjects int) *Loader {
	if nObjects < 1 {
		nObjects = 1
	}
	// Roughly half the objects of a typical instance are non-leaves (the
	// lch/card/opf carriers) and half are leaves (typ/val/vpf carriers);
	// sizing to the halves avoids both rehashing and oversized tables.
	half := nObjects/2 + 1
	w := &WeakInstance{
		root:    root,
		objects: make(map[model.ObjectID]struct{}, nObjects),
		lch:     make(map[model.ObjectID]map[model.Label]sets.Set, half),
		// Cardinality constraints and default values are sparse in
		// practice (SetEdges elides the default interval), so their maps
		// start small and grow only when an instance actually uses them.
		card:  make(map[model.ObjectID]map[model.Label]sets.Interval),
		types: make(map[model.TypeName]model.Type),
		typ:   make(map[model.ObjectID]model.TypeName, half),
		val:   make(map[model.ObjectID]model.Value),
	}
	w.objects[root] = struct{}{}
	pi := &ProbInstance{
		WeakInstance: w,
		interp: &LocalInterpretation{
			opf: make(map[model.ObjectID]*prob.OPF, half),
			vpf: make(map[model.ObjectID]*prob.VPF, half),
		},
	}
	return &Loader{pi: pi}
}

// AddObject inserts an object into V.
func (ld *Loader) AddObject(o model.ObjectID) {
	ld.pi.objects[o] = struct{}{}
}

// RegisterType records a leaf type; see WeakInstance.RegisterType.
func (ld *Loader) RegisterType(t model.Type) error {
	return ld.pi.RegisterType(t)
}

// SetLeafType assigns τ(o); the type must already be registered.
func (ld *Loader) SetLeafType(o model.ObjectID, tn model.TypeName) error {
	if _, ok := ld.pi.types[tn]; !ok {
		return fmt.Errorf("core: unknown type %q for object %s", tn, o)
	}
	ld.pi.typ[o] = tn
	return nil
}

// SetDefaultValue assigns val(o); see WeakInstance.SetDefaultValue.
func (ld *Loader) SetDefaultValue(o model.ObjectID, v model.Value) error {
	return ld.pi.SetDefaultValue(o, v)
}

// SetEdges assigns lch(o, l) = children and card(o, l) = [min, max] in one
// step. The set is adopted as-is (it must be canonical) and children are
// not implicitly added to V.
func (ld *Loader) SetEdges(o model.ObjectID, l model.Label, children sets.Set, min, max int) {
	w := ld.pi.WeakInstance
	lm := w.lch[o]
	if lm == nil {
		lm = make(map[model.Label]sets.Set, 2)
		w.lch[o] = lm
	}
	lm[l] = children
	if min == 0 && max == children.Len() {
		// The default interval Card() reconstructs on lookup; storing it
		// would only burn a map entry per edge group.
		return
	}
	cm := w.card[o]
	if cm == nil {
		cm = make(map[model.Label]sets.Interval, 2)
		w.card[o] = cm
	}
	cm[l] = sets.Interval{Min: min, Max: max}
}

// SetOPF assigns ℘(o) for a non-leaf object.
func (ld *Loader) SetOPF(o model.ObjectID, w *prob.OPF) { ld.pi.interp.opf[o] = w }

// SetVPF assigns ℘(o) for a leaf object.
func (ld *Loader) SetVPF(o model.ObjectID, v *prob.VPF) { ld.pi.interp.vpf[o] = v }

// Instance finishes the load, returning the instance after the structural
// Validate check every codec applies (root membership, edge targets in V,
// label disjointness, well-formed cardinalities and types).
func (ld *Loader) Instance() (*ProbInstance, error) {
	if err := ld.pi.WeakInstance.Validate(); err != nil {
		return nil, err
	}
	return ld.pi, nil
}

package core

import (
	"math"

	"pxml/internal/prob"
)

// Equal reports whether two probabilistic instances are identical: same
// root, objects, lch, card, types, leaf assignments, and local probability
// functions (probabilities compared within tol). Entries with probability
// below tol on one side and absent on the other are considered equal.
func Equal(a, b *ProbInstance, tol float64) bool {
	if a.Root() != b.Root() || a.NumObjects() != b.NumObjects() {
		return false
	}
	for _, o := range a.Objects() {
		if !b.HasObject(o) {
			return false
		}
		la, lb := a.Labels(o), b.Labels(o)
		if len(la) != len(lb) {
			return false
		}
		for i, l := range la {
			if lb[i] != l {
				return false
			}
			if !a.LCh(o, l).Equal(b.LCh(o, l)) {
				return false
			}
			if a.Card(o, l) != b.Card(o, l) {
				return false
			}
		}
		ta, oka := a.TypeOf(o)
		tb, okb := b.TypeOf(o)
		if oka != okb {
			return false
		}
		if oka {
			if ta.Name != tb.Name || len(ta.Domain) != len(tb.Domain) {
				return false
			}
			for i := range ta.Domain {
				if ta.Domain[i] != tb.Domain[i] {
					return false
				}
			}
			va, okVA := a.DefaultValue(o)
			vb, okVB := b.DefaultValue(o)
			if okVA != okVB || va != vb {
				return false
			}
		}
		if !opfEqual(a.OPF(o), b.OPF(o), tol) {
			return false
		}
		if !vpfEqual(a.VPF(o), b.VPF(o), tol) {
			return false
		}
	}
	return true
}

func opfEqual(a, b *prob.OPF, tol float64) bool {
	if a == nil || b == nil {
		return massBelow(a, tol) && massBelow(b, tol)
	}
	for _, e := range a.Entries() {
		if math.Abs(e.Prob-b.Prob(e.Set)) > tol {
			return false
		}
	}
	for _, e := range b.Entries() {
		if math.Abs(e.Prob-a.Prob(e.Set)) > tol {
			return false
		}
	}
	return true
}

func massBelow(a *prob.OPF, tol float64) bool {
	return a == nil || a.Mass() <= tol
}

func vpfEqual(a, b *prob.VPF, tol float64) bool {
	if a == nil || b == nil {
		if a != nil && a.Mass() > tol {
			return false
		}
		if b != nil && b.Mass() > tol {
			return false
		}
		return true
	}
	for _, e := range a.Entries() {
		if math.Abs(e.Prob-b.Prob(e.Value)) > tol {
			return false
		}
	}
	for _, e := range b.Entries() {
		if math.Abs(e.Prob-a.Prob(e.Value)) > tol {
			return false
		}
	}
	return true
}

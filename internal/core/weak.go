// Package core implements the PXML probabilistic semistructured data model:
// weak instances (Definition 3.4), potential child sets (Definitions
// 3.5–3.6), the weak instance graph and its acyclicity requirement
// (Definitions 3.7 and 4.3), local interpretations (Definitions 3.8–3.10),
// probabilistic instances (Definition 3.11), compatibility of semistructured
// instances (Definition 4.1) and the local-to-global semantics
// P_℘(S) = Π_o ℘(o)(c_S(o)) of Definition 4.4 whose coherence is Theorem 1.
package core

import (
	"fmt"
	"sort"
	"sync"

	"pxml/internal/graph"
	"pxml/internal/model"
	"pxml/internal/sets"
)

// DefaultPCLimit bounds the number of potential child sets materialized for
// a single object. The paper's experiments use up to 2^8 = 256 entries per
// object; the default leaves ample headroom while preventing accidental
// exponential blowups on adversarial cardinality constraints.
const DefaultPCLimit = 1 << 20

// WeakInstance is W = (V, lch, τ, val, card) per Definition 3.4. It fixes
// which objects exist, which objects may be children of which under which
// label, the leaf types and (default) leaf values, and cardinality bounds
// on the number of children per label.
//
// Two deviations from the letter of the definition, both forced by the
// paper's own examples, are documented where they matter:
//   - leaf types and values are optional (see model.Instance);
//   - PC(o) is the per-label cross product rather than literal minimal
//     hitting sets (see sets.UnionProduct).
type WeakInstance struct {
	root    model.ObjectID
	objects map[model.ObjectID]struct{}
	lch     map[model.ObjectID]map[model.Label]sets.Set
	card    map[model.ObjectID]map[model.Label]sets.Interval
	types   map[model.TypeName]model.Type
	typ     map[model.ObjectID]model.TypeName
	val     map[model.ObjectID]model.Value

	// graphMu guards graphCache, which memoizes the Definition 3.7 weak
	// instance graph: every algebra operation and query starts from it, so
	// rebuilding per call would dominate repeated-query workloads. Any
	// structural mutation invalidates the cache. The cached graph is
	// shared with callers and must be treated as read-only.
	graphMu    sync.Mutex
	graphCache *graph.Graph
}

// NewWeakInstance returns a weak instance containing only the root object.
func NewWeakInstance(root model.ObjectID) *WeakInstance {
	w := &WeakInstance{
		root:    root,
		objects: make(map[model.ObjectID]struct{}),
		lch:     make(map[model.ObjectID]map[model.Label]sets.Set),
		card:    make(map[model.ObjectID]map[model.Label]sets.Interval),
		types:   make(map[model.TypeName]model.Type),
		typ:     make(map[model.ObjectID]model.TypeName),
		val:     make(map[model.ObjectID]model.Value),
	}
	w.objects[root] = struct{}{}
	return w
}

// Root returns the root object identifier.
func (w *WeakInstance) Root() model.ObjectID { return w.root }

// invalidateGraph drops the memoized weak instance graph after a
// structural mutation.
func (w *WeakInstance) invalidateGraph() {
	w.graphMu.Lock()
	w.graphCache = nil
	w.graphMu.Unlock()
}

// AddObject inserts an object into V.
func (w *WeakInstance) AddObject(o model.ObjectID) {
	if _, ok := w.objects[o]; ok {
		return
	}
	w.objects[o] = struct{}{}
	w.invalidateGraph()
}

// HasObject reports whether o ∈ V.
func (w *WeakInstance) HasObject(o model.ObjectID) bool {
	_, ok := w.objects[o]
	return ok
}

// Objects returns V in sorted order.
func (w *WeakInstance) Objects() []model.ObjectID {
	out := make([]model.ObjectID, 0, len(w.objects))
	for o := range w.objects {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

// NumObjects returns |V|.
func (w *WeakInstance) NumObjects() int { return len(w.objects) }

// SetLCh declares lch(o, l) = children: the set of objects that may be
// children of o under label l. All mentioned objects are added to V.
// Passing an empty children list removes the entry.
func (w *WeakInstance) SetLCh(o model.ObjectID, l model.Label, children ...model.ObjectID) {
	w.invalidateGraph()
	w.AddObject(o)
	if len(children) == 0 {
		if m := w.lch[o]; m != nil {
			delete(m, l)
			if len(m) == 0 {
				delete(w.lch, o)
			}
		}
		return
	}
	for _, c := range children {
		w.AddObject(c)
	}
	if w.lch[o] == nil {
		w.lch[o] = make(map[model.Label]sets.Set)
	}
	w.lch[o][l] = sets.NewSet(children...)
}

// LCh returns lch(o, l); nil when empty.
func (w *WeakInstance) LCh(o model.ObjectID, l model.Label) sets.Set {
	return w.lch[o][l]
}

// Labels returns the labels under which o has potential children, sorted.
func (w *WeakInstance) Labels(o model.ObjectID) []model.Label {
	m := w.lch[o]
	ls := make([]model.Label, 0, len(m))
	for l := range m {
		ls = append(ls, l)
	}
	sort.Strings(ls)
	return ls
}

// AllChildren returns the union of lch(o, l) over all labels: every object
// that may be a child of o.
func (w *WeakInstance) AllChildren(o model.ObjectID) sets.Set {
	var u sets.Set
	for _, l := range w.Labels(o) {
		u = u.Union(w.lch[o][l])
	}
	return u
}

// LabelOf returns the unique label under which child is a potential child
// of o. The boolean result is false when child is not a potential child.
// Uniqueness is guaranteed by Validate's label-disjointness check.
func (w *WeakInstance) LabelOf(o, child model.ObjectID) (model.Label, bool) {
	for _, l := range w.Labels(o) {
		if w.lch[o][l].Contains(child) {
			return l, true
		}
	}
	return "", false
}

// SetCard sets card(o, l) = [min, max] (Definition 3.4 item 5).
func (w *WeakInstance) SetCard(o model.ObjectID, l model.Label, min, max int) {
	w.invalidateGraph()
	w.AddObject(o)
	if w.card[o] == nil {
		w.card[o] = make(map[model.Label]sets.Interval)
	}
	w.card[o][l] = sets.Interval{Min: min, Max: max}
}

// Card returns card(o, l). When no interval has been set the default is
// [0, |lch(o, l)|] — the "no cardinality constraint" regime the paper's
// experiments use.
func (w *WeakInstance) Card(o model.ObjectID, l model.Label) sets.Interval {
	if iv, ok := w.card[o][l]; ok {
		return iv
	}
	return sets.Interval{Min: 0, Max: w.lch[o][l].Len()}
}

// IsLeaf reports whether o is a leaf of the weak instance: it has no
// potential children under any label.
func (w *WeakInstance) IsLeaf(o model.ObjectID) bool {
	for _, s := range w.lch[o] {
		if s.Len() > 0 {
			return false
		}
	}
	return true
}

// RegisterType records a leaf type so objects can reference it by name.
func (w *WeakInstance) RegisterType(t model.Type) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if old, ok := w.types[t.Name]; ok {
		if len(old.Domain) != len(t.Domain) {
			return fmt.Errorf("core: type %q re-registered with different domain", t.Name)
		}
		for i := range old.Domain {
			if old.Domain[i] != t.Domain[i] {
				return fmt.Errorf("core: type %q re-registered with different domain", t.Name)
			}
		}
		return nil
	}
	w.types[t.Name] = t
	return nil
}

// Types returns the registered types keyed by name. Callers must not mutate
// the returned map.
func (w *WeakInstance) Types() map[model.TypeName]model.Type { return w.types }

// SetLeafType assigns τ(o) = tn. The type must have been registered.
func (w *WeakInstance) SetLeafType(o model.ObjectID, tn model.TypeName) error {
	if _, ok := w.types[tn]; !ok {
		return fmt.Errorf("core: unknown type %q for object %s", tn, o)
	}
	w.AddObject(o)
	w.typ[o] = tn
	return nil
}

// SetDefaultValue assigns val(o) = v, the representative leaf value of
// Definition 3.4 item 4. The value must lie in the object's type domain.
func (w *WeakInstance) SetDefaultValue(o model.ObjectID, v model.Value) error {
	tn, ok := w.typ[o]
	if !ok {
		return fmt.Errorf("core: object %s has no type; set one before a default value", o)
	}
	if !w.types[tn].Has(v) {
		return fmt.Errorf("core: value %q outside dom(%s) for object %s", v, tn, o)
	}
	w.val[o] = v
	return nil
}

// TypeOf returns τ(o); the boolean result is false for untyped objects.
func (w *WeakInstance) TypeOf(o model.ObjectID) (model.Type, bool) {
	tn, ok := w.typ[o]
	if !ok {
		return model.Type{}, false
	}
	return w.types[tn], true
}

// DefaultValue returns val(o); the boolean result is false when no default
// value was assigned.
func (w *WeakInstance) DefaultValue(o model.ObjectID) (model.Value, bool) {
	v, ok := w.val[o]
	return v, ok
}

// PotentialLChildSets returns PL(o, l), the potential l-child sets of
// Definition 3.5: subsets of lch(o, l) whose cardinality lies within
// card(o, l).
func (w *WeakInstance) PotentialLChildSets(o model.ObjectID, l model.Label) []sets.Set {
	return sets.BoundedSubsets(w.lch[o][l], w.Card(o, l))
}

// PotentialChildSets returns PC(o), the potential child sets of Definition
// 3.6: one potential l-child set chosen per label, unioned. The limit
// bounds the result size; exceeding it is an error. A leaf object has the
// single potential child set ∅.
func (w *WeakInstance) PotentialChildSets(o model.ObjectID, limit int) ([]sets.Set, error) {
	if limit <= 0 {
		limit = DefaultPCLimit
	}
	labels := w.Labels(o)
	total := 1
	fams := make([]sets.Family, 0, len(labels))
	for _, l := range labels {
		n := w.lch[o][l].Len()
		cnt := sets.CountBoundedSubsets(n, w.Card(o, l), limit)
		if total*cnt > limit {
			return nil, fmt.Errorf("core: PC(%s) exceeds limit %d", o, limit)
		}
		total *= cnt
		fams = append(fams, sets.Family(w.PotentialLChildSets(o, l)))
	}
	return sets.UnionProduct(fams), nil
}

// PCSize returns |PC(o)| without materializing the sets, capped at limit
// (returns limit+1 when the true size exceeds it). It assumes the per-label
// potential sets are distinct, which holds because per-label universes are
// disjoint.
func (w *WeakInstance) PCSize(o model.ObjectID, limit int) int {
	if limit <= 0 {
		limit = DefaultPCLimit
	}
	total := 1
	for _, l := range w.Labels(o) {
		n := w.lch[o][l].Len()
		cnt := sets.CountBoundedSubsets(n, w.Card(o, l), limit)
		if cnt > limit || total > limit/max(cnt, 1) {
			return limit + 1
		}
		total *= cnt
	}
	return total
}

// childMayAppear reports whether the given potential child of o under label
// l occurs in at least one set of PC(o): some potential l-child set
// contains it and no other label's family is empty.
func (w *WeakInstance) childMayAppear(o model.ObjectID, l model.Label) bool {
	iv := w.Card(o, l)
	n := w.lch[o][l].Len()
	if iv.Max < 1 || iv.Min > n {
		return false
	}
	// Another label with an unsatisfiable cardinality annihilates PC(o).
	for _, l2 := range w.Labels(o) {
		if l2 == l {
			continue
		}
		if w.Card(o, l2).Min > w.lch[o][l2].Len() {
			return false
		}
	}
	return true
}

// Graph returns the weak instance graph G_W of Definition 3.7: an edge
// o → o' labeled l exists iff o' belongs to some c ∈ PC(o) (under label l).
// The graph is memoized until the next structural mutation and is shared
// between callers: treat it as read-only.
func (w *WeakInstance) Graph() *graph.Graph {
	w.graphMu.Lock()
	defer w.graphMu.Unlock()
	if w.graphCache != nil {
		return w.graphCache
	}
	w.graphCache = w.buildGraph()
	return w.graphCache
}

// buildGraph constructs the weak instance graph from scratch.
func (w *WeakInstance) buildGraph() *graph.Graph {
	g := graph.New()
	for o := range w.objects {
		g.AddNode(o)
	}
	for o, m := range w.lch {
		for l, cs := range m {
			if !w.childMayAppear(o, l) {
				continue
			}
			for _, c := range cs {
				// Relabel conflicts surface in Validate; ignore here.
				_ = g.AddEdge(o, c, l)
			}
		}
	}
	return g
}

// CheckAcyclic reports an error when the weak instance graph contains a
// directed cycle (Definition 4.3 requires acyclicity for coherence).
func (w *WeakInstance) CheckAcyclic() error {
	if _, err := w.Graph().TopoSort(); err != nil {
		return fmt.Errorf("core: weak instance not acyclic: %w", err)
	}
	return nil
}

// IsTree reports whether the weak instance graph is a tree rooted at the
// root: acyclic, every non-root object has exactly one parent, and every
// object is reachable from the root. The Section 6 fast algorithms assume
// this structure.
func (w *WeakInstance) IsTree() bool {
	g := w.Graph()
	if !g.IsAcyclic() {
		return false
	}
	reach := g.ReachableFrom(w.root)
	if len(reach) != len(w.objects) {
		return false
	}
	for o := range w.objects {
		switch {
		case o == w.root:
			if g.InDegree(o) != 0 {
				return false
			}
		default:
			if g.InDegree(o) != 1 {
				return false
			}
		}
	}
	return true
}

// Validate checks the structural invariants of Definition 3.4: the root
// exists and is not anyone's potential child, lch targets are objects of V,
// an object is a potential child of a given parent under at most one label,
// cardinality intervals are well formed, types are registered with values
// in domain, and only weak-instance leaves carry types.
func (w *WeakInstance) Validate() error {
	if _, ok := w.objects[w.root]; !ok {
		return fmt.Errorf("core: root %s not in V", w.root)
	}
	seen := make(map[model.ObjectID]model.Label)
	for o, m := range w.lch {
		if _, ok := w.objects[o]; !ok {
			return fmt.Errorf("core: lch parent %s not in V", o)
		}
		// Cross-label duplicates need the seen map; within one label the
		// canonical Set is already duplicate-free, so single-label objects
		// (the common case) skip the bookkeeping entirely.
		multi := len(m) > 1
		if multi {
			clear(seen)
		}
		for l, cs := range m {
			for _, c := range cs {
				if _, ok := w.objects[c]; !ok {
					return fmt.Errorf("core: lch(%s,%s) child %s not in V", o, l, c)
				}
				if c == w.root {
					return fmt.Errorf("core: root %s appears in lch(%s,%s)", w.root, o, l)
				}
				if multi {
					if prev, dup := seen[c]; dup {
						return fmt.Errorf("core: object %s is a potential child of %s under labels %q and %q", c, o, prev, l)
					}
					seen[c] = l
				}
			}
		}
	}
	for o, m := range w.card {
		for l, iv := range m {
			if err := iv.Validate(); err != nil {
				return fmt.Errorf("core: card(%s,%s): %w", o, l, err)
			}
		}
	}
	for o, tn := range w.typ {
		if _, ok := w.types[tn]; !ok {
			return fmt.Errorf("core: object %s has unregistered type %q", o, tn)
		}
		if !w.IsLeaf(o) {
			return fmt.Errorf("core: non-leaf object %s carries leaf type %q", o, tn)
		}
	}
	for o, v := range w.val {
		tn, ok := w.typ[o]
		if !ok {
			return fmt.Errorf("core: object %s has default value but no type", o)
		}
		if !w.types[tn].Has(v) {
			return fmt.Errorf("core: default value %q of %s outside dom(%s)", v, o, tn)
		}
	}
	return nil
}

// Clone returns a deep copy of the weak instance. Child sets are shared
// (immutable by convention); maps are copied.
func (w *WeakInstance) Clone() *WeakInstance {
	c := NewWeakInstance(w.root)
	for o := range w.objects {
		c.objects[o] = struct{}{}
	}
	for o, m := range w.lch {
		cm := make(map[model.Label]sets.Set, len(m))
		for l, s := range m {
			cm[l] = s
		}
		c.lch[o] = cm
	}
	for o, m := range w.card {
		cm := make(map[model.Label]sets.Interval, len(m))
		for l, iv := range m {
			cm[l] = iv
		}
		c.card[o] = cm
	}
	for k, v := range w.types {
		c.types[k] = v
	}
	for k, v := range w.typ {
		c.typ[k] = v
	}
	for k, v := range w.val {
		c.val[k] = v
	}
	return c
}

// Rename returns a copy of the weak instance with object identifiers
// substituted per the mapping (identifiers absent from the map are kept).
// It is used by the Cartesian product to make operand universes disjoint.
func (w *WeakInstance) Rename(m map[model.ObjectID]model.ObjectID) *WeakInstance {
	rn := func(o model.ObjectID) model.ObjectID {
		if n, ok := m[o]; ok {
			return n
		}
		return o
	}
	c := NewWeakInstance(rn(w.root))
	for o := range w.objects {
		c.objects[rn(o)] = struct{}{}
	}
	for o, lm := range w.lch {
		cm := make(map[model.Label]sets.Set, len(lm))
		for l, s := range lm {
			ids := make([]string, s.Len())
			for i, id := range s {
				ids[i] = rn(id)
			}
			cm[l] = sets.NewSet(ids...)
		}
		c.lch[rn(o)] = cm
	}
	for o, lm := range w.card {
		cm := make(map[model.Label]sets.Interval, len(lm))
		for l, iv := range lm {
			cm[l] = iv
		}
		c.card[rn(o)] = cm
	}
	for k, v := range w.types {
		c.types[k] = v
	}
	for k, v := range w.typ {
		c.typ[rn(k)] = v
	}
	for k, v := range w.val {
		c.val[rn(k)] = v
	}
	return c
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package core

import (
	"fmt"
	"sort"

	"pxml/internal/model"
	"pxml/internal/prob"
	"pxml/internal/sets"
)

// LocalInterpretation is ℘ of Definition 3.10: it maps each non-leaf object
// to an OPF over its potential child sets, and each typed leaf object to a
// VPF over its value domain. Untyped leaves (which the algebra can create;
// see model.Instance) have no local probability function and contribute a
// unit factor to instance probabilities.
type LocalInterpretation struct {
	opf map[model.ObjectID]*prob.OPF
	vpf map[model.ObjectID]*prob.VPF
}

// NewLocalInterpretation returns an empty local interpretation.
func NewLocalInterpretation() *LocalInterpretation {
	return &LocalInterpretation{
		opf: make(map[model.ObjectID]*prob.OPF),
		vpf: make(map[model.ObjectID]*prob.VPF),
	}
}

// SetOPF assigns ℘(o) for a non-leaf object.
func (li *LocalInterpretation) SetOPF(o model.ObjectID, w *prob.OPF) { li.opf[o] = w }

// SetVPF assigns ℘(o) for a leaf object.
func (li *LocalInterpretation) SetVPF(o model.ObjectID, w *prob.VPF) { li.vpf[o] = w }

// OPF returns ℘(o) for a non-leaf object, nil when unset.
func (li *LocalInterpretation) OPF(o model.ObjectID) *prob.OPF { return li.opf[o] }

// VPF returns ℘(o) for a leaf object, nil when unset.
func (li *LocalInterpretation) VPF(o model.ObjectID) *prob.VPF { return li.vpf[o] }

// Clone returns a deep copy.
func (li *LocalInterpretation) Clone() *LocalInterpretation {
	c := NewLocalInterpretation()
	for o, w := range li.opf {
		c.opf[o] = w.Clone()
	}
	for o, w := range li.vpf {
		c.vpf[o] = w.Clone()
	}
	return c
}

// ProbInstance is a probabilistic instance I = (V, lch, τ, val, card, ℘)
// per Definition 3.11: a weak instance together with a local
// interpretation.
type ProbInstance struct {
	*WeakInstance
	interp *LocalInterpretation
}

// NewProbInstance returns a probabilistic instance over a fresh weak
// instance with the given root.
func NewProbInstance(root model.ObjectID) *ProbInstance {
	return &ProbInstance{
		WeakInstance: NewWeakInstance(root),
		interp:       NewLocalInterpretation(),
	}
}

// FromWeak wraps an existing weak instance with an empty local
// interpretation. The weak instance is used directly, not copied.
func FromWeak(w *WeakInstance) *ProbInstance {
	return &ProbInstance{WeakInstance: w, interp: NewLocalInterpretation()}
}

// Weak returns the underlying weak instance.
func (pi *ProbInstance) Weak() *WeakInstance { return pi.WeakInstance }

// Interp returns the local interpretation ℘.
func (pi *ProbInstance) Interp() *LocalInterpretation { return pi.interp }

// SetOPF assigns ℘(o) for a non-leaf object.
func (pi *ProbInstance) SetOPF(o model.ObjectID, w *prob.OPF) { pi.interp.SetOPF(o, w) }

// SetVPF assigns ℘(o) for a leaf object.
func (pi *ProbInstance) SetVPF(o model.ObjectID, w *prob.VPF) { pi.interp.SetVPF(o, w) }

// OPF returns ℘(o) for a non-leaf object, nil when unset.
func (pi *ProbInstance) OPF(o model.ObjectID) *prob.OPF { return pi.interp.OPF(o) }

// VPF returns ℘(o) for a leaf object, nil when unset.
func (pi *ProbInstance) VPF(o model.ObjectID) *prob.VPF { return pi.interp.VPF(o) }

// Clone returns a deep copy of the probabilistic instance.
func (pi *ProbInstance) Clone() *ProbInstance {
	return &ProbInstance{
		WeakInstance: pi.WeakInstance.Clone(),
		interp:       pi.interp.Clone(),
	}
}

// Rename returns a copy with object identifiers substituted per the
// mapping; see WeakInstance.Rename.
func (pi *ProbInstance) Rename(m map[model.ObjectID]model.ObjectID) *ProbInstance {
	rn := func(o model.ObjectID) model.ObjectID {
		if n, ok := m[o]; ok {
			return n
		}
		return o
	}
	out := &ProbInstance{
		WeakInstance: pi.WeakInstance.Rename(m),
		interp:       NewLocalInterpretation(),
	}
	for o, w := range pi.interp.opf {
		nw := prob.NewOPF()
		w.Each(func(c sets.Set, p float64) {
			ids := make([]string, c.Len())
			for i, id := range c {
				ids[i] = rn(id)
			}
			nw.Add(sets.NewSet(ids...), p)
		})
		out.interp.opf[rn(o)] = nw
	}
	for o, w := range pi.interp.vpf {
		out.interp.vpf[rn(o)] = w.Clone()
	}
	return out
}

// ValidateLite checks everything Validate checks except PC membership of
// OPF support sets, making it safe for instances whose PC(o) would be huge.
// Specifically: the weak instance is valid and acyclic, every non-leaf
// object reachable in the weak instance graph has a valid OPF whose support
// sets are subsets of the object's potential children with per-label counts
// within card, and every typed leaf has a valid VPF supported on its
// domain.
func (pi *ProbInstance) ValidateLite() error { return pi.validate(false) }

// Validate performs the full Definition 3.11 check: ValidateLite plus
// membership of every OPF support set in PC(o). Objects with more than
// DefaultPCLimit potential child sets cause an error; use ValidateLite for
// such instances.
func (pi *ProbInstance) Validate() error { return pi.validate(true) }

func (pi *ProbInstance) validate(checkPC bool) error {
	if err := pi.WeakInstance.Validate(); err != nil {
		return err
	}
	if err := pi.CheckAcyclic(); err != nil {
		return err
	}
	for _, o := range pi.Objects() {
		if pi.IsLeaf(o) {
			if t, typed := pi.TypeOf(o); typed {
				v := pi.VPF(o)
				if v == nil {
					return fmt.Errorf("core: typed leaf %s has no VPF", o)
				}
				if err := v.Validate(); err != nil {
					return fmt.Errorf("core: VPF(%s): %w", o, err)
				}
				for _, e := range v.Entries() {
					if e.Prob > 0 && !t.Has(e.Value) {
						return fmt.Errorf("core: VPF(%s) supports value %q outside dom(%s)", o, e.Value, t.Name)
					}
				}
			} else if pi.VPF(o) != nil {
				return fmt.Errorf("core: untyped leaf %s has a VPF", o)
			}
			continue
		}
		w := pi.OPF(o)
		if w == nil {
			return fmt.Errorf("core: non-leaf %s has no OPF", o)
		}
		if err := w.Validate(); err != nil {
			return fmt.Errorf("core: OPF(%s): %w", o, err)
		}
		if err := pi.checkOPFSupport(o, w, checkPC); err != nil {
			return err
		}
	}
	return nil
}

// checkOPFSupport verifies every support set of the OPF is structurally
// admissible: members are potential children and per-label counts lie in
// card. With checkPC it additionally verifies exact membership in PC(o).
func (pi *ProbInstance) checkOPFSupport(o model.ObjectID, w *prob.OPF, checkPC bool) error {
	labels := pi.Labels(o)
	var pcKeys map[string]bool
	if checkPC {
		pc, err := pi.PotentialChildSets(o, DefaultPCLimit)
		if err != nil {
			return fmt.Errorf("core: validating OPF(%s): %w", o, err)
		}
		pcKeys = make(map[string]bool, len(pc))
		for _, c := range pc {
			pcKeys[c.Key()] = true
		}
	}
	for _, e := range w.Entries() {
		if e.Prob <= 0 {
			continue
		}
		if checkPC && !pcKeys[e.Set.Key()] {
			return fmt.Errorf("core: OPF(%s) supports %s ∉ PC(%s)", o, e.Set, o)
		}
		counts := make(map[model.Label]int, len(labels))
		for _, c := range e.Set {
			l, ok := pi.LabelOf(o, c)
			if !ok {
				return fmt.Errorf("core: OPF(%s) supports %s containing non-child %s", o, e.Set, c)
			}
			counts[l]++
		}
		for _, l := range labels {
			if !pi.Card(o, l).Contains(counts[l]) {
				return fmt.Errorf("core: OPF(%s) set %s has %d %s-children outside card %v",
					o, e.Set, counts[l], l, pi.Card(o, l))
			}
		}
	}
	return nil
}

// Compatible reports whether the semistructured instance S is compatible
// with the probabilistic instance's weak instance per Definition 4.1. A nil
// error means compatible.
//
// Deviation (documented in the package comment of model): the literal
// definition forbids a weak-instance non-leaf from being childless in S,
// but cardinality minima of zero (used throughout the paper, e.g.
// card(A1, institution) = [0,1] in Figure 2) explicitly permit it, so the
// leaf conditions here apply only to weak-instance leaves.
func (pi *ProbInstance) Compatible(s *model.Instance) error {
	return CompatibleWith(pi.WeakInstance, s)
}

// CompatibleWith is Compatible for a bare weak instance.
func CompatibleWith(w *WeakInstance, s *model.Instance) error {
	if s.Root() != w.Root() {
		return fmt.Errorf("core: instance root %s differs from weak root %s", s.Root(), w.Root())
	}
	for _, o := range s.Objects() {
		if !w.HasObject(o) {
			return fmt.Errorf("core: object %s not in weak instance", o)
		}
		if w.IsLeaf(o) {
			if !s.IsLeaf(o) {
				return fmt.Errorf("core: weak leaf %s has children in instance", o)
			}
			wt, typed := w.TypeOf(o)
			st, styped := s.TypeOf(o)
			if typed != styped {
				return fmt.Errorf("core: leaf %s typed-ness mismatch", o)
			}
			if typed {
				if wt.Name != st.Name {
					return fmt.Errorf("core: leaf %s has type %q, weak instance says %q", o, st.Name, wt.Name)
				}
				v, ok := s.ValueOf(o)
				if !ok {
					return fmt.Errorf("core: typed leaf %s has no value", o)
				}
				if !wt.Has(v) {
					return fmt.Errorf("core: leaf %s value %q outside dom(%s)", o, v, wt.Name)
				}
			}
			continue
		}
		// Non-leaf in W: every instance edge must be sanctioned by lch with
		// a matching label, and per-label counts must respect card.
		counts := make(map[model.Label]int)
		var edgeErr error
		s.Graph().EachChild(o, func(child, label string) {
			if edgeErr != nil {
				return
			}
			if !w.LCh(o, label).Contains(child) {
				edgeErr = fmt.Errorf("core: edge %s -%s-> %s not sanctioned by lch", o, label, child)
				return
			}
			counts[label]++
		})
		if edgeErr != nil {
			return edgeErr
		}
		for _, l := range w.Labels(o) {
			if !w.Card(o, l).Contains(counts[l]) {
				return fmt.Errorf("core: object %s has %d %s-children, card is %v", o, counts[l], l, w.Card(o, l))
			}
		}
	}
	return nil
}

// InstanceProb computes P_℘(S) of Definition 4.4:
// the product over objects o of S of ℘(o)(c_S(o)), where c_S(o) is the set
// of children of o in S for non-leaves and the value of o for typed leaves.
// It returns an error when S is not compatible with the weak instance.
func (pi *ProbInstance) InstanceProb(s *model.Instance) (float64, error) {
	if err := pi.Compatible(s); err != nil {
		return 0, err
	}
	p := 1.0
	for _, o := range s.Objects() {
		if pi.IsLeaf(o) {
			if _, typed := pi.TypeOf(o); typed {
				v, _ := s.ValueOf(o)
				vpf := pi.VPF(o)
				if vpf == nil {
					return 0, fmt.Errorf("core: typed leaf %s has no VPF", o)
				}
				p *= vpf.Prob(v)
			}
			continue
		}
		w := pi.OPF(o)
		if w == nil {
			return 0, fmt.Errorf("core: non-leaf %s has no OPF", o)
		}
		p *= w.Prob(sets.NewSet(s.Children(o)...))
	}
	return p, nil
}

// Depth returns the length of the longest path from the root in the weak
// instance graph, or an error when the graph is cyclic.
func (pi *ProbInstance) Depth() (int, error) {
	g := pi.WeakInstance.Graph()
	order, err := g.TopoSort()
	if err != nil {
		return 0, err
	}
	depth := make(map[model.ObjectID]int, len(order))
	maxDepth := 0
	for _, o := range order {
		for _, c := range g.Children(o) {
			if d := depth[o] + 1; d > depth[c] {
				depth[c] = d
				if d > maxDepth {
					maxDepth = d
				}
			}
		}
	}
	return maxDepth, nil
}

// Stats summarizes a probabilistic instance for tooling: object and edge
// counts of the weak instance graph and the total number of local
// probability entries (the quantity the Figure 7 experiments scale by).
type Stats struct {
	Objects    int
	Edges      int
	Leaves     int
	OPFEntries int
	VPFEntries int
	Depth      int
}

// ComputeStats returns summary statistics of the instance.
func (pi *ProbInstance) ComputeStats() Stats {
	g := pi.WeakInstance.Graph()
	st := Stats{Objects: pi.NumObjects(), Edges: g.NumEdges()}
	for _, o := range pi.Objects() {
		if pi.IsLeaf(o) {
			st.Leaves++
			if v := pi.VPF(o); v != nil {
				st.VPFEntries += v.Len()
			}
			continue
		}
		if w := pi.OPF(o); w != nil {
			st.OPFEntries += w.Len()
		}
	}
	if d, err := pi.Depth(); err == nil {
		st.Depth = d
	}
	return st
}

// SortedOPFObjects returns the non-leaf objects that carry an OPF, sorted.
func (pi *ProbInstance) SortedOPFObjects() []model.ObjectID {
	out := make([]model.ObjectID, 0, len(pi.interp.opf))
	for o := range pi.interp.opf {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

// SortedVPFObjects returns the leaf objects that carry a VPF, sorted.
func (pi *ProbInstance) SortedVPFObjects() []model.ObjectID {
	out := make([]model.ObjectID, 0, len(pi.interp.vpf))
	for o := range pi.interp.vpf {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

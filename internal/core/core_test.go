package core_test

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"pxml/internal/core"
	"pxml/internal/fixtures"
	"pxml/internal/model"
	"pxml/internal/prob"
	"pxml/internal/sets"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestFigure2Valid(t *testing.T) {
	pi := fixtures.Figure2()
	if err := pi.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if pi.NumObjects() != 11 {
		t.Errorf("objects = %d, want 11", pi.NumObjects())
	}
	if pi.IsTree() {
		t.Error("Figure 2 weak instance graph is a DAG, not a tree")
	}
	if err := pi.CheckAcyclic(); err != nil {
		t.Errorf("CheckAcyclic: %v", err)
	}
}

// TestFigure2PCSizes checks PC(o) against the OPF tables of Figure 2.
func TestFigure2PCSizes(t *testing.T) {
	pi := fixtures.Figure2()
	cases := []struct {
		o    string
		want int
	}{
		{"R", 4},  // card [2,3] over 3 books: C(3,2)+C(3,3)
		{"B1", 6}, // (authors: {A1},{A2},{A1,A2}) × (titles: ∅,{T1})
		{"B2", 3}, // 2-subsets of 3 authors
		{"B3", 1},
		{"A1", 2}, // ∅ and {I1}
		{"A2", 2},
		{"A3", 1},
	}
	for _, c := range cases {
		pc, err := pi.PotentialChildSets(c.o, 0)
		if err != nil {
			t.Fatalf("PC(%s): %v", c.o, err)
		}
		if len(pc) != c.want {
			t.Errorf("|PC(%s)| = %d, want %d (%v)", c.o, len(pc), c.want, pc)
		}
		if got := pi.PCSize(c.o, 0); got != c.want {
			t.Errorf("PCSize(%s) = %d, want %d", c.o, got, c.want)
		}
	}
}

func TestFigure2Example32PotentialSets(t *testing.T) {
	pi := fixtures.Figure2()
	// Example 3.2: PL(B1, author) = {{A1},{A2},{A1,A2}}.
	pl := pi.PotentialLChildSets("B1", "author")
	if len(pl) != 3 {
		t.Fatalf("PL(B1,author) = %v", pl)
	}
	// card(A1, institution) = [0,1]: A1 may have no institution.
	pl = pi.PotentialLChildSets("A1", "institution")
	if len(pl) != 2 || !pl[0].IsEmpty() {
		t.Errorf("PL(A1,institution) = %v", pl)
	}
}

// s1 builds the compatible instance S1 of Figure 3.
func s1(t *testing.T) *model.Instance {
	t.Helper()
	s := model.NewInstance("R")
	if err := s.RegisterType(model.NewType("title-type", "VQDB", "Lore")); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterType(model.NewType("institution-type", "Stanford", "UMD")); err != nil {
		t.Fatal(err)
	}
	for _, e := range [][3]string{
		{"R", "B1", "book"}, {"R", "B2", "book"},
		{"B1", "A1", "author"}, {"B1", "T1", "title"},
		{"B2", "A1", "author"}, {"B2", "A2", "author"},
		{"A1", "I1", "institution"}, {"A2", "I1", "institution"},
	} {
		if err := s.AddEdge(e[0], e[1], e[2]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SetLeaf("T1", "title-type", "VQDB"); err != nil {
		t.Fatal(err)
	}
	if err := s.SetLeaf("I1", "institution-type", "Stanford"); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestExample41InstanceProb reproduces Example 4.1: P(S1) is the product of
// the local factors P(B1,B2|R)·P(A1,T1|B1)·P(A1,A2|B2)·P(I1|A1)·P(I1|A2) =
// 0.2·0.35·0.4·0.8·0.5. (That product is 0.0112; the paper's printed value
// 0.00448 is an arithmetic slip in the final multiplication — the factored
// expression above is taken verbatim from the example.)
func TestExample41InstanceProb(t *testing.T) {
	pi := fixtures.Figure2()
	s := s1(t)
	if err := pi.Compatible(s); err != nil {
		t.Fatalf("S1 should be compatible: %v", err)
	}
	p, err := pi.InstanceProb(s)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.2 * 0.35 * 0.4 * 0.8 * 0.5
	if !approx(p, want) {
		t.Errorf("P(S1) = %v, want %v", p, want)
	}
}

func TestCompatibleRejections(t *testing.T) {
	pi := fixtures.Figure2()

	// Wrong root.
	bad := model.NewInstance("X")
	if err := pi.Compatible(bad); err == nil {
		t.Error("wrong root accepted")
	}

	// Unknown object.
	s := model.NewInstance("R")
	_ = s.AddEdge("R", "B9", "book")
	if err := pi.Compatible(s); err == nil || !strings.Contains(err.Error(), "not in weak instance") {
		t.Errorf("unknown object: %v", err)
	}

	// Edge not sanctioned by lch (wrong label): use a minimal weak
	// instance so the label mismatch is the only defect.
	mini := core.NewProbInstance("r")
	mini.SetLCh("r", "good", "x")
	wOPF := prob.NewOPF()
	wOPF.Put(sets.NewSet(), 0.5)
	wOPF.Put(sets.NewSet("x"), 0.5)
	mini.SetOPF("r", wOPF)
	s2 := model.NewInstance("r")
	_ = s2.AddEdge("r", "x", "bad")
	if err := mini.Compatible(s2); err == nil || !strings.Contains(err.Error(), "not sanctioned") {
		t.Errorf("bad label: %v", err)
	}

	// Cardinality violation: R needs 2..3 books.
	s3 := model.NewInstance("R")
	_ = s3.AddEdge("R", "B3", "book")
	_ = s3.AddEdge("B3", "T2", "title")
	_ = s3.AddEdge("B3", "A3", "author")
	_ = s3.AddEdge("A3", "I2", "institution")
	_ = s3.RegisterType(model.NewType("title-type", "VQDB", "Lore"))
	_ = s3.RegisterType(model.NewType("institution-type", "Stanford", "UMD"))
	_ = s3.SetLeaf("T2", "title-type", "Lore")
	_ = s3.SetLeaf("I2", "institution-type", "UMD")
	if err := pi.Compatible(s3); err == nil || !strings.Contains(err.Error(), "card") {
		t.Errorf("card violation: %v", err)
	}

	// Weak leaf with children.
	s4 := s1(t)
	_ = s4.AddEdge("I1", "X", "x")
	if err := pi.Compatible(s4); err == nil {
		t.Error("leaf with children accepted")
	}

	// Typed leaf missing its value.
	s5 := s1(t)
	_ = s5.AddEdge("B1", "A2", "author")
	_ = s5.AddEdge("A2", "I2", "institution")
	// I2 present but without a leaf value: compatibility must fail.
	if err := pi.Compatible(s5); err == nil {
		t.Error("typed leaf without value accepted")
	}
}

func TestInstanceProbIncompatibleIsError(t *testing.T) {
	pi := fixtures.Figure2()
	s := model.NewInstance("R")
	_ = s.AddEdge("R", "B9", "book")
	if _, err := pi.InstanceProb(s); err == nil {
		t.Error("expected error for incompatible instance")
	}
}

func TestValidateRejectsBadOPFs(t *testing.T) {
	// Missing OPF.
	pi := core.NewProbInstance("r")
	pi.SetLCh("r", "l", "a")
	if err := pi.Validate(); err == nil || !strings.Contains(err.Error(), "no OPF") {
		t.Errorf("missing OPF: %v", err)
	}

	// OPF with mass != 1.
	w := prob.NewOPF()
	w.Put(sets.NewSet("a"), 0.5)
	pi.SetOPF("r", w)
	if err := pi.Validate(); err == nil {
		t.Error("bad mass accepted")
	}

	// OPF supporting a set outside PC (violates card).
	pi2 := core.NewProbInstance("r")
	pi2.SetLCh("r", "l", "a", "b")
	pi2.SetCard("r", "l", 2, 2)
	w2 := prob.NewOPF()
	w2.Put(sets.NewSet("a"), 1.0)
	pi2.SetOPF("r", w2)
	if err := pi2.Validate(); err == nil {
		t.Error("OPF support outside PC accepted")
	}
	// The same check must also trip without full PC enumeration.
	if err := pi2.ValidateLite(); err == nil {
		t.Error("ValidateLite missed card violation in OPF support")
	}

	// OPF supporting a non-child.
	pi3 := core.NewProbInstance("r")
	pi3.SetLCh("r", "l", "a")
	w3 := prob.NewOPF()
	w3.Put(sets.NewSet("z"), 1.0)
	pi3.SetOPF("r", w3)
	pi3.AddObject("z")
	if err := pi3.ValidateLite(); err == nil {
		t.Error("OPF supporting non-child accepted")
	}
}

func TestValidateRejectsCyclicWeakGraph(t *testing.T) {
	pi := core.NewProbInstance("r")
	pi.SetLCh("r", "l", "a")
	pi.SetLCh("a", "l", "b")
	pi.SetLCh("b", "l", "a") // cycle a → b → a
	for _, o := range []string{"r", "a", "b"} {
		w := prob.NewOPF()
		w.Put(sets.NewSet(), 0.5)
		pc, _ := pi.PotentialChildSets(o, 0)
		_ = pc
		w.Put(pi.LCh(o, "l"), 0.5)
		pi.SetOPF(o, w)
	}
	if err := pi.Validate(); err == nil || !strings.Contains(err.Error(), "acyclic") {
		t.Errorf("cyclic weak graph: %v", err)
	}
}

func TestWeakValidateRejectsDoubleLabelChild(t *testing.T) {
	w := core.NewWeakInstance("r")
	w.SetLCh("r", "a", "x")
	w.SetLCh("r", "b", "x")
	if err := w.Validate(); err == nil || !strings.Contains(err.Error(), "under labels") {
		t.Errorf("double-label child: %v", err)
	}
}

func TestWeakValidateRejectsRootAsChild(t *testing.T) {
	w := core.NewWeakInstance("r")
	w.SetLCh("r", "a", "x")
	w.SetLCh("x", "a", "r")
	if err := w.Validate(); err == nil || !strings.Contains(err.Error(), "root") {
		t.Errorf("root as child: %v", err)
	}
}

func TestCardDefaults(t *testing.T) {
	w := core.NewWeakInstance("r")
	w.SetLCh("r", "l", "a", "b", "c")
	if got := w.Card("r", "l"); got.Min != 0 || got.Max != 3 {
		t.Errorf("default card = %v", got)
	}
	w.SetCard("r", "l", 1, 2)
	if got := w.Card("r", "l"); got.Min != 1 || got.Max != 2 {
		t.Errorf("explicit card = %v", got)
	}
}

func TestWeakGraphRespectsCard(t *testing.T) {
	// card [0,0] removes children from the weak instance graph entirely.
	w := core.NewWeakInstance("r")
	w.SetLCh("r", "l", "a")
	w.SetCard("r", "l", 0, 0)
	g := w.Graph()
	if g.HasEdge("r", "a") {
		t.Error("edge exists despite card [0,0]")
	}
	// An unsatisfiable label annihilates all of the object's edges.
	w2 := core.NewWeakInstance("r")
	w2.SetLCh("r", "l", "a")
	w2.SetLCh("r", "m", "b")
	w2.SetCard("r", "m", 2, 2) // only one potential m-child: impossible
	g2 := w2.Graph()
	if g2.HasEdge("r", "a") || g2.HasEdge("r", "b") {
		t.Error("edges exist despite annihilated PC")
	}
	pc, err := w2.PotentialChildSets("r", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pc) != 0 {
		t.Errorf("PC = %v, want empty", pc)
	}
}

func TestIsTree(t *testing.T) {
	w := core.NewWeakInstance("r")
	w.SetLCh("r", "l", "a", "b")
	w.SetLCh("a", "l", "c")
	if !w.IsTree() {
		t.Error("tree not recognized")
	}
	w.SetLCh("b", "l", "c") // c now has two parents
	if w.IsTree() {
		t.Error("DAG recognized as tree")
	}
	// Unreachable object breaks treeness.
	w2 := core.NewWeakInstance("r")
	w2.SetLCh("r", "l", "a")
	w2.AddObject("island")
	if w2.IsTree() {
		t.Error("instance with unreachable object recognized as tree")
	}
}

func TestPCLimitGuard(t *testing.T) {
	w := core.NewWeakInstance("r")
	ids := make([]string, 24)
	for i := range ids {
		ids[i] = string(rune('a'+i%26)) + string(rune('0'+i/26))
	}
	w.SetLCh("r", "l", ids...)
	if _, err := w.PotentialChildSets("r", 1000); err == nil {
		t.Error("PC explosion not guarded")
	}
	if got := w.PCSize("r", 1000); got != 1001 {
		t.Errorf("PCSize = %d, want 1001", got)
	}
}

func TestRenameProbInstance(t *testing.T) {
	pi := fixtures.Figure2()
	ren := pi.Rename(map[model.ObjectID]model.ObjectID{"B1": "X1", "A1": "Y1"})
	if err := ren.Validate(); err != nil {
		t.Fatalf("renamed instance invalid: %v", err)
	}
	if ren.HasObject("B1") || !ren.HasObject("X1") {
		t.Error("rename failed for object B1")
	}
	if !ren.LCh("R", "book").Contains("X1") {
		t.Error("lch not renamed")
	}
	if got := ren.OPF("R").Prob(sets.NewSet("X1", "B2")); !approx(got, 0.2) {
		t.Errorf("renamed OPF prob = %v", got)
	}
	if got := ren.OPF("X1").Prob(sets.NewSet("Y1", "T1")); !approx(got, 0.35) {
		t.Errorf("renamed nested OPF prob = %v", got)
	}
	// Original untouched.
	if !pi.HasObject("B1") || pi.HasObject("X1") {
		t.Error("rename mutated original")
	}
}

func TestCloneDeep(t *testing.T) {
	pi := fixtures.Figure2()
	c := pi.Clone()
	c.SetCard("R", "book", 0, 3)
	c.OPF("B1").Put(sets.NewSet("A1"), 0.9)
	if got := pi.Card("R", "book"); got.Min != 2 {
		t.Error("clone shares card map")
	}
	if got := pi.OPF("B1").Prob(sets.NewSet("A1")); !approx(got, 0.3) {
		t.Error("clone shares OPFs")
	}
}

func TestDepthAndStats(t *testing.T) {
	pi := fixtures.Figure2()
	d, err := pi.Depth()
	if err != nil {
		t.Fatal(err)
	}
	if d != 3 { // R → book → author → institution
		t.Errorf("depth = %d, want 3", d)
	}
	st := pi.ComputeStats()
	if st.Objects != 11 || st.Leaves != 4 || st.Depth != 3 {
		t.Errorf("stats = %+v", st)
	}
	if st.OPFEntries != 4+6+3+1+2+2+1 {
		t.Errorf("OPF entries = %d", st.OPFEntries)
	}
	if st.VPFEntries != 4 {
		t.Errorf("VPF entries = %d", st.VPFEntries)
	}
}

func TestDefaultValue(t *testing.T) {
	w := core.NewWeakInstance("r")
	if err := w.SetDefaultValue("x", "v"); err == nil {
		t.Error("default value without type accepted")
	}
	if err := w.RegisterType(model.NewType("t", "v", "u")); err != nil {
		t.Fatal(err)
	}
	if err := w.SetLeafType("x", "t"); err != nil {
		t.Fatal(err)
	}
	if err := w.SetDefaultValue("x", "z"); err == nil {
		t.Error("out-of-domain default accepted")
	}
	if err := w.SetDefaultValue("x", "v"); err != nil {
		t.Fatal(err)
	}
	if v, ok := w.DefaultValue("x"); !ok || v != "v" {
		t.Errorf("DefaultValue = %q,%v", v, ok)
	}
}

func TestSetLChRemoval(t *testing.T) {
	w := core.NewWeakInstance("r")
	w.SetLCh("r", "l", "a")
	w.SetLCh("r", "l")
	if !w.IsLeaf("r") {
		t.Error("clearing lch did not make r a leaf")
	}
	if len(w.Labels("r")) != 0 {
		t.Errorf("Labels = %v", w.Labels("r"))
	}
}

// TestQuickRandomInstancesValidate: every randomly generated fixture
// instance passes full validation.
func TestQuickRandomInstancesValidate(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pi := fixtures.RandomTree(r)
		if pi.Validate() != nil {
			return false
		}
		dag := fixtures.RandomDAG(r)
		return dag.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(20250705))}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRandomTreesAreTrees: the tree fixture really produces trees.
func TestQuickRandomTreesAreTrees(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		return fixtures.RandomTree(r).IsTree()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(20250705))}); err != nil {
		t.Fatal(err)
	}
}

// TestEqualEdgeCases exercises the instance-equality helper directly (it
// is mostly used by other packages' round-trip tests).
func TestEqualEdgeCases(t *testing.T) {
	a := fixtures.Figure2()
	b := fixtures.Figure2()
	if !core.Equal(a, b, 1e-12) {
		t.Fatal("identical instances unequal")
	}
	// Different root.
	if core.Equal(a, core.NewProbInstance("X"), 1e-12) {
		t.Error("different roots equal")
	}
	// Probability perturbation beyond tolerance.
	c := fixtures.Figure2()
	c.OPF("B1").Put(sets.NewSet("A1"), 0.30001)
	if core.Equal(a, c, 1e-9) {
		t.Error("perturbed OPF equal")
	}
	if !core.Equal(a, c, 1e-3) {
		t.Error("perturbation outside loose tolerance")
	}
	// VPF difference.
	d := fixtures.Figure2()
	d.SetVPF("T1", prob.PointMass("Lore"))
	if core.Equal(a, d, 1e-9) {
		t.Error("different VPFs equal")
	}
	// Card difference.
	e := fixtures.Figure2()
	e.SetCard("R", "book", 1, 3)
	if core.Equal(a, e, 1e-9) {
		t.Error("different cards equal")
	}
	// Missing vs present OPF: only equal when the present one has ~zero
	// mass.
	f := fixtures.Figure2()
	f.SetOPF("Z1", prob.NewOPF())
	f.AddObject("Z1")
	g := fixtures.Figure2()
	g.AddObject("Z1")
	if !core.Equal(f, g, 1e-9) {
		t.Error("zero-mass OPF should compare equal to absent")
	}
	// Type domain difference.
	h := core.NewProbInstance("r")
	_ = h.RegisterType(model.NewType("t", "a"))
	_ = h.SetLeafType("x", "t")
	h.SetVPF("x", prob.PointMass("a"))
	h2 := core.NewProbInstance("r")
	_ = h2.RegisterType(model.NewType("t", "a", "b"))
	_ = h2.SetLeafType("x", "t")
	h2.SetVPF("x", prob.PointMass("a"))
	if core.Equal(h, h2, 1e-9) {
		t.Error("different domains equal")
	}
}

func TestWeakAccessors(t *testing.T) {
	pi := fixtures.Figure2()
	// AllChildren unions the per-label sets.
	got := pi.AllChildren("B1")
	if !got.Equal(sets.NewSet("A1", "A2", "T1")) {
		t.Errorf("AllChildren(B1) = %v", got)
	}
	if pi.AllChildren("T1").Len() != 0 {
		t.Errorf("AllChildren(leaf) = %v", pi.AllChildren("T1"))
	}
	// Types registry is exposed.
	if len(pi.Types()) != 2 {
		t.Errorf("Types = %v", pi.Types())
	}
	// Sorted local-function object lists.
	opfs := pi.SortedOPFObjects()
	if len(opfs) != 7 || opfs[0] != "A1" {
		t.Errorf("SortedOPFObjects = %v", opfs)
	}
	vpfs := pi.SortedVPFObjects()
	if len(vpfs) != 4 || vpfs[0] != "I1" {
		t.Errorf("SortedVPFObjects = %v", vpfs)
	}
	// FromWeak wraps without copying.
	w := pi.Weak()
	fw := core.FromWeak(w)
	if fw.Weak() != w {
		t.Error("FromWeak copied the weak instance")
	}
	if fw.Interp() == nil {
		t.Error("FromWeak produced nil interpretation")
	}
}

func TestRegisterTypeConflict(t *testing.T) {
	w := core.NewWeakInstance("r")
	if err := w.RegisterType(model.NewType("t", "a", "b")); err != nil {
		t.Fatal(err)
	}
	if err := w.RegisterType(model.NewType("t", "a", "b")); err != nil {
		t.Errorf("identical re-registration rejected: %v", err)
	}
	if err := w.RegisterType(model.NewType("t", "a")); err == nil {
		t.Error("shorter domain accepted")
	}
	if err := w.RegisterType(model.NewType("t", "a", "c")); err == nil {
		t.Error("different domain accepted")
	}
	if err := w.RegisterType(model.Type{}); err == nil {
		t.Error("invalid type accepted")
	}
}

// TestGraphCacheInvalidation: the memoized weak instance graph reflects
// structural mutations and is rebuilt after invalidation.
func TestGraphCacheInvalidation(t *testing.T) {
	w := core.NewWeakInstance("r")
	w.SetLCh("r", "l", "a")
	g1 := w.Graph()
	if !g1.HasEdge("r", "a") {
		t.Fatal("edge missing")
	}
	// Unmutated: the same graph object is returned.
	if w.Graph() != g1 {
		t.Error("cache not reused")
	}
	// Mutations invalidate.
	w.SetLCh("a", "m", "b")
	g2 := w.Graph()
	if g2 == g1 {
		t.Error("cache not invalidated by SetLCh")
	}
	if !g2.HasEdge("a", "b") {
		t.Error("new edge missing")
	}
	w.SetCard("r", "l", 0, 0)
	if w.Graph().HasEdge("r", "a") {
		t.Error("card change not reflected (cache stale)")
	}
	w.AddObject("island")
	if !w.Graph().HasNode("island") {
		t.Error("AddObject not reflected (cache stale)")
	}
	// Clones do not share the cache.
	c := w.Clone()
	c.SetLCh("island", "x", "y")
	if w.Graph().HasEdge("island", "y") {
		t.Error("clone mutation leaked into original's graph")
	}
}

package bayes

import (
	"context"
	"fmt"
	"sort"

	"pxml/internal/core"
	"pxml/internal/govern"
	"pxml/internal/model"
	"pxml/internal/pathexpr"
	"pxml/internal/sets"
)

// Absent is the reserved state name for "object does not occur in the
// compatible instance".
const Absent = "⊥"

// Variable is one discrete network variable with named states.
type Variable struct {
	ID     int
	Name   string
	States []string
}

// Card returns the number of states.
func (v Variable) Card() int { return len(v.States) }

// StateIndex returns the index of a named state, or -1.
func (v Variable) StateIndex(name string) int {
	for i, s := range v.States {
		if s == name {
			return i
		}
	}
	return -1
}

// Network is a Bayesian network compiled from a probabilistic instance:
// one variable per object (child-set choice for non-leaves, value for typed
// leaves, presence for untyped leaves) with a CPT factor each.
type Network struct {
	vars    []Variable
	factors []*Factor
	byName  map[string]int
	// objVar maps an object id to its variable id.
	objVar map[model.ObjectID]int
	// setKeyState maps (variable, child-set key) to the state index, used
	// when conditioning on a parent's choice containing a given child.
	containsChild map[int]map[model.ObjectID][]int
	root          model.ObjectID
}

// Var returns a variable by id.
func (n *Network) Var(id int) Variable { return n.vars[id] }

// NumVars returns the number of variables.
func (n *Network) NumVars() int { return len(n.vars) }

// NumFactors returns the number of CPT factors.
func (n *Network) NumFactors() int { return len(n.factors) }

// VarOf returns the variable id of an object. The boolean result is false
// for unknown objects.
func (n *Network) VarOf(o model.ObjectID) (int, bool) {
	id, ok := n.objVar[o]
	return id, ok
}

func (n *Network) addVar(name string, states []string) int {
	id := len(n.vars)
	n.vars = append(n.vars, Variable{ID: id, Name: name, States: states})
	n.byName[name] = id
	return id
}

// Compile maps a probabilistic instance to its Bayesian network per the
// Section 6 correspondence. Variables are created in topological order of
// the weak instance graph, so every object's weak parents already have
// variables when its CPT is built.
func Compile(pi *core.ProbInstance) (*Network, error) {
	return CompileCtx(context.Background(), pi)
}

// CompileCtx is Compile under a context-carried resource governor: each
// CPT is size-checked against the hard factor cap and the query's byte
// budget BEFORE its table is allocated, and cancellation is honoured
// between objects. Even without a governor the hard cap applies, so a
// width-bomb instance fails compilation with a typed error instead of
// allocating an astronomically large table.
func CompileCtx(ctx context.Context, pi *core.ProbInstance) (*Network, error) {
	gov := govern.From(ctx)
	g := pi.WeakInstance.Graph()
	order, err := g.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("bayes: %w", err)
	}
	net := &Network{
		byName:        make(map[string]int),
		objVar:        make(map[model.ObjectID]int),
		containsChild: make(map[int]map[model.ObjectID][]int),
		root:          pi.Root(),
	}
	// Only objects reachable from the root matter.
	reach := make(map[model.ObjectID]bool)
	for _, o := range g.ReachableFrom(pi.Root()) {
		reach[o] = true
	}
	for _, o := range order {
		if !reach[o] {
			continue
		}
		if err := gov.Err(); err != nil {
			return nil, err
		}
		isRoot := o == pi.Root()
		var states []string
		var childSets []sets.Set
		var probs []float64
		switch {
		case !pi.IsLeaf(o):
			opf := pi.OPF(o)
			if opf == nil {
				return nil, fmt.Errorf("bayes: non-leaf %s has no OPF", o)
			}
			for _, e := range opf.Entries() {
				if e.Prob <= 0 {
					continue
				}
				states = append(states, "c:"+e.Set.Key())
				childSets = append(childSets, e.Set)
				probs = append(probs, e.Prob)
			}
		default:
			if vpf := pi.VPF(o); vpf != nil {
				for _, e := range vpf.Entries() {
					if e.Prob <= 0 {
						continue
					}
					states = append(states, "v:"+e.Value)
					probs = append(probs, e.Prob)
				}
			} else {
				states = append(states, "present")
				probs = append(probs, 1)
			}
		}
		if !isRoot {
			states = append(states, Absent)
		}
		id := net.addVar(string(o), states)
		net.objVar[o] = id
		// Record which states of this variable include each child.
		cc := make(map[model.ObjectID][]int)
		for si, cs := range childSets {
			for _, ch := range cs {
				cc[ch] = append(cc[ch], si)
			}
		}
		net.containsChild[id] = cc

		// CPT: X_o given the weak parents' variables.
		parents := g.Parents(o)
		var keptParents []model.ObjectID
		for _, p := range parents {
			if reach[p] {
				keptParents = append(keptParents, p)
			}
		}
		sort.Strings(keptParents)
		fvars := []int{id}
		fcard := []int{len(states)}
		for _, p := range keptParents {
			pv := net.objVar[p]
			fvars = append(fvars, pv)
			fcard = append(fcard, net.vars[pv].Card())
		}
		f, err := checkedNewFactor(gov, fvars, fcard)
		if err != nil {
			return nil, fmt.Errorf("compiling CPT for %s: %w", o, err)
		}
		f.EachAssignment(func(assign []int, _ float64) {
			present := isRoot
			for i, p := range keptParents {
				pv := net.objVar[p]
				if includesChild(net, pv, assign[i+1], o) {
					present = true
					break
				}
			}
			st := assign[0]
			var pr float64
			if present {
				if st < len(probs) {
					pr = probs[st]
				} else {
					pr = 0 // absent while some parent includes it
				}
			} else {
				if !isRoot && st == len(states)-1 {
					pr = 1 // absent
				} else {
					pr = 0
				}
			}
			f.Set(assign, pr)
		})
		net.factors = append(net.factors, f)
	}
	return net, nil
}

// includesChild reports whether state st of variable pv corresponds to a
// child set containing o.
func includesChild(net *Network, pv, st int, o model.ObjectID) bool {
	for _, si := range net.containsChild[pv][o] {
		if si == st {
			return true
		}
	}
	return false
}

// Marginal computes the marginal distribution of an object's variable.
func (n *Network) Marginal(o model.ObjectID) (map[string]float64, error) {
	return n.MarginalCtx(context.Background(), o)
}

// MarginalCtx is Marginal with elimination governed by ctx's budget.
func (n *Network) MarginalCtx(ctx context.Context, o model.ObjectID) (map[string]float64, error) {
	id, ok := n.objVar[o]
	if !ok {
		return nil, fmt.Errorf("bayes: unknown object %s", o)
	}
	f, err := EliminateAllCtx(ctx, n.factors, map[int]bool{id: true})
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64, n.vars[id].Card())
	f.EachAssignment(func(assign []int, v float64) {
		out[n.vars[id].States[assign[0]]] += v
	})
	return out, nil
}

// ProbExists returns the probability that object o occurs in a compatible
// instance — the Section 2 scenario 4 query ("the probability that a
// particular author exists"), exact on DAGs.
func (n *Network) ProbExists(o model.ObjectID) (float64, error) {
	return n.ProbExistsCtx(context.Background(), o)
}

// ProbExistsCtx is ProbExists with elimination governed by ctx's budget.
func (n *Network) ProbExistsCtx(ctx context.Context, o model.ObjectID) (float64, error) {
	m, err := n.MarginalCtx(ctx, o)
	if err != nil {
		return 0, err
	}
	return 1 - m[Absent], nil
}

// ProbValue returns the probability that typed leaf o occurs with value v.
func (n *Network) ProbValue(o model.ObjectID, v model.Value) (float64, error) {
	m, err := n.Marginal(o)
	if err != nil {
		return 0, err
	}
	return m["v:"+v], nil
}

// PathProb answers a probabilistic point query on an arbitrary acyclic
// instance: the probability that object o satisfies path expression p (or,
// with o == "", that any object does). It augments the compiled network
// with deterministic reachability variables R_{i,x} — "x is reached by the
// first i labels of p" — whose OR-structure mirrors the level sets of the
// path plan, then eliminates everything.
func PathProb(pi *core.ProbInstance, p pathexpr.Path, o model.ObjectID) (float64, error) {
	if p.Root != pi.Root() {
		return 0, nil
	}
	net, err := Compile(pi)
	if err != nil {
		return 0, err
	}
	return pathProbOn(context.Background(), net, pi, p, o)
}

// PathProbWith is PathProb over a previously compiled network: callers
// holding many queries against one immutable instance compile once and
// reuse. The shared network is never mutated — the path augmentation works
// on a shallow per-query clone of the variable table.
func PathProbWith(net *Network, pi *core.ProbInstance, p pathexpr.Path, o model.ObjectID) (float64, error) {
	return PathProbWithCtx(context.Background(), net, pi, p, o)
}

// PathProbWithCtx is PathProbWith under a context-carried resource
// governor: the reachability factors and every elimination product are
// budget-checked before allocation and cancellation is honoured at the
// per-variable loop boundaries.
func PathProbWithCtx(ctx context.Context, net *Network, pi *core.ProbInstance, p pathexpr.Path, o model.ObjectID) (float64, error) {
	if p.Root != pi.Root() {
		return 0, nil
	}
	return pathProbOn(ctx, net.queryClone(), pi, p, o)
}

// queryClone returns a shallow copy whose variable table can be extended
// by addVar without touching the receiver. Factors, objVar and
// containsChild are shared: the augmentation only reads them.
func (n *Network) queryClone() *Network {
	byName := make(map[string]int, len(n.byName))
	for k, v := range n.byName {
		byName[k] = v
	}
	return &Network{
		vars:          append([]Variable(nil), n.vars...),
		factors:       n.factors,
		byName:        byName,
		objVar:        n.objVar,
		containsChild: n.containsChild,
		root:          n.root,
	}
}

// pathProbOn runs the reachability augmentation and elimination on net,
// which it may extend with fresh variables (pass a queryClone when the
// network is shared).
func pathProbOn(ctx context.Context, net *Network, pi *core.ProbInstance, p pathexpr.Path, o model.ObjectID) (float64, error) {
	gov := govern.From(ctx)
	if p.Len() == 0 {
		if o == "" || o == pi.Root() {
			return 1, nil
		}
		return 0, nil
	}
	g := pi.WeakInstance.Graph()
	var targets map[model.ObjectID]bool
	if o != "" {
		targets = map[model.ObjectID]bool{o: true}
	}
	plan := pathexpr.NewPlan(g, p, targets)
	if plan.IsEmpty() {
		return 0, nil
	}
	// Kept edges grouped by (level, child).
	type lk struct {
		level int
		child model.ObjectID
	}
	parentsOf := make(map[lk][]model.ObjectID)
	for level := 1; level < len(plan.Keep); level++ {
		want := p.Labels[level-1]
		for x := range plan.Keep[level] {
			for _, e := range plan.Edges {
				// An edge contributes reach at this level only when its
				// label matches the level's path label (kept edges may
				// stem from other levels of a DAG plan).
				if e.To == x && plan.Keep[level-1][e.From] &&
					(want == pathexpr.Wildcard || e.Label == want) {
					parentsOf[lk{level, x}] = append(parentsOf[lk{level, x}], e.From)
				}
			}
		}
	}
	factors := append([]*Factor(nil), net.factors...)
	// rvar[(level, x)] = id of R_{level,x}; level 0 root is implicitly true.
	rvar := make(map[lk]int)
	boolStates := []string{"f", "t"}
	for level := 1; level < len(plan.Keep); level++ {
		for _, x := range sortedKeys(plan.Keep[level]) {
			if err := gov.Err(); err != nil {
				return 0, err
			}
			key := lk{level, x}
			ps := parentsOf[key]
			sort.Strings(ps)
			id := net.addVar(fmt.Sprintf("R%d:%s", level, x), boolStates)
			rvar[key] = id
			// Factor over (R_{level,x}, for each kept parent y: X_y [, R_{level-1,y}]).
			fvars := []int{id}
			fcard := []int{2}
			type pref struct {
				xvar int
				rvar int // -1 when level-1 == 0 (root reach is certain)
				y    model.ObjectID
			}
			var prefs []pref
			for _, y := range ps {
				xv := net.objVar[y]
				rv := -1
				if level-1 > 0 {
					rv = rvar[lk{level - 1, y}]
				}
				prefs = append(prefs, pref{xvar: xv, rvar: rv, y: y})
				fvars = append(fvars, xv)
				fcard = append(fcard, net.vars[xv].Card())
				if rv >= 0 {
					fvars = append(fvars, rv)
					fcard = append(fcard, 2)
				}
			}
			f, err := checkedNewFactor(gov, fvars, fcard)
			if err != nil {
				return 0, fmt.Errorf("reachability factor R%d:%s: %w", level, x, err)
			}
			f.EachAssignment(func(assign []int, _ float64) {
				reached := false
				pos := 1
				for _, pr := range prefs {
					xState := assign[pos]
					pos++
					parentReached := true
					if pr.rvar >= 0 {
						parentReached = assign[pos] == 1
						pos++
					}
					if parentReached && includesChild(net, pr.xvar, xState, x) {
						reached = true
					}
				}
				want := 0
				if reached {
					want = 1
				}
				if assign[0] == want {
					f.Set(assign, 1)
				} else {
					f.Set(assign, 0)
				}
			})
			factors = append(factors, f)
		}
	}
	// Final event: OR over the matched objects' reach variables.
	n := p.Len()
	matchedIDs := sortedKeys(plan.Keep[n])
	anyVar := net.addVar("ANY", boolStates)
	fvars := []int{anyVar}
	fcard := []int{2}
	for _, m := range matchedIDs {
		rv := rvar[lk{n, m}]
		fvars = append(fvars, rv)
		fcard = append(fcard, 2)
	}
	f, err := checkedNewFactor(gov, fvars, fcard)
	if err != nil {
		return 0, fmt.Errorf("path match factor: %w", err)
	}
	f.EachAssignment(func(assign []int, _ float64) {
		any := false
		for i := 1; i < len(assign); i++ {
			if assign[i] == 1 {
				any = true
				break
			}
		}
		want := 0
		if any {
			want = 1
		}
		if assign[0] == want {
			f.Set(assign, 1)
		}
	})
	factors = append(factors, f)
	joint, err := EliminateAllCtx(ctx, factors, map[int]bool{anyVar: true})
	if err != nil {
		return 0, err
	}
	total, trueMass := 0.0, 0.0
	joint.EachAssignment(func(assign []int, v float64) {
		total += v
		if assign[0] == 1 {
			trueMass += v
		}
	})
	if total <= 0 {
		return 0, nil
	}
	return trueMass / total, nil
}

func sortedKeys(m map[model.ObjectID]bool) []model.ObjectID {
	out := make([]model.ObjectID, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Evidence asserts facts about objects when querying: each listed object
// is required to occur (Exists) or to be absent (Absent) in the compatible
// instance.
type Evidence struct {
	Exists []model.ObjectID
	Absent []model.ObjectID
}

// evidenceFactors builds indicator factors for the evidence.
func (n *Network) evidenceFactors(ev Evidence) ([]*Factor, error) {
	var fs []*Factor
	add := func(o model.ObjectID, wantAbsent bool) error {
		id, ok := n.objVar[o]
		if !ok {
			return fmt.Errorf("bayes: unknown object %s in evidence", o)
		}
		v := n.vars[id]
		absentIdx := v.StateIndex(Absent)
		f := NewFactor([]int{id}, []int{v.Card()})
		for s := 0; s < v.Card(); s++ {
			isAbsent := s == absentIdx
			if isAbsent == wantAbsent {
				f.Set([]int{s}, 1)
			}
		}
		fs = append(fs, f)
		return nil
	}
	for _, o := range ev.Exists {
		if err := add(o, false); err != nil {
			return nil, err
		}
	}
	for _, o := range ev.Absent {
		if err := add(o, true); err != nil {
			return nil, err
		}
	}
	return fs, nil
}

// ProbEvidence returns the probability that all the evidence holds.
func (n *Network) ProbEvidence(ev Evidence) (float64, error) {
	evf, err := n.evidenceFactors(ev)
	if err != nil {
		return 0, err
	}
	joint, err := EliminateAll(append(append([]*Factor(nil), n.factors...), evf...), nil)
	if err != nil {
		return 0, err
	}
	return joint.Scalar()
}

// MarginalGiven computes the marginal distribution of object o conditioned
// on the evidence — the Bayesian-network counterpart of the selection
// operator's renormalization (Definition 5.6), exact on DAGs. It returns
// an error when the evidence has probability zero.
func (n *Network) MarginalGiven(o model.ObjectID, ev Evidence) (map[string]float64, error) {
	id, ok := n.objVar[o]
	if !ok {
		return nil, fmt.Errorf("bayes: unknown object %s", o)
	}
	evf, err := n.evidenceFactors(ev)
	if err != nil {
		return nil, err
	}
	joint, err := EliminateAll(append(append([]*Factor(nil), n.factors...), evf...), map[int]bool{id: true})
	if err != nil {
		return nil, err
	}
	total := 0.0
	out := make(map[string]float64, n.vars[id].Card())
	joint.EachAssignment(func(assign []int, v float64) {
		out[n.vars[id].States[assign[0]]] += v
		total += v
	})
	if total <= 0 {
		return nil, fmt.Errorf("bayes: evidence has probability zero")
	}
	for k := range out {
		out[k] /= total
	}
	return out, nil
}

// ProbExistsGiven returns P(o exists | evidence).
func (n *Network) ProbExistsGiven(o model.ObjectID, ev Evidence) (float64, error) {
	m, err := n.MarginalGiven(o, ev)
	if err != nil {
		return 0, err
	}
	return 1 - m[Absent], nil
}

package bayes

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pxml/internal/enumerate"
	"pxml/internal/fixtures"
	"pxml/internal/model"
	"pxml/internal/pathexpr"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestFactorBasics(t *testing.T) {
	f := NewFactor([]int{0, 1}, []int{2, 3})
	f.Set([]int{1, 2}, 0.5)
	if got := f.At([]int{1, 2}); got != 0.5 {
		t.Errorf("At = %v", got)
	}
	if f.Size() != 6 {
		t.Errorf("Size = %d", f.Size())
	}
	n := 0
	f.EachAssignment(func(a []int, v float64) { n++ })
	if n != 6 {
		t.Errorf("EachAssignment visited %d", n)
	}
	if _, err := f.Scalar(); err == nil {
		t.Error("non-scalar Scalar accepted")
	}
}

func TestFactorMultiplySumOut(t *testing.T) {
	// P(A)·P(B|A), then sum out A → P(B).
	pa := NewFactor([]int{0}, []int{2})
	pa.Set([]int{0}, 0.3)
	pa.Set([]int{1}, 0.7)
	pba := NewFactor([]int{1, 0}, []int{2, 2})
	pba.Set([]int{0, 0}, 0.9)
	pba.Set([]int{1, 0}, 0.1)
	pba.Set([]int{0, 1}, 0.2)
	pba.Set([]int{1, 1}, 0.8)
	joint := Multiply(pa, pba)
	pb := joint.SumOut(0)
	if got := pb.At([]int{0}); !approx(got, 0.3*0.9+0.7*0.2) {
		t.Errorf("P(B=0) = %v", got)
	}
	if got := pb.At([]int{1}); !approx(got, 0.3*0.1+0.7*0.8) {
		t.Errorf("P(B=1) = %v", got)
	}
	// Summing out an absent variable copies.
	cp := pa.SumOut(99)
	if cp.At([]int{1}) != 0.7 {
		t.Error("SumOut(absent) altered factor")
	}
}

func TestFactorReduce(t *testing.T) {
	f := NewFactor([]int{0, 1}, []int{2, 2})
	f.Set([]int{0, 0}, 1)
	f.Set([]int{1, 1}, 2)
	r := f.Reduce(0, 1)
	if got := r.At([]int{1}); got != 2 {
		t.Errorf("reduced = %v", got)
	}
	if got := r.At([]int{0}); got != 0 {
		t.Errorf("reduced = %v", got)
	}
	cp := f.Reduce(9, 0)
	if cp.At([]int{1, 1}) != 2 {
		t.Error("Reduce(absent) altered factor")
	}
}

func TestEliminateAllScalar(t *testing.T) {
	pa := NewFactor([]int{0}, []int{2})
	pa.Set([]int{0}, 0.25)
	pa.Set([]int{1}, 0.75)
	f, err := EliminateAll([]*Factor{pa}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := f.Scalar()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s, 1) {
		t.Errorf("scalar = %v", s)
	}
}

// TestCompileFigure2Exists: scenario 4 of Section 2 on the paper's own DAG
// instance — the probability that author A1 exists. Cross-checked against
// the enumeration oracle.
func TestCompileFigure2Exists(t *testing.T) {
	pi := fixtures.Figure2()
	net, err := Compile(pi)
	if err != nil {
		t.Fatal(err)
	}
	gi, err := enumerate.Enumerate(pi, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range []string{"B1", "B2", "B3", "A1", "A2", "A3", "I1", "I2", "T1", "T2"} {
		got, err := net.ProbExists(o)
		if err != nil {
			t.Fatalf("ProbExists(%s): %v", o, err)
		}
		want := gi.ProbWhere(func(s *model.Instance) bool { return s.HasObject(o) })
		if !approx(got, want) {
			t.Errorf("P(%s exists) = %v, oracle %v", o, got, want)
		}
	}
	// Root marginal has no absent state.
	m, err := net.Marginal("R")
	if err != nil {
		t.Fatal(err)
	}
	if m[Absent] != 0 {
		t.Errorf("root absent mass = %v", m[Absent])
	}
}

func TestProbValueFigure2(t *testing.T) {
	pi := fixtures.Figure2VariedLeaves()
	net, err := Compile(pi)
	if err != nil {
		t.Fatal(err)
	}
	gi, err := enumerate.Enumerate(pi, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := net.ProbValue("T1", "VQDB")
	if err != nil {
		t.Fatal(err)
	}
	want := gi.ProbWhere(func(s *model.Instance) bool {
		v, ok := s.ValueOf("T1")
		return ok && v == "VQDB"
	})
	if !approx(got, want) {
		t.Errorf("P(T1=VQDB) = %v, oracle %v", got, want)
	}
}

// TestPathProbFigure2: point queries on the paper's DAG instance, where the
// Section 6 tree algorithms do not apply, cross-checked against the oracle.
func TestPathProbFigure2(t *testing.T) {
	pi := fixtures.Figure2()
	gi, err := enumerate.Enumerate(pi, 0)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		path string
		obj  string
	}{
		{"R.book.author", "A1"},
		{"R.book.author", "A2"},
		{"R.book.author", "A3"},
		{"R.book.author.institution", "I1"},
		{"R.book.title", "T1"},
		{"R.book.author", ""}, // existence query
		{"R.book.nothing", "A1"},
	}
	for _, c := range cases {
		p := pathexpr.MustParse(c.path)
		got, err := PathProb(pi, p, c.obj)
		if err != nil {
			t.Fatalf("PathProb(%s, %q): %v", c.path, c.obj, err)
		}
		want := gi.ProbWhere(func(s *model.Instance) bool {
			if c.obj == "" {
				return len(p.Targets(s.Graph())) > 0
			}
			return p.Matches(s.Graph(), c.obj)
		})
		if !approx(got, want) {
			t.Errorf("PathProb(%s, %q) = %v, oracle %v", c.path, c.obj, got, want)
		}
	}
}

func TestPathProbEdgeCases(t *testing.T) {
	pi := fixtures.Figure2()
	// Wrong root.
	if p, err := PathProb(pi, pathexpr.MustParse("X.book"), ""); err != nil || p != 0 {
		t.Errorf("wrong root: %v %v", p, err)
	}
	// Bare root.
	if p, err := PathProb(pi, pathexpr.MustParse("R"), ""); err != nil || p != 1 {
		t.Errorf("bare root: %v %v", p, err)
	}
	if p, err := PathProb(pi, pathexpr.MustParse("R"), "B1"); err != nil || p != 0 {
		t.Errorf("bare root other object: %v %v", p, err)
	}
}

func TestCompileRejectsCycle(t *testing.T) {
	pi := fixtures.Figure2()
	pi.SetLCh("I1", "loop", "R") // introduces a cycle through the root? root cannot be a child; use B1
	pi.SetLCh("I1", "loop")
	pi.SetLCh("I1", "l", "B1")
	if _, err := Compile(pi); err == nil {
		t.Error("cyclic instance compiled")
	}
}

// TestQuickBayesMatchesOracleDAG: existence marginals on random DAGs agree
// with enumeration — the quantitative core of the Section 6 claim that BN
// inference answers PXML queries.
func TestQuickBayesMatchesOracleDAG(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pi := fixtures.RandomDAG(r)
		if pi.NumObjects() > 11 {
			return true
		}
		net, err := Compile(pi)
		if err != nil {
			return false
		}
		gi, err := enumerate.Enumerate(pi, 0)
		if err != nil {
			return false
		}
		objs := pi.Objects()
		o := objs[r.Intn(len(objs))]
		got, err := net.ProbExists(o)
		if err != nil {
			return false
		}
		want := gi.ProbWhere(func(s *model.Instance) bool { return s.HasObject(o) })
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(20250705))}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPathProbMatchesOracleDAG: DAG point queries via the augmented
// network agree with enumeration.
func TestQuickPathProbMatchesOracleDAG(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pi := fixtures.RandomDAG(r)
		if pi.NumObjects() > 10 {
			return true
		}
		labels := []string{"a", "b"}
		p := pathexpr.Path{Root: pi.Root()}
		for i := 0; i < 1+r.Intn(2); i++ {
			p.Labels = append(p.Labels, labels[r.Intn(len(labels))])
		}
		objs := pi.Objects()
		o := objs[r.Intn(len(objs))]
		got, err := PathProb(pi, p, o)
		if err != nil {
			return false
		}
		gi, err := enumerate.Enumerate(pi, 0)
		if err != nil {
			return false
		}
		want := gi.ProbWhere(func(s *model.Instance) bool { return p.Matches(s.Graph(), o) })
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(20250705))}); err != nil {
		t.Fatal(err)
	}
}

// TestConditionalQueriesFigure2: conditional existence probabilities on
// the paper's DAG instance match the enumeration oracle — the BN analogue
// of the selection operator's Definition 5.6 renormalization.
func TestConditionalQueriesFigure2(t *testing.T) {
	pi := fixtures.Figure2()
	net, err := Compile(pi)
	if err != nil {
		t.Fatal(err)
	}
	gi, err := enumerate.Enumerate(pi, 0)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		o      string
		exists []string
		absent []string
	}{
		{"A1", []string{"B1"}, nil},
		{"A1", []string{"B2"}, nil},
		{"A1", nil, []string{"B1"}},
		{"I1", []string{"A1", "A2"}, nil},
		{"T1", []string{"B1"}, []string{"A2"}},
	}
	for _, c := range cases {
		ev := Evidence{Exists: c.exists, Absent: c.absent}
		got, err := net.ProbExistsGiven(c.o, ev)
		if err != nil {
			t.Fatalf("ProbExistsGiven(%s | %v): %v", c.o, ev, err)
		}
		holds := func(s *model.Instance) bool {
			for _, e := range c.exists {
				if !s.HasObject(e) {
					return false
				}
			}
			for _, a := range c.absent {
				if s.HasObject(a) {
					return false
				}
			}
			return true
		}
		pEv := gi.ProbWhere(holds)
		pBoth := gi.ProbWhere(func(s *model.Instance) bool { return holds(s) && s.HasObject(c.o) })
		want := pBoth / pEv
		if !approx(got, want) {
			t.Errorf("P(%s | %v) = %v, oracle %v", c.o, ev, got, want)
		}
		// ProbEvidence agrees with the oracle too.
		gotEv, err := net.ProbEvidence(ev)
		if err != nil {
			t.Fatal(err)
		}
		if !approx(gotEv, pEv) {
			t.Errorf("P(%v) = %v, oracle %v", ev, gotEv, pEv)
		}
	}
}

func TestConditionalQueryErrors(t *testing.T) {
	pi := fixtures.Figure2()
	net, err := Compile(pi)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.ProbExistsGiven("A1", Evidence{Exists: []string{"nope"}}); err == nil {
		t.Error("unknown evidence object accepted")
	}
	if _, err := net.MarginalGiven("nope", Evidence{}); err == nil {
		t.Error("unknown query object accepted")
	}
	// Impossible evidence: the root's card forces ≥2 books, so all three
	// absent is contradictory... B1,B2 absent forces {B2,B3}∌B1... actually
	// {B3} alone is impossible (card min 2): B1 and B2 both absent has
	// probability zero.
	if _, err := net.ProbExistsGiven("A3", Evidence{Absent: []string{"B1", "B2"}}); err == nil {
		t.Error("zero-probability evidence accepted")
	}
}

// Package bayes is the Bayesian-network substrate the PXML paper leans on
// in Section 6 ("there is a mapping between a probabilistic instance and a
// Bayesian network ... inference in Bayesian networks has been studied
// extensively"): discrete variables, factors, and exact inference by
// variable elimination (bucket elimination, Dechter [8]). The Compile
// function realizes the paper's mapping — one variable per object whose
// states are the object's possible child sets (or leaf values) plus an
// "absent" state — and PathProb extends it with deterministic reachability
// variables so that probabilistic point queries are answered exactly on
// DAG-structured instances, where the Section 6 tree algorithms do not
// apply.
package bayes

import (
	"context"
	"fmt"
	"math"
	"sort"

	"pxml/internal/govern"
)

// Factor is a nonnegative function over a set of discrete variables,
// identified by integer ids. Values are stored row-major with the first
// variable varying slowest.
type Factor struct {
	vars []int
	card []int
	vals []float64
}

// NewFactor creates a zero factor over the given variables (ids must be
// distinct) with the given cardinalities.
func NewFactor(vars []int, card []int) *Factor {
	if len(vars) != len(card) {
		panic("bayes: vars/card length mismatch")
	}
	size := 1
	for _, c := range card {
		if c <= 0 {
			panic("bayes: nonpositive cardinality")
		}
		if size > MaxFactorEntries/c {
			// Refuse rather than overflow int and make() a garbage size.
			// Governed paths pre-check with cellsOf and never reach this.
			panic(fmt.Sprintf("bayes: factor over %d vars exceeds %d entries", len(card), MaxFactorEntries))
		}
		size *= c
	}
	return &Factor{
		vars: append([]int(nil), vars...),
		card: append([]int(nil), card...),
		vals: make([]float64, size),
	}
}

// Vars returns the factor's variable ids.
func (f *Factor) Vars() []int { return f.vars }

// Size returns the number of table entries.
func (f *Factor) Size() int { return len(f.vals) }

// index converts an assignment (parallel to f.vars) to a flat index.
func (f *Factor) index(assign []int) int {
	idx := 0
	for i, v := range assign {
		idx = idx*f.card[i] + v
	}
	return idx
}

// Set assigns the value at the given per-variable assignment.
func (f *Factor) Set(assign []int, v float64) { f.vals[f.index(assign)] = v }

// At reads the value at the given per-variable assignment.
func (f *Factor) At(assign []int) float64 { return f.vals[f.index(assign)] }

// EachAssignment invokes fn for every assignment of the factor's variables.
// The slice passed to fn is reused between calls.
func (f *Factor) EachAssignment(fn func(assign []int, v float64)) {
	assign := make([]int, len(f.vars))
	for i := range f.vals {
		fn(assign, f.vals[i])
		// Increment the mixed-radix counter.
		for j := len(assign) - 1; j >= 0; j-- {
			assign[j]++
			if assign[j] < f.card[j] {
				break
			}
			assign[j] = 0
		}
	}
}

// Multiply returns the product factor over the union of the variables.
func Multiply(a, b *Factor) *Factor {
	pos := make(map[int]int, len(a.vars)+len(b.vars))
	var vars []int
	var card []int
	for i, v := range a.vars {
		pos[v] = len(vars)
		vars = append(vars, v)
		card = append(card, a.card[i])
	}
	for i, v := range b.vars {
		if _, ok := pos[v]; !ok {
			pos[v] = len(vars)
			vars = append(vars, v)
			card = append(card, b.card[i])
		}
	}
	out := NewFactor(vars, card)
	aIdx := make([]int, len(a.vars))
	bIdx := make([]int, len(b.vars))
	for i, v := range a.vars {
		aIdx[i] = pos[v]
		_ = i
	}
	for i, v := range b.vars {
		bIdx[i] = pos[v]
	}
	assign := make([]int, len(vars))
	aAssign := make([]int, len(a.vars))
	bAssign := make([]int, len(b.vars))
	total := len(out.vals)
	for flat := 0; flat < total; flat++ {
		// Decode flat into assign.
		rem := flat
		for i := len(vars) - 1; i >= 0; i-- {
			assign[i] = rem % card[i]
			rem /= card[i]
		}
		for i := range a.vars {
			aAssign[i] = assign[aIdx[i]]
		}
		for i := range b.vars {
			bAssign[i] = assign[bIdx[i]]
		}
		out.vals[flat] = a.At(aAssign) * b.At(bAssign)
	}
	return out
}

// SumOut returns the factor with variable v marginalized away. Summing out
// a variable the factor does not mention returns a copy.
func (f *Factor) SumOut(v int) *Factor {
	pos := -1
	for i, fv := range f.vars {
		if fv == v {
			pos = i
			break
		}
	}
	if pos == -1 {
		c := NewFactor(f.vars, f.card)
		copy(c.vals, f.vals)
		return c
	}
	var vars []int
	var card []int
	for i, fv := range f.vars {
		if i != pos {
			vars = append(vars, fv)
			card = append(card, f.card[i])
		}
	}
	out := NewFactor(vars, card)
	assign := make([]int, len(f.vars))
	reduced := make([]int, len(vars))
	f.EachAssignment(func(a []int, val float64) {
		copy(assign, a)
		k := 0
		for i := range assign {
			if i != pos {
				reduced[k] = assign[i]
				k++
			}
		}
		out.vals[out.index(reduced)] += val
	})
	return out
}

// Reduce returns the factor restricted to variable v taking state s: rows
// inconsistent with the evidence are dropped (the variable is removed).
func (f *Factor) Reduce(v, s int) *Factor {
	pos := -1
	for i, fv := range f.vars {
		if fv == v {
			pos = i
			break
		}
	}
	if pos == -1 {
		c := NewFactor(f.vars, f.card)
		copy(c.vals, f.vals)
		return c
	}
	var vars []int
	var card []int
	for i, fv := range f.vars {
		if i != pos {
			vars = append(vars, fv)
			card = append(card, f.card[i])
		}
	}
	out := NewFactor(vars, card)
	reduced := make([]int, len(vars))
	f.EachAssignment(func(a []int, val float64) {
		if a[pos] != s {
			return
		}
		k := 0
		for i := range a {
			if i != pos {
				reduced[k] = a[i]
				k++
			}
		}
		out.vals[out.index(reduced)] = val
	})
	return out
}

// Scalar returns the value of a zero-variable factor.
func (f *Factor) Scalar() (float64, error) {
	if len(f.vars) != 0 {
		return 0, fmt.Errorf("bayes: factor over %v is not scalar", f.vars)
	}
	return f.vals[0], nil
}

// MaxFactorEntries is the hard cap on any factor table built during
// compilation or elimination, governed or not. It bounds a single
// allocation to 32 MiB of float64s regardless of configured budgets.
const MaxFactorEntries = 1 << 22

// maxFactorSize is the historical internal name for the same cap.
const maxFactorSize = MaxFactorEntries

// cellsOf returns the table size for the given cardinalities as a
// float64, so width-bomb products that overflow int64 stay comparable.
func cellsOf(card []int) float64 {
	p := 1.0
	for _, c := range card {
		p *= float64(c)
	}
	return p
}

// productCells returns the table size Multiply(a, b) would allocate.
func productCells(a, b *Factor) float64 {
	cells := cellsOf(a.card)
	seen := make(map[int]bool, len(a.vars))
	for _, v := range a.vars {
		seen[v] = true
	}
	for i, v := range b.vars {
		if !seen[v] {
			cells *= float64(b.card[i])
		}
	}
	return cells
}

// checkedMultiply charges the governor for the product table and refuses
// it before allocation when it exceeds the hard cap or the byte budget.
func checkedMultiply(g *govern.Governor, a, b *Factor) (*Factor, error) {
	cells := productCells(a, b)
	if cells > MaxFactorEntries {
		return nil, fmt.Errorf("%w: intermediate factor needs %.4g entries (cap %d)", govern.ErrIntractable, cells, MaxFactorEntries)
	}
	if err := g.Alloc(int64(cells) * 8); err != nil {
		return nil, err
	}
	if err := g.Step(int64(cells)); err != nil {
		return nil, err
	}
	return Multiply(a, b), nil
}

// checkedNewFactor refuses an oversized factor table before allocating
// it and charges the governor for the table it admits. CPT construction
// and the path-reachability augmentation build factors through this so
// a width-bomb fails with a typed error instead of an OOM.
func checkedNewFactor(g *govern.Governor, vars []int, card []int) (*Factor, error) {
	cells := cellsOf(card)
	if cells > MaxFactorEntries {
		return nil, fmt.Errorf("%w: factor over %d variables needs %.4g entries (cap %d)", govern.ErrIntractable, len(card), cells, MaxFactorEntries)
	}
	if err := g.Alloc(int64(cells) * 8); err != nil {
		return nil, err
	}
	if err := g.Step(int64(cells)); err != nil {
		return nil, err
	}
	return NewFactor(vars, card), nil
}

// EliminateAll multiplies the factors and sums out every variable in keep's
// complement, returning the joint factor over keep (nil keep = eliminate
// everything, yielding a scalar factor). Elimination order is min-degree
// greedy over the factor graph.
func EliminateAll(factors []*Factor, keep map[int]bool) (*Factor, error) {
	return EliminateAllCtx(context.Background(), factors, keep)
}

// EliminateAllCtx is EliminateAll under a context-carried resource
// governor: every intermediate product is charged against the query's
// step and byte budgets and size-checked BEFORE its table is allocated,
// and cancellation is honoured between bucket multiplications, so an
// abandoned query stops within one factor product instead of running
// the elimination to completion.
func EliminateAllCtx(ctx context.Context, factors []*Factor, keep map[int]bool) (*Factor, error) {
	g := govern.From(ctx)
	work := append([]*Factor(nil), factors...)
	// Collect variables to eliminate.
	varCard := map[int]int{}
	for _, f := range work {
		for i, v := range f.vars {
			varCard[v] = f.card[i]
		}
	}
	var elim []int
	for v := range varCard {
		if keep == nil || !keep[v] {
			elim = append(elim, v)
		}
	}
	sort.Ints(elim)
	for len(elim) > 0 {
		if err := g.Err(); err != nil {
			return nil, err
		}
		// Min-degree: pick the variable whose bucket product is smallest.
		best, bestCost := -1, math.MaxFloat64
		for _, v := range elim {
			cost := bucketCost(work, v)
			if cost < bestCost {
				best, bestCost = v, cost
			}
		}
		v := best
		// Remove v from elim.
		for i, e := range elim {
			if e == v {
				elim = append(elim[:i], elim[i+1:]...)
				break
			}
		}
		// Multiply the bucket and sum out v.
		var bucket *Factor
		var rest []*Factor
		for _, f := range work {
			if mentions(f, v) {
				if bucket == nil {
					bucket = f
				} else {
					var err error
					if bucket, err = checkedMultiply(g, bucket, f); err != nil {
						return nil, err
					}
				}
			} else {
				rest = append(rest, f)
			}
		}
		if bucket == nil {
			continue
		}
		work = append(rest, bucket.SumOut(v))
	}
	// Multiply the remainder.
	out := NewFactor(nil, nil)
	out.vals[0] = 1
	for _, f := range work {
		var err error
		if out, err = checkedMultiply(g, out, f); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func mentions(f *Factor, v int) bool {
	for _, fv := range f.vars {
		if fv == v {
			return true
		}
	}
	return false
}

// bucketCost estimates the table size produced by eliminating v.
func bucketCost(work []*Factor, v int) float64 {
	seen := map[int]int{}
	for _, f := range work {
		if !mentions(f, v) {
			continue
		}
		for i, fv := range f.vars {
			seen[fv] = f.card[i]
		}
	}
	if len(seen) == 0 {
		return math.MaxFloat64
	}
	cost := 1.0
	for fv, c := range seen {
		if fv == v {
			continue
		}
		cost *= float64(c)
	}
	return cost
}

package gen

import (
	"math/rand"
	"testing"

	"pxml/internal/enumerate"
	"pxml/internal/query"
)

func TestNumObjects(t *testing.T) {
	cases := []struct{ d, b, want int }{
		{1, 2, 3},
		{2, 2, 7},
		{3, 2, 15},
		{2, 3, 13},
		{6, 8, 299593}, // the paper's largest configuration
		{3, 1, 4},
	}
	for _, c := range cases {
		if got := NumObjects(c.d, c.b); got != c.want {
			t.Errorf("NumObjects(%d,%d) = %d, want %d", c.d, c.b, got, c.want)
		}
	}
}

func TestGenerateShape(t *testing.T) {
	for _, lab := range []Labeling{SL, FR} {
		in, err := Generate(Config{Depth: 3, Branch: 3, Labeling: lab, Seed: 7, LeafDomainSize: 2})
		if err != nil {
			t.Fatal(err)
		}
		pi := in.PI
		if got, want := pi.NumObjects(), NumObjects(3, 3); got != want {
			t.Errorf("%s objects = %d, want %d", lab, got, want)
		}
		if !pi.IsTree() {
			t.Errorf("%s instance is not a tree", lab)
		}
		if err := pi.ValidateLite(); err != nil {
			t.Errorf("%s invalid: %v", lab, err)
		}
		// Every non-leaf OPF has 2^b entries (no cardinality constraint).
		st := pi.ComputeStats()
		nonLeaves := NumObjects(2, 3)
		if st.OPFEntries != nonLeaves*8 {
			t.Errorf("%s OPF entries = %d, want %d", lab, st.OPFEntries, nonLeaves*8)
		}
		if st.Depth != 3 {
			t.Errorf("%s depth = %d", lab, st.Depth)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Depth: 2, Branch: 2, Labeling: FR, Seed: 42, LeafDomainSize: 2}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.PI.ComputeStats() != b.PI.ComputeStats() {
		t.Error("generation not deterministic")
	}
	// Same OPF probabilities on the root.
	for _, e := range a.PI.OPF("n0").Entries() {
		if b.PI.OPF("n0").Prob(e.Set) != e.Prob {
			t.Fatalf("root OPF differs at %v", e.Set)
		}
	}
}

func TestGenerateSLSharesLabels(t *testing.T) {
	in, err := Generate(Config{Depth: 2, Branch: 4, Labeling: SL, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range in.PI.Objects() {
		if in.PI.IsLeaf(o) {
			continue
		}
		if got := len(in.PI.Labels(o)); got != 1 {
			t.Errorf("SL parent %s has %d labels", o, got)
		}
	}
}

func TestGenerateSmallCoherent(t *testing.T) {
	// A tiny generated instance must induce a coherent distribution.
	in, err := Generate(Config{Depth: 2, Branch: 2, Labeling: FR, Seed: 11, LeafDomainSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	gi, err := enumerate.Enumerate(in.PI, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m := gi.TotalMass(); m < 1-1e-9 || m > 1+1e-9 {
		t.Errorf("mass = %v", m)
	}
}

func TestRandomQuerySatisfiable(t *testing.T) {
	in, err := Generate(Config{Depth: 3, Branch: 2, Labeling: FR, Seed: 5, LeafDomainSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		p, ok := in.RandomQuery(r)
		if !ok {
			t.Fatal("no satisfiable query found")
		}
		if p.Len() != 3 {
			t.Errorf("query length = %d", p.Len())
		}
		if len(p.Targets(in.PI.WeakInstance.Graph())) == 0 {
			t.Errorf("unsatisfiable query accepted: %s", p)
		}
		// The existence probability of an accepted query is positive
		// (all generated local probabilities are positive).
		e, err := query.ExistsQuery(in.PI, p)
		if err != nil {
			t.Fatal(err)
		}
		if e <= 0 {
			t.Errorf("accepted query %s has zero probability", p)
		}
	}
}

func TestRandomSelection(t *testing.T) {
	in, err := Generate(Config{Depth: 2, Branch: 3, Labeling: SL, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(2))
	p, o, ok := in.RandomSelection(r)
	if !ok {
		t.Fatal("no selection query found")
	}
	if !p.Matches(in.PI.WeakInstance.Graph(), o) {
		t.Errorf("selected object %s does not satisfy %s", o, p)
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Config{Depth: 0, Branch: 2, Labeling: SL}); err == nil {
		t.Error("zero depth accepted")
	}
	if _, err := Generate(Config{Depth: 2, Branch: 0, Labeling: SL}); err == nil {
		t.Error("zero branch accepted")
	}
	if _, err := Generate(Config{Depth: 2, Branch: 20, Labeling: SL}); err == nil {
		t.Error("oversized branch accepted")
	}
	if _, err := Generate(Config{Depth: 2, Branch: 2, Labeling: "XX"}); err == nil {
		t.Error("unknown labeling accepted")
	}
	if _, err := Generate(Config{Depth: 2, Branch: 2, Labeling: SL, LeafDomainSize: -1}); err == nil {
		t.Error("negative leaf domain accepted")
	}
}

func TestGenerateUntypedLeaves(t *testing.T) {
	in, err := Generate(Config{Depth: 2, Branch: 2, Labeling: SL, Seed: 1, LeafDomainSize: 0})
	if err != nil {
		t.Fatal(err)
	}
	st := in.PI.ComputeStats()
	if st.VPFEntries != 0 {
		t.Errorf("untyped instance has %d VPF entries", st.VPFEntries)
	}
	if err := in.PI.ValidateLite(); err != nil {
		t.Fatal(err)
	}
}

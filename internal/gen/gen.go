// Package gen implements the experimental workload generator of Section
// 7.1 of the PXML paper: probabilistic instances shaped as balanced trees
// with a fixed branching factor, no cardinality constraints (so each
// non-leaf object's local interpretation has 2^b entries), random local
// probability tables, and two edge-labeling schemes — SL ("same label":
// all children of a parent share one label) and FR ("fully random": each
// child gets an independently random label). It also generates the random
// path-expression queries the experiments use: length equal to the tree
// depth, labels drawn from the labels actually used at each depth, and
// accepted only when at least one object satisfies the expression.
package gen

import (
	"fmt"
	"math/rand"
	"strconv"

	"pxml/internal/core"
	"pxml/internal/model"
	"pxml/internal/pathexpr"
	"pxml/internal/prob"
	"pxml/internal/sets"
)

// Labeling selects the edge-labeling scheme of Section 7.1.
type Labeling string

const (
	// SL gives all children of the same parent the same label.
	SL Labeling = "SL"
	// FR assigns each child an independently random label.
	FR Labeling = "FR"
)

// Config parameterizes Generate.
type Config struct {
	// Depth is the number of levels below the root (the paper sweeps 3–9).
	Depth int
	// Branch is the number of children of every non-leaf (the paper
	// sweeps 2–8). Branch ≤ 16 keeps 2^b OPFs materializable.
	Branch int
	// Labeling is SL or FR.
	Labeling Labeling
	// LabelsPerLevel is the size of the label alphabet at each level
	// (default 2, as in the paper's depth-2 example with {a,b} and {c,d}).
	LabelsPerLevel int
	// LeafDomainSize is the size of the leaf value domain (default 2;
	// 0 generates untyped leaves).
	LeafDomainSize int
	// Seed drives the deterministic random source.
	Seed int64
}

func (c Config) validate() error {
	if c.Depth < 1 {
		return fmt.Errorf("gen: depth %d < 1", c.Depth)
	}
	if c.Branch < 1 || c.Branch > 16 {
		return fmt.Errorf("gen: branch %d outside [1,16]", c.Branch)
	}
	if c.Labeling != SL && c.Labeling != FR {
		return fmt.Errorf("gen: unknown labeling %q", c.Labeling)
	}
	return nil
}

// NumObjects returns the number of objects a (Depth, Branch) instance has:
// (b^(d+1) − 1)/(b − 1) for b > 1, d+1 for b = 1.
func NumObjects(depth, branch int) int {
	if branch == 1 {
		return depth + 1
	}
	n, p := 0, 1
	for i := 0; i <= depth; i++ {
		n += p
		p *= branch
	}
	return n
}

// Instance is a generated workload instance together with the metadata the
// query generator needs.
type Instance struct {
	PI *core.ProbInstance
	// LevelLabels[i] lists the labels used by edges entering level i+1
	// (the paper keeps "track of labels used by edges of objects in each
	// depth" for query generation).
	LevelLabels [][]model.Label
	Config      Config
}

// Generate builds a Section 7.1 instance. The construction is
// deterministic for a given Config (including Seed).
func Generate(cfg Config) (*Instance, error) {
	if cfg.LabelsPerLevel <= 0 {
		cfg.LabelsPerLevel = 2
	}
	if cfg.LeafDomainSize < 0 {
		return nil, fmt.Errorf("gen: negative leaf domain")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	pi := core.NewProbInstance("n0")

	leafType := "leaftype"
	var leafDomain []model.Value
	if cfg.LeafDomainSize > 0 {
		leafDomain = make([]model.Value, cfg.LeafDomainSize)
		for i := range leafDomain {
			leafDomain[i] = "w" + strconv.Itoa(i)
		}
		if err := pi.RegisterType(model.NewType(leafType, leafDomain...)); err != nil {
			return nil, err
		}
	}

	// Per-level label alphabets: L<level>x<k>.
	alphabet := make([][]model.Label, cfg.Depth)
	for lvl := range alphabet {
		ls := make([]model.Label, cfg.LabelsPerLevel)
		for k := range ls {
			ls[k] = "L" + strconv.Itoa(lvl) + "x" + strconv.Itoa(k)
		}
		alphabet[lvl] = ls
	}

	counter := 0
	level := []model.ObjectID{"n0"}
	// subsetBuf reuses per-mask child id slices while building OPFs.
	for lvl := 0; lvl < cfg.Depth; lvl++ {
		next := make([]model.ObjectID, 0, len(level)*cfg.Branch)
		for _, o := range level {
			children := make([]model.ObjectID, cfg.Branch)
			for i := range children {
				counter++
				children[i] = "n" + strconv.Itoa(counter)
			}
			next = append(next, children...)
			// Label assignment.
			perLabel := make(map[model.Label][]model.ObjectID)
			switch cfg.Labeling {
			case SL:
				l := alphabet[lvl][r.Intn(len(alphabet[lvl]))]
				perLabel[l] = children
			case FR:
				for _, c := range children {
					l := alphabet[lvl][r.Intn(len(alphabet[lvl]))]
					perLabel[l] = append(perLabel[l], c)
				}
			}
			for l, cs := range perLabel {
				pi.SetLCh(o, l, cs...)
				// "We assume that there is no cardinality constraint":
				// card spans [0, count] (the WeakInstance default, set
				// explicitly for serialization fidelity).
				pi.SetCard(o, l, 0, len(cs))
			}
			// OPF over all 2^b child subsets with random probabilities.
			pi.SetOPF(o, randomOPF(r, children))
		}
		level = next
	}
	// Leaves.
	if cfg.LeafDomainSize > 0 {
		for _, o := range level {
			if err := pi.SetLeafType(o, leafType); err != nil {
				return nil, err
			}
			pi.SetVPF(o, randomVPF(r, leafDomain))
		}
	}
	// Level labels actually used (FR may skip some alphabet entries).
	used := make([][]model.Label, cfg.Depth)
	g := pi.WeakInstance.Graph()
	lv := []model.ObjectID{"n0"}
	for lvl := 0; lvl < cfg.Depth; lvl++ {
		seen := map[model.Label]bool{}
		var nxt []model.ObjectID
		for _, o := range lv {
			for _, l := range pi.Labels(o) {
				seen[l] = true
			}
			nxt = append(nxt, g.Children(o)...)
		}
		for _, l := range alphabet[lvl] {
			if seen[l] {
				used[lvl] = append(used[lvl], l)
			}
		}
		lv = nxt
	}
	return &Instance{PI: pi, LevelLabels: used, Config: cfg}, nil
}

// randomOPF builds a random distribution over all subsets of children.
func randomOPF(r *rand.Rand, children []model.ObjectID) *prob.OPF {
	n := len(children)
	w := prob.NewOPF()
	weights := make([]float64, 1<<n)
	total := 0.0
	for mask := range weights {
		weights[mask] = r.Float64() + 1e-6
		total += weights[mask]
	}
	for mask := 0; mask < 1<<n; mask++ {
		// children are generated in ascending id order but their string
		// sort order differs (n10 < n2), so build via NewSet.
		ids := make([]string, 0, n)
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				ids = append(ids, children[i])
			}
		}
		w.Put(sets.NewSet(ids...), weights[mask]/total)
	}
	return w
}

func randomVPF(r *rand.Rand, domain []model.Value) *prob.VPF {
	v := prob.NewVPF()
	total := 0.0
	weights := make([]float64, len(domain))
	for i := range weights {
		weights[i] = r.Float64() + 1e-6
		total += weights[i]
	}
	for i, d := range domain {
		v.Put(d, weights[i]/total)
	}
	return v
}

// BombConfig parameterizes WidthBomb.
type BombConfig struct {
	// Width is the number of shared leaves per arm; each arm's OPF
	// enumerates all 2^Width child subsets. Capped at 16 like Branch.
	Width int
	// Parents is the number of arms sharing the leaves. The compiled
	// BN's leaf CPTs are exponential in this: ≈ 2·(2^Width+1)^Parents
	// cells each.
	Parents int
	// Seed drives the deterministic random source.
	Seed int64
}

// WidthBomb builds an adversarial diamond DAG: root → Parents arms, each
// arm holding a full 2^Width OPF over the SAME Width leaves. The weak
// graph is small (2 + Parents + Width objects) and the instance encodes
// and round-trips like any other, but compiling its Bayesian network
// would materialize leaf CPTs of ≈ 2·(2^Width+1)^Parents cells — the
// workload the resource governor exists to refuse. Deterministic for a
// given config.
func WidthBomb(cfg BombConfig) (*core.ProbInstance, error) {
	if cfg.Width < 1 || cfg.Width > 16 {
		return nil, fmt.Errorf("gen: bomb width %d outside [1,16]", cfg.Width)
	}
	if cfg.Parents < 1 {
		return nil, fmt.Errorf("gen: bomb parents %d < 1", cfg.Parents)
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	root := model.ObjectID("bomb")
	pi := core.NewProbInstance(root)
	arms := make([]model.ObjectID, cfg.Parents)
	for i := range arms {
		arms[i] = "arm" + strconv.Itoa(i)
	}
	leaves := make([]model.ObjectID, cfg.Width)
	for j := range leaves {
		leaves[j] = "leaf" + strconv.Itoa(j)
	}
	pi.SetLCh(root, "arm", arms...)
	pi.SetCard(root, "arm", 0, len(arms))
	// The root deterministically keeps every arm, so no arm's blowup can
	// be pruned away as improbable.
	all := prob.NewOPF()
	all.Put(sets.NewSet(arms...), 1)
	pi.SetOPF(root, all)
	for _, a := range arms {
		pi.SetLCh(a, "leaf", leaves...)
		pi.SetCard(a, "leaf", 0, len(leaves))
		pi.SetOPF(a, randomOPF(r, leaves))
	}
	return pi, nil
}

// RandomQuery generates a random path expression of length Depth whose
// labels are drawn from the per-level label sets, accepted only if some
// object satisfies it (the Section 7.1 acceptance rule: queries "returned
// results not only consisting of a root"). The boolean result is false when
// no satisfiable query was found within the attempt budget.
func (in *Instance) RandomQuery(r *rand.Rand) (pathexpr.Path, bool) {
	g := in.PI.WeakInstance.Graph()
	const attempts = 64
	for a := 0; a < attempts; a++ {
		p := pathexpr.Path{Root: in.PI.Root()}
		for lvl := 0; lvl < in.Config.Depth; lvl++ {
			ls := in.LevelLabels[lvl]
			if len(ls) == 0 {
				return pathexpr.Path{}, false
			}
			p.Labels = append(p.Labels, ls[r.Intn(len(ls))])
		}
		if len(p.Targets(g)) > 0 {
			return p, true
		}
	}
	return pathexpr.Path{}, false
}

// RandomSelection generates a selection query per Section 7.1: a path
// expression p plus an object chosen uniformly from the objects satisfying
// p ("the selection queries used have the form p = o where o is an object
// id selected randomly from SelObj").
func (in *Instance) RandomSelection(r *rand.Rand) (pathexpr.Path, model.ObjectID, bool) {
	p, ok := in.RandomQuery(r)
	if !ok {
		return pathexpr.Path{}, "", false
	}
	targets := p.Targets(in.PI.WeakInstance.Graph())
	return p, targets[r.Intn(len(targets))], true
}

package gen

import (
	"bytes"
	"testing"

	"pxml/internal/codec"
	"pxml/internal/govern"
)

// TestWidthBombShape: the bomb is a small, valid, serializable DAG whose
// predicted inference cost is astronomically larger than its encoding —
// exactly the gap the resource governor has to close.
func TestWidthBombShape(t *testing.T) {
	pi, err := WidthBomb(BombConfig{Width: 8, Parents: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := pi.Validate(); err != nil {
		t.Fatalf("bomb must be a valid instance: %v", err)
	}
	if pi.IsTree() {
		t.Fatal("bomb must be a DAG (shared leaves), not a tree")
	}
	if got, want := pi.NumObjects(), 1+4+8; got != want {
		t.Fatalf("objects = %d, want %d", got, want)
	}

	prof := govern.Measure(pi)
	// Each arm has 2^8 = 256 OPF entries; each leaf's CPT is
	// 2·(256+1)^4 cells.
	if prof.MaxOPFEntries != 256 {
		t.Fatalf("MaxOPFEntries = %d, want 256", prof.MaxOPFEntries)
	}
	want := 2.0 * 257 * 257 * 257 * 257
	if prof.MaxCPTCells != want {
		t.Fatalf("MaxCPTCells = %g, want %g", prof.MaxCPTCells, want)
	}

	// Round-trips through the text codec, so it can be uploaded to a
	// server over the normal API.
	var buf bytes.Buffer
	if err := codec.EncodeText(&buf, pi); err != nil {
		t.Fatal(err)
	}
	back, err := codec.DecodeText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumObjects() != pi.NumObjects() {
		t.Fatalf("round trip lost objects: %d != %d", back.NumObjects(), pi.NumObjects())
	}
}

// TestWidthBombDeterministic: same config, same instance.
func TestWidthBombDeterministic(t *testing.T) {
	enc := func() string {
		pi, err := WidthBomb(BombConfig{Width: 5, Parents: 3, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := codec.EncodeText(&buf, pi); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if enc() != enc() {
		t.Fatal("WidthBomb not deterministic for a fixed config")
	}
}

func TestWidthBombErrors(t *testing.T) {
	if _, err := WidthBomb(BombConfig{Width: 0, Parents: 2}); err == nil {
		t.Fatal("want error for width 0")
	}
	if _, err := WidthBomb(BombConfig{Width: 17, Parents: 2}); err == nil {
		t.Fatal("want error for width 17")
	}
	if _, err := WidthBomb(BombConfig{Width: 3, Parents: 0}); err == nil {
		t.Fatal("want error for parents 0")
	}
}

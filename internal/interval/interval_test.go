package interval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pxml/internal/core"
	"pxml/internal/fixtures"
	"pxml/internal/model"
	"pxml/internal/pathexpr"
	"pxml/internal/prob"
	"pxml/internal/query"
	"pxml/internal/sets"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// pointOPF builds a point OPF from a map whose keys are "" (the empty set)
// or single member ids.
func pointOPF(m map[string]float64) *prob.OPF {
	w := prob.NewOPF()
	for k, p := range m {
		if k == "" {
			w.Put(sets.NewSet(), p)
		} else {
			w.Put(sets.NewSet(k), p)
		}
	}
	return w
}

func coreType() model.Type { return model.NewType("bit", "0", "1") }

func TestBoundBasics(t *testing.T) {
	if err := (Bound{0.2, 0.8}).Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Bound{{-0.1, 0.5}, {0.5, 1.2}, {0.7, 0.3}, {math.NaN(), 1}} {
		if err := bad.Validate(); err == nil {
			t.Errorf("bound %v accepted", bad)
		}
	}
	b := Bound{0.2, 0.5}.Mul(Bound{0.5, 0.8})
	if !approx(b.Lo, 0.1) || !approx(b.Hi, 0.4) {
		t.Errorf("Mul = %v", b)
	}
	if !Point(0.3).Contains(0.3) || Point(0.3).Contains(0.5) {
		t.Error("Contains misbehaves")
	}
	if (Bound{0.25, 0.75}).String() != "[0.25,0.75]" {
		t.Errorf("String = %q", Bound{0.25, 0.75}.String())
	}
}

// intervalOPF builds a small interval OPF with slack.
func intervalOPF() *OPF {
	w := NewOPF()
	w.Put(sets.NewSet(), Bound{0.1, 0.3})
	w.Put(sets.NewSet("a"), Bound{0.2, 0.6})
	w.Put(sets.NewSet("a", "b"), Bound{0.1, 0.5})
	return w
}

func TestOPFConsistency(t *testing.T) {
	if err := intervalOPF().Consistent(); err != nil {
		t.Fatal(err)
	}
	// Lower bounds exceed one.
	bad := NewOPF()
	bad.Put(sets.NewSet("a"), Bound{0.7, 0.8})
	bad.Put(sets.NewSet("b"), Bound{0.6, 0.9})
	if err := bad.Consistent(); err == nil {
		t.Error("over-committed lower bounds accepted")
	}
	// Upper bounds cannot reach one.
	low := NewOPF()
	low.Put(sets.NewSet("a"), Bound{0.1, 0.3})
	if err := low.Consistent(); err == nil {
		t.Error("unreachable total accepted")
	}
}

func TestTighten(t *testing.T) {
	w := NewOPF()
	w.Put(sets.NewSet("a"), Bound{0.0, 1.0})
	w.Put(sets.NewSet("b"), Bound{0.7, 0.8})
	tt, err := w.Tighten()
	if err != nil {
		t.Fatal(err)
	}
	// ω(a) = 1 − ω(b) ∈ [0.2, 0.3].
	got := tt.Bound(sets.NewSet("a"))
	if !approx(got.Lo, 0.2) || !approx(got.Hi, 0.3) {
		t.Errorf("tightened = %v", got)
	}
	// Idempotent.
	tt2, err := tt.Tighten()
	if err != nil {
		t.Fatal(err)
	}
	g2 := tt2.Bound(sets.NewSet("a"))
	if !approx(g2.Lo, got.Lo) || !approx(g2.Hi, got.Hi) {
		t.Error("tighten not idempotent")
	}
}

func TestExtremizeLinear(t *testing.T) {
	w := intervalOPF()
	// q = 1 for sets containing "a".
	b, err := w.ProbContains("a")
	if err != nil {
		t.Fatal(err)
	}
	// Max: ∅ at its minimum 0.1, the rest on a-sets: 0.9.
	if !approx(b.Hi, 0.9) {
		t.Errorf("hi = %v, want 0.9", b.Hi)
	}
	// Min: a-sets at lower bounds 0.2+0.1 = 0.3; ∅ absorbs at most 0.3, so
	// the remaining 0.4 must go to a-sets anyway: min = 0.7.
	if !approx(b.Lo, 0.7) {
		t.Errorf("lo = %v, want 0.7", b.Lo)
	}
}

func TestSampleWithinBounds(t *testing.T) {
	w := intervalOPF()
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		pt, err := w.Sample(r.Float64)
		if err != nil {
			t.Fatal(err)
		}
		if err := pt.Validate(); err != nil {
			t.Fatalf("sampled OPF invalid: %v", err)
		}
		tt, _ := w.Tighten()
		for _, e := range tt.Entries() {
			if !e.Bound.Contains(pt.Prob(e.Set)) {
				t.Fatalf("sample %v outside bound %v for %s", pt.Prob(e.Set), e.Bound, e.Set)
			}
		}
	}
}

// chainInstance builds a small interval instance over a two-level tree.
func chainInstance(t testing.TB) *Instance {
	t.Helper()
	w := core.NewWeakInstance("r")
	w.SetLCh("r", "a", "x")
	w.SetLCh("x", "b", "u")
	in := New(w)
	ow := NewOPF()
	ow.Put(sets.NewSet(), Bound{0.2, 0.5})
	ow.Put(sets.NewSet("x"), Bound{0.5, 0.8})
	in.SetOPF("r", ow)
	xw := NewOPF()
	xw.Put(sets.NewSet(), Bound{0.4, 0.4})
	xw.Put(sets.NewSet("u"), Bound{0.6, 0.6})
	in.SetOPF("x", xw)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	return in
}

func TestChainBound(t *testing.T) {
	in := chainInstance(t)
	b, err := ChainBound(in, []string{"r", "x", "u"})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(b.Lo, 0.5*0.6) || !approx(b.Hi, 0.8*0.6) {
		t.Errorf("chain bound = %v", b)
	}
	// Impossible chain.
	b, err = ChainBound(in, []string{"r", "u"})
	if err != nil || b.Hi != 0 {
		t.Errorf("impossible chain = %v err=%v", b, err)
	}
	if _, err := ChainBound(in, []string{"x"}); err == nil {
		t.Error("non-root chain accepted")
	}
}

func TestPointAndExistsBound(t *testing.T) {
	in := chainInstance(t)
	p := pathexpr.MustParse("r.a.b")
	b, err := PointBound(in, p, "u")
	if err != nil {
		t.Fatal(err)
	}
	if !approx(b.Lo, 0.3) || !approx(b.Hi, 0.48) {
		t.Errorf("point bound = %v", b)
	}
	e, err := ExistsBound(in, p)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(e.Lo, b.Lo) || !approx(e.Hi, b.Hi) {
		t.Errorf("exists bound = %v, want %v (single match)", e, b)
	}
	// No match.
	z, err := ExistsBound(in, pathexpr.MustParse("r.zz"))
	if err != nil || z.Hi != 0 {
		t.Errorf("no-match bound = %v err=%v", z, err)
	}
}

// TestFromPointCollapses: lifting a point instance yields degenerate
// intervals whose query bounds equal the point query answers.
func TestFromPointCollapses(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	pi := fixtures.RandomTree(r)
	in := FromPoint(pi)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	objs := pi.Objects()
	o := objs[r.Intn(len(objs))]
	// Build the root path of o.
	g := pi.WeakInstance.Graph()
	var labels []string
	cur := o
	for cur != pi.Root() {
		ps := g.Parents(cur)
		if len(ps) == 0 {
			break
		}
		l, _ := g.Label(ps[0], cur)
		labels = append([]string{l}, labels...)
		cur = ps[0]
	}
	p := pathexpr.Path{Root: pi.Root(), Labels: labels}
	want, err := query.PointQuery(pi, p, o)
	if err != nil {
		t.Fatal(err)
	}
	got, err := PointBound(in, p, o)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(got.Lo, want) || !approx(got.Hi, want) {
		t.Errorf("degenerate bound = %v, want point %v", got, want)
	}
}

// TestQuickSampledInstancesWithinBounds: every consistent point instance
// sampled from an interval instance produces query answers inside the
// computed bounds — the soundness half of tightness.
func TestQuickSampledInstancesWithinBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		base := fixtures.RandomTree(r)
		if base.NumObjects() > 14 {
			return true
		}
		// Widen each point OPF into an interval around it.
		in := New(base.Weak())
		for _, o := range base.SortedOPFObjects() {
			w := NewOPF()
			base.OPF(o).Each(func(c sets.Set, p float64) {
				lo := p * (0.5 + 0.5*r.Float64())
				hi := p + (1-p)*0.5*r.Float64()
				w.Put(c, Bound{Lo: lo, Hi: hi})
			})
			in.SetOPF(o, w)
		}
		for _, o := range base.SortedVPFObjects() {
			v := NewVPF()
			for _, e := range base.VPF(o).Entries() {
				v.Put(e.Value, Bound{Lo: e.Prob * 0.5, Hi: e.Prob + (1-e.Prob)*0.5})
			}
			in.SetVPF(o, v)
		}
		if in.Validate() != nil {
			return false
		}
		// A satisfiable path.
		objs := base.Objects()
		o := objs[r.Intn(len(objs))]
		g := base.WeakInstance.Graph()
		var labels []string
		cur := o
		for cur != base.Root() {
			ps := g.Parents(cur)
			if len(ps) == 0 {
				break
			}
			l, _ := g.Label(ps[0], cur)
			labels = append([]string{l}, labels...)
			cur = ps[0]
		}
		p := pathexpr.Path{Root: base.Root(), Labels: labels}
		pb, err := PointBound(in, p, o)
		if err != nil {
			return false
		}
		eb, err := ExistsBound(in, p)
		if err != nil {
			return false
		}
		for i := 0; i < 10; i++ {
			pt, err := in.SamplePoint(r.Float64)
			if err != nil {
				return false
			}
			if pt.ValidateLite() != nil {
				return false
			}
			pq, err := query.PointQuery(pt, p, o)
			if err != nil {
				return false
			}
			if !pb.Contains(pq) {
				return false
			}
			eq, err := query.ExistsQuery(pt, p)
			if err != nil {
				return false
			}
			if !eb.Contains(eq) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(20250705))}); err != nil {
		t.Fatal(err)
	}
}

// TestBoundsAreAchieved: the extremes of the chain bound are attained by
// concrete consistent point instances (the tightness half).
func TestBoundsAreAchieved(t *testing.T) {
	in := chainInstance(t)
	b, err := ChainBound(in, []string{"r", "x", "u"})
	if err != nil {
		t.Fatal(err)
	}
	// Construct the extreme point instances by hand.
	mk := func(px float64) *core.ProbInstance {
		pi := core.FromWeak(in.Weak())
		pi.SetOPF("r", pointOPF(map[string]float64{"": 1 - px, "x": px}))
		pi.SetOPF("x", pointOPF(map[string]float64{"": 0.4, "u": 0.6}))
		return pi
	}
	lo, err := query.ChainProb(mk(0.5), []string{"r", "x", "u"})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := query.ChainProb(mk(0.8), []string{"r", "x", "u"})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(lo, b.Lo) || !approx(hi, b.Hi) {
		t.Errorf("achieved %v..%v, bound %v", lo, hi, b)
	}
}

func TestValueExistsBound(t *testing.T) {
	w := core.NewWeakInstance("r")
	w.SetLCh("r", "a", "x")
	if err := w.RegisterType(coreType()); err != nil {
		t.Fatal(err)
	}
	if err := w.SetLeafType("x", "bit"); err != nil {
		t.Fatal(err)
	}
	in := New(w)
	ow := NewOPF()
	ow.Put(sets.NewSet(), Bound{0, 0.5})
	ow.Put(sets.NewSet("x"), Bound{0.5, 1})
	in.SetOPF("r", ow)
	v := NewVPF()
	v.Put("0", Bound{0.2, 0.6})
	v.Put("1", Bound{0.4, 0.8})
	in.SetVPF("x", v)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	b, err := ValueExistsBound(in, pathexpr.MustParse("r.a"), "1")
	if err != nil {
		t.Fatal(err)
	}
	// P = P(x) · P(val=1) ∈ [0.5·0.4, 1·0.8].
	if !approx(b.Lo, 0.2) || !approx(b.Hi, 0.8) {
		t.Errorf("value bound = %v", b)
	}
	// Unknown value has zero bound.
	z, err := ValueExistsBound(in, pathexpr.MustParse("r.a"), "9")
	if err != nil || z.Hi != 0 {
		t.Errorf("unknown value bound = %v", z)
	}
}

func TestQueriesRejectDAG(t *testing.T) {
	in := FromPoint(fixtures.Figure2())
	if _, err := PointBound(in, pathexpr.MustParse("R.book"), "B1"); err == nil {
		t.Error("DAG accepted by interval point query")
	}
}

// TestQuickTightenSound: tightening never excludes a distribution that the
// original bounds admit — samples drawn from the tightened OPF satisfy the
// original bounds and vice versa (the tightened polytope is the same).
func TestQuickTightenSound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := NewOPF()
		n := 2 + r.Intn(4)
		for i := 0; i < n; i++ {
			lo := r.Float64() * 0.4 / float64(n)
			hi := lo + r.Float64()*(1-lo)
			w.Put(sets.NewSet(string(rune('a'+i))), Bound{Lo: lo, Hi: hi})
		}
		if w.Consistent() != nil {
			return true // inconsistent draw: nothing to check
		}
		tt, err := w.Tighten()
		if err != nil {
			return false
		}
		// Tightened bounds are within the originals.
		for _, e := range tt.Entries() {
			orig := w.Bound(e.Set)
			if e.Bound.Lo < orig.Lo-1e-12 || e.Bound.Hi > orig.Hi+1e-12 {
				return false
			}
		}
		// Every sampled point from the original bounds respects the
		// tightened ones (they cut away only infeasible corners).
		for i := 0; i < 5; i++ {
			pt, err := w.Sample(r.Float64)
			if err != nil {
				return false
			}
			for _, e := range tt.Entries() {
				if !e.Bound.Contains(pt.Prob(e.Set)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(20250705))}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickExtremizeBoundsAchievable: the linear-extremization results are
// attained within the bound polytope — every sampled consistent point
// produces an objective value inside [min, max].
func TestQuickExtremizeBoundsAchievable(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := NewOPF()
		n := 2 + r.Intn(4)
		members := make([]string, n)
		for i := 0; i < n; i++ {
			members[i] = string(rune('a' + i))
			lo := r.Float64() * 0.5 / float64(n)
			hi := lo + r.Float64()*(1-lo)
			w.Put(sets.NewSet(members[i]), Bound{Lo: lo, Hi: hi})
		}
		if w.Consistent() != nil {
			return true
		}
		target := members[r.Intn(n)]
		b, err := w.ProbContains(target)
		if err != nil {
			return false
		}
		for i := 0; i < 8; i++ {
			pt, err := w.Sample(r.Float64)
			if err != nil {
				return false
			}
			v := pt.ProbContains(target)
			if v < b.Lo-1e-9 || v > b.Hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(20250705))}); err != nil {
		t.Fatal(err)
	}
}

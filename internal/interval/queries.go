package interval

import (
	"fmt"

	"pxml/internal/model"
	"pxml/internal/pathexpr"
	"pxml/internal/sets"
)

// ErrNotTree mirrors the point-instance fast paths: interval queries are
// implemented for tree-structured weak instance graphs.
var ErrNotTree = fmt.Errorf("interval: weak instance graph is not a tree")

// ChainBound returns the tight probability interval of a root-anchored
// object chain: the product of the per-edge P(child ∈ c(parent)) bounds.
// Each factor's extremes are achieved by independent choices of distinct
// objects' local functions, so the product interval is tight.
func ChainBound(in *Instance, chain []model.ObjectID) (Bound, error) {
	if len(chain) == 0 {
		return Bound{}, fmt.Errorf("interval: empty chain")
	}
	if chain[0] != in.weak.Root() {
		return Bound{}, fmt.Errorf("interval: chain must start at root %s", in.weak.Root())
	}
	out := Point(1)
	for i := 0; i+1 < len(chain); i++ {
		w := in.opf[chain[i]]
		if w == nil {
			return Point(0), nil
		}
		if _, ok := in.weak.LabelOf(chain[i], chain[i+1]); !ok {
			return Point(0), nil
		}
		b, err := w.ProbContains(chain[i+1])
		if err != nil {
			return Bound{}, err
		}
		out = out.Mul(b)
		if out.Hi == 0 {
			return out, nil
		}
	}
	return out, nil
}

// PointBound returns the tight interval of P(o ∈ p) on a tree.
func PointBound(in *Instance, p pathexpr.Path, o model.ObjectID) (Bound, error) {
	return epsilonBound(in, p, map[model.ObjectID]bool{o: true}, nil)
}

// ExistsBound returns the tight interval of P(∃o. o ∈ p) on a tree.
func ExistsBound(in *Instance, p pathexpr.Path) (Bound, error) {
	return epsilonBound(in, p, nil, nil)
}

// ValueExistsBound returns the interval of P(∃ leaf o ∈ p with val v).
func ValueExistsBound(in *Instance, p pathexpr.Path, v model.Value) (Bound, error) {
	success := func(o model.ObjectID) Bound {
		if w := in.vpf[o]; w != nil {
			return tightValueBound(w, v)
		}
		return Point(0)
	}
	return epsilonBound(in, p, nil, success)
}

// tightValueBound narrows the stored bound of one value using the Σ = 1
// constraint over the leaf's domain (the VPF analogue of OPF.Tighten).
func tightValueBound(w *VPF, v model.Value) Bound {
	b, ok := w.bounds[v]
	if !ok {
		return Point(0)
	}
	sumLoOthers, sumHiOthers := 0.0, 0.0
	for u, ub := range w.bounds {
		if u == v {
			continue
		}
		sumLoOthers += ub.Lo
		sumHiOthers += ub.Hi
	}
	lo := b.Lo
	if 1-sumHiOthers > lo {
		lo = 1 - sumHiOthers
	}
	hi := b.Hi
	if 1-sumLoOthers < hi {
		hi = 1 - sumLoOthers
	}
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	if hi < lo {
		hi = lo
	}
	return Bound{Lo: lo, Hi: hi}
}

// epsilonBound is the interval form of the Section 6 ε recursion. For each
// kept object the failure probability fail = Σ_c ω(c)·Π_{j∈c∩kept}(1−ε_j)
// is extremized over ω with children's ε already at their own extremes —
// valid because distinct objects' local functions vary independently, and
// fail is monotone decreasing in every child ε. On a tree the resulting
// interval is tight.
func epsilonBound(in *Instance, p pathexpr.Path, targets map[model.ObjectID]bool, success func(model.ObjectID) Bound) (Bound, error) {
	if !in.weak.IsTree() {
		return Bound{}, ErrNotTree
	}
	if p.Root != in.weak.Root() {
		return Point(0), nil
	}
	if p.Len() == 0 {
		if success != nil {
			return success(in.weak.Root()), nil
		}
		if targets != nil && !targets[in.weak.Root()] {
			return Point(0), nil
		}
		return Point(1), nil
	}
	g := in.weak.Graph()
	plan := pathexpr.NewPlan(g, p, targets)
	if plan.IsEmpty() {
		return Point(0), nil
	}
	keptChildren := make(map[model.ObjectID][]model.ObjectID)
	for _, e := range plan.Edges {
		keptChildren[e.From] = append(keptChildren[e.From], e.To)
	}
	eps := make(map[model.ObjectID]Bound)
	n := p.Len()
	for o := range plan.Keep[n] {
		if success != nil {
			eps[o] = success(o)
		} else {
			eps[o] = Point(1)
		}
	}
	matched := plan.Keep[n]
	for level := n - 1; level >= 0; level-- {
		for o := range plan.Keep[level] {
			if matched[o] {
				continue
			}
			w := in.opf[o]
			if w == nil {
				return Bound{}, fmt.Errorf("interval: non-leaf %s has no interval OPF", o)
			}
			kept := keptChildren[o]
			qLo := func(c sets.Set) float64 {
				// Minimal failure coefficient: children at ε max.
				q := 1.0
				for _, j := range kept {
					if c.Contains(j) {
						q *= 1 - eps[j].Hi
					}
				}
				return q
			}
			qHi := func(c sets.Set) float64 {
				q := 1.0
				for _, j := range kept {
					if c.Contains(j) {
						q *= 1 - eps[j].Lo
					}
				}
				return q
			}
			failLo, _, err := w.ExtremizeLinear(qLo)
			if err != nil {
				return Bound{}, err
			}
			_, failHi, err := w.ExtremizeLinear(qHi)
			if err != nil {
				return Bound{}, err
			}
			lo, hi := 1-failHi, 1-failLo
			if lo < 0 {
				lo = 0
			}
			if hi > 1 {
				hi = 1
			}
			if hi < lo {
				hi = lo
			}
			eps[o] = Bound{Lo: lo, Hi: hi}
		}
	}
	b, ok := eps[in.weak.Root()]
	if !ok {
		return Point(0), nil
	}
	return b, nil
}

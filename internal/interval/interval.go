// Package interval implements the interval-probability variant of PXML
// that the paper points to in its introduction: "A companion paper [14]
// describes an approach which uses interval probabilities" (Hung, Getoor,
// Subrahmanian, "Probabilistic Interval XML", ICDT 2003). Instead of one
// number per potential child set, an interval OPF assigns a closed
// subinterval of [0,1]; the semantics is the set of all point OPFs lying
// inside the bounds and summing to one. Queries then return probability
// intervals — the tight minimum and maximum over every consistent point
// instance.
//
// The operations needed here reduce to a classic bounded-variable linear
// program with a single Σω = 1 equality constraint, solvable greedily:
// to extremize Σ_{c} q_c·ω(c), sort child sets by coefficient and push each
// ω(c) to its bound in coefficient order while spending the remaining mass.
package interval

import (
	"fmt"
	"math"
	"sort"

	"pxml/internal/core"
	"pxml/internal/model"
	"pxml/internal/prob"
	"pxml/internal/sets"
)

// Bound is a closed subinterval of [0,1].
type Bound struct {
	Lo, Hi float64
}

// Validate reports an error unless 0 ≤ Lo ≤ Hi ≤ 1.
func (b Bound) Validate() error {
	if math.IsNaN(b.Lo) || math.IsNaN(b.Hi) || b.Lo < 0 || b.Hi > 1 || b.Lo > b.Hi {
		return fmt.Errorf("interval: bound [%v,%v] outside 0 ≤ lo ≤ hi ≤ 1", b.Lo, b.Hi)
	}
	return nil
}

// Point returns the degenerate bound [p,p].
func Point(p float64) Bound { return Bound{Lo: p, Hi: p} }

// Contains reports whether p lies within the bound (with tolerance).
func (b Bound) Contains(p float64) bool {
	return p >= b.Lo-prob.Tolerance && p <= b.Hi+prob.Tolerance
}

// Mul returns the product interval (both operands within [0,1], so the
// product is monotone in each endpoint).
func (b Bound) Mul(o Bound) Bound { return Bound{Lo: b.Lo * o.Lo, Hi: b.Hi * o.Hi} }

// String renders the bound as [lo,hi].
func (b Bound) String() string { return fmt.Sprintf("[%.6g,%.6g]", b.Lo, b.Hi) }

// OPF is an interval object probability function: a bound per potential
// child set. Absent sets are implicitly [0,0].
type OPF struct {
	bounds map[string]Bound
	sets   map[string]sets.Set
}

// NewOPF returns an empty interval OPF.
func NewOPF() *OPF {
	return &OPF{bounds: make(map[string]Bound), sets: make(map[string]sets.Set)}
}

// Put assigns the bound of child set c.
func (w *OPF) Put(c sets.Set, b Bound) {
	k := c.Key()
	w.bounds[k] = b
	w.sets[k] = c
}

// Bound returns the bound of c ([0,0] when absent).
func (w *OPF) Bound(c sets.Set) Bound { return w.bounds[c.Key()] }

// Len returns the number of stored entries.
func (w *OPF) Len() int { return len(w.bounds) }

// Entry is one (child set, bound) pair.
type Entry struct {
	Set   sets.Set
	Bound Bound
}

// Entries returns all entries in canonical order.
func (w *OPF) Entries() []Entry {
	es := make([]Entry, 0, len(w.bounds))
	for k, b := range w.bounds {
		es = append(es, Entry{Set: w.sets[k], Bound: b})
	}
	sort.Slice(es, func(i, j int) bool {
		a, b := es[i].Set, es[j].Set
		if a.Len() != b.Len() {
			return a.Len() < b.Len()
		}
		for i := range a {
			if a[i] != b[i] {
				return a[i] < b[i]
			}
		}
		return false
	})
	return es
}

// Consistent reports whether some point distribution satisfies the bounds:
// every bound valid, Σ lo ≤ 1 ≤ Σ hi.
func (w *OPF) Consistent() error {
	sumLo, sumHi := 0.0, 0.0
	for k, b := range w.bounds {
		if err := b.Validate(); err != nil {
			return fmt.Errorf("interval: set %s: %w", w.sets[k], err)
		}
		sumLo += b.Lo
		sumHi += b.Hi
	}
	if sumLo > 1+prob.Tolerance {
		return fmt.Errorf("interval: lower bounds sum to %v > 1", sumLo)
	}
	if sumHi < 1-prob.Tolerance {
		return fmt.Errorf("interval: upper bounds sum to %v < 1", sumHi)
	}
	return nil
}

// Tighten returns the OPF with bounds narrowed to those achievable by some
// consistent point distribution: lo′(c) = max(lo(c), 1 − Σ_{c′≠c} hi(c′)),
// hi′(c) = min(hi(c), 1 − Σ_{c′≠c} lo(c′)). Tightening is idempotent.
func (w *OPF) Tighten() (*OPF, error) {
	if err := w.Consistent(); err != nil {
		return nil, err
	}
	sumLo, sumHi := 0.0, 0.0
	for _, b := range w.bounds {
		sumLo += b.Lo
		sumHi += b.Hi
	}
	out := NewOPF()
	for k, b := range w.bounds {
		lo := math.Max(b.Lo, 1-(sumHi-b.Hi))
		hi := math.Min(b.Hi, 1-(sumLo-b.Lo))
		out.bounds[k] = Bound{Lo: lo, Hi: hi}
		out.sets[k] = w.sets[k]
	}
	return out, nil
}

// ExtremizeLinear computes min and max of Σ_c q(c)·ω(c) over all point
// distributions ω within the bounds with Σω = 1. This is the greedy
// bounded-variable LP: everything starts at its lower bound; the remaining
// mass 1 − Σ lo is then poured into sets in decreasing (for max) or
// increasing (for min) coefficient order up to each set's slack.
func (w *OPF) ExtremizeLinear(q func(sets.Set) float64) (min, max float64, err error) {
	if err := w.Consistent(); err != nil {
		return 0, 0, err
	}
	type item struct {
		coeff     float64
		lo, slack float64
	}
	items := make([]item, 0, len(w.bounds))
	base := 0.0
	spare := 1.0
	for k, b := range w.bounds {
		c := q(w.sets[k])
		items = append(items, item{coeff: c, lo: b.Lo, slack: b.Hi - b.Lo})
		base += c * b.Lo
		spare -= b.Lo
	}
	if spare < 0 {
		spare = 0
	}
	pour := func(desc bool) float64 {
		sort.Slice(items, func(i, j int) bool {
			if desc {
				return items[i].coeff > items[j].coeff
			}
			return items[i].coeff < items[j].coeff
		})
		total := base
		rem := spare
		for _, it := range items {
			if rem <= 0 {
				break
			}
			take := math.Min(rem, it.slack)
			total += it.coeff * take
			rem -= take
		}
		return total
	}
	return pour(false), pour(true), nil
}

// ProbContains returns the tight bound on P(member ∈ c).
func (w *OPF) ProbContains(member string) (Bound, error) {
	lo, hi, err := w.ExtremizeLinear(func(c sets.Set) float64 {
		if c.Contains(member) {
			return 1
		}
		return 0
	})
	if err != nil {
		return Bound{}, err
	}
	return Bound{Lo: lo, Hi: hi}, nil
}

// Sample materializes one consistent point OPF: the tightened lower bounds
// plus the remaining mass distributed by the weights drawn from rnd (a
// function returning values in [0,1)). It is used by the tests to check
// that query intervals really contain the answers of consistent point
// instances.
func (w *OPF) Sample(rnd func() float64) (*prob.OPF, error) {
	t, err := w.Tighten()
	if err != nil {
		return nil, err
	}
	out := prob.NewOPF()
	spare := 1.0
	keys := make([]string, 0, len(t.bounds))
	for k, b := range t.bounds {
		spare -= b.Lo
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if spare < 0 {
		spare = 0
	}
	for _, k := range keys {
		b := t.bounds[k]
		take := math.Min(spare, (b.Hi-b.Lo)*rnd())
		out.Put(t.sets[k], b.Lo+take)
		spare -= take
	}
	// Any residue goes to the first set with slack.
	if spare > prob.Tolerance {
		for _, k := range keys {
			b := t.bounds[k]
			cur := out.Prob(t.sets[k])
			room := b.Hi - cur
			if room <= 0 {
				continue
			}
			take := math.Min(room, spare)
			out.Put(t.sets[k], cur+take)
			spare -= take
			if spare <= prob.Tolerance {
				break
			}
		}
	}
	if err := out.Normalize(); err != nil {
		return nil, err
	}
	return out, nil
}

// VPF is an interval value probability function for typed leaves.
type VPF struct {
	bounds map[string]Bound
}

// NewVPF returns an empty interval VPF.
func NewVPF() *VPF { return &VPF{bounds: make(map[string]Bound)} }

// Put assigns the bound of value v.
func (w *VPF) Put(v string, b Bound) { w.bounds[v] = b }

// Bound returns the bound of v ([0,0] when absent).
func (w *VPF) Bound(v string) Bound { return w.bounds[v] }

// Consistent mirrors OPF.Consistent for value bounds.
func (w *VPF) Consistent() error {
	sumLo, sumHi := 0.0, 0.0
	for v, b := range w.bounds {
		if err := b.Validate(); err != nil {
			return fmt.Errorf("interval: value %q: %w", v, err)
		}
		sumLo += b.Lo
		sumHi += b.Hi
	}
	if sumLo > 1+prob.Tolerance {
		return fmt.Errorf("interval: value lower bounds sum to %v > 1", sumLo)
	}
	if sumHi < 1-prob.Tolerance {
		return fmt.Errorf("interval: value upper bounds sum to %v < 1", sumHi)
	}
	return nil
}

// Instance is an interval probabilistic instance: a weak instance whose
// local interpretation maps non-leaves to interval OPFs and typed leaves
// to interval VPFs. It denotes the set of all (point) probabilistic
// instances whose local functions lie within the bounds.
type Instance struct {
	weak *core.WeakInstance
	opf  map[model.ObjectID]*OPF
	vpf  map[model.ObjectID]*VPF
}

// New wraps a weak instance (used directly, not copied).
func New(w *core.WeakInstance) *Instance {
	return &Instance{
		weak: w,
		opf:  make(map[model.ObjectID]*OPF),
		vpf:  make(map[model.ObjectID]*VPF),
	}
}

// Weak returns the underlying weak instance.
func (in *Instance) Weak() *core.WeakInstance { return in.weak }

// SetOPF assigns the interval OPF of a non-leaf object.
func (in *Instance) SetOPF(o model.ObjectID, w *OPF) { in.opf[o] = w }

// SetVPF assigns the interval VPF of a typed leaf.
func (in *Instance) SetVPF(o model.ObjectID, w *VPF) { in.vpf[o] = w }

// OPF returns the interval OPF of o (nil when unset).
func (in *Instance) OPF(o model.ObjectID) *OPF { return in.opf[o] }

// VPF returns the interval VPF of o (nil when unset).
func (in *Instance) VPF(o model.ObjectID) *VPF { return in.vpf[o] }

// Validate checks the weak instance, acyclicity, and the consistency of
// every local interval function.
func (in *Instance) Validate() error {
	if err := in.weak.Validate(); err != nil {
		return err
	}
	if err := in.weak.CheckAcyclic(); err != nil {
		return err
	}
	for _, o := range in.weak.Objects() {
		if in.weak.IsLeaf(o) {
			if _, typed := in.weak.TypeOf(o); typed {
				v := in.vpf[o]
				if v == nil {
					return fmt.Errorf("interval: typed leaf %s has no interval VPF", o)
				}
				if err := v.Consistent(); err != nil {
					return fmt.Errorf("interval: VPF(%s): %w", o, err)
				}
			}
			continue
		}
		w := in.opf[o]
		if w == nil {
			return fmt.Errorf("interval: non-leaf %s has no interval OPF", o)
		}
		if err := w.Consistent(); err != nil {
			return fmt.Errorf("interval: OPF(%s): %w", o, err)
		}
	}
	return nil
}

// FromPoint lifts a point probabilistic instance to the degenerate
// interval instance ([p,p] everywhere).
func FromPoint(pi *core.ProbInstance) *Instance {
	out := New(pi.Weak())
	for _, o := range pi.SortedOPFObjects() {
		w := NewOPF()
		pi.OPF(o).Each(func(c sets.Set, p float64) { w.Put(c, Point(p)) })
		out.SetOPF(o, w)
	}
	for _, o := range pi.SortedVPFObjects() {
		v := NewVPF()
		for _, e := range pi.VPF(o).Entries() {
			v.Put(e.Value, Point(e.Prob))
		}
		out.SetVPF(o, v)
	}
	return out
}

// SamplePoint materializes one consistent point probabilistic instance,
// drawing slack allocations from rnd.
func (in *Instance) SamplePoint(rnd func() float64) (*core.ProbInstance, error) {
	pi := core.FromWeak(in.weak)
	for _, o := range in.weak.Objects() {
		if in.weak.IsLeaf(o) {
			v := in.vpf[o]
			if v == nil {
				continue
			}
			// Reuse the OPF sampler via a value-keyed interval OPF.
			tmp := NewOPF()
			for val, b := range v.bounds {
				tmp.Put(sets.NewSet(val), b)
			}
			pt, err := tmp.Sample(rnd)
			if err != nil {
				return nil, fmt.Errorf("interval: sampling VPF(%s): %w", o, err)
			}
			vp := prob.NewVPF()
			pt.Each(func(c sets.Set, p float64) {
				if c.Len() == 1 {
					vp.Put(c[0], p)
				}
			})
			pi.SetVPF(o, vp)
			continue
		}
		w := in.opf[o]
		if w == nil {
			continue
		}
		pt, err := w.Sample(rnd)
		if err != nil {
			return nil, fmt.Errorf("interval: sampling OPF(%s): %w", o, err)
		}
		pi.SetOPF(o, pt)
	}
	return pi, nil
}

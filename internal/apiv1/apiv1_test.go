package apiv1

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

func TestWriteErrorEnvelope(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteError(rec, 404, CodeNotFound, "no instance \"x\"")
	if rec.Code != 404 {
		t.Fatalf("status = %d", rec.Code)
	}
	var env struct {
		Error ErrorDetail `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != CodeNotFound || env.Error.Message == "" || env.Error.RetryAfterMS != 0 {
		t.Errorf("envelope = %+v", env.Error)
	}
}

func TestWriteErrorRetrySetsHeaderAndHint(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteErrorRetry(rec, 429, CodeQuotaExceeded, "slow down", 1500*time.Millisecond)
	if got := rec.Header().Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After = %q, want rounded-up 2", got)
	}
	e := ErrorFromBody(rec.Code, rec.Body.Bytes())
	if e.Code != CodeQuotaExceeded || e.RetryAfter != 1500*time.Millisecond {
		t.Errorf("round-tripped error = %+v", e)
	}
	if !e.Retryable() {
		t.Error("quota_exceeded not retryable")
	}

	// Sub-second hints still promise at least one second in the header.
	rec = httptest.NewRecorder()
	WriteErrorRetry(rec, 503, CodeTimeout, "deadline", 10*time.Millisecond)
	if got := rec.Header().Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q, want minimum 1", got)
	}
}

func TestErrorFromBodyFallback(t *testing.T) {
	e := ErrorFromBody(500, []byte("<html>gateway exploded</html>"))
	if e.Code != CodeInternal || e.Message != "<html>gateway exploded</html>" || e.Status != 500 {
		t.Errorf("fallback error = %+v", e)
	}
	if e.Retryable() {
		t.Error("bare 500 reported retryable")
	}
	if ErrorFromBody(503, []byte("nope")).Retryable() != true {
		t.Error("503 should be retryable even undecoded")
	}
}

// Package apiv1 defines the v1 HTTP API's shared wire conventions: the
// version prefix, the structured error envelope every v1 endpoint emits,
// and the client-side decoding of that envelope. Server handlers and the
// CLI clients (pxmlquery, pxmlbackup, pxmlshell) both import this
// package, so the two sides of the wire cannot drift apart.
//
// Every v1 error response has the same shape:
//
//	{"error": {"code": "quota_exceeded", "message": "...", "retry_after_ms": 1000}}
//
// The code is a stable machine-readable enum (see the Code* constants);
// the message is human-readable and free to change; retry_after_ms is
// present only on retryable 429/503 responses and mirrors the
// Retry-After header.
package apiv1

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// Prefix is the v1 route prefix. Legacy unversioned paths answer with a
// 308 redirect onto their /v1 equivalent.
const Prefix = "/v1"

// Stable error codes. Clients branch on these, never on messages.
const (
	CodeInvalidRequest   = "invalid_request"   // 400: malformed path, body, or parameters
	CodeUnauthorized     = "unauthorized"      // 401: missing or wrong bearer token
	CodeForbidden        = "forbidden"         // 403: endpoint disabled by configuration
	CodeNotFound         = "not_found"         // 404: unknown instance
	CodeConflict         = "conflict"          // 409: operation impossible in this server mode
	CodeTimelineDiverged = "timeline_diverged" // 409: replication position off this server's WAL timeline
	CodeEpochFenced      = "epoch_fenced"      // 409: node superseded by a higher leader epoch (writes fenced)
	CodeNotFollower      = "not_follower"      // 409: promotion asked of a node that is not a follower
	CodeBodyTooLarge     = "body_too_large"    // 413: request body over the configured limit
	CodeInvalidInstance  = "invalid_instance"  // 422: instance failed validation
	CodeStatementFailed  = "statement_failed"  // 422: pxql statement rejected or failed
	CodeIntractable      = "intractable"       // 422: query provably exceeds the resource budget (not retryable)
	CodeQuotaExceeded    = "quota_exceeded"    // 429: tenant token bucket empty (retryable)
	CodeOverloaded       = "overloaded"        // 429: server at capacity or over fair share (retryable)
	CodeTimeout          = "timeout"           // 503: per-request deadline expired (retryable)
	CodeDegraded         = "degraded"          // 503: durable store is read-only (retryable)
	CodeBudgetExceeded   = "budget_exceeded"   // 503: query ran past its cost budget (a cheaper variant may fit; retryable)
	CodeBreakerOpen      = "breaker_open"      // 503: circuit breaker open for this statement shape (retryable after cooldown)
	CodeInternal         = "internal"          // 500: unexpected server failure
)

// ErrorDetail is the envelope's inner object.
type ErrorDetail struct {
	Code         string `json:"code"`
	Message      string `json:"message"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// envelope is the error response wrapper.
type envelope struct {
	Error ErrorDetail `json:"error"`
}

// WriteError writes the v1 error envelope with the given status and code.
func WriteError(w http.ResponseWriter, status int, code, message string) {
	writeEnvelope(w, status, ErrorDetail{Code: code, Message: message})
}

// WriteErrorRetry is WriteError for retryable responses: it also sets the
// Retry-After header (whole seconds, rounded up, minimum 1) and the
// envelope's retry_after_ms hint.
func WriteErrorRetry(w http.ResponseWriter, status int, code, message string, retryAfter time.Duration) {
	if retryAfter <= 0 {
		retryAfter = time.Second
	}
	secs := int64((retryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	writeEnvelope(w, status, ErrorDetail{
		Code: code, Message: message,
		RetryAfterMS: int64(retryAfter / time.Millisecond),
	})
}

func writeEnvelope(w http.ResponseWriter, status int, d ErrorDetail) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(envelope{Error: d})
}

// Error is the client-side form of a v1 error response.
type Error struct {
	Status     int           // HTTP status code
	Code       string        // machine-readable code (CodeInternal if undecodable)
	Message    string        // human-readable message
	RetryAfter time.Duration // from retry_after_ms; 0 when absent
}

// Error renders "code: message (HTTP status)".
func (e *Error) Error() string {
	return fmt.Sprintf("%s: %s (HTTP %d)", e.Code, e.Message, e.Status)
}

// Retryable reports whether the server asked the client to retry later.
func (e *Error) Retryable() bool {
	switch e.Code {
	case CodeQuotaExceeded, CodeOverloaded, CodeTimeout, CodeDegraded,
		CodeBudgetExceeded, CodeBreakerOpen:
		return true
	}
	return e.Status == http.StatusTooManyRequests || e.Status == http.StatusServiceUnavailable
}

// ErrorFromBody decodes a non-2xx response body into an *Error. Bodies
// that are not a v1 envelope (legacy servers, proxies) degrade to
// CodeInternal with the raw body as the message, so callers always get a
// useful error out.
func ErrorFromBody(status int, body []byte) *Error {
	var env envelope
	if err := json.Unmarshal(body, &env); err == nil && env.Error.Code != "" {
		return &Error{
			Status:     status,
			Code:       env.Error.Code,
			Message:    env.Error.Message,
			RetryAfter: time.Duration(env.Error.RetryAfterMS) * time.Millisecond,
		}
	}
	msg := string(body)
	if len(msg) > 512 {
		msg = msg[:512] + "..."
	}
	return &Error{Status: status, Code: CodeInternal, Message: msg}
}

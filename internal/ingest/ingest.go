// Package ingest converts deterministic semistructured data plus
// extraction confidences into probabilistic instances — the workflow the
// paper's introduction motivates ("a semistructured representation is
// constructed from a noisy input source ... probabilistic parsing of input
// sources"). An extractor that produced an ordinary instance with a
// per-object confidence score (how sure it is the object is real) yields a
// PXML instance whose independent OPFs carry exactly those marginals; an
// optional per-leaf value distribution captures value noise.
package ingest

import (
	"fmt"

	"pxml/internal/core"
	"pxml/internal/model"
	"pxml/internal/prob"
)

// Options configures FromInstance.
type Options struct {
	// Confidence returns the extractor's confidence in [0,1] that the
	// given object really exists (given its parent exists). Nil means
	// certainty (probability 1) for every object.
	Confidence func(model.ObjectID) float64
	// ValueDist optionally replaces a typed leaf's observed point value
	// with a distribution over its domain (e.g. an OCR confusion model).
	// Nil, or a nil return, keeps the observed value as a point mass.
	ValueDist func(o model.ObjectID, observed model.Value) map[model.Value]float64
	// MaxChildrenPerObject guards the independent-OPF expansion (2^n
	// entries for n children). Objects with more children are rejected.
	// Zero means the default of 16.
	MaxChildrenPerObject int
}

// FromInstance lifts a deterministic instance into a probabilistic one:
// every parent gets an independent OPF in which each observed child occurs
// with its confidence, and every typed leaf gets a VPF (the observed value
// as a point mass, or the supplied distribution). Cardinalities default to
// [0, n] per label. The result's existence marginals are exactly the
// products of confidences along root paths (for tree inputs).
func FromInstance(s *model.Instance, opts Options) (*core.ProbInstance, error) {
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("ingest: input invalid: %w", err)
	}
	conf := opts.Confidence
	if conf == nil {
		conf = func(model.ObjectID) float64 { return 1 }
	}
	maxKids := opts.MaxChildrenPerObject
	if maxKids <= 0 {
		maxKids = 16
	}
	pi := core.NewProbInstance(s.Root())
	for _, t := range s.Types() {
		if err := pi.RegisterType(t); err != nil {
			return nil, err
		}
	}
	g := s.Graph()
	for _, o := range s.Objects() {
		children := g.Children(o)
		if len(children) == 0 {
			if t, ok := s.TypeOf(o); ok {
				if err := pi.SetLeafType(o, t.Name); err != nil {
					return nil, err
				}
				observed, _ := s.ValueOf(o)
				if err := pi.SetDefaultValue(o, observed); err != nil {
					return nil, err
				}
				var dist map[model.Value]float64
				if opts.ValueDist != nil {
					dist = opts.ValueDist(o, observed)
				}
				v := prob.NewVPF()
				if dist == nil {
					v.Put(observed, 1)
				} else {
					for val, p := range dist {
						if !t.Has(val) {
							return nil, fmt.Errorf("ingest: value %q outside dom(%s) for %s", val, t.Name, o)
						}
						v.Put(val, p)
					}
					if err := v.Validate(); err != nil {
						return nil, fmt.Errorf("ingest: value distribution of %s: %w", o, err)
					}
				}
				pi.SetVPF(o, v)
			}
			continue
		}
		if len(children) > maxKids {
			return nil, fmt.Errorf("ingest: object %s has %d children (max %d); supply explicit OPFs for such objects", o, len(children), maxKids)
		}
		perLabel := map[model.Label][]model.ObjectID{}
		iw := prob.NewIndependentOPF()
		for _, c := range children {
			l, _ := g.Label(o, c)
			perLabel[l] = append(perLabel[l], c)
			p := conf(c)
			if p < 0 || p > 1 {
				return nil, fmt.Errorf("ingest: confidence %v of %s outside [0,1]", p, c)
			}
			iw.Put(c, p)
		}
		for l, cs := range perLabel {
			pi.SetLCh(o, l, cs...)
			pi.SetCard(o, l, 0, len(cs))
		}
		w, err := iw.Expand()
		if err != nil {
			return nil, fmt.Errorf("ingest: expanding OPF of %s: %w", o, err)
		}
		pi.SetOPF(o, w)
	}
	if err := pi.ValidateLite(); err != nil {
		return nil, fmt.Errorf("ingest: result invalid: %w", err)
	}
	return pi, nil
}

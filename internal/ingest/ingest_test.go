package ingest

import (
	"math"
	"strings"
	"testing"

	"pxml/internal/fixtures"
	"pxml/internal/model"
	"pxml/internal/query"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestFromInstanceMarginals(t *testing.T) {
	s := fixtures.Figure1()
	conf := map[string]float64{
		"B1": 0.9, "B2": 0.8, "B3": 0.7,
		"T1": 0.95, "T2": 0.95,
		"A1": 0.6, "A2": 0.5, "A3": 0.4,
		"I1": 1, "I2": 1,
	}
	pi, err := FromInstance(s, Options{
		Confidence: func(o model.ObjectID) float64 { return conf[o] },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := pi.Validate(); err != nil {
		t.Fatalf("lifted instance invalid: %v", err)
	}
	// Figure 1 is a DAG (shared authors); chain probabilities still equal
	// confidence products.
	p, err := query.ChainProb(pi, []string{"R", "B1", "A1", "I1"})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(p, 0.9*0.6*1) {
		t.Errorf("chain = %v, want %v", p, 0.9*0.6)
	}
	// Observed leaf values become point-mass VPFs with defaults.
	if v, ok := pi.DefaultValue("T1"); !ok || v != "VQDB" {
		t.Errorf("default value = %q,%v", v, ok)
	}
	if got := pi.VPF("T1").Prob("VQDB"); !approx(got, 1) {
		t.Errorf("VPF = %v", got)
	}
}

func TestFromInstanceTreeMarginalsExact(t *testing.T) {
	// On a tree input, existence marginals are products of confidences.
	s := model.NewInstance("r")
	_ = s.RegisterType(model.NewType("t", "x", "y"))
	_ = s.AddEdge("r", "a", "l")
	_ = s.AddEdge("a", "b", "m")
	_ = s.SetLeaf("b", "t", "x")
	pi, err := FromInstance(s, Options{
		Confidence: func(o model.ObjectID) float64 {
			if o == "a" {
				return 0.5
			}
			return 0.8
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	marg, err := query.ExistenceMarginals(pi)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(marg["a"], 0.5) || !approx(marg["b"], 0.5*0.8) {
		t.Errorf("marginals = %v", marg)
	}
}

func TestFromInstanceValueDist(t *testing.T) {
	s := model.NewInstance("r")
	_ = s.RegisterType(model.NewType("digit", "0", "8", "9"))
	_ = s.AddEdge("r", "d", "digit")
	_ = s.SetLeaf("d", "digit", "8")
	pi, err := FromInstance(s, Options{
		// An OCR confusion model: an observed 8 may really be a 9 or 0.
		ValueDist: func(o model.ObjectID, observed model.Value) map[model.Value]float64 {
			if observed == "8" {
				return map[model.Value]float64{"8": 0.7, "9": 0.2, "0": 0.1}
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := pi.VPF("d").Prob("9"); !approx(got, 0.2) {
		t.Errorf("VPF(9) = %v", got)
	}
}

func TestFromInstanceErrors(t *testing.T) {
	// Invalid input instance.
	bad := model.NewInstance("r")
	bad.AddObject("orphan")
	if _, err := FromInstance(bad, Options{}); err == nil {
		t.Error("invalid input accepted")
	}

	// Confidence out of range.
	s := model.NewInstance("r")
	_ = s.AddEdge("r", "a", "l")
	if _, err := FromInstance(s, Options{
		Confidence: func(model.ObjectID) float64 { return 1.5 },
	}); err == nil {
		t.Error("confidence >1 accepted")
	}

	// Value distribution outside the domain.
	s2 := model.NewInstance("r")
	_ = s2.RegisterType(model.NewType("t", "x"))
	_ = s2.AddEdge("r", "a", "l")
	_ = s2.SetLeaf("a", "t", "x")
	if _, err := FromInstance(s2, Options{
		ValueDist: func(model.ObjectID, model.Value) map[model.Value]float64 {
			return map[model.Value]float64{"zz": 1}
		},
	}); err == nil {
		t.Error("out-of-domain distribution accepted")
	}

	// Non-normalized value distribution.
	if _, err := FromInstance(s2, Options{
		ValueDist: func(model.ObjectID, model.Value) map[model.Value]float64 {
			return map[model.Value]float64{"x": 0.5}
		},
	}); err == nil {
		t.Error("non-normalized distribution accepted")
	}

	// Too many children for the independent expansion; a raised cap
	// accepts the same shape (kept small: the expansion is 2^n entries).
	wide := model.NewInstance("r")
	for i := 0; i < 6; i++ {
		_ = wide.AddEdge("r", "c"+string(rune('a'+i)), "l")
	}
	if _, err := FromInstance(wide, Options{MaxChildrenPerObject: 5}); err == nil || !strings.Contains(err.Error(), "children") {
		t.Errorf("wide object: %v", err)
	}
	if _, err := FromInstance(wide, Options{MaxChildrenPerObject: 6}); err != nil {
		t.Errorf("raised cap rejected: %v", err)
	}
}

func TestFromInstanceDefaultConfidence(t *testing.T) {
	s := fixtures.Figure1()
	pi, err := FromInstance(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// With unit confidences every object surely exists.
	p, err := query.ChainProb(pi, []string{"R", "B3", "A3", "I2"})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(p, 1) {
		t.Errorf("chain = %v, want 1", p)
	}
}

package pathexpr

import (
	"sort"

	"pxml/internal/graph"
	"pxml/internal/model"
)

// Index is a label-partitioned adjacency index over a graph: for each edge
// label it stores the per-source sorted successor lists. Path evaluation
// over an Index touches only the edges of the queried labels, which on
// instances with diverse label alphabets avoids scanning every child of
// every frontier object (the locate leg of the paper's Figure 7 pipeline).
// Build once per (immutable) graph and reuse across queries.
type Index struct {
	// byLabel[label][from] = sorted successors via edges with that label.
	byLabel map[model.Label]map[model.ObjectID][]model.ObjectID
	// all[from] = sorted (child, label) pairs, for wildcard steps.
	g *graph.Graph
}

// NewIndex builds the index in one pass over the graph's edges.
func NewIndex(g *graph.Graph) *Index {
	idx := &Index{byLabel: make(map[model.Label]map[model.ObjectID][]model.ObjectID), g: g}
	for _, e := range g.Edges() {
		m := idx.byLabel[e.Label]
		if m == nil {
			m = make(map[model.ObjectID][]model.ObjectID)
			idx.byLabel[e.Label] = m
		}
		m[e.From] = append(m[e.From], e.To)
	}
	// graph.Edges is sorted by (From, To), so successor lists are sorted.
	return idx
}

// Labels returns the indexed labels, sorted.
func (idx *Index) Labels() []model.Label {
	out := make([]model.Label, 0, len(idx.byLabel))
	for l := range idx.byLabel {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// successors returns the children of o via label l (nil when none); the
// wildcard falls back to the full child list.
func (idx *Index) successors(o model.ObjectID, l model.Label) []model.ObjectID {
	if l == Wildcard {
		return idx.g.Children(o)
	}
	return idx.byLabel[l][o]
}

// LevelsIndexed is Path.Levels evaluated through the index.
func (p Path) LevelsIndexed(idx *Index) []map[model.ObjectID]bool {
	levels := make([]map[model.ObjectID]bool, p.Len()+1)
	levels[0] = map[model.ObjectID]bool{}
	if idx.g.HasNode(p.Root) {
		levels[0][p.Root] = true
	}
	for i, l := range p.Labels {
		next := map[model.ObjectID]bool{}
		for o := range levels[i] {
			for _, c := range idx.successors(o, l) {
				next[c] = true
			}
		}
		levels[i+1] = next
	}
	return levels
}

// TargetsIndexed is Path.Targets evaluated through the index.
func (p Path) TargetsIndexed(idx *Index) []model.ObjectID {
	last := p.LevelsIndexed(idx)[p.Len()]
	out := make([]model.ObjectID, 0, len(last))
	for o := range last {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

// NewPlanIndexed is NewPlan evaluated through the index: identical output,
// but the backward pruning pass touches only same-label edges.
func NewPlanIndexed(idx *Index, p Path, targets map[model.ObjectID]bool) Plan {
	levels := p.LevelsIndexed(idx)
	n := p.Len()
	keep := make([]map[model.ObjectID]bool, n+1)
	keep[n] = map[model.ObjectID]bool{}
	for o := range levels[n] {
		if targets == nil || targets[o] {
			keep[n][o] = true
		}
	}
	var edges []graph.Edge
	for i := n - 1; i >= 0; i-- {
		keep[i] = map[model.ObjectID]bool{}
		l := p.Labels[i]
		for o := range levels[i] {
			for _, c := range idx.successors(o, l) {
				if !keep[i+1][c] {
					continue
				}
				keep[i][o] = true
				label := l
				if l == Wildcard {
					label, _ = idx.g.Label(o, c)
				}
				edges = append(edges, graph.Edge{From: o, To: c, Label: label})
			}
		}
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].From != edges[b].From {
			return edges[a].From < edges[b].From
		}
		return edges[a].To < edges[b].To
	})
	w := 0
	for i, e := range edges {
		if i == 0 || e != edges[w-1] {
			edges[w] = e
			w++
		}
	}
	return Plan{Path: p, Keep: keep, Edges: edges[:w]}
}

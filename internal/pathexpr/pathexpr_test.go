package pathexpr

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"pxml/internal/fixtures"
	"pxml/internal/graph"
)

func TestParse(t *testing.T) {
	p, err := Parse("R.book.author")
	if err != nil {
		t.Fatal(err)
	}
	if p.Root != "R" || !reflect.DeepEqual(p.Labels, []string{"book", "author"}) {
		t.Errorf("parsed = %+v", p)
	}
	if p.String() != "R.book.author" || p.Len() != 2 {
		t.Errorf("String/Len = %q/%d", p.String(), p.Len())
	}
	bare, err := Parse("R")
	if err != nil || bare.Len() != 0 || bare.String() != "R" {
		t.Errorf("bare = %+v err=%v", bare, err)
	}
	for _, bad := range []string{"", "R..author", ".book", "R."} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic")
		}
	}()
	MustParse("")
}

// TestTargetsFigure1 reproduces the paper's example: A2 ∈ R.book.author in
// the Figure 1 instance.
func TestTargetsFigure1(t *testing.T) {
	g := fixtures.Figure1().Graph()
	p := MustParse("R.book.author")
	if got, want := p.Targets(g), []string{"A1", "A2", "A3"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Targets = %v, want %v", got, want)
	}
	if !p.Matches(g, "A2") || p.Matches(g, "T1") {
		t.Error("Matches misbehaves")
	}
	if got := MustParse("R.book.title").Targets(g); !reflect.DeepEqual(got, []string{"T1", "T2"}) {
		t.Errorf("title targets = %v", got)
	}
	if got := MustParse("R").Targets(g); !reflect.DeepEqual(got, []string{"R"}) {
		t.Errorf("bare root targets = %v", got)
	}
	if got := MustParse("R.missing").Targets(g); len(got) != 0 {
		t.Errorf("missing label targets = %v", got)
	}
	if got := MustParse("X.book").Targets(g); len(got) != 0 {
		t.Errorf("unknown root targets = %v", got)
	}
}

func TestWildcard(t *testing.T) {
	g := fixtures.Figure1().Graph()
	got := MustParse("R.*.author").Targets(g)
	if !reflect.DeepEqual(got, []string{"A1", "A2", "A3"}) {
		t.Errorf("wildcard targets = %v", got)
	}
	// R.*.* reaches titles and authors.
	got = MustParse("R.*.*").Targets(g)
	if !reflect.DeepEqual(got, []string{"A1", "A2", "A3", "T1", "T2"}) {
		t.Errorf("R.*.* targets = %v", got)
	}
}

// TestProjectAncestorsFigure4 reproduces Example 5.1 / Figure 4: the
// ancestor projection of the Figure 1 instance on R.book.author keeps
// {R, B1, B2, B3, A1, A2, A3} and drops titles and institutions.
func TestProjectAncestorsFigure4(t *testing.T) {
	s := fixtures.Figure1()
	out := ProjectAncestors(s, MustParse("R.book.author"))
	if err := out.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	want := []string{"A1", "A2", "A3", "B1", "B2", "B3", "R"}
	if got := out.Objects(); !reflect.DeepEqual(got, want) {
		t.Errorf("objects = %v, want %v", got, want)
	}
	// Authors become untyped leaves (their institutions are projected away).
	if !out.IsLeaf("A1") {
		t.Error("A1 should be a leaf after projection")
	}
	if _, ok := out.TypeOf("A1"); ok {
		t.Error("A1 should be untyped after projection")
	}
	// Edge labels preserved.
	if l, ok := out.Graph().Label("B1", "A1"); !ok || l != "author" {
		t.Errorf("label(B1,A1) = %q,%v", l, ok)
	}
	if out.Graph().HasEdge("B1", "T1") {
		t.Error("title edge survived projection")
	}
}

// TestProjectAncestorsKeepsTypedLeaves: projecting onto a path ending at
// typed leaves keeps their types and values.
func TestProjectAncestorsKeepsTypedLeaves(t *testing.T) {
	s := fixtures.Figure1()
	out := ProjectAncestors(s, MustParse("R.book.title"))
	if v, ok := out.ValueOf("T1"); !ok || v != "VQDB" {
		t.Errorf("val(T1) = %q,%v", v, ok)
	}
	if out.HasObject("A1") {
		t.Error("author survived title projection")
	}
}

func TestProjectAncestorsNoMatch(t *testing.T) {
	s := fixtures.Figure1()
	out := ProjectAncestors(s, MustParse("R.journal"))
	if out.NumObjects() != 1 || !out.HasObject("R") {
		t.Errorf("no-match projection = %v", out.Objects())
	}
	// Wrong root yields bare root of the source instance.
	out = ProjectAncestors(s, MustParse("X.book"))
	if out.NumObjects() != 1 {
		t.Errorf("wrong-root projection = %v", out.Objects())
	}
}

// TestPlanPartialPathPruned: objects on partial paths that never reach a
// full match are dropped — the paper's E′ definition keeps only edges on
// complete match paths.
func TestPlanPartialPathPruned(t *testing.T) {
	g := graph.New()
	_ = g.AddEdge("r", "x", "a")
	_ = g.AddEdge("r", "y", "a")
	_ = g.AddEdge("x", "z", "b")
	// y has no b-child: it must not be kept.
	pl := NewPlan(g, MustParse("r.a.b"), nil)
	if pl.Keep[1]["y"] {
		t.Error("dead-end ancestor kept")
	}
	if !pl.Keep[1]["x"] || !pl.Keep[2]["z"] {
		t.Error("match path lost")
	}
	if got := pl.Kept(); !reflect.DeepEqual(got, []string{"r", "x", "z"}) {
		t.Errorf("Kept = %v", got)
	}
	if pl.IsEmpty() {
		t.Error("plan should not be empty")
	}
	if got := pl.Matched(); !reflect.DeepEqual(got, []string{"z"}) {
		t.Errorf("Matched = %v", got)
	}
}

// TestPlanDAGMultiLevel: in a DAG an object reachable at several depths is
// handled per level; an edge not on a complete match path is dropped even
// when its endpoint is matched via another path (the r -a-> x case worked
// out in the package design notes).
func TestPlanDAGMultiLevel(t *testing.T) {
	g := graph.New()
	_ = g.AddEdge("r", "x", "a")
	_ = g.AddEdge("r", "y", "a")
	_ = g.AddEdge("y", "x", "a")
	pl := NewPlan(g, MustParse("r.a.a"), nil)
	// x is matched (via y); the direct edge r→x is level-0→1, but x at
	// level 1 has no a-child, so that occurrence dies out.
	if !pl.Keep[2]["x"] || !pl.Keep[1]["y"] {
		t.Error("match path through y lost")
	}
	if pl.Keep[1]["x"] {
		t.Error("dead-end level-1 occurrence of x kept")
	}
	wantEdges := []graph.Edge{{From: "r", To: "y", Label: "a"}, {From: "y", To: "x", Label: "a"}}
	if !reflect.DeepEqual(pl.Edges, wantEdges) {
		t.Errorf("edges = %v, want %v", pl.Edges, wantEdges)
	}
}

// TestPlanTargetsRestriction: restricting the plan to one target keeps only
// that object's path ancestors (the Section 6.2 point-query extraction).
func TestPlanTargetsRestriction(t *testing.T) {
	g := fixtures.Figure1().Graph()
	pl := NewPlan(g, MustParse("R.book.author"), map[string]bool{"A3": true})
	if got := pl.Matched(); !reflect.DeepEqual(got, []string{"A3"}) {
		t.Errorf("Matched = %v", got)
	}
	// A3's books are B2 and B3; B1 is not a path ancestor of A3.
	if pl.Keep[1]["B1"] || !pl.Keep[1]["B2"] || !pl.Keep[1]["B3"] {
		t.Errorf("keep[1] = %v", pl.Keep[1])
	}
}

// TestPlanSelfDAGEdgeDedup: an edge rediscovered at several levels appears
// once in the plan.
func TestPlanSelfDAGEdgeDedup(t *testing.T) {
	g := graph.New()
	_ = g.AddEdge("r", "m", "a")
	_ = g.AddEdge("m", "n", "a")
	_ = g.AddEdge("n", "q", "a")
	_ = g.AddEdge("r", "n", "a")
	// Path r.a.a.a: n occurs at levels 1 and 2; edge n→q used from both
	// level-2 and level-3 contexts... verify no duplicates.
	pl := NewPlan(g, MustParse("r.a.a.a"), nil)
	seen := map[graph.Edge]int{}
	for _, e := range pl.Edges {
		seen[e]++
		if seen[e] > 1 {
			t.Errorf("duplicate edge %v", e)
		}
	}
}

func TestLevelsEmptyRoot(t *testing.T) {
	g := graph.New()
	g.AddNode("r")
	levels := MustParse("q.a").Levels(g)
	if len(levels[0]) != 0 || len(levels[1]) != 0 {
		t.Errorf("levels = %v", levels)
	}
}

// TestIndexedEvaluationMatchesDirect: the label index produces identical
// targets and plans on the Figure 1 instance for every label combination.
func TestIndexedEvaluationMatchesDirect(t *testing.T) {
	g := fixtures.Figure1().Graph()
	idx := NewIndex(g)
	if got := idx.Labels(); !reflect.DeepEqual(got, []string{"author", "book", "institution", "title"}) {
		t.Errorf("Labels = %v", got)
	}
	paths := []string{
		"R.book.author", "R.book.title", "R.book.author.institution",
		"R.*.author", "R.book.*", "R.missing", "X.book", "R",
	}
	for _, ps := range paths {
		p := MustParse(ps)
		if got, want := p.TargetsIndexed(idx), p.Targets(g); !reflect.DeepEqual(got, want) {
			t.Errorf("TargetsIndexed(%s) = %v, want %v", ps, got, want)
		}
		got := NewPlanIndexed(idx, p, nil)
		want := NewPlan(g, p, nil)
		if !reflect.DeepEqual(got.Edges, want.Edges) {
			t.Errorf("plan edges for %s: %v vs %v", ps, got.Edges, want.Edges)
		}
		if !reflect.DeepEqual(got.Kept(), want.Kept()) {
			t.Errorf("plan kept for %s: %v vs %v", ps, got.Kept(), want.Kept())
		}
	}
	// Targets restriction matches too.
	p := MustParse("R.book.author")
	got := NewPlanIndexed(idx, p, map[string]bool{"A3": true})
	want := NewPlan(g, p, map[string]bool{"A3": true})
	if !reflect.DeepEqual(got.Kept(), want.Kept()) {
		t.Errorf("restricted plan: %v vs %v", got.Kept(), want.Kept())
	}
}

// TestQuickIndexedPlanMatchesDirect: indexed and direct evaluation agree
// on random DAGs and random paths.
func TestQuickIndexedPlanMatchesDirect(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pi := fixtures.RandomDAG(r)
		g := pi.WeakInstance.Graph()
		idx := NewIndex(g)
		labels := []string{"a", "b", Wildcard, "zz"}
		p := Path{Root: pi.Root()}
		for i := 0; i < 1+r.Intn(3); i++ {
			p.Labels = append(p.Labels, labels[r.Intn(len(labels))])
		}
		if !reflect.DeepEqual(p.TargetsIndexed(idx), p.Targets(g)) {
			return false
		}
		a := NewPlanIndexed(idx, p, nil)
		b := NewPlan(g, p, nil)
		return reflect.DeepEqual(a.Edges, b.Edges) && reflect.DeepEqual(a.Kept(), b.Kept())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(20250705))}); err != nil {
		t.Fatal(err)
	}
}

package pathexpr

import "testing"

// FuzzParse asserts Parse never panics and that accepted expressions
// round-trip through String.
func FuzzParse(f *testing.F) {
	f.Add("R.book.author")
	f.Add("R")
	f.Add("a.*.b")
	f.Add("..")
	f.Add("")
	f.Fuzz(func(t *testing.T, in string) {
		p, err := Parse(in)
		if err != nil {
			return
		}
		back, err := Parse(p.String())
		if err != nil {
			t.Fatalf("round trip rejected %q: %v", p.String(), err)
		}
		if back.String() != p.String() {
			t.Fatalf("round trip unstable: %q vs %q", back.String(), p.String())
		}
	})
}

// Package pathexpr implements the path expressions of Definition 5.1 —
// p = r.l₁.l₂…lₙ, an object id followed by a sequence of edge labels — and
// the structural graph operations built on them: locating the objects an
// expression denotes, and extracting the "ancestor projection" subgraph of
// Definition 5.2 (the matched objects plus every object and edge on a
// root-to-match path).
//
// As an extension beyond the paper, the label wildcard "*" matches any edge
// label; everything else follows the paper's single-path-expression form.
package pathexpr

import (
	"fmt"
	"sort"
	"strings"

	"pxml/internal/graph"
	"pxml/internal/model"
)

// Wildcard is the label that matches any edge label (extension).
const Wildcard = "*"

// Path is a parsed path expression: an object identifier (the root of the
// instance the expression applies to) followed by an edge-label sequence.
type Path struct {
	Root   model.ObjectID
	Labels []model.Label
}

// Parse parses "r.l1.l2…ln". The first segment is the root object id; the
// rest are edge labels. Segments must be non-empty. A bare object id parses
// to a Path with no labels (which denotes just that object).
func Parse(s string) (Path, error) {
	if s == "" {
		return Path{}, fmt.Errorf("pathexpr: empty path expression")
	}
	segs := strings.Split(s, ".")
	for i, seg := range segs {
		if seg == "" {
			return Path{}, fmt.Errorf("pathexpr: empty segment %d in %q", i, s)
		}
	}
	p := Path{Root: segs[0]}
	if len(segs) > 1 {
		p.Labels = append(p.Labels, segs[1:]...)
	}
	return p, nil
}

// MustParse is Parse that panics on error, for tests and literals.
func MustParse(s string) Path {
	p, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return p
}

// String renders the path in the paper's dotted notation.
func (p Path) String() string {
	if len(p.Labels) == 0 {
		return p.Root
	}
	return p.Root + "." + strings.Join(p.Labels, ".")
}

// Len returns the number of edge labels in the expression.
func (p Path) Len() int { return len(p.Labels) }

// matchLabel reports whether an edge label satisfies a pattern label.
func matchLabel(pattern, label model.Label) bool {
	return pattern == Wildcard || pattern == label
}

// Levels returns the level sets of the expression over g:
// level 0 is {p.Root} (empty when g lacks it), and level i is the set of
// objects reachable from level i−1 via an edge labeled p.Labels[i−1]. In a
// DAG the same object may appear in several levels.
func (p Path) Levels(g *graph.Graph) []map[model.ObjectID]bool {
	levels := make([]map[model.ObjectID]bool, p.Len()+1)
	levels[0] = map[model.ObjectID]bool{}
	if g.HasNode(p.Root) {
		levels[0][p.Root] = true
	}
	for i, l := range p.Labels {
		next := map[model.ObjectID]bool{}
		for o := range levels[i] {
			g.EachChild(o, func(child, label string) {
				if matchLabel(l, label) {
					next[child] = true
				}
			})
		}
		levels[i+1] = next
	}
	return levels
}

// Targets returns the objects the expression denotes over g — the set
// {o | o ∈ p} of Definition 5.1 — in sorted order.
func (p Path) Targets(g *graph.Graph) []model.ObjectID {
	levels := p.Levels(g)
	last := levels[p.Len()]
	out := make([]model.ObjectID, 0, len(last))
	for o := range last {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

// Matches reports whether o ∈ p over g.
func (p Path) Matches(g *graph.Graph, o model.ObjectID) bool {
	last := p.Levels(g)[p.Len()]
	return last[o]
}

// Plan is the structural skeleton of an ancestor projection: per-level kept
// object sets and the kept edges. Level len(Labels) holds the matched
// objects; lower levels hold their path ancestors. Only objects and edges
// lying on a complete root-to-match path are kept (Definition 5.2).
type Plan struct {
	Path Path
	// Keep[i] is the set of level-i objects on some complete match path.
	Keep []map[model.ObjectID]bool
	// Edges holds the kept edges.
	Edges []graph.Edge
}

// NewPlan computes the ancestor-projection plan of p over g, restricted to
// the target set targets (pass nil to keep every matched object — the plain
// ancestor projection; pass a subset for point queries, which keep a single
// object and its path ancestors, Section 6.2).
func NewPlan(g *graph.Graph, p Path, targets map[model.ObjectID]bool) Plan {
	levels := p.Levels(g)
	n := p.Len()
	keep := make([]map[model.ObjectID]bool, n+1)
	keep[n] = map[model.ObjectID]bool{}
	for o := range levels[n] {
		if targets == nil || targets[o] {
			keep[n][o] = true
		}
	}
	var edges []graph.Edge
	for i := n - 1; i >= 0; i-- {
		keep[i] = map[model.ObjectID]bool{}
		for o := range levels[i] {
			g.EachChild(o, func(child, label string) {
				if matchLabel(p.Labels[i], label) && keep[i+1][child] {
					keep[i][o] = true
					edges = append(edges, graph.Edge{From: o, To: child, Label: label})
				}
			})
		}
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].From != edges[b].From {
			return edges[a].From < edges[b].From
		}
		return edges[a].To < edges[b].To
	})
	// Deduplicate edges (the same edge can be rediscovered when an object
	// occurs in several levels of a DAG).
	w := 0
	for i, e := range edges {
		if i == 0 || e != edges[w-1] {
			edges[w] = e
			w++
		}
	}
	return Plan{Path: p, Keep: keep, Edges: edges[:w]}
}

// Kept returns the union of all kept level sets plus the expression root,
// in sorted order: the vertex set V′ of Definition 5.2.
func (pl Plan) Kept() []model.ObjectID {
	all := map[model.ObjectID]bool{pl.Path.Root: true}
	for _, k := range pl.Keep {
		for o := range k {
			all[o] = true
		}
	}
	out := make([]model.ObjectID, 0, len(all))
	for o := range all {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

// IsEmpty reports whether no object matched the expression (the projection
// result is the bare root).
func (pl Plan) IsEmpty() bool { return len(pl.Keep[len(pl.Keep)-1]) == 0 }

// Matched returns the kept matched objects (deepest level), sorted.
func (pl Plan) Matched() []model.ObjectID {
	last := pl.Keep[len(pl.Keep)-1]
	out := make([]model.ObjectID, 0, len(last))
	for o := range last {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

// ProjectAncestors applies the ancestor projection Λ_p of Definition 5.2 to
// a deterministic semistructured instance: the result contains the matched
// objects, their path ancestors, the root, and exactly the edges on
// complete match paths, with labels preserved. Types and values of kept
// typed leaves are preserved; matched objects whose children are projected
// away become untyped leaves, exactly as in the paper's Figure 4.
func ProjectAncestors(s *model.Instance, p Path) *model.Instance {
	out := model.NewInstance(s.Root())
	for _, t := range s.Types() {
		// Error impossible: types were valid in the source instance.
		_ = out.RegisterType(t)
	}
	if p.Root != s.Root() {
		return out
	}
	pl := NewPlan(s.Graph(), p, nil)
	kept := map[model.ObjectID]bool{}
	for _, o := range pl.Kept() {
		kept[o] = true
		out.AddObject(o)
	}
	for _, e := range pl.Edges {
		// Error impossible: source edges are uniquely labeled.
		_ = out.AddEdge(e.From, e.To, e.Label)
	}
	// Preserve type/value for kept objects that remain leaves.
	for o := range kept {
		if !out.IsLeaf(o) {
			continue
		}
		if t, ok := s.TypeOf(o); ok {
			if v, okV := s.ValueOf(o); okV {
				// A typed leaf of the source keeps its assignment; a source
				// non-leaf that became a leaf here has no type to carry.
				if s.IsLeaf(o) {
					_ = out.SetLeaf(o, t.Name, v)
				}
			}
		}
	}
	return out
}

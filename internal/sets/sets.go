// Package sets implements the set machinery underlying the PXML model:
// canonical object sets, bounded subset enumeration (the potential l-child
// sets of Definition 3.5), minimal hitting sets (footnote 1 of the paper,
// used by Definition 3.6 to assemble potential child sets), and integer
// cardinality intervals (the card function of Definition 3.4).
package sets

import (
	"fmt"
	"sort"
	"strings"
)

// Set is a canonical set of object identifiers: sorted ascending with no
// duplicates. The zero value is the empty set.
type Set []string

// NewSet returns the canonical set holding the given ids.
func NewSet(ids ...string) Set {
	if len(ids) == 0 {
		return nil
	}
	s := make(Set, len(ids))
	copy(s, ids)
	sort.Strings(s)
	// Deduplicate in place.
	w := 0
	for i, id := range s {
		if i == 0 || id != s[w-1] {
			s[w] = id
			w++
		}
	}
	return s[:w]
}

// FromSorted returns the canonical set over ids when they are already
// strictly ascending, adopting the slice without copying; otherwise it
// falls back to NewSet. Bulk loaders that decode members in canonical
// order use it to skip the sort and the defensive copy — the caller must
// not reuse the slice afterwards.
func FromSorted(ids []string) Set {
	if len(ids) == 0 {
		return nil
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			return NewSet(ids...)
		}
	}
	return Set(ids)
}

// Key returns a canonical string key for the set, usable as a map key.
func (s Set) Key() string {
	return strings.Join(s, "\x1f")
}

// String renders the set as {a, b, c} for human-readable output.
func (s Set) String() string {
	return "{" + strings.Join(s, ", ") + "}"
}

// Len returns the cardinality of the set.
func (s Set) Len() int { return len(s) }

// IsEmpty reports whether the set has no members.
func (s Set) IsEmpty() bool { return len(s) == 0 }

// Contains reports whether id is a member.
func (s Set) Contains(id string) bool {
	i := sort.SearchStrings(s, id)
	return i < len(s) && s[i] == id
}

// Equal reports whether the two sets have identical members.
func (s Set) Equal(t Set) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every member of s is a member of t.
func (s Set) SubsetOf(t Set) bool {
	if len(s) > len(t) {
		return false
	}
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] == t[j]:
			i++
			j++
		case s[i] > t[j]:
			j++
		default:
			return false
		}
	}
	return i == len(s)
}

// Union returns s ∪ t as a new canonical set.
func (s Set) Union(t Set) Set {
	out := make(Set, 0, len(s)+len(t))
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			out = append(out, s[i])
			i++
		case s[i] > t[j]:
			out = append(out, t[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, t[j:]...)
	return out
}

// Intersect returns s ∩ t as a new canonical set.
func (s Set) Intersect(t Set) Set {
	var out Set
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			i++
		case s[i] > t[j]:
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	return out
}

// Minus returns s \ t as a new canonical set.
func (s Set) Minus(t Set) Set {
	var out Set
	j := 0
	for _, id := range s {
		for j < len(t) && t[j] < id {
			j++
		}
		if j < len(t) && t[j] == id {
			continue
		}
		out = append(out, id)
	}
	return out
}

// Clone returns a copy of the set.
func (s Set) Clone() Set {
	if s == nil {
		return nil
	}
	c := make(Set, len(s))
	copy(c, s)
	return c
}

// Interval is an integer-valued closed interval [Min, Max], the codomain of
// the card function (Definition 3.4, item 5).
type Interval struct {
	Min, Max int
}

// Validate reports an error unless 0 ≤ Min ≤ Max, the constraint the paper
// imposes on card.
func (iv Interval) Validate() error {
	if iv.Min < 0 {
		return fmt.Errorf("sets: interval min %d < 0", iv.Min)
	}
	if iv.Max < iv.Min {
		return fmt.Errorf("sets: interval max %d < min %d", iv.Max, iv.Min)
	}
	return nil
}

// Contains reports whether k lies within [Min, Max].
func (iv Interval) Contains(k int) bool { return iv.Min <= k && k <= iv.Max }

// String renders the interval in the paper's [min, max] notation.
func (iv Interval) String() string { return fmt.Sprintf("[%d,%d]", iv.Min, iv.Max) }

// BoundedSubsets returns every subset of universe whose cardinality lies in
// the interval card, in a deterministic order (by size, then lexicographic).
// This is exactly the set PL(o, l) of potential l-child sets (Definition
// 3.5) when universe = lch(o, l). The universe must be canonical. The number
// of subsets can be exponential in len(universe); callers guard with
// CountBoundedSubsets when the universe may be large.
func BoundedSubsets(universe Set, card Interval) []Set {
	n := len(universe)
	lo, hi := card.Min, card.Max
	if hi > n {
		hi = n
	}
	if lo > hi {
		return nil
	}
	var out []Set
	cur := make([]string, 0, hi)
	var rec func(start, size int)
	rec = func(start, size int) {
		if len(cur) == size {
			out = append(out, NewSet(cur...))
			return
		}
		// Prune: not enough elements remain.
		need := size - len(cur)
		for i := start; i <= n-need; i++ {
			cur = append(cur, universe[i])
			rec(i+1, size)
			cur = cur[:len(cur)-1]
		}
	}
	for size := lo; size <= hi; size++ {
		rec(0, size)
	}
	return out
}

// CountBoundedSubsets returns the number of subsets BoundedSubsets would
// produce, capped at limit (it returns limit+1 as soon as the count would
// exceed limit), without materializing them.
func CountBoundedSubsets(n int, card Interval, limit int) int {
	lo, hi := card.Min, card.Max
	if hi > n {
		hi = n
	}
	total := 0
	for size := lo; size <= hi; size++ {
		c := 1
		for i := 0; i < size; i++ {
			c = c * (n - i) / (i + 1)
			if c > limit {
				return limit + 1
			}
		}
		total += c
		if total > limit {
			return limit + 1
		}
	}
	return total
}

// Family is an ordered collection of candidate sets, e.g. the potential
// l-child sets for one label.
type Family []Set

// UnionProduct returns { f1 ∪ f2 ∪ … ∪ fk : fi ∈ families[i] }, with
// duplicate results removed, in deterministic order. This "one potential
// set per label" construction is how PXML computes PC(o). When the families
// are pairwise disjoint as collections of sets — which holds whenever at
// most one label has card.min = 0, since per-label universes are disjoint
// and only ∅ can be shared — it coincides exactly with the unions of the
// minimal hitting sets of Definition 3.6 (see MinimalHittingSets), computed
// without the exponential hitting-set search. When several families share
// ∅ the literal hitting-set reading would drop mixed choices such as {A}
// from PC(o) for lch = {A | author}, {T | title} with both minima zero
// (minimality lets {∅} hit every family at once); the paper's own
// experimental setup ("no cardinality constraint", 2^b entries per OPF)
// shows the cross product is the intended semantics, so PXML uses it
// throughout. An empty input yields a single empty set.
func UnionProduct(families []Family) []Set {
	results := []Set{nil}
	for _, fam := range families {
		next := make([]Set, 0, len(results)*len(fam))
		seen := make(map[string]bool, len(results)*len(fam))
		for _, acc := range results {
			for _, f := range fam {
				u := acc.Union(f)
				k := u.Key()
				if !seen[k] {
					seen[k] = true
					next = append(next, u)
				}
			}
		}
		results = next
	}
	sort.Slice(results, func(i, j int) bool { return lessSet(results[i], results[j]) })
	return results
}

// lessSet orders sets by size, then lexicographically, giving a stable
// total order for enumeration output.
func lessSet(a, b Set) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// SortSets sorts a slice of sets in the canonical order used by this
// package (by size, then lexicographically).
func SortSets(ss []Set) {
	sort.Slice(ss, func(i, j int) bool { return lessSet(ss[i], ss[j]) })
}

// MinimalHittingSets returns all minimal hitting sets of the given families
// per footnote 1 of the paper: H hits S = {S₁,…,Sₙ} iff H ∩ Sᵢ ≠ ∅ for all
// i, and no proper subset of H also hits S. Each element of a family here
// is itself a Set, and hitting sets are sets OF those sets, so the result
// is a slice of Families. Families must be non-empty for a hitting set to
// exist; if any family is empty the result is nil (nothing can hit it).
//
// This is the literal Definition 3.6 construction; production code paths
// use UnionProduct, and tests assert the two agree for disjoint universes.
func MinimalHittingSets(families []Family) []Family {
	for _, f := range families {
		if len(f) == 0 {
			return nil
		}
	}
	if len(families) == 0 {
		return []Family{nil}
	}
	// Enumerate one choice per family; a chosen multiset, deduplicated,
	// is a candidate hitting set. Then filter to minimal ones.
	var candidates []Family
	cur := make(Family, 0, len(families))
	var rec func(i int)
	rec = func(i int) {
		if i == len(families) {
			candidates = append(candidates, dedupFamily(cur))
			return
		}
		for _, f := range families[i] {
			cur = append(cur, f)
			rec(i + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	candidates = dedupFamilies(candidates)
	var minimal []Family
	for i, h := range candidates {
		isMin := true
		for j, h2 := range candidates {
			if i != j && familySubset(h2, h) && len(h2) < len(h) && hitsAll(h2, families) {
				isMin = false
				break
			}
		}
		// Also check proper subsets of h itself (drop one member).
		if isMin && len(h) > 1 {
			for drop := range h {
				sub := make(Family, 0, len(h)-1)
				sub = append(sub, h[:drop]...)
				sub = append(sub, h[drop+1:]...)
				if hitsAll(sub, families) {
					isMin = false
					break
				}
			}
		}
		if isMin {
			minimal = append(minimal, h)
		}
	}
	return dedupFamilies(minimal)
}

// UnionAll returns the union of every set in the family.
func UnionAll(f Family) Set {
	var u Set
	for _, s := range f {
		u = u.Union(s)
	}
	return u
}

func dedupFamily(f Family) Family {
	seen := make(map[string]bool, len(f))
	out := make(Family, 0, len(f))
	for _, s := range f {
		k := s.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return lessSet(out[i], out[j]) })
	return out
}

func dedupFamilies(fs []Family) []Family {
	seen := make(map[string]bool, len(fs))
	var out []Family
	for _, f := range fs {
		keys := make([]string, len(f))
		for i, s := range f {
			keys[i] = s.Key()
		}
		k := strings.Join(keys, "\x1e")
		if !seen[k] {
			seen[k] = true
			out = append(out, f)
		}
	}
	return out
}

// familySubset reports whether every member set of a appears in b.
func familySubset(a, b Family) bool {
	bk := make(map[string]bool, len(b))
	for _, s := range b {
		bk[s.Key()] = true
	}
	for _, s := range a {
		if !bk[s.Key()] {
			return false
		}
	}
	return true
}

// hitsAll reports whether h intersects every family: for each family there
// is a member of h equal to one of the family's sets.
func hitsAll(h Family, families []Family) bool {
	hk := make(map[string]bool, len(h))
	for _, s := range h {
		hk[s.Key()] = true
	}
	for _, fam := range families {
		hit := false
		for _, s := range fam {
			if hk[s.Key()] {
				hit = true
				break
			}
		}
		if !hit {
			return false
		}
	}
	return true
}

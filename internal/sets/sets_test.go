package sets

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewSetCanonical(t *testing.T) {
	s := NewSet("b", "a", "b", "c", "a")
	if got, want := s, (Set{"a", "b", "c"}); !reflect.DeepEqual(got, want) {
		t.Errorf("NewSet = %v, want %v", got, want)
	}
	if NewSet() != nil {
		t.Error("empty NewSet should be nil")
	}
	if s.Key() == NewSet("a", "b").Key() {
		t.Error("distinct sets share a key")
	}
	if s.String() != "{a, b, c}" {
		t.Errorf("String = %q", s.String())
	}
}

func TestSetOps(t *testing.T) {
	a := NewSet("a", "b", "c")
	b := NewSet("b", "c", "d")
	if got, want := a.Union(b), NewSet("a", "b", "c", "d"); !got.Equal(want) {
		t.Errorf("Union = %v", got)
	}
	if got, want := a.Intersect(b), NewSet("b", "c"); !got.Equal(want) {
		t.Errorf("Intersect = %v", got)
	}
	if got, want := a.Minus(b), NewSet("a"); !got.Equal(want) {
		t.Errorf("Minus = %v", got)
	}
	if !NewSet("b").SubsetOf(a) || NewSet("d").SubsetOf(a) || !Set(nil).SubsetOf(a) {
		t.Error("SubsetOf misbehaves")
	}
	if !a.Contains("b") || a.Contains("z") {
		t.Error("Contains misbehaves")
	}
	c := a.Clone()
	c[0] = "z"
	if a[0] != "a" {
		t.Error("Clone aliases original")
	}
}

func TestQuickSetAlgebraLaws(t *testing.T) {
	gen := func(r *rand.Rand) Set {
		n := r.Intn(6)
		ids := make([]string, n)
		for i := range ids {
			ids[i] = string(rune('a' + r.Intn(8)))
		}
		return NewSet(ids...)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := gen(r), gen(r)
		// Commutativity and inclusion laws.
		if !a.Union(b).Equal(b.Union(a)) || !a.Intersect(b).Equal(b.Intersect(a)) {
			return false
		}
		if !a.Intersect(b).SubsetOf(a) || !a.SubsetOf(a.Union(b)) {
			return false
		}
		// |A∪B| = |A| + |B| − |A∩B|.
		if a.Union(b).Len() != a.Len()+b.Len()-a.Intersect(b).Len() {
			return false
		}
		// (A\B) ∪ (A∩B) = A.
		return a.Minus(b).Union(a.Intersect(b)).Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(20250705))}); err != nil {
		t.Fatal(err)
	}
}

func TestIntervalValidate(t *testing.T) {
	cases := []struct {
		iv Interval
		ok bool
	}{
		{Interval{0, 0}, true},
		{Interval{1, 2}, true},
		{Interval{-1, 2}, false},
		{Interval{3, 2}, false},
	}
	for _, c := range cases {
		err := c.iv.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%v) err=%v, ok=%v", c.iv, err, c.ok)
		}
	}
	if !(Interval{1, 2}).Contains(2) || (Interval{1, 2}).Contains(0) {
		t.Error("Contains misbehaves")
	}
	if (Interval{1, 2}).String() != "[1,2]" {
		t.Error("String format")
	}
}

// TestBoundedSubsetsExample reproduces Example 3.2: lch(B1, author) =
// {A1, A2} with card [1,2] yields potential sets {{A1},{A2},{A1,A2}}.
func TestBoundedSubsetsExample(t *testing.T) {
	got := BoundedSubsets(NewSet("A1", "A2"), Interval{1, 2})
	want := []Set{NewSet("A1"), NewSet("A2"), NewSet("A1", "A2")}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Errorf("subset %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestBoundedSubsetsEdgeCases(t *testing.T) {
	u := NewSet("a", "b", "c")
	if got := BoundedSubsets(u, Interval{0, 0}); len(got) != 1 || !got[0].IsEmpty() {
		t.Errorf("card [0,0] = %v", got)
	}
	if got := BoundedSubsets(u, Interval{4, 9}); got != nil {
		t.Errorf("unsatisfiable card = %v", got)
	}
	if got := BoundedSubsets(u, Interval{0, 3}); len(got) != 8 {
		t.Errorf("full powerset size = %d, want 8", len(got))
	}
	if got := BoundedSubsets(nil, Interval{0, 2}); len(got) != 1 {
		t.Errorf("empty universe = %v", got)
	}
}

func TestCountBoundedSubsetsMatchesEnumeration(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(8)
		lo := r.Intn(4)
		hi := lo + r.Intn(4)
		u := make([]string, n)
		for i := range u {
			u[i] = string(rune('a' + i))
		}
		want := len(BoundedSubsets(NewSet(u...), Interval{lo, hi}))
		got := CountBoundedSubsets(n, Interval{lo, hi}, 1<<20)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(20250705))}); err != nil {
		t.Fatal(err)
	}
}

func TestCountBoundedSubsetsCap(t *testing.T) {
	if got := CountBoundedSubsets(40, Interval{0, 40}, 1000); got != 1001 {
		t.Errorf("capped count = %d, want 1001", got)
	}
}

// TestUnionProductBibliography checks PC(B1) for the Figure 2 instance:
// authors {A1,A2} card [1,2], titles {T1} card [0,1] give exactly the six
// potential child sets listed in the paper's OPF table for B1.
func TestUnionProductBibliography(t *testing.T) {
	authors := Family(BoundedSubsets(NewSet("A1", "A2"), Interval{1, 2}))
	titles := Family(BoundedSubsets(NewSet("T1"), Interval{0, 1}))
	got := UnionProduct([]Family{authors, titles})
	want := []Set{
		NewSet("A1"), NewSet("A2"),
		NewSet("A1", "A2"), NewSet("A1", "T1"), NewSet("A2", "T1"),
		NewSet("A1", "A2", "T1"),
	}
	if len(got) != len(want) {
		t.Fatalf("got %d sets %v, want %d", len(got), got, len(want))
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Errorf("set %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestUnionProductEmptyFamilies(t *testing.T) {
	if got := UnionProduct(nil); len(got) != 1 || !got[0].IsEmpty() {
		t.Errorf("UnionProduct(nil) = %v", got)
	}
	// A family with no candidate sets annihilates the product (no valid
	// child set exists).
	got := UnionProduct([]Family{{NewSet("a")}, {}})
	if len(got) != 0 {
		t.Errorf("annihilated product = %v", got)
	}
}

// TestUnionProductMatchesHittingSets verifies that when the per-label
// families are pairwise disjoint as collections of sets (no shared member,
// in particular at most one family containing ∅), the fast UnionProduct
// computation produces exactly the unions of the minimal hitting sets of
// Definition 3.6. When several families share the empty set (several labels
// with card.min = 0) the hitting-set minimality rule collapses choices and
// the literal definition diverges from the evidently intended one-set-per-
// label semantics used by the paper's experiments; PXML uses UnionProduct.
func TestUnionProductMatchesHittingSets(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nf := 1 + r.Intn(3)
		fams := make([]Family, nf)
		base := 0
		for i := range fams {
			// Disjoint universes across families.
			n := 1 + r.Intn(3)
			u := make([]string, n)
			for j := range u {
				u[j] = string(rune('a' + base + j))
			}
			base += n
			// Only the first family may contain the empty set, keeping
			// family collections pairwise disjoint.
			lo := r.Intn(2)
			if i > 0 {
				lo = 1
			}
			hi := lo + r.Intn(n)
			fams[i] = Family(BoundedSubsets(NewSet(u...), Interval{lo, hi}))
			if len(fams[i]) == 0 {
				fams[i] = Family{NewSet(u[0])}
			}
		}
		fast := UnionProduct(fams)
		hs := MinimalHittingSets(fams)
		slow := make([]Set, 0, len(hs))
		seen := make(map[string]bool)
		for _, h := range hs {
			u := UnionAll(h)
			if !seen[u.Key()] {
				seen[u.Key()] = true
				slow = append(slow, u)
			}
		}
		SortSets(slow)
		if len(fast) != len(slow) {
			return false
		}
		for i := range fast {
			if !fast[i].Equal(slow[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(20250705))}); err != nil {
		t.Fatal(err)
	}
}

func TestMinimalHittingSetsBasics(t *testing.T) {
	// Single family: each member alone is a minimal hitting set.
	fam := Family{NewSet("a"), NewSet("b")}
	hs := MinimalHittingSets([]Family{fam})
	if len(hs) != 2 {
		t.Fatalf("hitting sets = %v", hs)
	}
	// Empty family cannot be hit.
	if hs := MinimalHittingSets([]Family{{}}); hs != nil {
		t.Errorf("hitting sets of empty family = %v", hs)
	}
	// Shared member across two families: {x} hits both and is the unique
	// minimal hitting set containing it; pairs of distinct members are
	// minimal only if they avoid x.
	x := NewSet("x")
	hs = MinimalHittingSets([]Family{{x, NewSet("a")}, {x, NewSet("b")}})
	foundSingleton := false
	for _, h := range hs {
		if len(h) == 1 && h[0].Equal(x) {
			foundSingleton = true
		}
		if len(h) == 2 {
			// A 2-element hitting set must not contain x (else {x} ⊂ H hits).
			for _, s := range h {
				if s.Equal(x) {
					t.Errorf("non-minimal hitting set %v", h)
				}
			}
		}
	}
	if !foundSingleton {
		t.Errorf("missing singleton hitting set {x}: %v", hs)
	}
}

// TestHittingSetDivergenceDocumented pins down the known divergence between
// the literal Definition 3.6 and the union-product semantics PXML uses:
// with two labels that both admit zero children, {∅} is a minimal hitting
// set of both families, so minimality excludes the mixed singleton choices
// from the literal construction while UnionProduct keeps them.
func TestHittingSetDivergenceDocumented(t *testing.T) {
	famA := Family{NewSet(), NewSet("a")}
	famB := Family{NewSet(), NewSet("b")}
	fast := UnionProduct([]Family{famA, famB})
	if len(fast) != 4 { // ∅, {a}, {b}, {a,b}
		t.Fatalf("UnionProduct = %v, want 4 sets", fast)
	}
	hs := MinimalHittingSets([]Family{famA, famB})
	unions := map[string]bool{}
	for _, h := range hs {
		unions[UnionAll(h).Key()] = true
	}
	if unions[NewSet("a").Key()] || unions[NewSet("b").Key()] {
		t.Errorf("literal hitting sets unexpectedly include singletons: %v", hs)
	}
	if !unions[NewSet().Key()] || !unions[NewSet("a", "b").Key()] {
		t.Errorf("literal hitting sets missing ∅ or {a,b}: %v", hs)
	}
}

package enumerate

import (
	"container/heap"
	"context"
	"fmt"

	"pxml/internal/core"
	"pxml/internal/govern"
	"pxml/internal/model"
	"pxml/internal/sets"
)

// topkChoice is one resolved object in a search state, linked to the
// previous choices so states share structure.
type topkChoice struct {
	parent *topkChoice
	object model.ObjectID
	// set is the chosen child set for non-leaves (nil for leaves).
	set sets.Set
	// value is the chosen value for typed leaves.
	value model.Value
	leaf  bool
}

// topkState is a partial assignment: objects before index next (in
// topological order) are resolved; p is the product of the chosen factors.
type topkState struct {
	next int
	p    float64
	last *topkChoice
}

// topkHeap is a max-heap of states by probability.
type topkHeap []*topkState

func (h topkHeap) Len() int           { return len(h) }
func (h topkHeap) Less(i, j int) bool { return h[i].p > h[j].p }
func (h topkHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *topkHeap) Push(x any)        { *h = append(*h, x.(*topkState)) }
func (h *topkHeap) Pop() (out any) {
	old := *h
	n := len(old)
	out = old[n-1]
	*h = old[:n-1]
	return out
}

// TopK returns the k most probable compatible instances of a probabilistic
// instance without enumerating Domain(I): a best-first (uniform-cost)
// search over partial choice assignments in topological order. Because
// every unresolved local factor is ≤ 1, a partial assignment's probability
// upper-bounds all of its completions, so the first k completed states
// popped from the max-heap are exactly the k most probable worlds — the
// answer to "what does this data most likely look like?" on instances far
// too large for Enumerate.
//
// maxExpansions bounds the search (≤ 0 for a default of ~1M pops); the
// search typically needs O(k · |V|) expansions but can degenerate when the
// local distributions are near-uniform.
func TopK(pi *core.ProbInstance, k int, maxExpansions int) ([]World, error) {
	return TopKCtx(context.Background(), pi, k, maxExpansions)
}

// TopKCtx is TopK under a context-carried resource governor: every pop
// charges one work unit plus the entries scanned to expand it, so a
// degenerate (near-uniform) search stops at its budget or cancellation
// instead of grinding through the full expansion cap.
func TopKCtx(ctx context.Context, pi *core.ProbInstance, k int, maxExpansions int) ([]World, error) {
	gov := govern.From(ctx)
	if k <= 0 {
		return nil, fmt.Errorf("enumerate: k must be positive")
	}
	if maxExpansions <= 0 {
		maxExpansions = 1 << 20
	}
	g := pi.WeakInstance.Graph()
	order, err := g.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("enumerate: %w", err)
	}
	root := pi.Root()

	// collectPresent reconstructs the present-object set from the choice
	// chain (root plus every chosen child).
	collectPresent := func(st *topkState) map[model.ObjectID]bool {
		pr := map[model.ObjectID]bool{root: true}
		for c := st.last; c != nil; c = c.parent {
			for _, ch := range c.set {
				pr[ch] = true
			}
		}
		return pr
	}

	pq := &topkHeap{}
	heap.Push(pq, &topkState{next: 0, p: 1})
	var out []World
	expansions := 0
	for pq.Len() > 0 && len(out) < k {
		st := heap.Pop(pq).(*topkState)
		expansions++
		if expansions > maxExpansions {
			return nil, fmt.Errorf("enumerate: TopK exceeded %d expansions", maxExpansions)
		}
		if err := gov.Step(1); err != nil {
			return nil, err
		}
		pr := collectPresent(st)
		// Advance past absent objects.
		i := st.next
		for i < len(order) && !pr[order[i]] {
			i++
		}
		if i == len(order) {
			// Completed: materialize the world.
			s := model.NewInstance(root)
			for _, t := range pi.Types() {
				_ = s.RegisterType(t)
			}
			for o := range pr {
				s.AddObject(o)
			}
			for c := st.last; c != nil; c = c.parent {
				if c.leaf {
					t, _ := pi.TypeOf(c.object)
					// Errors impossible on valid instances: the type is
					// registered and the value is in its domain.
					_ = s.SetLeaf(c.object, t.Name, c.value)
					continue
				}
				for _, ch := range c.set {
					l, _ := pi.LabelOf(c.object, ch)
					_ = s.AddEdge(c.object, ch, l)
				}
			}
			out = append(out, World{S: s, P: st.p})
			continue
		}
		o := order[i]
		if pi.IsLeaf(o) {
			vpf := pi.VPF(o)
			if vpf == nil {
				heap.Push(pq, &topkState{next: i + 1, p: st.p, last: st.last})
				continue
			}
			for _, e := range vpf.Entries() {
				if e.Prob <= 0 {
					continue
				}
				heap.Push(pq, &topkState{
					next: i + 1, p: st.p * e.Prob,
					last: &topkChoice{parent: st.last, object: o, value: e.Value, leaf: true},
				})
			}
			continue
		}
		opf := pi.OPF(o)
		if opf == nil {
			return nil, fmt.Errorf("enumerate: non-leaf %s has no OPF", o)
		}
		if err := gov.Step(int64(opf.Len())); err != nil {
			return nil, err
		}
		for _, e := range opf.Entries() {
			if e.Prob <= 0 {
				continue
			}
			heap.Push(pq, &topkState{
				next: i + 1, p: st.p * e.Prob,
				last: &topkChoice{parent: st.last, object: o, set: e.Set},
			})
		}
	}
	return out, nil
}

package enumerate

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pxml/internal/core"
	"pxml/internal/fixtures"
	"pxml/internal/model"
	"pxml/internal/prob"
	"pxml/internal/sets"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// TestTheorem1Figure2: the local interpretation of Figure 2 induces a
// coherent global interpretation — probabilities over all compatible
// instances sum to one (Theorem 1).
func TestTheorem1Figure2(t *testing.T) {
	pi := fixtures.Figure2()
	gi, err := Enumerate(pi, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(gi.TotalMass(), 1) {
		t.Errorf("total mass = %v, want 1", gi.TotalMass())
	}
	if gi.Len() == 0 {
		t.Fatal("no worlds enumerated")
	}
	// Every enumerated world is compatible and carries exactly its
	// Definition 4.4 probability.
	for _, w := range gi.Worlds() {
		if err := pi.Compatible(w.S); err != nil {
			t.Fatalf("incompatible world: %v\n%s", err, w.S)
		}
		p, err := pi.InstanceProb(w.S)
		if err != nil {
			t.Fatal(err)
		}
		if !approx(p, w.P) {
			t.Errorf("world prob %v != InstanceProb %v\n%s", w.P, p, w.S)
		}
	}
}

// TestEnumerateContainsS1: the Example 4.1 instance appears in the
// enumeration with its hand-computed probability.
func TestEnumerateContainsS1(t *testing.T) {
	pi := fixtures.Figure2()
	gi, err := Enumerate(pi, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := model.NewInstance("R")
	_ = s.RegisterType(model.NewType("title-type", "VQDB", "Lore"))
	_ = s.RegisterType(model.NewType("institution-type", "Stanford", "UMD"))
	for _, e := range [][3]string{
		{"R", "B1", "book"}, {"R", "B2", "book"},
		{"B1", "A1", "author"}, {"B1", "T1", "title"},
		{"B2", "A1", "author"}, {"B2", "A2", "author"},
		{"A1", "I1", "institution"}, {"A2", "I1", "institution"},
	} {
		_ = s.AddEdge(e[0], e[1], e[2])
	}
	_ = s.SetLeaf("T1", "title-type", "VQDB")
	_ = s.SetLeaf("I1", "institution-type", "Stanford")
	if got, want := gi.Prob(s), 0.2*0.35*0.4*0.8*0.5; !approx(got, want) {
		t.Errorf("P(S1) = %v, want %v", got, want)
	}
}

// TestQuickTheorem1: Theorem 1 as a property — random local
// interpretations always induce distributions of mass one, on trees and
// DAGs alike.
func TestQuickTheorem1(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var pi *core.ProbInstance
		if seed%2 == 0 {
			pi = fixtures.RandomTree(r)
		} else {
			pi = fixtures.RandomDAG(r)
		}
		if pi.NumObjects() > 14 {
			return true // keep enumeration tractable
		}
		gi, err := Enumerate(pi, 0)
		if err != nil {
			return false
		}
		return math.Abs(gi.TotalMass()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(20250705))}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTheorem2RoundTrip: Theorem 2 as a property — factoring the
// induced global interpretation recovers a local interpretation that
// reproduces it exactly.
func TestQuickTheorem2RoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var pi *core.ProbInstance
		if seed%2 == 0 {
			pi = fixtures.RandomTree(r)
		} else {
			pi = fixtures.RandomDAG(r)
		}
		if pi.NumObjects() > 11 {
			return true // keep enumeration tractable
		}
		gi, err := Enumerate(pi, 0)
		if err != nil {
			return false
		}
		rec := FactorLocal(gi, pi.Weak())
		ok, err := SatisfiesLocal(gi, rec, 1e-9)
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(20250705))}); err != nil {
		t.Fatal(err)
	}
}

// TestFactorLocalRecoversOPFs: for objects that occur with positive
// probability, the conditional child-set distribution of the global
// interpretation is exactly the original OPF (the independence property of
// Definition 4.5 holds by construction).
func TestFactorLocalRecoversOPFs(t *testing.T) {
	pi := fixtures.Figure2VariedLeaves()
	gi, err := Enumerate(pi, 0)
	if err != nil {
		t.Fatal(err)
	}
	rec := FactorLocal(gi, pi.Weak())
	for _, o := range []string{"R", "B1", "B2", "B3", "A1", "A2", "A3"} {
		orig, got := pi.OPF(o), rec.OPF(o)
		if got == nil {
			// Objects that can never occur need no recovered OPF; every
			// Figure 2 object can occur.
			t.Fatalf("no recovered OPF for %s", o)
		}
		for _, e := range orig.Entries() {
			if !approx(got.Prob(e.Set), e.Prob) {
				t.Errorf("recovered OPF(%s)(%s) = %v, want %v", o, e.Set, got.Prob(e.Set), e.Prob)
			}
		}
	}
	// Recovered VPF for T1 matches the varied leaf distribution.
	if got := rec.VPF("T1"); got == nil || !approx(got.Prob("VQDB"), 0.7) {
		t.Errorf("recovered VPF(T1) = %v", got)
	}
}

// TestNonFactoringGlobal: a correlated global interpretation is NOT
// reproduced by its factored local interpretation — the independence
// condition of Definition 4.5 / Theorem 2 is necessary.
func TestNonFactoringGlobal(t *testing.T) {
	w := core.NewWeakInstance("r")
	w.SetLCh("r", "u", "a")
	w.SetLCh("r", "v", "b")
	w.SetCard("r", "u", 1, 1)
	w.SetCard("r", "v", 1, 1)
	if err := w.RegisterType(model.NewType("bit", "0", "1")); err != nil {
		t.Fatal(err)
	}
	if err := w.SetLeafType("a", "bit"); err != nil {
		t.Fatal(err)
	}
	if err := w.SetLeafType("b", "bit"); err != nil {
		t.Fatal(err)
	}

	mk := func(va, vb string) *model.Instance {
		s := model.NewInstance("r")
		_ = s.RegisterType(model.NewType("bit", "0", "1"))
		_ = s.AddEdge("r", "a", "u")
		_ = s.AddEdge("r", "b", "v")
		_ = s.SetLeaf("a", "bit", va)
		_ = s.SetLeaf("b", "bit", vb)
		return s
	}
	gi := NewGlobalInterpretation()
	gi.Add(mk("0", "0"), 0.5) // values perfectly correlated
	gi.Add(mk("1", "1"), 0.5)

	rec := FactorLocal(gi, w)
	ok, err := SatisfiesLocal(gi, rec, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("correlated global interpretation factored exactly; it must not")
	}
	// The factored version spreads mass over all four value combinations.
	ind, err := Enumerate(rec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := ind.Prob(mk("0", "1")); !approx(got, 0.25) {
		t.Errorf("factored P(0,1) = %v, want 0.25", got)
	}
}

func TestFilterNormalizes(t *testing.T) {
	pi := fixtures.Figure2()
	gi, err := Enumerate(pi, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Condition: B1 exists (cf. Example 5.2's R.book = B1).
	cond, ok := gi.Filter(func(s *model.Instance) bool { return s.HasObject("B1") })
	if !ok {
		t.Fatal("condition has zero probability")
	}
	if !approx(cond.TotalMass(), 1) {
		t.Errorf("conditioned mass = %v", cond.TotalMass())
	}
	// P(B1) = P({B1,B2}) + P({B1,B3}) + P({B1,B2,B3}) = 0.8 at the root;
	// conditioning scales each surviving world by 1/0.8.
	pB1 := gi.ProbWhere(func(s *model.Instance) bool { return s.HasObject("B1") })
	if !approx(pB1, 0.8) {
		t.Errorf("P(B1 exists) = %v, want 0.8", pB1)
	}
	if _, ok := gi.Filter(func(s *model.Instance) bool { return false }); ok {
		t.Error("zero-probability filter succeeded")
	}
}

func TestTransformMerges(t *testing.T) {
	gi := NewGlobalInterpretation()
	a := model.NewInstance("r")
	_ = a.AddEdge("r", "x", "l")
	b := model.NewInstance("r")
	_ = b.AddEdge("r", "y", "l")
	gi.Add(a, 0.25)
	gi.Add(b, 0.75)
	// Collapse everything to the bare root: worlds merge.
	out := gi.Transform(func(s *model.Instance) *model.Instance {
		return model.NewInstance(s.Root())
	})
	if out.Len() != 1 || !approx(out.TotalMass(), 1) {
		t.Errorf("merged worlds = %d mass = %v", out.Len(), out.TotalMass())
	}
	if got := out.Prob(model.NewInstance("r")); !approx(got, 1) {
		t.Errorf("merged prob = %v", got)
	}
}

func TestEnumerateErrors(t *testing.T) {
	// Cyclic weak instance graph.
	pi := core.NewProbInstance("r")
	pi.SetLCh("r", "l", "a")
	pi.SetLCh("a", "l", "b")
	pi.SetLCh("b", "l", "a")
	if _, err := Enumerate(pi, 0); err == nil {
		t.Error("cyclic instance enumerated")
	}

	// World limit.
	big := fixtures.Figure2()
	if _, err := Enumerate(big, 3); err == nil {
		t.Error("world limit not enforced")
	}
}

func TestAddMergesIdenticalWorlds(t *testing.T) {
	gi := NewGlobalInterpretation()
	s := model.NewInstance("r")
	gi.Add(s, 0.3)
	gi.Add(model.NewInstance("r"), 0.2)
	if gi.Len() != 1 || !approx(gi.TotalMass(), 0.5) {
		t.Errorf("len=%d mass=%v", gi.Len(), gi.TotalMass())
	}
}

func TestEqualToleratesMissingWorlds(t *testing.T) {
	a := NewGlobalInterpretation()
	b := NewGlobalInterpretation()
	s := model.NewInstance("r")
	a.Add(s, 1e-12)
	if !a.Equal(b, 1e-9) {
		t.Error("negligible world breaks equality")
	}
	a.Add(fixtures.Figure1(), 0.5)
	if a.Equal(b, 1e-9) {
		t.Error("distinct distributions equal")
	}
}

// TestWorldsOrderStable: Worlds sorts by descending probability.
func TestWorldsOrderStable(t *testing.T) {
	pi := fixtures.Figure2()
	gi, err := Enumerate(pi, 0)
	if err != nil {
		t.Fatal(err)
	}
	ws := gi.Worlds()
	for i := 1; i < len(ws); i++ {
		if ws[i-1].P < ws[i].P {
			t.Fatal("worlds not sorted by probability")
		}
	}
}

// TestEnumerateUntypedLeafUnitFactor: untyped leaves contribute no factor
// and no branching.
func TestEnumerateUntypedLeafUnitFactor(t *testing.T) {
	pi := core.NewProbInstance("r")
	pi.SetLCh("r", "l", "x")
	w := prob.NewOPF()
	w.Put(sets.NewSet("x"), 0.6)
	w.Put(sets.NewSet(), 0.4)
	pi.SetOPF("r", w)
	gi, err := Enumerate(pi, 0)
	if err != nil {
		t.Fatal(err)
	}
	if gi.Len() != 2 || !approx(gi.TotalMass(), 1) {
		t.Errorf("len=%d mass=%v", gi.Len(), gi.TotalMass())
	}
}

// TestTopKMatchesEnumeration: the best-first top-k worlds equal the head
// of the fully enumerated, probability-sorted world list.
func TestTopKMatchesEnumeration(t *testing.T) {
	pi := fixtures.Figure2VariedLeaves()
	gi, err := Enumerate(pi, 0)
	if err != nil {
		t.Fatal(err)
	}
	full := gi.Worlds()
	for _, k := range []int{1, 3, 10, 500} {
		top, err := TopK(pi, k, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := k
		if want > len(full) {
			want = len(full)
		}
		if len(top) != want {
			t.Fatalf("k=%d: got %d worlds, want %d", k, len(top), want)
		}
		for i, w := range top {
			if !approx(w.P, full[i].P) {
				t.Fatalf("k=%d world %d: p=%v, enumeration %v", k, i, w.P, full[i].P)
			}
			// Every returned world carries exactly its Definition 4.4
			// probability.
			p, err := pi.InstanceProb(w.S)
			if err != nil {
				t.Fatalf("k=%d world %d incompatible: %v", k, i, err)
			}
			if !approx(p, w.P) {
				t.Fatalf("k=%d world %d: stored %v, recomputed %v", k, i, w.P, p)
			}
		}
	}
}

// TestQuickTopKMatchesEnumeration: top-3 agrees with enumeration on random
// trees and DAGs.
func TestQuickTopKMatchesEnumeration(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var pi *core.ProbInstance
		if seed%2 == 0 {
			pi = fixtures.RandomTree(r)
		} else {
			pi = fixtures.RandomDAG(r)
		}
		if pi.NumObjects() > 12 {
			return true
		}
		gi, err := Enumerate(pi, 0)
		if err != nil {
			return false
		}
		full := gi.Worlds()
		top, err := TopK(pi, 3, 0)
		if err != nil {
			return false
		}
		for i := range top {
			if i >= len(full) {
				return false
			}
			if math.Abs(top[i].P-full[i].P) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(20250705))}); err != nil {
		t.Fatal(err)
	}
}

// TestTopKLargeInstance: top-1 on an instance whose full domain is
// astronomically large (the whole point of the best-first search).
func TestTopKLargeInstance(t *testing.T) {
	pi := core.NewProbInstance("r")
	// A 40-object chain with strongly skewed choices: keeping every link
	// (0.99 each, ≈0.669 total) beats dropping even the first (0.01), so
	// the most probable world is the full chain.
	prev := "r"
	for i := 0; i < 40; i++ {
		cur := "c" + string(rune('0'+i/10)) + string(rune('0'+i%10))
		pi.SetLCh(prev, "l", cur)
		w := prob.NewOPF()
		w.Put(sets.NewSet(), 0.01)
		w.Put(sets.NewSet(cur), 0.99)
		pi.SetOPF(prev, w)
		prev = cur
	}
	top, err := TopK(pi, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 {
		t.Fatalf("worlds = %d", len(top))
	}
	if top[0].S.NumObjects() != 41 {
		t.Errorf("most probable world has %d objects, want 41", top[0].S.NumObjects())
	}
	want := math.Pow(0.99, 40)
	if !approx(top[0].P, want) {
		t.Errorf("P = %v, want %v", top[0].P, want)
	}
	// Second most probable: drop the FIRST link — the bare root at 0.01
	// beats dropping any later link (0.99^i · 0.01 < 0.01).
	if !approx(top[1].P, 0.01) || top[1].S.NumObjects() != 1 {
		t.Errorf("second world: P = %v, objects = %d", top[1].P, top[1].S.NumObjects())
	}
}

func TestTopKErrors(t *testing.T) {
	pi := fixtures.Figure2()
	if _, err := TopK(pi, 0, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := TopK(pi, 5, 2); err == nil {
		t.Error("expansion cap not enforced")
	}
	cyc := core.NewProbInstance("r")
	cyc.SetLCh("r", "l", "a")
	cyc.SetLCh("a", "l", "b")
	cyc.SetLCh("b", "l", "a")
	if _, err := TopK(cyc, 1, 0); err == nil {
		t.Error("cyclic instance accepted")
	}
}

// TestSampleDistribution: the empirical distribution of forward samples
// converges to the exact possible-worlds distribution.
func TestSampleDistribution(t *testing.T) {
	pi := fixtures.Figure2VariedLeaves()
	gi, err := Enumerate(pi, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(99))
	const n = 20000
	counts := map[string]int{}
	for i := 0; i < n; i++ {
		s, err := Sample(pi, r)
		if err != nil {
			t.Fatal(err)
		}
		counts[s.CanonicalKey()]++
		// Every sample is a compatible world.
		if i < 50 {
			if err := pi.Compatible(s); err != nil {
				t.Fatalf("sample incompatible: %v", err)
			}
		}
	}
	// Compare frequencies against exact probabilities for the most likely
	// worlds (binomial stderr ≤ ~0.004 at n=20000; use 5σ).
	for i, w := range gi.Worlds() {
		if i == 5 {
			break
		}
		freq := float64(counts[w.S.CanonicalKey()]) / n
		tol := 5 * math.Sqrt(w.P*(1-w.P)/n)
		if math.Abs(freq-w.P) > tol {
			t.Errorf("world %d: freq %v vs exact %v (tol %v)", i, freq, w.P, tol)
		}
	}
}

// TestEstimateProbMatchesExact: the Monte-Carlo estimator brackets the
// exact probability within its reported error.
func TestEstimateProbMatchesExact(t *testing.T) {
	pi := fixtures.Figure2()
	gi, err := Enumerate(pi, 0)
	if err != nil {
		t.Fatal(err)
	}
	pred := func(s *model.Instance) bool { return s.HasObject("A1") && s.HasObject("I1") }
	exact := gi.ProbWhere(pred)
	r := rand.New(rand.NewSource(7))
	est, err := EstimateProb(pi, pred, 20000, r)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.P-exact) > 5*est.StdErr+1e-9 {
		t.Errorf("estimate %v vs exact %v", est, exact)
	}
	if est.Samples != 20000 || est.StdErr <= 0 {
		t.Errorf("estimate metadata: %+v", est)
	}
	if est.String() == "" {
		t.Error("empty String")
	}
	if _, err := EstimateProb(pi, pred, 0, r); err == nil {
		t.Error("n=0 accepted")
	}
}

// TestSampleErrors: cyclic instances cannot be sampled.
func TestSampleErrors(t *testing.T) {
	cyc := core.NewProbInstance("r")
	cyc.SetLCh("r", "l", "a")
	cyc.SetLCh("a", "l", "b")
	cyc.SetLCh("b", "l", "a")
	r := rand.New(rand.NewSource(1))
	if _, err := Sample(cyc, r); err == nil {
		t.Error("cyclic instance sampled")
	}
	missing := core.NewProbInstance("r")
	missing.SetLCh("r", "l", "a")
	if _, err := Sample(missing, r); err == nil {
		t.Error("missing OPF accepted")
	}
}

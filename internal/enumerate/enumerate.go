// Package enumerate implements the global semantics of Section 4 by brute
// force: it materializes Domain(W), the set of semistructured instances
// compatible with a probabilistic instance's weak instance (Definition
// 4.1), together with the distribution P_℘ of Definition 4.4. It doubles as
// the paper's implicit baseline — "naively computing the probability by
// marginalizing over all of the compatible instances" (Section 6) — and as
// the oracle against which every efficient algorithm is property-tested.
package enumerate

import (
	"context"
	"fmt"
	"math"
	"sort"

	"pxml/internal/core"
	"pxml/internal/govern"
	"pxml/internal/model"
	"pxml/internal/prob"
	"pxml/internal/sets"
)

// DefaultWorldLimit bounds the number of compatible instances materialized
// by Enumerate. The count grows exponentially with instance size, so the
// oracle is only intended for small inputs.
const DefaultWorldLimit = 200000

// World is one compatible semistructured instance together with its
// probability under the global interpretation.
type World struct {
	S *model.Instance
	P float64
}

// GlobalInterpretation is a distribution over compatible instances
// (Definition 4.2), stored with canonical-key indexing so identical
// instances can be merged and compared.
type GlobalInterpretation struct {
	worlds []World
	index  map[string]int
}

// NewGlobalInterpretation returns an empty distribution.
func NewGlobalInterpretation() *GlobalInterpretation {
	return &GlobalInterpretation{index: make(map[string]int)}
}

// Add accumulates probability p onto instance s, merging with any
// previously added identical instance.
func (gi *GlobalInterpretation) Add(s *model.Instance, p float64) {
	k := s.CanonicalKey()
	if i, ok := gi.index[k]; ok {
		gi.worlds[i].P += p
		return
	}
	gi.index[k] = len(gi.worlds)
	gi.worlds = append(gi.worlds, World{S: s, P: p})
}

// Worlds returns the worlds sorted by descending probability then canonical
// key, for stable output.
func (gi *GlobalInterpretation) Worlds() []World {
	out := make([]World, len(gi.worlds))
	copy(out, gi.worlds)
	sort.Slice(out, func(i, j int) bool {
		if out[i].P != out[j].P {
			return out[i].P > out[j].P
		}
		return out[i].S.CanonicalKey() < out[j].S.CanonicalKey()
	})
	return out
}

// Len returns the number of distinct worlds.
func (gi *GlobalInterpretation) Len() int { return len(gi.worlds) }

// Prob returns the probability of the world identical to s (zero when
// absent).
func (gi *GlobalInterpretation) Prob(s *model.Instance) float64 {
	if i, ok := gi.index[s.CanonicalKey()]; ok {
		return gi.worlds[i].P
	}
	return 0
}

// TotalMass returns Σ_S P(S); Theorem 1 asserts this is 1 for the
// distribution induced by any local interpretation.
func (gi *GlobalInterpretation) TotalMass() float64 {
	total := 0.0
	for _, w := range gi.worlds {
		total += w.P
	}
	return total
}

// ProbWhere returns the total probability of worlds satisfying pred — the
// oracle for point and existence queries.
func (gi *GlobalInterpretation) ProbWhere(pred func(*model.Instance) bool) float64 {
	total := 0.0
	for _, w := range gi.worlds {
		if pred(w.S) {
			total += w.P
		}
	}
	return total
}

// Filter returns the distribution conditioned on pred, normalized per
// Definition 5.6 — the global semantics of selection. The boolean result
// is false when the predicate has probability zero.
func (gi *GlobalInterpretation) Filter(pred func(*model.Instance) bool) (*GlobalInterpretation, bool) {
	out := NewGlobalInterpretation()
	norm := 0.0
	for _, w := range gi.worlds {
		if pred(w.S) {
			out.Add(w.S, w.P)
			norm += w.P
		}
	}
	if norm <= 0 {
		return nil, false
	}
	for i := range out.worlds {
		out.worlds[i].P /= norm
	}
	return out, true
}

// Transform applies fn to every world and merges identical results by
// summing probabilities — the global semantics of projection (Definition
// 5.3: "combine the probabilities of identical instances by summing").
func (gi *GlobalInterpretation) Transform(fn func(*model.Instance) *model.Instance) *GlobalInterpretation {
	out := NewGlobalInterpretation()
	for _, w := range gi.worlds {
		out.Add(fn(w.S), w.P)
	}
	return out
}

// Equal reports whether two distributions agree on every world within tol.
func (gi *GlobalInterpretation) Equal(other *GlobalInterpretation, tol float64) bool {
	keys := make(map[string]bool, len(gi.index)+len(other.index))
	for k := range gi.index {
		keys[k] = true
	}
	for k := range other.index {
		keys[k] = true
	}
	for k := range keys {
		var a, b float64
		if i, ok := gi.index[k]; ok {
			a = gi.worlds[i].P
		}
		if i, ok := other.index[k]; ok {
			b = other.worlds[i].P
		}
		if math.Abs(a-b) > tol {
			return false
		}
	}
	return true
}

// Enumerate materializes Domain(I) with probabilities P_℘. Objects are
// processed in topological order of the weak instance graph; each present
// non-leaf branches over the support of its OPF, and each present typed
// leaf branches over the support of its VPF. limit ≤ 0 uses
// DefaultWorldLimit. An error is returned when the weak instance graph is
// cyclic or the world count exceeds the limit.
func Enumerate(pi *core.ProbInstance, limit int) (*GlobalInterpretation, error) {
	return EnumerateCtx(context.Background(), pi, limit)
}

// EnumerateCtx is Enumerate under a context-carried resource governor:
// each recursion step charges one work unit and each materialized world
// charges its object count, so an over-budget or cancelled enumeration
// unwinds within one branch instead of materializing the full domain.
func EnumerateCtx(ctx context.Context, pi *core.ProbInstance, limit int) (*GlobalInterpretation, error) {
	gov := govern.From(ctx)
	if limit <= 0 {
		limit = DefaultWorldLimit
	}
	g := pi.WeakInstance.Graph()
	order, err := g.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("enumerate: %w", err)
	}
	root := pi.Root()

	gi := NewGlobalInterpretation()
	// partial tracks one enumeration branch: which objects are present,
	// the chosen child set per present non-leaf, and the chosen value per
	// present typed leaf.
	type state struct {
		present map[model.ObjectID]bool
		chosen  map[model.ObjectID]sets.Set
		value   map[model.ObjectID]model.Value
		p       float64
	}
	count := 0
	var overflow error
	var rec func(i int, st *state)
	emit := func(st *state) {
		count++
		if count > limit {
			overflow = fmt.Errorf("enumerate: more than %d compatible instances", limit)
			return
		}
		if err := gov.Step(int64(len(st.present))); err != nil {
			overflow = err
			return
		}
		s := model.NewInstance(root)
		for _, t := range pi.Types() {
			_ = s.RegisterType(t)
		}
		for o := range st.present {
			s.AddObject(o)
		}
		for o, c := range st.chosen {
			for _, child := range c {
				l, _ := pi.LabelOf(o, child)
				// Error impossible: weak instances label each potential
				// child uniquely.
				_ = s.AddEdge(o, child, l)
			}
		}
		for o, v := range st.value {
			t, _ := pi.TypeOf(o)
			// Error impossible: VPF support was validated against the domain.
			_ = s.SetLeaf(o, t.Name, v)
		}
		gi.Add(s, st.p)
	}
	rec = func(i int, st *state) {
		if overflow != nil {
			return
		}
		if err := gov.Step(1); err != nil {
			overflow = err
			return
		}
		if i == len(order) {
			emit(st)
			return
		}
		o := order[i]
		if !st.present[o] {
			rec(i+1, st)
			return
		}
		if pi.IsLeaf(o) {
			vpf := pi.VPF(o)
			if vpf == nil {
				// Untyped leaf: unit factor.
				rec(i+1, st)
				return
			}
			for _, e := range vpf.Entries() {
				if e.Prob <= 0 {
					continue
				}
				st.value[o] = e.Value
				pp := st.p
				st.p *= e.Prob
				rec(i+1, st)
				st.p = pp
				delete(st.value, o)
			}
			return
		}
		opf := pi.OPF(o)
		if opf == nil {
			return // invalid instance; Validate would have caught it
		}
		for _, e := range opf.Entries() {
			if e.Prob <= 0 {
				continue
			}
			st.chosen[o] = e.Set
			pp := st.p
			st.p *= e.Prob
			var added []model.ObjectID
			for _, c := range e.Set {
				if !st.present[c] {
					st.present[c] = true
					added = append(added, c)
				}
			}
			rec(i+1, st)
			for _, c := range added {
				delete(st.present, c)
			}
			st.p = pp
			delete(st.chosen, o)
		}
	}
	st := &state{
		present: map[model.ObjectID]bool{root: true},
		chosen:  map[model.ObjectID]sets.Set{},
		value:   map[model.ObjectID]model.Value{},
		p:       1,
	}
	rec(0, st)
	if overflow != nil {
		return nil, overflow
	}
	return gi, nil
}

// FactorLocal recovers a local interpretation from a global one per the
// proof of Theorem 2: for each object o of the weak instance,
// ℘(o)(c) = P(c_S(o) = c | o ∈ S) — and analogously over values for typed
// leaves. Objects that never occur in a positive-probability world keep no
// local function. The recovered interpretation reproduces the global
// distribution exactly when the global interpretation satisfies W
// (Definition 4.5); SatisfiesLocal checks that.
func FactorLocal(gi *GlobalInterpretation, w *core.WeakInstance) *core.ProbInstance {
	pi := core.FromWeak(w)
	for _, o := range w.Objects() {
		occurs := 0.0
		if w.IsLeaf(o) {
			if _, typed := w.TypeOf(o); !typed {
				continue
			}
			vpf := prob.NewVPF()
			for _, wd := range gi.worlds {
				if !wd.S.HasObject(o) {
					continue
				}
				occurs += wd.P
				v, _ := wd.S.ValueOf(o)
				vpf.Put(v, vpf.Prob(v)+wd.P)
			}
			if occurs <= 0 {
				continue
			}
			norm := prob.NewVPF()
			for _, e := range vpf.Entries() {
				norm.Put(e.Value, e.Prob/occurs)
			}
			pi.SetVPF(o, norm)
			continue
		}
		opf := prob.NewOPF()
		for _, wd := range gi.worlds {
			if !wd.S.HasObject(o) {
				continue
			}
			occurs += wd.P
			opf.Add(sets.NewSet(wd.S.Children(o)...), wd.P)
		}
		if occurs <= 0 {
			continue
		}
		scaled := prob.NewOPF()
		opf.Each(func(c sets.Set, p float64) { scaled.Put(c, p/occurs) })
		pi.SetOPF(o, scaled)
	}
	return pi
}

// SatisfiesLocal reports whether the probabilistic instance's induced
// global distribution equals gi on every world within tol — i.e. whether
// the factorization of Theorem 2 reproduces the global interpretation.
func SatisfiesLocal(gi *GlobalInterpretation, pi *core.ProbInstance, tol float64) (bool, error) {
	induced, err := Enumerate(pi, 0)
	if err != nil {
		return false, err
	}
	return induced.Equal(gi, tol), nil
}

package enumerate

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"pxml/internal/core"
	"pxml/internal/govern"
	"pxml/internal/model"
	"pxml/internal/prob"
	"pxml/internal/sets"
)

// Sample draws one possible world from P_℘ by forward sampling: objects
// are visited in topological order of the weak instance graph; each
// present non-leaf samples a child set from its OPF and each present typed
// leaf samples a value from its VPF. The cost is linear in the number of
// present objects (plus the OPF scan per choice), so sampling scales to
// instances whose exact domain is astronomically large.
func Sample(pi *core.ProbInstance, r *rand.Rand) (*model.Instance, error) {
	g := pi.WeakInstance.Graph()
	order, err := g.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("enumerate: %w", err)
	}
	root := pi.Root()
	s := model.NewInstance(root)
	for _, t := range pi.Types() {
		_ = s.RegisterType(t)
	}
	present := map[model.ObjectID]bool{root: true}
	for _, o := range order {
		if !present[o] {
			continue
		}
		s.AddObject(o)
		if pi.IsLeaf(o) {
			vpf := pi.VPF(o)
			if vpf == nil {
				continue
			}
			u := r.Float64()
			acc := 0.0
			entries := vpf.Entries()
			for i, e := range entries {
				acc += e.Prob
				if u < acc || i == len(entries)-1 {
					t, _ := pi.TypeOf(o)
					if err := s.SetLeaf(o, t.Name, e.Value); err != nil {
						return nil, err
					}
					break
				}
			}
			continue
		}
		opf := pi.OPF(o)
		if opf == nil {
			return nil, fmt.Errorf("enumerate: non-leaf %s has no OPF", o)
		}
		c, err := sampleSet(opf, r)
		if err != nil {
			return nil, fmt.Errorf("enumerate: sampling children of %s: %w", o, err)
		}
		for _, ch := range c {
			l, _ := pi.LabelOf(o, ch)
			if err := s.AddEdge(o, ch, l); err != nil {
				return nil, err
			}
			present[ch] = true
		}
	}
	return s, nil
}

// sampleSet draws one child set from an OPF by inverse-CDF over its
// canonical entry order.
func sampleSet(opf *prob.OPF, r *rand.Rand) (sets.Set, error) {
	entries := opf.Entries()
	if len(entries) == 0 {
		return nil, fmt.Errorf("empty OPF")
	}
	u := r.Float64()
	acc := 0.0
	for i, e := range entries {
		acc += e.Prob
		if u < acc || i == len(entries)-1 {
			return e.Set, nil
		}
	}
	return entries[len(entries)-1].Set, nil
}

// Estimate is a Monte-Carlo estimate of P(pred) with its standard error.
type Estimate struct {
	P       float64
	StdErr  float64
	Samples int
}

// String renders the estimate as p ± stderr.
func (e Estimate) String() string {
	return fmt.Sprintf("%.6f ± %.6f (n=%d)", e.P, e.StdErr, e.Samples)
}

// EstimateProb estimates the probability that a possible world satisfies
// pred by drawing n forward samples. It is the approximate fallback for
// queries on instances too large for Enumerate (and too entangled for the
// tree fast paths): the error shrinks as 1/√n regardless of instance size.
func EstimateProb(pi *core.ProbInstance, pred func(*model.Instance) bool, n int, r *rand.Rand) (Estimate, error) {
	return EstimateProbCtx(context.Background(), pi, pred, n, r)
}

// EstimateProbCtx is EstimateProb under a context-carried resource
// governor: every sample charges the instance's object count against
// the step budget and polls cancellation, so an adversarially large n
// stops within one sample of its budget instead of running all n.
func EstimateProbCtx(ctx context.Context, pi *core.ProbInstance, pred func(*model.Instance) bool, n int, r *rand.Rand) (Estimate, error) {
	if n <= 0 {
		return Estimate{}, fmt.Errorf("enumerate: sample count must be positive")
	}
	gov := govern.From(ctx)
	perSample := int64(pi.NumObjects())
	if perSample < 1 {
		perSample = 1
	}
	hits := 0
	for i := 0; i < n; i++ {
		if err := gov.Step(perSample); err != nil {
			return Estimate{}, err
		}
		if gov == nil && i&63 == 0 {
			if err := ctx.Err(); err != nil {
				return Estimate{}, err
			}
		}
		s, err := Sample(pi, r)
		if err != nil {
			return Estimate{}, err
		}
		if pred(s) {
			hits++
		}
	}
	p := float64(hits) / float64(n)
	return Estimate{
		P:       p,
		StdErr:  math.Sqrt(p * (1 - p) / float64(n)),
		Samples: n,
	}, nil
}

// Package retry implements capped exponential backoff with jitter for
// HTTP requests against a pxmld server.
//
// The serving path sheds load with 429 + Retry-After and answers 503
// while overloaded, draining, or degraded; clients are expected to back
// off and try again rather than hammer the server. Policy.Do implements
// that contract: transient network errors and retryable statuses (429,
// 502, 503, 504) are retried with exponential backoff, jittered over
// [d/2, d] to avoid retry synchronization, and a server-provided
// Retry-After raises the floor of the wait.
package retry

import (
	"context"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"time"
)

// Policy tunes the retry loop. The zero value retries nothing; Default
// is the recommended starting point.
type Policy struct {
	// MaxAttempts is the total number of attempts including the first.
	// Values below 1 mean a single attempt (no retries).
	MaxAttempts int
	// BaseDelay is the wait before the first retry; each subsequent
	// retry doubles it up to MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Zero means no cap.
	MaxDelay time.Duration
	// OnRetry, when set, observes each scheduled retry: the attempt that
	// failed (1-based), the wait before the next one, and the cause.
	OnRetry func(attempt int, wait time.Duration, cause error)
}

// Default is a sensible client policy: 4 attempts, 250ms base, 5s cap.
var Default = Policy{MaxAttempts: 4, BaseDelay: 250 * time.Millisecond, MaxDelay: 5 * time.Second}

// WithAttempts returns a copy of p with MaxAttempts set to n.
func (p Policy) WithAttempts(n int) Policy {
	p.MaxAttempts = n
	return p
}

// RetryableStatus reports whether an HTTP status signals a transient
// server condition worth retrying: load shedding (429), an intermediary
// failure (502, 504), or an overloaded/draining/degraded backend (503).
func RetryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests,
		http.StatusBadGateway,
		http.StatusServiceUnavailable,
		http.StatusGatewayTimeout:
		return true
	}
	return false
}

// RetryAfter parses a Retry-After header as delay seconds or an HTTP
// date, reporting whether a usable value was present. Past dates and
// negative values come back as 0 (retry immediately).
func RetryAfter(h http.Header) (time.Duration, bool) {
	v := h.Get("Retry-After")
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			secs = 0
		}
		return time.Duration(secs) * time.Second, true
	}
	if at, err := http.ParseTime(v); err == nil {
		d := time.Until(at)
		if d < 0 {
			d = 0
		}
		return d, true
	}
	return 0, false
}

// Do runs attempt until it yields a non-retryable outcome or the policy
// is exhausted. attempt must return a fresh response each call; Do owns
// and closes the bodies of retried responses, while the final response
// (if any) is the caller's to close. Network errors from attempt are
// treated as transient. ctx cancellation aborts the backoff wait.
func (p Policy) Do(ctx context.Context, attempt func() (*http.Response, error)) (*http.Response, error) {
	max := p.MaxAttempts
	if max < 1 {
		max = 1
	}
	backoff := p.BaseDelay
	if backoff <= 0 {
		backoff = 250 * time.Millisecond
	}
	var lastErr error
	for n := 1; ; n++ {
		resp, err := attempt()
		if err == nil && !RetryableStatus(resp.StatusCode) {
			return resp, nil
		}
		var cause error
		var floor time.Duration
		if err != nil {
			cause = err
		} else {
			cause = fmt.Errorf("server answered %s", resp.Status)
			if d, ok := RetryAfter(resp.Header); ok {
				floor = d
			}
			// Drain so the connection can be reused for the retry.
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
		}
		lastErr = cause
		if n >= max {
			return nil, fmt.Errorf("after %d attempt(s): %w", n, lastErr)
		}
		// Jitter over [backoff/2, backoff], but never below the
		// server-requested Retry-After.
		wait := backoff/2 + time.Duration(rand.Int64N(int64(backoff/2)+1))
		if wait < floor {
			wait = floor
		}
		if p.OnRetry != nil {
			p.OnRetry(n, wait, cause)
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("retry aborted: %w (last error: %w)", ctx.Err(), lastErr)
		case <-time.After(wait):
		}
		if backoff *= 2; p.MaxDelay > 0 && backoff > p.MaxDelay {
			backoff = p.MaxDelay
		}
	}
}

// Get fetches url with the policy applied, using client (nil means
// http.DefaultClient). The caller closes the returned body.
func (p Policy) Get(ctx context.Context, client *http.Client, url string) (*http.Response, error) {
	if client == nil {
		client = http.DefaultClient
	}
	return p.Do(ctx, func() (*http.Response, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return nil, err
		}
		return client.Do(req)
	})
}

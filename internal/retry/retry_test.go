package retry

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// fast is a policy quick enough for tests but with real backoff logic.
var fast = Policy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond}

func TestRetryableStatus(t *testing.T) {
	for _, code := range []int{429, 502, 503, 504} {
		if !RetryableStatus(code) {
			t.Errorf("RetryableStatus(%d) = false, want true", code)
		}
	}
	for _, code := range []int{200, 201, 400, 404, 422, 500} {
		if RetryableStatus(code) {
			t.Errorf("RetryableStatus(%d) = true, want false", code)
		}
	}
}

func TestRetryAfter(t *testing.T) {
	h := http.Header{}
	if _, ok := RetryAfter(h); ok {
		t.Fatal("missing header parsed as present")
	}
	h.Set("Retry-After", "3")
	if d, ok := RetryAfter(h); !ok || d != 3*time.Second {
		t.Fatalf("seconds form = %v, %v", d, ok)
	}
	h.Set("Retry-After", "-5")
	if d, ok := RetryAfter(h); !ok || d != 0 {
		t.Fatalf("negative seconds = %v, %v; want 0, true", d, ok)
	}
	h.Set("Retry-After", time.Now().Add(2*time.Second).UTC().Format(http.TimeFormat))
	if d, ok := RetryAfter(h); !ok || d <= 0 || d > 2*time.Second {
		t.Fatalf("http-date form = %v, %v", d, ok)
	}
	h.Set("Retry-After", time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat))
	if d, ok := RetryAfter(h); !ok || d != 0 {
		t.Fatalf("past http-date = %v, %v; want 0, true", d, ok)
	}
	h.Set("Retry-After", "soon")
	if _, ok := RetryAfter(h); ok {
		t.Fatal("garbage header parsed as present")
	}
}

func TestDoRecoversAfterShedding(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		io.WriteString(w, "ok")
	}))
	defer ts.Close()

	var retries int
	p := fast
	p.OnRetry = func(attempt int, wait time.Duration, cause error) { retries++ }
	resp, err := p.Get(context.Background(), ts.Client(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok" || hits.Load() != 3 || retries != 2 {
		t.Fatalf("body=%q hits=%d retries=%d", body, hits.Load(), retries)
	}
}

func TestDoGivesUpAfterMaxAttempts(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	_, err := fast.Get(context.Background(), ts.Client(), ts.URL)
	if err == nil {
		t.Fatal("want error after exhausting attempts")
	}
	if hits.Load() != int64(fast.MaxAttempts) {
		t.Fatalf("hits = %d, want %d", hits.Load(), fast.MaxAttempts)
	}
}

func TestDoDoesNotRetryPermanentStatus(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.NotFound(w, r)
	}))
	defer ts.Close()

	resp, err := fast.Get(context.Background(), ts.Client(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || hits.Load() != 1 {
		t.Fatalf("status=%d hits=%d, want one 404", resp.StatusCode, hits.Load())
	}
}

func TestDoRetriesNetworkErrors(t *testing.T) {
	// A server that dies after the first connection: the retry loop must
	// treat the resulting network errors as transient.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	url := ts.URL
	first := true
	var attempts int
	_, err := fast.Do(context.Background(), func() (*http.Response, error) {
		attempts++
		if first {
			first = false
			resp, err := http.Get(url)
			ts.Close() // connection refused from now on
			return resp, err
		}
		return http.Get(url)
	})
	if err == nil {
		t.Fatal("want error once the server is gone")
	}
	if attempts != fast.MaxAttempts {
		t.Fatalf("attempts = %d, want %d", attempts, fast.MaxAttempts)
	}
}

func TestDoHonorsContextDuringBackoff(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := fast.Get(ctx, ts.Client(), ts.URL)
	if err == nil {
		t.Fatal("want error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded in chain", err)
	}
	// The 30s Retry-After floor must not be slept out.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("waited %v despite cancelled context", elapsed)
	}
}

func TestDoSingleAttemptPolicies(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	for _, p := range []Policy{{}, {MaxAttempts: -3}, Default.WithAttempts(1)} {
		hits.Store(0)
		if _, err := p.Get(context.Background(), ts.Client(), ts.URL); err == nil {
			t.Fatal("want error")
		}
		if hits.Load() != 1 {
			t.Fatalf("policy %+v made %d attempts, want 1", p, hits.Load())
		}
	}
}

// Package bench reproduces the experimental study of Section 7 / Figure 7
// of the PXML paper. It generates balanced-tree probabilistic instances
// over sweeps of depth, branching factor and labeling scheme, runs the
// paper's two operations with per-phase timing, and reports series suitable
// for regenerating each Figure 7 panel:
//
//	(a) total query time of ancestor projection vs number of objects,
//	(b) ℘-update time of ancestor projection vs number of objects,
//	(c) total query time of selection vs number of objects.
//
// Total query time follows the paper's definition: "the sum of the time to
// make a copy of the input instance, the time to locate objects satisfying
// a path expression ..., the time to update the structure of the instance
// (for ancestor projection only), the time to update the local
// interpretation, and the time to write the resulting instance onto a
// disk."
package bench

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"pxml/internal/algebra"
	"pxml/internal/codec"
	"pxml/internal/core"
	"pxml/internal/gen"
	"pxml/internal/stats"
)

// Op selects the measured operation.
type Op string

const (
	// OpProjection measures ancestor projection (panels a and b).
	OpProjection Op = "projection"
	// OpSelection measures object selection (panel c).
	OpSelection Op = "selection"
)

// Config parameterizes an experiment sweep. The paper uses depths 3–9,
// branching factors 2–8, both labelings, 10 instances per configuration
// and 10 queries per instance, with instance sizes 100–100000 objects.
type Config struct {
	Op                  Op
	Depths              []int
	Branches            []int
	Labelings           []gen.Labeling
	InstancesPerConfig  int
	QueriesPerInstance  int
	MaxObjects          int
	MaxOPFEntriesPerObj int
	Seed                int64
	// WriteDir is where result instances are written (the disk leg of the
	// total time). Empty uses the OS temp directory.
	WriteDir string
}

// DefaultConfig mirrors the paper's sweep, scaled so a full run finishes in
// minutes rather than hours: 3 instances × 3 queries per configuration and
// a 100k-object cap (the paper's own upper bound).
func DefaultConfig(op Op) Config {
	return Config{
		Op:                 op,
		Depths:             []int{3, 4, 5, 6, 7, 8, 9},
		Branches:           []int{2, 4, 8},
		Labelings:          []gen.Labeling{gen.SL, gen.FR},
		InstancesPerConfig: 3,
		QueriesPerInstance: 3,
		MaxObjects:         100000,
		Seed:               1,
	}
}

// Row is one aggregated configuration point of a panel series.
type Row struct {
	Op        Op
	Labeling  gen.Labeling
	Depth     int
	Branch    int
	Objects   int
	OPFEntry  int // total ℘ entries in the instance
	Queries   int // measurements aggregated
	TotalNs   float64
	CopyNs    float64
	LocateNs  float64
	StructNs  float64
	UpdateNs  float64
	WriteNs   float64
	TotalStdN float64
}

// Run executes the sweep and returns one row per (labeling, branch, depth)
// configuration that fits under MaxObjects, ordered by labeling, branch,
// then object count.
func Run(cfg Config) ([]Row, error) {
	if cfg.InstancesPerConfig <= 0 {
		cfg.InstancesPerConfig = 1
	}
	if cfg.QueriesPerInstance <= 0 {
		cfg.QueriesPerInstance = 1
	}
	if cfg.MaxObjects <= 0 {
		cfg.MaxObjects = 100000
	}
	dir := cfg.WriteDir
	if dir == "" {
		dir = os.TempDir()
	}
	out, err := os.CreateTemp(dir, "pxml-bench-*.out")
	if err != nil {
		return nil, fmt.Errorf("bench: creating scratch file: %w", err)
	}
	defer func() {
		out.Close()
		os.Remove(out.Name())
	}()

	var rows []Row
	seed := cfg.Seed
	for _, lab := range cfg.Labelings {
		for _, branch := range cfg.Branches {
			for _, depth := range cfg.Depths {
				n := gen.NumObjects(depth, branch)
				if n > cfg.MaxObjects {
					continue
				}
				if cfg.MaxOPFEntriesPerObj > 0 && 1<<branch > cfg.MaxOPFEntriesPerObj {
					continue
				}
				row, err := runConfig(cfg, lab, depth, branch, seed, out)
				if err != nil {
					return nil, err
				}
				seed += 1000
				rows = append(rows, row)
			}
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Labeling != rows[j].Labeling {
			return rows[i].Labeling < rows[j].Labeling
		}
		if rows[i].Branch != rows[j].Branch {
			return rows[i].Branch < rows[j].Branch
		}
		return rows[i].Objects < rows[j].Objects
	})
	return rows, nil
}

func runConfig(cfg Config, lab gen.Labeling, depth, branch int, seed int64, scratch *os.File) (Row, error) {
	row := Row{Op: cfg.Op, Labeling: lab, Depth: depth, Branch: branch, Objects: gen.NumObjects(depth, branch)}
	var totals []float64
	qrand := rand.New(rand.NewSource(seed ^ 0x5eed))
	for inst := 0; inst < cfg.InstancesPerConfig; inst++ {
		in, err := gen.Generate(gen.Config{
			Depth: depth, Branch: branch, Labeling: lab,
			LeafDomainSize: 2, Seed: seed + int64(inst),
		})
		if err != nil {
			return Row{}, err
		}
		if inst == 0 {
			row.OPFEntry = in.PI.ComputeStats().OPFEntries
			// One unmeasured warmup query absorbs first-touch effects
			// (page faults, allocator growth) that would otherwise skew
			// the smallest configurations.
			if _, err := MeasureQuery(cfg.Op, in, qrand, scratch); err != nil {
				return Row{}, err
			}
		}
		for q := 0; q < cfg.QueriesPerInstance; q++ {
			m, err := MeasureQuery(cfg.Op, in, qrand, scratch)
			if err != nil {
				return Row{}, err
			}
			row.CopyNs += float64(m.Copy)
			row.LocateNs += float64(m.Locate)
			row.StructNs += float64(m.Structure)
			row.UpdateNs += float64(m.Update)
			row.WriteNs += float64(m.Write)
			totals = append(totals, float64(m.Total()))
			row.Queries++
		}
	}
	if row.Queries > 0 {
		d := float64(row.Queries)
		row.CopyNs /= d
		row.LocateNs /= d
		row.StructNs /= d
		row.UpdateNs /= d
		row.WriteNs /= d
		row.TotalNs = stats.Mean(totals)
		row.TotalStdN = stats.StdDev(totals)
	}
	return row, nil
}

// Measurement is the per-query timing breakdown including the disk write.
type Measurement struct {
	algebra.Timings
	Write time.Duration
}

// Total returns the paper's "total query time".
func (m Measurement) Total() time.Duration {
	return m.Timings.Total() + m.Write
}

// MeasureQuery runs one timed operation (a random query of the paper's
// shape) on one instance, writing the result to scratch. It is exported so
// the top-level testing.B benchmarks can reuse the exact Figure 7 pipeline.
func MeasureQuery(op Op, in *gen.Instance, r *rand.Rand, scratch *os.File) (Measurement, error) {
	var m Measurement
	var result *core.ProbInstance
	switch op {
	case OpProjection:
		p, ok := in.RandomQuery(r)
		if !ok {
			return m, fmt.Errorf("bench: no satisfiable query for depth %d", in.Config.Depth)
		}
		// The paper's pipeline copies the input instance and updates the
		// copy in place; this implementation is copy-on-build — the result
		// instance is materialized directly during the structure phase —
		// so the paper's "copy" leg is folded into Structure here and
		// Copy stays zero for projection. (Selection below does clone,
		// because its result really is a full copy of the input.)
		res, err := algebra.AncestorProjectTimed(in.PI, p, &m.Timings)
		if err != nil {
			return m, err
		}
		result = res
	case OpSelection:
		p, o, ok := in.RandomSelection(r)
		if !ok {
			return m, fmt.Errorf("bench: no satisfiable selection for depth %d", in.Config.Depth)
		}
		res, _, err := algebra.SelectTimed(in.PI, algebra.ObjectCondition{Path: p, Object: o}, &m.Timings)
		if err != nil {
			return m, err
		}
		result = res
	default:
		return m, fmt.Errorf("bench: unknown op %q", op)
	}
	// Write the result to disk, as the paper's total time does.
	start := time.Now()
	if _, err := scratch.Seek(0, io.SeekStart); err != nil {
		return m, err
	}
	if err := scratch.Truncate(0); err != nil {
		return m, err
	}
	if err := codec.EncodeText(scratch, result); err != nil {
		return m, err
	}
	m.Write = time.Since(start)
	return m, nil
}

// WriteCSV renders rows as CSV (one series point per line).
func WriteCSV(w io.Writer, rows []Row) error {
	if _, err := fmt.Fprintln(w, "op,labeling,branch,depth,objects,opf_entries,queries,total_ns,copy_ns,locate_ns,struct_ns,update_ns,write_ns,total_stddev_ns"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%d,%d,%d,%d,%.0f,%.0f,%.0f,%.0f,%.0f,%.0f,%.0f\n",
			r.Op, r.Labeling, r.Branch, r.Depth, r.Objects, r.OPFEntry, r.Queries,
			r.TotalNs, r.CopyNs, r.LocateNs, r.StructNs, r.UpdateNs, r.WriteNs, r.TotalStdN); err != nil {
			return err
		}
	}
	return nil
}

// WriteTable renders rows as an aligned human-readable table, one series
// per (labeling, branch) pair — the shape of the Figure 7 plots.
func WriteTable(w io.Writer, rows []Row) error {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-4s %-3s %-6s %10s %12s %12s %12s %12s\n",
		"op", "lab", "b", "depth", "objects", "total(ms)", "update(ms)", "write(ms)", "copy(ms)")
	last := ""
	for _, r := range rows {
		series := fmt.Sprintf("%s-%s-b%d", r.Op, r.Labeling, r.Branch)
		if series != last && last != "" {
			b.WriteString("\n")
		}
		last = series
		fmt.Fprintf(&b, "%-10s %-4s %-3d %-6d %10d %12.3f %12.3f %12.3f %12.3f\n",
			r.Op, r.Labeling, r.Branch, r.Depth, r.Objects,
			r.TotalNs/1e6, r.UpdateNs/1e6, r.WriteNs/1e6, r.CopyNs/1e6)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// SeriesLinearity fits total time (or update time) against object count
// for each (labeling, branch) series and returns the fits keyed by series
// name — used by EXPERIMENTS.md and tests to check the paper's linearity
// claims.
func SeriesLinearity(rows []Row, metric func(Row) float64) map[string]stats.Fit {
	type key struct {
		lab    gen.Labeling
		branch int
	}
	xs := map[key][]float64{}
	ys := map[key][]float64{}
	for _, r := range rows {
		k := key{r.Labeling, r.Branch}
		xs[k] = append(xs[k], float64(r.Objects))
		ys[k] = append(ys[k], metric(r))
	}
	out := map[string]stats.Fit{}
	for k := range xs {
		if len(xs[k]) < 2 {
			continue
		}
		fit, err := stats.LinearFit(xs[k], ys[k])
		if err != nil {
			continue
		}
		out[fmt.Sprintf("%s-b%d", k.lab, k.branch)] = fit
	}
	return out
}

package bench

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"pxml/internal/gen"
)

// smallConfig runs a tiny sweep fast enough for unit tests.
func smallConfig(op Op) Config {
	return Config{
		Op:                 op,
		Depths:             []int{2, 3},
		Branches:           []int{2},
		Labelings:          []gen.Labeling{gen.SL, gen.FR},
		InstancesPerConfig: 2,
		QueriesPerInstance: 2,
		MaxObjects:         1000,
		Seed:               7,
	}
}

func TestRunProjectionPanel(t *testing.T) {
	rows, err := Run(smallConfig(OpProjection))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // 2 labelings × 1 branch × 2 depths
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Queries != 4 {
			t.Errorf("queries = %d", r.Queries)
		}
		if r.TotalNs <= 0 || r.UpdateNs < 0 || r.WriteNs <= 0 {
			t.Errorf("timings: %+v", r)
		}
		if r.Objects != gen.NumObjects(r.Depth, r.Branch) {
			t.Errorf("object count mismatch: %+v", r)
		}
		if r.OPFEntry <= 0 {
			t.Errorf("OPF entries = %d", r.OPFEntry)
		}
	}
}

func TestRunSelectionPanel(t *testing.T) {
	rows, err := Run(smallConfig(OpSelection))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.CopyNs <= 0 {
			t.Errorf("selection must include copy time: %+v", r)
		}
		if r.StructNs != 0 {
			t.Errorf("selection has no structure-update phase: %+v", r)
		}
	}
}

func TestRunRespectsMaxObjects(t *testing.T) {
	cfg := smallConfig(OpProjection)
	cfg.MaxObjects = 6 // only depth 2, branch 2 (7 objects) is above this
	rows, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Errorf("rows = %d, want 0", len(rows))
	}
}

func TestRunRespectsMaxOPFEntries(t *testing.T) {
	cfg := smallConfig(OpProjection)
	cfg.Branches = []int{2, 4}
	cfg.MaxOPFEntriesPerObj = 4 // excludes branch 4 (2^4 = 16)
	rows, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Branch != 2 {
			t.Errorf("branch %d not excluded", r.Branch)
		}
	}
}

func TestWriteCSVAndTable(t *testing.T) {
	rows, err := Run(smallConfig(OpProjection))
	if err != nil {
		t.Fatal(err)
	}
	var csv bytes.Buffer
	if err := WriteCSV(&csv, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != len(rows)+1 {
		t.Errorf("csv lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "op,labeling,branch") {
		t.Errorf("csv header = %q", lines[0])
	}
	var tbl bytes.Buffer
	if err := WriteTable(&tbl, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "projection") {
		t.Error("table missing op")
	}
}

func TestSeriesLinearity(t *testing.T) {
	cfg := smallConfig(OpProjection)
	cfg.Depths = []int{2, 3, 4, 5}
	rows, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fits := SeriesLinearity(rows, func(r Row) float64 { return r.UpdateNs })
	if len(fits) != 2 {
		t.Fatalf("fits = %v", fits)
	}
	// Instances this small are dominated by timer noise, so only check the
	// fits are well-formed; the pxmlbench tool checks real linearity on
	// full-size sweeps.
	for name, fit := range fits {
		if math.IsNaN(fit.Slope) || math.IsNaN(fit.R2) {
			t.Errorf("%s: malformed fit %+v", name, fit)
		}
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig(OpSelection)
	if cfg.Op != OpSelection || len(cfg.Depths) != 7 || cfg.MaxObjects != 100000 {
		t.Errorf("default config = %+v", cfg)
	}
}

func TestMeasurementTotal(t *testing.T) {
	var m Measurement
	m.Copy, m.Locate, m.Update, m.Write = 1, 2, 3, 4
	if m.Total() != 10 {
		t.Errorf("total = %v", m.Total())
	}
}

package store

// Leader-epoch persistence and fencing. The epoch is a monotonically
// increasing leadership-era number: every promotion of a follower bumps
// it by one, and the winner of each era is the only node allowed to
// originate writes under it. It is the cluster's split-brain guard:
//
//   - A leader stamps its epoch into every stream response; a follower
//     refuses chunks from any epoch lower than the highest it has seen
//     (ErrEpochFenced), so a zombie leader can never feed stale history
//     into a replica that has moved on.
//   - A follower adopts (and persists) any higher epoch the stream
//     carries, so the knowledge of a new era spreads with replication
//     itself.
//   - A leader told of a higher epoch (peer probe, demote call, or a
//     follower's pull request carrying its highest-seen epoch) fences:
//     sticky read-only, exactly like degraded mode but with a recorded
//     successor to redirect writers to. Fencing is persisted, so a
//     fenced leader that restarts stays fenced until an operator wipes
//     it and rejoins it as a follower via the bootstrap path.
//
// The epoch lives in an fsync'd EPOCH file in the data directory,
// written with the same tmp → fsync → rename → dir-fsync protocol as
// the snapshot. A store without the file is at epoch 1, unfenced — the
// state every store ever written by an older build is in. The file is
// deliberately not part of backups: a bootstrapped follower learns the
// leader's epoch from the first stream response instead, and a restored
// store starts a fresh timeline whose era is the restorer's problem.

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// epochFileName is the fsync'd epoch/fencing state file in the data dir.
const epochFileName = "EPOCH"

// epochMagic is the EPOCH file's first line; bump on layout change.
const epochMagic = "pxml-epoch/1"

// ErrEpochFenced rejects an operation because a higher leader epoch has
// superseded this node's: a fenced leader refuses local writes, and a
// follower refuses replicated chunks stamped with an epoch older than
// the highest it has seen. Match with errors.Is.
var ErrEpochFenced = errors.New("store: leader epoch superseded (fenced)")

// ErrNotFollower rejects Promote on a store that is already a leader.
// Match with errors.Is.
var ErrNotFollower = errors.New("store: not a follower")

// Epoch returns the store's current leader epoch: the era this store
// writes under (leader), or the highest era it has observed (follower).
func (s *Store) Epoch() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epoch
}

// IsFollower reports whether the store currently runs in follower mode.
// Unlike Options.Follower it tracks live role flips (Promote).
func (s *Store) IsFollower() bool { return s.roleFollower.Load() }

// Fenced reports whether the store has been fenced by a higher epoch,
// along with that epoch and the successor leader's URL when known.
func (s *Store) Fenced() (fenced bool, epoch uint64, leaderURL string) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.fenced, s.epoch, s.fencedLeader
}

// fencedErrLocked builds the write-rejection error for a fenced store.
// Callers hold s.mu (read or write).
func (s *Store) fencedErrLocked() error {
	if s.fencedLeader != "" {
		return fmt.Errorf("%w: epoch %d at %s", ErrEpochFenced, s.epoch, s.fencedLeader)
	}
	return fmt.Errorf("%w: epoch %d", ErrEpochFenced, s.epoch)
}

// Promote flips a follower store into a leader, live: it bumps the
// epoch (durably, fsync'd, before anything else changes), clears any
// fenced state, re-enables local writes, and turns commit stamping on
// so the new leader's followers can measure staleness. Nothing needs
// reopening — the committer, group commit, archiver, and scrubber
// goroutines run in follower mode too (local writes were rejected
// before reaching them), so the role flip re-arms them by simply
// letting mutations through. The caller must have stopped the
// replication puller first; an in-flight ReplApply serializes against
// the flip on s.mu and subsequent applies fail the follower check.
func (s *Store) Promote() (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.closing {
		return 0, fmt.Errorf("store: closed")
	}
	if s.degraded {
		return 0, s.degradedErrLocked()
	}
	if !s.roleFollower.Load() {
		return 0, fmt.Errorf("%w: promote needs a follower store", ErrNotFollower)
	}
	next := s.epoch + 1
	// Epoch durability gates the promotion: if the new era cannot be
	// recorded, a crash could resurrect this node believing the old era
	// is still valid, and fencing would have nothing to compare against.
	if err := s.persistEpochLocked(next, false, ""); err != nil {
		return 0, fmt.Errorf("store: promote: %w", err)
	}
	s.epoch = next
	s.fenced = false
	s.fencedLeader = ""
	s.roleFollower.Store(false)
	s.stamps.Store(true)
	if s.opts.Logger != nil {
		s.opts.Logger.Printf("store: promoted to leader at epoch %d (pos %s)", next, Pos{Seg: s.seg, Off: s.walBytes})
	}
	return next, nil
}

// Fence marks this store superseded by a higher epoch: local writes are
// rejected with ErrEpochFenced from now on (sticky, like degraded mode)
// and leaderURL — when known — is recorded for write redirects. The
// in-memory fence takes effect even if persisting it fails (refusing
// writes is the safety property; durability of the refusal is best
// effort on a store that cannot write its own EPOCH file). Re-fencing
// at the same epoch merely fills in a previously unknown leader URL.
// On a follower, Fence just adopts the higher epoch — a follower is
// already read-only.
func (s *Store) Fence(epoch uint64, leaderURL string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.closing {
		return fmt.Errorf("store: closed")
	}
	if s.roleFollower.Load() {
		return s.adoptEpochLocked(epoch)
	}
	if epoch < s.epoch || (epoch == s.epoch && !s.fenced) {
		return fmt.Errorf("store: fence at epoch %d refused: local epoch %d is not superseded", epoch, s.epoch)
	}
	if s.fenced && epoch == s.epoch && (leaderURL == "" || leaderURL == s.fencedLeader) {
		return nil // idempotent re-fence
	}
	s.fenced = true
	s.epoch = epoch
	if leaderURL != "" {
		s.fencedLeader = leaderURL
	}
	if s.opts.Logger != nil {
		s.opts.Logger.Printf("store: fenced by epoch %d (leader %q); writes rejected until this node rejoins as a follower", epoch, s.fencedLeader)
	}
	return s.persistEpochLocked(s.epoch, true, s.fencedLeader)
}

// AdoptEpoch records a higher leader epoch observed out of band of an
// apply — e.g. the epoch header on a caught-up 204, which is how a
// freshly bootstrapped follower (already at the leader's position, so
// no chunk ever flows) learns the current era. Lower or equal epochs
// are a no-op; higher ones persist before they are adopted.
func (s *Store) AdoptEpoch(epoch uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.closing {
		return fmt.Errorf("store: closed")
	}
	return s.adoptEpochLocked(epoch)
}

// adoptEpochLocked records a higher epoch observed from the stream
// (persisting it first, so a crash cannot forget the new era). Equal or
// lower epochs are a no-op. Callers hold s.mu.
func (s *Store) adoptEpochLocked(epoch uint64) error {
	if epoch <= s.epoch {
		return nil
	}
	if err := s.persistEpochLocked(epoch, s.fenced, s.fencedLeader); err != nil {
		return err
	}
	if s.opts.Logger != nil {
		s.opts.Logger.Printf("store: adopted leader epoch %d (was %d)", epoch, s.epoch)
	}
	s.epoch = epoch
	return nil
}

// persistEpochLocked durably writes the EPOCH file: temp file in the
// data dir, fsync, atomic rename, directory fsync — the same protocol
// the snapshot uses, so a crash leaves either the old file or the new
// one, never a torn mix. Callers hold s.mu.
func (s *Store) persistEpochLocked(epoch uint64, fenced bool, leaderURL string) error {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%s\nepoch %d\n", epochMagic, epoch)
	if fenced {
		buf.WriteString("fenced 1\n")
	}
	if leaderURL != "" {
		fmt.Fprintf(&buf, "leader %s\n", leaderURL)
	}
	f, err := s.fs.CreateTemp(s.dir, epochFileName+".tmp-*")
	if err != nil {
		return fmt.Errorf("epoch persist: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		s.fs.Remove(tmp)
		return fmt.Errorf("epoch persist: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		s.fs.Remove(tmp)
		return fmt.Errorf("epoch persist fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		s.fs.Remove(tmp)
		return fmt.Errorf("epoch persist close: %w", err)
	}
	if err := s.fs.Rename(tmp, s.path(epochFileName)); err != nil {
		s.fs.Remove(tmp)
		return fmt.Errorf("epoch persist rename: %w", err)
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		return fmt.Errorf("epoch persist dir fsync: %w", err)
	}
	return nil
}

// loadEpoch recovers the epoch/fencing state on open. A missing file is
// epoch 1, unfenced (every pre-epoch store, and every fresh one). A
// file that exists but does not parse is an open error: fencing
// correctness depends on this state, so guessing is worse than failing.
func (s *Store) loadEpoch() error {
	data, err := s.fs.ReadFile(s.path(epochFileName))
	if os.IsNotExist(err) {
		s.epoch = 1
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: read %s: %w", epochFileName, err)
	}
	epoch, fenced, leader, perr := parseEpochFile(data)
	if perr != nil {
		return fmt.Errorf("store: %s: %w", epochFileName, perr)
	}
	s.epoch = epoch
	s.fenced = fenced
	s.fencedLeader = leader
	return nil
}

// parseEpochFile decodes the EPOCH layout written by persistEpochLocked.
func parseEpochFile(data []byte) (epoch uint64, fenced bool, leader string, err error) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	if !sc.Scan() || sc.Text() != epochMagic {
		return 0, false, "", fmt.Errorf("bad magic (want %q)", epochMagic)
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		key, val, _ := strings.Cut(line, " ")
		switch key {
		case "epoch":
			epoch, err = strconv.ParseUint(val, 10, 64)
			if err != nil || epoch == 0 {
				return 0, false, "", fmt.Errorf("bad epoch %q", val)
			}
		case "fenced":
			fenced = val == "1"
		case "leader":
			leader = val
		default:
			// Unknown keys from a future layout within the same magic are
			// ignored, not fatal.
		}
	}
	if serr := sc.Err(); serr != nil {
		return 0, false, "", serr
	}
	if epoch == 0 {
		return 0, false, "", fmt.Errorf("missing epoch line")
	}
	return epoch, fenced, leader, nil
}

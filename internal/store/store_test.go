package store

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"pxml/internal/core"
	"pxml/internal/fixtures"
	"pxml/internal/metrics"
)

// open opens a store in dir with test-friendly defaults, failing the test
// on error.
func open(t *testing.T, dir string, opts Options) (*Store, *RecoveryReport) {
	t.Helper()
	s, rep, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s, rep
}

func mustPut(t *testing.T, s *Store, name string, pi *core.ProbInstance) {
	t.Helper()
	if err := s.Put(name, pi); err != nil {
		t.Fatalf("Put(%s): %v", name, err)
	}
}

func wantInstance(t *testing.T, s *Store, name string, want *core.ProbInstance) {
	t.Helper()
	got, ok := s.Get(name)
	if !ok {
		t.Fatalf("instance %q missing", name)
	}
	if !core.Equal(got, want, 1e-12) {
		t.Fatalf("instance %q differs after reopen", name)
	}
}

func TestPutGetDeleteReopen(t *testing.T) {
	dir := t.TempDir()
	s, rep := open(t, dir, Options{})
	if rep.Recovered != 0 {
		t.Fatalf("fresh store recovered %d instances", rep.Recovered)
	}
	fig := fixtures.Figure2()
	varied := fixtures.Figure2VariedLeaves()
	mustPut(t, s, "fig2", fig)
	mustPut(t, s, "varied", varied)
	mustPut(t, s, "doomed", fig)
	if err := s.Delete("doomed"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := s.Delete("never-existed"); err != nil {
		t.Fatalf("Delete of absent name: %v", err)
	}
	if got, want := s.Names(), []string{"fig2", "varied"}; len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, rep2 := open(t, dir, Options{})
	defer s2.Close()
	if rep2.Recovered != 2 {
		t.Fatalf("reopen recovered %d instances, want 2 (%s)", rep2.Recovered, rep2)
	}
	if len(rep2.Quarantined) != 0 || rep2.TruncatedBytes != 0 {
		t.Fatalf("clean reopen reported damage: %s", rep2)
	}
	wantInstance(t, s2, "fig2", fig)
	wantInstance(t, s2, "varied", varied)
	if _, ok := s2.Get("doomed"); ok {
		t.Fatal("deleted instance resurrected by replay")
	}
}

func TestPutOverwriteLastWins(t *testing.T) {
	dir := t.TempDir()
	s, _ := open(t, dir, Options{})
	mustPut(t, s, "x", fixtures.Figure2())
	want := fixtures.Figure2VariedLeaves()
	mustPut(t, s, "x", want)
	s.Close()

	s2, _ := open(t, dir, Options{})
	defer s2.Close()
	wantInstance(t, s2, "x", want)
}

func TestPutRejectsBadArgs(t *testing.T) {
	s, _ := open(t, t.TempDir(), Options{})
	defer s.Close()
	if err := s.Put("", fixtures.Figure2()); err == nil {
		t.Fatal("Put with empty name succeeded")
	}
	if err := s.Put("x", nil); err == nil {
		t.Fatal("Put with nil instance succeeded")
	}
}

func TestCompactShrinksWALAndPreservesCatalog(t *testing.T) {
	dir := t.TempDir()
	s, _ := open(t, dir, Options{CompactThreshold: -1})
	fig := fixtures.Figure2()
	for i := 0; i < 20; i++ {
		mustPut(t, s, fmt.Sprintf("inst-%02d", i%5), fig)
	}
	if s.WALSize() == 0 {
		t.Fatal("WAL empty after 20 puts")
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if got := s.WALSize(); got != 0 {
		t.Fatalf("WAL size after compact = %d, want 0", got)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotName)); err != nil {
		t.Fatalf("snapshot missing after compact: %v", err)
	}
	s.Close()

	s2, rep := open(t, dir, Options{})
	defer s2.Close()
	if rep.SnapshotRecords != 5 || rep.WALRecords != 0 || rep.Recovered != 5 {
		t.Fatalf("post-compact reopen: %s", rep)
	}
	wantInstance(t, s2, "inst-03", fig)
}

func TestThresholdTriggersBackgroundCompaction(t *testing.T) {
	dir := t.TempDir()
	s, _ := open(t, dir, Options{CompactThreshold: 1}) // every append crosses it
	mustPut(t, s, "a", fixtures.Figure2())
	deadline := time.Now().Add(5 * time.Second)
	for s.WALSize() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("background compaction never ran")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotName)); err != nil {
		t.Fatalf("snapshot missing: %v", err)
	}
	s.Close()
}

func TestSnapshotInterval(t *testing.T) {
	dir := t.TempDir()
	s, _ := open(t, dir, Options{CompactThreshold: -1, SnapshotInterval: 20 * time.Millisecond})
	mustPut(t, s, "a", fixtures.Figure2())
	deadline := time.Now().Add(5 * time.Second)
	for s.WALSize() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("periodic snapshot never ran")
		}
		time.Sleep(5 * time.Millisecond)
	}
	s.Close()
}

func TestFsyncPolicies(t *testing.T) {
	for _, policy := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNever} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			s, _ := open(t, dir, Options{Fsync: policy, FsyncEvery: 10 * time.Millisecond})
			mustPut(t, s, "a", fixtures.Figure2())
			s.Close()
			s2, rep := open(t, dir, Options{})
			defer s2.Close()
			if rep.Recovered != 1 {
				t.Fatalf("policy %s lost the instance across clean close", policy)
			}
		})
	}
}

func TestFsyncMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	s, _ := open(t, t.TempDir(), Options{Fsync: FsyncAlways, Registry: reg})
	mustPut(t, s, "a", fixtures.Figure2())
	mustPut(t, s, "b", fixtures.Figure2())
	s.Close()
	snap := reg.Snapshot()
	if got := snap["store_wal_appends"].(int64); got != 2 {
		t.Fatalf("store_wal_appends = %d, want 2", got)
	}
	if got := snap["store_wal_fsyncs"].(int64); got < 2 {
		t.Fatalf("store_wal_fsyncs = %d, want >= 2 under FsyncAlways", got)
	}
	if got := snap["store_wal_append_bytes"].(int64); got <= 0 {
		t.Fatalf("store_wal_append_bytes = %d, want > 0", got)
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for s, want := range map[string]FsyncPolicy{"always": FsyncAlways, "interval": FsyncInterval, "never": FsyncNever} {
		got, err := ParseFsyncPolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseFsyncPolicy("bogus"); err == nil {
		t.Fatal("ParseFsyncPolicy accepted bogus policy")
	}
}

func TestUseAfterClose(t *testing.T) {
	s, _ := open(t, t.TempDir(), Options{})
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := s.Put("a", fixtures.Figure2()); err == nil {
		t.Fatal("Put after Close succeeded")
	}
	if err := s.Compact(); err == nil {
		t.Fatal("Compact after Close succeeded")
	}
}

// TestConcurrentMutation exercises the store under -race: concurrent
// writers, readers, and explicit compactions.
func TestConcurrentMutation(t *testing.T) {
	s, _ := open(t, t.TempDir(), Options{Fsync: FsyncNever, CompactThreshold: 1 << 12})
	defer s.Close()
	fig := fixtures.Figure2()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 50; i++ {
				name := fmt.Sprintf("inst-%d", r.Intn(10))
				switch r.Intn(3) {
				case 0:
					if err := s.Delete(name); err != nil {
						t.Errorf("Delete: %v", err)
					}
				default:
					if err := s.Put(name, fig); err != nil {
						t.Errorf("Put: %v", err)
					}
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			s.Names()
			s.All()
			s.Len()
			if err := s.Compact(); err != nil {
				t.Errorf("Compact: %v", err)
			}
		}
	}()
	wg.Wait()
}

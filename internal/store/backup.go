package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"

	"pxml/internal/vfs"
)

// Online backup and point-in-time restore.
//
// A backup is a directory holding a copy of the snapshot, a copy of
// every WAL segment, and a MANIFEST.json written last. The manifest is
// the commit point: every file it lists is already durable with the
// listed size and CRC32 when the manifest appears, so a backup without a
// valid manifest is by definition incomplete and Verify rejects it. A
// backup that failed partway can never masquerade as a good one.
//
// Backups are taken online. The only writer activity a backup excludes
// is compaction (which would delete or replace the very files being
// copied — see Compact); appends and rotations continue, because sealed
// segments are immutable and the active segment is copied only up to the
// append offset captured at the start. The captured offset is the
// backup's consistency point: everything acknowledged before Backup
// returned its manifest position is in the backup, bit for bit.
//
// Restore verifies the backup, stages it into a scratch directory,
// optionally extends it with archived segments cut at a WAL position or
// wall-clock time, proves the staged store opens cleanly, and only then
// swaps it into place — renaming any existing data directory aside and
// deleting it last. No step destroys the old data before the new data
// has passed recovery.

// manifestName is the backup manifest file, written last.
const manifestName = "MANIFEST.json"

// ManifestFormat is the backup layout version this package writes.
const ManifestFormat = 1

// ManifestFile describes one file captured in a backup.
type ManifestFile struct {
	Name string `json:"name"`
	Size int64  `json:"size"`
	CRC  uint32 `json:"crc32"`
}

// Manifest records what a backup contains and the exact WAL position it
// is consistent to.
type Manifest struct {
	Format    int    `json:"format"`
	CreatedAt string `json:"created_at"`
	// Pos is the WAL position the backup captures: the append offset of
	// the active segment at the moment the backup view was taken. It is
	// the natural -to-offset target for restoring "exactly this backup".
	Pos Pos `json:"pos"`
	// Instances and WALRecords describe the captured catalog: live
	// instance count and records in the captured WAL suffix.
	Instances  int   `json:"instances"`
	WALRecords int64 `json:"wal_records"`
	// Snapshot is the captured snapshot file; nil when the store had not
	// compacted yet.
	Snapshot *ManifestFile `json:"snapshot,omitempty"`
	// Segments lists the captured WAL segment files, ascending. The last
	// entry is the active segment, cut at Pos.Off.
	Segments []ManifestFile `json:"segments"`
}

// Backup copies a consistent view of the store into destDir (created,
// and required to be empty) and writes its manifest last. The store
// stays fully online: reads, writes, and rotations proceed; only
// compaction waits. On any failure the files already copied are removed
// best-effort and no manifest is written.
func (s *Store) Backup(destDir string) (*Manifest, error) {
	if destDir == "" {
		return nil, fmt.Errorf("store: empty backup directory")
	}
	s.mu.Lock()
	if s.closed || s.closing {
		s.mu.Unlock()
		return nil, fmt.Errorf("store: closed")
	}
	man := &Manifest{
		Format:     ManifestFormat,
		CreatedAt:  time.Now().UTC().Format(time.RFC3339Nano),
		Pos:        Pos{Seg: s.seg, Off: s.walBytes},
		Instances:  s.Len(),
		WALRecords: s.walRecords,
	}
	type copyItem struct {
		name  string
		limit int64 // -1: whole file
	}
	items := make([]copyItem, 0, len(s.sealed)+2)
	items = append(items, copyItem{snapshotName, -1})
	for _, si := range s.sealed {
		items = append(items, copyItem{segmentFile(si.n), si.size})
	}
	// The active segment is copied only up to the offset captured above;
	// appends racing with the copy land beyond it and belong to the next
	// backup.
	items = append(items, copyItem{segmentFile(s.seg), s.walBytes})
	s.backups++
	s.mu.Unlock()
	if s.backupsC != nil {
		s.backupsC.Inc()
	}
	defer func() {
		s.mu.Lock()
		s.backups--
		if s.backups == 0 {
			s.backupsDone.Broadcast()
			// The background loop skips compaction while a backup runs
			// (see compactIfDirty); nudge it now in case the WAL crossed
			// the threshold in the meantime.
			s.maybeKickLocked()
		}
		s.mu.Unlock()
	}()

	if err := requireEmptyDir(s.fs, destDir); err != nil {
		return nil, err
	}
	if err := s.fs.MkdirAll(destDir); err != nil {
		return nil, fmt.Errorf("store: backup: %w", err)
	}
	var written []string
	fail := func(err error) (*Manifest, error) {
		for _, p := range written {
			s.fs.Remove(p)
		}
		return nil, err
	}
	for _, it := range items {
		data, err := s.fs.ReadFile(s.path(it.name))
		if os.IsNotExist(err) {
			if it.name == snapshotName {
				continue // never compacted; the segments carry everything
			}
			return fail(fmt.Errorf("store: backup: %s vanished mid-copy", it.name))
		}
		if err != nil {
			return fail(fmt.Errorf("store: backup read %s: %w", it.name, err))
		}
		if it.limit >= 0 {
			if int64(len(data)) < it.limit {
				return fail(fmt.Errorf("store: backup: %s is %d bytes, expected at least %d", it.name, len(data), it.limit))
			}
			data = data[:it.limit]
		}
		dst := filepath.Join(destDir, it.name)
		written = append(written, dst)
		if err := s.fs.WriteFile(dst, data); err != nil {
			return fail(fmt.Errorf("store: backup write %s: %w", it.name, err))
		}
		if err := s.fs.Sync(dst); err != nil {
			return fail(fmt.Errorf("store: backup fsync %s: %w", it.name, err))
		}
		mf := ManifestFile{Name: it.name, Size: int64(len(data)), CRC: crc32.ChecksumIEEE(data)}
		if it.name == snapshotName {
			man.Snapshot = &mf
		} else {
			man.Segments = append(man.Segments, mf)
		}
	}
	// Manifest last: its appearance commits the backup.
	buf, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fail(fmt.Errorf("store: backup manifest: %w", err))
	}
	buf = append(buf, '\n')
	tmp := filepath.Join(destDir, manifestName+".tmp")
	written = append(written, tmp)
	if err := s.fs.WriteFile(tmp, buf); err != nil {
		return fail(fmt.Errorf("store: backup manifest write: %w", err))
	}
	if err := s.fs.Sync(tmp); err != nil {
		return fail(fmt.Errorf("store: backup manifest fsync: %w", err))
	}
	if err := s.fs.Rename(tmp, filepath.Join(destDir, manifestName)); err != nil {
		return fail(fmt.Errorf("store: backup manifest rename: %w", err))
	}
	if err := s.fs.SyncDir(destDir); err != nil {
		return nil, fmt.Errorf("store: backup dir fsync: %w", err)
	}
	if s.opts.Logger != nil {
		s.opts.Logger.Printf("store: backup of %d instances (%d files, pos %s) written to %s",
			man.Instances, len(man.Segments)+btoi(man.Snapshot != nil), man.Pos, destDir)
	}
	return man, nil
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

// requireEmptyDir fails when dir exists and holds anything.
func requireEmptyDir(fsys vfs.FS, dir string) error {
	entries, err := fsys.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if len(entries) > 0 {
		return fmt.Errorf("store: directory %s is not empty", dir)
	}
	return nil
}

// ReadManifest loads and decodes a backup's manifest. A nil fsys means
// the real filesystem.
func ReadManifest(fsys vfs.FS, backupDir string) (*Manifest, error) {
	if fsys == nil {
		fsys = vfs.OS
	}
	data, err := fsys.ReadFile(filepath.Join(backupDir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("store: backup manifest: %w", err)
	}
	var man Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("store: backup manifest: %w", err)
	}
	if man.Format != ManifestFormat {
		return nil, fmt.Errorf("store: backup manifest format %d, this build reads %d", man.Format, ManifestFormat)
	}
	return &man, nil
}

// VerifyBackup checks a backup end to end: the manifest parses, and
// every file it lists is present with the exact recorded size and CRC32.
// It returns the manifest on success. A nil fsys means the real
// filesystem.
func VerifyBackup(fsys vfs.FS, backupDir string) (*Manifest, error) {
	if fsys == nil {
		fsys = vfs.OS
	}
	man, err := ReadManifest(fsys, backupDir)
	if err != nil {
		return nil, err
	}
	files := make([]ManifestFile, 0, len(man.Segments)+1)
	if man.Snapshot != nil {
		files = append(files, *man.Snapshot)
	}
	files = append(files, man.Segments...)
	for _, mf := range files {
		data, err := fsys.ReadFile(filepath.Join(backupDir, mf.Name))
		if err != nil {
			return nil, fmt.Errorf("store: backup verify %s: %w", mf.Name, err)
		}
		if int64(len(data)) != mf.Size {
			return nil, fmt.Errorf("store: backup verify %s: %d bytes, manifest says %d", mf.Name, len(data), mf.Size)
		}
		if got := crc32.ChecksumIEEE(data); got != mf.CRC {
			return nil, fmt.Errorf("store: backup verify %s: crc32 %08x, manifest says %08x", mf.Name, got, mf.CRC)
		}
	}
	return man, nil
}

// ErrRestoreNonEmpty marks a restore refused because the target data
// directory already holds data and RestoreOptions.Force was not set.
var ErrRestoreNonEmpty = errors.New("store: restore target is not empty (use force to replace it)")

// RestoreOptions configure Restore.
type RestoreOptions struct {
	// Force allows restoring over an existing, non-empty data directory.
	// Even then the old directory is only renamed aside and is deleted
	// only after the restored store has opened cleanly.
	Force bool
	// ArchiveDir, when non-empty, is a WAL archive whose segments extend
	// the backup past its manifest position (point-in-time recovery).
	ArchiveDir string
	// ToPos, when non-nil, cuts replay at the largest frame boundary at
	// or before this WAL position. Without an archive it can also wind a
	// backup back to an earlier position.
	ToPos *Pos
	// ToTime, when non-zero, cuts replay before the first group commit
	// stamped after this instant. Requires segments written with
	// archiving enabled (stamps are only written then).
	ToTime time.Time
	// FS is the filesystem to restore through; nil means the real one.
	FS vfs.FS
}

// RestoreResult reports what a restore produced.
type RestoreResult struct {
	// Manifest is the verified manifest of the source backup.
	Manifest *Manifest
	// Pos is the WAL position of the restored store after any cut. When
	// the restore consulted an archive, the staged segments are
	// renumbered past the archive's history (see Restore) and Pos is in
	// that new numbering.
	Pos Pos
	// Instances is the live catalog size the restored store recovered.
	Instances int
}

// Restore rebuilds dataDir from the backup in backupDir, optionally
// replaying archived WAL segments up to a position or wall-clock cut.
// The backup is verified first; the restored tree is staged next to
// dataDir and proven to open cleanly before anything existing is
// touched; an existing dataDir is renamed aside and deleted only after
// the swap. On failure the previous dataDir is left exactly in place.
//
// A restore that consulted an archive (RestoreOptions.ArchiveDir)
// renumbers the restored segments past the archive's highest number,
// leaving a one-number gap: the restored store is a new timeline, and
// reusing the old numbers would eventually force the archiver to
// overwrite the archived history this restore just replayed. The cut
// target (ToPos/ToTime) is still expressed in the original numbering;
// only the result is renumbered.
func Restore(backupDir, dataDir string, opts RestoreOptions) (*RestoreResult, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = vfs.OS
	}
	if backupDir == "" || dataDir == "" {
		return nil, fmt.Errorf("store: restore needs backup and data directories")
	}
	if opts.ToPos != nil && !opts.ToTime.IsZero() {
		return nil, fmt.Errorf("store: restore takes -to-offset or -to-time, not both")
	}
	man, err := VerifyBackup(fsys, backupDir)
	if err != nil {
		return nil, err
	}
	if entries, err := fsys.ReadDir(dataDir); err == nil && len(entries) > 0 && !opts.Force {
		return nil, fmt.Errorf("%w: %s", ErrRestoreNonEmpty, dataDir)
	} else if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("store: restore: %w", err)
	}

	// Stage the restored tree beside the target so the final swap is a
	// rename, not a copy.
	stage := dataDir + ".restoring"
	if err := removeTree(fsys, stage); err != nil {
		return nil, fmt.Errorf("store: restore: clear stage: %w", err)
	}
	if err := fsys.MkdirAll(stage); err != nil {
		return nil, fmt.Errorf("store: restore: %w", err)
	}
	cleanupStage := true
	defer func() {
		if cleanupStage {
			removeTree(fsys, stage)
		}
	}()
	if man.Snapshot != nil {
		if err := vfs.CopyFile(fsys, filepath.Join(backupDir, snapshotName), filepath.Join(stage, snapshotName)); err != nil {
			return nil, fmt.Errorf("store: restore snapshot: %w", err)
		}
	}
	staged := make([]uint64, 0, len(man.Segments))
	for _, mf := range man.Segments {
		n, ok := parseSegmentFile(mf.Name)
		if !ok {
			return nil, fmt.Errorf("store: restore: manifest lists non-segment file %q", mf.Name)
		}
		if err := vfs.CopyFile(fsys, filepath.Join(backupDir, mf.Name), filepath.Join(stage, mf.Name)); err != nil {
			return nil, fmt.Errorf("store: restore %s: %w", mf.Name, err)
		}
		staged = append(staged, n)
	}

	// Point-in-time extension: overlay the archive's copies from the
	// backup's tail segment forward, stopping at the first gap. The
	// archived copy of the tail segment is a superset of the backup's
	// cut of it, because segments only ever grow before sealing.
	if opts.ArchiveDir != "" {
		archived, err := listSegments(fsys, opts.ArchiveDir)
		if err != nil {
			return nil, fmt.Errorf("store: restore archive: %w", err)
		}
		have := make(map[uint64]bool, len(archived))
		for _, n := range archived {
			have[n] = true
		}
		for n := man.Pos.Seg; have[n]; n++ {
			if err := vfs.CopyFile(fsys, filepath.Join(opts.ArchiveDir, segmentFile(n)), filepath.Join(stage, segmentFile(n))); err != nil {
				return nil, fmt.Errorf("store: restore archived %s: %w", segmentFile(n), err)
			}
			if n > man.Pos.Seg {
				staged = append(staged, n)
			}
		}
	}

	// Apply the cut, dropping or truncating staged segments past it.
	pos, err := applyCut(fsys, stage, staged, man, opts)
	if err != nil {
		return nil, err
	}

	// A restore that consulted an archive renumbers the staged segments
	// past the archive's highest number. The reopened store would
	// otherwise resume appending under segment numbers the archive
	// already holds — with different history beyond the cut — and
	// archiving could never accept those segments without overwriting
	// the very history this restore replayed. The renumbering leaves a
	// permanent one-number gap marking the timeline boundary: archive
	// overlays stop at the first missing number, so a later restore can
	// never splice the two histories together.
	if opts.ArchiveDir != "" {
		pos, err = renumberPastArchive(fsys, stage, opts.ArchiveDir, pos)
		if err != nil {
			return nil, err
		}
	}

	// Prove the staged tree opens cleanly before touching anything that
	// exists. This runs full crash recovery on the staged files.
	val, _, err := Open(stage, Options{FS: fsys})
	if err != nil {
		return nil, fmt.Errorf("store: restored tree fails to open: %w", err)
	}
	instances := val.Len()
	if cerr := val.Close(); cerr != nil {
		return nil, fmt.Errorf("store: restored tree fails to close: %w", cerr)
	}

	// Swap: rename any existing dataDir aside, move the stage in, and
	// only then delete the old tree.
	aside := dataDir + ".pre-restore"
	if _, err := fsys.ReadDir(aside); err == nil {
		return nil, fmt.Errorf("store: restore: leftover %s from an earlier restore; remove it first", aside)
	}
	hadOld := false
	if _, err := fsys.ReadDir(dataDir); err == nil {
		hadOld = true
		if err := fsys.Rename(dataDir, aside); err != nil {
			return nil, fmt.Errorf("store: restore: set old data aside: %w", err)
		}
	}
	if err := fsys.Rename(stage, dataDir); err != nil {
		// Put the old tree back; the stage is intact for inspection.
		if hadOld {
			fsys.Rename(aside, dataDir)
		}
		return nil, fmt.Errorf("store: restore swap: %w", err)
	}
	cleanupStage = false
	if err := fsys.SyncDir(filepath.Dir(dataDir)); err != nil {
		return nil, fmt.Errorf("store: restore: dir fsync: %w", err)
	}
	if hadOld {
		if err := removeTree(fsys, aside); err != nil {
			return nil, fmt.Errorf("store: restore: old data set aside at %s but not removed: %w", aside, err)
		}
	}
	return &RestoreResult{Manifest: man, Pos: pos, Instances: instances}, nil
}

// applyCut trims the staged segment set to the requested position or
// time and returns the resulting WAL position. Without a target it
// keeps everything staged.
func applyCut(fsys vfs.FS, stage string, staged []uint64, man *Manifest, opts RestoreOptions) (Pos, error) {
	endPos := func() (Pos, error) {
		if len(staged) == 0 {
			return Pos{}, nil
		}
		last := staged[len(staged)-1]
		data, err := fsys.ReadFile(filepath.Join(stage, segmentFile(last)))
		if err != nil {
			return Pos{}, fmt.Errorf("store: restore: %w", err)
		}
		return Pos{Seg: last, Off: int64(len(data))}, nil
	}
	drop := func(from int) error {
		for _, n := range staged[from:] {
			if err := fsys.Remove(filepath.Join(stage, segmentFile(n))); err != nil {
				return fmt.Errorf("store: restore cut: %w", err)
			}
		}
		return nil
	}
	switch {
	case opts.ToPos != nil:
		target := *opts.ToPos
		cutSeg := -1
		for i, n := range staged {
			if n == target.Seg {
				cutSeg = i
				break
			}
		}
		if cutSeg < 0 {
			// Target beyond (or before) every staged segment: nothing to
			// trim if it is past the end; error if it names a segment the
			// restore cannot reach.
			if len(staged) > 0 && target.Seg > staged[len(staged)-1] {
				return endPos()
			}
			return Pos{}, fmt.Errorf("store: restore: position %s not covered by backup or archive", target)
		}
		if err := drop(cutSeg + 1); err != nil {
			return Pos{}, err
		}
		staged = staged[:cutSeg+1]
		path := filepath.Join(stage, segmentFile(target.Seg))
		data, err := fsys.ReadFile(path)
		if err != nil {
			return Pos{}, fmt.Errorf("store: restore cut: %w", err)
		}
		cut := frameBoundaryAtOrBefore(data, target.Off)
		if cut < int64(len(data)) {
			if err := fsys.Truncate(path, cut); err != nil {
				return Pos{}, fmt.Errorf("store: restore cut: %w", err)
			}
		}
		return Pos{Seg: target.Seg, Off: cut}, nil
	case !opts.ToTime.IsZero():
		tNano := opts.ToTime.UnixNano()
		for i, n := range staged {
			path := filepath.Join(stage, segmentFile(n))
			data, err := fsys.ReadFile(path)
			if err != nil {
				return Pos{}, fmt.Errorf("store: restore cut: %w", err)
			}
			cut, found := stampAfter(data, tNano)
			if !found {
				continue
			}
			if err := drop(i + 1); err != nil {
				return Pos{}, err
			}
			if cut < int64(len(data)) {
				if err := fsys.Truncate(path, cut); err != nil {
					return Pos{}, fmt.Errorf("store: restore cut: %w", err)
				}
			}
			return Pos{Seg: n, Off: cut}, nil
		}
		return endPos()
	default:
		return endPos()
	}
}

// renumberPastArchive renames the staged segments, in ascending order,
// to fresh consecutive numbers starting two past everything in the
// archive (and past their own current numbers), returning pos remapped
// into the new numbering. A stage whose segments already sit wholly past
// the archive is left alone — its numbers cannot collide.
func renumberPastArchive(fsys vfs.FS, stage, archiveDir string, pos Pos) (Pos, error) {
	archived, err := listSegments(fsys, archiveDir)
	if err != nil {
		return Pos{}, fmt.Errorf("store: restore renumber: %w", err)
	}
	if len(archived) == 0 {
		return pos, nil
	}
	segs, err := listSegments(fsys, stage)
	if err != nil {
		return Pos{}, fmt.Errorf("store: restore renumber: %w", err)
	}
	archMax := archived[len(archived)-1]
	if len(segs) == 0 || segs[0] > archMax {
		return pos, nil
	}
	// base-1 is the gap number: above everything archived and everything
	// staged, used by neither timeline, ever.
	base := archMax + 2
	if top := segs[len(segs)-1]; top+2 > base {
		base = top + 2
	}
	out := pos
	for i, n := range segs {
		to := base + uint64(i)
		if err := fsys.Rename(filepath.Join(stage, segmentFile(n)), filepath.Join(stage, segmentFile(to))); err != nil {
			return Pos{}, fmt.Errorf("store: restore renumber: %w", err)
		}
		if pos.Seg == n {
			out.Seg = to
		}
	}
	if err := fsys.SyncDir(stage); err != nil {
		return Pos{}, fmt.Errorf("store: restore renumber: %w", err)
	}
	return out, nil
}

// frameBoundaryAtOrBefore walks frames from the start and returns the
// largest frame-boundary offset that is at most limit.
func frameBoundaryAtOrBefore(data []byte, limit int64) int64 {
	var off int64
	for off < int64(len(data)) {
		_, size, err := parseFrame(data[off:])
		if err != nil || off+int64(size) > limit {
			break
		}
		off += int64(size)
	}
	return off
}

// stampAfter returns the offset of the first commit stamp with a time
// strictly after tNano. The stamp precedes its batch's records, so
// cutting at that offset excludes the whole batch.
func stampAfter(data []byte, tNano int64) (int64, bool) {
	var off int64
	for off < int64(len(data)) {
		payload, size, err := parseFrame(data[off:])
		if err != nil {
			break
		}
		if rec, derr := decodeRecord(payload); derr == nil && rec.op == opStamp && rec.ts > tNano {
			return off, true
		}
		off += int64(size)
	}
	return int64(len(data)), false
}

// removeTree deletes dir and everything under it through fsys. A missing
// dir is fine.
func removeTree(fsys vfs.FS, dir string) error {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	for _, e := range entries {
		p := filepath.Join(dir, e.Name())
		if e.IsDir() {
			if err := removeTree(fsys, p); err != nil {
				return err
			}
			continue
		}
		if err := fsys.Remove(p); err != nil {
			return err
		}
	}
	return fsys.Remove(dir)
}

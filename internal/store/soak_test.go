package store

// Chaos soak: the whole robustness stack under one randomized harness.
// Each cycle reopens the same data directory, runs concurrent Put/Delete
// traffic while fault-injection rules flip on mid-flight (torn writes,
// failed fsyncs, failed renames, latency), sometimes takes an online
// backup, then kills the store and starts over. Two invariants are
// checked relentlessly:
//
//  1. Zero acknowledged-write loss. Every mutation whose call returned
//     nil must be visible after the next reopen; a mutation that errored
//     may or may not have landed (its bytes can be on disk even when the
//     fsync that would have acknowledged it failed). The harness tracks,
//     per name, the set of states the store is allowed to be in.
//  2. Backups that report success restore byte-identically: every file
//     the manifest lists comes back with the recorded size and CRC, and
//     the restored tree opens cleanly.
//
// Knobs: PXML_SOAK_CYCLES (default 25; `make soak` raises it),
// PXML_SOAK_SEED (default derived from the clock, always logged, so any
// failure is replayable).

import (
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"pxml/internal/core"
	"pxml/internal/fixtures"
	"pxml/internal/vfs"
)

const (
	soakWriters        = 4
	soakNamesPerWriter = 6
	soakOpsPerWriter   = 40
	soakAbsent         = -1 // model state: name not in the catalog
)

// soakValues builds a palette of pairwise-distinguishable instances the
// model can identify observed values against.
func soakValues(t *testing.T, r *rand.Rand) []*core.ProbInstance {
	t.Helper()
	vals := []*core.ProbInstance{fixtures.Figure2()}
	for seed := int64(0); len(vals) < 5 && seed < 64; seed++ {
		cand := fixtures.RandomTree(rand.New(rand.NewSource(r.Int63())))
		distinct := true
		for _, v := range vals {
			if core.Equal(v, cand, 1e-12) {
				distinct = false
				break
			}
		}
		if distinct {
			vals = append(vals, cand)
		}
	}
	if len(vals) < 2 {
		t.Fatal("could not build a distinguishable value palette")
	}
	return vals
}

// soakModel tracks, per instance name, the set of value indices (or
// soakAbsent) the store may legitimately hold.
type soakModel map[string]map[int]bool

func (m soakModel) states(name string) map[int]bool {
	st, ok := m[name]
	if !ok {
		st = map[int]bool{soakAbsent: true}
		m[name] = st
	}
	return st
}

// acknowledge collapses a name to one definite state; hedge widens it.
func (m soakModel) acknowledge(name string, state int) {
	m[name] = map[int]bool{state: true}
}

func (m soakModel) hedge(name string, state int) {
	m.states(name)[state] = true
}

// verify checks every tracked name against the reopened store and
// collapses the model to what was observed.
func (m soakModel) verify(t *testing.T, s *Store, vals []*core.ProbInstance, cycle int) {
	t.Helper()
	for name, possible := range m {
		observed := soakAbsent
		if inst, ok := s.Get(name); ok {
			observed = -2
			for j, v := range vals {
				if core.Equal(inst, v, 1e-12) {
					observed = j
					break
				}
			}
			if observed == -2 {
				t.Fatalf("cycle %d: %s holds a value matching no written instance — corruption", cycle, name)
			}
		}
		if !possible[observed] {
			t.Fatalf("cycle %d: %s observed state %d, allowed %v — acknowledged write lost or phantom write",
				cycle, name, observed, possible)
		}
		m.acknowledge(name, observed)
	}
}

// soakFaults injects a random fault schedule for one cycle. Everything
// here is a failure the store is contractually allowed to survive.
func soakFaults(ff *vfs.FaultFS, r *rand.Rand) {
	n := 1 + r.Intn(3)
	for i := 0; i < n; i++ {
		rule := vfs.Rule{After: r.Intn(20), Times: 1 + r.Intn(4)}
		switch r.Intn(6) {
		case 0:
			rule.Op, rule.Path = vfs.OpWrite, segPrefix
			rule.ShortWrite = 1 + r.Intn(24)
		case 1:
			rule.Op, rule.Path = vfs.OpSync, segPrefix
		case 2:
			rule.Op, rule.Path = vfs.OpWrite, snapshotName
		case 3:
			rule.Op = vfs.OpSyncDir
		case 4:
			rule.Op, rule.Path = vfs.OpRename, ""
		case 5:
			rule.Op, rule.Path = vfs.OpWrite, segPrefix
			rule.Delay = time.Duration(r.Intn(3)) * time.Millisecond
		}
		ff.Inject(rule)
	}
}

// soakBackup takes an online backup mid-traffic. Failure under injected
// faults is legitimate; success is a contract: the backup must verify,
// and must restore byte-identically into a fresh directory.
func soakBackup(t *testing.T, s *Store, scratch string, cycle int) {
	t.Helper()
	bdir := filepath.Join(scratch, fmt.Sprintf("bkup-%d", cycle))
	man, err := s.Backup(bdir)
	if err != nil {
		return // faults won; the manifest-last protocol is tested below anyway
	}
	if _, err := VerifyBackup(nil, bdir); err != nil {
		t.Fatalf("cycle %d: successful backup fails verification: %v", cycle, err)
	}
	target := filepath.Join(scratch, fmt.Sprintf("restored-%d", cycle))
	if _, err := Restore(bdir, target, RestoreOptions{}); err != nil {
		t.Fatalf("cycle %d: verified backup fails to restore: %v", cycle, err)
	}
	files := man.Segments
	if man.Snapshot != nil {
		files = append([]ManifestFile{*man.Snapshot}, files...)
	}
	for _, mf := range files {
		data, err := os.ReadFile(filepath.Join(target, mf.Name))
		if err != nil {
			t.Fatalf("cycle %d: restored %s: %v", cycle, mf.Name, err)
		}
		if int64(len(data)) != mf.Size || crc32.ChecksumIEEE(data) != mf.CRC {
			t.Fatalf("cycle %d: restored %s is not byte-identical to the backup", cycle, mf.Name)
		}
	}
	os.RemoveAll(bdir)
	os.RemoveAll(target)
}

func TestChaosSoak(t *testing.T) {
	cycles := 25
	if v := os.Getenv("PXML_SOAK_CYCLES"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad PXML_SOAK_CYCLES %q", v)
		}
		cycles = n
	} else if testing.Short() {
		cycles = 8
	}
	seed := time.Now().UnixNano()
	if v := os.Getenv("PXML_SOAK_SEED"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("bad PXML_SOAK_SEED %q", v)
		}
		seed = n
	}
	t.Logf("chaos soak: %d cycles, seed %d (replay with PXML_SOAK_SEED=%d)", cycles, seed, seed)
	root := rand.New(rand.NewSource(seed))

	dir := filepath.Join(t.TempDir(), "data")
	arch := filepath.Join(t.TempDir(), "archive")
	scratch := t.TempDir()
	vals := soakValues(t, root)
	model := make(soakModel)

	for cycle := 0; cycle < cycles; cycle++ {
		ff := vfs.NewFaultFS(nil)
		s, rep, err := Open(dir, Options{
			FS:               ff,
			SegmentSize:      512,
			CompactThreshold: 8 << 10,
			ArchiveDir:       arch,
			ArchiveRetention: 32,
			QuarantineMax:    4,
			CommitBatch:      8,
			CommitDelay:      time.Duration(root.Intn(2)) * time.Millisecond,
			ScrubInterval:    50 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("cycle %d: reopen (report %v): %v", cycle, rep, err)
		}
		// Invariant 1: everything the previous cycle acknowledged is here.
		model.verify(t, s, vals, cycle)

		var (
			wg     sync.WaitGroup
			mu     sync.Mutex // guards model merges
			locals = make([]soakModel, soakWriters)
		)
		for w := 0; w < soakWriters; w++ {
			wg.Add(1)
			go func(w int, wr *rand.Rand) {
				defer wg.Done()
				local := make(soakModel)
				// Seed the local view from the global model: this writer
				// owns its names exclusively.
				for i := 0; i < soakNamesPerWriter; i++ {
					name := fmt.Sprintf("w%d-%d", w, i)
					mu.Lock()
					st := model.states(name)
					cp := make(map[int]bool, len(st))
					for k, v := range st {
						cp[k] = v
					}
					mu.Unlock()
					local[name] = cp
				}
				for op := 0; op < soakOpsPerWriter; op++ {
					name := fmt.Sprintf("w%d-%d", w, wr.Intn(soakNamesPerWriter))
					// An op rejected because the store was already degraded
					// wrote nothing (degradation is sticky and checked before
					// the append). But the op that CAUSES degradation also
					// returns ErrDegraded, and its bytes may be durable — a
					// failed fsync does not un-write the file — so only a
					// pre-checked degraded state skips the hedge.
					degradedBefore := s.Health().Degraded
					if wr.Intn(5) == 0 {
						switch err := s.Delete(name); {
						case err == nil:
							local.acknowledge(name, soakAbsent)
						case errors.Is(err, ErrDegraded) && degradedBefore:
							// Rejected outright; state unchanged.
						default:
							local.hedge(name, soakAbsent)
						}
						continue
					}
					j := wr.Intn(len(vals))
					switch err := s.Put(name, vals[j]); {
					case err == nil:
						local.acknowledge(name, j)
					case errors.Is(err, ErrDegraded) && degradedBefore:
					default:
						local.hedge(name, j)
					}
				}
				locals[w] = local
			}(w, rand.New(rand.NewSource(root.Int63())))
		}

		// Let traffic establish, then flip the world into failure.
		time.Sleep(time.Duration(1+root.Intn(3)) * time.Millisecond)
		if cycle%3 != 0 { // every third cycle stays fault-free
			soakFaults(ff, root)
		}
		if cycle%4 == 1 {
			soakBackup(t, s, scratch, cycle)
		}
		wg.Wait()
		for _, local := range locals {
			for name, st := range local {
				model[name] = st
			}
		}
		if root.Intn(3) == 0 {
			s.Compact() // may fail under faults; the store must survive it
		}
		if root.Intn(2) == 0 {
			ff.Reset() // half the cycles close cleanly, half close into faults
		}
		s.Close()
	}

	// Final reopen with a pristine filesystem: the surviving state must
	// still satisfy the model, and the store must be clean and healthy.
	s, rep, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("final reopen (report %v): %v", rep, err)
	}
	defer s.Close()
	model.verify(t, s, vals, cycles)
	if h := s.Health(); h.Degraded {
		t.Fatalf("store degraded after faults were lifted: %+v", h)
	}
}

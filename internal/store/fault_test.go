package store

// Fault-injection suite: every failure here is produced deterministically
// by a vfs.FaultFS, not by killing processes. The matrix covers failed
// and torn WAL appends under Put, snapshot write/fsync/rename failures
// under Compact, a failing final flush under Close, and the background
// loop's retry-then-degrade escalation — asserting in each case that the
// store either recovers cleanly on reopen or degrades read-only instead
// of corrupting.

import (
	"errors"
	"fmt"
	"sync"
	"syscall"
	"testing"
	"time"

	"pxml/internal/fixtures"
	"pxml/internal/metrics"
	"pxml/internal/vfs"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", d, what)
}

func TestPutFsyncFailureDegradesStore(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(nil)
	reg := metrics.NewRegistry()
	s, _ := open(t, dir, Options{Fsync: FsyncAlways, FS: ffs, Registry: reg})
	defer s.Close()
	fig := fixtures.Figure2()
	mustPut(t, s, "keep", fig)

	ffs.FailAll(vfs.OpSync, "wal")
	err := s.Put("lost", fixtures.Figure2VariedLeaves())
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("Put with failing fsync = %v, want ErrDegraded", err)
	}
	if !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("degrading error should carry the injected cause, got %v", err)
	}

	// Sticky: later writes are rejected outright, reads keep serving.
	if err := s.Put("more", fig); !errors.Is(err, ErrDegraded) {
		t.Fatalf("second Put = %v, want ErrDegraded", err)
	}
	if err := s.Delete("keep"); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Delete = %v, want ErrDegraded", err)
	}
	wantInstance(t, s, "keep", fig)
	if _, ok := s.Get("lost"); ok {
		t.Fatal("rejected Put must not install in the catalog")
	}

	h := s.Health()
	if !h.Degraded || h.Reason == "" || h.DegradedSince == "" {
		t.Fatalf("health = %+v, want degraded with reason and timestamp", h)
	}
	if h.FsyncErrors == 0 || h.LastError == "" {
		t.Fatalf("health should count the fsync error: %+v", h)
	}
	if got := reg.Gauge("store_degraded").Value(); got != 1 {
		t.Fatalf("store_degraded gauge = %d, want 1", got)
	}
	if got := reg.Counter("store_fsync_errors").Value(); got == 0 {
		t.Fatal("store_fsync_errors counter not incremented")
	}
}

func TestBackgroundFsyncRetriesThenDegrades(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(nil)
	reg := metrics.NewRegistry()
	s, _ := open(t, dir, Options{
		Fsync: FsyncInterval, FsyncEvery: 10 * time.Millisecond,
		FS: ffs, Registry: reg,
	})
	defer s.Close()
	ffs.FailAll(vfs.OpSync, "wal")
	mustPut(t, s, "a", fixtures.Figure2()) // dirties the WAL, no foreground fsync

	waitFor(t, 15*time.Second, "store to degrade", s.Degraded)
	if err := s.Put("b", fixtures.Figure2()); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Put after degradation = %v, want ErrDegraded", err)
	}
	h := s.Health()
	if h.FsyncErrors < int64(bgMaxAttempts) {
		t.Fatalf("fsync_errors = %d, want >= %d (one per retry attempt)", h.FsyncErrors, bgMaxAttempts)
	}
	if got := reg.Counter("store_bg_retries").Value(); got == 0 {
		t.Fatal("store_bg_retries counter not incremented")
	}
}

func TestBackgroundFsyncTransientErrorRecovers(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(nil)
	reg := metrics.NewRegistry()
	s, _ := open(t, dir, Options{
		Fsync: FsyncInterval, FsyncEvery: 10 * time.Millisecond,
		FS: ffs, Registry: reg,
	})
	defer s.Close()
	// The first two flushes fail, then the disk "heals".
	ffs.Inject(vfs.Rule{Op: vfs.OpSync, Path: "wal", Times: 2})
	mustPut(t, s, "a", fixtures.Figure2())

	waitFor(t, 15*time.Second, "a successful wal fsync", func() bool {
		return reg.Counter("store_wal_fsyncs").Value() > 0
	})
	if s.Degraded() {
		t.Fatal("transient fsync errors must not degrade the store")
	}
	if h := s.Health(); h.FsyncErrors != 2 {
		t.Fatalf("fsync_errors = %d, want 2", h.FsyncErrors)
	}
	// The store keeps accepting writes afterwards.
	mustPut(t, s, "b", fixtures.Figure2VariedLeaves())
}

func TestCompactFaultMatrix(t *testing.T) {
	cases := []struct {
		name string
		rule vfs.Rule
	}{
		{"snapshot write fails", vfs.Rule{Op: vfs.OpWrite, Path: snapshotName + ".tmp-"}},
		{"snapshot torn write", vfs.Rule{Op: vfs.OpWrite, Path: snapshotName + ".tmp-", ShortWrite: 7}},
		{"snapshot fsync fails", vfs.Rule{Op: vfs.OpSync, Path: snapshotName + ".tmp-"}},
		{"snapshot rename fails", vfs.Rule{Op: vfs.OpRename, Path: snapshotName}},
		{"dir fsync fails", vfs.Rule{Op: vfs.OpSyncDir}},
		{"sealed segment remove fails", vfs.Rule{Op: vfs.OpRemove, Path: segPrefix}},
		{"rotation open fails", vfs.Rule{Op: vfs.OpOpenAppend, Path: segPrefix}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			ffs := vfs.NewFaultFS(nil)
			s, _ := open(t, dir, Options{Fsync: FsyncNever, FS: ffs})
			fig := fixtures.Figure2()
			mustPut(t, s, "keep", fig)

			ffs.Inject(tc.rule)
			if err := s.Compact(); err == nil {
				t.Fatal("Compact with injected fault should fail")
			}
			// A foreground compaction failure is retryable: the store
			// stays healthy and writable, and the error is on record.
			if s.Degraded() {
				t.Fatal("foreground compaction failure must not degrade")
			}
			if h := s.Health(); h.CompactErrors == 0 {
				t.Fatalf("compact_errors = %d, want > 0", h.CompactErrors)
			}
			mustPut(t, s, "after", fig)

			// Once the fault clears, compaction succeeds and the full
			// catalog survives a reopen.
			ffs.Reset()
			if err := s.Compact(); err != nil {
				t.Fatalf("Compact after fault cleared: %v", err)
			}
			if err := s.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			s2, rep := open(t, dir, Options{})
			defer s2.Close()
			if len(rep.Quarantined) != 0 {
				t.Fatalf("reopen quarantined %d records after failed compactions", len(rep.Quarantined))
			}
			wantInstance(t, s2, "keep", fig)
			wantInstance(t, s2, "after", fig)
		})
	}
}

func TestBackgroundCompactionRetriesThenDegrades(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(nil)
	s, _ := open(t, dir, Options{
		Fsync: FsyncNever, CompactThreshold: 1, FS: ffs,
	})
	defer s.Close()
	ffs.Inject(vfs.Rule{Op: vfs.OpRename, Path: snapshotName})
	// Any Put now crosses the 1-byte threshold and kicks compaction,
	// which fails at the rename every time.
	mustPut(t, s, "a", fixtures.Figure2())

	waitFor(t, 15*time.Second, "store to degrade", s.Degraded)
	h := s.Health()
	if h.CompactErrors < int64(bgMaxAttempts) {
		t.Fatalf("compact_errors = %d, want >= %d", h.CompactErrors, bgMaxAttempts)
	}
	// Reads still serve the whole catalog.
	wantInstance(t, s, "a", fixtures.Figure2())
}

// TestTornWALWriteRecoveryMatrix cuts a WAL append short at several byte
// offsets — inside the magic, inside the header, inside the payload, one
// byte shy of complete — and asserts that (a) the failed Put degrades
// the store rather than acking, and (b) a clean reopen truncates the
// torn tail and recovers exactly the acknowledged instances.
func TestTornWALWriteRecoveryMatrix(t *testing.T) {
	cuts := []int{1, 3, 5, 11, 13, 40}
	for _, cut := range cuts {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			ffs := vfs.NewFaultFS(nil)
			s, _ := open(t, dir, Options{Fsync: FsyncNever, FS: ffs})
			fig := fixtures.Figure2()
			mustPut(t, s, "keep", fig)

			ffs.Inject(vfs.Rule{Op: vfs.OpWrite, Path: segPrefix, ShortWrite: cut, Times: 1})
			err := s.Put("torn", fixtures.Figure2VariedLeaves())
			if !errors.Is(err, ErrDegraded) {
				t.Fatalf("torn Put = %v, want ErrDegraded", err)
			}
			_ = s.Close() // degraded close skips the doomed flush

			s2, rep := open(t, dir, Options{})
			defer s2.Close()
			if rep.TruncatedBytes != int64(cut) {
				t.Fatalf("recovery truncated %d bytes, want %d (report: %s)", rep.TruncatedBytes, cut, rep)
			}
			if len(rep.Quarantined) != 0 {
				t.Fatalf("torn tail should be truncated, not quarantined: %s", rep)
			}
			wantInstance(t, s2, "keep", fig)
			if _, ok := s2.Get("torn"); ok {
				t.Fatal("unacknowledged instance resurrected by recovery")
			}

			// The repaired store must be fully writable again.
			mustPut(t, s2, "torn", fixtures.Figure2VariedLeaves())
		})
	}
}

func TestCloseReportsFailedFinalFlush(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(nil)
	s, _ := open(t, dir, Options{Fsync: FsyncNever, FS: ffs})
	mustPut(t, s, "a", fixtures.Figure2())

	ffs.FailAll(vfs.OpSync, "wal")
	if err := s.Close(); !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("Close with failing final fsync = %v, want the injected error", err)
	}
	// Close is still idempotent after a failed flush.
	if err := s.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}

	// FsyncNever means the data was acknowledged as maybe-lost; what must
	// still hold is that the bytes the OS kept are replayable.
	s2, _ := open(t, dir, Options{})
	defer s2.Close()
	wantInstance(t, s2, "a", fixtures.Figure2())
}

func TestInjectedWriteLatencyDoesNotCorrupt(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(nil)
	s, _ := open(t, dir, Options{Fsync: FsyncAlways, FS: ffs})
	ffs.Inject(vfs.Rule{Op: vfs.OpWrite, Path: segPrefix, Delay: 30 * time.Millisecond, Times: 1})

	start := time.Now()
	mustPut(t, s, "slow", fixtures.Figure2())
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("Put returned after %v, want >= 30ms of injected latency", d)
	}
	if s.Degraded() {
		t.Fatal("latency-only faults must not degrade")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, _ := open(t, dir, Options{})
	defer s2.Close()
	wantInstance(t, s2, "slow", fixtures.Figure2())
}

func TestGroupCommitDiskFullDegradesStore(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(nil)
	reg := metrics.NewRegistry()
	s, _ := open(t, dir, Options{
		Fsync:       FsyncAlways,
		FS:          ffs,
		Registry:    reg,
		CommitBatch: 64,
		CommitDelay: 20 * time.Millisecond,
	})
	defer s.Close()
	fig := fixtures.Figure2()
	mustPut(t, s, "keep", fig)

	// The volume fills mid-storm: every allocating operation on the WAL
	// now returns ENOSPC, so the storm's first coalesced batch append
	// fails mid-group-commit. That must degrade the store and fail every
	// waiter in the batch — an ENOSPC'd WAL write may have landed a frame
	// prefix, so the store cannot pretend the log is still appendable.
	ffs.DiskFull("wal", 0)
	const writers = 6
	errs := make([]error, writers)
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = s.Put(fmt.Sprintf("w%d", i), fig)
		}(i)
	}
	wg.Wait()

	enospc := 0
	for i, err := range errs {
		if !errors.Is(err, ErrDegraded) {
			t.Fatalf("writer %d: err = %v, want ErrDegraded", i, err)
		}
		if errors.Is(err, syscall.ENOSPC) {
			enospc++
		}
	}
	if enospc == 0 {
		t.Fatal("no writer saw the ENOSPC cause; the batch error should carry it")
	}

	// Sticky read-only: later writes rejected, reads keep serving.
	if err := s.Put("more", fig); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Put after disk full = %v, want ErrDegraded", err)
	}
	if err := s.Delete("keep"); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Delete after disk full = %v, want ErrDegraded", err)
	}
	wantInstance(t, s, "keep", fig)
	h := s.Health()
	if !h.Degraded || h.Reason == "" {
		t.Fatalf("health = %+v, want degraded with reason", h)
	}
	if got := reg.Gauge("store_degraded").Value(); got != 1 {
		t.Fatalf("store_degraded gauge = %d, want 1", got)
	}

	// The full volume heals (space freed); reopening the same directory
	// must recover every acknowledged write and nothing else.
	ffs.Reset()
	if err := s.Close(); err == nil {
		t.Log("close after degrade returned nil (flush skipped)")
	}
	s2, _ := open(t, dir, Options{FS: ffs})
	defer s2.Close()
	wantInstance(t, s2, "keep", fig)
	for i := 0; i < writers; i++ {
		if _, ok := s2.Get(fmt.Sprintf("w%d", i)); ok {
			t.Fatalf("unacknowledged write w%d survived reopen", i)
		}
	}
}

package store

// Streaming + follower-apply suite: the replication claims under test
// are that ReadStream serves exactly the committed bytes (never a torn
// active tail), that resume works at every frame boundary including
// exactly at segment rotations, that positions off this store's
// timeline — restore gaps, trimmed history, positions past the
// committed end — come back as ErrTimelineDiverged rather than spliced
// history, and that a follower driven by ReplApply converges to a
// byte-identical, position-identical mirror that survives reopen.

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"pxml/internal/fixtures"
)

// replicate pulls chunks until follower reaches leader's committed
// position, applying each chunk at its normalized From (which is also
// the rotation cue when it jumps to a fresh segment's start).
func replicate(t *testing.T, leader, follower *Store, maxBytes int) {
	t.Helper()
	for i := 0; i < 10000; i++ {
		from := follower.Pos()
		chunk, err := leader.ReadStream(from, maxBytes)
		if err != nil {
			t.Fatalf("ReadStream(%s): %v", from, err)
		}
		if len(chunk.Data) == 0 && chunk.Next == from {
			return // caught up, positions equal
		}
		applyAt := chunk.From
		if len(chunk.Data) == 0 {
			applyAt = chunk.Next // caught up behind a rotation boundary
		}
		res, err := follower.ReplApply(applyAt, chunk.Epoch, chunk.Data)
		if err != nil {
			t.Fatalf("ReplApply(%s, %d bytes): %v", applyAt, len(chunk.Data), err)
		}
		if len(chunk.Data) > 0 {
			want := Pos{Seg: chunk.From.Seg, Off: chunk.From.Off + int64(len(chunk.Data))}
			if res.Pos != want {
				t.Fatalf("follower pos after apply = %s, want %s", res.Pos, want)
			}
		}
	}
	t.Fatalf("replication did not converge: follower %s, leader %s", follower.Pos(), leader.Pos())
}

// wantSameCatalog asserts the two stores serve identical catalogs.
func wantSameCatalog(t *testing.T, a, b *Store) {
	t.Helper()
	an, bn := a.Names(), b.Names()
	if !reflect.DeepEqual(an, bn) {
		t.Fatalf("catalogs differ:\n  a: %v\n  b: %v", an, bn)
	}
	for _, n := range an {
		pa, _ := a.Get(n)
		pb, _ := b.Get(n)
		if pa.NumObjects() != pb.NumObjects() {
			t.Fatalf("instance %q differs between stores", n)
		}
	}
}

func TestStreamFollowerConvergesAcrossRotations(t *testing.T) {
	ldir, fdir := t.TempDir(), t.TempDir()
	leader, _ := open(t, ldir, Options{SegmentSize: 512, CompactThreshold: -1, Stamps: true})
	defer leader.Close()
	follower, _ := open(t, fdir, Options{Follower: true, CompactThreshold: -1})
	fig := fixtures.Figure2()
	for i := 0; i < 20; i++ {
		mustPut(t, leader, fmt.Sprintf("inst-%02d", i), fig)
	}
	mustPut(t, leader, "dropme", fig)
	if err := leader.Delete("dropme"); err != nil {
		t.Fatal(err)
	}

	// Fresh follower has no history: start from the leader's first
	// retained segment (nothing was compacted away).
	if follower.Pos() != (Pos{Seg: 1, Off: 0}) {
		t.Fatalf("fresh follower pos = %s", follower.Pos())
	}
	replicate(t, leader, follower, 0)
	if follower.Pos() != leader.Pos() {
		t.Fatalf("follower pos %s != leader pos %s", follower.Pos(), leader.Pos())
	}
	wantSameCatalog(t, leader, follower)
	if follower.LastReplStamp() == 0 {
		t.Fatal("no wall-clock stamp arrived despite Options.Stamps on the leader")
	}

	// The follower's WAL must be byte-identical to the leader's.
	for _, dir := range []string{ldir} {
		segs, _ := listSegments(leader.fs, dir)
		for _, n := range segs {
			lb, err := os.ReadFile(filepath.Join(ldir, segmentFile(n)))
			if err != nil {
				t.Fatal(err)
			}
			fb, err := os.ReadFile(filepath.Join(fdir, segmentFile(n)))
			if err != nil {
				t.Fatalf("follower missing segment %d: %v", n, err)
			}
			if !bytes.Equal(lb, fb) {
				t.Fatalf("segment %d differs between leader and follower", n)
			}
		}
	}

	// Survives reopen: recovery lands on the same position and catalog,
	// and replication resumes where it left off.
	follower.Close()
	follower2, rep := open(t, fdir, Options{Follower: true, CompactThreshold: -1})
	defer follower2.Close()
	if rep.dirty() {
		t.Fatalf("follower reopen dirty: %s", rep)
	}
	if follower2.Pos() != leader.Pos() {
		t.Fatalf("reopened follower pos %s != leader pos %s", follower2.Pos(), leader.Pos())
	}
	mustPut(t, leader, "after-reopen", fig)
	replicate(t, leader, follower2, 0)
	wantSameCatalog(t, leader, follower2)
}

// TestStreamResumeAtRotationBoundary: a position exactly at a sealed
// segment's end must resume cleanly into the next segment — and when the
// store is caught up there, the empty chunk's Next must still carry the
// rotation cue.
func TestStreamResumeAtRotationBoundary(t *testing.T) {
	dir := t.TempDir()
	leader, _ := open(t, dir, Options{SegmentSize: 300, CompactThreshold: -1})
	defer leader.Close()
	fig := fixtures.Figure2()
	for i := 0; i < 8; i++ {
		mustPut(t, leader, fmt.Sprintf("inst-%d", i), fig)
	}
	leader.mu.RLock()
	sealed := append([]segInfo(nil), leader.sealed...)
	leader.mu.RUnlock()
	if len(sealed) == 0 {
		t.Fatal("no sealed segments to test rotation boundaries with")
	}
	for _, si := range sealed {
		boundary := Pos{Seg: si.n, Off: si.size}
		chunk, err := leader.ReadStream(boundary, 0)
		if err != nil {
			t.Fatalf("ReadStream at rotation boundary %s: %v", boundary, err)
		}
		if chunk.From.Seg <= si.n || chunk.From.Off != 0 {
			t.Fatalf("boundary %s normalized to %s, want the next segment's start", boundary, chunk.From)
		}
		if chunk.From == chunk.End {
			continue // normalized into an empty active segment: caught up
		}
		// The served bytes must be exactly the next segment's prefix.
		want, err := os.ReadFile(filepath.Join(dir, segmentFile(chunk.From.Seg)))
		if err != nil {
			t.Fatal(err)
		}
		if len(chunk.Data) == 0 || !bytes.Equal(chunk.Data, want[:len(chunk.Data)]) {
			t.Fatalf("boundary %s served %d bytes that are not segment %d's prefix",
				boundary, len(chunk.Data), chunk.From.Seg)
		}
		res, serr := scanFrames(chunk.Data, func(int64, []byte) error { return nil })
		if serr != nil || res.CleanLen != int64(len(chunk.Data)) {
			t.Fatalf("boundary %s chunk does not scan clean", boundary)
		}
	}
	// Caught-up at the active segment's current end: empty chunk, Next
	// unchanged.
	end := leader.Pos()
	chunk, err := leader.ReadStream(end, 0)
	if err != nil || len(chunk.Data) != 0 || chunk.Next != end {
		t.Fatalf("caught-up read = (%d bytes, next %s, err %v), want empty at %s",
			len(chunk.Data), chunk.Next, err, end)
	}
}

// TestStreamTimelineGapDiverges: after a data directory is reopened next
// to an archive holding higher-numbered history (the restore/rebuild
// collision Open handles by sealing and jumping past the archive), the
// segment numbers in between are a permanent timeline gap. Streaming
// from inside the gap — where a follower of the other timeline would
// resume — must fail typed, not serve spliced history.
func TestStreamTimelineGapDiverges(t *testing.T) {
	dir := t.TempDir()
	arch := t.TempDir()
	s, _ := open(t, dir, Options{SegmentSize: 300, CompactThreshold: -1, ArchiveDir: arch})
	fig := fixtures.Figure2()
	for i := 0; i < 6; i++ {
		mustPut(t, s, fmt.Sprintf("inst-%d", i), fig)
	}
	s.Close()

	// Simulate the archive having outlived this data directory and
	// gained later history (e.g. from a store restored elsewhere): plant
	// a higher-numbered archived segment, then reopen. Open seals the
	// active segment and continues two past the archive, leaving the
	// numbers in between as the timeline boundary.
	seg1, err := os.ReadFile(filepath.Join(dir, segmentFile(1)))
	if err != nil {
		t.Fatal(err)
	}
	const planted = 9
	if err := os.WriteFile(filepath.Join(arch, segmentFile(planted)), seg1, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, _ := open(t, dir, Options{SegmentSize: 300, CompactThreshold: -1, ArchiveDir: arch})
	defer s2.Close()
	if got := s2.Pos().Seg; got != planted+2 {
		t.Fatalf("reopened active segment = %d, want %d (archive max %d + 2)", got, planted+2, planted)
	}
	mustPut(t, s2, "post-gap", fig)

	for _, from := range []Pos{
		{Seg: planted, Off: 0},     // inside the gap
		{Seg: planted + 1, Off: 0}, // the permanent boundary number
	} {
		if _, err := s2.ReadStream(from, 0); !errors.Is(err, ErrTimelineDiverged) {
			t.Fatalf("ReadStream(%s) across the timeline gap: err = %v, want ErrTimelineDiverged", from, err)
		}
	}
	// Past the committed end of the active segment, and past the active
	// segment entirely: both are bytes this leader never wrote.
	end := s2.Pos()
	for _, from := range []Pos{
		{Seg: end.Seg, Off: end.Off + 12},
		{Seg: end.Seg + 3, Off: 0},
		{Seg: 0, Off: 0},
	} {
		if _, err := s2.ReadStream(from, 0); !errors.Is(err, ErrTimelineDiverged) {
			t.Fatalf("ReadStream(%s) past committed history: err = %v, want ErrTimelineDiverged", from, err)
		}
	}
	// The retained pre-gap history still streams fine.
	if _, err := s2.ReadStream(Pos{Seg: 1, Off: 0}, 0); err != nil {
		t.Fatalf("pre-gap history must stay streamable: %v", err)
	}
}

// TestStreamTrimmedHistoryDiverges: a follower further behind than the
// leader's retained segments cannot catch up from the WAL and must be
// told so (it re-bootstraps from a backup instead).
func TestStreamTrimmedHistoryDiverges(t *testing.T) {
	dir := t.TempDir()
	s, _ := open(t, dir, Options{SegmentSize: 300, CompactThreshold: -1})
	defer s.Close()
	fig := fixtures.Figure2()
	for i := 0; i < 6; i++ {
		mustPut(t, s, fmt.Sprintf("inst-%d", i), fig)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadStream(Pos{Seg: 1, Off: 0}, 0); !errors.Is(err, ErrTimelineDiverged) {
		t.Fatalf("ReadStream of compacted-away history: err = %v, want ErrTimelineDiverged", err)
	}
}

// TestStreamNeverServesTornTail: bytes past the committed position —
// e.g. a torn write that landed in the active segment before the store
// degraded — must never ride the stream.
func TestStreamNeverServesTornTail(t *testing.T) {
	dir := t.TempDir()
	leader, _ := open(t, dir, Options{CompactThreshold: -1})
	defer leader.Close()
	fig := fixtures.Figure2()
	mustPut(t, leader, "a", fig)
	mustPut(t, leader, "b", fig)
	end := leader.Pos()

	// Tear the tail: garbage beyond the committed offset, including a
	// fake frame magic to bait a naive scanner into resyncing on it.
	f, err := os.OpenFile(filepath.Join(dir, segmentFile(end.Seg)), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(append([]byte("PXR1"), 0xde, 0xad, 0xbe, 0xef)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	chunk, err := leader.ReadStream(Pos{Seg: end.Seg, Off: 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(chunk.Data)) != end.Off {
		t.Fatalf("stream served %d bytes, want the %d committed (torn tail leaked)", len(chunk.Data), end.Off)
	}
	res, serr := scanFrames(chunk.Data, func(int64, []byte) error { return nil })
	if serr != nil || res.CleanLen != int64(len(chunk.Data)) || len(res.Bad) > 0 || res.TornTail > 0 {
		t.Fatalf("streamed bytes do not scan clean: clean=%d bad=%d torn=%d", res.CleanLen, len(res.Bad), res.TornTail)
	}

	// A follower applying them accepts the chunk whole.
	follower, _ := open(t, t.TempDir(), Options{Follower: true})
	defer follower.Close()
	if _, err := follower.ReplApply(Pos{Seg: 1, Off: 0}, chunk.Epoch, chunk.Data); err != nil {
		t.Fatalf("follower rejected clean committed bytes: %v", err)
	}
}

// TestStreamSmallChunksCutOnFrameBoundaries: tiny maxBytes must still
// yield parseable chunks that apply in sequence.
func TestStreamSmallChunksCutOnFrameBoundaries(t *testing.T) {
	leader, _ := open(t, t.TempDir(), Options{SegmentSize: 400, CompactThreshold: -1})
	defer leader.Close()
	follower, _ := open(t, t.TempDir(), Options{Follower: true})
	defer follower.Close()
	fig := fixtures.Figure2()
	for i := 0; i < 10; i++ {
		mustPut(t, leader, fmt.Sprintf("inst-%d", i), fig)
	}
	// 64 bytes is far below one framed record: every chunk ships exactly
	// one frame.
	replicate(t, leader, follower, 64)
	wantSameCatalog(t, leader, follower)
	if follower.Pos() != leader.Pos() {
		t.Fatalf("follower %s != leader %s", follower.Pos(), leader.Pos())
	}
}

// TestReplApplyGuards: follower stores refuse local writes, leaders
// refuse ReplApply, and position mismatches are typed.
func TestReplApplyGuards(t *testing.T) {
	leader, _ := open(t, t.TempDir(), Options{})
	defer leader.Close()
	follower, _ := open(t, t.TempDir(), Options{Follower: true})
	defer follower.Close()
	fig := fixtures.Figure2()

	if err := follower.Put("x", fig); !errors.Is(err, ErrFollowerReadOnly) {
		t.Fatalf("follower Put err = %v, want ErrFollowerReadOnly", err)
	}
	if err := follower.Delete("x"); !errors.Is(err, ErrFollowerReadOnly) {
		t.Fatalf("follower Delete err = %v, want ErrFollowerReadOnly", err)
	}
	if _, err := leader.ReplApply(Pos{Seg: 1, Off: 0}, 0, nil); err == nil {
		t.Fatal("ReplApply on a leader store must fail")
	}

	mustPut(t, leader, "a", fig)
	chunk, err := leader.ReadStream(Pos{Seg: 1, Off: 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := follower.ReplApply(Pos{Seg: 1, Off: 4}, chunk.Epoch, chunk.Data); !errors.Is(err, ErrApplyMismatch) {
		t.Fatalf("misaligned apply err = %v, want ErrApplyMismatch", err)
	}
	// Corrupt chunk: flip one payload byte so the CRC fails.
	bad := append([]byte(nil), chunk.Data...)
	bad[len(bad)-1] ^= 0xff
	if _, err := follower.ReplApply(Pos{Seg: 1, Off: 0}, chunk.Epoch, bad); err == nil {
		t.Fatal("corrupt chunk must be rejected whole")
	}
	if follower.Pos() != (Pos{Seg: 1, Off: 0}) {
		t.Fatalf("rejected chunk advanced the follower to %s", follower.Pos())
	}
}

// TestFollowerCompactKeepsTimeline: a follower compaction (snapshot +
// sealed-segment retirement, no rotation) must not disturb the mirrored
// numbering, and replication must keep flowing after it and across a
// reopen.
func TestFollowerCompactKeepsTimeline(t *testing.T) {
	leader, _ := open(t, t.TempDir(), Options{SegmentSize: 400, CompactThreshold: -1})
	defer leader.Close()
	fdir := t.TempDir()
	follower, _ := open(t, fdir, Options{Follower: true, CompactThreshold: -1})
	fig := fixtures.Figure2()
	for i := 0; i < 12; i++ {
		mustPut(t, leader, fmt.Sprintf("inst-%d", i), fig)
	}
	replicate(t, leader, follower, 0)
	posBefore := follower.Pos()
	if err := follower.Compact(); err != nil {
		t.Fatal(err)
	}
	if follower.Pos() != posBefore {
		t.Fatalf("follower compaction moved the position %s -> %s", posBefore, follower.Pos())
	}
	for i := 0; i < 6; i++ {
		mustPut(t, leader, fmt.Sprintf("post-compact-%d", i), fig)
	}
	replicate(t, leader, follower, 0)
	wantSameCatalog(t, leader, follower)

	follower.Close()
	follower2, rep := open(t, fdir, Options{Follower: true, CompactThreshold: -1})
	defer follower2.Close()
	if rep.dirty() {
		t.Fatalf("follower reopen after compaction dirty: %s", rep)
	}
	if follower2.Pos() != leader.Pos() {
		t.Fatalf("reopened follower %s != leader %s", follower2.Pos(), leader.Pos())
	}
	wantSameCatalog(t, leader, follower2)
}

// TestStreamLagBytes: the lag reported with each chunk must hit zero
// exactly when the follower catches up.
func TestStreamLagBytes(t *testing.T) {
	leader, _ := open(t, t.TempDir(), Options{SegmentSize: 400, CompactThreshold: -1})
	defer leader.Close()
	fig := fixtures.Figure2()
	for i := 0; i < 8; i++ {
		mustPut(t, leader, fmt.Sprintf("inst-%d", i), fig)
	}
	from := Pos{Seg: 1, Off: 0}
	var lastLag int64 = 1 << 62
	for {
		chunk, err := leader.ReadStream(from, 512)
		if err != nil {
			t.Fatal(err)
		}
		if chunk.Next == from {
			if lastLag != 0 {
				t.Fatalf("caught up but last reported lag was %d", lastLag)
			}
			return
		}
		if len(chunk.Data) > 0 && chunk.LagBytes >= lastLag {
			t.Fatalf("lag did not shrink: %d -> %d", lastLag, chunk.LagBytes)
		}
		lastLag = chunk.LagBytes
		from = chunk.Next
	}
}

package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
)

// WAL archiving. When Options.ArchiveDir is set, every sealed segment is
// hard-linked (or, across filesystems, durably copied) into the archive
// directory under its canonical name before compaction is allowed to
// delete the local copy. The archive plus a base backup is what
// point-in-time recovery replays: Restore cuts the archived record
// stream at a WAL position or a commit-stamp wall-clock time (see
// backup.go). Archive failures are retried from the background loop and
// never degrade the store — losing the archive costs recovery points,
// not acknowledged writes.
//
// The archive is append-only history. An archived segment is never
// overwritten with different bytes: a torn previous copy (a byte-prefix
// of the local segment) is repaired atomically, a longer archived copy
// that has the local segment as a prefix is left alone (every local byte
// is already archived — the archive kept a longer timeline this store was
// restored away from), and any other mismatch is an error. Overwriting
// would destroy exactly the history a point-in-time restore exists to
// replay.
//
// Locking: s.archMu serializes the background archiver with compaction —
// both copy sealed segments into the archive, and compaction is the only
// deleter of the local copies the archiver reads. The copies themselves
// run without s.mu (sealed segments are immutable), so reads and writes
// never stall behind archive I/O; s.mu is taken only to snapshot the
// pending list and to mark segments archived.

// archivePending archives every sealed local segment that is not yet in
// the archive, then applies retention. Called from the background
// goroutine on rotation kicks and on the retry ticker.
func (s *Store) archivePending() {
	s.archMu.Lock()
	defer s.archMu.Unlock()
	s.mu.Lock()
	if s.closed || s.opts.ArchiveDir == "" {
		s.mu.Unlock()
		return
	}
	pending := s.pendingArchiveLocked()
	s.mu.Unlock()
	if err := s.archiveSegments(pending); err != nil {
		s.mu.Lock()
		s.noteErrLocked(&s.archiveErrs, s.archiveErrsC, fmt.Errorf("store: archive: %w", err))
		s.mu.Unlock()
		return
	}
	if err := s.pruneArchive(); err != nil {
		s.mu.Lock()
		s.noteErrLocked(&s.archiveErrs, s.archiveErrsC, fmt.Errorf("store: archive retention: %w", err))
		s.mu.Unlock()
	}
}

// pendingArchiveLocked snapshots the sealed segments not yet archived,
// oldest first. Callers hold s.mu.
func (s *Store) pendingArchiveLocked() []segInfo {
	var pending []segInfo
	for _, si := range s.sealed {
		if !si.archived {
			pending = append(pending, si)
		}
	}
	return pending
}

// archiveSegments lands the given sealed segments in the archive, oldest
// first, stopping at the first failure so the archive never has a gap
// followed by newer segments, and marks each one archived as it lands.
// Callers hold s.archMu but never s.mu: the segments are sealed and
// immutable, and archMu keeps compaction from deleting them mid-copy. A
// nil return means every listed segment is safely in the archive.
func (s *Store) archiveSegments(pending []segInfo) error {
	for _, si := range pending {
		copied, err := s.archiveOne(si)
		if err != nil {
			return fmt.Errorf("segment %d: %w", si.n, err)
		}
		s.mu.Lock()
		for i := range s.sealed {
			if s.sealed[i].n == si.n {
				s.sealed[i].archived = true
			}
		}
		s.mu.Unlock()
		if copied {
			if s.archivedSegs != nil {
				s.archivedSegs.Inc()
			}
			if s.opts.Logger != nil {
				s.opts.Logger.Printf("store: archived %s", segmentFile(si.n))
			}
		}
	}
	return nil
}

// archiveOne puts one sealed segment's bytes in the archive, reporting
// whether a copy was actually performed (false when the bytes were
// already there). An existing archived file under the same name is
// compared byte for byte and never overwritten with different history —
// see the package comment above for the three tolerated cases.
func (s *Store) archiveOne(si segInfo) (bool, error) {
	src := s.path(segmentFile(si.n))
	dst := filepath.Join(s.opts.ArchiveDir, segmentFile(si.n))
	existing, err := s.fs.ReadFile(dst)
	if os.IsNotExist(err) {
		// Fresh name: hard-link when the filesystem allows it (cheap, and
		// shares storage with the immutable source), else stage a durable
		// copy through a temp name.
		if lerr := s.fs.Link(src, dst); lerr == nil {
			return true, nil
		}
		local, rerr := s.fs.ReadFile(src)
		if rerr != nil {
			return false, rerr
		}
		return true, s.writeArchive(local, dst)
	}
	if err != nil {
		return false, err
	}
	local, err := s.fs.ReadFile(src)
	if err != nil {
		return false, err
	}
	switch {
	case bytes.Equal(existing, local):
		// A previous attempt that crashed after the copy, or a restore
		// staged this exact segment: the bytes are already archived.
		return false, nil
	case len(existing) < len(local) && bytes.Equal(existing, local[:len(existing)]):
		// A previous copy torn by a crash; replace it atomically with the
		// complete segment.
		return true, s.writeArchive(local, dst)
	case len(existing) > len(local) && bytes.Equal(existing[:len(local)], local):
		// The archived copy is longer and this segment is its prefix: the
		// archive kept the original of a timeline this store was restored
		// away from. Every local byte is already archived; truncating
		// archived history is never acceptable.
		return false, nil
	default:
		return false, fmt.Errorf("local segment diverges from archived %s; refusing to overwrite archive history", segmentFile(si.n))
	}
}

// writeArchive stages data under a temp name, fsyncs it, and renames it
// into place, so a crash can never leave a torn segment file in the
// archive masquerading as a sealed one.
func (s *Store) writeArchive(data []byte, dst string) error {
	tmp := dst + ".tmp"
	if err := s.fs.WriteFile(tmp, data); err != nil {
		return err
	}
	if err := s.fs.Sync(tmp); err != nil {
		s.fs.Remove(tmp)
		return err
	}
	if err := s.fs.Rename(tmp, dst); err != nil {
		s.fs.Remove(tmp)
		return err
	}
	return s.fs.SyncDir(s.opts.ArchiveDir)
}

// pruneArchive enforces Options.ArchiveRetention by deleting the oldest
// archived segments beyond the cap. Retention bounds disk, at the
// documented cost of how far back point-in-time recovery can reach.
// Callers hold s.archMu.
func (s *Store) pruneArchive() error {
	if s.opts.ArchiveRetention <= 0 {
		return nil
	}
	segs, err := listSegments(s.fs, s.opts.ArchiveDir)
	if err != nil {
		return err
	}
	for len(segs) > s.opts.ArchiveRetention {
		victim := segs[0]
		if err := s.fs.Remove(filepath.Join(s.opts.ArchiveDir, segmentFile(victim))); err != nil {
			return fmt.Errorf("segment %d: %w", victim, err)
		}
		if s.opts.Logger != nil {
			s.opts.Logger.Printf("store: archive retention dropped %s", segmentFile(victim))
		}
		segs = segs[1:]
	}
	return nil
}

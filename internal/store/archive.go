package store

import (
	"fmt"
	"path/filepath"

	"pxml/internal/vfs"
)

// WAL archiving. When Options.ArchiveDir is set, every sealed segment is
// hard-linked (or, across filesystems, durably copied) into the archive
// directory under its canonical name before compaction is allowed to
// delete the local copy. The archive plus a base backup is what
// point-in-time recovery replays: Restore cuts the archived record
// stream at a WAL position or a commit-stamp wall-clock time (see
// backup.go). Archive failures are retried from the background loop and
// never degrade the store — losing the archive costs recovery points,
// not acknowledged writes.

// archivePending archives every sealed local segment that is not yet in
// the archive, then applies retention. Called from the background
// goroutine on rotation kicks and on the retry ticker.
func (s *Store) archivePending() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.opts.ArchiveDir == "" {
		return
	}
	if err := s.archiveSealedLocked(); err != nil {
		s.noteErrLocked(&s.archiveErrs, s.archiveErrsC, fmt.Errorf("store: archive: %w", err))
		return
	}
	if err := s.pruneArchiveLocked(); err != nil {
		s.noteErrLocked(&s.archiveErrs, s.archiveErrsC, fmt.Errorf("store: archive retention: %w", err))
	}
}

// archiveSealedLocked copies every not-yet-archived sealed segment into
// the archive, oldest first, stopping at the first failure so the
// archive never has a gap followed by newer segments. A segment already
// present with the right size (a previous attempt that crashed after the
// copy, or a sibling store sharing the archive) counts as archived.
// Callers hold s.mu; a nil return means every sealed segment is safely
// in the archive.
func (s *Store) archiveSealedLocked() error {
	if s.opts.ArchiveDir == "" {
		return nil
	}
	var have map[uint64]int64 // archived sizes, listed lazily
	for i := range s.sealed {
		si := &s.sealed[i]
		if si.archived {
			continue
		}
		if have == nil {
			have = s.archivedSizes()
		}
		if sz, ok := have[si.n]; ok && sz == si.size {
			si.archived = true
			continue
		}
		src := s.path(segmentFile(si.n))
		dst := filepath.Join(s.opts.ArchiveDir, segmentFile(si.n))
		if err := vfs.LinkOrCopy(s.fs, src, dst); err != nil {
			return fmt.Errorf("segment %d: %w", si.n, err)
		}
		si.archived = true
		if s.archivedSegs != nil {
			s.archivedSegs.Inc()
		}
		if s.opts.Logger != nil {
			s.opts.Logger.Printf("store: archived %s", segmentFile(si.n))
		}
	}
	return nil
}

// archivedSizes lists the archive's segment files with their sizes. A
// listing failure just means nothing can be skipped; the copies below
// will surface any real I/O problem.
func (s *Store) archivedSizes() map[uint64]int64 {
	have := make(map[uint64]int64)
	entries, err := s.fs.ReadDir(s.opts.ArchiveDir)
	if err != nil {
		return have
	}
	for _, e := range entries {
		n, ok := parseSegmentFile(e.Name())
		if !ok {
			continue
		}
		info, ierr := e.Info()
		if ierr != nil {
			continue
		}
		have[n] = info.Size()
	}
	return have
}

// pruneArchiveLocked enforces Options.ArchiveRetention by deleting the
// oldest archived segments beyond the cap. Retention bounds disk, at the
// documented cost of how far back point-in-time recovery can reach.
func (s *Store) pruneArchiveLocked() error {
	if s.opts.ArchiveRetention <= 0 {
		return nil
	}
	segs, err := listSegments(s.fs, s.opts.ArchiveDir)
	if err != nil {
		return err
	}
	for len(segs) > s.opts.ArchiveRetention {
		victim := segs[0]
		if err := s.fs.Remove(filepath.Join(s.opts.ArchiveDir, segmentFile(victim))); err != nil {
			return fmt.Errorf("segment %d: %w", victim, err)
		}
		if s.opts.Logger != nil {
			s.opts.Logger.Printf("store: archive retention dropped %s", segmentFile(victim))
		}
		segs = segs[1:]
	}
	return nil
}

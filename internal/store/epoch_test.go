package store

// Epoch/fencing suite: the EPOCH file round-trips and survives reopen, a
// corrupt file fails open instead of guessing, Promote flips a follower
// into a writable stamping leader live (durably, epoch-first), Fence is
// sticky and persisted, and ReplApply enforces the epoch guard — refuse
// lower, adopt-and-persist higher.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pxml/internal/fixtures"
	"pxml/internal/vfs"
)

func TestEpochFreshStoreIsEpochOneUnfenced(t *testing.T) {
	s, _ := open(t, t.TempDir(), Options{})
	defer s.Close()
	if got := s.Epoch(); got != 1 {
		t.Fatalf("fresh store epoch = %d, want 1", got)
	}
	if fenced, _, _ := s.Fenced(); fenced {
		t.Fatal("fresh store must not be fenced")
	}
	if s.IsFollower() {
		t.Fatal("fresh store without Options.Follower must not be a follower")
	}
}

func TestEpochFileRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name   string
		epoch  uint64
		fenced bool
		leader string
	}{
		{"plain", 7, false, ""},
		{"fenced-no-leader", 3, true, ""},
		{"fenced-with-leader", 12, true, "http://new-leader:7654"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var buf strings.Builder
			fmt.Fprintf(&buf, "%s\nepoch %d\n", epochMagic, tc.epoch)
			if tc.fenced {
				buf.WriteString("fenced 1\n")
			}
			if tc.leader != "" {
				fmt.Fprintf(&buf, "leader %s\n", tc.leader)
			}
			epoch, fenced, leader, err := parseEpochFile([]byte(buf.String()))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if epoch != tc.epoch || fenced != tc.fenced || leader != tc.leader {
				t.Fatalf("parse = (%d, %v, %q), want (%d, %v, %q)",
					epoch, fenced, leader, tc.epoch, tc.fenced, tc.leader)
			}
		})
	}
}

func TestEpochFileParseErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		data string
	}{
		{"empty", ""},
		{"bad-magic", "pxml-epoch/999\nepoch 3\n"},
		{"missing-epoch", epochMagic + "\nfenced 1\n"},
		{"zero-epoch", epochMagic + "\nepoch 0\n"},
		{"garbage-epoch", epochMagic + "\nepoch banana\n"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, _, err := parseEpochFile([]byte(tc.data)); err == nil {
				t.Fatalf("parseEpochFile(%q) = nil error, want failure", tc.data)
			}
		})
	}
	// Unknown keys under the current magic are forward-compatible noise.
	epoch, _, _, err := parseEpochFile([]byte(epochMagic + "\nepoch 4\nfuture-key x\n"))
	if err != nil || epoch != 4 {
		t.Fatalf("unknown key should be ignored: epoch=%d err=%v", epoch, err)
	}
}

func TestEpochCorruptFileFailsOpen(t *testing.T) {
	dir := t.TempDir()
	s, _ := open(t, dir, Options{})
	s.Close()
	if err := os.WriteFile(filepath.Join(dir, epochFileName), []byte("not an epoch file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatal("open with corrupt EPOCH file must fail, not guess")
	}
}

func TestPromoteBumpsEpochAndEnablesWrites(t *testing.T) {
	dir := t.TempDir()
	f, _ := open(t, dir, Options{Follower: true})
	defer f.Close()
	fig := fixtures.Figure2()
	if err := f.Put("x", fig); !errors.Is(err, ErrFollowerReadOnly) {
		t.Fatalf("pre-promotion Put = %v, want ErrFollowerReadOnly", err)
	}

	epoch, err := f.Promote()
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if epoch != 2 {
		t.Fatalf("promoted epoch = %d, want 2", epoch)
	}
	if f.IsFollower() {
		t.Fatal("store still reports follower after Promote")
	}
	if got := f.Epoch(); got != 2 {
		t.Fatalf("Epoch() = %d, want 2", got)
	}
	// Writes flow, and the new leader stamps commits so its own
	// followers can measure staleness: a downstream follower replaying
	// the promoted leader's WAL must observe a wall-clock stamp.
	mustPut(t, f, "after", fig)
	down, _ := open(t, t.TempDir(), Options{Follower: true})
	defer down.Close()
	replicate(t, f, down, 1<<20)
	if down.LastReplStamp() == 0 {
		t.Fatal("promoted leader must stamp commits (downstream saw no stamp)")
	}
	// Idempotence guard: promoting a leader is a typed error.
	if _, err := f.Promote(); !errors.Is(err, ErrNotFollower) {
		t.Fatalf("second Promote = %v, want ErrNotFollower", err)
	}

	// The promotion is durable: reopening without Options.Follower keeps
	// the bumped epoch and the acknowledged write.
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	s2, _ := open(t, dir, Options{})
	defer s2.Close()
	if got := s2.Epoch(); got != 2 {
		t.Fatalf("reopened epoch = %d, want 2", got)
	}
	wantInstance(t, s2, "after", fig)
}

func TestPromotePersistFailureAbortsFlip(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(nil)
	f, _ := open(t, dir, Options{Follower: true, FS: ffs})
	defer f.Close()
	// Epoch durability gates the role flip: if the EPOCH file cannot be
	// written, the store must stay a follower.
	ffs.FailAll(vfs.OpCreate, dir)
	if _, err := f.Promote(); err == nil {
		t.Fatal("Promote with failing EPOCH persist must error")
	}
	if !f.IsFollower() {
		t.Fatal("failed Promote must leave the store a follower")
	}
	if got := f.Epoch(); got != 1 {
		t.Fatalf("failed Promote changed epoch to %d", got)
	}
	ffs.Reset()
	if _, err := f.Promote(); err != nil {
		t.Fatalf("Promote after fault cleared: %v", err)
	}
}

func TestFenceStickyAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, _ := open(t, dir, Options{})
	fig := fixtures.Figure2()
	mustPut(t, s, "keep", fig)

	// Fencing at one's own epoch without supersession is refused.
	if err := s.Fence(1, "http://usurper"); err == nil {
		t.Fatal("Fence at own epoch must be refused")
	}
	if err := s.Fence(0, ""); err == nil {
		t.Fatal("Fence at lower epoch must be refused")
	}
	if err := s.Fence(3, "http://new-leader:1234"); err != nil {
		t.Fatalf("Fence(3): %v", err)
	}
	fenced, epoch, leader := s.Fenced()
	if !fenced || epoch != 3 || leader != "http://new-leader:1234" {
		t.Fatalf("Fenced() = (%v, %d, %q), want (true, 3, leader URL)", fenced, epoch, leader)
	}
	err := s.Put("rejected", fig)
	if !errors.Is(err, ErrEpochFenced) {
		t.Fatalf("Put on fenced store = %v, want ErrEpochFenced", err)
	}
	if err := s.Delete("keep"); !errors.Is(err, ErrEpochFenced) {
		t.Fatalf("Delete on fenced store = %v, want ErrEpochFenced", err)
	}
	wantInstance(t, s, "keep", fig) // reads keep serving

	// Re-fencing at the same epoch is idempotent; a higher epoch moves
	// the fence forward.
	if err := s.Fence(3, "http://new-leader:1234"); err != nil {
		t.Fatalf("idempotent re-fence: %v", err)
	}
	if err := s.Fence(4, ""); err != nil {
		t.Fatalf("Fence(4): %v", err)
	}

	// A restarted fenced leader stays fenced — the split-brain guard
	// survives the process.
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	s2, _ := open(t, dir, Options{})
	defer s2.Close()
	fenced, epoch, leader = s2.Fenced()
	if !fenced || epoch != 4 || leader != "http://new-leader:1234" {
		t.Fatalf("reopened Fenced() = (%v, %d, %q), want fence preserved", fenced, epoch, leader)
	}
	if err := s2.Put("still-rejected", fig); !errors.Is(err, ErrEpochFenced) {
		t.Fatalf("Put on reopened fenced store = %v, want ErrEpochFenced", err)
	}
}

func TestReplApplyEpochGuard(t *testing.T) {
	ldir := t.TempDir()
	leader, _ := open(t, ldir, Options{Stamps: true})
	defer leader.Close()
	fdir := t.TempDir()
	follower, _ := open(t, fdir, Options{Follower: true})
	defer follower.Close()
	mustPut(t, leader, "a", fixtures.Figure2())
	chunk, err := leader.ReadStream(Pos{Seg: 1, Off: 0}, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if chunk.Epoch != 1 {
		t.Fatalf("leader chunk epoch = %d, want 1", chunk.Epoch)
	}

	// A chunk stamped with a higher epoch is adopted before its bytes
	// land, and the adoption is durable.
	if _, err := follower.ReplApply(chunk.From, 5, chunk.Data); err != nil {
		t.Fatalf("ReplApply with higher epoch: %v", err)
	}
	if got := follower.Epoch(); got != 5 {
		t.Fatalf("follower epoch after adopt = %d, want 5", got)
	}

	// Once epoch 5 has been seen, older-epoch chunks are refused: a
	// zombie leader cannot feed stale history into a moved-on replica.
	mustPut(t, leader, "b", fixtures.Figure2())
	next, err := leader.ReadStream(follower.Pos(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := follower.ReplApply(next.From, next.Epoch, next.Data); !errors.Is(err, ErrEpochFenced) {
		t.Fatalf("ReplApply from stale epoch = %v, want ErrEpochFenced", err)
	}
	// Epoch 0 means "no epoch information" (legacy peer) and bypasses
	// the guard rather than fencing on it.
	if _, err := follower.ReplApply(next.From, 0, next.Data); err != nil {
		t.Fatalf("ReplApply with epoch 0 = %v, want pass-through", err)
	}

	// The adopted epoch survives follower restart.
	if err := follower.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	f2, _ := open(t, fdir, Options{Follower: true})
	defer f2.Close()
	if got := f2.Epoch(); got != 5 {
		t.Fatalf("reopened follower epoch = %d, want 5", got)
	}
}

func TestEpochFileExcludedFromBackup(t *testing.T) {
	dir := t.TempDir()
	s, _ := open(t, dir, Options{})
	defer s.Close()
	mustPut(t, s, "a", fixtures.Figure2())
	if _, err := s.Promote(); !errors.Is(err, ErrNotFollower) {
		// Just confirming the leader path; epoch stays 1.
		t.Fatalf("Promote on leader = %v, want ErrNotFollower", err)
	}
	// Bump the epoch via fencing so the EPOCH file definitely exists.
	if err := s.Fence(9, "http://elsewhere"); err != nil {
		t.Fatalf("Fence: %v", err)
	}
	bdir := t.TempDir()
	if _, err := s.Backup(bdir); err != nil {
		t.Fatalf("Backup: %v", err)
	}
	if _, err := os.Stat(filepath.Join(bdir, epochFileName)); !os.IsNotExist(err) {
		t.Fatalf("EPOCH file must not be part of backups (stat err = %v)", err)
	}
}

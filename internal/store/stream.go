package store

// WAL streaming for replication. A leader serves its log to followers as
// raw CRC-framed segment bytes addressed by Pos: sealed segments are
// immutable and can be read without coordination, and the active segment
// is safe to read up to the committed append offset — commitLocked only
// ever advances walBytes after the bytes are fully written, so a reader
// that cuts at the committed offset never observes a torn frame even
// while writers keep appending. Because segment numbers are never reused
// and a restore leaves a permanent gap in the numbering (see backup.go),
// a follower position that falls into such a gap — or names bytes the
// leader never wrote — is proof the follower's history is not a prefix
// of this leader's; ReadStream reports that as ErrTimelineDiverged
// rather than serving spliced history.

import (
	"errors"
	"fmt"
)

// ErrTimelineDiverged marks a stream request whose position does not lie
// on this store's timeline: the segment number falls in a restore gap,
// names history older than what the store retains, or points past bytes
// the store ever committed. A follower getting this error cannot catch
// up by replaying — it must re-bootstrap from a fresh backup. Match with
// errors.Is.
var ErrTimelineDiverged = errors.New("store: timeline diverged")

// DefaultStreamChunk bounds one ReadStream chunk when the caller passes
// maxBytes <= 0.
const DefaultStreamChunk = 1 << 20

// StreamChunk is one ReadStream result: raw CRC-framed WAL bytes
// starting at From, with Next the position the reader should resume
// from. From is the requested position normalized past any rotation
// boundary — if the request sat exactly at a sealed segment's end, From
// names the next existing segment at offset 0 (skipping any restore
// gap), which is the follower's cue to rotate before applying Data. A
// chunk never spans a segment boundary; when it ends exactly at a
// sealed segment's end, Next likewise names the successor segment's
// start. An empty Data with Next == From means the reader is caught up
// with End, the store's committed position at read time.
type StreamChunk struct {
	From Pos
	Next Pos
	End  Pos
	// LagBytes is how many committed WAL bytes remain at or after Next —
	// the exact byte lag of a follower that has applied through Next.
	LagBytes int64
	// Epoch is the leader epoch the chunk was read under; followers pass
	// it to ReplApply so bytes from a superseded leader are refused (see
	// epoch.go).
	Epoch uint64
	Data  []byte
}

// streamView is an immutable snapshot of the segment layout, taken under
// s.mu and used for validation after the lock is dropped.
type streamView struct {
	sealed []segInfo
	seg    uint64
	off    int64
}

func (s *Store) streamViewLocked() streamView {
	v := streamView{seg: s.seg, off: s.walBytes}
	v.sealed = append(v.sealed, s.sealed...)
	return v
}

// lagFrom sums the committed bytes at or after p. p must have been
// validated against the view.
func (v streamView) lagFrom(p Pos) int64 {
	var lag int64
	for _, si := range v.sealed {
		if si.n > p.Seg {
			lag += si.size
		} else if si.n == p.Seg {
			lag += si.size - p.Off
		}
	}
	if p.Seg == v.seg {
		lag += v.off - p.Off
	} else if p.Seg < v.seg {
		lag += v.off
	}
	return lag
}

// ReadStream returns committed WAL bytes starting at from, up to
// maxBytes (cut on a frame boundary; maxBytes <= 0 means
// DefaultStreamChunk). A from at the committed position returns an empty
// chunk — callers long-polling for the tail should wait on CommitSignal
// and retry. A from that does not lie on this store's timeline returns
// ErrTimelineDiverged; a from naming a segment that has been compacted
// away returns ErrTimelineDiverged too (the follower is too far behind
// the retained history and must re-bootstrap). from.Seg == 0 is invalid.
func (s *Store) ReadStream(from Pos, maxBytes int) (StreamChunk, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultStreamChunk
	}
	if from.Seg == 0 {
		return StreamChunk{}, fmt.Errorf("%w: position %s has no segment", ErrTimelineDiverged, from)
	}
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return StreamChunk{}, fmt.Errorf("store: closed")
	}
	view := s.streamViewLocked()
	epoch := s.epoch
	s.mu.RUnlock()

	start, err := view.resolve(from)
	if err != nil {
		return StreamChunk{}, err
	}
	end := Pos{Seg: view.seg, Off: view.off}
	chunk := StreamChunk{From: start, Next: start, End: end, Epoch: epoch}
	if start == end {
		// Caught up. From/Next carry the normalized position: if the
		// request sat exactly on a sealed segment's end they already name
		// the successor segment's start, which is the follower's cue to
		// rotate even though no bytes rode along.
		return chunk, nil
	}

	// Serve from start's segment: a sealed one in full (up to maxBytes),
	// or the active one cut at the committed offset.
	var segEnd int64
	sealedSeg := start.Seg != view.seg
	if sealedSeg {
		segEnd = view.sealedSize(start.Seg)
	} else {
		segEnd = view.off
	}
	data, err := s.fs.ReadFile(s.path(segmentFile(start.Seg)))
	if err != nil {
		// The segment can vanish between the snapshot and the read if a
		// compaction slipped in; the caller retries and the revalidation
		// then reports trimmed history as divergence.
		return StreamChunk{}, fmt.Errorf("store: stream read segment %d: %w", start.Seg, err)
	}
	if int64(len(data)) < segEnd {
		return StreamChunk{}, fmt.Errorf("store: stream segment %d short (%d bytes, want %d)", start.Seg, len(data), segEnd)
	}
	data = data[start.Off:segEnd]
	if len(data) > maxBytes {
		if cut := frameBoundaryAtOrBefore(data, int64(maxBytes)); cut > 0 {
			data = data[:cut]
		} else {
			// A single frame larger than maxBytes still ships whole.
			_, size, ferr := parseFrame(data)
			if ferr != nil {
				return StreamChunk{}, fmt.Errorf("store: stream frame at %s: %w", start, ferr)
			}
			data = data[:size]
		}
	}
	chunk.Data = data
	next := Pos{Seg: start.Seg, Off: start.Off + int64(len(data))}
	if sealedSeg && next.Off == segEnd {
		// Finished a sealed segment: resume at the next existing one.
		next = Pos{Seg: view.nextSegment(start.Seg), Off: 0}
	}
	chunk.Next = next
	chunk.LagBytes = view.lagFrom(next)
	return chunk, nil
}

// resolve validates from against the view and normalizes end-of-segment
// positions forward to the next segment's start. It returns the position
// streaming should proceed from, or ErrTimelineDiverged.
func (v streamView) resolve(from Pos) (Pos, error) {
	for {
		if from.Seg == v.seg {
			if from.Off > v.off {
				return Pos{}, fmt.Errorf("%w: position %s is past the committed position %d:%d",
					ErrTimelineDiverged, from, v.seg, v.off)
			}
			return from, nil
		}
		if from.Seg > v.seg {
			return Pos{}, fmt.Errorf("%w: position %s is past the active segment %d",
				ErrTimelineDiverged, from, v.seg)
		}
		sz, ok := v.sealedLookup(from.Seg)
		if !ok {
			if len(v.sealed) == 0 || from.Seg < v.sealed[0].n {
				return Pos{}, fmt.Errorf("%w: segment %d is older than the retained history (re-bootstrap required)",
					ErrTimelineDiverged, from.Seg)
			}
			return Pos{}, fmt.Errorf("%w: segment %d falls in a timeline gap left by a restore",
				ErrTimelineDiverged, from.Seg)
		}
		if from.Off > sz {
			return Pos{}, fmt.Errorf("%w: position %s is past sealed segment %d's end (%d bytes)",
				ErrTimelineDiverged, from, from.Seg, sz)
		}
		if from.Off < sz {
			return from, nil
		}
		// Exactly at the sealed end — the rotation boundary. Resume at the
		// next existing segment (skipping any restore gap).
		from = Pos{Seg: v.nextSegment(from.Seg), Off: 0}
	}
}

func (v streamView) sealedLookup(n uint64) (int64, bool) {
	for _, si := range v.sealed {
		if si.n == n {
			return si.size, true
		}
	}
	return 0, false
}

func (v streamView) sealedSize(n uint64) int64 {
	sz, _ := v.sealedLookup(n)
	return sz
}

// nextSegment returns the lowest existing segment number greater than n
// (sealed or active). Sealed is ascending; the active segment is always
// the highest.
func (v streamView) nextSegment(n uint64) uint64 {
	for _, si := range v.sealed {
		if si.n > n {
			return si.n
		}
	}
	return v.seg
}

// CommitSignal returns a channel closed the next time the store's
// position advances (a group commit lands). Long-polling stream readers
// wait on it after an empty ReadStream instead of spinning.
func (s *Store) CommitSignal() <-chan struct{} {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.commitSignal
}

// signalCommitLocked wakes CommitSignal waiters. Callers hold s.mu.
func (s *Store) signalCommitLocked() {
	close(s.commitSignal)
	s.commitSignal = make(chan struct{})
}

package store

// WAL segmentation. The log is a sequence of monotonically numbered,
// CRC-framed segment files:
//
//	wal-00000001.log, wal-00000002.log, ...
//
// Exactly one segment — the highest-numbered — is active (appended to);
// every lower-numbered segment present is sealed and immutable. The
// committer rotates to a fresh segment once the active one passes
// Options.SegmentSize, and compaction always rotates, so segment numbers
// are never reused: a (segment, offset) pair names a WAL position for the
// lifetime of the store, which is what backups and point-in-time recovery
// address records by (see backup.go). Sealed segments are what online
// backup copies, the scrubber re-reads, and — when Options.ArchiveDir is
// set — the archiver hard-links or copies into the archive.

import (
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"pxml/internal/vfs"
)

const (
	segPrefix = "wal-"
	segSuffix = ".log"
)

// segmentFile renders the canonical file name for segment n.
func segmentFile(n uint64) string {
	return fmt.Sprintf("%s%08d%s", segPrefix, n, segSuffix)
}

// parseSegmentFile extracts the segment number from a base file name,
// reporting whether the name is a well-formed segment name.
func parseSegmentFile(base string) (uint64, bool) {
	if !strings.HasPrefix(base, segPrefix) || !strings.HasSuffix(base, segSuffix) {
		return 0, false
	}
	digits := strings.TrimSuffix(strings.TrimPrefix(base, segPrefix), segSuffix)
	if digits == "" {
		return 0, false
	}
	n, err := strconv.ParseUint(digits, 10, 64)
	if err != nil || n == 0 {
		return 0, false
	}
	return n, true
}

// listSegments returns the segment numbers present in dir, sorted
// ascending. A missing directory lists as empty.
func listSegments(fsys vfs.FS, dir string) ([]uint64, error) {
	paths, err := fsys.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if err != nil {
		return nil, err
	}
	segs := make([]uint64, 0, len(paths))
	for _, p := range paths {
		if n, ok := parseSegmentFile(filepath.Base(p)); ok {
			segs = append(segs, n)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

// Pos is an LSN-style write-ahead-log position: byte offset Off within
// segment Seg. Positions are totally ordered and monotone over the life
// of a store because segment numbers are never reused; every group commit
// advances the store's position by one batch of frames, so any Pos
// reported by (*Store).Pos or a backup manifest lies on a frame boundary.
type Pos struct {
	Seg uint64 `json:"seg"`
	Off int64  `json:"off"`
}

// Less orders positions: earlier segment, or earlier offset within one.
func (p Pos) Less(q Pos) bool {
	if p.Seg != q.Seg {
		return p.Seg < q.Seg
	}
	return p.Off < q.Off
}

// IsZero reports an unset position.
func (p Pos) IsZero() bool { return p.Seg == 0 && p.Off == 0 }

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Seg, p.Off) }

// ParsePos parses the "seg:off" rendering used by pxmlbackup -to-offset.
func ParsePos(s string) (Pos, error) {
	segStr, offStr, ok := strings.Cut(s, ":")
	if !ok {
		return Pos{}, fmt.Errorf("store: bad position %q (want seg:off)", s)
	}
	seg, err := strconv.ParseUint(segStr, 10, 64)
	if err != nil || seg == 0 {
		return Pos{}, fmt.Errorf("store: bad segment in position %q", s)
	}
	off, err := strconv.ParseInt(offStr, 10, 64)
	if err != nil || off < 0 {
		return Pos{}, fmt.Errorf("store: bad offset in position %q", s)
	}
	return Pos{Seg: seg, Off: off}, nil
}

// segInfo tracks one sealed, immutable local segment.
type segInfo struct {
	n        uint64
	size     int64
	archived bool
}

package store

import (
	"encoding/binary"
	"fmt"

	"pxml/internal/codec"
	"pxml/internal/core"
)

// Record operations. A frame payload is:
//
//	op (1 byte) | name length (uvarint) | name | body
//
// where body is the pxml-bin/1 encoding of the instance for opPut and
// empty for opDelete. Snapshot files contain only opPut records; the WAL
// contains both.
const (
	opPut    = byte(1)
	opDelete = byte(2)
)

// record is one decoded catalog mutation.
type record struct {
	op   byte
	name string
	inst *core.ProbInstance
}

// appendPutRecord appends an opPut payload for (name, pi) to buf.
func appendPutRecord(buf []byte, name string, pi *core.ProbInstance) []byte {
	buf = append(buf, opPut)
	buf = binary.AppendUvarint(buf, uint64(len(name)))
	buf = append(buf, name...)
	return codec.AppendBinary(buf, pi)
}

// appendDeleteRecord appends an opDelete payload for name to buf.
func appendDeleteRecord(buf []byte, name string) []byte {
	buf = append(buf, opDelete)
	buf = binary.AppendUvarint(buf, uint64(len(name)))
	return append(buf, name...)
}

// decodeRecord parses one frame payload. The instance is fully decoded
// and validated, so a record that survives the frame checksum can still
// be rejected here (e.g. a writer bug produced an invalid instance); the
// caller quarantines such records like any other corruption.
func decodeRecord(payload []byte) (record, error) {
	if len(payload) < 1 {
		return record{}, fmt.Errorf("store: empty record payload")
	}
	op := payload[0]
	n, k := binary.Uvarint(payload[1:])
	if k <= 0 || n > uint64(len(payload)-1-k) {
		return record{}, fmt.Errorf("store: malformed record name length")
	}
	name := string(payload[1+k : 1+k+int(n)])
	if name == "" {
		return record{}, fmt.Errorf("store: record with empty name")
	}
	body := payload[1+k+int(n):]
	switch op {
	case opPut:
		pi, err := codec.DecodeBinaryBytes(body)
		if err != nil {
			return record{}, fmt.Errorf("store: record %q: %w", name, err)
		}
		return record{op: opPut, name: name, inst: pi}, nil
	case opDelete:
		if len(body) != 0 {
			return record{}, fmt.Errorf("store: delete record %q carries %d stray bytes", name, len(body))
		}
		return record{op: opDelete, name: name}, nil
	default:
		return record{}, fmt.Errorf("store: unknown record op %d", op)
	}
}

package store

import (
	"encoding/binary"
	"fmt"

	"pxml/internal/codec"
	"pxml/internal/core"
)

// Record operations. A frame payload is:
//
//	op (1 byte) | name length (uvarint) | name | body
//
// where body is the pxml-bin/1 encoding of the instance for opPut and
// empty for opDelete. Snapshot files contain only opPut records; the WAL
// contains both, plus — when WAL archiving is enabled — opStamp commit
// markers:
//
//	op (1 byte = 3) | unix nanoseconds (int64 LE)
//
// The committer writes one stamp ahead of each group commit so archived
// segments carry the wall-clock trail point-in-time recovery cuts on.
// Replay ignores stamps; they never change catalog state.
const (
	opPut    = byte(1)
	opDelete = byte(2)
	opStamp  = byte(3)
)

// record is one decoded catalog mutation (or, for opStamp, a commit-time
// marker with ts set and no name/instance).
type record struct {
	op   byte
	name string
	inst *core.ProbInstance
	ts   int64 // unix nanoseconds; opStamp only
}

// appendStampRecord appends an opStamp payload for the given unix-nano
// commit time to buf.
func appendStampRecord(buf []byte, unixNano int64) []byte {
	buf = append(buf, opStamp)
	return binary.LittleEndian.AppendUint64(buf, uint64(unixNano))
}

// appendPutRecord appends an opPut payload for (name, pi) to buf.
func appendPutRecord(buf []byte, name string, pi *core.ProbInstance) []byte {
	buf = append(buf, opPut)
	buf = binary.AppendUvarint(buf, uint64(len(name)))
	buf = append(buf, name...)
	return codec.AppendBinary(buf, pi)
}

// appendDeleteRecord appends an opDelete payload for name to buf.
func appendDeleteRecord(buf []byte, name string) []byte {
	buf = append(buf, opDelete)
	buf = binary.AppendUvarint(buf, uint64(len(name)))
	return append(buf, name...)
}

// splitRecord parses a frame payload's header — op, name, undecoded
// body — without touching the instance encoding. It is the cheap half
// of decodeRecord, used by the lazy snapshot load to defer the
// expensive structural decode to first touch. The returned name is a
// fresh heap string; body aliases payload. For opStamp, body is the
// 8-byte timestamp and name is empty.
func splitRecord(payload []byte) (op byte, name string, body []byte, err error) {
	if len(payload) < 1 {
		return 0, "", nil, fmt.Errorf("store: empty record payload")
	}
	op = payload[0]
	if op == opStamp {
		if len(payload) != 9 {
			return 0, "", nil, fmt.Errorf("store: stamp record is %d bytes, want 9", len(payload))
		}
		return opStamp, "", payload[1:], nil
	}
	if op != opPut && op != opDelete {
		return 0, "", nil, fmt.Errorf("store: unknown record op %d", op)
	}
	n, k := binary.Uvarint(payload[1:])
	if k <= 0 || n > uint64(len(payload)-1-k) {
		return 0, "", nil, fmt.Errorf("store: malformed record name length")
	}
	name = string(payload[1+k : 1+k+int(n)])
	if name == "" {
		return 0, "", nil, fmt.Errorf("store: record with empty name")
	}
	body = payload[1+k+int(n):]
	if op == opDelete && len(body) != 0 {
		return 0, "", nil, fmt.Errorf("store: delete record %q carries %d stray bytes", name, len(body))
	}
	return op, name, body, nil
}

// decodeRecord parses one frame payload. The instance is fully decoded
// and validated, so a record that survives the frame checksum can still
// be rejected here (e.g. a writer bug produced an invalid instance); the
// caller quarantines such records like any other corruption.
func decodeRecord(payload []byte) (record, error) {
	op, name, body, err := splitRecord(payload)
	if err != nil {
		return record{}, err
	}
	switch op {
	case opStamp:
		return record{op: opStamp, ts: int64(binary.LittleEndian.Uint64(body))}, nil
	case opPut:
		pi, err := codec.DecodeBinaryBytes(body)
		if err != nil {
			return record{}, fmt.Errorf("store: record %q: %w", name, err)
		}
		return record{op: opPut, name: name, inst: pi}, nil
	default:
		return record{op: opDelete, name: name}, nil
	}
}

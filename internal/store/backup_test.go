package store

// Backup, restore, point-in-time recovery, scrubbing, and the
// quarantine cap. The central claims: a backup restores byte-identically
// to what the manifest promises; a backup that fails partway never
// leaves a manifest that verifies; restore never destroys existing data
// before the restored tree has proven it opens; and PITR cuts land
// exactly where asked.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"pxml/internal/fixtures"
	"pxml/internal/metrics"
	"pxml/internal/vfs"
)

func TestBackupVerifyRestoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, _ := open(t, dir, Options{SegmentSize: 256, CompactThreshold: -1})
	fig := fixtures.Figure2()
	for i := 0; i < 6; i++ {
		mustPut(t, s, fmt.Sprintf("pre-%d", i), fig)
	}
	if err := s.Compact(); err != nil { // backup captures snapshot + segments
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		mustPut(t, s, fmt.Sprintf("post-%d", i), fig)
	}
	if err := s.Delete("pre-0"); err != nil {
		t.Fatal(err)
	}

	bdir := filepath.Join(t.TempDir(), "bkup")
	man, err := s.Backup(bdir)
	if err != nil {
		t.Fatal(err)
	}
	if man.Format != ManifestFormat || man.Instances != 11 || man.Snapshot == nil || len(man.Segments) == 0 {
		t.Fatalf("implausible manifest: %+v", man)
	}
	if man.Pos != s.Pos() {
		t.Fatalf("manifest pos %s, store pos %s (no writes in between)", man.Pos, s.Pos())
	}
	if _, err := VerifyBackup(nil, bdir); err != nil {
		t.Fatalf("fresh backup fails verification: %v", err)
	}
	// The store stays fully writable during and after a backup.
	mustPut(t, s, "after-backup", fig)
	s.Close()

	target := filepath.Join(t.TempDir(), "restored")
	res, err := Restore(bdir, target, RestoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instances != 11 || res.Pos != man.Pos {
		t.Fatalf("restore result %+v, want 11 instances at %s", res, man.Pos)
	}
	r, rep := open(t, target, Options{})
	defer r.Close()
	if rep.dirty() {
		t.Fatalf("restored store dirty on open: %s", rep)
	}
	for i := 1; i < 6; i++ {
		wantInstance(t, r, fmt.Sprintf("pre-%d", i), fig)
	}
	for i := 0; i < 6; i++ {
		wantInstance(t, r, fmt.Sprintf("post-%d", i), fig)
	}
	if _, ok := r.Get("pre-0"); ok {
		t.Fatal("deleted instance resurrected by restore")
	}
	if _, ok := r.Get("after-backup"); ok {
		t.Fatal("post-backup write leaked into the backup")
	}
}

// TestOnlineBackupUnderWrites runs Backup while writers hammer the store
// and proves the backup is a consistent prefix: everything acknowledged
// before the backup started is in it, and it verifies and restores.
func TestOnlineBackupUnderWrites(t *testing.T) {
	dir := t.TempDir()
	s, _ := open(t, dir, Options{SegmentSize: 512, CompactThreshold: -1})
	defer s.Close()
	fig := fixtures.Figure2()
	for i := 0; i < 8; i++ {
		mustPut(t, s, fmt.Sprintf("pre-%d", i), fig)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				mustPut(t, s, fmt.Sprintf("live-%d", i%32), fig)
			}
		}
	}()
	bdir := filepath.Join(t.TempDir(), "bkup")
	man, err := s.Backup(bdir)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyBackup(nil, bdir); err != nil {
		t.Fatalf("online backup fails verification: %v", err)
	}
	target := filepath.Join(t.TempDir(), "restored")
	res, err := Restore(bdir, target, RestoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instances != man.Instances {
		t.Fatalf("restore recovered %d instances, manifest says %d", res.Instances, man.Instances)
	}
	r, rep := open(t, target, Options{})
	defer r.Close()
	if rep.dirty() {
		t.Fatalf("restored store dirty: %s", rep)
	}
	for i := 0; i < 8; i++ {
		wantInstance(t, r, fmt.Sprintf("pre-%d", i), fig)
	}
}

// TestBackupFaultAtomicity injects copy/fsync/rename failures into the
// backup destination and demands atomic failure: Backup errors, no
// manifest appears, and VerifyBackup refuses the leftovers.
func TestBackupFaultAtomicity(t *testing.T) {
	cases := []struct {
		name string
		rule vfs.Rule
	}{
		{"first data write fails", vfs.Rule{Op: vfs.OpWrite, Path: "bkup", Times: 1}},
		{"later data write fails", vfs.Rule{Op: vfs.OpWrite, Path: "bkup", After: 2, Times: 1}},
		{"torn data write", vfs.Rule{Op: vfs.OpWrite, Path: "bkup", After: 1, Times: 1, ShortWrite: 7}},
		{"data fsync fails", vfs.Rule{Op: vfs.OpSync, Path: "bkup", Times: 1}},
		{"manifest write fails", vfs.Rule{Op: vfs.OpWrite, Path: manifestName, Times: 1}},
		{"manifest fsync fails", vfs.Rule{Op: vfs.OpSync, Path: manifestName, Times: 1}},
		{"manifest rename fails", vfs.Rule{Op: vfs.OpRename, Path: manifestName, Times: 1}},
		{"source read fails", vfs.Rule{Op: vfs.OpRead, Path: segPrefix, After: 1, Times: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ff := vfs.NewFaultFS(nil)
			dir := t.TempDir()
			s, _ := open(t, dir, Options{SegmentSize: 256, CompactThreshold: -1, FS: ff})
			defer s.Close()
			fig := fixtures.Figure2()
			for i := 0; i < 8; i++ {
				mustPut(t, s, fmt.Sprintf("inst-%d", i), fig)
			}
			if err := s.Compact(); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 4; i++ {
				mustPut(t, s, fmt.Sprintf("tail-%d", i), fig)
			}
			bdir := filepath.Join(t.TempDir(), "bkup")
			ff.Inject(tc.rule)
			_, err := s.Backup(bdir)
			ff.Reset()
			if err == nil {
				t.Fatal("Backup succeeded despite injected fault")
			}
			if _, statErr := os.Stat(filepath.Join(bdir, manifestName)); statErr == nil {
				t.Fatal("failed backup left a manifest behind")
			}
			if _, verr := VerifyBackup(nil, bdir); verr == nil {
				t.Fatal("failed backup verifies")
			}
			// The store shrugs the failed backup off: still healthy, still
			// writable, and a clean retry succeeds.
			if h := s.Health(); h.Degraded {
				t.Fatalf("failed backup degraded the store: %+v", h)
			}
			mustPut(t, s, "after-fault", fig)
			if _, err := s.Backup(filepath.Join(t.TempDir(), "retry")); err != nil {
				t.Fatalf("retry backup after fault: %v", err)
			}
		})
	}
}

func TestRestoreRefusesNonEmptyWithoutForce(t *testing.T) {
	dir := t.TempDir()
	fig := fixtures.Figure2()
	s, _ := open(t, dir, Options{})
	mustPut(t, s, "keep", fig)
	bdir := filepath.Join(t.TempDir(), "bkup")
	if _, err := s.Backup(bdir); err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, "overwritten-by-restore", fig)
	s.Close()

	if _, err := Restore(bdir, dir, RestoreOptions{}); !errors.Is(err, ErrRestoreNonEmpty) {
		t.Fatalf("restore into live data dir: err = %v, want ErrRestoreNonEmpty", err)
	}
	// Refusal touched nothing: the store still has both instances.
	s2, _ := open(t, dir, Options{})
	if _, ok := s2.Get("overwritten-by-restore"); !ok {
		t.Fatal("refused restore damaged the existing store")
	}
	s2.Close()

	res, err := Restore(bdir, dir, RestoreOptions{Force: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instances != 1 {
		t.Fatalf("forced restore recovered %d instances, want 1", res.Instances)
	}
	if _, err := os.Stat(dir + ".pre-restore"); !os.IsNotExist(err) {
		t.Fatalf("old data dir not cleaned up after successful restore (err=%v)", err)
	}
	s3, _ := open(t, dir, Options{})
	defer s3.Close()
	wantInstance(t, s3, "keep", fig)
	if _, ok := s3.Get("overwritten-by-restore"); ok {
		t.Fatal("forced restore kept post-backup instance")
	}
}

// TestForcedRestoreKeepsOldDataWhenStagedTreeIsBroken: --force must not
// destroy the old directory when the restored tree fails validation.
func TestForcedRestoreKeepsOldDataWhenStagedTreeIsBroken(t *testing.T) {
	dir := t.TempDir()
	fig := fixtures.Figure2()
	s, _ := open(t, dir, Options{})
	mustPut(t, s, "precious", fig)
	bdir := filepath.Join(t.TempDir(), "bkup")
	if _, err := s.Backup(bdir); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Make the staged tree's validation open fail: inject on the stage
	// path only, so verification and copying succeed first.
	ff := vfs.NewFaultFS(nil)
	ff.Inject(vfs.Rule{Op: vfs.OpRead, Path: ".restoring", Times: 1})
	if _, err := Restore(bdir, dir, RestoreOptions{Force: true, FS: ff}); err == nil {
		t.Fatal("restore succeeded despite staged-tree fault")
	}
	s2, _ := open(t, dir, Options{})
	defer s2.Close()
	wantInstance(t, s2, "precious", fig)
}

// TestRestoreToPos restores the same backup at every acknowledged WAL
// position in turn and demands the exact prefix each time.
func TestRestoreToPos(t *testing.T) {
	dir := t.TempDir()
	s, _ := open(t, dir, Options{SegmentSize: 256, CompactThreshold: -1})
	fig := fixtures.Figure2()
	const n = 10
	positions := make([]Pos, 0, n)
	for i := 0; i < n; i++ {
		mustPut(t, s, fmt.Sprintf("inst-%d", i), fig)
		positions = append(positions, s.Pos())
	}
	bdir := filepath.Join(t.TempDir(), "bkup")
	if _, err := s.Backup(bdir); err != nil {
		t.Fatal(err)
	}
	s.Close()

	for i, pos := range positions {
		target := filepath.Join(t.TempDir(), fmt.Sprintf("at-%d", i))
		res, err := Restore(bdir, target, RestoreOptions{ToPos: &pos})
		if err != nil {
			t.Fatalf("restore to %s: %v", pos, err)
		}
		if res.Instances != i+1 {
			t.Fatalf("restore to %s: %d instances, want %d", pos, res.Instances, i+1)
		}
		r, _ := open(t, target, Options{})
		for j := 0; j <= i; j++ {
			wantInstance(t, r, fmt.Sprintf("inst-%d", j), fig)
		}
		if _, ok := r.Get(fmt.Sprintf("inst-%d", i+1)); ok {
			t.Fatalf("restore to %s includes later write", pos)
		}
		r.Close()
	}
}

// TestPITRAcrossArchive: a base backup plus archived segments roll the
// restore forward past the backup, and -to-time cuts between phases.
func TestPITRAcrossArchive(t *testing.T) {
	dir := t.TempDir()
	arch := t.TempDir()
	s, _ := open(t, dir, Options{SegmentSize: 256, CompactThreshold: -1, ArchiveDir: arch})
	fig := fixtures.Figure2()
	for i := 0; i < 5; i++ {
		mustPut(t, s, fmt.Sprintf("phase1-%d", i), fig)
	}
	bdir := filepath.Join(t.TempDir(), "base")
	if _, err := s.Backup(bdir); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	cutAt := time.Now()
	time.Sleep(20 * time.Millisecond)
	for i := 0; i < 5; i++ {
		mustPut(t, s, fmt.Sprintf("phase2-%d", i), fig)
	}
	// Compact seals and archives everything written so far; the archive
	// now extends well past the base backup.
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Roll fully forward: base backup + whole archive.
	full := filepath.Join(t.TempDir(), "full")
	res, err := Restore(bdir, full, RestoreOptions{ArchiveDir: arch})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instances != 10 {
		t.Fatalf("full PITR recovered %d instances, want 10", res.Instances)
	}
	r, _ := open(t, full, Options{})
	wantInstance(t, r, "phase2-4", fig)
	r.Close()

	// Cut between the phases: phase 1 only.
	cut := filepath.Join(t.TempDir(), "cut")
	res, err = Restore(bdir, cut, RestoreOptions{ArchiveDir: arch, ToTime: cutAt})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instances != 5 {
		t.Fatalf("PITR to %s recovered %d instances, want 5", cutAt.Format(time.RFC3339Nano), res.Instances)
	}
	r2, _ := open(t, cut, Options{})
	defer r2.Close()
	for i := 0; i < 5; i++ {
		wantInstance(t, r2, fmt.Sprintf("phase1-%d", i), fig)
	}
	if _, ok := r2.Get("phase2-0"); ok {
		t.Fatal("time cut let a phase-2 write through")
	}
}

func TestRestoreRejectsPosAndTimeTogether(t *testing.T) {
	pos := Pos{Seg: 1}
	_, err := Restore("x", "y", RestoreOptions{ToPos: &pos, ToTime: time.Now()})
	if err == nil {
		t.Fatal("restore accepted -to-offset and -to-time together")
	}
}

func TestScrubDetectsAtRestCorruption(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	s, _ := open(t, dir, Options{SegmentSize: 256, CompactThreshold: -1, Registry: reg})
	defer s.Close()
	fig := fixtures.Figure2()
	for i := 0; i < 8; i++ {
		mustPut(t, s, fmt.Sprintf("inst-%d", i), fig)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, "tail", fig)
	if err := s.Scrub(); err != nil {
		t.Fatalf("scrub of a healthy store: %v", err)
	}
	h := s.Health()
	if h.ScrubPasses != 1 || h.ScrubCorruptions != 0 {
		t.Fatalf("health after clean scrub: %+v", h)
	}

	// Rot the at-rest snapshot behind the store's back.
	snap := filepath.Join(dir, snapshotName)
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(snap, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Scrub(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("scrub of rotted snapshot: err = %v, want ErrDegraded", err)
	}
	h = s.Health()
	if !h.Degraded || h.ScrubCorruptions == 0 {
		t.Fatalf("health after corrupt scrub: %+v", h)
	}
	if got := reg.Counter("store_scrub_corruptions").Value(); got == 0 {
		t.Fatal("store_scrub_corruptions not incremented")
	}
	if err := s.Put("rejected", fig); !errors.Is(err, ErrDegraded) {
		t.Fatalf("write to scrub-degraded store: err = %v, want ErrDegraded", err)
	}
	// Reads keep serving from memory.
	wantInstance(t, s, "tail", fig)
}

func TestBackgroundScrubber(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	s, _ := open(t, dir, Options{
		SegmentSize:      256,
		CompactThreshold: -1,
		ScrubInterval:    5 * time.Millisecond,
		Registry:         reg,
	})
	defer s.Close()
	fig := fixtures.Figure2()
	for i := 0; i < 8; i++ {
		mustPut(t, s, fmt.Sprintf("inst-%d", i), fig)
	}
	waitFor(t, 15*time.Second, "background scrub pass", func() bool {
		return reg.Counter("store_scrub_passes").Value() >= 1
	})
	if h := s.Health(); h.Degraded || h.ScrubLastAt == "" {
		t.Fatalf("health after background scrub of healthy store: %+v", h)
	}

	// Rot a sealed segment; the background scrubber must notice on its
	// own, with no Scrub() call.
	segs, err := listSegments(vfs.OS, dir)
	if err != nil || len(segs) < 2 {
		t.Fatalf("want a sealed segment to rot (segments %v, err=%v)", segs, err)
	}
	sealed := filepath.Join(dir, segmentFile(segs[0]))
	data, err := os.ReadFile(sealed)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(sealed, data, 0o644); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 15*time.Second, "background scrubber to degrade the store", func() bool {
		return s.Health().Degraded
	})
}

func TestQuarantineCap(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	// A segment of valid frames wrapping undecodable records: every one
	// quarantines as its own file.
	var buf []byte
	for i := 0; i < 8; i++ {
		buf = appendFrame(buf, []byte{99, byte(i)})
	}
	if err := os.WriteFile(filepath.Join(dir, segmentFile(1)), buf, 0o644); err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	s, rep := open(t, dir, Options{QuarantineMax: 3, Registry: reg})
	defer s.Close()
	if len(rep.Quarantined) != 8 {
		t.Fatalf("quarantined %d records, want 8", len(rep.Quarantined))
	}
	entries, err := os.ReadDir(filepath.Join(dir, quarantineDir))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("quarantine/ holds %d files under a 3-file cap", len(entries))
	}
	if h := s.Health(); h.QuarantineFiles != 3 {
		t.Fatalf("health reports %d quarantine files, want 3", h.QuarantineFiles)
	}
	if got := reg.Gauge("store_quarantine_files").Value(); got != 3 {
		t.Fatalf("store_quarantine_files gauge = %d, want 3", got)
	}
}

package store

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"time"

	"pxml/internal/metrics"
)

// ErrDegraded marks every write rejected because the store has flipped
// into its sticky read-only degraded state. Match with errors.Is; the
// wrapped message carries the original cause.
var ErrDegraded = errors.New("store: degraded (read-only)")

// Health is a point-in-time view of the store's condition, served under
// /metrics and behind /readyz. Timestamps are RFC 3339 strings so a
// healthy store marshals without zero-time noise.
type Health struct {
	// Degraded reports the sticky read-only state: an unrecoverable WAL
	// or snapshot write error was hit, reads keep serving from memory,
	// and Put/Delete return ErrDegraded until the process restarts.
	Degraded bool `json:"degraded"`
	// Reason is the error that degraded the store.
	Reason string `json:"reason,omitempty"`
	// DegradedSince is when the state flipped.
	DegradedSince string `json:"degraded_since,omitempty"`
	// Instances and WALBytes/WALRecords describe the live catalog.
	Instances  int   `json:"instances"`
	WALBytes   int64 `json:"wal_bytes"`
	WALRecords int64 `json:"wal_records"`
	// WALSegments counts local segment files (sealed plus active);
	// WALPos is the current append position ("seg:off").
	WALSegments int    `json:"wal_segments"`
	WALPos      string `json:"wal_pos"`
	// FsyncErrors and CompactErrors count failed WAL flushes and failed
	// snapshot compactions (including retried transients that later
	// succeeded); RotateErrors and ArchiveErrors count failed segment
	// rotations and failed archive copies (both retried, not fatal).
	FsyncErrors   int64 `json:"fsync_errors"`
	CompactErrors int64 `json:"compact_errors"`
	RotateErrors  int64 `json:"rotate_errors,omitempty"`
	ArchiveErrors int64 `json:"archive_errors,omitempty"`
	// ScrubPasses counts completed scrub passes over the at-rest files;
	// ScrubCorruptions counts checksum mismatches the scrubber found (any
	// nonzero count has also degraded the store). ScrubLastAt is when the
	// last pass finished.
	ScrubPasses      int64  `json:"scrub_passes"`
	ScrubCorruptions int64  `json:"scrub_corruptions"`
	ScrubLastAt      string `json:"scrub_last_at,omitempty"`
	// QuarantineFiles is how many corrupt-region files quarantine/ holds.
	QuarantineFiles int `json:"quarantine_files"`
	// LastError is the most recent maintenance or write error observed,
	// degraded or not.
	LastError   string `json:"last_error,omitempty"`
	LastErrorAt string `json:"last_error_at,omitempty"`
}

// Health returns the current health snapshot.
func (s *Store) Health() Health {
	s.mu.RLock()
	defer s.mu.RUnlock()
	h := Health{
		Degraded:         s.degraded,
		Reason:           s.degradeCause,
		Instances:        s.Len(),
		WALBytes:         s.walTotal,
		WALRecords:       s.walRecords,
		WALSegments:      len(s.sealed) + 1,
		WALPos:           Pos{Seg: s.seg, Off: s.walBytes}.String(),
		FsyncErrors:      s.fsyncErrs,
		CompactErrors:    s.compactErrs,
		RotateErrors:     s.rotateErrs,
		ArchiveErrors:    s.archiveErrs,
		ScrubPasses:      s.scrubPasses,
		ScrubCorruptions: s.scrubCorruptions,
		QuarantineFiles:  s.quarantineFiles,
		LastError:        s.lastErr,
	}
	if !s.scrubLastAt.IsZero() {
		h.ScrubLastAt = s.scrubLastAt.UTC().Format(time.RFC3339Nano)
	}
	if !s.degradedAt.IsZero() {
		h.DegradedSince = s.degradedAt.UTC().Format(time.RFC3339Nano)
	}
	if !s.lastErrAt.IsZero() {
		h.LastErrorAt = s.lastErrAt.UTC().Format(time.RFC3339Nano)
	}
	return h
}

// Degraded reports whether the store is in its read-only degraded state.
func (s *Store) Degraded() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.degraded
}

// degradeLocked flips the store into the sticky read-only state (first
// call wins) and returns cause wrapped in ErrDegraded. Callers hold s.mu.
func (s *Store) degradeLocked(cause error) error {
	if !s.degraded {
		s.degraded = true
		s.degradedAt = time.Now()
		s.degradeCause = cause.Error()
		if s.degradedG != nil {
			s.degradedG.Set(1)
		}
		// Wake any Compact parked behind an online backup; it will see
		// the degraded flag and bail out.
		s.backupsDone.Broadcast()
		if s.opts.Logger != nil {
			s.opts.Logger.Printf("store: DEGRADED, serving read-only: %v", cause)
		}
	}
	return fmt.Errorf("%w: %w", ErrDegraded, cause)
}

// degradedErrLocked is the error writes get once the store is degraded.
func (s *Store) degradedErrLocked() error {
	return fmt.Errorf("%w: %s", ErrDegraded, s.degradeCause)
}

// noteErrLocked records one maintenance/write failure in the health
// report and the matching metric. Callers hold s.mu.
func (s *Store) noteErrLocked(tally *int64, c *metrics.Counter, err error) {
	*tally++
	if c != nil {
		c.Inc()
	}
	s.lastErr = err.Error()
	s.lastErrAt = time.Now()
}

// Background-retry tuning: transient fsync/compaction errors are retried
// with capped, jittered exponential backoff before the store degrades.
const (
	bgMaxAttempts = 5
	bgBaseBackoff = 25 * time.Millisecond
	bgMaxBackoff  = 2 * time.Second
)

// retrying runs fn until it succeeds, the store stops/degrades/closes,
// or bgMaxAttempts attempts have failed — at which point the store
// degrades with the final error. Used only by the background goroutine;
// fn must take its own locks.
func (s *Store) retrying(what string, fn func() error) {
	backoff := bgBaseBackoff
	for attempt := 1; ; attempt++ {
		s.mu.RLock()
		stop := s.closed || s.closing || s.degraded
		s.mu.RUnlock()
		if stop {
			return
		}
		err := fn()
		if err == nil || errors.Is(err, ErrDegraded) {
			return
		}
		if s.opts.Logger != nil {
			s.opts.Logger.Printf("store: %s attempt %d/%d failed: %v", what, attempt, bgMaxAttempts, err)
		}
		if attempt >= bgMaxAttempts {
			s.mu.Lock()
			s.degradeLocked(fmt.Errorf("%s failed after %d attempts: %w", what, attempt, err))
			s.mu.Unlock()
			return
		}
		if s.bgRetries != nil {
			s.bgRetries.Inc()
		}
		// Full jitter over [backoff/2, backoff] keeps retries from
		// synchronizing while staying deterministic in expectation.
		d := backoff/2 + time.Duration(rand.Int64N(int64(backoff/2)+1))
		select {
		case <-s.stop:
			return
		case <-time.After(d):
		}
		if backoff *= 2; backoff > bgMaxBackoff {
			backoff = bgMaxBackoff
		}
	}
}

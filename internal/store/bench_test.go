package store

import (
	"fmt"
	"sync/atomic"
	"testing"

	"pxml/internal/fixtures"
)

// benchOpen opens a throwaway store for benchmarking.
func benchOpen(b *testing.B, dir string, opts Options) *Store {
	b.Helper()
	s, _, err := Open(dir, opts)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func benchmarkWALAppend(b *testing.B, policy FsyncPolicy) {
	s := benchOpen(b, b.TempDir(), Options{Fsync: policy, CompactThreshold: -1})
	defer s.Close()
	pi := fixtures.Figure2()
	frame := appendFrame(nil, appendPutRecord(nil, "bench", pi))
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put("bench", pi); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWALAppendFsyncAlways(b *testing.B) { benchmarkWALAppend(b, FsyncAlways) }
func BenchmarkWALAppendFsyncNever(b *testing.B)  { benchmarkWALAppend(b, FsyncNever) }

// benchmarkConcurrentPut is the workload group commit exists for: 16
// writers hammering Put under fsync=always. With batching the writers'
// records share WAL writes and fsyncs; with CommitBatch=1 every record
// pays for its own.
func benchmarkConcurrentPut(b *testing.B, opts Options) {
	opts.Fsync = FsyncAlways
	opts.CompactThreshold = -1
	s := benchOpen(b, b.TempDir(), opts)
	defer s.Close()
	pi := fixtures.Figure2()
	var id atomic.Int64
	b.ReportAllocs()
	b.SetParallelism(16)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		name := fmt.Sprintf("w%d", id.Add(1))
		for pb.Next() {
			if err := s.Put(name, pi); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkConcurrentPutGroupCommit(b *testing.B) { benchmarkConcurrentPut(b, Options{}) }
func BenchmarkConcurrentPutNoBatch(b *testing.B) {
	benchmarkConcurrentPut(b, Options{CommitBatch: 1})
}

// BenchmarkOpenReplay measures recovery over a WAL of put records.
func BenchmarkOpenReplay(b *testing.B) {
	dir := b.TempDir()
	s := benchOpen(b, dir, Options{Fsync: FsyncNever, CompactThreshold: -1})
	pi := fixtures.Figure2()
	const records = 500
	for i := 0; i < records; i++ {
		if err := s.Put(fmt.Sprintf("inst-%03d", i%50), pi); err != nil {
			b.Fatal(err)
		}
	}
	walBytes := s.WALSize()
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(walBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, rep, err := Open(dir, Options{CompactThreshold: -1})
		if err != nil {
			b.Fatal(err)
		}
		if rep.WALRecords != records {
			b.Fatalf("replayed %d records, want %d", rep.WALRecords, records)
		}
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompact measures snapshotting a 50-instance catalog.
func BenchmarkCompact(b *testing.B) {
	s := benchOpen(b, b.TempDir(), Options{Fsync: FsyncNever, CompactThreshold: -1})
	defer s.Close()
	pi := fixtures.Figure2()
	for i := 0; i < 50; i++ {
		if err := s.Put(fmt.Sprintf("inst-%03d", i), pi); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Compact(); err != nil {
			b.Fatal(err)
		}
	}
}

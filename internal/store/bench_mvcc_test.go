package store

// MVCC read-path benchmarks. BenchmarkStormRead* measure point-read tail
// latency (p99-ns) while a 16-writer group-commit storm churns the
// catalog — on a leader taking local Puts, and on a follower ingesting
// the same storm through ReplApply. BenchmarkColdOpen* measure open wall
// time and allocations against a compacted snapshot, where lazy decode
// keeps the cost I/O-bound: frames are CRC-checked but instance bodies
// stay undecoded until first touch.

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"pxml/internal/fixtures"
)

const stormNames = 64

// stormSetup opens a store preloaded with stormNames instances.
func stormSetup(b *testing.B, dir string, opts Options) *Store {
	b.Helper()
	opts.Fsync = FsyncNever
	opts.CompactThreshold = -1
	s := benchOpen(b, dir, opts)
	pi := fixtures.Figure2()
	for i := 0; i < stormNames; i++ {
		if err := s.Put(stormName(i), pi); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

func stormName(i int) string { return fmt.Sprintf("inst-%03d", i) }

// runStormReaders drives concurrent point reads against reads while the
// caller keeps a write storm running, and reports the p99 read latency.
func runStormReaders(b *testing.B, reads *Store) {
	var (
		mu      sync.Mutex
		samples []int64
	)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		r := rand.New(rand.NewSource(rand.Int63()))
		local := make([]int64, 0, 4096)
		for pb.Next() {
			name := stormName(r.Intn(stormNames))
			t0 := time.Now()
			pi, ok := reads.Get(name)
			local = append(local, int64(time.Since(t0)))
			if !ok || pi == nil {
				b.Errorf("Get(%s) missed during storm", name)
				return
			}
		}
		mu.Lock()
		samples = append(samples, local...)
		mu.Unlock()
	})
	b.StopTimer()
	if len(samples) > 0 {
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		idx := (len(samples) * 99) / 100
		if idx >= len(samples) {
			idx = len(samples) - 1
		}
		b.ReportMetric(float64(samples[idx]), "p99-ns")
	}
}

// BenchmarkStormReadLeader: readers hit the leader's catalog while 16
// writers commit through the group-commit path.
func BenchmarkStormReadLeader(b *testing.B) {
	s := stormSetup(b, b.TempDir(), Options{})
	defer s.Close()
	pi := fixtures.Figure2()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := s.Put(stormName(r.Intn(stormNames)), pi); err != nil {
					return // degraded/closed: stop writing, readers still measure
				}
			}
		}(w)
	}
	runStormReaders(b, s)
	close(stop)
	wg.Wait()
}

// BenchmarkStormReadFollower: readers hit a follower whose catalog is
// churned by ReplApply chunks streamed from a leader under the same
// 16-writer storm.
func BenchmarkStormReadFollower(b *testing.B) {
	leader := stormSetup(b, b.TempDir(), Options{})
	defer leader.Close()

	fdir := b.TempDir()
	f, _, err := Open(fdir, Options{Follower: true, Fsync: FsyncNever, CompactThreshold: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	catchUp := func() {
		for {
			from := f.Pos()
			chunk, err := leader.ReadStream(from, 1<<20)
			if err != nil {
				b.Fatalf("ReadStream(%s): %v", from, err)
			}
			applyAt := chunk.From
			if len(chunk.Data) == 0 {
				if chunk.Next == from {
					return
				}
				applyAt = chunk.Next
			}
			if _, err := f.ReplApply(applyAt, chunk.Epoch, chunk.Data); err != nil {
				b.Fatalf("ReplApply(%s): %v", applyAt, err)
			}
		}
	}
	catchUp()
	if f.Len() != stormNames {
		b.Fatalf("follower catalog has %d instances, want %d", f.Len(), stormNames)
	}

	pi := fixtures.Figure2()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := leader.Put(stormName(r.Intn(stormNames)), pi); err != nil {
					return
				}
			}
		}(w)
	}
	// One applier mirrors the leader's group commits onto the follower,
	// the way the repl client does in production.
	walBefore := f.WALSize()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			from := f.Pos()
			chunk, err := leader.ReadStream(from, 1<<20)
			if err != nil {
				return
			}
			applyAt := chunk.From
			if len(chunk.Data) == 0 {
				if chunk.Next == from {
					continue
				}
				applyAt = chunk.Next
			}
			if _, err := f.ReplApply(applyAt, chunk.Epoch, chunk.Data); err != nil {
				return
			}
		}
	}()
	runStormReaders(b, f)
	close(stop)
	wg.Wait()
	// Prove the storm actually churned the follower: report how many
	// replicated bytes landed per measured read.
	b.ReportMetric(float64(f.WALSize()-walBefore)/float64(b.N), "repl-B/op")
}

// benchmarkColdOpen builds a compacted store of n random instances once,
// then measures reopening it cold: wall time per open plus allocations,
// validated by a single point read.
func benchmarkColdOpen(b *testing.B, n int) {
	dir := b.TempDir()
	s := benchOpen(b, dir, Options{Fsync: FsyncNever, CompactThreshold: -1})
	r := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		pi := fixtures.RandomInstance(r, fixtures.RandomConfig{
			MaxDepth: 4, MaxChildren: 4, WithCard: true, LeafDomain: 3,
		})
		if err := s.Put(stormName(i%stormNames)+fmt.Sprintf("-%d", i), pi); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		b.Fatal(err)
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
	probe := stormName(0) + "-0"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, _, err := Open(dir, Options{CompactThreshold: -1})
		if err != nil {
			b.Fatal(err)
		}
		if s.Len() != n {
			b.Fatalf("opened %d instances, want %d", s.Len(), n)
		}
		if _, ok := s.Get(probe); !ok {
			b.Fatalf("probe instance %q missing after open", probe)
		}
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkColdOpenSmall(b *testing.B) { benchmarkColdOpen(b, 32) }
func BenchmarkColdOpenLarge(b *testing.B) { benchmarkColdOpen(b, 512) }

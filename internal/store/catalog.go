package store

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"pxml/internal/codec"
	"pxml/internal/core"
	"pxml/internal/vfs"
)

// MVCC read path. The catalog of live instances is an immutable value
// published behind an atomic pointer: every group commit (and follower
// apply, and recovery) builds a copy-on-write successor under s.mu and
// publishes it in one atomic store. Readers — Get, Names, All, Len, and
// the serving layer above — load the current catalog with a single
// pointer read and never take a lock; a reader holds one consistent
// epoch for as long as it keeps the pointer, no matter how many commits
// land meanwhile.
//
// Entries are shared between consecutive catalogs: a commit copies the
// map (pointer-sized values) but reuses every untouched entry, so the
// publish cost per group commit is O(catalog) pointer copies, amortized
// across the batch. Each entry carries a per-name version that is
// monotone for the life of the store — delete and re-put keep counting
// up — which is what the consistency stress test asserts on.
//
// Entries recovered from the snapshot start lazy: the entry holds the
// raw put-record bytes (usually a sub-slice of the mmap'd snapshot) and
// decodes them on first touch, through a store-wide string interner so
// repeated labels across instances share one heap allocation. The
// materialized instance never references the mapping — decode copies
// every string — so the mapping's lifetime only has to cover the raw
// bytes, which each entry pins via its src field until it materializes
// (vfs.Mapping unmaps through a finalizer once unreferenced).

// catalog is one published, immutable version of the name → entry map.
// The struct and the map are never mutated after publication; names is
// a lazily computed (and cached) sorted key list.
type catalog struct {
	// epoch is the publication sequence number: strictly increasing by
	// one per publish for the life of the store process.
	epoch uint64
	m     map[string]*catEntry
	names atomic.Pointer[[]string]
}

// sortedNames returns the catalog's keys in sorted order, computing them
// on first use. The returned slice is shared and must not be mutated.
// Racing first calls may both compute; they produce equal slices, and
// either winning the store is fine.
func (c *catalog) sortedNames() []string {
	if p := c.names.Load(); p != nil {
		return *p
	}
	out := make([]string, 0, len(c.m))
	for n := range c.m {
		out = append(out, n)
	}
	sort.Strings(out)
	c.names.Store(&out)
	return out
}

// catEntry is one name's slot. version and the identity of the entry are
// immutable after publication; inst/raw flip exactly once, at
// materialization, under mu. The steady-state read path is a single
// inst.Load.
type catEntry struct {
	// version is the per-name monotone version this entry was installed
	// at (1 for the first put of a name, +1 per subsequent put,
	// surviving delete + re-put).
	version uint64
	inst    atomic.Pointer[core.ProbInstance]
	failed  atomic.Bool

	// Lazy state, guarded by mu: raw is the full put-record frame
	// payload (op | name | pxml-bin record), bodyOff the offset of the
	// pxml-bin record within it, src the mapping raw points into (nil
	// for heap-backed raw). Materialization clears raw/src on success;
	// on failure raw is kept so snapshots can still carry the bytes
	// forward verbatim.
	mu      sync.Mutex
	raw     []byte
	bodyOff int
	src     *vfs.Mapping
}

// rawRecord returns the entry's undecoded put-record payload and the
// mapping pinning it, or nil if the entry has materialized. Callers
// must runtime.KeepAlive the returned mapping past their last use of
// the bytes.
func (e *catEntry) rawRecord() ([]byte, *vfs.Mapping) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.raw, e.src
}

// emptyCatalog is what a Store starts from before recovery publishes.
func emptyCatalog() *catalog {
	return &catalog{m: make(map[string]*catEntry)}
}

// entryInstance resolves an entry to its instance, materializing a lazy
// entry on first touch. The fast path — entry already materialized — is
// one atomic load and acquires nothing; the slow path runs once per
// entry under the entry's own mutex (not s.mu), so a cold read never
// blocks writers or readers of other names.
func (s *Store) entryInstance(name string, e *catEntry) (*core.ProbInstance, bool) {
	if pi := e.inst.Load(); pi != nil {
		return pi, true
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if pi := e.inst.Load(); pi != nil {
		return pi, true
	}
	if e.failed.Load() || e.raw == nil {
		return nil, false
	}
	pi, err := codec.DecodeBinaryBytesInterned(e.raw[e.bodyOff:], s.interner)
	// e.src (still set) keeps the mapping reachable throughout the
	// decode; the decoded instance owns all of its strings.
	if err != nil {
		// CRC-valid but structurally invalid: a writer bug, not bit rot.
		// The name reads as absent, the bytes stay for the next snapshot,
		// and the error is surfaced via log + counter rather than
		// degrading the whole store.
		e.failed.Store(true)
		s.lazyErrs.Add(1)
		if s.lazyErrsC != nil {
			s.lazyErrsC.Inc()
		}
		if s.opts.Logger != nil {
			s.opts.Logger.Printf("store: lazy decode of %q failed: %v", name, err)
		}
		return nil, false
	}
	e.inst.Store(pi)
	src := e.src
	e.raw, e.src = nil, nil
	runtime.KeepAlive(src)
	return pi, true
}

// mutateCatalogLocked publishes the successor catalog: a fresh map
// seeded from the current one, transformed by fn, at epoch+1. Callers
// hold s.mu (all publishers serialize on it); readers see either the
// old or the new catalog, never a mix.
func (s *Store) mutateCatalogLocked(fn func(m map[string]*catEntry)) {
	cur := s.cat.Load()
	m := make(map[string]*catEntry, len(cur.m)+1)
	for k, v := range cur.m {
		m[k] = v
	}
	fn(m)
	s.cat.Store(&catalog{epoch: cur.epoch + 1, m: m})
}

// newEntryLocked builds a materialized entry for name at its next
// version. Callers hold s.mu (or run single-goroutine during recovery).
func (s *Store) newEntryLocked(name string, pi *core.ProbInstance) *catEntry {
	s.nameVers[name]++
	e := &catEntry{version: s.nameVers[name]}
	e.inst.Store(pi)
	return e
}

// newLazyEntryLocked builds an entry that decodes payload (a full
// put-record frame payload, body starting at bodyOff) on first touch.
// src, when non-nil, is the mapping payload points into.
func (s *Store) newLazyEntryLocked(name string, payload []byte, bodyOff int, src *vfs.Mapping) *catEntry {
	s.nameVers[name]++
	return &catEntry{version: s.nameVers[name], raw: payload, bodyOff: bodyOff, src: src}
}

// Version returns name's current per-name version and whether it is
// live. Versions are monotone per name for the life of the store
// process (delete + re-put keeps counting up). Lock-free.
func (s *Store) Version(name string) (uint64, bool) {
	e, ok := s.cat.Load().m[name]
	if !ok {
		return 0, false
	}
	return e.version, true
}

// CatalogEpoch returns the current catalog's publication epoch,
// strictly increasing by one per publish. Lock-free.
func (s *Store) CatalogEpoch() uint64 { return s.cat.Load().epoch }

// LazyDecodeErrors reports how many lazy materializations have failed
// since open (see entryInstance).
func (s *Store) LazyDecodeErrors() int64 { return s.lazyErrs.Load() }

// snapshotAppendLocked appends name's put record to buf: materialized
// entries re-encode from the instance, still-lazy ones splice their raw
// record bytes straight through — compaction of a cold store copies the
// snapshot without decoding it.
func (s *Store) snapshotAppendLocked(buf []byte, name string, e *catEntry) ([]byte, error) {
	raw, src := e.rawRecord()
	if raw != nil {
		buf = appendFrame(buf, raw)
		runtime.KeepAlive(src)
		return buf, nil
	}
	pi := e.inst.Load()
	if pi == nil {
		return buf, fmt.Errorf("store: snapshot: entry %q has neither instance nor raw bytes", name)
	}
	return appendFrame(buf, appendPutRecord(nil, name, pi)), nil
}

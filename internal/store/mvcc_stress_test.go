package store

// MVCC publication stress suite, meant to run under -race: point readers,
// catalog scanners, a 16-writer put/delete storm, follower ReplApply, and
// a mid-run degraded-mode flip all interleave, while every reader asserts
// the catalog invariants the epoch protocol guarantees — the observed
// epoch never goes backwards, per-name versions are monotone, Names stays
// sorted, and a Get that reports ok never hands back a nil instance.

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"pxml/internal/fixtures"
	"pxml/internal/vfs"
)

const stressNames = 24

func stressName(i int) string { return fmt.Sprintf("st-%02d", i) }

// stressReaders starts point readers and one catalog scanner against s,
// returning a stop func that joins them and reports their invariant
// failures. Readers tolerate missing names (deletes race with them) but
// never a torn read.
func stressReaders(t *testing.T, s *Store, readers int) (stop func()) {
	t.Helper()
	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			lastEpoch := uint64(0)
			lastVer := make(map[string]uint64, stressNames)
			for i := seed; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				name := stressName(i % stressNames)
				if e := s.CatalogEpoch(); e < lastEpoch {
					t.Errorf("catalog epoch went backwards: %d after %d", e, lastEpoch)
					return
				} else {
					lastEpoch = e
				}
				if v, ok := s.Version(name); ok {
					if v < lastVer[name] {
						t.Errorf("version for %q went backwards: %d after %d", name, v, lastVer[name])
						return
					}
					lastVer[name] = v
				}
				if pi, ok := s.Get(name); ok && pi == nil {
					t.Errorf("Get(%q) = nil, true: torn catalog read", name)
					return
				}
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			names := s.Names()
			if !sort.StringsAreSorted(names) {
				t.Errorf("Names() not sorted: %v", names)
				return
			}
			for name, pi := range s.All() {
				if pi == nil {
					t.Errorf("All() carries nil instance for %q", name)
					return
				}
			}
			_ = s.Len()
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}

// TestMVCCStressLeader interleaves 16 put/delete writers, concurrent
// point readers and scanners, and a mid-run fault-injected flip into
// degraded mode on a leader store.
func TestMVCCStressLeader(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(nil)
	s, _, err := Open(dir, Options{Fsync: FsyncAlways, FS: ffs, CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	pi := fixtures.Figure2()
	for i := 0; i < stressNames; i++ {
		if err := s.Put(stressName(i), pi); err != nil {
			t.Fatal(err)
		}
	}

	stopReaders := stressReaders(t, s, 4)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			alt := fixtures.Figure2VariedLeaves()
			for i := w; ; i += 7 {
				select {
				case <-stop:
					return
				default:
				}
				name := stressName(i % stressNames)
				var err error
				if w%4 == 3 && i%11 == 0 {
					err = s.Delete(name)
				} else {
					err = s.Put(name, alt)
				}
				if err != nil && !errors.Is(err, ErrDegraded) {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}

	time.Sleep(50 * time.Millisecond)
	// Flip the store read-only mid-storm: the next synced commit fails,
	// writers start seeing ErrDegraded, readers must not notice.
	ffs.FailAll(vfs.OpSync, "wal")
	waitFor(t, 5*time.Second, "store to degrade", s.Degraded)
	time.Sleep(50 * time.Millisecond)

	close(stop)
	wg.Wait()
	stopReaders()

	if !s.Degraded() {
		t.Fatal("store should be degraded after injected fsync failures")
	}
	if got := s.Len(); got == 0 {
		t.Fatal("degraded store lost its catalog")
	}
}

// TestMVCCStressFollower interleaves ReplApply chunks from a live leader
// storm with concurrent follower reads.
func TestMVCCStressFollower(t *testing.T) {
	leader, _, err := Open(t.TempDir(), Options{Fsync: FsyncNever, CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	f, _, err := Open(t.TempDir(), Options{Follower: true, Fsync: FsyncNever, CompactThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	pi := fixtures.Figure2()
	for i := 0; i < stressNames; i++ {
		if err := leader.Put(stressName(i), pi); err != nil {
			t.Fatal(err)
		}
	}

	stopReaders := stressReaders(t, f, 4)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			alt := fixtures.Figure2VariedLeaves()
			for i := w; ; i += 5 {
				select {
				case <-stop:
					return
				default:
				}
				name := stressName(i % stressNames)
				var err error
				if i%13 == 0 {
					err = leader.Delete(name)
				} else {
					err = leader.Put(name, alt)
				}
				if err != nil {
					t.Errorf("leader writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	// The applier streams the leader's commits into the follower, whose
	// readers race every chunk install.
	applied := 0
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		from := f.Pos()
		chunk, err := leader.ReadStream(from, 1<<18)
		if err != nil {
			t.Fatalf("ReadStream(%s): %v", from, err)
		}
		applyAt := chunk.From
		if len(chunk.Data) == 0 {
			if chunk.Next == from {
				continue
			}
			applyAt = chunk.Next
		}
		res, err := f.ReplApply(applyAt, chunk.Epoch, chunk.Data)
		if err != nil {
			t.Fatalf("ReplApply(%s): %v", applyAt, err)
		}
		applied += res.Records
	}
	close(stop)
	wg.Wait()
	stopReaders()
	if applied == 0 {
		t.Fatal("follower applied no records; stress did not exercise ReplApply")
	}
}

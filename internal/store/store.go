package store

import (
	"fmt"
	"log"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"pxml/internal/codec"
	"pxml/internal/core"
	"pxml/internal/metrics"
	"pxml/internal/vfs"
)

// FsyncPolicy controls when the WAL is flushed to stable storage.
type FsyncPolicy int

const (
	// FsyncAlways syncs after every append: no acknowledged write is
	// ever lost, at the cost of one fsync per mutation.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs from a background ticker (Options.FsyncEvery):
	// a crash loses at most one interval of writes.
	FsyncInterval
	// FsyncNever leaves flushing to the operating system. Snapshots are
	// still fsynced — the policy only governs the WAL.
	FsyncNever
)

// ParseFsyncPolicy maps the -fsync flag values to a policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("store: unknown fsync policy %q (want always, interval, or never)", s)
}

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", int(p))
}

// Options configure a Store. The zero value is usable: fsync on every
// append, compaction when the WAL passes DefaultCompactThreshold, no
// periodic snapshots.
type Options struct {
	// Fsync is the WAL flush policy.
	Fsync FsyncPolicy
	// FsyncEvery is the flush period under FsyncInterval; defaults to
	// 100ms.
	FsyncEvery time.Duration
	// SnapshotInterval, when positive, snapshots the catalog and resets
	// the WAL on this period even if the size threshold is not reached.
	SnapshotInterval time.Duration
	// CompactThreshold is the WAL size in bytes that triggers a
	// background compaction; 0 means DefaultCompactThreshold, negative
	// disables size-triggered compaction.
	CompactThreshold int64
	// CommitBatch bounds how many mutations one group commit may
	// coalesce into a single WAL write + fsync. 0 means
	// DefaultCommitBatch; 1 (or negative) disables batching — every
	// mutation commits alone, the pre-group-commit behavior.
	CommitBatch int
	// CommitDelay is how long the committer waits for more mutations to
	// join a batch after the first one arrives. 0 (the default) commits
	// as soon as the already-queued mutations are drained, so batches
	// form from concurrency alone and an uncontended write never stalls.
	// Positive delays trade single-writer latency for bigger batches
	// under light concurrency.
	CommitDelay time.Duration
	// SegmentSize is the active WAL segment length that triggers rotation
	// to a fresh, monotonically numbered segment; 0 means
	// DefaultSegmentSize, negative disables size-based rotation
	// (compaction still rotates).
	SegmentSize int64
	// ArchiveDir, when non-empty, is a directory sealed WAL segments are
	// hard-linked or copied into as they rotate. Together with a base
	// backup the archive supports point-in-time recovery (see backup.go).
	// Archiving also makes the committer stamp each group commit with a
	// wall-clock marker so Restore can cut by time.
	ArchiveDir string
	// ArchiveRetention caps how many archived segments are kept; once
	// exceeded, the oldest are deleted. 0 keeps everything.
	ArchiveRetention int
	// Stamps makes the committer write a wall-clock stamp frame ahead of
	// each group commit even when ArchiveDir is unset. Replication
	// leaders enable this so followers can measure wall-clock staleness
	// from the stream itself; archiving stores stamp regardless.
	Stamps bool
	// Follower puts the store in replica mode: local Put/Delete are
	// rejected (the WAL is a verbatim copy of a leader's, advanced only
	// by ReplApply, so a local mutation would fork the timeline) and
	// compaction snapshots without rotating (segment numbering must stay
	// the leader's; see follower.go).
	Follower bool
	// ScrubInterval, when positive, re-reads one at-rest file (the
	// snapshot or a sealed segment) on this cadence, verifying every
	// frame CRC. A mismatch degrades the store: what fsync acknowledged
	// is no longer readable, and serving writes against rotting storage
	// only widens the blast radius.
	ScrubInterval time.Duration
	// QuarantineMax caps how many files quarantine/ retains; the oldest
	// are evicted first. 0 means DefaultQuarantineMax, negative disables
	// the cap.
	QuarantineMax int
	// Registry, when non-nil, receives the store_* counters.
	Registry *metrics.Registry
	// Logger, when non-nil, receives recovery and compaction reports.
	Logger *log.Logger
	// FS is the filesystem the store runs on; nil means the real one
	// (vfs.OS). Tests substitute a vfs.FaultFS to exercise failure
	// paths deterministically.
	FS vfs.FS
}

// DefaultCompactThreshold is the WAL size that triggers compaction when
// Options.CompactThreshold is zero.
const DefaultCompactThreshold = 4 << 20

// DefaultCommitBatch is the group-commit batch bound when
// Options.CommitBatch is zero: how many queued mutations one WAL write +
// fsync may absorb.
const DefaultCommitBatch = 128

// DefaultSegmentSize is the WAL segment rotation threshold when
// Options.SegmentSize is zero. It sits below DefaultCompactThreshold so a
// store under steady write load seals (and, when configured, archives) a
// few segments per compaction cycle.
const DefaultSegmentSize = 1 << 20

// DefaultQuarantineMax bounds quarantine/ when Options.QuarantineMax is
// zero: corrupt regions are kept for inspection, but a store that keeps
// hitting damage must not fill the disk with evidence.
const DefaultQuarantineMax = 64

const defaultFsyncEvery = 100 * time.Millisecond

// archiveRetryEvery is how often the background loop retries archiving
// sealed segments whose copy previously failed.
const archiveRetryEvery = time.Second

// commitQueueDepth is the committer's submission-channel capacity. It
// only bounds how many waiting writers can queue without blocking on the
// channel itself; correctness does not depend on it.
const commitQueueDepth = 256

// maxCommitScratch caps the committer's reusable frame buffer: a batch
// that grew it past this is not kept around pinning memory.
const maxCommitScratch = 4 << 20

// Store names inside the data directory. The WAL itself lives in
// numbered segment files (see segment.go); legacyWALName is the
// pre-segmentation single-file WAL, replayed and retired on first open.
const (
	legacyWALName = "wal.log"
	snapshotName  = "snapshot.pxs"
	quarantineDir = "quarantine"
)

// Store is a durable catalog of named probabilistic instances. All
// methods are safe for concurrent use. Instances handed to Put (and
// returned by Get/All) are shared, not copied: callers must treat them as
// immutable, which is the convention across the codebase.
//
// An unrecoverable write error (failed WAL append, failed foreground
// fsync, or background maintenance that keeps failing after retries)
// flips the store into a sticky read-only degraded state: reads keep
// serving from memory, writes return ErrDegraded, and Health reports the
// cause. Degradation is cleared only by reopening the store.
type Store struct {
	dir  string
	opts Options
	fs   vfs.FS

	mu sync.RWMutex
	// archMu serializes the archive's writers: the background archiver
	// and compaction (the only deleter of the sealed local segments the
	// archiver copies). It is always taken before s.mu, never inside it,
	// so the copies themselves can run without stalling readers/writers.
	archMu sync.Mutex

	// cat is the published MVCC catalog (see catalog.go): readers load
	// it with one atomic pointer read; every publisher (group commit,
	// follower apply, recovery) builds a copy-on-write successor under
	// s.mu and stores it here. nameVers is the publish-side per-name
	// version counter feeding catEntry.version; interner dedupes strings
	// across lazy decodes; lazyErrs counts failed materializations.
	cat      atomic.Pointer[catalog]
	nameVers map[string]uint64
	interner *codec.Interner
	lazyErrs atomic.Int64
	// recm is the catalog under construction during recovery; published
	// into cat (and cleared) before Open starts any goroutine.
	recm map[string]*catEntry

	wal         vfs.File  // active segment, open for append
	seg         uint64    // active segment number
	activeBytes int64     // recovered size of the active segment (set by recover)
	sealed      []segInfo // sealed local segments, ascending by number
	walBytes    int64     // bytes in the active segment
	walTotal    int64     // bytes across active + sealed local segments
	walRecords  int64
	walDirty    bool // appended since last fsync
	closing     bool // Close has begun (background loop draining)
	closed      bool

	// backups counts in-progress online backups. While positive,
	// compaction waits (it would delete or replace the very files a
	// backup is copying); rotation and appends continue freely because
	// they only ever add bytes and files. backupsDone is signalled when
	// the count returns to zero.
	backups     int
	backupsDone *sync.Cond

	// Scrub state (see scrub.go).
	scrubPasses      int64
	scrubCorruptions int64
	scrubLastAt      time.Time
	scrubCursor      int

	quarantineFiles int // files currently under quarantine/

	// Degraded-mode and health state (see health.go).
	degraded     bool
	degradedAt   time.Time
	degradeCause string
	fsyncErrs    int64
	compactErrs  int64
	rotateErrs   int64
	archiveErrs  int64
	lastErr      string
	lastErrAt    time.Time

	// legacyMigrated holds .pxml paths folded in by recovery, removed
	// once the post-recovery snapshot is durable.
	legacyMigrated []string

	walAppends     *metrics.Counter
	walAppendBytes *metrics.Counter
	walFsyncs      *metrics.Counter
	compactions    *metrics.Counter
	fsyncErrsC     *metrics.Counter
	compactErrsC   *metrics.Counter
	bgRetries      *metrics.Counter
	degradedG      *metrics.Gauge
	commitBatches  *metrics.Counter
	commitBatchSz  *metrics.IntHistogram
	rotations      *metrics.Counter
	rotateErrsC    *metrics.Counter
	archivedSegs   *metrics.Counter
	archiveErrsC   *metrics.Counter
	backupsC       *metrics.Counter
	scrubPassesC   *metrics.Counter
	scrubBytesC    *metrics.Counter
	scrubCorruptC  *metrics.Counter
	quarantineG    *metrics.Gauge
	segmentsG      *metrics.Gauge
	lazyErrsC      *metrics.Counter

	// Group commit: Put/Delete enqueue framed records on commits and a
	// single committer goroutine coalesces them into one WAL write + one
	// fsync per batch. submitWG tracks in-flight submissions so Close can
	// wait for them before stopping the committer.
	commits    chan *commitReq
	commitDone chan struct{}
	submitWG   sync.WaitGroup

	// Committer-owned scratch (single goroutine, no locking).
	commitBuf   []byte
	commitBatch []*commitReq
	stampBuf    []byte

	stop     chan struct{}
	done     chan struct{}
	kick     chan struct{}
	archKick chan struct{}

	// commitSignal is closed and replaced whenever the WAL position
	// advances; CommitSignal hands it to long-polling stream readers.
	commitSignal chan struct{}

	// lastReplStamp is the newest stamp applied via ReplApply (follower
	// mode only), in unix nanoseconds.
	lastReplStamp int64

	// Leader-epoch and fencing state (see epoch.go). epoch/fenced/
	// fencedLeader are guarded by mu and mirrored in the fsync'd EPOCH
	// file. roleFollower and stamps start as Options.Follower /
	// Options.Stamps but are atomics because Promote flips the role live
	// while Put/Delete/commitGroup read them without holding mu.
	epoch        uint64
	fenced       bool
	fencedLeader string
	roleFollower atomic.Bool
	stamps       atomic.Bool
}

// commitReq is one mutation waiting for its group commit. The payload is
// the encoded record (not yet framed); done carries the batch outcome
// back to the submitting goroutine. Requests and their payload buffers
// are pooled — the submitter returns them after reading done.
type commitReq struct {
	op      byte
	name    string
	inst    *core.ProbInstance
	payload []byte
	done    chan error
}

var commitReqPool = sync.Pool{
	New: func() any { return &commitReq{done: make(chan error, 1)} },
}

// freeCommitReq recycles a request once its submitter has the outcome.
func freeCommitReq(req *commitReq) {
	req.inst = nil
	req.name = ""
	req.payload = req.payload[:0]
	commitReqPool.Put(req)
}

// Open opens (creating if necessary) the store in dir, runs crash
// recovery, and starts the background maintenance goroutine. The returned
// report describes what recovery found; it is never nil when the error is
// nil. A directory holding legacy per-instance .pxml text files is
// migrated into the log-structured layout on first open.
func Open(dir string, opts Options) (*Store, *RecoveryReport, error) {
	if dir == "" {
		return nil, nil, fmt.Errorf("store: empty directory")
	}
	if opts.FsyncEvery <= 0 {
		opts.FsyncEvery = defaultFsyncEvery
	}
	if opts.CompactThreshold == 0 {
		opts.CompactThreshold = DefaultCompactThreshold
	}
	if opts.CommitBatch == 0 {
		opts.CommitBatch = DefaultCommitBatch
	}
	if opts.CommitBatch < 1 {
		opts.CommitBatch = 1
	}
	if opts.SegmentSize == 0 {
		opts.SegmentSize = DefaultSegmentSize
	}
	if opts.QuarantineMax == 0 {
		opts.QuarantineMax = DefaultQuarantineMax
	}
	if opts.FS == nil {
		opts.FS = vfs.OS
	}
	if err := opts.FS.MkdirAll(dir); err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	if opts.ArchiveDir != "" {
		if err := opts.FS.MkdirAll(opts.ArchiveDir); err != nil {
			return nil, nil, fmt.Errorf("store: archive dir: %w", err)
		}
	}
	s := &Store{
		dir:        dir,
		opts:       opts,
		fs:         opts.FS,
		nameVers:   make(map[string]uint64),
		interner:   codec.NewInterner(),
		commits:    make(chan *commitReq, commitQueueDepth),
		commitDone: make(chan struct{}),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
		kick:       make(chan struct{}, 1),
		archKick:   make(chan struct{}, 1),

		commitSignal: make(chan struct{}),
	}
	s.cat.Store(emptyCatalog())
	s.backupsDone = sync.NewCond(&s.mu)
	if reg := opts.Registry; reg != nil {
		s.walAppends = reg.Counter("store_wal_appends")
		s.walAppendBytes = reg.Counter("store_wal_append_bytes")
		s.walFsyncs = reg.Counter("store_wal_fsyncs")
		s.compactions = reg.Counter("store_compactions")
		s.fsyncErrsC = reg.Counter("store_fsync_errors")
		s.compactErrsC = reg.Counter("store_compact_errors")
		s.bgRetries = reg.Counter("store_bg_retries")
		s.degradedG = reg.Gauge("store_degraded")
		s.commitBatches = reg.Counter("store_commit_batches")
		s.commitBatchSz = reg.IntHistogram("store_commit_batch_size")
		s.rotations = reg.Counter("store_wal_rotations")
		s.rotateErrsC = reg.Counter("store_rotate_errors")
		s.archivedSegs = reg.Counter("store_archived_segments")
		s.archiveErrsC = reg.Counter("store_archive_errors")
		s.backupsC = reg.Counter("store_backups")
		s.scrubPassesC = reg.Counter("store_scrub_passes")
		s.scrubBytesC = reg.Counter("store_scrub_bytes")
		s.scrubCorruptC = reg.Counter("store_scrub_corruptions")
		s.quarantineG = reg.Gauge("store_quarantine_files")
		s.segmentsG = reg.Gauge("store_wal_segments")
		s.lazyErrsC = reg.Counter("store_lazy_decode_errors")
	}
	s.roleFollower.Store(opts.Follower)
	s.stamps.Store(opts.Stamps)
	report, err := s.recover()
	if err != nil {
		return nil, nil, err
	}
	if err := s.loadEpoch(); err != nil {
		return nil, nil, err
	}
	var archMax uint64
	if opts.ArchiveDir != "" {
		if archived, aerr := listSegments(s.fs, opts.ArchiveDir); aerr == nil && len(archived) > 0 {
			archMax = archived[len(archived)-1]
		}
	}
	switch {
	case s.seg == 0:
		// Fresh store. Segment numbers must never be reused, including
		// against an archive that outlived a rebuilt data directory — a
		// collision would overwrite history the archive is keeping.
		s.seg = archMax + 1
	case archMax >= s.seg:
		// The recovered active segment's number is already archived: this
		// data directory was restored to an earlier point (or rebuilt)
		// next to an archive holding different history under the same and
		// higher numbers. Seal the active segment exactly as recovered and
		// continue two past the archive. The untouched number in between
		// is a permanent gap marking the timeline boundary — point-in-time
		// overlays stop at the first missing number, so they can never
		// splice the two histories together — and the archiver tolerates
		// the sealed collisions because their bytes are prefixes of (or
		// identical to) the archived originals.
		s.sealed = append(s.sealed, segInfo{n: s.seg, size: s.activeBytes})
		if opts.Logger != nil {
			opts.Logger.Printf("store: active segment %d collides with archived history (archive max %d); sealing it and continuing at segment %d",
				s.seg, archMax, archMax+2)
		}
		s.seg = archMax + 2
	}
	wal, err := s.fs.OpenAppend(s.path(segmentFile(s.seg)))
	if err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	size, err := wal.Size()
	if err != nil {
		wal.Close()
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	s.wal = wal
	s.walBytes = size
	s.walTotal = size
	for _, si := range s.sealed {
		s.walTotal += si.size
	}
	if s.segmentsG != nil {
		s.segmentsG.Set(int64(len(s.sealed) + 1))
	}
	// A recovery that had to quarantine, truncate, or migrate leaves the
	// on-disk state it repaired around; compact immediately so the next
	// open starts from a clean snapshot and an empty WAL.
	if report.dirty() {
		if err := s.Compact(); err != nil {
			wal.Close()
			return nil, nil, err
		}
		if err := s.removeMigratedLegacy(); err != nil {
			wal.Close()
			return nil, nil, err
		}
	}
	if reg := opts.Registry; reg != nil {
		reg.Counter("store_recovered_instances").Add(int64(s.Len()))
		reg.Counter("store_recovery_quarantined").Add(int64(len(report.Quarantined)))
		reg.Counter("store_recovery_truncated_bytes").Add(report.TruncatedBytes)
	}
	go s.committer()
	go s.background()
	return s, report, nil
}

func (s *Store) path(name string) string { return filepath.Join(s.dir, name) }

// Dir returns the store's data directory.
func (s *Store) Dir() string { return s.dir }

// Put durably records name → pi and installs it in the catalog. The
// write joins the next group commit: the committer goroutine coalesces
// concurrent mutations into one WAL write + one fsync, and Put returns
// only after its batch is appended (and, under FsyncAlways, on stable
// storage) and the instance installed. A degraded store rejects Put with
// an error matching ErrDegraded and leaves the catalog untouched.
func (s *Store) Put(name string, pi *core.ProbInstance) error {
	if name == "" {
		return fmt.Errorf("store: empty instance name")
	}
	if pi == nil {
		return fmt.Errorf("store: nil instance %q", name)
	}
	if s.roleFollower.Load() {
		return fmt.Errorf("%w: put %q", ErrFollowerReadOnly, name)
	}
	req := commitReqPool.Get().(*commitReq)
	req.op, req.name, req.inst = opPut, name, pi
	req.payload = appendPutRecord(req.payload[:0], name, pi)
	return s.submit(req)
}

// Delete durably removes name from the catalog via the same group-commit
// path as Put. Deleting an absent name is a no-op (and writes nothing).
// A degraded store rejects Delete with an error matching ErrDegraded.
func (s *Store) Delete(name string) error {
	if s.roleFollower.Load() {
		return fmt.Errorf("%w: delete %q", ErrFollowerReadOnly, name)
	}
	s.mu.RLock()
	if s.degraded {
		err := s.degradedErrLocked()
		s.mu.RUnlock()
		return err
	}
	if s.fenced {
		err := s.fencedErrLocked()
		s.mu.RUnlock()
		return err
	}
	s.mu.RUnlock()
	if _, ok := s.cat.Load().m[name]; !ok {
		return nil
	}
	req := commitReqPool.Get().(*commitReq)
	req.op, req.name, req.inst = opDelete, name, nil
	req.payload = appendDeleteRecord(req.payload[:0], name)
	return s.submit(req)
}

// submit hands one mutation to the committer and waits for its batch's
// outcome. The closing check and the WaitGroup increment happen under
// the same read lock Close writes `closing` under, so Close observes
// every accepted submission before it stops the committer — a submitted
// request is never abandoned.
func (s *Store) submit(req *commitReq) error {
	s.mu.RLock()
	if s.closed || s.closing {
		s.mu.RUnlock()
		freeCommitReq(req)
		return fmt.Errorf("store: closed")
	}
	if s.degraded {
		err := s.degradedErrLocked()
		s.mu.RUnlock()
		freeCommitReq(req)
		return err
	}
	if s.fenced {
		err := s.fencedErrLocked()
		s.mu.RUnlock()
		freeCommitReq(req)
		return err
	}
	s.submitWG.Add(1)
	s.mu.RUnlock()
	s.commits <- req
	err := <-req.done
	s.submitWG.Done()
	freeCommitReq(req)
	return err
}

// Get returns the named instance. Lock-free: one atomic catalog load
// plus, for entries recovered lazily from the snapshot, a one-time
// materialization on first touch (see catalog.go).
func (s *Store) Get(name string) (*core.ProbInstance, bool) {
	e, ok := s.cat.Load().m[name]
	if !ok {
		return nil, false
	}
	return s.entryInstance(name, e)
}

// Names returns the catalog names in sorted order. Lock-free; the sort
// runs at most once per published catalog and is cached, so steady-state
// calls cost one copy.
func (s *Store) Names() []string {
	ns := s.cat.Load().sortedNames()
	out := make([]string, len(ns))
	copy(out, ns)
	return out
}

// All returns a copy of the catalog map (the instances themselves are
// shared). Lock-free; lazy entries materialize as they are visited, and
// entries whose materialization failed are omitted.
func (s *Store) All() map[string]*core.ProbInstance {
	c := s.cat.Load()
	out := make(map[string]*core.ProbInstance, len(c.m))
	for n, e := range c.m {
		if pi, ok := s.entryInstance(n, e); ok {
			out[n] = pi
		}
	}
	return out
}

// Len returns the number of catalogued instances. Lock-free.
func (s *Store) Len() int {
	return len(s.cat.Load().m)
}

// WALSize returns the current WAL length in bytes, summed across the
// active segment and any sealed segments not yet superseded by a
// snapshot.
func (s *Store) WALSize() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.walTotal
}

// Pos returns the store's current WAL position — the append offset in
// the active segment. Positions advance monotonically for the life of
// the data directory (segment numbers are never reused) and always lie
// on a frame boundary, so a Pos is a valid point-in-time recovery
// target.
func (s *Store) Pos() Pos {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Pos{Seg: s.seg, Off: s.walBytes}
}

// committer is the single goroutine that drains the submission channel,
// forms batches, and commits them. It exits on s.stop — Close waits for
// in-flight submissions first, so the final drain below only mops up
// requests that were already queued.
func (s *Store) committer() {
	defer close(s.commitDone)
	for {
		select {
		case req := <-s.commits:
			s.commitGroup(s.collectBatch(req))
		case <-s.stop:
			for {
				select {
				case req := <-s.commits:
					s.commitGroup(s.collectBatch(req))
				default:
					return
				}
			}
		}
	}
}

// collectBatch grows a batch around the first request: it always drains
// whatever is already queued, and with CommitDelay set it keeps waiting
// for late joiners until the delay expires or the batch is full.
func (s *Store) collectBatch(first *commitReq) []*commitReq {
	batch := append(s.commitBatch[:0], first)
	max := s.opts.CommitBatch
	var timeout <-chan time.Time
	if d := s.opts.CommitDelay; d > 0 && max > 1 {
		t := time.NewTimer(d)
		defer t.Stop()
		timeout = t.C
	}
collect:
	for len(batch) < max {
		select {
		case req := <-s.commits:
			batch = append(batch, req)
			continue
		default:
		}
		if timeout == nil {
			break
		}
		select {
		case req := <-s.commits:
			batch = append(batch, req)
		case <-timeout:
			break collect
		case <-s.stop:
			break collect
		}
	}
	return batch
}

// commitGroup frames the batch into one buffer, appends and (per policy)
// fsyncs it as a single WAL write, installs the mutations, and fans the
// outcome out to every waiter. An append or foreground-fsync failure
// degrades the store and fails the whole batch: a short write can leave
// a torn frame at the tail, and after a failed fsync the kernel may
// silently drop the dirty pages, so no write in the batch can be trusted
// — recovery on the next open truncates whatever tail actually landed.
func (s *Store) commitGroup(batch []*commitReq) {
	buf := s.commitBuf[:0]
	if s.opts.ArchiveDir != "" || s.stamps.Load() {
		// One wall-clock stamp ahead of each batch gives archived
		// segments the timeline point-in-time restore cuts on, and gives
		// replication followers the wall-clock trail staleness is
		// measured against. Only archiving or stamping stores pay for
		// it; replay ignores the marker.
		s.stampBuf = appendStampRecord(s.stampBuf[:0], time.Now().UnixNano())
		buf = appendFrame(buf, s.stampBuf)
	}
	for _, r := range batch {
		buf = appendFrame(buf, r.payload)
	}
	s.mu.Lock()
	err := s.commitLocked(buf, batch)
	s.mu.Unlock()
	for i, r := range batch {
		r.done <- err
		batch[i] = nil // don't pin pooled requests through the scratch slice
	}
	if cap(buf) <= maxCommitScratch {
		s.commitBuf = buf[:0]
	} else {
		s.commitBuf = nil
	}
	s.commitBatch = batch[:0]
}

// commitLocked performs the WAL append + fsync + catalog install for one
// batch. Callers hold s.mu. Install happens only after the bytes are
// durable per the fsync policy (persist-before-install).
func (s *Store) commitLocked(frames []byte, batch []*commitReq) error {
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if s.degraded {
		return s.degradedErrLocked()
	}
	if _, err := s.wal.Write(frames); err != nil {
		return s.degradeLocked(fmt.Errorf("wal append: %w", err))
	}
	s.walBytes += int64(len(frames))
	s.walTotal += int64(len(frames))
	s.walRecords += int64(len(batch))
	s.walDirty = true
	if s.walAppends != nil {
		s.walAppends.Add(int64(len(batch)))
		s.walAppendBytes.Add(int64(len(frames)))
	}
	if s.commitBatches != nil {
		s.commitBatches.Inc()
		s.commitBatchSz.Observe(int64(len(batch)))
	}
	if s.opts.Fsync == FsyncAlways {
		if err := s.syncLocked(); err != nil {
			return s.degradeLocked(err)
		}
	}
	// One copy-on-write catalog publish for the whole batch: readers go
	// from epoch N to N+1 in a single atomic step, never observing a
	// partially applied group commit.
	s.mutateCatalogLocked(func(m map[string]*catEntry) {
		for _, r := range batch {
			switch r.op {
			case opPut:
				m[r.name] = s.newEntryLocked(r.name, r.inst)
			case opDelete:
				delete(m, r.name)
			}
		}
	})
	s.signalCommitLocked()
	if s.opts.SegmentSize > 0 && s.walBytes >= s.opts.SegmentSize {
		if err := s.rotateLocked(); err != nil {
			// The batch is already durable in the (oversized) active
			// segment; a failed rotation is a maintenance problem, not a
			// commit failure.
			s.noteErrLocked(&s.rotateErrs, s.rotateErrsC, fmt.Errorf("wal rotate: %w", err))
		}
	}
	s.maybeKickLocked()
	return nil
}

// rotateLocked seals the active segment and switches appends to the next
// numbered one. The outgoing segment is fsynced first, so a sealed file
// is complete and immutable from the moment it stops being active —
// that invariant is what lets backup, archive, and scrub read sealed
// segments without coordination. On any failure the store keeps writing
// to the old active segment, exactly as before. Callers hold s.mu.
func (s *Store) rotateLocked() error { return s.rotateToLocked(s.seg + 1) }

// rotateToLocked is rotateLocked with an explicit successor number:
// follower apply uses it to mirror the leader's segment numbering,
// including the gaps a restore leaves. next must exceed the active
// segment's number.
func (s *Store) rotateToLocked(next uint64) error {
	if next <= s.seg {
		return fmt.Errorf("rotate to segment %d: not past active segment %d", next, s.seg)
	}
	if err := s.syncLocked(); err != nil {
		return err
	}
	nf, err := s.fs.OpenAppend(s.path(segmentFile(next)))
	if err != nil {
		return fmt.Errorf("open segment %d: %w", next, err)
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		nf.Close()
		s.fs.Remove(s.path(segmentFile(next)))
		return fmt.Errorf("dir fsync: %w", err)
	}
	old := s.wal
	s.sealed = append(s.sealed, segInfo{n: s.seg, size: s.walBytes})
	s.wal = nf
	s.seg = next
	s.walBytes = 0
	s.walDirty = false
	if cerr := old.Close(); cerr != nil && s.opts.Logger != nil {
		s.opts.Logger.Printf("store: close sealed segment: %v", cerr)
	}
	if s.rotations != nil {
		s.rotations.Inc()
	}
	if s.segmentsG != nil {
		s.segmentsG.Set(int64(len(s.sealed) + 1))
	}
	s.archKickLocked()
	return nil
}

// archKickLocked nudges the background archiver after a rotation.
func (s *Store) archKickLocked() {
	if s.opts.ArchiveDir == "" {
		return
	}
	select {
	case s.archKick <- struct{}{}:
	default:
	}
}

func (s *Store) syncLocked() error {
	if !s.walDirty {
		return nil
	}
	if err := s.wal.Sync(); err != nil {
		err = fmt.Errorf("wal fsync: %w", err)
		s.noteErrLocked(&s.fsyncErrs, s.fsyncErrsC, err)
		return fmt.Errorf("store: %w", err)
	}
	s.walDirty = false
	if s.walFsyncs != nil {
		s.walFsyncs.Inc()
	}
	return nil
}

// Sync forces the WAL to stable storage regardless of policy.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	if s.degraded {
		return s.degradedErrLocked()
	}
	return s.syncLocked()
}

// maybeKickLocked nudges the background goroutine when the WAL (active
// plus sealed segments) has grown past the compaction threshold.
func (s *Store) maybeKickLocked() {
	if s.opts.CompactThreshold < 0 || s.walTotal < s.opts.CompactThreshold {
		return
	}
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// Compact writes a fresh snapshot of the catalog and retires the WAL
// segments it supersedes. The write protocol is crash-safe at every
// step: the active segment is sealed by rotation, every sealed segment
// is archived (when archiving is on), the snapshot is staged in a temp
// file, fsynced, atomically renamed, the directory entry is fsynced, and
// only then are the superseded local segments deleted. A crash between
// the rename and the deletions merely replays the sealed segments over
// the new snapshot, which is idempotent because records carry full
// instance values and replay order (snapshot, then segments ascending)
// matches commit order.
//
// Compaction waits while an online backup is in progress: a backup is
// copying exactly the files compaction would replace or delete.
// Rotation and appends continue freely under a backup — they only ever
// add bytes and files.
func (s *Store) Compact() error {
	// archMu serializes compaction with the background archiver: both
	// copy sealed segments into the archive, and compaction is the only
	// deleter of the local copies the archiver reads.
	s.archMu.Lock()
	defer s.archMu.Unlock()
	s.mu.Lock()
	for s.backups > 0 && !s.closed && !s.degraded {
		s.backupsDone.Wait()
	}
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("store: closed")
	}
	if s.degraded {
		err := s.degradedErrLocked()
		s.mu.Unlock()
		return err
	}
	// Compaction failures are retryable, not degrading by themselves:
	// nothing below touches live state until the snapshot rename lands,
	// and segments left undeleted merely replay over the fresh snapshot
	// (idempotently) on the next open. The background loop retries with
	// backoff and degrades only when the errors persist.
	// A follower never rotates on its own: segment boundaries must mirror
	// the leader's (ReplApply rotates on the leader's cue). Its snapshot
	// supersedes the sealed segments only; the active segment replays
	// over the snapshot on the next open, which is idempotent because
	// records carry full instance values.
	if s.walBytes > 0 && !s.roleFollower.Load() {
		// Seal the active segment so the snapshot supersedes whole
		// segments only; a failed rotation leaves the store exactly as it
		// was.
		if err := s.rotateLocked(); err != nil {
			err = fmt.Errorf("store: compact rotate: %w", err)
			s.noteErrLocked(&s.compactErrs, s.compactErrsC, err)
			s.mu.Unlock()
			return err
		}
	}
	pending := s.pendingArchiveLocked()
	s.mu.Unlock()

	// Archive before delete, copying outside s.mu (sealed segments are
	// immutable, so writers keep flowing): once a sealed segment is gone
	// locally, the archive is the only place the point-in-time recovery
	// chain can read it from, so compaction refuses to destroy what it
	// could not archive.
	if s.opts.ArchiveDir != "" {
		if err := s.archiveSegments(pending); err != nil {
			err = fmt.Errorf("store: archive before compact: %w", err)
			s.mu.Lock()
			s.noteErrLocked(&s.compactErrs, s.compactErrsC, err)
			s.mu.Unlock()
			return err
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	// A backup may have started while the lock was released for the
	// archive copies; it is reading the very files deleted below.
	for s.backups > 0 && !s.closed && !s.degraded {
		s.backupsDone.Wait()
	}
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if s.degraded {
		return s.degradedErrLocked()
	}
	if err := s.writeSnapshotLocked(); err != nil {
		s.noteErrLocked(&s.compactErrs, s.compactErrsC, err)
		return err
	}
	// The snapshot now carries everything the sealed segments did. With
	// archiving on, only archived segments may be deleted — a rotation
	// that slipped in while the lock was released can have sealed a
	// segment the archiver has not copied yet; it stays until the next
	// compaction.
	keep := s.sealed[:0]
	var rmErr error
	for i := range s.sealed {
		si := s.sealed[i]
		if rmErr != nil || (s.opts.ArchiveDir != "" && !si.archived) {
			keep = append(keep, si)
			continue
		}
		if err := s.fs.Remove(s.path(segmentFile(si.n))); err != nil {
			rmErr = err
			keep = append(keep, si)
			continue
		}
		s.walTotal -= si.size
	}
	s.sealed = keep
	if s.segmentsG != nil {
		s.segmentsG.Set(int64(len(s.sealed) + 1))
	}
	if rmErr != nil {
		err := fmt.Errorf("store: remove sealed segment: %w", rmErr)
		s.noteErrLocked(&s.compactErrs, s.compactErrsC, err)
		return err
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		err = fmt.Errorf("store: dir fsync: %w", err)
		s.noteErrLocked(&s.compactErrs, s.compactErrsC, err)
		return err
	}
	s.walRecords = 0
	if s.compactions != nil {
		s.compactions.Inc()
	}
	if s.opts.Logger != nil {
		s.opts.Logger.Printf("store: compacted %d instances into %s", s.Len(), snapshotName)
	}
	return nil
}

// writeSnapshotLocked stages and atomically installs snapshot.pxs.
// Materialized entries re-encode from their instance; entries still
// lazy from the previous snapshot splice their raw record bytes through
// without decoding, so compacting a cold store stays I/O-bound.
func (s *Store) writeSnapshotLocked() error {
	c := s.cat.Load()
	var buf []byte
	for _, n := range c.sortedNames() {
		var err error
		if buf, err = s.snapshotAppendLocked(buf, n, c.m[n]); err != nil {
			return err
		}
	}
	tmp, err := s.fs.CreateTemp(s.dir, snapshotName+".tmp-")
	if err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	defer s.fs.Remove(tmp.Name())
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return fmt.Errorf("store: snapshot write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: snapshot fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: snapshot close: %w", err)
	}
	if err := s.fs.Rename(tmp.Name(), s.path(snapshotName)); err != nil {
		return fmt.Errorf("store: snapshot rename: %w", err)
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		return fmt.Errorf("store: dir fsync: %w", err)
	}
	return nil
}

// Close stops background maintenance, commits every in-flight write,
// flushes the WAL, and closes it. The store is unusable afterwards.
// Close is idempotent and safe for concurrent use; on a degraded store
// the final flush is skipped (the WAL tail is already suspect — recovery
// cleans it up on the next open) and only the close error, if any, is
// reported.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return nil
	}
	s.closing = true
	s.mu.Unlock()
	// New submissions are now rejected; wait for accepted ones to get
	// their commit outcome (the committer is still running), then stop
	// the committer and the maintenance loop.
	s.submitWG.Wait()
	close(s.stop)
	<-s.commitDone
	<-s.done

	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	// Wake any Compact parked behind an online backup so it can observe
	// the close and bail out.
	s.backupsDone.Broadcast()
	var err error
	if !s.degraded {
		err = s.wal.Sync()
	}
	if cerr := s.wal.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("store: close: %w", err)
	}
	return nil
}

// background runs interval fsyncs, periodic snapshots, threshold
// compactions, segment archiving, and the at-rest scrubber until Close.
func (s *Store) background() {
	defer close(s.done)
	var fsyncC, snapC, archC, scrubC <-chan time.Time
	if s.opts.Fsync == FsyncInterval {
		t := time.NewTicker(s.opts.FsyncEvery)
		defer t.Stop()
		fsyncC = t.C
	}
	if s.opts.SnapshotInterval > 0 {
		t := time.NewTicker(s.opts.SnapshotInterval)
		defer t.Stop()
		snapC = t.C
	}
	if s.opts.ArchiveDir != "" {
		// The retry ticker picks up segments whose archive copy failed
		// (the kick channel only fires on rotation).
		t := time.NewTicker(archiveRetryEvery)
		defer t.Stop()
		archC = t.C
	}
	if s.opts.ScrubInterval > 0 {
		t := time.NewTicker(s.opts.ScrubInterval)
		defer t.Stop()
		scrubC = t.C
	}
	for {
		select {
		case <-s.stop:
			return
		case <-fsyncC:
			s.retrying("interval wal fsync", s.Sync)
		case <-snapC:
			s.retrying("periodic snapshot", s.compactIfDirty)
		case <-s.kick:
			s.retrying("threshold compaction", s.compactIfDirty)
		case <-s.archKick:
			s.archivePending()
		case <-archC:
			s.archivePending()
		case <-scrubC:
			s.scrubStep()
		}
	}
}

// compactIfDirty compacts unless the WAL is already empty (or the store
// is closing or degraded). An in-progress online backup defers the
// compaction instead of waiting for it: Compact would park this — the
// single background goroutine — in backupsDone.Wait for the backup's
// whole duration, stalling interval fsyncs, archiving, and scrub ticks
// with it. Backup re-kicks the compaction when it finishes.
func (s *Store) compactIfDirty() error {
	s.mu.RLock()
	skip := s.walTotal == 0 || s.closed || s.closing || s.degraded || s.backups > 0
	s.mu.RUnlock()
	if skip {
		return nil
	}
	return s.Compact()
}

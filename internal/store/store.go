package store

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"pxml/internal/core"
	"pxml/internal/metrics"
)

// FsyncPolicy controls when the WAL is flushed to stable storage.
type FsyncPolicy int

const (
	// FsyncAlways syncs after every append: no acknowledged write is
	// ever lost, at the cost of one fsync per mutation.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs from a background ticker (Options.FsyncEvery):
	// a crash loses at most one interval of writes.
	FsyncInterval
	// FsyncNever leaves flushing to the operating system. Snapshots are
	// still fsynced — the policy only governs the WAL.
	FsyncNever
)

// ParseFsyncPolicy maps the -fsync flag values to a policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("store: unknown fsync policy %q (want always, interval, or never)", s)
}

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", int(p))
}

// Options configure a Store. The zero value is usable: fsync on every
// append, compaction when the WAL passes DefaultCompactThreshold, no
// periodic snapshots.
type Options struct {
	// Fsync is the WAL flush policy.
	Fsync FsyncPolicy
	// FsyncEvery is the flush period under FsyncInterval; defaults to
	// 100ms.
	FsyncEvery time.Duration
	// SnapshotInterval, when positive, snapshots the catalog and resets
	// the WAL on this period even if the size threshold is not reached.
	SnapshotInterval time.Duration
	// CompactThreshold is the WAL size in bytes that triggers a
	// background compaction; 0 means DefaultCompactThreshold, negative
	// disables size-triggered compaction.
	CompactThreshold int64
	// Registry, when non-nil, receives the store_* counters.
	Registry *metrics.Registry
	// Logger, when non-nil, receives recovery and compaction reports.
	Logger *log.Logger
}

// DefaultCompactThreshold is the WAL size that triggers compaction when
// Options.CompactThreshold is zero.
const DefaultCompactThreshold = 4 << 20

const defaultFsyncEvery = 100 * time.Millisecond

// Store names inside the data directory.
const (
	walName      = "wal.log"
	snapshotName = "snapshot.pxs"
	quarantineDir = "quarantine"
)

// Store is a durable catalog of named probabilistic instances. All
// methods are safe for concurrent use. Instances handed to Put (and
// returned by Get/All) are shared, not copied: callers must treat them as
// immutable, which is the convention across the codebase.
type Store struct {
	dir  string
	opts Options

	mu         sync.RWMutex
	instances  map[string]*core.ProbInstance
	wal        *os.File
	walBytes   int64
	walRecords int64
	walDirty   bool // appended since last fsync
	closed     bool

	// legacyMigrated holds .pxml paths folded in by recovery, removed
	// once the post-recovery snapshot is durable.
	legacyMigrated []string

	walAppends     *metrics.Counter
	walAppendBytes *metrics.Counter
	walFsyncs      *metrics.Counter
	compactions    *metrics.Counter

	stop chan struct{}
	done chan struct{}
	kick chan struct{}
}

// Open opens (creating if necessary) the store in dir, runs crash
// recovery, and starts the background maintenance goroutine. The returned
// report describes what recovery found; it is never nil when the error is
// nil. A directory holding legacy per-instance .pxml text files is
// migrated into the log-structured layout on first open.
func Open(dir string, opts Options) (*Store, *RecoveryReport, error) {
	if dir == "" {
		return nil, nil, fmt.Errorf("store: empty directory")
	}
	if opts.FsyncEvery <= 0 {
		opts.FsyncEvery = defaultFsyncEvery
	}
	if opts.CompactThreshold == 0 {
		opts.CompactThreshold = DefaultCompactThreshold
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:       dir,
		opts:      opts,
		instances: make(map[string]*core.ProbInstance),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
		kick:      make(chan struct{}, 1),
	}
	if reg := opts.Registry; reg != nil {
		s.walAppends = reg.Counter("store_wal_appends")
		s.walAppendBytes = reg.Counter("store_wal_append_bytes")
		s.walFsyncs = reg.Counter("store_wal_fsyncs")
		s.compactions = reg.Counter("store_compactions")
	}
	report, err := s.recover()
	if err != nil {
		return nil, nil, err
	}
	wal, err := os.OpenFile(s.path(walName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	st, err := wal.Stat()
	if err != nil {
		wal.Close()
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	s.wal = wal
	s.walBytes = st.Size()
	// A recovery that had to quarantine, truncate, or migrate leaves the
	// on-disk state it repaired around; compact immediately so the next
	// open starts from a clean snapshot and an empty WAL.
	if report.dirty() {
		if err := s.Compact(); err != nil {
			wal.Close()
			return nil, nil, err
		}
		if err := s.removeMigratedLegacy(); err != nil {
			wal.Close()
			return nil, nil, err
		}
	}
	if reg := opts.Registry; reg != nil {
		reg.Counter("store_recovered_instances").Add(int64(len(s.instances)))
		reg.Counter("store_recovery_quarantined").Add(int64(len(report.Quarantined)))
		reg.Counter("store_recovery_truncated_bytes").Add(report.TruncatedBytes)
	}
	go s.background()
	return s, report, nil
}

func (s *Store) path(name string) string { return filepath.Join(s.dir, name) }

// Dir returns the store's data directory.
func (s *Store) Dir() string { return s.dir }

// Put durably records name → pi and installs it in the catalog. The
// instance is acknowledged once the WAL append returns (and, under
// FsyncAlways, is on stable storage).
func (s *Store) Put(name string, pi *core.ProbInstance) error {
	if name == "" {
		return fmt.Errorf("store: empty instance name")
	}
	if pi == nil {
		return fmt.Errorf("store: nil instance %q", name)
	}
	payload := appendPutRecord(nil, name, pi)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.appendLocked(payload); err != nil {
		return err
	}
	s.instances[name] = pi
	s.maybeKickLocked()
	return nil
}

// Delete durably removes name from the catalog. Deleting an absent name
// is a no-op (and writes nothing).
func (s *Store) Delete(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.instances[name]; !ok {
		return nil
	}
	if err := s.appendLocked(appendDeleteRecord(nil, name)); err != nil {
		return err
	}
	delete(s.instances, name)
	s.maybeKickLocked()
	return nil
}

// Get returns the named instance.
func (s *Store) Get(name string) (*core.ProbInstance, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	pi, ok := s.instances[name]
	return pi, ok
}

// Names returns the catalog names in sorted order.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.instances))
	for n := range s.instances {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns a copy of the catalog map (the instances themselves are
// shared).
func (s *Store) All() map[string]*core.ProbInstance {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]*core.ProbInstance, len(s.instances))
	for n, pi := range s.instances {
		out[n] = pi
	}
	return out
}

// Len returns the number of catalogued instances.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.instances)
}

// WALSize returns the current WAL length in bytes.
func (s *Store) WALSize() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.walBytes
}

// appendLocked frames payload onto the WAL, honoring the fsync policy.
// Callers hold s.mu.
func (s *Store) appendLocked(payload []byte) error {
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	frame := appendFrame(nil, payload)
	if _, err := s.wal.Write(frame); err != nil {
		return fmt.Errorf("store: wal append: %w", err)
	}
	s.walBytes += int64(len(frame))
	s.walRecords++
	s.walDirty = true
	if s.walAppends != nil {
		s.walAppends.Inc()
		s.walAppendBytes.Add(int64(len(frame)))
	}
	if s.opts.Fsync == FsyncAlways {
		return s.syncLocked()
	}
	return nil
}

func (s *Store) syncLocked() error {
	if !s.walDirty {
		return nil
	}
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("store: wal fsync: %w", err)
	}
	s.walDirty = false
	if s.walFsyncs != nil {
		s.walFsyncs.Inc()
	}
	return nil
}

// Sync forces the WAL to stable storage regardless of policy.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	return s.syncLocked()
}

// maybeKickLocked nudges the background goroutine when the WAL has grown
// past the compaction threshold.
func (s *Store) maybeKickLocked() {
	if s.opts.CompactThreshold < 0 || s.walBytes < s.opts.CompactThreshold {
		return
	}
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// Compact writes a fresh snapshot of the catalog and resets the WAL. The
// write protocol is crash-safe at every step: the snapshot is staged in a
// temp file, fsynced, atomically renamed over the old snapshot, the
// directory entry is fsynced, and only then is the WAL truncated. A crash
// between the rename and the truncate merely replays the whole WAL over
// the new snapshot, which is idempotent because records carry full
// instance values.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if err := s.writeSnapshotLocked(); err != nil {
		return err
	}
	// The WAL handle is O_APPEND; truncating through it is safe because
	// we hold the write lock, so no append can interleave.
	if err := s.wal.Truncate(0); err != nil {
		return fmt.Errorf("store: wal reset: %w", err)
	}
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("store: wal reset fsync: %w", err)
	}
	s.walBytes = 0
	s.walRecords = 0
	s.walDirty = false
	if s.compactions != nil {
		s.compactions.Inc()
	}
	if s.opts.Logger != nil {
		s.opts.Logger.Printf("store: compacted %d instances into %s", len(s.instances), snapshotName)
	}
	return nil
}

// writeSnapshotLocked stages and atomically installs snapshot.pxs.
func (s *Store) writeSnapshotLocked() error {
	names := make([]string, 0, len(s.instances))
	for n := range s.instances {
		names = append(names, n)
	}
	sort.Strings(names)
	var buf []byte
	for _, n := range names {
		buf = appendFrame(buf, appendPutRecord(nil, n, s.instances[n]))
	}
	tmp, err := os.CreateTemp(s.dir, snapshotName+".tmp-")
	if err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return fmt.Errorf("store: snapshot write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: snapshot fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: snapshot close: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(snapshotName)); err != nil {
		return fmt.Errorf("store: snapshot rename: %w", err)
	}
	return fsyncDir(s.dir)
}

// Close stops background maintenance, flushes the WAL, and closes it.
// The store is unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()
	close(s.stop)
	<-s.done

	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	err := s.wal.Sync()
	if cerr := s.wal.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("store: close: %w", err)
	}
	return nil
}

// background runs interval fsyncs, periodic snapshots, and threshold
// compactions until Close.
func (s *Store) background() {
	defer close(s.done)
	var fsyncC, snapC <-chan time.Time
	if s.opts.Fsync == FsyncInterval {
		t := time.NewTicker(s.opts.FsyncEvery)
		defer t.Stop()
		fsyncC = t.C
	}
	if s.opts.SnapshotInterval > 0 {
		t := time.NewTicker(s.opts.SnapshotInterval)
		defer t.Stop()
		snapC = t.C
	}
	for {
		select {
		case <-s.stop:
			return
		case <-fsyncC:
			if err := s.Sync(); err != nil && s.opts.Logger != nil {
				s.opts.Logger.Printf("%v", err)
			}
		case <-snapC:
			s.compactIfDirty()
		case <-s.kick:
			s.compactIfDirty()
		}
	}
}

// compactIfDirty compacts unless the WAL is already empty.
func (s *Store) compactIfDirty() {
	s.mu.RLock()
	skip := s.walBytes == 0 || s.closed
	s.mu.RUnlock()
	if skip {
		return
	}
	if err := s.Compact(); err != nil && s.opts.Logger != nil {
		s.opts.Logger.Printf("%v", err)
	}
}

// fsyncDir flushes a directory entry so a rename survives power loss.
func fsyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: open dir for fsync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: dir fsync: %w", err)
	}
	return nil
}

package store

// Follower (replica) apply path. A follower's WAL is a verbatim,
// byte-identical copy of its leader's: ReplApply appends the exact
// framed bytes the leader committed, at the exact positions the leader
// committed them, and rotates to the exact segment numbers the leader
// rotated to (including the gaps a restore leaves in the numbering).
// That makes the leader's Pos directly meaningful on the follower —
// convergence is "follower Pos == leader Pos" — and means a follower
// data directory restarts through the ordinary crash-recovery path, and
// can itself serve the stream to sub-followers.

import (
	"errors"
	"fmt"
)

// ErrFollowerReadOnly rejects local mutations on a follower store: the
// WAL mirrors the leader's, so a local write would fork the timeline.
// Writes belong on the leader. Match with errors.Is.
var ErrFollowerReadOnly = errors.New("store: follower is read-only (route writes to the leader)")

// ErrApplyMismatch reports a ReplApply position that is not the
// follower's current append position — the chunk cannot be applied
// without tearing the byte-identical mirror. The caller should re-read
// the store's Pos and resume streaming from there. Match with errors.Is.
var ErrApplyMismatch = errors.New("store: replication apply position mismatch")

// ApplyResult describes one applied stream chunk.
type ApplyResult struct {
	// Pos is the follower's position after the apply.
	Pos Pos
	// Records counts the catalog mutations installed (stamps excluded).
	Records int
	// StampNanos is the newest wall-clock stamp in the chunk (unix
	// nanoseconds), 0 if the chunk carried none. The leader writes one
	// ahead of each group commit when Options.Stamps or archiving is on.
	StampNanos int64
	// Changed lists the instance names the chunk mutated, in apply
	// order (duplicates possible). Serving layers use it to refresh
	// per-instance engines.
	Changed []string
}

// ReplApply appends one replicated chunk — raw CRC-framed bytes read
// from a leader's ReadStream — at position from, installs the contained
// records into the catalog, and advances the follower's position. from
// must equal the follower's current position, except that a from in a
// later segment at offset 0 is the leader's rotation cue: the follower
// seals its active segment as-is and continues at exactly from.Seg.
// Every frame is CRC-verified and fully decoded before any byte is
// written; a chunk that does not verify is rejected whole. An append or
// fsync failure degrades the store exactly like a local commit would.
//
// epoch is the leader era the chunk was served under (the stream's
// X-Pxml-Repl-Epoch stamp). A chunk from an epoch lower than the
// highest this follower has seen is refused with ErrEpochFenced —
// bytes from a superseded leader would fork the mirror. A higher epoch
// is adopted (and persisted) before any byte lands. epoch 0 skips the
// check, for callers speaking the pre-epoch protocol.
func (s *Store) ReplApply(from Pos, epoch uint64, data []byte) (ApplyResult, error) {
	if !s.roleFollower.Load() {
		return ApplyResult{}, fmt.Errorf("store: ReplApply on a non-follower store")
	}
	// Verify and decode outside the lock: nothing below may land in the
	// WAL unless the whole chunk is well-formed.
	var recs []record
	res, err := scanFrames(data, func(off int64, payload []byte) error {
		rec, derr := decodeRecord(payload)
		if derr != nil {
			return fmt.Errorf("frame at +%d: %w", off, derr)
		}
		recs = append(recs, rec)
		return nil
	})
	if err != nil {
		return ApplyResult{}, fmt.Errorf("store: repl chunk rejected: %w", err)
	}
	if res.CleanLen != int64(len(data)) || len(res.Bad) > 0 || res.TornTail > 0 {
		return ApplyResult{}, fmt.Errorf("store: repl chunk rejected: %d of %d bytes decode cleanly (%d bad regions, %d torn tail bytes)",
			res.CleanLen, len(data), len(res.Bad), res.TornTail)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.closing {
		return ApplyResult{}, fmt.Errorf("store: closed")
	}
	if s.degraded {
		return ApplyResult{}, s.degradedErrLocked()
	}
	if epoch != 0 {
		if epoch < s.epoch {
			return ApplyResult{}, fmt.Errorf("%w: chunk from epoch %d, follower has seen epoch %d",
				ErrEpochFenced, epoch, s.epoch)
		}
		// Adopt-before-apply: if the new era cannot be persisted, the
		// bytes must not land either, or a crash could replay them under
		// the old era's authority.
		if err := s.adoptEpochLocked(epoch); err != nil {
			return ApplyResult{}, fmt.Errorf("store: repl epoch adopt: %w", err)
		}
	}
	switch {
	case from.Seg == s.seg:
		if from.Off != s.walBytes {
			return ApplyResult{}, fmt.Errorf("%w: chunk at %s, follower at %d:%d",
				ErrApplyMismatch, from, s.seg, s.walBytes)
		}
	case from.Seg > s.seg:
		if from.Off != 0 {
			return ApplyResult{}, fmt.Errorf("%w: chunk at %s skips into segment %d mid-stream",
				ErrApplyMismatch, from, from.Seg)
		}
		// The leader rotated (possibly across a restore gap): mirror it.
		if err := s.rotateToLocked(from.Seg); err != nil {
			return ApplyResult{}, s.degradeLocked(fmt.Errorf("repl rotate: %w", err))
		}
	default:
		return ApplyResult{}, fmt.Errorf("%w: chunk at %s is behind follower position %d:%d",
			ErrApplyMismatch, from, s.seg, s.walBytes)
	}

	out := ApplyResult{Records: 0}
	if len(data) > 0 {
		if _, err := s.wal.Write(data); err != nil {
			return ApplyResult{}, s.degradeLocked(fmt.Errorf("repl wal append: %w", err))
		}
		s.walBytes += int64(len(data))
		s.walTotal += int64(len(data))
		s.walDirty = true
		if s.opts.Fsync == FsyncAlways {
			if err := s.syncLocked(); err != nil {
				return ApplyResult{}, s.degradeLocked(err)
			}
		}
		// One catalog publish per applied chunk, mirroring the leader's
		// one-publish-per-group-commit: follower readers step whole
		// epochs, never a partially applied chunk.
		s.mutateCatalogLocked(func(m map[string]*catEntry) {
			for _, rec := range recs {
				switch rec.op {
				case opPut:
					m[rec.name] = s.newEntryLocked(rec.name, rec.inst)
					out.Records++
					out.Changed = append(out.Changed, rec.name)
				case opDelete:
					delete(m, rec.name)
					out.Records++
					out.Changed = append(out.Changed, rec.name)
				case opStamp:
					if rec.ts > out.StampNanos {
						out.StampNanos = rec.ts
					}
				}
			}
		})
		s.walRecords += int64(out.Records)
		if out.StampNanos > s.lastReplStamp {
			s.lastReplStamp = out.StampNanos
		}
		if s.walAppends != nil {
			s.walAppends.Add(int64(out.Records))
			s.walAppendBytes.Add(int64(len(data)))
		}
		s.signalCommitLocked()
		s.maybeKickLocked()
	}
	out.Pos = Pos{Seg: s.seg, Off: s.walBytes}
	return out, nil
}

// LastReplStamp returns the newest wall-clock stamp applied via
// ReplApply (unix nanoseconds), 0 before any stamp arrived.
func (s *Store) LastReplStamp() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.lastReplStamp
}

package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"pxml/internal/codec"
)

// Recovery runs before the WAL is opened, so all its I/O goes through
// s.fs as well — a FaultFS can therefore exercise recovery-time failure
// paths (unreadable files, failing truncates, failing quarantine writes)
// in addition to runtime ones.

// QuarantinedRecord describes one corrupt region recovery set aside
// instead of failing on.
type QuarantinedRecord struct {
	// Source is "snapshot", "wal", or the legacy file name the bytes
	// came from.
	Source string `json:"source"`
	// Offset is the byte offset of the region within its source file
	// (zero for legacy files, which are quarantined whole).
	Offset int64 `json:"offset"`
	// Path is where the bytes were preserved for inspection.
	Path string `json:"path"`
	// Err is the decode error that condemned the region.
	Err string `json:"error"`
}

// RecoveryReport summarizes what Open found while rebuilding the catalog.
type RecoveryReport struct {
	// SnapshotRecords and WALRecords count the decodable records
	// replayed from each file.
	SnapshotRecords int `json:"snapshot_records"`
	WALRecords      int `json:"wal_records"`
	// Recovered is the number of live instances after replay.
	Recovered int `json:"recovered"`
	// Quarantined lists corrupt regions preserved under quarantine/.
	Quarantined []QuarantinedRecord `json:"quarantined,omitempty"`
	// TruncatedBytes is the length of the torn WAL tail dropped (an
	// append cut short by a crash).
	TruncatedBytes int64 `json:"truncated_bytes,omitempty"`
	// MigratedLegacy counts legacy .pxml text files folded into the
	// log-structured layout.
	MigratedLegacy int `json:"migrated_legacy,omitempty"`
}

// dirty reports whether recovery changed or repaired on-disk state, which
// Open follows with an immediate compaction.
func (r *RecoveryReport) dirty() bool {
	return len(r.Quarantined) > 0 || r.TruncatedBytes > 0 || r.MigratedLegacy > 0
}

// String renders a one-line summary for startup logs.
func (r *RecoveryReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "recovered %d instances (%d snapshot records, %d wal records)",
		r.Recovered, r.SnapshotRecords, r.WALRecords)
	if len(r.Quarantined) > 0 {
		fmt.Fprintf(&b, ", quarantined %d corrupt records", len(r.Quarantined))
	}
	if r.TruncatedBytes > 0 {
		fmt.Fprintf(&b, ", truncated %d-byte torn wal tail", r.TruncatedBytes)
	}
	if r.MigratedLegacy > 0 {
		fmt.Fprintf(&b, ", migrated %d legacy files", r.MigratedLegacy)
	}
	return b.String()
}

// recover rebuilds the in-memory catalog: snapshot first, then the WAL
// replayed over it. Corrupt records are quarantined, a torn WAL tail is
// truncated, and a legacy flat-file directory is migrated. Only I/O
// failures (not data corruption) abort recovery.
func (s *Store) recover() (*RecoveryReport, error) {
	report := &RecoveryReport{}
	if err := s.recoverFile(snapshotName, "snapshot", &report.SnapshotRecords, report); err != nil {
		return nil, err
	}
	if err := s.recoverFile(walName, "wal", &report.WALRecords, report); err != nil {
		return nil, err
	}
	if report.SnapshotRecords == 0 && report.WALRecords == 0 && len(report.Quarantined) == 0 {
		if err := s.migrateLegacy(report); err != nil {
			return nil, err
		}
	}
	report.Recovered = len(s.instances)
	if s.opts.Logger != nil {
		s.opts.Logger.Printf("store: %s", report)
	}
	return report, nil
}

// recoverFile replays one frame file into the catalog. For the WAL it
// also truncates a torn tail in place; for the snapshot a torn tail is
// quarantined like any other corruption (snapshots are written through a
// temp file, so a short snapshot means real damage, not a mid-append
// crash).
func (s *Store) recoverFile(fileName, source string, nRecords *int, report *RecoveryReport) error {
	data, err := s.fs.ReadFile(s.path(fileName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	res, err := scanFrames(data, func(off int64, payload []byte) error {
		rec, derr := decodeRecord(payload)
		if derr != nil {
			return s.quarantine(source, off, payload, derr, report)
		}
		*nRecords++
		switch rec.op {
		case opPut:
			s.instances[rec.name] = rec.inst
		case opDelete:
			delete(s.instances, rec.name)
		}
		return nil
	})
	if err != nil {
		return err
	}
	for _, bad := range res.Bad {
		if err := s.quarantine(source, bad.Off, bad.Data, bad.Err, report); err != nil {
			return err
		}
	}
	if res.TornTail > 0 {
		if source == "wal" {
			// A tail with no later frame to resync on is the signature
			// of an append cut short by a crash: drop it.
			if err := s.fs.Truncate(s.path(fileName), res.CleanLen); err != nil {
				return fmt.Errorf("store: truncate torn wal tail: %w", err)
			}
			report.TruncatedBytes += res.TornTail
		} else {
			tailOff := int64(len(data)) - res.TornTail
			if err := s.quarantine(source, tailOff, data[tailOff:], fmt.Errorf("store: undecodable snapshot tail"), report); err != nil {
				return err
			}
		}
	}
	return nil
}

// quarantine preserves a corrupt byte region under quarantine/ and logs
// it in the report. The file name encodes source and offset, so repeated
// recoveries of the same damage overwrite rather than accumulate.
func (s *Store) quarantine(source string, off int64, data []byte, cause error, report *RecoveryReport) error {
	qdir := s.path(quarantineDir)
	if err := s.fs.MkdirAll(qdir); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	path := filepath.Join(qdir, fmt.Sprintf("%s-%08d.bin", source, off))
	if err := s.fs.WriteFile(path, data); err != nil {
		return fmt.Errorf("store: quarantine: %w", err)
	}
	report.Quarantined = append(report.Quarantined, QuarantinedRecord{
		Source: source,
		Offset: off,
		Path:   path,
		Err:    cause.Error(),
	})
	if s.opts.Logger != nil {
		s.opts.Logger.Printf("store: quarantined %d corrupt bytes from %s@%d to %s: %v", len(data), source, off, path, cause)
	}
	return nil
}

// migrateLegacy folds a pre-WAL data directory of per-instance .pxml
// text files into the store. Decodable files are loaded (and later
// snapshotted by Open's post-recovery compaction) and removed; corrupt
// files are renamed to <name>.pxml.corrupt and reported.
func (s *Store) migrateLegacy(report *RecoveryReport) error {
	paths, err := s.fs.Glob(filepath.Join(s.dir, "*.pxml"))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	var migrated []string
	for _, p := range paths {
		name := strings.TrimSuffix(filepath.Base(p), ".pxml")
		f, err := s.fs.Open(p)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		pi, derr := codec.DecodeText(f)
		f.Close()
		if derr != nil {
			corrupt := p + ".corrupt"
			if err := s.fs.Rename(p, corrupt); err != nil {
				return fmt.Errorf("store: quarantine legacy file: %w", err)
			}
			report.Quarantined = append(report.Quarantined, QuarantinedRecord{
				Source: filepath.Base(p),
				Path:   corrupt,
				Err:    derr.Error(),
			})
			if s.opts.Logger != nil {
				s.opts.Logger.Printf("store: legacy file %s is corrupt, renamed to %s: %v", p, corrupt, derr)
			}
			continue
		}
		s.instances[name] = pi
		migrated = append(migrated, p)
		report.MigratedLegacy++
	}
	// Removal is deferred until Open has written a durable snapshot
	// containing the migrated instances; deleting the sources first
	// would lose them to a crash in between.
	s.legacyMigrated = migrated
	return nil
}

// removeMigratedLegacy deletes legacy source files once their contents
// are snapshot-durable.
func (s *Store) removeMigratedLegacy() error {
	if len(s.legacyMigrated) == 0 {
		return nil
	}
	for _, p := range s.legacyMigrated {
		if err := s.fs.Remove(p); err != nil {
			return fmt.Errorf("store: remove migrated legacy file: %w", err)
		}
	}
	s.legacyMigrated = nil
	if err := s.fs.SyncDir(s.dir); err != nil {
		return fmt.Errorf("store: dir fsync: %w", err)
	}
	return nil
}

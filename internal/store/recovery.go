package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"pxml/internal/codec"
	"pxml/internal/vfs"
)

// Recovery runs before the WAL is opened, so all its I/O goes through
// s.fs as well — a FaultFS can therefore exercise recovery-time failure
// paths (unreadable files, failing truncates, failing quarantine writes)
// in addition to runtime ones.

// QuarantinedRecord describes one corrupt region recovery set aside
// instead of failing on.
type QuarantinedRecord struct {
	// Source is "snapshot", "wal", or the legacy file name the bytes
	// came from.
	Source string `json:"source"`
	// Offset is the byte offset of the region within its source file
	// (zero for legacy files, which are quarantined whole).
	Offset int64 `json:"offset"`
	// Path is where the bytes were preserved for inspection.
	Path string `json:"path"`
	// Err is the decode error that condemned the region.
	Err string `json:"error"`
}

// RecoveryReport summarizes what Open found while rebuilding the catalog.
type RecoveryReport struct {
	// SnapshotRecords and WALRecords count the decodable records
	// replayed from each file.
	SnapshotRecords int `json:"snapshot_records"`
	WALRecords      int `json:"wal_records"`
	// Recovered is the number of live instances after replay.
	Recovered int `json:"recovered"`
	// Quarantined lists corrupt regions preserved under quarantine/.
	Quarantined []QuarantinedRecord `json:"quarantined,omitempty"`
	// TruncatedBytes is the length of the torn WAL tail dropped (an
	// append cut short by a crash).
	TruncatedBytes int64 `json:"truncated_bytes,omitempty"`
	// Segments is how many WAL segment files recovery replayed.
	Segments int `json:"segments,omitempty"`
	// MigratedLegacy counts legacy .pxml text files folded into the
	// log-structured layout; MigratedWAL reports a pre-segmentation
	// single-file wal.log replayed and retired.
	MigratedLegacy int  `json:"migrated_legacy,omitempty"`
	MigratedWAL    bool `json:"migrated_wal,omitempty"`
}

// dirty reports whether recovery changed or repaired on-disk state, which
// Open follows with an immediate compaction.
func (r *RecoveryReport) dirty() bool {
	return len(r.Quarantined) > 0 || r.TruncatedBytes > 0 || r.MigratedLegacy > 0 || r.MigratedWAL
}

// String renders a one-line summary for startup logs.
func (r *RecoveryReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "recovered %d instances (%d snapshot records, %d wal records)",
		r.Recovered, r.SnapshotRecords, r.WALRecords)
	if len(r.Quarantined) > 0 {
		fmt.Fprintf(&b, ", quarantined %d corrupt records", len(r.Quarantined))
	}
	if r.TruncatedBytes > 0 {
		fmt.Fprintf(&b, ", truncated %d-byte torn wal tail", r.TruncatedBytes)
	}
	if r.MigratedLegacy > 0 {
		fmt.Fprintf(&b, ", migrated %d legacy files", r.MigratedLegacy)
	}
	if r.MigratedWAL {
		b.WriteString(", migrated legacy wal")
	}
	return b.String()
}

// recover rebuilds the in-memory catalog: snapshot first, then a legacy
// single-file WAL (if one survives from the pre-segmentation layout),
// then every WAL segment in ascending order. Corrupt records are
// quarantined, a torn tail on a file that was being appended to is
// truncated, and a legacy flat-file directory is migrated. Only I/O
// failures (not data corruption) abort recovery.
func (s *Store) recover() (*RecoveryReport, error) {
	report := &RecoveryReport{}
	// Recovery builds the first catalog in s.recm (single-goroutine:
	// nothing else runs before Open starts the committer) and publishes
	// it once, at the end.
	s.recm = make(map[string]*catEntry)
	// The snapshot is the one file large enough to matter at open: map
	// it read-only and defer instance decode to first touch (frame CRCs
	// are still verified eagerly, so corruption quarantines now, not at
	// query time). WAL files replay eagerly — they are short-lived,
	// carry deletes, and get truncated/rewritten, so aliasing them is
	// not worth the bookkeeping.
	if _, _, err := s.recoverFile(snapshotName, "snapshot", false, true, &report.SnapshotRecords, report); err != nil {
		return nil, err
	}
	// A pre-segmentation wal.log predates every segment, so it replays
	// right after the snapshot. It is retired (snapshotted into the new
	// layout, then deleted) by the post-recovery compaction.
	if _, found, err := s.recoverFile(legacyWALName, "wal", true, false, &report.WALRecords, report); err != nil {
		return nil, err
	} else if found {
		report.MigratedWAL = true
		s.legacyMigrated = append(s.legacyMigrated, s.path(legacyWALName))
	}
	segs, err := listSegments(s.fs, s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for i, n := range segs {
		// Only the highest-numbered segment was being appended to at the
		// time of a crash, so only it gets the truncate-the-torn-tail
		// policy; a torn tail on a sealed segment is real damage and is
		// quarantined instead.
		last := i == len(segs)-1
		source := strings.TrimSuffix(segmentFile(n), segSuffix)
		size, _, err := s.recoverFile(segmentFile(n), source, last, false, &report.WALRecords, report)
		if err != nil {
			return nil, err
		}
		report.Segments++
		if last {
			s.seg = n
			s.activeBytes = size // post-truncation; Open may seal it as-is
		} else {
			s.sealed = append(s.sealed, segInfo{n: n, size: size})
		}
	}
	if report.SnapshotRecords == 0 && report.WALRecords == 0 && len(report.Quarantined) == 0 && !report.MigratedWAL {
		if err := s.migrateLegacy(report); err != nil {
			return nil, err
		}
	}
	// Pick up quarantine files left by earlier runs so the cap and the
	// gauge reflect the directory, not just this recovery.
	s.pruneQuarantine()
	report.Recovered = len(s.recm)
	// Publish the recovered catalog in one step; readers existing from
	// here on see the complete replay result.
	cur := s.cat.Load()
	s.cat.Store(&catalog{epoch: cur.epoch + 1, m: s.recm})
	s.recm = nil
	if s.opts.Logger != nil {
		s.opts.Logger.Printf("store: %s", report)
	}
	return report, nil
}

// recoverFile replays one frame file into the catalog, reporting its
// (post-truncation) size and whether it existed. With truncateTail set —
// the file was being appended to when the process died — a trailing
// region with no later frame to resync on is dropped in place: that is
// the signature of an append cut short by a crash. Otherwise a torn tail
// is quarantined like any other corruption (snapshots and sealed
// segments are never appended to, so a short tail means real damage).
func (s *Store) recoverFile(fileName, source string, truncateTail, lazy bool, nRecords *int, report *RecoveryReport) (int64, bool, error) {
	var data []byte
	var src *vfs.Mapping
	if lazy {
		// Map instead of read: the bytes stay in the page cache and lazy
		// entries alias them until first touch. Through a FaultFS (no
		// Mapper capability) this degrades to a ReadFile, so injected
		// read failures still fire.
		m, err := vfs.MapFile(s.fs, s.path(fileName))
		if os.IsNotExist(err) {
			return 0, false, nil
		}
		if err != nil {
			return 0, false, fmt.Errorf("store: %w", err)
		}
		src = m
		data = m.Bytes()
	} else {
		var err error
		data, err = s.fs.ReadFile(s.path(fileName))
		if os.IsNotExist(err) {
			return 0, false, nil
		}
		if err != nil {
			return 0, false, fmt.Errorf("store: %w", err)
		}
	}
	res, err := scanFrames(data, func(off int64, payload []byte) error {
		if lazy {
			op, name, body, derr := splitRecord(payload)
			if derr == nil && op == opPut {
				// Frame CRC already covers these bytes; CheckBinary
				// additionally validates the record's own frame (magic,
				// length, CRC) so a malformed embed quarantines at open,
				// exactly like the eager path. Only the structural
				// decode is deferred.
				derr = codec.CheckBinary(body)
			}
			if derr != nil {
				return s.quarantine(source, off, payload, derr, report)
			}
			switch op {
			case opPut:
				*nRecords++
				s.recm[name] = s.newLazyEntryLocked(name, payload, len(payload)-len(body), src)
			case opDelete:
				*nRecords++
				delete(s.recm, name)
			case opStamp:
				// Commit-time wall-clock marker; no catalog effect.
			}
			return nil
		}
		rec, derr := decodeRecord(payload)
		if derr != nil {
			return s.quarantine(source, off, payload, derr, report)
		}
		switch rec.op {
		case opPut:
			*nRecords++
			s.recm[rec.name] = s.newEntryLocked(rec.name, rec.inst)
		case opDelete:
			*nRecords++
			delete(s.recm, rec.name)
		case opStamp:
			// Commit-time wall-clock marker; no catalog effect.
		}
		return nil
	})
	if err != nil {
		return 0, false, err
	}
	for _, bad := range res.Bad {
		if err := s.quarantine(source, bad.Off, bad.Data, bad.Err, report); err != nil {
			return 0, false, err
		}
	}
	size := int64(len(data))
	if res.TornTail > 0 {
		if truncateTail {
			if err := s.fs.Truncate(s.path(fileName), res.CleanLen); err != nil {
				return 0, false, fmt.Errorf("store: truncate torn wal tail: %w", err)
			}
			report.TruncatedBytes += res.TornTail
			size = res.CleanLen
		} else {
			tailOff := size - res.TornTail
			if err := s.quarantine(source, tailOff, data[tailOff:], fmt.Errorf("store: undecodable %s tail", source), report); err != nil {
				return 0, false, err
			}
		}
	}
	return size, true, nil
}

// quarantine preserves a corrupt byte region under quarantine/ and logs
// it in the report. The file name encodes source and offset, so repeated
// recoveries of the same damage overwrite rather than accumulate.
func (s *Store) quarantine(source string, off int64, data []byte, cause error, report *RecoveryReport) error {
	qdir := s.path(quarantineDir)
	if err := s.fs.MkdirAll(qdir); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	path := filepath.Join(qdir, fmt.Sprintf("%s-%08d.bin", source, off))
	if err := s.fs.WriteFile(path, data); err != nil {
		return fmt.Errorf("store: quarantine: %w", err)
	}
	report.Quarantined = append(report.Quarantined, QuarantinedRecord{
		Source: source,
		Offset: off,
		Path:   path,
		Err:    cause.Error(),
	})
	if s.opts.Logger != nil {
		s.opts.Logger.Printf("store: quarantined %d corrupt bytes from %s@%d to %s: %v", len(data), source, off, path, cause)
	}
	s.pruneQuarantine()
	return nil
}

// pruneQuarantine bounds quarantine/ to Options.QuarantineMax files,
// evicting oldest-first by modification time, and refreshes the file
// count the health snapshot and store_quarantine_files gauge report.
// Keeping evidence of corruption is worth disk space only up to a point:
// a store that keeps hitting damage must not fill the volume with it.
// Eviction failures are ignored — the next quarantine retries.
func (s *Store) pruneQuarantine() {
	qdir := s.path(quarantineDir)
	entries, err := s.fs.ReadDir(qdir)
	if err != nil {
		return
	}
	if max := s.opts.QuarantineMax; max > 0 && len(entries) > max {
		sort.Slice(entries, func(i, j int) bool {
			return quarantineModTime(entries[i]).Before(quarantineModTime(entries[j]))
		})
		for _, e := range entries[:len(entries)-max] {
			if rerr := s.fs.Remove(filepath.Join(qdir, e.Name())); rerr != nil {
				continue
			}
			if s.opts.Logger != nil {
				s.opts.Logger.Printf("store: quarantine over %d-file cap, evicted oldest %s", max, e.Name())
			}
		}
		if entries, err = s.fs.ReadDir(qdir); err != nil {
			return
		}
	}
	s.quarantineFiles = len(entries)
	if s.quarantineG != nil {
		s.quarantineG.Set(int64(len(entries)))
	}
}

func quarantineModTime(e os.DirEntry) time.Time {
	info, err := e.Info()
	if err != nil {
		return time.Time{}
	}
	return info.ModTime()
}

// migrateLegacy folds a pre-WAL data directory of per-instance .pxml
// text files into the store. Decodable files are loaded (and later
// snapshotted by Open's post-recovery compaction) and removed; corrupt
// files are renamed to <name>.pxml.corrupt and reported.
func (s *Store) migrateLegacy(report *RecoveryReport) error {
	paths, err := s.fs.Glob(filepath.Join(s.dir, "*.pxml"))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	var migrated []string
	for _, p := range paths {
		name := strings.TrimSuffix(filepath.Base(p), ".pxml")
		f, err := s.fs.Open(p)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		pi, derr := codec.DecodeText(f)
		f.Close()
		if derr != nil {
			corrupt := p + ".corrupt"
			if err := s.fs.Rename(p, corrupt); err != nil {
				return fmt.Errorf("store: quarantine legacy file: %w", err)
			}
			report.Quarantined = append(report.Quarantined, QuarantinedRecord{
				Source: filepath.Base(p),
				Path:   corrupt,
				Err:    derr.Error(),
			})
			if s.opts.Logger != nil {
				s.opts.Logger.Printf("store: legacy file %s is corrupt, renamed to %s: %v", p, corrupt, derr)
			}
			continue
		}
		s.recm[name] = s.newEntryLocked(name, pi)
		migrated = append(migrated, p)
		report.MigratedLegacy++
	}
	// Removal is deferred until Open has written a durable snapshot
	// containing the migrated instances; deleting the sources first
	// would lose them to a crash in between.
	s.legacyMigrated = migrated
	return nil
}

// removeMigratedLegacy deletes legacy source files once their contents
// are snapshot-durable.
func (s *Store) removeMigratedLegacy() error {
	if len(s.legacyMigrated) == 0 {
		return nil
	}
	for _, p := range s.legacyMigrated {
		if err := s.fs.Remove(p); err != nil {
			return fmt.Errorf("store: remove migrated legacy file: %w", err)
		}
	}
	s.legacyMigrated = nil
	if err := s.fs.SyncDir(s.dir); err != nil {
		return fmt.Errorf("store: dir fsync: %w", err)
	}
	return nil
}

package store

import (
	"fmt"
	"os"
	"time"
)

// Background at-rest scrubbing. Disks rot silently: a sector that held
// fsync-acknowledged bytes can fail to read back months later, and a
// store that only notices at the next crash recovery has been serving on
// borrowed time. With Options.ScrubInterval set, the background loop
// re-reads one at-rest file per tick — the snapshot or a sealed segment,
// round-robin — and verifies every frame checksum. The active segment is
// skipped: it is the one file legitimately mid-write.
//
// A checksum mismatch degrades the store. That is deliberate: the
// catalog in memory is fine, but what is on disk no longer replays to
// it, so accepting more writes only widens the gap between what was
// acknowledged and what a restart can recover. Reads keep serving;
// operators restore from a backup (see backup.go).

// Scrub synchronously verifies every at-rest file — the snapshot and all
// sealed local segments — and returns the first corruption or read error
// found. Corruption also degrades the store, exactly as when the
// background scrubber finds it.
func (s *Store) Scrub() error {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return fmt.Errorf("store: closed")
	}
	targets := s.scrubTargetsLocked()
	s.mu.RUnlock()
	var firstErr error
	for _, name := range targets {
		if err := s.scrubOne(name); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.scrubPassDone()
	return firstErr
}

// scrubStep verifies the next at-rest file in round-robin order. Called
// from the background goroutine on the scrub ticker.
func (s *Store) scrubStep() {
	s.mu.Lock()
	if s.closed || s.closing || s.degraded {
		s.mu.Unlock()
		return
	}
	targets := s.scrubTargetsLocked()
	if s.scrubCursor >= len(targets) {
		s.scrubCursor = 0
	}
	name := targets[s.scrubCursor]
	s.scrubCursor++
	wrapped := s.scrubCursor >= len(targets)
	if wrapped {
		s.scrubCursor = 0
	}
	s.mu.Unlock()
	s.scrubOne(name) // degrades on corruption; nothing more to do here
	if wrapped {
		s.scrubPassDone()
	}
}

// scrubTargetsLocked lists the at-rest files, snapshot first. The
// snapshot is listed even when absent (scrubOne skips a missing file),
// so the target list is never empty. Callers hold s.mu.
func (s *Store) scrubTargetsLocked() []string {
	targets := make([]string, 0, len(s.sealed)+1)
	targets = append(targets, snapshotName)
	for _, si := range s.sealed {
		targets = append(targets, segmentFile(si.n))
	}
	return targets
}

// scrubOne re-reads one at-rest file and verifies its frame checksums. A
// file deleted since listing (compaction won the race) is fine; a region
// that no longer checksums is not — the store degrades.
func (s *Store) scrubOne(name string) error {
	data, err := s.fs.ReadFile(s.path(name))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		s.mu.Lock()
		s.lastErr = err.Error()
		s.lastErrAt = time.Now()
		s.mu.Unlock()
		return fmt.Errorf("store: scrub read %s: %w", name, err)
	}
	if s.scrubBytesC != nil {
		s.scrubBytesC.Add(int64(len(data)))
	}
	res, _ := scanFrames(data, func(int64, []byte) error { return nil })
	if len(res.Bad) == 0 && res.TornTail == 0 {
		return nil
	}
	s.mu.Lock()
	s.scrubCorruptions++
	if s.scrubCorruptC != nil {
		s.scrubCorruptC.Inc()
	}
	err = s.degradeLocked(fmt.Errorf("scrub: %s fails verification (%d bad regions, %d-byte torn tail)",
		name, len(res.Bad), res.TornTail))
	s.mu.Unlock()
	return err
}

// scrubPassDone records one completed cycle over the at-rest files.
func (s *Store) scrubPassDone() {
	s.mu.Lock()
	s.scrubPasses++
	s.scrubLastAt = time.Now()
	s.mu.Unlock()
	if s.scrubPassesC != nil {
		s.scrubPassesC.Inc()
	}
}

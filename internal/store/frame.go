// Package store is the durable storage engine behind the instance
// catalog: a write-ahead log of binary-encoded PUT/DELETE records plus
// periodic snapshots, with crash recovery that replays snapshot-then-WAL,
// truncates torn tails, and quarantines (rather than fails on) corrupt
// records.
//
// Both the WAL and the snapshot file are sequences of self-delimiting
// frames:
//
//	magic "PXR1" (4 bytes) | payload length (uint32 LE) | CRC32-IEEE of
//	payload (uint32 LE) | payload
//
// The per-frame magic makes resynchronization possible after corruption:
// a scanner that hits a bad frame searches forward for the next magic and
// resumes there, so one damaged record does not take down the rest of the
// log. A frame payload is one catalog record (see record.go).
package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

var frameMagic = [4]byte{'P', 'X', 'R', '1'}

const (
	frameHeaderSize = 12      // magic + length + crc
	maxFramePayload = 1 << 30 // sanity bound against corrupt length fields
)

// appendFrame appends one framed payload to buf.
func appendFrame(buf, payload []byte) []byte {
	buf = append(buf, frameMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	return append(buf, payload...)
}

// badRegion describes a byte range a frame scan could not decode: bytes
// [Off, Off+len(Data)) of the scanned input, with the reason.
type badRegion struct {
	Off  int64
	Data []byte
	Err  error
}

// scanResult is the outcome of scanning a frame file.
type scanResult struct {
	// CleanLen is the length of the longest prefix ending at a frame
	// boundary with no trailing garbage: everything at or past CleanLen
	// is either a quarantined region or the torn tail.
	CleanLen int64
	// Bad holds mid-file regions that were skipped by resynchronizing on
	// a later frame magic. These are quarantined by the caller.
	Bad []badRegion
	// TornTail is the length of a trailing region after the last
	// decodable frame with no later magic to resync on — the signature
	// of a write cut short by a crash. The caller truncates it.
	TornTail int64
}

// scanFrames walks data frame by frame, calling fn for every frame whose
// header and checksum verify. On a bad frame it searches forward for the
// next magic; skipped bytes become Bad regions, and an unresyncable tail
// becomes TornTail. fn errors abort the scan.
func scanFrames(data []byte, fn func(off int64, payload []byte) error) (scanResult, error) {
	var res scanResult
	off := 0
	for off < len(data) {
		payload, size, err := parseFrame(data[off:])
		if err == nil {
			if ferr := fn(int64(off), payload); ferr != nil {
				return res, ferr
			}
			off += size
			res.CleanLen = int64(off)
			continue
		}
		// Resynchronize: look for the next magic strictly after off.
		idx := bytes.Index(data[off+1:], frameMagic[:])
		if idx < 0 {
			res.TornTail = int64(len(data) - off)
			return res, nil
		}
		next := off + 1 + idx
		res.Bad = append(res.Bad, badRegion{
			Off:  int64(off),
			Data: data[off:next],
			Err:  err,
		})
		off = next
	}
	return res, nil
}

// parseFrame decodes the frame at the start of data, returning its
// payload and total encoded size.
func parseFrame(data []byte) (payload []byte, size int, err error) {
	if len(data) < frameHeaderSize {
		return nil, 0, fmt.Errorf("store: truncated frame header (%d bytes)", len(data))
	}
	if [4]byte(data[:4]) != frameMagic {
		return nil, 0, fmt.Errorf("store: bad frame magic %q", data[:4])
	}
	n := binary.LittleEndian.Uint32(data[4:8])
	if n > maxFramePayload {
		return nil, 0, fmt.Errorf("store: frame payload length %d exceeds limit", n)
	}
	if uint64(len(data)-frameHeaderSize) < uint64(n) {
		return nil, 0, fmt.Errorf("store: frame payload truncated (want %d bytes, have %d)", n, len(data)-frameHeaderSize)
	}
	payload = data[frameHeaderSize : frameHeaderSize+int(n)]
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(data[8:12]); got != want {
		return nil, 0, fmt.Errorf("store: frame checksum mismatch (got %08x, want %08x)", got, want)
	}
	return payload, frameHeaderSize + int(n), nil
}

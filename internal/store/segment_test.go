package store

// Segmentation suite: size-based WAL rotation, replay across many
// segments, segment-number monotonicity through compaction, archiving of
// sealed segments, and the double-reopen invariant (a dirty first open
// repairs; the second open is clean).

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"pxml/internal/fixtures"
	"pxml/internal/metrics"
	"pxml/internal/vfs"
)

func TestSegmentRotationAndReplay(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	s, _ := open(t, dir, Options{SegmentSize: 256, CompactThreshold: -1, Registry: reg})
	fig := fixtures.Figure2()
	const n = 24
	for i := 0; i < n; i++ {
		mustPut(t, s, fmt.Sprintf("inst-%02d", i), fig)
	}
	segs, err := listSegments(vfs.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("after %d puts with 256-byte segments, %d segment files, want >= 3", n, len(segs))
	}
	if got := reg.Counter("store_wal_rotations").Value(); got != int64(len(segs)-1) {
		t.Fatalf("store_wal_rotations = %d, want %d", got, len(segs)-1)
	}
	if got := reg.Gauge("store_wal_segments").Value(); got != int64(len(segs)) {
		t.Fatalf("store_wal_segments gauge = %d, want %d", got, len(segs))
	}
	pos := s.Pos()
	if pos.Seg != segs[len(segs)-1] {
		t.Fatalf("Pos().Seg = %d, want active segment %d", pos.Seg, segs[len(segs)-1])
	}
	s.Close()

	s2, rep := open(t, dir, Options{})
	defer s2.Close()
	if rep.Recovered != n || rep.dirty() {
		t.Fatalf("reopen across %d segments: %s", len(segs), rep)
	}
	if rep.Segments != len(segs) {
		t.Fatalf("report.Segments = %d, want %d", rep.Segments, len(segs))
	}
	for i := 0; i < n; i++ {
		wantInstance(t, s2, fmt.Sprintf("inst-%02d", i), fig)
	}
}

func TestCompactionNeverReusesSegmentNumbers(t *testing.T) {
	dir := t.TempDir()
	s, _ := open(t, dir, Options{SegmentSize: 256, CompactThreshold: -1})
	defer s.Close()
	fig := fixtures.Figure2()
	var lastPos Pos
	for round := 0; round < 3; round++ {
		for i := 0; i < 6; i++ {
			mustPut(t, s, fmt.Sprintf("r%d-%d", round, i), fig)
		}
		pos := s.Pos()
		if !lastPos.Less(pos) {
			t.Fatalf("round %d: Pos %s did not advance past %s", round, pos, lastPos)
		}
		lastPos = pos
		if err := s.Compact(); err != nil {
			t.Fatal(err)
		}
		if got := s.WALSize(); got != 0 {
			t.Fatalf("round %d: WALSize after compact = %d, want 0", round, got)
		}
		segs, err := listSegments(vfs.OS, dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(segs) != 1 {
			t.Fatalf("round %d: %d local segments after compact, want 1", round, len(segs))
		}
		// The active segment after compact is at or past the pre-compact
		// position (equal only when the active segment was empty, so
		// there was nothing to seal); it never falls back to a number a
		// sealed segment once held.
		if segs[0] < lastPos.Seg || (lastPos.Off > 0 && segs[0] == lastPos.Seg) {
			t.Fatalf("round %d: active segment %d reuses a sealed number (pre-compact %s)", round, segs[0], lastPos)
		}
	}
}

// TestDoubleReopenRecovery is the repair-then-clean invariant across the
// segmented layout: a directory bearing a corrupt sealed segment and a
// torn active tail recovers (dirty) on the first open, and the very next
// open finds nothing left to repair.
func TestDoubleReopenRecovery(t *testing.T) {
	dir := t.TempDir()
	fig := fixtures.Figure2()
	s, _ := open(t, dir, Options{SegmentSize: 256, CompactThreshold: -1})
	const n = 12
	for i := 0; i < n; i++ {
		mustPut(t, s, fmt.Sprintf("inst-%02d", i), fig)
	}
	s.Close()
	segs, err := listSegments(vfs.OS, dir)
	if err != nil || len(segs) < 2 {
		t.Fatalf("want >= 2 segments to damage (got %d, err=%v)", len(segs), err)
	}
	// Flip a payload byte mid-way through the first sealed segment and
	// tear the active segment's tail.
	sealed := filepath.Join(dir, segmentFile(segs[0]))
	data, err := os.ReadFile(sealed)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(sealed, data, 0o644); err != nil {
		t.Fatal(err)
	}
	torn := appendFrame(nil, appendPutRecord(nil, "torn", fig))
	appendToFile(t, activeSegmentPath(t, dir), torn[:len(torn)-3])

	s2, rep := open(t, dir, Options{})
	if !rep.dirty() || len(rep.Quarantined) == 0 || rep.TruncatedBytes == 0 {
		t.Fatalf("first reopen should repair damage: %s", rep)
	}
	if _, ok := s2.Get("torn"); ok {
		t.Fatal("torn-tail instance resurrected")
	}
	survivors := s2.Len()
	if survivors == 0 || survivors > n {
		t.Fatalf("implausible survivor count %d", survivors)
	}
	h := s2.Health()
	if h.QuarantineFiles == 0 {
		t.Fatalf("health should count quarantine files: %+v", h)
	}
	s2.Close()

	s3, rep3 := open(t, dir, Options{})
	defer s3.Close()
	if rep3.dirty() {
		t.Fatalf("second reopen still dirty: %s", rep3)
	}
	if rep3.Recovered != survivors {
		t.Fatalf("second reopen recovered %d, want %d", rep3.Recovered, survivors)
	}
}

// TestGroupCommitAcrossRotation drives concurrent batched writers with a
// segment size small enough that batches land on both sides of many
// rotations, then proves replay sees every acknowledged write.
func TestGroupCommitAcrossRotation(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	s, _ := open(t, dir, Options{
		SegmentSize:      512,
		CompactThreshold: -1,
		CommitBatch:      16,
		CommitDelay:      2 * time.Millisecond,
		Registry:         reg,
	})
	const writers, each = 4, 12
	fig := fixtures.Figure2()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				mustPut(t, s, fmt.Sprintf("w%d-%02d", w, i), fig)
			}
		}(w)
	}
	wg.Wait()
	if got := reg.Counter("store_wal_rotations").Value(); got == 0 {
		t.Fatal("no rotation under 512-byte segments — the test exercised nothing")
	}
	if hist := reg.IntHistogram("store_commit_batch_size").Snapshot(); hist.Max < 2 {
		t.Fatalf("max batch size %d — batches never formed", hist.Max)
	}
	s.Close()

	s2, rep := open(t, dir, Options{})
	defer s2.Close()
	if rep.dirty() {
		t.Fatalf("reopen after rotated group commits not clean: %s", rep)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < each; i++ {
			wantInstance(t, s2, fmt.Sprintf("w%d-%02d", w, i), fig)
		}
	}
}

func TestArchiveSealedSegments(t *testing.T) {
	dir := t.TempDir()
	arch := t.TempDir()
	reg := metrics.NewRegistry()
	s, _ := open(t, dir, Options{SegmentSize: 256, CompactThreshold: -1, ArchiveDir: arch, Registry: reg})
	fig := fixtures.Figure2()
	for i := 0; i < 16; i++ {
		mustPut(t, s, fmt.Sprintf("inst-%02d", i), fig)
	}
	pos := s.Pos()
	waitFor(t, 15*time.Second, "sealed segments to archive", func() bool {
		segs, err := listSegments(vfs.OS, arch)
		return err == nil && len(segs) >= int(pos.Seg)-1
	})
	// Compaction archives the freshly sealed active segment too, then
	// deletes every local sealed copy — the archive keeps them all.
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	local, _ := listSegments(vfs.OS, dir)
	if len(local) != 1 {
		t.Fatalf("%d local segments after compact, want 1", len(local))
	}
	archived, _ := listSegments(vfs.OS, arch)
	wantArchived := int(pos.Seg) - 1 // every segment below the active one
	if pos.Off > 0 {
		wantArchived++ // compact sealed and archived the active one too
	}
	if len(archived) < wantArchived {
		t.Fatalf("archive holds %d segments, want >= %d (all sealed)", len(archived), wantArchived)
	}
	if got := reg.Counter("store_archived_segments").Value(); got == 0 {
		t.Fatal("store_archived_segments not incremented")
	}
	s.Close()
}

func TestArchiveRetention(t *testing.T) {
	dir := t.TempDir()
	arch := t.TempDir()
	s, _ := open(t, dir, Options{SegmentSize: 256, CompactThreshold: -1, ArchiveDir: arch, ArchiveRetention: 2})
	defer s.Close()
	fig := fixtures.Figure2()
	for i := 0; i < 20; i++ {
		mustPut(t, s, fmt.Sprintf("inst-%02d", i), fig)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 15*time.Second, "archive retention to prune", func() bool {
		segs, err := listSegments(vfs.OS, arch)
		return err == nil && len(segs) <= 2 && len(segs) > 0
	})
	segs, _ := listSegments(vfs.OS, arch)
	// Retention keeps the newest segments.
	if segs[len(segs)-1] < s.Pos().Seg-1 {
		t.Fatalf("retention kept stale segments: %v (pos %s)", segs, s.Pos())
	}
}

// TestFreshStoreSkipsArchivedSegmentNumbers: a data directory rebuilt
// next to a surviving archive must start numbering past the archive's
// highest segment, or it would overwrite history.
func TestFreshStoreSkipsArchivedSegmentNumbers(t *testing.T) {
	arch := t.TempDir()
	if err := os.WriteFile(filepath.Join(arch, segmentFile(7)), appendFrame(nil, appendPutRecord(nil, "x", fixtures.Figure2())), 0o644); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	s, _ := open(t, dir, Options{ArchiveDir: arch})
	defer s.Close()
	if pos := s.Pos(); pos.Seg != 8 {
		t.Fatalf("fresh store next to archive-max 7 started at segment %d, want 8", pos.Seg)
	}
}

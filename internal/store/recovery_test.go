package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pxml/internal/codec"
	"pxml/internal/fixtures"
	"pxml/internal/vfs"
)

// activeSegmentPath returns the highest-numbered WAL segment in dir —
// the file a crashed store was appending to.
func activeSegmentPath(t *testing.T, dir string) string {
	t.Helper()
	segs, err := listSegments(vfs.OS, dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments in %s (err=%v)", dir, err)
	}
	return filepath.Join(dir, segmentFile(segs[len(segs)-1]))
}

func appendToFile(t *testing.T, path string, data []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryTruncatesTornWALTail(t *testing.T) {
	dir := t.TempDir()
	s, _ := open(t, dir, Options{})
	mustPut(t, s, "a", fixtures.Figure2())
	mustPut(t, s, "b", fixtures.Figure2VariedLeaves())
	s.Close()

	// A crash mid-append leaves a frame prefix with no later magic to
	// resync on: the tail must be dropped, not quarantined.
	torn := appendFrame(nil, appendPutRecord(nil, "c", fixtures.Figure2()))
	appendToFile(t, activeSegmentPath(t, dir), torn[:len(torn)-7])

	s2, rep := open(t, dir, Options{})
	defer s2.Close()
	if rep.Recovered != 2 {
		t.Fatalf("recovered %d instances, want 2 (%s)", rep.Recovered, rep)
	}
	if rep.TruncatedBytes != int64(len(torn)-7) {
		t.Fatalf("TruncatedBytes = %d, want %d", rep.TruncatedBytes, len(torn)-7)
	}
	if len(rep.Quarantined) != 0 {
		t.Fatalf("torn tail was quarantined: %s", rep)
	}
	if _, ok := s2.Get("c"); ok {
		t.Fatal("instance from torn (unacknowledged-durable) append reappeared")
	}
	// The repaired store must accept new writes and reopen cleanly.
	mustPut(t, s2, "c", fixtures.Figure2())
	s2.Close()
	s3, rep3 := open(t, dir, Options{})
	defer s3.Close()
	if rep3.Recovered != 3 || rep3.dirty() {
		t.Fatalf("post-repair reopen not clean: %s", rep3)
	}
}

func TestRecoveryQuarantinesCorruptSnapshotRecord(t *testing.T) {
	dir := t.TempDir()
	s, _ := open(t, dir, Options{CompactThreshold: -1})
	fig := fixtures.Figure2()
	mustPut(t, s, "a", fig)
	mustPut(t, s, "b", fig)
	mustPut(t, s, "c", fig)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Flip one payload byte of the first snapshot record ("a"): its CRC
	// fails, the scanner resyncs on record "b"'s magic, and only the
	// damaged record is lost.
	snap := filepath.Join(dir, snapshotName)
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	data[frameHeaderSize+1] ^= 0xff
	if err := os.WriteFile(snap, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, rep := open(t, dir, Options{})
	defer s2.Close()
	if rep.Recovered != 2 {
		t.Fatalf("recovered %d instances, want 2 (%s)", rep.Recovered, rep)
	}
	if len(rep.Quarantined) != 1 || rep.Quarantined[0].Source != "snapshot" {
		t.Fatalf("quarantine report = %+v", rep.Quarantined)
	}
	if _, err := os.Stat(rep.Quarantined[0].Path); err != nil {
		t.Fatalf("quarantined bytes not preserved: %v", err)
	}
	if _, ok := s2.Get("a"); ok {
		t.Fatal("corrupt record decoded anyway")
	}
	wantInstance(t, s2, "b", fig)
	wantInstance(t, s2, "c", fig)
}

// TestKillAndReopen is the acceptance scenario: a data directory bearing
// a snapshot, live WAL records, a corrupt mid-WAL region, and a torn
// tail. Reopening must recover every committed instance, quarantine the
// bad region, truncate the tail, and leave a store that serves reads and
// reopens cleanly.
func TestKillAndReopen(t *testing.T) {
	dir := t.TempDir()
	fig := fixtures.Figure2()
	varied := fixtures.Figure2VariedLeaves()

	s, _ := open(t, dir, Options{CompactThreshold: -1})
	mustPut(t, s, "a", fig)
	mustPut(t, s, "b", fig)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, "c", varied)
	if err := s.Delete("b"); err != nil {
		t.Fatal(err)
	}
	s.Close()

	wal := activeSegmentPath(t, dir)
	// A scribbled region that still contains a frame magic, followed by
	// a valid committed record, followed by a mid-append torn tail.
	appendToFile(t, wal, []byte("garbage-then-magic-PXR1-more-garbage"))
	appendToFile(t, wal, appendFrame(nil, appendPutRecord(nil, "d", varied)))
	tail := appendFrame(nil, appendPutRecord(nil, "e", fig))
	appendToFile(t, wal, tail[:len(tail)/2])

	s2, rep := open(t, dir, Options{})
	if rep.Recovered != 3 {
		t.Fatalf("recovered %d instances, want 3 (%s)", rep.Recovered, rep)
	}
	wantInstance(t, s2, "a", fig)
	wantInstance(t, s2, "c", varied)
	wantInstance(t, s2, "d", varied)
	if _, ok := s2.Get("b"); ok {
		t.Fatal("deleted instance resurrected")
	}
	if _, ok := s2.Get("e"); ok {
		t.Fatal("torn-tail instance resurrected")
	}
	if len(rep.Quarantined) == 0 {
		t.Fatalf("corrupt WAL region not quarantined: %s", rep)
	}
	if rep.TruncatedBytes == 0 {
		t.Fatalf("torn tail not truncated: %s", rep)
	}
	qdir := filepath.Join(dir, quarantineDir)
	entries, err := os.ReadDir(qdir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("quarantine dir empty (err=%v)", err)
	}
	// The damaged region must not hide the committed record behind it.
	if _, ok := s2.Get("d"); !ok {
		t.Fatal("record after corrupt region lost")
	}
	s2.Close()

	// Recovery compacts the repaired state, so the next open is clean.
	s3, rep3 := open(t, dir, Options{})
	defer s3.Close()
	if rep3.dirty() {
		t.Fatalf("second reopen still dirty: %s", rep3)
	}
	if rep3.Recovered != 3 {
		t.Fatalf("second reopen recovered %d, want 3", rep3.Recovered)
	}
}

func TestRecoveryGarbageOnlyWAL(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segmentFile(1)), []byte("not a wal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, rep := open(t, dir, Options{})
	defer s.Close()
	if rep.Recovered != 0 || rep.TruncatedBytes == 0 {
		t.Fatalf("garbage WAL: %s", rep)
	}
	mustPut(t, s, "a", fixtures.Figure2())
}

// TestLegacyWALMigration covers the pre-segmentation layout: a data
// directory whose WAL is a single wal.log must replay in full (torn tail
// truncated) and come out the other side on the segmented layout, with
// the legacy file retired.
func TestLegacyWALMigration(t *testing.T) {
	dir := t.TempDir()
	fig := fixtures.Figure2()
	varied := fixtures.Figure2VariedLeaves()
	var wal []byte
	wal = appendFrame(wal, appendPutRecord(nil, "a", fig))
	wal = appendFrame(wal, appendPutRecord(nil, "b", varied))
	wal = appendFrame(wal, appendDeleteRecord(nil, "a"))
	torn := appendFrame(nil, appendPutRecord(nil, "c", fig))
	wal = append(wal, torn[:len(torn)-5]...)
	if err := os.WriteFile(filepath.Join(dir, legacyWALName), wal, 0o644); err != nil {
		t.Fatal(err)
	}

	s, rep := open(t, dir, Options{})
	if !rep.MigratedWAL || rep.Recovered != 1 || rep.TruncatedBytes == 0 {
		t.Fatalf("legacy wal migration report: %s", rep)
	}
	wantInstance(t, s, "b", varied)
	if _, ok := s.Get("a"); ok {
		t.Fatal("deleted instance resurrected from legacy wal")
	}
	if _, err := os.Stat(filepath.Join(dir, legacyWALName)); !os.IsNotExist(err) {
		t.Fatal("legacy wal.log not retired after migration")
	}
	mustPut(t, s, "d", fig)
	s.Close()

	s2, rep2 := open(t, dir, Options{})
	defer s2.Close()
	if rep2.MigratedWAL || rep2.dirty() {
		t.Fatalf("post-migration reopen not clean: %s", rep2)
	}
	if rep2.Recovered != 2 {
		t.Fatalf("post-migration reopen recovered %d, want 2", rep2.Recovered)
	}
}

func TestLegacyMigration(t *testing.T) {
	dir := t.TempDir()
	fig := fixtures.Figure2()
	varied := fixtures.Figure2VariedLeaves()
	writeLegacy := func(name string, enc func(f *os.File) error) {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := enc(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	writeLegacy("good.pxml", func(f *os.File) error { return codec.EncodeText(f, fig) })
	writeLegacy("other.pxml", func(f *os.File) error { return codec.EncodeText(f, varied) })
	writeLegacy("broken.pxml", func(f *os.File) error {
		_, err := f.WriteString("pxml/1\nthis is not a valid instance\n")
		return err
	})

	s, rep := open(t, dir, Options{})
	if rep.MigratedLegacy != 2 || rep.Recovered != 2 {
		t.Fatalf("migration report: %s", rep)
	}
	if len(rep.Quarantined) != 1 || rep.Quarantined[0].Source != "broken.pxml" {
		t.Fatalf("corrupt legacy file not reported: %+v", rep.Quarantined)
	}
	wantInstance(t, s, "good", fig)
	wantInstance(t, s, "other", varied)
	if _, err := os.Stat(filepath.Join(dir, "broken.pxml.corrupt")); err != nil {
		t.Fatalf("corrupt legacy file not renamed: %v", err)
	}
	for _, gone := range []string{"good.pxml", "other.pxml"} {
		if _, err := os.Stat(filepath.Join(dir, gone)); !os.IsNotExist(err) {
			t.Fatalf("migrated legacy file %s still present", gone)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotName)); err != nil {
		t.Fatalf("migration did not snapshot: %v", err)
	}
	s.Close()

	s2, rep2 := open(t, dir, Options{})
	defer s2.Close()
	if rep2.MigratedLegacy != 0 || rep2.Recovered != 2 {
		t.Fatalf("post-migration reopen: %s", rep2)
	}
}

func TestScanFramesRoundTrip(t *testing.T) {
	var buf []byte
	payloads := [][]byte{[]byte("one"), []byte(""), []byte(strings.Repeat("x", 4096))}
	for _, p := range payloads {
		buf = appendFrame(buf, p)
	}
	var got [][]byte
	res, err := scanFrames(buf, func(off int64, payload []byte) error {
		got = append(got, append([]byte(nil), payload...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TornTail != 0 || len(res.Bad) != 0 || res.CleanLen != int64(len(buf)) {
		t.Fatalf("clean scan reported damage: %+v", res)
	}
	if len(got) != len(payloads) {
		t.Fatalf("scanned %d frames, want %d", len(got), len(payloads))
	}
	for i := range got {
		if string(got[i]) != string(payloads[i]) {
			t.Fatalf("frame %d payload mismatch", i)
		}
	}
}

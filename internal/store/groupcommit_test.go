package store

// Group-commit suite: concurrent writers must coalesce into shared WAL
// writes and fsyncs without weakening any durability promise — every
// acknowledged Put survives reopen, a failed batch fsync fails every
// waiter in the batch and degrades the store, and acknowledgment never
// precedes the batch's fsync.

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"pxml/internal/fixtures"
	"pxml/internal/metrics"
	"pxml/internal/vfs"
)

func TestGroupCommitFaultFsyncMidBatch(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(nil)
	reg := metrics.NewRegistry()
	s, _ := open(t, dir, Options{
		Fsync:       FsyncAlways,
		FS:          ffs,
		Registry:    reg,
		CommitBatch: 64,
		CommitDelay: 20 * time.Millisecond,
	})
	defer s.Close()
	fig := fixtures.Figure2()
	mustPut(t, s, "keep", fig)

	// Every fsync now fails; the concurrent Puts below coalesce into one
	// (or very few) batches, and the batch's fsync error must reach every
	// waiter — not just the one whose record happened to trigger it.
	ffs.FailAll(vfs.OpSync, "wal")
	const writers = 6
	errs := make([]error, writers)
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = s.Put(fmt.Sprintf("w%d", i), fig)
		}(i)
	}
	wg.Wait()

	injected := 0
	for i, err := range errs {
		if !errors.Is(err, ErrDegraded) {
			t.Fatalf("writer %d: err = %v, want ErrDegraded", i, err)
		}
		if errors.Is(err, vfs.ErrInjected) {
			injected++
		}
	}
	if injected == 0 {
		t.Fatal("no waiter saw the injected fsync cause")
	}
	if h := s.Health(); !h.Degraded {
		t.Fatalf("store should be degraded, health = %+v", h)
	}
	for i := 0; i < writers; i++ {
		if _, ok := s.Get(fmt.Sprintf("w%d", i)); ok {
			t.Fatalf("w%d installed despite failed batch fsync", i)
		}
	}
	wantInstance(t, s, "keep", fig)
}

func TestGroupCommitCoalescesConcurrentPuts(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	s, _ := open(t, dir, Options{
		Fsync:       FsyncAlways,
		Registry:    reg,
		CommitDelay: 50 * time.Millisecond,
	})
	defer s.Close()

	const writers = 16
	fig := fixtures.Figure2()
	batchesBefore := reg.Counter("store_commit_batches").Value()
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mustPut(t, s, fmt.Sprintf("w%d", i), fig)
		}(i)
	}
	wg.Wait()

	batches := reg.Counter("store_commit_batches").Value() - batchesBefore
	if batches >= writers {
		t.Fatalf("%d writers took %d batches — no coalescing", writers, batches)
	}
	hist := reg.IntHistogram("store_commit_batch_size").Snapshot()
	if hist.Max < 2 {
		t.Fatalf("max batch size = %d, want >= 2\n%+v", hist.Max, hist)
	}
	// Per-record accounting is preserved even when records share a write.
	if n := reg.Counter("store_wal_appends").Value(); n != writers {
		t.Fatalf("store_wal_appends = %d, want %d", n, writers)
	}
}

func TestGroupCommitDurableAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, _ := open(t, dir, Options{
		Fsync:       FsyncAlways,
		CommitDelay: 5 * time.Millisecond,
	})
	const writers, each = 4, 8
	fig := fixtures.Figure2()
	varied := fixtures.Figure2VariedLeaves()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				name := fmt.Sprintf("w%d-%d", w, i)
				pi := fig
				if (w+i)%2 == 1 {
					pi = varied
				}
				mustPut(t, s, name, pi)
			}
		}(w)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	re, report := open(t, dir, Options{})
	defer re.Close()
	if len(report.Quarantined) != 0 || report.TruncatedBytes != 0 {
		t.Fatalf("recovery not clean: %+v", report)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < each; i++ {
			name := fmt.Sprintf("w%d-%d", w, i)
			want := fig
			if (w+i)%2 == 1 {
				want = varied
			}
			wantInstance(t, re, name, want)
		}
	}
}

func TestCommitBatchOneDisablesBatching(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	s, _ := open(t, dir, Options{Fsync: FsyncAlways, Registry: reg, CommitBatch: 1})
	defer s.Close()
	fig := fixtures.Figure2()
	for i := 0; i < 3; i++ {
		mustPut(t, s, fmt.Sprintf("x%d", i), fig)
	}
	if n := reg.Counter("store_commit_batches").Value(); n != 3 {
		t.Fatalf("commit batches = %d, want 3 (one per Put)", n)
	}
	if hist := reg.IntHistogram("store_commit_batch_size").Snapshot(); hist.Max != 1 {
		t.Fatalf("max batch size = %d, want 1", hist.Max)
	}
}

package store

// Timeline separation between a WAL archive and stores restored away
// from it. The claims under test: a restore that consulted an archive
// renumbers its segments past the archive with a permanent gap, so the
// two histories can never be spliced by a later PITR; a store that opens
// with its active segment colliding with archived history seals it and
// jumps past the archive; the archiver never overwrites archived bytes
// with divergent ones (but does repair its own torn copies); and the
// background loop defers compaction during online backups instead of
// parking on them.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"pxml/internal/fixtures"
	"pxml/internal/vfs"
)

// archiveBytes snapshots the content of every segment in an archive
// directory, keyed by segment number.
func archiveBytes(t *testing.T, arch string) map[uint64][]byte {
	t.Helper()
	segs, err := listSegments(vfs.OS, arch)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[uint64][]byte, len(segs))
	for _, n := range segs {
		data, err := os.ReadFile(filepath.Join(arch, segmentFile(n)))
		if err != nil {
			t.Fatal(err)
		}
		out[n] = data
	}
	return out
}

// TestRestoreWithArchiveRenumbersPastIt: a PITR restore must land its
// segments past the archive's history with a one-number gap, the
// restored store must archive cleanly under the new numbers, and the
// original timeline must stay replayable from the same base backup.
func TestRestoreWithArchiveRenumbersPastIt(t *testing.T) {
	dir := t.TempDir()
	arch := t.TempDir()
	s, _ := open(t, dir, Options{SegmentSize: 256, CompactThreshold: -1, ArchiveDir: arch})
	fig := fixtures.Figure2()
	for i := 0; i < 5; i++ {
		mustPut(t, s, fmt.Sprintf("phase1-%d", i), fig)
	}
	bdir := filepath.Join(t.TempDir(), "base")
	if _, err := s.Backup(bdir); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		mustPut(t, s, fmt.Sprintf("phase2-%d", i), fig)
	}
	if err := s.Compact(); err != nil { // seals and archives everything so far
		t.Fatal(err)
	}
	s.Close()

	before := archiveBytes(t, arch)
	if len(before) == 0 {
		t.Fatal("compaction archived nothing")
	}
	var archMax uint64
	for n := range before {
		if n > archMax {
			archMax = n
		}
	}

	// Full roll-forward restore: base backup plus the whole archive.
	target := filepath.Join(t.TempDir(), "restored")
	res, err := Restore(bdir, target, RestoreOptions{ArchiveDir: arch})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instances != 10 {
		t.Fatalf("full PITR recovered %d instances, want 10", res.Instances)
	}
	segs, err := listSegments(vfs.OS, target)
	if err != nil || len(segs) == 0 {
		t.Fatalf("restored dir segments %v (err=%v)", segs, err)
	}
	if segs[0] < archMax+2 {
		t.Fatalf("restored segments %v not renumbered past archive max %d with a gap", segs, archMax)
	}
	if res.Pos.Seg < archMax+2 {
		t.Fatalf("restore pos %s still in the archived numbering (archive max %d)", res.Pos, archMax)
	}

	// The restored store is a new timeline: writing and compacting with
	// the same archive must archive the new segments under their new
	// numbers without touching a byte of the old history.
	r, _ := open(t, target, Options{SegmentSize: 256, CompactThreshold: -1, ArchiveDir: arch})
	for i := 0; i < 5; i++ {
		mustPut(t, r, fmt.Sprintf("fork-%d", i), fig)
	}
	if err := r.Compact(); err != nil {
		t.Fatal(err)
	}
	if h := r.Health(); h.ArchiveErrors != 0 {
		t.Fatalf("archiving the restored timeline reported errors: %+v", h)
	}
	r.Close()
	after := archiveBytes(t, arch)
	for n, data := range before {
		if !bytes.Equal(after[n], data) {
			t.Fatalf("archived segment %d changed after restoring and re-archiving", n)
		}
	}
	if len(after) <= len(before) {
		t.Fatal("restored timeline archived no new segments")
	}
	if _, ok := after[archMax+1]; ok {
		t.Fatalf("gap segment %d appeared in the archive; timelines can now splice", archMax+1)
	}

	// A second PITR from the same base backup replays the original
	// timeline only: the gap stops the overlay before the fork.
	again := filepath.Join(t.TempDir(), "again")
	res2, err := Restore(bdir, again, RestoreOptions{ArchiveDir: arch})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Instances != 10 {
		t.Fatalf("re-restore recovered %d instances, want the original 10", res2.Instances)
	}
	r2, _ := open(t, again, Options{})
	defer r2.Close()
	wantInstance(t, r2, "phase2-4", fig)
	if _, ok := r2.Get("fork-0"); ok {
		t.Fatal("re-restore spliced the forked timeline into the original one")
	}
}

// TestOpenSealsCollidingActivePastArchive: a store whose recovered
// active segment number is already claimed by the archive (a restore
// taken without the archive in reach) must seal it and continue past
// the archive maximum, leaving the gap.
func TestOpenSealsCollidingActivePastArchive(t *testing.T) {
	dir := t.TempDir()
	fig := fixtures.Figure2()
	s, _ := open(t, dir, Options{})
	for i := 0; i < 3; i++ {
		mustPut(t, s, fmt.Sprintf("inst-%d", i), fig)
	}
	s.Close()

	// Manufacture an archive that already owns segment numbers 1..7:
	// number 1 with the same bytes the store just wrote, the rest from a
	// pruned-away past.
	arch := t.TempDir()
	seg1, err := os.ReadFile(filepath.Join(dir, segmentFile(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(arch, segmentFile(1)), seg1, 0o644); err != nil {
		t.Fatal(err)
	}
	for n := uint64(2); n <= 7; n++ {
		if err := os.WriteFile(filepath.Join(arch, segmentFile(n)), nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	s2, _ := open(t, dir, Options{ArchiveDir: arch})
	defer s2.Close()
	for i := 0; i < 3; i++ {
		wantInstance(t, s2, fmt.Sprintf("inst-%d", i), fig)
	}
	mustPut(t, s2, "after-collision", fig)
	if pos := s2.Pos(); pos.Seg != 9 {
		t.Fatalf("appends resumed at segment %d, want 9 (archive max 7 plus gap)", pos.Seg)
	}
	segs, err := listSegments(vfs.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 || segs[0] != 1 || segs[1] != 9 {
		t.Fatalf("data dir segments %v, want [1 9]", segs)
	}
	// The sealed colliding segment archives cleanly (its bytes are
	// already there), and compaction retires it without errors.
	if err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	if h := s2.Health(); h.ArchiveErrors != 0 {
		t.Fatalf("health after compacting past a collision: %+v", h)
	}
	if _, err := os.Stat(filepath.Join(arch, segmentFile(9))); err != nil {
		t.Fatalf("sealed segment 9 not archived: %v", err)
	}
}

// unarchiveAll clears the archived flag on every sealed segment, so the
// next archive pass re-examines them against the archive's copies.
func unarchiveAll(s *Store) {
	s.mu.Lock()
	for i := range s.sealed {
		s.sealed[i].archived = false
	}
	s.mu.Unlock()
}

// replaceArchived swaps an archived segment's content through a fresh
// inode: the archiver may have hard-linked the archive copy to the live
// segment, and writing through the shared inode would mutate both.
func replaceArchived(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestArchiveNeverOverwritesDivergentHistory drives archiveOne's
// compare-before-copy cases: identical bytes are left alone, a torn
// past copy is repaired, a longer archived copy survives, and divergent
// bytes are refused with an archive error.
func TestArchiveNeverOverwritesDivergentHistory(t *testing.T) {
	dir := t.TempDir()
	arch := t.TempDir()
	s, _ := open(t, dir, Options{SegmentSize: 256, CompactThreshold: -1, ArchiveDir: arch})
	defer s.Close()
	fig := fixtures.Figure2()
	for i := 0; i < 8; i++ {
		mustPut(t, s, fmt.Sprintf("inst-%d", i), fig)
	}
	waitFor(t, 15*time.Second, "background archiver to land segment 1", func() bool {
		_, err := os.Stat(filepath.Join(arch, segmentFile(1)))
		return err == nil
	})
	archPath := filepath.Join(arch, segmentFile(1))
	orig, err := os.ReadFile(archPath)
	if err != nil {
		t.Fatal(err)
	}

	// Identical: nothing to do, nothing reported.
	unarchiveAll(s)
	s.archivePending()
	if h := s.Health(); h.ArchiveErrors != 0 {
		t.Fatalf("re-archiving identical bytes errored: %+v", h)
	}

	// Torn past copy (archived prefix of local): repaired in place.
	replaceArchived(t, archPath, orig[:len(orig)/2])
	unarchiveAll(s)
	s.archivePending()
	if got, _ := os.ReadFile(archPath); !bytes.Equal(got, orig) {
		t.Fatalf("torn archived copy not repaired: %d bytes, want %d (health %+v)", len(got), len(orig), s.Health())
	}
	if h := s.Health(); h.ArchiveErrors != 0 {
		t.Fatalf("repairing a torn copy errored: %+v", h)
	}

	// Archived copy longer, local a prefix (the archive kept a timeline
	// this store was restored away from): left untouched, no error.
	longer := append(append([]byte{}, orig...), "extra history"...)
	replaceArchived(t, archPath, longer)
	unarchiveAll(s)
	s.archivePending()
	if got, _ := os.ReadFile(archPath); !bytes.Equal(got, longer) {
		t.Fatal("archiver truncated a longer archived copy")
	}
	if h := s.Health(); h.ArchiveErrors != 0 {
		t.Fatalf("prefix-of-archived case errored: %+v", h)
	}

	// Divergent bytes: refused, file untouched, error surfaced.
	diverged := append([]byte{}, orig...)
	diverged[len(diverged)/2] ^= 0xFF
	replaceArchived(t, archPath, diverged)
	unarchiveAll(s)
	s.archivePending()
	if got, _ := os.ReadFile(archPath); !bytes.Equal(got, diverged) {
		t.Fatal("archiver overwrote divergent archived history")
	}
	if h := s.Health(); h.ArchiveErrors == 0 {
		t.Fatal("divergent archive refusal not surfaced in health")
	}
}

// TestCompactionDeferredDuringBackup: while an online backup is in
// flight the background loop must skip compaction (not park on it), and
// the deferred compaction must run once the backup drains.
func TestCompactionDeferredDuringBackup(t *testing.T) {
	dir := t.TempDir()
	s, _ := open(t, dir, Options{CompactThreshold: 1})
	defer s.Close()

	// Fake an in-progress backup the way Backup itself registers one,
	// before dirtying the WAL so the background loop cannot win a
	// compaction race first.
	s.mu.Lock()
	s.backups++
	s.mu.Unlock()
	mustPut(t, s, "dirty", fixtures.Figure2())

	// compactIfDirty must return promptly instead of blocking on
	// backupsDone — a parked background goroutine is exactly the bug:
	// no fsync ticks, no archive retries, no scrubs until the backup
	// ends.
	done := make(chan error, 1)
	go func() { done <- s.compactIfDirty() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("compactIfDirty under a backup: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("compactIfDirty parked behind an in-flight backup")
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotName)); !os.IsNotExist(err) {
		t.Fatalf("compaction ran during a backup (stat err=%v)", err)
	}

	// Backup completion: drop the count, wake waiters, and re-kick the
	// background loop — the deferred compaction must now happen.
	s.mu.Lock()
	s.backups--
	s.backupsDone.Broadcast()
	s.maybeKickLocked()
	s.mu.Unlock()
	waitFor(t, 15*time.Second, "deferred compaction after backup", func() bool {
		_, err := os.Stat(filepath.Join(dir, snapshotName))
		return err == nil
	})
}

package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// bibGraph builds the semistructured instance graph of Figure 1.
func bibGraph(t *testing.T) *Graph {
	t.Helper()
	g := New()
	edges := []Edge{
		{"R", "B1", "book"}, {"R", "B2", "book"}, {"R", "B3", "book"},
		{"B1", "T1", "title"}, {"B1", "A1", "author"}, {"B1", "A2", "author"},
		{"B2", "A1", "author"}, {"B2", "A2", "author"}, {"B2", "A3", "author"},
		{"B3", "T2", "title"}, {"B3", "A3", "author"},
		{"A1", "I1", "institution"}, {"A2", "I1", "institution"}, {"A2", "I2", "institution"},
		{"A3", "I2", "institution"},
	}
	for _, e := range edges {
		if err := g.AddEdge(e.From, e.To, e.Label); err != nil {
			t.Fatalf("AddEdge(%v): %v", e, err)
		}
	}
	return g
}

func TestAddEdgeRelabelFails(t *testing.T) {
	g := New()
	if err := g.AddEdge("a", "b", "x"); err != nil {
		t.Fatalf("first AddEdge: %v", err)
	}
	if err := g.AddEdge("a", "b", "x"); err != nil {
		t.Fatalf("idempotent AddEdge: %v", err)
	}
	if err := g.AddEdge("a", "b", "y"); err == nil {
		t.Fatal("expected error when relabeling existing edge")
	}
}

func TestChildrenParentsLCh(t *testing.T) {
	g := bibGraph(t)
	if got, want := g.Children("B1"), []string{"A1", "A2", "T1"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Children(B1) = %v, want %v", got, want)
	}
	if got, want := g.Parents("A1"), []string{"B1", "B2"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Parents(A1) = %v, want %v", got, want)
	}
	if got, want := g.LCh("B1", "author"), []string{"A1", "A2"}; !reflect.DeepEqual(got, want) {
		t.Errorf("LCh(B1,author) = %v, want %v", got, want)
	}
	if got := g.LCh("B1", "institution"); len(got) != 0 {
		t.Errorf("LCh(B1,institution) = %v, want empty", got)
	}
	if l, ok := g.Label("B1", "T1"); !ok || l != "title" {
		t.Errorf("Label(B1,T1) = %q,%v", l, ok)
	}
	if _, ok := g.Label("B1", "I1"); ok {
		t.Error("Label(B1,I1) should not exist")
	}
}

func TestLeavesRootsDegrees(t *testing.T) {
	g := bibGraph(t)
	if got, want := g.Leaves(), []string{"I1", "I2", "T1", "T2"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Leaves = %v, want %v", got, want)
	}
	if got, want := g.Roots(), []string{"R"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Roots = %v, want %v", got, want)
	}
	if g.OutDegree("R") != 3 || g.InDegree("R") != 0 {
		t.Errorf("degrees of R: out=%d in=%d", g.OutDegree("R"), g.InDegree("R"))
	}
	if !g.IsLeaf("I1") || g.IsLeaf("A1") {
		t.Error("IsLeaf misclassification")
	}
}

func TestDescendantsNonDescendants(t *testing.T) {
	g := bibGraph(t)
	if got, want := g.Descendants("B3"), []string{"A3", "I2", "T2"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Descendants(B3) = %v, want %v", got, want)
	}
	if got, want := g.NonDescendants("B3"), []string{"A1", "A2", "B1", "B2", "I1", "R", "T1"}; !reflect.DeepEqual(got, want) {
		t.Errorf("NonDescendants(B3) = %v, want %v", got, want)
	}
	// Descendants plus non-descendants plus the vertex itself cover V.
	if n := len(g.Descendants("B1")) + len(g.NonDescendants("B1")) + 1; n != g.NumNodes() {
		t.Errorf("partition size %d, want %d", n, g.NumNodes())
	}
}

func TestReachableFrom(t *testing.T) {
	g := bibGraph(t)
	g.AddNode("orphan")
	all := g.ReachableFrom("R")
	if len(all) != g.NumNodes()-1 {
		t.Errorf("ReachableFrom(R) = %d nodes, want %d", len(all), g.NumNodes()-1)
	}
	if got := g.ReachableFrom("missing"); got != nil {
		t.Errorf("ReachableFrom(missing) = %v, want nil", got)
	}
	if got, want := g.ReachableFrom("A3"), []string{"A3", "I2"}; !reflect.DeepEqual(got, want) {
		t.Errorf("ReachableFrom(A3) = %v, want %v", got, want)
	}
}

func TestTopoSortAcyclic(t *testing.T) {
	g := bibGraph(t)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatalf("TopoSort: %v", err)
	}
	pos := make(map[string]int)
	for i, id := range order {
		pos[id] = i
	}
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Errorf("edge %v violates topological order", e)
		}
	}
	if !g.IsAcyclic() {
		t.Error("IsAcyclic = false for DAG")
	}
}

func TestTopoSortCycle(t *testing.T) {
	g := New()
	_ = g.AddEdge("a", "b", "x")
	_ = g.AddEdge("b", "c", "x")
	_ = g.AddEdge("c", "a", "x")
	if _, err := g.TopoSort(); err == nil {
		t.Fatal("expected cycle error")
	}
	if g.IsAcyclic() {
		t.Error("IsAcyclic = true for cycle")
	}
}

func TestSelfLoopIsCycle(t *testing.T) {
	g := New()
	_ = g.AddEdge("a", "a", "x")
	if g.IsAcyclic() {
		t.Error("self-loop should be cyclic")
	}
}

func TestRemoveEdgeAndNode(t *testing.T) {
	g := bibGraph(t)
	g.RemoveEdge("B1", "A1")
	if g.HasEdge("B1", "A1") {
		t.Error("edge not removed")
	}
	if got, want := g.Parents("A1"), []string{"B2"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Parents(A1) after removal = %v, want %v", got, want)
	}
	n, e := g.NumNodes(), g.NumEdges()
	g.RemoveNode("A2")
	if g.HasNode("A2") {
		t.Error("node not removed")
	}
	// A2 had 1 incoming from B1, 1 from B2, and 2 outgoing.
	if g.NumNodes() != n-1 || g.NumEdges() != e-4 {
		t.Errorf("after RemoveNode: nodes=%d edges=%d, want %d,%d", g.NumNodes(), g.NumEdges(), n-1, e-4)
	}
	for _, other := range g.Nodes() {
		if g.HasEdge(other, "A2") || g.HasEdge("A2", other) {
			t.Errorf("dangling edge with removed node via %s", other)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	g := bibGraph(t)
	c := g.Clone()
	if !reflect.DeepEqual(g.Edges(), c.Edges()) || !reflect.DeepEqual(g.Nodes(), c.Nodes()) {
		t.Fatal("clone differs from original")
	}
	c.RemoveNode("B1")
	if !g.HasNode("B1") {
		t.Error("mutating clone affected original")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := bibGraph(t)
	keep := map[string]bool{"R": true, "B1": true, "A1": true, "A2": true}
	s := g.InducedSubgraph(keep)
	if got, want := s.Nodes(), []string{"A1", "A2", "B1", "R"}; !reflect.DeepEqual(got, want) {
		t.Errorf("nodes = %v, want %v", got, want)
	}
	wantEdges := []Edge{{"B1", "A1", "author"}, {"B1", "A2", "author"}, {"R", "B1", "book"}}
	if got := s.Edges(); !reflect.DeepEqual(got, wantEdges) {
		t.Errorf("edges = %v, want %v", got, wantEdges)
	}
}

func TestEachChildOrderAndLabels(t *testing.T) {
	g := bibGraph(t)
	var got []string
	g.EachChild("B1", func(c, l string) { got = append(got, c+":"+l) })
	want := []string{"A1:author", "A2:author", "T1:title"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("EachChild = %v, want %v", got, want)
	}
}

// randomDAG builds a random DAG by only adding edges from lower-numbered to
// higher-numbered vertices.
func randomDAG(r *rand.Rand, n int) *Graph {
	g := New()
	names := make([]string, n)
	for i := range names {
		names[i] = string(rune('a'+i%26)) + string(rune('0'+i/26))
		g.AddNode(names[i])
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Intn(3) == 0 {
				_ = g.AddEdge(names[i], names[j], "l")
			}
		}
	}
	return g
}

func TestQuickTopoSortRandomDAGs(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDAG(r, 2+r.Intn(12))
		order, err := g.TopoSort()
		if err != nil {
			return false
		}
		pos := make(map[string]int)
		for i, id := range order {
			pos[id] = i
		}
		for _, e := range g.Edges() {
			if pos[e.From] >= pos[e.To] {
				return false
			}
		}
		return len(order) == g.NumNodes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(20250705))}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDescendantPartition(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDAG(r, 2+r.Intn(12))
		for _, o := range g.Nodes() {
			if len(g.Descendants(o))+len(g.NonDescendants(o))+1 != g.NumNodes() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(20250705))}); err != nil {
		t.Fatal(err)
	}
}

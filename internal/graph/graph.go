// Package graph provides the edge-labeled directed graph substrate used by
// the PXML semistructured data model (Definitions 3.1 and 3.2 of the paper).
//
// A Graph is a finite set of string-identified vertices together with
// labeled directed edges. At most one edge may connect an ordered pair of
// vertices, matching the paper's formulation E ⊆ V × V with a labeling
// function ℓ : E → L. All iteration orders exposed by this package are
// deterministic (sorted) so that higher layers can produce canonical,
// reproducible output.
package graph

import (
	"fmt"
	"sort"
)

// Graph is a mutable, edge-labeled directed graph. The zero value is not
// usable; create instances with New.
type Graph struct {
	nodes map[string]struct{}
	// out maps a source vertex to its successors and the edge label.
	out map[string]map[string]string
	// in maps a target vertex to the set of its predecessors.
	in map[string]map[string]struct{}
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		nodes: make(map[string]struct{}),
		out:   make(map[string]map[string]string),
		in:    make(map[string]map[string]struct{}),
	}
}

// AddNode inserts a vertex. Adding an existing vertex is a no-op.
func (g *Graph) AddNode(id string) {
	g.nodes[id] = struct{}{}
}

// HasNode reports whether the vertex exists.
func (g *Graph) HasNode(id string) bool {
	_, ok := g.nodes[id]
	return ok
}

// AddEdge inserts the edge from → to with the given label, creating the
// endpoints if necessary. It returns an error if an edge between the pair
// already exists with a different label; re-adding an identical edge is a
// no-op. This enforces the model's single-label-per-edge rule.
func (g *Graph) AddEdge(from, to, label string) error {
	if cur, ok := g.out[from][to]; ok {
		if cur == label {
			return nil
		}
		return fmt.Errorf("graph: edge (%s,%s) already labeled %q, cannot relabel to %q", from, to, cur, label)
	}
	g.AddNode(from)
	g.AddNode(to)
	if g.out[from] == nil {
		g.out[from] = make(map[string]string)
	}
	g.out[from][to] = label
	if g.in[to] == nil {
		g.in[to] = make(map[string]struct{})
	}
	g.in[to][from] = struct{}{}
	return nil
}

// RemoveEdge deletes the edge from → to if present.
func (g *Graph) RemoveEdge(from, to string) {
	if m, ok := g.out[from]; ok {
		delete(m, to)
		if len(m) == 0 {
			delete(g.out, from)
		}
	}
	if m, ok := g.in[to]; ok {
		delete(m, from)
		if len(m) == 0 {
			delete(g.in, to)
		}
	}
}

// RemoveNode deletes a vertex and all edges incident to it.
func (g *Graph) RemoveNode(id string) {
	for to := range g.out[id] {
		delete(g.in[to], id)
		if len(g.in[to]) == 0 {
			delete(g.in, to)
		}
	}
	delete(g.out, id)
	for from := range g.in[id] {
		delete(g.out[from], id)
		if len(g.out[from]) == 0 {
			delete(g.out, from)
		}
	}
	delete(g.in, id)
	delete(g.nodes, id)
}

// HasEdge reports whether the edge from → to exists.
func (g *Graph) HasEdge(from, to string) bool {
	_, ok := g.out[from][to]
	return ok
}

// Label returns the label of the edge from → to. The boolean result is
// false when the edge does not exist.
func (g *Graph) Label(from, to string) (string, bool) {
	l, ok := g.out[from][to]
	return l, ok
}

// NumNodes returns the number of vertices.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int {
	n := 0
	for _, m := range g.out {
		n += len(m)
	}
	return n
}

// Nodes returns all vertices in sorted order.
func (g *Graph) Nodes() []string {
	ids := make([]string, 0, len(g.nodes))
	for id := range g.nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Edge is a labeled directed edge.
type Edge struct {
	From, To, Label string
}

// Edges returns all edges sorted by (From, To).
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, g.NumEdges())
	for from, m := range g.out {
		for to, l := range m {
			es = append(es, Edge{From: from, To: to, Label: l})
		}
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].From != es[j].From {
			return es[i].From < es[j].From
		}
		return es[i].To < es[j].To
	})
	return es
}

// Children returns C(o), the successors of o, in sorted order (Def 3.2).
func (g *Graph) Children(o string) []string {
	m := g.out[o]
	cs := make([]string, 0, len(m))
	for c := range m {
		cs = append(cs, c)
	}
	sort.Strings(cs)
	return cs
}

// OutDegree returns the number of children of o.
func (g *Graph) OutDegree(o string) int { return len(g.out[o]) }

// InDegree returns the number of parents of o.
func (g *Graph) InDegree(o string) int { return len(g.in[o]) }

// Parents returns parents(o), the predecessors of o, in sorted order
// (Def 3.2).
func (g *Graph) Parents(o string) []string {
	m := g.in[o]
	ps := make([]string, 0, len(m))
	for p := range m {
		ps = append(ps, p)
	}
	sort.Strings(ps)
	return ps
}

// LCh returns lch(o, l): the children of o reached via edges labeled l, in
// sorted order (Def 3.2).
func (g *Graph) LCh(o, label string) []string {
	var cs []string
	for c, l := range g.out[o] {
		if l == label {
			cs = append(cs, c)
		}
	}
	sort.Strings(cs)
	return cs
}

// IsLeaf reports whether o has no children (Def 3.2).
func (g *Graph) IsLeaf(o string) bool { return len(g.out[o]) == 0 }

// Leaves returns all vertices with no children, in sorted order.
func (g *Graph) Leaves() []string {
	var ls []string
	for id := range g.nodes {
		if len(g.out[id]) == 0 {
			ls = append(ls, id)
		}
	}
	sort.Strings(ls)
	return ls
}

// Roots returns all vertices with no parents, in sorted order.
func (g *Graph) Roots() []string {
	var rs []string
	for id := range g.nodes {
		if len(g.in[id]) == 0 {
			rs = append(rs, id)
		}
	}
	sort.Strings(rs)
	return rs
}

// Descendants returns des(o): every vertex reachable from o by a non-empty
// directed path, in sorted order (Def 3.2).
func (g *Graph) Descendants(o string) []string {
	seen := make(map[string]bool)
	var stack []string
	for c := range g.out[o] {
		stack = append(stack, c)
	}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[cur] {
			continue
		}
		seen[cur] = true
		for c := range g.out[cur] {
			if !seen[c] {
				stack = append(stack, c)
			}
		}
	}
	ds := make([]string, 0, len(seen))
	for id := range seen {
		ds = append(ds, id)
	}
	sort.Strings(ds)
	return ds
}

// NonDescendants returns non-des(o): every vertex that is neither o nor a
// descendant of o, in sorted order (Def 3.2).
func (g *Graph) NonDescendants(o string) []string {
	des := make(map[string]bool)
	for _, d := range g.Descendants(o) {
		des[d] = true
	}
	var nds []string
	for id := range g.nodes {
		if id != o && !des[id] {
			nds = append(nds, id)
		}
	}
	sort.Strings(nds)
	return nds
}

// ReachableFrom returns the set of vertices reachable from root, including
// root itself, in sorted order.
func (g *Graph) ReachableFrom(root string) []string {
	if !g.HasNode(root) {
		return nil
	}
	seen := map[string]bool{root: true}
	stack := []string{root}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for c := range g.out[cur] {
			if !seen[c] {
				seen[c] = true
				stack = append(stack, c)
			}
		}
	}
	rs := make([]string, 0, len(seen))
	for id := range seen {
		rs = append(rs, id)
	}
	sort.Strings(rs)
	return rs
}

// TopoSort returns a topological order of all vertices. It returns an error
// naming a vertex on a cycle if the graph is cyclic.
func (g *Graph) TopoSort() ([]string, error) {
	indeg := make(map[string]int, len(g.nodes))
	for id := range g.nodes {
		indeg[id] = len(g.in[id])
	}
	var queue []string
	for id, d := range indeg {
		if d == 0 {
			queue = append(queue, id)
		}
	}
	sort.Strings(queue)
	order := make([]string, 0, len(g.nodes))
	for len(queue) > 0 {
		// Pop the smallest id to keep the order deterministic.
		cur := queue[0]
		queue = queue[1:]
		order = append(order, cur)
		var freed []string
		for c := range g.out[cur] {
			indeg[c]--
			if indeg[c] == 0 {
				freed = append(freed, c)
			}
		}
		sort.Strings(freed)
		queue = mergeSorted(queue, freed)
	}
	if len(order) != len(g.nodes) {
		for id, d := range indeg {
			if d > 0 {
				return nil, fmt.Errorf("graph: cycle detected through vertex %q", id)
			}
		}
	}
	return order, nil
}

// mergeSorted merges two ascending string slices into one ascending slice.
func mergeSorted(a, b []string) []string {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make([]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// IsAcyclic reports whether the graph contains no directed cycle.
func (g *Graph) IsAcyclic() bool {
	_, err := g.TopoSort()
	return err == nil
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New()
	for id := range g.nodes {
		c.AddNode(id)
	}
	for from, m := range g.out {
		for to, l := range m {
			// Error impossible: the source graph has no duplicate pairs.
			_ = c.AddEdge(from, to, l)
		}
	}
	return c
}

// InducedSubgraph returns the subgraph on the given vertex set: it contains
// exactly the listed vertices and every edge of g whose endpoints are both
// in the set.
func (g *Graph) InducedSubgraph(keep map[string]bool) *Graph {
	s := New()
	for id := range keep {
		if g.HasNode(id) {
			s.AddNode(id)
		}
	}
	for from, m := range g.out {
		if !keep[from] {
			continue
		}
		for to, l := range m {
			if keep[to] {
				_ = s.AddEdge(from, to, l)
			}
		}
	}
	return s
}

// EachChild calls fn for every (child, label) pair of o in sorted child
// order. It avoids the allocation of Children for hot paths.
func (g *Graph) EachChild(o string, fn func(child, label string)) {
	m := g.out[o]
	if len(m) == 0 {
		return
	}
	cs := make([]string, 0, len(m))
	for c := range m {
		cs = append(cs, c)
	}
	sort.Strings(cs)
	for _, c := range cs {
		fn(c, m[c])
	}
}

package dot

import (
	"strings"
	"testing"

	"pxml/internal/fixtures"
)

func TestInstanceDOT(t *testing.T) {
	out := Instance(fixtures.Figure1())
	for _, want := range []string{
		"digraph pxml",
		`"R" [shape=doublecircle]`,
		`"B1" -> "A1" [label="author"]`,
		"title-type = VQDB",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if !strings.HasSuffix(out, "}\n") {
		t.Error("unterminated digraph")
	}
}

func TestWeakDOT(t *testing.T) {
	out := Weak(fixtures.Figure2())
	for _, want := range []string{
		"digraph pxml",
		`"R" -> "B1" [label="book (0.80)"]`, // P(B1 ∈ c(R)) = 0.8
		`"A1" -> "I1" [label="institution (0.80)"]`,
		"institution-type ≈ Stanford (1.00)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestQuoteEscapes(t *testing.T) {
	if got := quote(`a"b`); got != `"a\"b"` {
		t.Errorf("quote = %s", got)
	}
}

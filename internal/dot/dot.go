// Package dot renders PXML structures in Graphviz DOT form for
// visualization: deterministic semistructured instances (possible worlds)
// and the weak instance graphs of probabilistic instances, with edges
// annotated by label and — for probabilistic instances — by the marginal
// probability that the edge is realized given its parent exists.
package dot

import (
	"fmt"
	"strings"

	"pxml/internal/core"
	"pxml/internal/model"
)

// quote escapes a string for a DOT identifier.
func quote(s string) string {
	return `"` + strings.ReplaceAll(s, `"`, `\"`) + `"`
}

// Instance renders a deterministic semistructured instance. Typed leaves
// show their value in the node label.
func Instance(s *model.Instance) string {
	var b strings.Builder
	b.WriteString("digraph pxml {\n  rankdir=TB;\n  node [shape=ellipse];\n")
	fmt.Fprintf(&b, "  %s [shape=doublecircle];\n", quote(s.Root()))
	for _, o := range s.Objects() {
		if v, ok := s.ValueOf(o); ok {
			t, _ := s.TypeOf(o)
			fmt.Fprintf(&b, "  %s [shape=box,label=%s];\n",
				quote(o), quote(fmt.Sprintf("%s\n%s = %s", o, t.Name, v)))
		}
	}
	for _, e := range s.Edges() {
		fmt.Fprintf(&b, "  %s -> %s [label=%s];\n", quote(e.From), quote(e.To), quote(e.Label))
	}
	b.WriteString("}\n")
	return b.String()
}

// Weak renders the weak instance graph of a probabilistic instance. Every
// potential edge o → c is annotated with its label and the conditional
// marginal P(c ∈ children(o) | o exists) read from the OPF; typed leaves
// show their most likely value.
func Weak(pi *core.ProbInstance) string {
	var b strings.Builder
	b.WriteString("digraph pxml {\n  rankdir=TB;\n  node [shape=ellipse];\n")
	fmt.Fprintf(&b, "  %s [shape=doublecircle];\n", quote(pi.Root()))
	for _, o := range pi.Objects() {
		if t, ok := pi.TypeOf(o); ok {
			label := fmt.Sprintf("%s\n%s", o, t.Name)
			if v := pi.VPF(o); v != nil {
				best, bestP := "", -1.0
				for _, e := range v.Entries() {
					if e.Prob > bestP {
						best, bestP = e.Value, e.Prob
					}
				}
				label = fmt.Sprintf("%s\n%s ≈ %s (%.2f)", o, t.Name, best, bestP)
			}
			fmt.Fprintf(&b, "  %s [shape=box,label=%s];\n", quote(o), quote(label))
		}
	}
	g := pi.WeakInstance.Graph()
	for _, e := range g.Edges() {
		label := e.Label
		if opf := pi.OPF(e.From); opf != nil {
			label = fmt.Sprintf("%s (%.2f)", e.Label, opf.ProbContains(e.To))
		}
		fmt.Fprintf(&b, "  %s -> %s [label=%s];\n", quote(e.From), quote(e.To), quote(label))
	}
	b.WriteString("}\n")
	return b.String()
}

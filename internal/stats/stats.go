// Package stats provides the small statistical helpers the experiment
// harness uses to aggregate timings and check the paper's linearity claims
// (Section 7.2 observes that projection ℘-update time and selection total
// time are linear in the number of objects).
package stats

import (
	"fmt"
	"math"
)

// Mean returns the arithmetic mean; zero for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total / float64(len(xs))
}

// StdDev returns the sample standard deviation; zero for fewer than two
// points.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Min returns the minimum; +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum; -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Fit is an ordinary-least-squares line y = Slope·x + Intercept with the
// coefficient of determination R2.
type Fit struct {
	Slope, Intercept, R2 float64
}

// LinearFit fits a least-squares line through the points. It returns an
// error for fewer than two points or zero x-variance.
func LinearFit(xs, ys []float64) (Fit, error) {
	if len(xs) != len(ys) {
		return Fit{}, fmt.Errorf("stats: length mismatch %d vs %d", len(xs), len(ys))
	}
	n := float64(len(xs))
	if len(xs) < 2 {
		return Fit{}, fmt.Errorf("stats: need at least two points")
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Fit{}, fmt.Errorf("stats: zero variance in x")
	}
	slope := sxy / sxx
	fit := Fit{Slope: slope, Intercept: my - slope*mx}
	if syy == 0 {
		fit.R2 = 1
	} else {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	}
	_ = n
	return fit, nil
}

package stats

import (
	"math"
	"testing"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !approx(Mean(xs), 5) {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if got := StdDev(xs); math.Abs(got-2.13808993) > 1e-6 {
		t.Errorf("StdDev = %v", got)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Error("empty-input behavior")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty Min/Max")
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 2x + 1
	fit, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(fit.Slope, 2) || !approx(fit.Intercept, 1) || !approx(fit.R2, 1) {
		t.Errorf("fit = %+v", fit)
	}
}

func TestLinearFitNoisy(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2.1, 3.9, 6.2, 7.8, 10.1}
	fit, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope < 1.8 || fit.Slope > 2.2 {
		t.Errorf("slope = %v", fit.Slope)
	}
	if fit.R2 < 0.99 {
		t.Errorf("R2 = %v", fit.R2)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := LinearFit([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Error("zero x-variance accepted")
	}
}

func TestLinearFitConstantY(t *testing.T) {
	fit, err := LinearFit([]float64{1, 2, 3}, []float64{4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(fit.Slope, 0) || !approx(fit.R2, 1) {
		t.Errorf("fit = %+v", fit)
	}
}

// Package algebra implements the probabilistic semistructured algebra of
// Section 5 of the PXML paper with the efficient local algorithms of
// Section 6: ancestor projection (Definitions 5.2–5.3, Section 6.1),
// selection with object, value and cardinality conditions (Definitions
// 5.4–5.6), and Cartesian product (Definition 5.7). It also provides the
// extension operators the paper defers to its longer version — descendant
// and single projection, and join as product-plus-selection — and
// global-semantics ("naive") counterparts of each operation built on the
// enumeration engine, which serve as the correctness oracle and the
// baseline for the ablation benchmarks.
//
// The Section 6 fast paths assume the weak instance graph is a tree, as the
// paper does ("we give an efficient algorithm with the assumption that all
// compatible instances are tree-structured"). Non-tree instances are
// rejected with ErrNotTree; the global-semantics functions handle DAGs.
package algebra

import (
	"errors"
	"time"
)

// ErrNotTree is returned by the Section 6 fast algorithms when the weak
// instance graph is not a tree. Use the *Global variants (or the bayes
// package for point queries) on DAG-structured instances.
var ErrNotTree = errors.New("algebra: weak instance graph is not a tree; use the global-semantics variant")

// ErrZeroProbability is returned by selection when the selection condition
// has probability zero (Definition 5.6's normalization is undefined).
var ErrZeroProbability = errors.New("algebra: selection condition has zero probability")

// ErrNotRepresentable is returned when an operation's exact result is not
// expressible as a probabilistic instance (the conditional distribution
// does not factor into per-object local functions). The global-semantics
// variants still compute the exact distribution over worlds.
var ErrNotRepresentable = errors.New("algebra: result distribution does not factor into a probabilistic instance; use the global-semantics variant")

// Timings records the per-phase costs the paper's Figure 7 breaks out: the
// experiments report the total query time (copy + locate + structure
// update + ℘ update + write) and, separately, the ℘-update time, which
// dominates ancestor projection.
type Timings struct {
	// Copy is the time to deep-copy the input instance (selection returns
	// an updated copy; projection builds its result directly).
	Copy time.Duration
	// Locate is the time to evaluate the path expression (and prune to the
	// ancestor-projection plan).
	Locate time.Duration
	// Structure is the time to build the result's weak instance.
	Structure time.Duration
	// Update is the time to update the local interpretation ℘ — the
	// quantity plotted in Figure 7(b).
	Update time.Duration
}

// Total returns the sum of the recorded phases (excluding serialization,
// which the bench harness measures around the codec).
func (t Timings) Total() time.Duration {
	return t.Copy + t.Locate + t.Structure + t.Update
}

// stopwatch measures into an optional Timings sink.
type stopwatch struct {
	sink *Timings
	last time.Time
}

func newStopwatch(sink *Timings) *stopwatch {
	sw := &stopwatch{sink: sink}
	if sink != nil {
		sw.last = time.Now()
	}
	return sw
}

func (sw *stopwatch) lap(dst *time.Duration) {
	if sw.sink == nil {
		return
	}
	now := time.Now()
	*dst += now.Sub(sw.last)
	sw.last = now
}

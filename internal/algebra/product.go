package algebra

import (
	"fmt"

	"pxml/internal/core"
	"pxml/internal/model"
	"pxml/internal/prob"
	"pxml/internal/sets"
)

// CartesianProduct computes I × I′ per Definition 5.7: the two roots are
// merged into a single new root (so that path expressions applicable to
// either operand remain applicable to the product), the children of both
// old roots become children of the new root, and the new root's OPF is the
// product distribution ω″(c ∪ c′) = ω(r)(c) · ω′(r′)(c′) under the paper's
// independence assumption. All other objects keep their local functions.
//
// Identically named objects in the two operands are renamed first, per the
// paper ("objects with identical object ids in the two instances need to be
// renamed"): colliding identifiers of the second operand get a "′" suffix
// (repeated until fresh). The returned map records those renames (empty
// when the universes were already disjoint). newRoot must not collide with
// any object of either operand.
func CartesianProduct(pi1, pi2 *core.ProbInstance, newRoot model.ObjectID) (*core.ProbInstance, map[model.ObjectID]model.ObjectID, error) {
	if pi1.HasObject(newRoot) || pi2.HasObject(newRoot) {
		return nil, nil, fmt.Errorf("algebra: new root %s collides with an operand object", newRoot)
	}
	if _, ok := pi1.TypeOf(pi1.Root()); ok {
		return nil, nil, fmt.Errorf("algebra: root %s of first operand is a typed leaf; products merge roots away", pi1.Root())
	}
	if _, ok := pi2.TypeOf(pi2.Root()); ok {
		return nil, nil, fmt.Errorf("algebra: root %s of second operand is a typed leaf; products merge roots away", pi2.Root())
	}
	// Rename collisions in the second operand.
	renames := make(map[model.ObjectID]model.ObjectID)
	taken := make(map[model.ObjectID]bool, pi1.NumObjects()+pi2.NumObjects())
	for _, o := range pi1.Objects() {
		taken[o] = true
	}
	for _, o := range pi2.Objects() {
		if o == pi2.Root() {
			continue // roots merge away
		}
		if !taken[o] {
			taken[o] = true
			continue
		}
		fresh := o
		for taken[fresh] || fresh == newRoot {
			fresh += "′"
		}
		renames[o] = fresh
		taken[fresh] = true
	}
	if len(renames) > 0 {
		pi2 = pi2.Rename(renames)
	}

	// Merge type registries; conflicting domains are an error.
	out := core.NewProbInstance(newRoot)
	for _, t := range pi1.Types() {
		if err := out.RegisterType(t); err != nil {
			return nil, nil, err
		}
	}
	for _, t := range pi2.Types() {
		if err := out.RegisterType(t); err != nil {
			return nil, nil, fmt.Errorf("algebra: type clash in product: %w", err)
		}
	}

	// Copy both operands' structure and ℘, re-parenting the old roots'
	// entries onto the new root.
	r1, r2 := pi1.Root(), pi2.Root()
	for _, src := range []*core.ProbInstance{pi1, pi2} {
		oldRoot := r1
		if src == pi2 {
			oldRoot = r2
		}
		for _, o := range src.Objects() {
			dst := o
			if o == oldRoot {
				dst = newRoot
			}
			for _, l := range src.Labels(o) {
				// lch and card transfer; the two roots' label sets merge,
				// with merged cardinality bounds summing component-wise
				// (the product OPF's support counts are sums of the
				// operands' counts).
				children := src.LCh(o, l)
				iv := src.Card(o, l)
				if dst == newRoot {
					prev, had := outCard(out, newRoot, l)
					merged := out.LCh(newRoot, l).Union(children)
					out.SetLCh(newRoot, l, merged...)
					if had {
						out.SetCard(newRoot, l, prev.Min+iv.Min, prev.Max+iv.Max)
					} else {
						out.SetCard(newRoot, l, iv.Min, iv.Max)
					}
				} else {
					out.SetLCh(dst, l, children...)
					out.SetCard(dst, l, iv.Min, iv.Max)
				}
			}
			if t, ok := src.TypeOf(o); ok && dst != newRoot {
				if err := out.SetLeafType(dst, t.Name); err != nil {
					return nil, nil, err
				}
				if v := src.VPF(o); v != nil {
					out.SetVPF(dst, v.Clone())
				}
			}
			if o != oldRoot {
				if w := src.OPF(o); w != nil {
					out.SetOPF(dst, w.Clone())
				}
			}
		}
	}

	// Root OPF: the product distribution. A root with no OPF (a bare-root
	// operand) behaves as the point distribution on ∅.
	w1 := rootOPFOrEmpty(pi1)
	w2 := rootOPFOrEmpty(pi2)
	rootW := w1.Product(w2)
	if out.IsLeaf(newRoot) {
		// Both operands were bare roots: the product is a bare root too.
		return out, renames, nil
	}
	out.SetOPF(newRoot, rootW)
	return out, renames, nil
}

// outCard reports whether a card entry was explicitly set on out for
// (o, l) during the merge. The WeakInstance default (0..|lch|) cannot be
// distinguished from an explicit entry via Card alone, so the product
// tracks the first write by checking whether o already has l-children.
func outCard(out *core.ProbInstance, o model.ObjectID, l model.Label) (sets.Interval, bool) {
	if out.LCh(o, l).Len() == 0 {
		return sets.Interval{}, false
	}
	return out.Card(o, l), true
}

func rootOPFOrEmpty(pi *core.ProbInstance) *prob.OPF {
	if w := pi.OPF(pi.Root()); w != nil {
		return w
	}
	w := prob.NewOPF()
	w.Put(sets.NewSet(), 1)
	return w
}

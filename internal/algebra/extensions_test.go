package algebra

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pxml/internal/enumerate"
	"pxml/internal/fixtures"
	"pxml/internal/model"
	"pxml/internal/pathexpr"
)

func TestSingleProjectTreeBib(t *testing.T) {
	pi := treeBib(t)
	for _, path := range []string{"R.book.author", "R.book", "R.book.title", "R.book.nothing"} {
		p := pathexpr.MustParse(path)
		fast, err := SingleProject(pi, p)
		if err != nil {
			t.Fatalf("SingleProject(%s): %v", path, err)
		}
		if err := fast.Validate(); err != nil {
			t.Fatalf("result invalid (%s): %v", path, err)
		}
		induced, err := enumerate.Enumerate(fast, 0)
		if err != nil {
			t.Fatal(err)
		}
		naive, err := SingleProjectGlobal(pi, p, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !induced.Equal(naive, 1e-9) {
			t.Fatalf("single projection on %s diverges\nfast:\n%v\nnaive:\n%v",
				path, dump(induced), dump(naive))
		}
	}
}

func TestSingleProjectStructure(t *testing.T) {
	pi := treeBib(t)
	out, err := SingleProject(pi, pathexpr.MustParse("R.book.author"))
	if err != nil {
		t.Fatal(err)
	}
	// Books are gone; authors hang directly under the root.
	if out.HasObject("B1") || out.HasObject("B2") {
		t.Errorf("books survived single projection: %v", out.Objects())
	}
	if got := out.LCh("R", "author"); got.Len() != 3 {
		t.Errorf("root author children = %v", got)
	}
	// The root OPF captures the correlations: A1 and A2 live under the
	// same book, so their joint existence is correlated with B1's.
	w := out.OPF("R")
	if w == nil {
		t.Fatal("no root OPF")
	}
	if w.Prob(nil) <= 0 {
		t.Error("no-match mass missing")
	}
}

func TestDescendantProjectTreeBib(t *testing.T) {
	pi := treeBib(t)
	for _, path := range []string{"R.book.author", "R.book", "R.book.none"} {
		p := pathexpr.MustParse(path)
		fast, err := DescendantProject(pi, p)
		if err != nil {
			t.Fatalf("DescendantProject(%s): %v", path, err)
		}
		if err := fast.Validate(); err != nil {
			t.Fatalf("result invalid (%s): %v", path, err)
		}
		induced, err := enumerate.Enumerate(fast, 0)
		if err != nil {
			t.Fatal(err)
		}
		naive, err := DescendantProjectGlobal(pi, p, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !induced.Equal(naive, 1e-9) {
			t.Fatalf("descendant projection on %s diverges\nfast:\n%v\nnaive:\n%v",
				path, dump(induced), dump(naive))
		}
	}
}

func TestDescendantProjectKeepsSubtrees(t *testing.T) {
	pi := treeBib(t)
	out, err := DescendantProject(pi, pathexpr.MustParse("R.book.author"))
	if err != nil {
		t.Fatal(err)
	}
	// Institutions (below authors) survive; books and titles do not.
	if !out.HasObject("I1") || !out.HasObject("I3") {
		t.Errorf("institutions lost: %v", out.Objects())
	}
	if out.HasObject("B1") || out.HasObject("T1") {
		t.Errorf("ancestors/titles survived: %v", out.Objects())
	}
	// A1 keeps its original OPF over institutions.
	if got := out.OPF("A1").Prob(nil); !approx(got, 0.25) {
		t.Errorf("℘(A1)(∅) = %v, want 0.25", got)
	}
}

func TestMatchedProjectionWildcardTail(t *testing.T) {
	pi := treeBib(t)
	if _, err := SingleProject(pi, pathexpr.MustParse("R.book.*")); err == nil {
		t.Error("wildcard tail accepted by SingleProject")
	}
	if _, err := DescendantProjectGlobal(pi, pathexpr.MustParse("R.book.*"), 0); err == nil {
		t.Error("wildcard tail accepted by DescendantProjectGlobal")
	}
}

func TestMatchedProjectionRejectsDAG(t *testing.T) {
	if _, err := SingleProject(fixtures.Figure2(), pathexpr.MustParse("R.book")); err != ErrNotTree {
		t.Fatalf("err = %v, want ErrNotTree", err)
	}
}

// TestQuickSingleProjectMatchesOracle: random single projections agree
// with the enumeration oracle.
func TestQuickSingleProjectMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pi := fixtures.RandomTree(r)
		if pi.NumObjects() > 12 {
			return true
		}
		p := randomPath(r, pi, 1+r.Intn(3))
		if p.Len() > 0 && p.Labels[p.Len()-1] == pathexpr.Wildcard {
			p.Labels[p.Len()-1] = "a"
		}
		fast, err := SingleProject(pi, p)
		if err != nil {
			return false
		}
		induced, err := enumerate.Enumerate(fast, 0)
		if err != nil {
			return false
		}
		naive, err := SingleProjectGlobal(pi, p, 0)
		if err != nil {
			return false
		}
		return induced.Equal(naive, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(20250705))}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDescendantProjectMatchesOracle: random descendant projections
// agree with the enumeration oracle.
func TestQuickDescendantProjectMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pi := fixtures.RandomTree(r)
		if pi.NumObjects() > 12 {
			return true
		}
		p := randomPath(r, pi, 1+r.Intn(2))
		if p.Len() > 0 && p.Labels[p.Len()-1] == pathexpr.Wildcard {
			p.Labels[p.Len()-1] = "b"
		}
		fast, err := DescendantProject(pi, p)
		if err != nil {
			return false
		}
		induced, err := enumerate.Enumerate(fast, 0)
		if err != nil {
			return false
		}
		naive, err := DescendantProjectGlobal(pi, p, 0)
		if err != nil {
			return false
		}
		return induced.Equal(naive, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(20250705))}); err != nil {
		t.Fatal(err)
	}
}

func TestJoinProductThenSelect(t *testing.T) {
	pi1 := smallInstance(t, "r1", "x")
	pi2 := smallInstance(t, "r2", "y")
	res, err := Join(pi1, pi2, "root", ObjectCondition{pathexpr.MustParse("root.k"), "ya"})
	if err != nil {
		t.Fatal(err)
	}
	// P(ya exists) = 0.9 in operand 2, independent of operand 1.
	if !approx(res.Prob, 0.9) {
		t.Errorf("join prob = %v, want 0.9", res.Prob)
	}
	if err := res.Instance.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := res.Instance.OPF("root").ProbContains("ya"); !approx(got, 1) {
		t.Errorf("P(ya | join) = %v, want 1", got)
	}
	// Join with an impossible condition.
	if _, err := Join(pi1, pi2, "root2", ObjectCondition{pathexpr.MustParse("root2.k"), "nope"}); err == nil {
		t.Error("impossible join accepted")
	}
}

func TestMixture(t *testing.T) {
	a := enumerate.NewGlobalInterpretation()
	b := enumerate.NewGlobalInterpretation()
	w1 := model.NewInstance("r")
	w2 := model.NewInstance("r")
	_ = w2.AddEdge("r", "x", "l")
	a.Add(w1, 1)
	b.Add(w2, 1)
	mix, err := Mixture(a, b, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(mix.Prob(w1), 0.25) || !approx(mix.Prob(w2), 0.75) {
		t.Errorf("mixture = %v / %v", mix.Prob(w1), mix.Prob(w2))
	}
	if !approx(mix.TotalMass(), 1) {
		t.Errorf("mass = %v", mix.TotalMass())
	}
	if _, err := Mixture(a, b, 1.5); err == nil {
		t.Error("invalid weight accepted")
	}
}

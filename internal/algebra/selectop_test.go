package algebra

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"pxml/internal/core"
	"pxml/internal/enumerate"
	"pxml/internal/fixtures"
	"pxml/internal/model"
	"pxml/internal/pathexpr"
	"pxml/internal/prob"
	"pxml/internal/sets"
)

// checkSelectionAgainstOracle asserts the efficient selection's induced
// distribution and condition probability equal the Definition 5.6 global
// semantics.
func checkSelectionAgainstOracle(t testing.TB, pi *core.ProbInstance, cond Condition) {
	t.Helper()
	fast, pFast, err := Select(pi, cond)
	naive, pNaive, nErr := SelectGlobal(pi, cond, 0)
	if err != nil {
		if nErr != nil || pNaive == 0 {
			return // both agree the condition is unsatisfiable
		}
		t.Fatalf("Select(%s): %v (oracle prob %v)", cond, err, pNaive)
	}
	if nErr != nil {
		t.Fatalf("oracle failed where fast path succeeded: %v", nErr)
	}
	if !approx(pFast, pNaive) {
		t.Fatalf("P(%s) = %v fast vs %v naive", cond, pFast, pNaive)
	}
	if err := fast.Validate(); err != nil {
		t.Fatalf("selection result invalid: %v", err)
	}
	induced, err := enumerate.Enumerate(fast, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !induced.Equal(naive, 1e-9) {
		t.Fatalf("selection on %s diverges from oracle\nfast:\n%v\nnaive:\n%v",
			cond, dump(induced), dump(naive))
	}
}

func TestSelectObjectTreeBib(t *testing.T) {
	pi := treeBib(t)
	for _, c := range []ObjectCondition{
		{pathexpr.MustParse("R.book"), "B1"},
		{pathexpr.MustParse("R.book.author"), "A2"},
		{pathexpr.MustParse("R.book.author.institution"), "I3"},
	} {
		checkSelectionAgainstOracle(t, pi, c)
	}
}

// TestSelectExample52Shape mirrors Example 5.2: selecting R.book = B1
// renormalizes by P(B1 exists) and leaves the structure unchanged.
func TestSelectExample52Shape(t *testing.T) {
	pi := treeBib(t)
	out, p, err := Select(pi, ObjectCondition{pathexpr.MustParse("R.book"), "B1"})
	if err != nil {
		t.Fatal(err)
	}
	// P(B1) = 0.3 + 0.5.
	if !approx(p, 0.8) {
		t.Errorf("P(R.book = B1) = %v, want 0.8", p)
	}
	// Structure unchanged, root OPF conditioned on sets containing B1.
	if out.NumObjects() != pi.NumObjects() {
		t.Error("selection changed the structure")
	}
	w := out.OPF("R")
	if got := w.Prob(sets.NewSet("B2")); got != 0 {
		t.Errorf("℘'(R)({B2}) = %v, want 0", got)
	}
	if got := w.Prob(sets.NewSet("B1")); !approx(got, 0.3/0.8) {
		t.Errorf("℘'(R)({B1}) = %v, want 0.375", got)
	}
	// Only the (single) ancestor on the chain was touched.
	if !approx(out.OPF("B1").Prob(sets.NewSet("A1")), 0.2) {
		t.Error("off-chain OPF was modified")
	}
}

func TestSelectObjectZeroProbability(t *testing.T) {
	pi := treeBib(t)
	// I3 is not reachable via the title path.
	_, _, err := Select(pi, ObjectCondition{pathexpr.MustParse("R.book.title"), "I3"})
	if !errors.Is(err, ErrZeroProbability) {
		t.Fatalf("err = %v, want ErrZeroProbability", err)
	}
	// A structurally present edge with zero probability.
	pi2 := core.NewProbInstance("r")
	pi2.SetLCh("r", "a", "x")
	w := sets.NewSet("x")
	opf := pi2.OPF("r")
	_ = opf
	wOPF := newOPF(t, entry{nil, 1}, entry{w, 0})
	pi2.SetOPF("r", wOPF)
	_, _, err = Select(pi2, ObjectCondition{pathexpr.MustParse("r.a"), "x"})
	if !errors.Is(err, ErrZeroProbability) {
		t.Fatalf("err = %v, want ErrZeroProbability", err)
	}
}

type entry struct {
	s sets.Set
	p float64
}

func newOPF(t testing.TB, es ...entry) *prob.OPF {
	t.Helper()
	w := prob.NewOPF()
	for _, e := range es {
		w.Put(e.s, e.p)
	}
	return w
}

func TestSelectValueSingleLeaf(t *testing.T) {
	pi := treeBib(t)
	cond := ValueCondition{pathexpr.MustParse("R.book.title"), "Lore"}
	checkSelectionAgainstOracle(t, pi, cond)
	out, p, err := Select(pi, cond)
	if err != nil {
		t.Fatal(err)
	}
	// P = P(B1) · P(T1 ∈ c(B1)) · VPF(Lore) = 0.8 · (0.3+0.25)/... careful:
	// conditioned chain: P(B1 at root)=0.8, P(T1 at B1)=0.55, VPF=0.4.
	if !approx(p, 0.8*0.55*0.4) {
		t.Errorf("P(val) = %v, want %v", p, 0.8*0.55*0.4)
	}
	if got := out.VPF("T1").Prob("Lore"); !approx(got, 1) {
		t.Errorf("conditioned VPF = %v", got)
	}
}

func TestSelectValueMultiLeafNotRepresentable(t *testing.T) {
	// Two leaves under the same path with overlapping domains.
	pi := core.NewProbInstance("r")
	if err := pi.RegisterType(model.NewType("t", "x", "y")); err != nil {
		t.Fatal(err)
	}
	pi.SetLCh("r", "a", "u", "v")
	pi.SetOPF("r", newOPF(t, entry{sets.NewSet("u", "v"), 1}))
	for _, leaf := range []string{"u", "v"} {
		if err := pi.SetLeafType(leaf, "t"); err != nil {
			t.Fatal(err)
		}
		v := prob.NewVPF()
		v.Put("x", 0.5)
		v.Put("y", 0.5)
		pi.SetVPF(leaf, v)
	}
	_, _, err := Select(pi, ValueCondition{pathexpr.MustParse("r.a"), "x"})
	if !errors.Is(err, ErrNotRepresentable) {
		t.Fatalf("err = %v, want ErrNotRepresentable", err)
	}
	// The global semantics still answers exactly.
	naive, p, err := SelectGlobal(pi, ValueCondition{pathexpr.MustParse("r.a"), "x"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(p, 0.75) { // 1 − (0.5)²
		t.Errorf("P = %v, want 0.75", p)
	}
	if !approx(naive.TotalMass(), 1) {
		t.Errorf("naive mass = %v", naive.TotalMass())
	}
}

func TestSelectValueImpossible(t *testing.T) {
	pi := treeBib(t)
	_, _, err := Select(pi, ValueCondition{pathexpr.MustParse("R.book.title"), "Nope"})
	if !errors.Is(err, ErrZeroProbability) {
		t.Fatalf("err = %v, want ErrZeroProbability", err)
	}
}

func TestSelectCardCondition(t *testing.T) {
	pi := treeBib(t)
	// B1 has exactly 2 authors.
	cond := CardCondition{pathexpr.MustParse("R.book"), "B1", "author", sets.Interval{Min: 2, Max: 2}}
	checkSelectionAgainstOracle(t, pi, cond)
	out, p, err := Select(pi, cond)
	if err != nil {
		t.Fatal(err)
	}
	// P = P(B1) · P(|authors| = 2 | B1) = 0.8 · (0.15 + 0.25).
	if !approx(p, 0.8*0.4) {
		t.Errorf("P = %v, want 0.32", p)
	}
	if got := out.OPF("B1").Prob(sets.NewSet("A1")); got != 0 {
		t.Errorf("one-author set kept with prob %v", got)
	}
	// Impossible cardinality.
	_, _, err = Select(pi, CardCondition{pathexpr.MustParse("R.book"), "B1", "author", sets.Interval{Min: 3, Max: 9}})
	if !errors.Is(err, ErrZeroProbability) {
		t.Fatalf("err = %v, want ErrZeroProbability", err)
	}
	// Cardinality condition on a leaf object: satisfied only by zero.
	leafCond := CardCondition{pathexpr.MustParse("R.book.author.institution"), "I3", "anything", sets.Interval{Min: 0, Max: 0}}
	checkSelectionAgainstOracle(t, pi, leafCond)
}

func TestSelectRejectsDAG(t *testing.T) {
	_, _, err := Select(fixtures.Figure2(), ObjectCondition{pathexpr.MustParse("R.book"), "B1"})
	if err != ErrNotTree {
		t.Fatalf("err = %v, want ErrNotTree", err)
	}
	// SelectGlobal handles the DAG.
	naive, p, err := SelectGlobal(fixtures.Figure2(), ObjectCondition{pathexpr.MustParse("R.book"), "B1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(p, 0.8) { // {B1,B2} + {B1,B3} + {B1,B2,B3}
		t.Errorf("P(B1) = %v, want 0.8", p)
	}
	if !approx(naive.TotalMass(), 1) {
		t.Errorf("mass = %v", naive.TotalMass())
	}
}

// TestQuickSelectObjectMatchesOracle: random object selections on random
// trees agree with the global semantics.
func TestQuickSelectObjectMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pi := fixtures.RandomTree(r)
		if pi.NumObjects() > 12 {
			return true // keep the enumeration oracle tractable
		}
		objs := pi.Objects()
		o := objs[r.Intn(len(objs))]
		p := pathToObject(pi, o)
		cond := ObjectCondition{p, o}
		fast, pFast, err := Select(pi, cond)
		naive, pNaive, nErr := SelectGlobal(pi, cond, 0)
		if err != nil {
			return nErr != nil || pNaive == 0
		}
		if nErr != nil || !approx(pFast, pNaive) {
			return false
		}
		induced, err := enumerate.Enumerate(fast, 0)
		if err != nil {
			return false
		}
		return induced.Equal(naive, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(20250705))}); err != nil {
		t.Fatal(err)
	}
}

// pathToObject reconstructs the label path from the root to o in a tree.
func pathToObject(pi *core.ProbInstance, o model.ObjectID) pathexpr.Path {
	g := pi.WeakInstance.Graph()
	var labels []model.Label
	cur := o
	for cur != pi.Root() {
		ps := g.Parents(cur)
		if len(ps) == 0 {
			break
		}
		l, _ := g.Label(ps[0], cur)
		labels = append([]model.Label{l}, labels...)
		cur = ps[0]
	}
	return pathexpr.Path{Root: pi.Root(), Labels: labels}
}

func TestSelectTimings(t *testing.T) {
	pi := treeBib(t)
	var tm Timings
	_, _, err := SelectTimed(pi, ObjectCondition{pathexpr.MustParse("R.book.author"), "A1"}, &tm)
	if err != nil {
		t.Fatal(err)
	}
	if tm.Copy <= 0 {
		t.Error("selection must record copy time")
	}
}

func TestConditionStrings(t *testing.T) {
	oc := ObjectCondition{pathexpr.MustParse("R.book"), "B1"}
	if oc.String() != "R.book = B1" {
		t.Errorf("ObjectCondition.String = %q", oc.String())
	}
	vc := ValueCondition{pathexpr.MustParse("R.book.title"), "Lore"}
	if vc.String() != "val(R.book.title) = Lore" {
		t.Errorf("ValueCondition.String = %q", vc.String())
	}
	cc := CardCondition{pathexpr.MustParse("R.book"), "B1", "author", sets.Interval{Min: 1, Max: 2}}
	if cc.String() == "" {
		t.Error("CardCondition.String empty")
	}
}

func TestSelectUnsupportedCondition(t *testing.T) {
	pi := treeBib(t)
	_, _, err := SelectTimed(pi, fakeCondition{}, nil)
	if err == nil {
		t.Fatal("unsupported condition accepted")
	}
}

type fakeCondition struct{}

func (fakeCondition) Satisfies(*model.Instance) bool { return true }
func (fakeCondition) String() string                 { return "fake" }

package algebra

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pxml/internal/core"
	"pxml/internal/enumerate"
	"pxml/internal/fixtures"
	"pxml/internal/model"
	"pxml/internal/pathexpr"
	"pxml/internal/prob"
	"pxml/internal/sets"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// treeBib builds a tree-structured bibliographic probabilistic instance
// (Figure 2 without the shared children, so the fast algorithms apply).
func treeBib(t testing.TB) *core.ProbInstance {
	pi := core.NewProbInstance("R")
	if err := pi.RegisterType(model.NewType("title-type", "VQDB", "Lore")); err != nil {
		t.Fatal(err)
	}
	pi.SetLCh("R", "book", "B1", "B2")
	pi.SetCard("R", "book", 1, 2)
	w := prob.NewOPF()
	w.Put(sets.NewSet("B1"), 0.3)
	w.Put(sets.NewSet("B2"), 0.2)
	w.Put(sets.NewSet("B1", "B2"), 0.5)
	pi.SetOPF("R", w)

	pi.SetLCh("B1", "author", "A1", "A2")
	pi.SetLCh("B1", "title", "T1")
	w = prob.NewOPF()
	w.Put(sets.NewSet(), 0.1)
	w.Put(sets.NewSet("A1"), 0.2)
	w.Put(sets.NewSet("A2", "T1"), 0.3)
	w.Put(sets.NewSet("A1", "A2"), 0.15)
	w.Put(sets.NewSet("A1", "A2", "T1"), 0.25)
	pi.SetOPF("B1", w)

	pi.SetLCh("B2", "author", "A3")
	w = prob.NewOPF()
	w.Put(sets.NewSet(), 0.4)
	w.Put(sets.NewSet("A3"), 0.6)
	pi.SetOPF("B2", w)

	pi.SetLCh("A1", "institution", "I1")
	w = prob.NewOPF()
	w.Put(sets.NewSet(), 0.25)
	w.Put(sets.NewSet("I1"), 0.75)
	pi.SetOPF("A1", w)

	pi.SetLCh("A2", "institution", "I2")
	w = prob.NewOPF()
	w.Put(sets.NewSet("I2"), 1)
	pi.SetOPF("A2", w)

	pi.SetLCh("A3", "institution", "I3")
	w = prob.NewOPF()
	w.Put(sets.NewSet(), 0.5)
	w.Put(sets.NewSet("I3"), 0.5)
	pi.SetOPF("A3", w)

	if err := pi.SetLeafType("T1", "title-type"); err != nil {
		t.Fatal(err)
	}
	v := prob.NewVPF()
	v.Put("VQDB", 0.6)
	v.Put("Lore", 0.4)
	pi.SetVPF("T1", v)

	if err := pi.Validate(); err != nil {
		t.Fatalf("treeBib invalid: %v", err)
	}
	if !pi.IsTree() {
		t.Fatal("treeBib must be a tree")
	}
	return pi
}

// checkProjectionAgainstOracle asserts the efficient ancestor projection's
// induced distribution equals the global-semantics result.
func checkProjectionAgainstOracle(t testing.TB, pi *core.ProbInstance, path string) {
	t.Helper()
	p := pathexpr.MustParse(path)
	fast, err := AncestorProject(pi, p)
	if err != nil {
		t.Fatalf("AncestorProject(%s): %v", path, err)
	}
	if err := fast.Validate(); err != nil {
		t.Fatalf("projection result invalid (%s): %v", path, err)
	}
	induced, err := enumerate.Enumerate(fast, 0)
	if err != nil {
		t.Fatalf("enumerating result: %v", err)
	}
	naive, err := AncestorProjectGlobal(pi, p, 0)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	if !induced.Equal(naive, 1e-9) {
		t.Fatalf("projection on %s diverges from oracle\nfast:\n%v\nnaive:\n%v",
			path, dump(induced), dump(naive))
	}
}

func dump(gi *enumerate.GlobalInterpretation) string {
	out := ""
	for _, w := range gi.Worlds() {
		out += fmt.Sprintf("%s -> %.9f\n", w.S, w.P)
	}
	return out
}

func TestAncestorProjectTreeBib(t *testing.T) {
	pi := treeBib(t)
	for _, path := range []string{
		"R.book.author",
		"R.book.author.institution",
		"R.book.title",
		"R.book",
		"R.book.journal", // no match
		"R.*.author",     // wildcard extension
	} {
		checkProjectionAgainstOracle(t, pi, path)
	}
}

func TestAncestorProjectStructure(t *testing.T) {
	pi := treeBib(t)
	out, err := AncestorProject(pi, pathexpr.MustParse("R.book.author"))
	if err != nil {
		t.Fatal(err)
	}
	// Titles and institutions are gone; authors are untyped leaves.
	for _, gone := range []string{"T1", "I1", "I2", "I3"} {
		if out.HasObject(gone) {
			t.Errorf("object %s should be projected away", gone)
		}
	}
	for _, leaf := range []string{"A1", "A2", "A3"} {
		if !out.IsLeaf(leaf) {
			t.Errorf("%s should be a leaf", leaf)
		}
		if out.OPF(leaf) != nil || out.VPF(leaf) != nil {
			t.Errorf("%s should carry no local function", leaf)
		}
	}
	// B1's OPF marginalizes T1 away and drops ∅ (it must have an author).
	w := out.OPF("B1")
	if w == nil {
		t.Fatal("B1 lost its OPF")
	}
	if got := w.Prob(sets.NewSet()); got != 0 {
		t.Errorf("℘'(B1)(∅) = %v, want 0", got)
	}
	// Root keeps its ∅ mass: worlds where neither book has an author.
	rw := out.OPF("R")
	if rw.Prob(sets.NewSet()) <= 0 {
		t.Error("root should keep a no-match mass")
	}
	// Cardinality updated: author card of B1 is now [1,2].
	if got := out.Card("B1", "author"); got.Min != 1 || got.Max != 2 {
		t.Errorf("card'(B1,author) = %v", got)
	}
}

// TestAncestorProjectMatchedLeafKeepsVPF: projecting onto a path that ends
// at typed leaves keeps their VPFs.
func TestAncestorProjectMatchedLeafKeepsVPF(t *testing.T) {
	pi := treeBib(t)
	out, err := AncestorProject(pi, pathexpr.MustParse("R.book.title"))
	if err != nil {
		t.Fatal(err)
	}
	v := out.VPF("T1")
	if v == nil || !approx(v.Prob("VQDB"), 0.6) {
		t.Errorf("VPF(T1) = %v", v)
	}
	checkProjectionAgainstOracle(t, pi, "R.book.title")
}

func TestAncestorProjectNoMatchIsBareRoot(t *testing.T) {
	pi := treeBib(t)
	out, err := AncestorProject(pi, pathexpr.MustParse("R.nothing.here"))
	if err != nil {
		t.Fatal(err)
	}
	if out.NumObjects() != 1 || !out.IsLeaf("R") {
		t.Errorf("no-match result = %v", out.Objects())
	}
	// Bare path expression (just the root).
	out, err = AncestorProject(pi, pathexpr.MustParse("R"))
	if err != nil {
		t.Fatal(err)
	}
	if out.NumObjects() != 1 {
		t.Errorf("bare-root projection = %v", out.Objects())
	}
	// Wrong root.
	out, err = AncestorProject(pi, pathexpr.MustParse("Z.book"))
	if err != nil {
		t.Fatal(err)
	}
	if out.NumObjects() != 1 {
		t.Errorf("wrong-root projection = %v", out.Objects())
	}
}

func TestAncestorProjectRejectsDAG(t *testing.T) {
	if _, err := AncestorProject(fixtures.Figure2(), pathexpr.MustParse("R.book.author")); err != ErrNotTree {
		t.Fatalf("err = %v, want ErrNotTree", err)
	}
}

// TestAncestorProjectZeroProbBranch: a child with zero marginal probability
// is stripped from the result even though it is structurally on a match
// path.
func TestAncestorProjectZeroProbBranch(t *testing.T) {
	pi := core.NewProbInstance("r")
	pi.SetLCh("r", "a", "x", "y")
	w := prob.NewOPF()
	w.Put(sets.NewSet("x"), 1) // y never occurs
	w.Put(sets.NewSet("y"), 0)
	pi.SetOPF("r", w)
	pi.SetLCh("x", "b", "u")
	wx := prob.NewOPF()
	wx.Put(sets.NewSet(), 0.5)
	wx.Put(sets.NewSet("u"), 0.5)
	pi.SetOPF("x", wx)
	pi.SetLCh("y", "b", "v")
	wy := prob.NewOPF()
	wy.Put(sets.NewSet("v"), 1)
	pi.SetOPF("y", wy)

	out, err := AncestorProject(pi, pathexpr.MustParse("r.a.b"))
	if err != nil {
		t.Fatal(err)
	}
	if out.HasObject("y") || out.HasObject("v") {
		t.Errorf("zero-probability branch survived: %v", out.Objects())
	}
	checkProjectionAgainstOracle(t, pi, "r.a.b")
}

// TestAncestorProjectImpossibleMatch: the match exists structurally but has
// probability zero everywhere; the result collapses to the bare root.
func TestAncestorProjectImpossibleMatch(t *testing.T) {
	pi := core.NewProbInstance("r")
	pi.SetLCh("r", "a", "x")
	w := prob.NewOPF()
	w.Put(sets.NewSet(), 1)
	w.Put(sets.NewSet("x"), 0)
	pi.SetOPF("r", w)
	out, err := AncestorProject(pi, pathexpr.MustParse("r.a"))
	if err != nil {
		t.Fatal(err)
	}
	if out.NumObjects() != 1 {
		t.Errorf("impossible match result = %v", out.Objects())
	}
}

// TestQuickAncestorProjectMatchesOracle is the central property test: on
// random tree instances and random label paths, the Section 6.1 algorithm
// agrees exactly with the Definition 5.3 global semantics.
func TestQuickAncestorProjectMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pi := fixtures.RandomTree(r)
		if pi.NumObjects() > 12 {
			return true // keep the enumeration oracle tractable
		}
		p := randomPath(r, pi, r.Intn(4))
		fast, err := AncestorProject(pi, p)
		if err != nil {
			return false
		}
		if fast.Validate() != nil {
			return false
		}
		induced, err := enumerate.Enumerate(fast, 0)
		if err != nil {
			return false
		}
		naive, err := AncestorProjectGlobal(pi, p, 0)
		if err != nil {
			return false
		}
		return induced.Equal(naive, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(20250705))}); err != nil {
		t.Fatal(err)
	}
}

// randomPath builds a path expression of the given length over the labels
// actually used at each depth of the instance (mirroring the experimental
// design of Section 7.1), occasionally inserting labels that match nothing.
func randomPath(r *rand.Rand, pi *core.ProbInstance, length int) pathexpr.Path {
	g := pi.WeakInstance.Graph()
	p := pathexpr.Path{Root: pi.Root()}
	frontier := []string{pi.Root()}
	for i := 0; i < length; i++ {
		labelSet := map[string]bool{}
		var next []string
		for _, o := range frontier {
			g.EachChild(o, func(child, label string) {
				labelSet[label] = true
				next = append(next, child)
			})
		}
		labels := make([]string, 0, len(labelSet))
		for l := range labelSet {
			labels = append(labels, l)
		}
		var l string
		switch {
		case len(labels) == 0 || r.Intn(8) == 0:
			l = "zz" // no match from here on
		case r.Intn(8) == 0:
			l = pathexpr.Wildcard
		default:
			l = labels[r.Intn(len(labels))]
		}
		p.Labels = append(p.Labels, l)
		frontier = next
	}
	return p
}

// TestAncestorProjectTimings: the timed variant records non-negative phase
// durations that sum to Total.
func TestAncestorProjectTimings(t *testing.T) {
	pi := treeBib(t)
	var tm Timings
	if _, err := AncestorProjectTimed(pi, pathexpr.MustParse("R.book.author"), &tm); err != nil {
		t.Fatal(err)
	}
	if tm.Locate < 0 || tm.Structure < 0 || tm.Update < 0 {
		t.Errorf("negative timings: %+v", tm)
	}
	if tm.Total() != tm.Copy+tm.Locate+tm.Structure+tm.Update {
		t.Error("Total mismatch")
	}
}

// TestFigure5Merging reproduces Figure 5 of the paper: two compatible
// instances S1 (B1 with author A1 and title T1) and S2 (B1 with author A1
// only) both project under Λ_{R.book.author} to the same instance S3, so
// the probability of S3 in the result is P(S1) + P(S2).
func TestFigure5Merging(t *testing.T) {
	mkWorld := func(withTitle bool) *model.Instance {
		s := model.NewInstance("R")
		_ = s.AddEdge("R", "B1", "book")
		_ = s.AddEdge("B1", "A1", "author")
		if withTitle {
			_ = s.RegisterType(model.NewType("title-type", "VQDB", "Lore"))
			_ = s.AddEdge("B1", "T1", "title")
			_ = s.SetLeaf("T1", "title-type", "VQDB")
		}
		return s
	}
	gi := enumerate.NewGlobalInterpretation()
	gi.Add(mkWorld(true), 0.3)      // S1
	gi.Add(mkWorld(false), 0.2)     // S2
	other := model.NewInstance("R") // a world with no match at all
	gi.Add(other, 0.5)

	p := pathexpr.MustParse("R.book.author")
	projected := gi.Transform(func(s *model.Instance) *model.Instance {
		return pathexpr.ProjectAncestors(s, p)
	})
	s3 := model.NewInstance("R")
	_ = s3.AddEdge("R", "B1", "book")
	_ = s3.AddEdge("B1", "A1", "author")
	if got := projected.Prob(s3); !approx(got, 0.5) {
		t.Errorf("P(S3) = %v, want P(S1)+P(S2) = 0.5", got)
	}
	if got := projected.Prob(model.NewInstance("R")); !approx(got, 0.5) {
		t.Errorf("P(root-only) = %v, want 0.5", got)
	}
}

// TestQuickProjectionIdempotent: Λ_p(Λ_p(I)) = Λ_p(I). After a projection
// every kept child lies on a match path and every subtree terminates in
// matched objects, so all survival probabilities are one and a second
// projection changes nothing.
func TestQuickProjectionIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pi := fixtures.RandomTree(r)
		p := randomPath(r, pi, 1+r.Intn(3))
		once, err := AncestorProject(pi, p)
		if err != nil {
			return false
		}
		twice, err := AncestorProject(once, p)
		if err != nil {
			return false
		}
		return core.Equal(once, twice, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(20250705))}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSelectionIdempotent: selecting the same object twice is a
// no-op with conditional probability one the second time.
func TestQuickSelectionIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pi := fixtures.RandomTree(r)
		objs := pi.Objects()
		o := objs[r.Intn(len(objs))]
		cond := ObjectCondition{pathToObject(pi, o), o}
		once, p1, err := Select(pi, cond)
		if err != nil {
			return true // unsatisfiable condition: nothing to check
		}
		twice, p2, err := Select(once, cond)
		if err != nil {
			return false
		}
		return math.Abs(p2-1) < 1e-9 && p1 > 0 && core.Equal(once, twice, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(20250705))}); err != nil {
		t.Fatal(err)
	}
}

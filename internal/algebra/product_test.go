package algebra

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"pxml/internal/core"
	"pxml/internal/enumerate"
	"pxml/internal/fixtures"
	"pxml/internal/model"
	"pxml/internal/pathexpr"
	"pxml/internal/prob"
	"pxml/internal/sets"
)

// smallInstance builds a two-level probabilistic instance with a root OPF
// over one or two children.
func smallInstance(t testing.TB, root, prefix string) *core.ProbInstance {
	t.Helper()
	pi := core.NewProbInstance(root)
	a, b := prefix+"a", prefix+"b"
	pi.SetLCh(root, "k", a, b)
	w := prob.NewOPF()
	w.Put(sets.NewSet(), 0.1)
	w.Put(sets.NewSet(a), 0.4)
	w.Put(sets.NewSet(a, b), 0.5)
	pi.SetOPF(root, w)
	pi.SetLCh(a, "m", prefix+"c")
	wa := prob.NewOPF()
	wa.Put(sets.NewSet(), 0.3)
	wa.Put(sets.NewSet(prefix+"c"), 0.7)
	pi.SetOPF(a, wa)
	if err := pi.Validate(); err != nil {
		t.Fatal(err)
	}
	return pi
}

func TestCartesianProductMatchesOracle(t *testing.T) {
	pi1 := smallInstance(t, "r1", "x")
	pi2 := smallInstance(t, "r2", "y")
	out, renames, err := CartesianProduct(pi1, pi2, "root")
	if err != nil {
		t.Fatal(err)
	}
	if len(renames) != 0 {
		t.Errorf("unexpected renames: %v", renames)
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("product invalid: %v", err)
	}
	induced, err := enumerate.Enumerate(out, 0)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := CartesianProductGlobal(pi1, pi2, "root", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !induced.Equal(naive, 1e-9) {
		t.Fatalf("product diverges from oracle\nfast:\n%v\nnaive:\n%v", dump(induced), dump(naive))
	}
}

func TestCartesianProductRenames(t *testing.T) {
	pi1 := smallInstance(t, "r1", "x")
	pi2 := smallInstance(t, "r2", "x") // same object ids
	out, renames, err := CartesianProduct(pi1, pi2, "root")
	if err != nil {
		t.Fatal(err)
	}
	if len(renames) != 3 { // xa, xb, xc
		t.Fatalf("renames = %v", renames)
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("renamed product invalid: %v", err)
	}
	// Both variants of xa exist.
	if !out.HasObject("xa") || !out.HasObject("xa′") {
		t.Errorf("objects = %v", out.Objects())
	}
	// Mass still coherent.
	gi, err := enumerate.Enumerate(out, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(gi.TotalMass(), 1) {
		t.Errorf("mass = %v", gi.TotalMass())
	}
}

func TestCartesianProductRootOPF(t *testing.T) {
	pi1 := smallInstance(t, "r1", "x")
	pi2 := smallInstance(t, "r2", "y")
	out, _, err := CartesianProduct(pi1, pi2, "root")
	if err != nil {
		t.Fatal(err)
	}
	w := out.OPF("root")
	// ω″({xa} ∪ {ya,yb}) = 0.4 · 0.5.
	if got := w.Prob(sets.NewSet("xa", "ya", "yb")); !approx(got, 0.2) {
		t.Errorf("product OPF = %v", got)
	}
	if got := w.Prob(sets.NewSet()); !approx(got, 0.01) {
		t.Errorf("P(∅) = %v", got)
	}
	// Merged card: both operands had card [0,2] under label k → [0,4].
	if got := out.Card("root", "k"); got.Min != 0 || got.Max != 4 {
		t.Errorf("merged card = %v", got)
	}
}

func TestCartesianProductErrors(t *testing.T) {
	pi1 := smallInstance(t, "r1", "x")
	pi2 := smallInstance(t, "r2", "y")
	if _, _, err := CartesianProduct(pi1, pi2, "xa"); err == nil {
		t.Error("colliding new root accepted")
	}
	// Typed root.
	typed := core.NewProbInstance("tr")
	if err := typed.RegisterType(model.NewType("t", "v")); err != nil {
		t.Fatal(err)
	}
	if err := typed.SetLeafType("tr", "t"); err != nil {
		t.Fatal(err)
	}
	typed.SetVPF("tr", prob.PointMass("v"))
	if _, _, err := CartesianProduct(typed, pi2, "root"); err == nil {
		t.Error("typed root accepted")
	}
	// Type clash.
	c1 := core.NewProbInstance("r1")
	_ = c1.RegisterType(model.NewType("t", "a"))
	c2 := core.NewProbInstance("r2")
	_ = c2.RegisterType(model.NewType("t", "b"))
	if _, _, err := CartesianProduct(c1, c2, "root"); err == nil || !strings.Contains(err.Error(), "type clash") {
		t.Errorf("type clash: %v", err)
	}
}

func TestCartesianProductBareRoots(t *testing.T) {
	c1 := core.NewProbInstance("r1")
	c2 := core.NewProbInstance("r2")
	out, _, err := CartesianProduct(c1, c2, "root")
	if err != nil {
		t.Fatal(err)
	}
	if out.NumObjects() != 1 || !out.IsLeaf("root") {
		t.Errorf("bare product = %v", out.Objects())
	}
}

// TestQuickCartesianProductMatchesOracle: products of random disjoint trees
// agree with the pairwise-merge oracle.
func TestQuickCartesianProductMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pi1 := fixtures.RandomTree(r)
		pi2 := fixtures.RandomTree(r)
		if pi1.NumObjects()*pi2.NumObjects() > 60 {
			return true // keep the oracle tractable
		}
		// Make universes disjoint up front so the oracle applies directly.
		ren := make(map[model.ObjectID]model.ObjectID)
		for _, o := range pi2.Objects() {
			ren[o] = "q_" + o
		}
		pi2 = pi2.Rename(ren)
		out, renames, err := CartesianProduct(pi1, pi2, "ROOT")
		if err != nil || len(renames) != 0 {
			return false
		}
		if out.Validate() != nil {
			return false
		}
		induced, err := enumerate.Enumerate(out, 0)
		if err != nil {
			return false
		}
		naive, err := CartesianProductGlobal(pi1, pi2, "ROOT", 0)
		if err != nil {
			return false
		}
		return induced.Equal(naive, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(20250705))}); err != nil {
		t.Fatal(err)
	}
}

// TestSection2Scenario3: "we have two probabilistic instances about books
// of two different areas and we want to combine them into one" — the
// product then answers path queries spanning both sources.
func TestSection2Scenario3(t *testing.T) {
	db := treeBib(t)
	ai := core.NewProbInstance("R2")
	ai.SetLCh("R2", "book", "B9")
	w := prob.NewOPF()
	w.Put(sets.NewSet(), 0.25)
	w.Put(sets.NewSet("B9"), 0.75)
	ai.SetOPF("R2", w)
	ai.SetLCh("B9", "author", "A9")
	w9 := prob.NewOPF()
	w9.Put(sets.NewSet("A9"), 1)
	ai.SetOPF("B9", w9)

	out, _, err := CartesianProduct(db, ai, "LIB")
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	// The same path expression now reaches authors from both sources.
	g := out.WeakInstance.Graph()
	targets := pathexpr.MustParse("LIB.book.author").Targets(g)
	want := []string{"A1", "A2", "A3", "A9"}
	if len(targets) != len(want) {
		t.Fatalf("targets = %v", targets)
	}
	for i := range want {
		if targets[i] != want[i] {
			t.Fatalf("targets = %v, want %v", targets, want)
		}
	}
}

// TestProductWithBareRootIsRename: I × (bare root) re-roots I without
// changing its distribution — the product's unit law up to root renaming.
func TestProductWithBareRootIsRename(t *testing.T) {
	pi := smallInstance(t, "r1", "x")
	unit := core.NewProbInstance("r2")
	out, renames, err := CartesianProduct(pi, unit, "ROOT")
	if err != nil {
		t.Fatal(err)
	}
	if len(renames) != 0 {
		t.Fatalf("renames = %v", renames)
	}
	want := pi.Rename(map[model.ObjectID]model.ObjectID{"r1": "ROOT"})
	if !core.Equal(out, want, 1e-9) {
		t.Error("product with unit is not a root rename")
	}
	// And the induced distributions agree with the oracle, too.
	a, err := enumerate.Enumerate(out, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := enumerate.Enumerate(want, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b, 1e-9) {
		t.Error("unit-product distribution differs")
	}
}

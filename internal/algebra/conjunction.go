package algebra

import (
	"fmt"
	"strings"

	"pxml/internal/core"
	"pxml/internal/model"
	"pxml/internal/pathexpr"
	"pxml/internal/sets"
)

// Conjunction is the conjunction of several selection conditions,
// σ_{sc₁ ∧ sc₂ ∧ …}. The fast path supports conjunctions of object
// conditions on a tree: the required objects' root chains form a subtree,
// and conditioning each involved object's OPF on containing all of its
// required children yields the exact conditional distribution with
// probability equal to the product of the per-object normalization
// constants (the same telescoping argument as the single-chain case).
type Conjunction struct {
	Conds []Condition
}

// Satisfies implements Condition: all members must hold.
func (c Conjunction) Satisfies(s *model.Instance) bool {
	for _, sub := range c.Conds {
		if !sub.Satisfies(s) {
			return false
		}
	}
	return true
}

func (c Conjunction) String() string {
	parts := make([]string, len(c.Conds))
	for i, sub := range c.Conds {
		parts[i] = sub.String()
	}
	return strings.Join(parts, " ∧ ")
}

// selectConjunction implements the fast path for conjunctions of object
// conditions. Called from SelectTimed.
func selectConjunction(pi, out *core.ProbInstance, c Conjunction, sw *stopwatch, sink *Timings) (float64, error) {
	g := pi.WeakInstance.Graph()
	// required[o] is the set of children o must contain.
	required := make(map[model.ObjectID]map[model.ObjectID]bool)
	for _, sub := range c.Conds {
		oc, ok := sub.(ObjectCondition)
		if !ok {
			return 0, fmt.Errorf("algebra: conjunction fast path supports object conditions only, got %T (use SelectGlobal)", sub)
		}
		plan := pathexpr.NewPlan(g, oc.Path, map[model.ObjectID]bool{oc.Object: true})
		if plan.IsEmpty() {
			return 0, fmt.Errorf("%w: %s does not satisfy %s", ErrZeroProbability, oc.Object, oc.Path)
		}
		// Walk the unique parent chain up to the root.
		cur := oc.Object
		for cur != pi.Root() {
			ps := g.Parents(cur)
			if len(ps) != 1 {
				return 0, fmt.Errorf("algebra: object %s has %d parents; conjunction conditioning needs a tree", cur, len(ps))
			}
			parent := ps[0]
			if required[parent] == nil {
				required[parent] = make(map[model.ObjectID]bool)
			}
			required[parent][cur] = true
			cur = parent
		}
	}
	sw.lap(&sink.Locate)
	total := 1.0
	for parent, req := range required {
		opf := pi.OPF(parent)
		if opf == nil {
			return 0, fmt.Errorf("algebra: chain object %s has no OPF", parent)
		}
		reqSet := make([]model.ObjectID, 0, len(req))
		for r := range req {
			reqSet = append(reqSet, r)
		}
		need := sets.NewSet(reqSet...)
		cond, norm, ok := opf.Condition(func(s sets.Set) bool { return need.SubsetOf(s) })
		if !ok {
			sw.lap(&sink.Update)
			return 0, fmt.Errorf("%w: %s cannot contain all of %s", ErrZeroProbability, parent, need)
		}
		out.SetOPF(parent, cond)
		total *= norm
	}
	sw.lap(&sink.Update)
	return total, nil
}

package algebra

import (
	"fmt"

	"pxml/internal/core"
	"pxml/internal/model"
	"pxml/internal/pathexpr"
	"pxml/internal/prob"
	"pxml/internal/sets"
)

// Condition is a selection condition sc (Section 5.2). Each condition kind
// can render itself and report whether a deterministic semistructured
// instance satisfies it — the latter defines the global semantics of
// Definition 5.6 and is used by the enumeration oracle.
type Condition interface {
	// Satisfies reports whether the (deterministic) instance satisfies the
	// condition.
	Satisfies(s *model.Instance) bool
	// String renders the condition in the paper's notation.
	String() string
}

// ObjectCondition is the object selection condition p = o of Definition
// 5.4: the instance contains object o reachable via path expression p.
type ObjectCondition struct {
	Path   pathexpr.Path
	Object model.ObjectID
}

// Satisfies implements Condition.
func (c ObjectCondition) Satisfies(s *model.Instance) bool {
	return c.Path.Matches(s.Graph(), c.Object)
}

func (c ObjectCondition) String() string { return fmt.Sprintf("%s = %s", c.Path, c.Object) }

// ValueCondition is the value selection condition val(p) = v of Definition
// 5.5: some leaf reachable via p carries value v.
type ValueCondition struct {
	Path  pathexpr.Path
	Value model.Value
}

// Satisfies implements Condition.
func (c ValueCondition) Satisfies(s *model.Instance) bool {
	for _, o := range c.Path.Targets(s.Graph()) {
		if v, ok := s.ValueOf(o); ok && v == c.Value {
			return true
		}
	}
	return false
}

func (c ValueCondition) String() string { return fmt.Sprintf("val(%s) = %s", c.Path, c.Value) }

// CardCondition is the cardinality-comparison condition the paper sketches
// below Definition 5.5 ("comparisons based on, for example, cardinality"):
// the object reached by p has a number of l-labeled children within Range.
type CardCondition struct {
	Path   pathexpr.Path
	Object model.ObjectID
	Label  model.Label
	Range  sets.Interval
}

// Satisfies implements Condition.
func (c CardCondition) Satisfies(s *model.Instance) bool {
	if !c.Path.Matches(s.Graph(), c.Object) {
		return false
	}
	return c.Range.Contains(len(s.LCh(c.Object, c.Label)))
}

func (c CardCondition) String() string {
	return fmt.Sprintf("%s = %s ∧ |lch(%s,%s)| ∈ %s", c.Path, c.Object, c.Object, c.Label, c.Range)
}

// Select applies the selection operator σ_sc (Definition 5.6) to a
// probabilistic instance using the efficient local algorithm: the structure
// of the instance is unchanged, and only the local interpretations of the
// objects along the path to the selected object are conditioned — the
// behaviour the Figure 7(c) experiment relies on ("the number [of updated
// objects] is the same as the depth"). It returns the updated instance and
// the probability of the selection condition (by which the global
// distribution was renormalized).
//
// The fast path requires a tree-structured weak instance graph and a
// condition whose event is local to one root-to-object chain:
//   - ObjectCondition: always representable on a tree;
//   - ValueCondition: representable when exactly one object matches the
//     path (a disjunction over several leaves does not factor;
//     ErrNotRepresentable is returned — use SelectGlobal);
//   - CardCondition: object plus a constraint on its own OPF.
func Select(pi *core.ProbInstance, cond Condition) (*core.ProbInstance, float64, error) {
	if !pi.IsTree() {
		return nil, 0, ErrNotTree
	}
	return SelectTimed(pi, cond, nil)
}

// SelectTimed is Select without the tree check, recording phase timings.
func SelectTimed(pi *core.ProbInstance, cond Condition, sink *Timings) (*core.ProbInstance, float64, error) {
	if sink == nil {
		sink = &Timings{}
	}
	sw := newStopwatch(sink)
	out := pi.Clone()
	sw.lap(&sink.Copy)

	switch c := cond.(type) {
	case Conjunction:
		p, err := selectConjunction(pi, out, c, sw, sink)
		return out, p, err
	case ObjectCondition:
		p, err := conditionChain(pi, out, c.Path, c.Object, sw, sink, nil)
		return out, p, err
	case CardCondition:
		extra := func(o model.ObjectID) (float64, error) {
			opf := pi.OPF(o)
			if opf == nil {
				// The selected object is a leaf: the cardinality
				// constraint holds iff it admits zero children.
				if c.Range.Contains(0) {
					return 1, nil
				}
				return 0, ErrZeroProbability
			}
			ccond, norm, ok := opf.Condition(func(s sets.Set) bool {
				n := 0
				for _, ch := range s {
					if l, lok := pi.LabelOf(o, ch); lok && l == c.Label {
						n++
					}
				}
				return c.Range.Contains(n)
			})
			if !ok {
				return 0, ErrZeroProbability
			}
			out.SetOPF(o, ccond)
			return norm, nil
		}
		p, err := conditionChain(pi, out, c.Path, c.Object, sw, sink, extra)
		return out, p, err
	case ValueCondition:
		g := pi.WeakInstance.Graph()
		targets := c.Path.Targets(g)
		var leaves []model.ObjectID
		for _, o := range targets {
			if v := pi.VPF(o); v != nil && v.Prob(c.Value) > 0 {
				leaves = append(leaves, o)
			}
		}
		if len(leaves) == 0 {
			return nil, 0, fmt.Errorf("%w: no leaf on %s can carry %q", ErrZeroProbability, c.Path, c.Value)
		}
		if len(leaves) > 1 {
			return nil, 0, fmt.Errorf("%w: %d leaves match %s", ErrNotRepresentable, len(leaves), c.Path)
		}
		o := leaves[0]
		extra := func(model.ObjectID) (float64, error) {
			vp := pi.VPF(o).Prob(c.Value)
			out.SetVPF(o, prob.PointMass(c.Value))
			return vp, nil
		}
		p, err := conditionChain(pi, out, c.Path, o, sw, sink, extra)
		return out, p, err
	default:
		return nil, 0, fmt.Errorf("algebra: unsupported condition type %T", cond)
	}
}

// conditionChain conditions every ancestor OPF along the unique
// root-to-object chain on containing the next chain object, applying an
// optional extra conditioning step at the selected object itself. It
// returns the total probability of the conditioned event.
func conditionChain(pi, out *core.ProbInstance, p pathexpr.Path, o model.ObjectID, sw *stopwatch, sink *Timings, extra func(model.ObjectID) (float64, error)) (float64, error) {
	g := pi.WeakInstance.Graph()
	plan := pathexpr.NewPlan(g, p, map[model.ObjectID]bool{o: true})
	sw.lap(&sink.Locate)
	if plan.IsEmpty() {
		return 0, fmt.Errorf("%w: %s does not satisfy %s", ErrZeroProbability, o, p)
	}
	// In a tree the kept plan is a single chain root → … → o.
	chain := []model.ObjectID{o}
	cur := o
	for level := p.Len(); level > 0; level-- {
		ps := g.Parents(cur)
		if len(ps) != 1 && !(level == 1 && len(ps) == 0) {
			return 0, fmt.Errorf("algebra: object %s has %d parents; chain conditioning needs a tree", cur, len(ps))
		}
		if len(ps) == 0 {
			break
		}
		cur = ps[0]
		chain = append(chain, cur)
	}
	if cur != pi.Root() {
		return 0, fmt.Errorf("%w: %s not reachable from root via %s", ErrZeroProbability, o, p)
	}
	// chain is o … root; walk top-down conditioning each ancestor on
	// containing its chain child.
	total := 1.0
	for i := len(chain) - 1; i >= 1; i-- {
		parent, child := chain[i], chain[i-1]
		opf := pi.OPF(parent)
		if opf == nil {
			return 0, fmt.Errorf("algebra: chain object %s has no OPF", parent)
		}
		cond, norm, ok := opf.ConditionContains(child)
		if !ok {
			sw.lap(&sink.Update)
			return 0, fmt.Errorf("%w: edge %s → %s has zero probability", ErrZeroProbability, parent, child)
		}
		out.SetOPF(parent, cond)
		total *= norm
	}
	if extra != nil {
		norm, err := extra(o)
		if err != nil {
			sw.lap(&sink.Update)
			return 0, err
		}
		total *= norm
	}
	sw.lap(&sink.Update)
	return total, nil
}

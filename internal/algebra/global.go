package algebra

import (
	"fmt"

	"pxml/internal/core"
	"pxml/internal/enumerate"
	"pxml/internal/model"
	"pxml/internal/pathexpr"
)

// AncestorProjectGlobal computes the ancestor projection by the global
// semantics of Definition 5.3: enumerate the compatible instances, project
// each, and merge identical results by summing probabilities. It works on
// DAGs and is the oracle/baseline for AncestorProject. limit bounds the
// enumeration (≤ 0 for the default).
func AncestorProjectGlobal(pi *core.ProbInstance, p pathexpr.Path, limit int) (*enumerate.GlobalInterpretation, error) {
	gi, err := enumerate.Enumerate(pi, limit)
	if err != nil {
		return nil, err
	}
	return gi.Transform(func(s *model.Instance) *model.Instance {
		return pathexpr.ProjectAncestors(s, p)
	}), nil
}

// SelectGlobal computes selection by the global semantics of Definition
// 5.6: keep the compatible instances satisfying the condition and
// renormalize. It returns the conditioned distribution and the probability
// of the condition. It works on DAGs and on conditions whose conditional
// distribution does not factor (e.g. multi-leaf value conditions).
func SelectGlobal(pi *core.ProbInstance, cond Condition, limit int) (*enumerate.GlobalInterpretation, float64, error) {
	gi, err := enumerate.Enumerate(pi, limit)
	if err != nil {
		return nil, 0, err
	}
	p := gi.ProbWhere(cond.Satisfies)
	filtered, ok := gi.Filter(cond.Satisfies)
	if !ok {
		return nil, 0, fmt.Errorf("%w: %s", ErrZeroProbability, cond)
	}
	return filtered, p, nil
}

// CartesianProductGlobal computes the product by the global semantics:
// every pair of operand worlds merges (roots fused into newRoot) with
// probability p₁·p₂, and identical merged worlds combine — the distribution
// CartesianProduct's result must induce. Operand object universes must
// already be disjoint (apply renames beforehand; CartesianProduct returns
// the mapping it used).
func CartesianProductGlobal(pi1, pi2 *core.ProbInstance, newRoot model.ObjectID, limit int) (*enumerate.GlobalInterpretation, error) {
	g1, err := enumerate.Enumerate(pi1, limit)
	if err != nil {
		return nil, err
	}
	g2, err := enumerate.Enumerate(pi2, limit)
	if err != nil {
		return nil, err
	}
	out := enumerate.NewGlobalInterpretation()
	for _, w1 := range g1.Worlds() {
		for _, w2 := range g2.Worlds() {
			merged, err := mergeRoots(w1.S, w2.S, newRoot)
			if err != nil {
				return nil, err
			}
			out.Add(merged, w1.P*w2.P)
		}
	}
	return out, nil
}

// mergeRoots builds the instance whose root newRoot adopts the children of
// both operand roots, with all other structure copied verbatim.
func mergeRoots(s1, s2 *model.Instance, newRoot model.ObjectID) (*model.Instance, error) {
	out := model.NewInstance(newRoot)
	for _, src := range []*model.Instance{s1, s2} {
		for _, t := range src.Types() {
			if err := out.RegisterType(t); err != nil {
				return nil, err
			}
		}
		for _, e := range src.Edges() {
			from := e.From
			if from == src.Root() {
				from = newRoot
			}
			if err := out.AddEdge(from, e.To, e.Label); err != nil {
				return nil, err
			}
		}
		for _, o := range src.Objects() {
			if o == src.Root() {
				continue
			}
			out.AddObject(o)
			if t, ok := src.TypeOf(o); ok {
				v, _ := src.ValueOf(o)
				if err := out.SetLeaf(o, t.Name, v); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

// Mixture returns the convex combination w·g1 + (1−w)·g2 of two global
// interpretations — the natural "union" of two probabilistic sources of
// evidence over the same object universe. The paper defers union to its
// longer version; a mixture is the standard possible-worlds reading. Note a
// mixture of two factoring distributions need not factor, so the result is
// a distribution over worlds rather than a probabilistic instance.
func Mixture(g1, g2 *enumerate.GlobalInterpretation, w float64) (*enumerate.GlobalInterpretation, error) {
	if w < 0 || w > 1 {
		return nil, fmt.Errorf("algebra: mixture weight %v outside [0,1]", w)
	}
	out := enumerate.NewGlobalInterpretation()
	for _, wd := range g1.Worlds() {
		out.Add(wd.S, w*wd.P)
	}
	for _, wd := range g2.Worlds() {
		out.Add(wd.S, (1-w)*wd.P)
	}
	return out, nil
}

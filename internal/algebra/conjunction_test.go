package algebra

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"pxml/internal/enumerate"
	"pxml/internal/fixtures"
	"pxml/internal/pathexpr"
	"pxml/internal/sets"
)

func TestConjunctionSelectTreeBib(t *testing.T) {
	pi := treeBib(t)
	cond := Conjunction{Conds: []Condition{
		ObjectCondition{pathexpr.MustParse("R.book.author"), "A1"},
		ObjectCondition{pathexpr.MustParse("R.book.author"), "A3"},
	}}
	checkSelectionAgainstOracle(t, pi, cond)
	out, p, err := Select(pi, cond)
	if err != nil {
		t.Fatal(err)
	}
	// P(A1 ∧ A3) = P({B1,B2} at root)·P(A1 ∈ c(B1))·P(A3 ∈ c(B2))
	//            = 0.5 · (0.2+0.15+0.25) · 0.6 = 0.18.
	if !approx(p, 0.5*0.6*0.6) {
		t.Errorf("P = %v, want %v", p, 0.5*0.6*0.6)
	}
	// Root conditioned on containing both books.
	if got := out.OPF("R").Prob(sets.NewSet("B1")); got != 0 {
		t.Errorf("root kept single-book set with %v", got)
	}
}

// TestConjunctionSharedPrefix: two conditions through the same book share
// the root conditioning.
func TestConjunctionSharedPrefix(t *testing.T) {
	pi := treeBib(t)
	cond := Conjunction{Conds: []Condition{
		ObjectCondition{pathexpr.MustParse("R.book.author"), "A1"},
		ObjectCondition{pathexpr.MustParse("R.book.author"), "A2"},
		ObjectCondition{pathexpr.MustParse("R.book.title"), "T1"},
	}}
	checkSelectionAgainstOracle(t, pi, cond)
	_, p, err := Select(pi, cond)
	if err != nil {
		t.Fatal(err)
	}
	// All three under B1: P(B1)·P({A1,A2,T1}|B1) = 0.8·0.25.
	if !approx(p, 0.8*0.25) {
		t.Errorf("P = %v, want 0.2", p)
	}
}

func TestConjunctionErrors(t *testing.T) {
	pi := treeBib(t)
	// Impossible combination: B1 can have at most authors {A1,A2}; A3 lives
	// under B2, but requiring A3 via a title path is unsatisfiable.
	cond := Conjunction{Conds: []Condition{
		ObjectCondition{pathexpr.MustParse("R.book.title"), "A3"},
	}}
	if _, _, err := Select(pi, cond); !errors.Is(err, ErrZeroProbability) {
		t.Fatalf("err = %v", err)
	}
	// Mixed condition kinds fall back to the global route.
	mixed := Conjunction{Conds: []Condition{
		ObjectCondition{pathexpr.MustParse("R.book"), "B1"},
		ValueCondition{pathexpr.MustParse("R.book.title"), "Lore"},
	}}
	if _, _, err := Select(pi, mixed); err == nil {
		t.Error("mixed conjunction accepted by fast path")
	}
	// ... but SelectGlobal answers it.
	_, p, err := SelectGlobal(pi, mixed, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0 {
		t.Errorf("global conjunction P = %v", p)
	}
	// Empty conjunction = no constraint.
	empty := Conjunction{}
	out, p, err := Select(pi, empty)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(p, 1) || out == nil {
		t.Errorf("empty conjunction P = %v", p)
	}
}

// TestQuickConjunctionMatchesOracle: random pairs of object conditions on
// random trees agree with the global semantics.
func TestQuickConjunctionMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pi := fixtures.RandomTree(r)
		if pi.NumObjects() > 12 || pi.NumObjects() < 3 {
			return true
		}
		objs := pi.Objects()
		o1 := objs[r.Intn(len(objs))]
		o2 := objs[r.Intn(len(objs))]
		cond := Conjunction{Conds: []Condition{
			ObjectCondition{pathToObject(pi, o1), o1},
			ObjectCondition{pathToObject(pi, o2), o2},
		}}
		fast, pFast, err := Select(pi, cond)
		naive, pNaive, nErr := SelectGlobal(pi, cond, 0)
		if err != nil {
			return nErr != nil || pNaive == 0
		}
		if nErr != nil || !approx(pFast, pNaive) {
			return false
		}
		induced, err := enumerate.Enumerate(fast, 0)
		if err != nil {
			return false
		}
		return induced.Equal(naive, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(20250705))}); err != nil {
		t.Fatal(err)
	}
}

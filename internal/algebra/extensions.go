package algebra

import (
	"fmt"

	"pxml/internal/core"
	"pxml/internal/enumerate"
	"pxml/internal/model"
	"pxml/internal/pathexpr"
	"pxml/internal/prob"
	"pxml/internal/sets"
)

// This file implements the operators the paper mentions but defers:
// descendant projection and single projection (named in Section 5.1 as
// companions of ancestor projection), and join, which the paper says "can
// be defined in terms of these operations in the standard way" (Section 5).
//
// Semantics chosen here, matching the ancestor-projection pattern of
// "apply the structural operation to every compatible instance and merge
// identical results":
//
//   - Single projection Π_p keeps the root and the objects matched by p,
//     which become direct children of the root under p's final label.
//   - Descendant projection Δ_p is Π_p but each matched object also keeps
//     its entire substructure (the dual of ancestor projection, which keeps
//     everything above the matches).
//
// Both change which objects are correlated: the joint distribution over
// which matched objects exist does not factor per-object, but it is exactly
// representable as the new root's OPF, since PXML OPFs are arbitrary
// distributions over child sets. The fast implementations compute that
// joint bottom-up over the match plan; matched-object substructures keep
// their original local functions (they are conditionally independent of
// everything else given their object exists).

// maxJointSupport bounds the support size of the joint matched-set
// distribution computed by descendant/single projection.
const maxJointSupport = 1 << 16

// SingleProject computes Π_p on a tree-structured probabilistic instance.
// The final label of p must not be the wildcard (it becomes the label of
// the new root→match edges).
func SingleProject(pi *core.ProbInstance, p pathexpr.Path) (*core.ProbInstance, error) {
	return projectMatched(pi, p, false)
}

// DescendantProject computes Δ_p on a tree-structured probabilistic
// instance: like SingleProject but matched objects keep their entire
// substructure with unchanged local interpretations.
func DescendantProject(pi *core.ProbInstance, p pathexpr.Path) (*core.ProbInstance, error) {
	return projectMatched(pi, p, true)
}

func projectMatched(pi *core.ProbInstance, p pathexpr.Path, keepSubtrees bool) (*core.ProbInstance, error) {
	if !pi.IsTree() {
		return nil, ErrNotTree
	}
	if p.Root != pi.Root() || p.Len() == 0 {
		return bareRoot(pi), nil
	}
	last := p.Labels[p.Len()-1]
	if last == pathexpr.Wildcard {
		return nil, fmt.Errorf("algebra: %s: wildcard final label has no canonical result label", p)
	}
	g := pi.WeakInstance.Graph()
	plan := pathexpr.NewPlan(g, p, nil)
	if plan.IsEmpty() {
		return bareRoot(pi), nil
	}
	matched := make(map[model.ObjectID]bool)
	for _, o := range plan.Matched() {
		matched[o] = true
	}
	keptChildren := make(map[model.ObjectID][]model.ObjectID)
	for _, e := range plan.Edges {
		keptChildren[e.From] = append(keptChildren[e.From], e.To)
	}

	// Bottom-up joint: dist[o] is the distribution over subsets of matched
	// objects below (or equal to) o, given o exists.
	joint, err := matchedJoint(pi, plan, matched, keptChildren)
	if err != nil {
		return nil, err
	}
	rootDist := joint[pi.Root()]
	if rootDist == nil || 1-rootDist.Prob(nil) <= 0 {
		return bareRoot(pi), nil
	}

	out := core.NewProbInstance(pi.Root())
	for _, t := range pi.Types() {
		_ = out.RegisterType(t)
	}
	// Survivor matches: positive marginal under the root joint.
	marg := make(map[model.ObjectID]float64)
	rootDist.Each(func(c sets.Set, pr float64) {
		if pr <= 0 {
			return
		}
		for _, o := range c {
			marg[o] += pr
		}
	})
	var kept []model.ObjectID
	for _, o := range plan.Matched() {
		if marg[o] > 0 {
			kept = append(kept, o)
		}
	}
	if len(kept) == 0 {
		return bareRoot(pi), nil
	}
	out.SetLCh(pi.Root(), last, kept...)
	lo, hi := -1, 0
	rootDist.Each(func(c sets.Set, pr float64) {
		if pr <= 0 {
			return
		}
		if lo == -1 || c.Len() < lo {
			lo = c.Len()
		}
		if c.Len() > hi {
			hi = c.Len()
		}
	})
	if lo == -1 {
		lo = 0
	}
	out.SetCard(pi.Root(), last, lo, hi)
	out.SetOPF(pi.Root(), rootDist)

	for _, o := range kept {
		if err := copyLeafInfo(pi, out, o); err != nil {
			return nil, err
		}
		if !keepSubtrees {
			continue
		}
		// Copy o's entire weak substructure and local functions verbatim.
		stack := []model.ObjectID{o}
		seen := map[model.ObjectID]bool{o: true}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, l := range pi.Labels(cur) {
				children := pi.LCh(cur, l)
				out.SetLCh(cur, l, children...)
				iv := pi.Card(cur, l)
				out.SetCard(cur, l, iv.Min, iv.Max)
				for _, ch := range children {
					if !seen[ch] {
						seen[ch] = true
						stack = append(stack, ch)
						if err := copyLeafInfo(pi, out, ch); err != nil {
							return nil, err
						}
					}
				}
			}
			if w := pi.OPF(cur); w != nil && !pi.IsLeaf(cur) {
				out.SetOPF(cur, w.Clone())
			}
		}
	}
	return out, nil
}

// copyLeafInfo transfers type and VPF when o is a typed weak-instance leaf.
func copyLeafInfo(pi, out *core.ProbInstance, o model.ObjectID) error {
	t, ok := pi.TypeOf(o)
	if !ok {
		return nil
	}
	if err := out.SetLeafType(o, t.Name); err != nil {
		return err
	}
	if v := pi.VPF(o); v != nil {
		out.SetVPF(o, v.Clone())
	}
	return nil
}

// matchedJoint computes, bottom-up over the plan, the distribution of the
// set of matched objects occurring below each kept object given that the
// object exists. Distributions are represented as OPFs over matched-object
// sets.
func matchedJoint(pi *core.ProbInstance, plan pathexpr.Plan, matched map[model.ObjectID]bool, keptChildren map[model.ObjectID][]model.ObjectID) (map[model.ObjectID]*prob.OPF, error) {
	joint := make(map[model.ObjectID]*prob.OPF)
	n := len(plan.Keep) - 1
	for o := range plan.Keep[n] {
		d := prob.NewOPF()
		d.Put(sets.NewSet(o), 1)
		joint[o] = d
	}
	for level := n - 1; level >= 0; level-- {
		for o := range plan.Keep[level] {
			if matched[o] {
				continue
			}
			opf := pi.OPF(o)
			if opf == nil {
				return nil, fmt.Errorf("algebra: non-leaf %s has no OPF", o)
			}
			keptSet := make(map[model.ObjectID]bool, len(keptChildren[o]))
			for _, c := range keptChildren[o] {
				keptSet[c] = true
			}
			d := prob.NewOPF()
			overflow := false
			opf.Each(func(c sets.Set, pr float64) {
				if pr <= 0 || overflow {
					return
				}
				// Convolve the children's joints: start from the empty
				// set and extend child by child.
				acc := prob.NewOPF()
				acc.Put(sets.NewSet(), pr)
				for _, ch := range c {
					if !keptSet[ch] {
						continue
					}
					cd := joint[ch]
					if cd == nil {
						continue
					}
					acc = acc.Product(cd)
					if acc.Len() > maxJointSupport {
						overflow = true
						return
					}
				}
				acc.Each(func(s sets.Set, w float64) { d.Add(s, w) })
				if d.Len() > maxJointSupport {
					overflow = true
				}
			})
			if overflow {
				return nil, fmt.Errorf("algebra: joint matched-set distribution at %s exceeds %d entries", o, maxJointSupport)
			}
			joint[o] = d
		}
	}
	return joint, nil
}

// JoinResult bundles the outputs of Join.
type JoinResult struct {
	Instance *core.ProbInstance
	// Prob is the probability of the join condition in the product.
	Prob float64
	// Renames records identifier renames applied to the second operand.
	Renames map[model.ObjectID]model.ObjectID
}

// Join implements the paper's join as Cartesian product followed by
// selection: σ_cond(I × I′). The condition applies to the product instance
// (rooted at newRoot); remember that colliding identifiers of the second
// operand are renamed (see CartesianProduct) before the condition is
// evaluated.
func Join(pi1, pi2 *core.ProbInstance, newRoot model.ObjectID, cond Condition) (*JoinResult, error) {
	prod, renames, err := CartesianProduct(pi1, pi2, newRoot)
	if err != nil {
		return nil, err
	}
	sel, p, err := Select(prod, cond)
	if err != nil {
		return nil, err
	}
	return &JoinResult{Instance: sel, Prob: p, Renames: renames}, nil
}

// SingleProjectGlobal is the enumeration-based oracle for SingleProject.
func SingleProjectGlobal(pi *core.ProbInstance, p pathexpr.Path, limit int) (*enumerate.GlobalInterpretation, error) {
	return matchedGlobal(pi, p, limit, false)
}

// DescendantProjectGlobal is the enumeration-based oracle for
// DescendantProject.
func DescendantProjectGlobal(pi *core.ProbInstance, p pathexpr.Path, limit int) (*enumerate.GlobalInterpretation, error) {
	return matchedGlobal(pi, p, limit, true)
}

func matchedGlobal(pi *core.ProbInstance, p pathexpr.Path, limit int, keepSubtrees bool) (*enumerate.GlobalInterpretation, error) {
	if p.Len() > 0 && p.Labels[p.Len()-1] == pathexpr.Wildcard {
		return nil, fmt.Errorf("algebra: %s: wildcard final label has no canonical result label", p)
	}
	gi, err := enumerate.Enumerate(pi, limit)
	if err != nil {
		return nil, err
	}
	return gi.Transform(func(s *model.Instance) *model.Instance {
		out := model.NewInstance(s.Root())
		for _, t := range s.Types() {
			_ = out.RegisterType(t)
		}
		if p.Root != s.Root() || p.Len() == 0 {
			return out
		}
		last := p.Labels[p.Len()-1]
		for _, o := range p.Targets(s.Graph()) {
			_ = out.AddEdge(s.Root(), o, last)
			copyWorldLeaf(s, out, o)
			if !keepSubtrees {
				continue
			}
			for _, d := range s.Graph().Descendants(o) {
				out.AddObject(d)
				copyWorldLeaf(s, out, d)
			}
			stack := []model.ObjectID{o}
			seen := map[model.ObjectID]bool{o: true}
			for len(stack) > 0 {
				cur := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				s.Graph().EachChild(cur, func(child, label string) {
					_ = out.AddEdge(cur, child, label)
					if !seen[child] {
						seen[child] = true
						stack = append(stack, child)
					}
				})
			}
		}
		return out
	}), nil
}

func copyWorldLeaf(s, out *model.Instance, o model.ObjectID) {
	if !s.IsLeaf(o) {
		return
	}
	if t, ok := s.TypeOf(o); ok {
		if v, okV := s.ValueOf(o); okV {
			_ = out.SetLeaf(o, t.Name, v)
		}
	}
}

package algebra

import (
	"fmt"

	"pxml/internal/core"
	"pxml/internal/model"
	"pxml/internal/pathexpr"
	"pxml/internal/prob"
	"pxml/internal/sets"
)

// maxSurvivalFanout caps the per-entry subset enumeration of the ℘ update
// (2^k for k kept children with uncertain survival). The paper's largest
// experiment uses branching factor 8 (2^8 subsets); the cap leaves wide
// headroom while keeping the operation's cost bounded.
const maxSurvivalFanout = 24

// AncestorProject computes Λ_p(I): the ancestor projection of a
// probabilistic instance on a path expression (Definitions 5.2–5.3),
// using the efficient bottom-up local-interpretation update of Section 6.1
// (marginalization over dropped children, survival-probability weighting,
// ε normalization, and cardinality update). The input must have a
// tree-structured weak instance graph; AncestorProjectGlobal handles DAGs.
//
// When no object can satisfy p (structurally, or with positive
// probability), the result is the bare-root instance, matching the paper's
// remark that "only the root object is returned".
func AncestorProject(pi *core.ProbInstance, p pathexpr.Path) (*core.ProbInstance, error) {
	if !pi.IsTree() {
		return nil, ErrNotTree
	}
	return AncestorProjectTimed(pi, p, nil)
}

// AncestorProjectTimed is AncestorProject without the tree check (the
// caller vouches for tree structure), recording per-phase timings into sink
// when non-nil. The bench harness uses it to reproduce Figure 7(a)/(b).
func AncestorProjectTimed(pi *core.ProbInstance, p pathexpr.Path, sink *Timings) (*core.ProbInstance, error) {
	if sink == nil {
		sink = &Timings{}
	}
	sw := newStopwatch(sink)

	// Locate: evaluate the path expression and prune to the plan.
	g := pi.WeakInstance.Graph()
	if p.Root != pi.Root() {
		sw.lap(&sink.Locate)
		return bareRoot(pi), nil
	}
	if p.Len() == 0 {
		// Λ_r keeps just the root.
		sw.lap(&sink.Locate)
		return bareRoot(pi), nil
	}
	plan := pathexpr.NewPlan(g, p, nil)
	sw.lap(&sink.Locate)
	if plan.IsEmpty() {
		return bareRoot(pi), nil
	}

	// Structure: assemble the projected weak instance skeleton.
	keptChildren := make(map[model.ObjectID][]model.ObjectID)
	for _, e := range plan.Edges {
		keptChildren[e.From] = append(keptChildren[e.From], e.To)
	}
	matched := make(map[model.ObjectID]bool)
	for _, o := range plan.Matched() {
		matched[o] = true
	}
	sw.lap(&sink.Structure)

	// Update ℘ bottom-up: levels n−1 … 0. In a tree every kept object
	// occurs in exactly one level. eps[o] is ε_o, the probability that o
	// retains at least one surviving child (1 for matched objects).
	eps := make(map[model.ObjectID]float64, len(keptChildren))
	newOPF := make(map[model.ObjectID]*prob.OPF, len(keptChildren))
	n := p.Len()
	for level := n - 1; level >= 0; level-- {
		for o := range plan.Keep[level] {
			if matched[o] {
				// A matched object occurring at an inner level cannot
				// happen in a tree; guard anyway.
				continue
			}
			opf := pi.OPF(o)
			if opf == nil {
				return nil, fmt.Errorf("algebra: non-leaf %s has no OPF", o)
			}
			kc := keptChildren[o]
			w, err := survivalUpdate(opf, kc, matched, eps)
			if err != nil {
				return nil, err
			}
			if o == pi.Root() {
				// The root keeps its ∅ mass unnormalized: ω'(r)(∅) is the
				// probability that a compatible instance has no match.
				newOPF[o] = w
				eps[o] = 1 - w.Prob(nil)
				continue
			}
			e := 1 - w.Prob(nil)
			eps[o] = e
			if e <= 0 {
				// o can never retain a surviving child; it will be
				// stripped below via its parent's support.
				continue
			}
			w.Put(sets.NewSet(), 0)
			if err := w.Normalize(); err != nil {
				return nil, fmt.Errorf("algebra: normalizing ℘'(%s): %w", o, err)
			}
			newOPF[o] = w
		}
	}
	sw.lap(&sink.Update)

	// Structure (final): strip objects that no surviving support set ever
	// contains, then emit the result instance with updated card.
	out := core.NewProbInstance(pi.Root())
	for _, t := range pi.Types() {
		// Error impossible: types were valid in the input.
		_ = out.RegisterType(t)
	}
	rootOPF := newOPF[pi.Root()]
	if rootOPF == nil || 1-rootOPF.Prob(nil) <= 0 {
		sw.lap(&sink.Structure)
		return bareRoot(pi), nil
	}
	type frame struct{ o model.ObjectID }
	stack := []frame{{pi.Root()}}
	visited := map[model.ObjectID]bool{pi.Root(): true}
	for len(stack) > 0 {
		o := stack[len(stack)-1].o
		stack = stack[:len(stack)-1]
		if matched[o] {
			// Matched objects are leaves of the result; keep their leaf
			// type and VPF when they had one.
			if t, ok := pi.TypeOf(o); ok {
				// Errors impossible: type registered above, value valid.
				_ = out.SetLeafType(o, t.Name)
				if v := pi.VPF(o); v != nil {
					out.SetVPF(o, v.Clone())
				}
			}
			continue
		}
		w := newOPF[o]
		if w == nil {
			continue
		}
		// Children with positive marginal in the new OPF survive.
		marg := make(map[model.ObjectID]float64)
		w.Each(func(c sets.Set, pr float64) {
			if pr <= 0 {
				return
			}
			for _, ch := range c {
				marg[ch] += pr
			}
		})
		perLabel := make(map[model.Label][]model.ObjectID)
		for _, ch := range keptChildren[o] {
			if marg[ch] <= 0 {
				continue
			}
			l, ok := pi.LabelOf(o, ch)
			if !ok {
				return nil, fmt.Errorf("algebra: kept child %s of %s has no label", ch, o)
			}
			perLabel[l] = append(perLabel[l], ch)
			if !visited[ch] {
				visited[ch] = true
				stack = append(stack, frame{ch})
			}
		}
		if len(perLabel) == 0 {
			continue
		}
		for l, cs := range perLabel {
			out.SetLCh(o, l, cs...)
			lo, hi := cardBounds(w, pi, o, l)
			out.SetCard(o, l, lo, hi)
		}
		out.SetOPF(o, w)
	}
	// If stripping removed every root child, collapse to the bare root.
	if out.IsLeaf(out.Root()) {
		sw.lap(&sink.Structure)
		return bareRoot(pi), nil
	}
	sw.lap(&sink.Structure)
	return out, nil
}

// survivalUpdate computes the Section 6.1 update for one object: for each
// original OPF entry c, distribute its probability over the subsets of the
// kept children in c that may survive, weighting by Π ε_j for survivors and
// Π (1−ε_j) for kept non-survivors (dropped children marginalize away
// implicitly). Matched children survive surely (ε = 1).
func survivalUpdate(opf *prob.OPF, kept []model.ObjectID, matched map[model.ObjectID]bool, eps map[model.ObjectID]float64) (*prob.OPF, error) {
	keptSet := make(map[model.ObjectID]float64, len(kept))
	for _, c := range kept {
		if matched[c] {
			keptSet[c] = 1
		} else {
			keptSet[c] = eps[c]
		}
	}
	out := prob.NewOPF()
	var badFanout error
	opf.Each(func(c sets.Set, p float64) {
		if p <= 0 || badFanout != nil {
			return
		}
		// Partition the entry's kept children into sure survivors (ε = 1)
		// and uncertain ones; enumerate survivor subsets of the latter.
		var sure, unsure []model.ObjectID
		var unsureEps []float64
		for _, ch := range c {
			e, ok := keptSet[ch]
			if !ok || e <= 0 {
				continue // dropped or dead child: marginalized away
			}
			if e >= 1 {
				sure = append(sure, ch)
			} else {
				unsure = append(unsure, ch)
				unsureEps = append(unsureEps, e)
			}
		}
		k := len(unsure)
		if k > maxSurvivalFanout {
			badFanout = fmt.Errorf("algebra: survival fanout 2^%d exceeds limit", k)
			return
		}
		for mask := 0; mask < 1<<k; mask++ {
			weight := p
			// Build the survivor set in sorted order: sure and unsure are
			// both drawn from the sorted entry, so a linear merge keeps
			// canonical order without re-sorting.
			survivors := make([]string, 0, len(sure)+k)
			si := 0
			for i := 0; i < k; i++ {
				in := mask&(1<<i) != 0
				if in {
					weight *= unsureEps[i]
					for si < len(sure) && sure[si] < unsure[i] {
						survivors = append(survivors, sure[si])
						si++
					}
					survivors = append(survivors, unsure[i])
				} else {
					weight *= 1 - unsureEps[i]
				}
			}
			survivors = append(survivors, sure[si:]...)
			if weight <= 0 {
				continue
			}
			out.Add(sets.Set(survivors), weight)
		}
	})
	if badFanout != nil {
		return nil, badFanout
	}
	return out, nil
}

// cardBounds computes the updated cardinality of label l at object o: the
// min and max count of l-labeled children over the support of the new OPF
// (the Section 6.1 card′ formulas).
func cardBounds(w *prob.OPF, pi *core.ProbInstance, o model.ObjectID, l model.Label) (int, int) {
	lo, hi := -1, 0
	w.Each(func(c sets.Set, pr float64) {
		if pr <= 0 {
			return
		}
		n := 0
		for _, ch := range c {
			if cl, ok := pi.LabelOf(o, ch); ok && cl == l {
				n++
			}
		}
		if lo == -1 || n < lo {
			lo = n
		}
		if n > hi {
			hi = n
		}
	})
	if lo == -1 {
		lo = 0
	}
	return lo, hi
}

// bareRoot returns the root-only probabilistic instance that an empty
// projection yields: the root becomes a (untyped) leaf with no local
// probability function, representing the certain result.
func bareRoot(pi *core.ProbInstance) *core.ProbInstance {
	out := core.NewProbInstance(pi.Root())
	for _, t := range pi.Types() {
		_ = out.RegisterType(t)
	}
	return out
}

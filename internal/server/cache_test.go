package server

// Result-cache suite: the server memoizes scalar query answers keyed by
// (instance version, statement), so the properties that matter are
// invalidation — a Put or Delete must make stale answers unreachable
// immediately — and transparency — a cached answer must be byte-identical
// to a fresh evaluation, under any interleaving of mutations and queries,
// and even when the backing store has degraded to read-only.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"testing"

	"pxml/internal/core"
	"pxml/internal/engine"
	"pxml/internal/fixtures"
	"pxml/internal/model"
	"pxml/internal/prob"
	"pxml/internal/sets"
	"pxml/internal/store"
	"pxml/internal/vfs"
)

// cacheStmts are scalar statements (no instance-valued results), so every
// one of them is eligible for the result cache. They include tree-only
// fast paths (VAL, COUNT, MARGINALS), so the fixtures below are trees.
var cacheStmts = []string{
	"PROB OBJECT A1",
	"PROB EXISTS R.book.author",
	"PROB VAL(R.book.title) = VQDB",
	"PROB R.book = B1",
	"COUNT R.book.author",
	"STATS",
	"MARGINALS",
}

// treeBib builds a tree-shaped bibliography whose T1 value distribution
// puts vqdbP on "VQDB" — two different vqdbP values give two instances
// whose cached answers must never be confused.
func treeBib(t *testing.T, vqdbP float64) *core.ProbInstance {
	t.Helper()
	pi := core.NewProbInstance("R")
	if err := pi.RegisterType(model.NewType("title-type", "VQDB", "Lore")); err != nil {
		t.Fatal(err)
	}
	pi.SetLCh("R", "book", "B1", "B2")
	w := prob.NewOPF()
	w.Put(sets.NewSet("B1"), 0.3)
	w.Put(sets.NewSet("B2"), 0.2)
	w.Put(sets.NewSet("B1", "B2"), 0.5)
	pi.SetOPF("R", w)
	pi.SetLCh("B1", "author", "A1")
	pi.SetLCh("B1", "title", "T1")
	w1 := prob.NewOPF()
	w1.Put(sets.NewSet(), 0.1)
	w1.Put(sets.NewSet("A1"), 0.3)
	w1.Put(sets.NewSet("T1"), 0.2)
	w1.Put(sets.NewSet("A1", "T1"), 0.4)
	pi.SetOPF("B1", w1)
	pi.SetLCh("B2", "author", "A2")
	w2 := prob.NewOPF()
	w2.Put(sets.NewSet("A2"), 1)
	pi.SetOPF("B2", w2)
	if err := pi.SetLeafType("T1", "title-type"); err != nil {
		t.Fatal(err)
	}
	v := prob.NewVPF()
	v.Put("VQDB", vqdbP)
	v.Put("Lore", 1-vqdbP)
	pi.SetVPF("T1", v)
	if err := pi.Validate(); err != nil {
		t.Fatal(err)
	}
	return pi
}

// runJSON executes one statement and returns the marshaled result, so
// tests compare answers byte-for-byte rather than field-by-field.
func runJSON(t *testing.T, eng *engine.Engine, stmt string) []byte {
	t.Helper()
	res, err := eng.Run(context.Background(), stmt)
	if err != nil {
		t.Fatalf("%s: %v", stmt, err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}

func TestResultCacheInvalidationOnPut(t *testing.T) {
	s := MustNew(Config{})
	fig := treeBib(t, 0.6)
	varied := treeBib(t, 0.9)
	if err := s.Put("x", fig); err != nil {
		t.Fatal(err)
	}
	const stmt = "PROB VAL(R.book.title) = VQDB" // answer differs between the two fixtures
	eng, _ := s.Engine("x")
	first := runJSON(t, eng, stmt)
	if again := runJSON(t, eng, stmt); !bytes.Equal(first, again) {
		t.Fatalf("cached answer diverged: %s vs %s", first, again)
	}

	if err := s.Put("x", varied); err != nil {
		t.Fatal(err)
	}
	eng2, _ := s.Engine("x")
	got := runJSON(t, eng2, stmt)
	want := runJSON(t, engine.New(varied), stmt)
	if !bytes.Equal(got, want) {
		t.Fatalf("after Put: got %s, want fresh %s", got, want)
	}
	if bytes.Equal(got, first) {
		t.Fatalf("stale answer served after Put: %s", got)
	}
}

func TestResultCacheInvalidationOnDelete(t *testing.T) {
	s := MustNew(Config{})
	fig := treeBib(t, 0.6)
	varied := treeBib(t, 0.9)
	if err := s.Put("x", fig); err != nil {
		t.Fatal(err)
	}
	const stmt = "PROB VAL(R.book.title) = VQDB"
	eng, _ := s.Engine("x")
	stale := runJSON(t, eng, stmt)

	if ok, err := s.Delete("x"); !ok || err != nil {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	if _, ok := s.Engine("x"); ok {
		t.Fatal("engine survived Delete")
	}
	if err := s.Put("x", varied); err != nil {
		t.Fatal(err)
	}
	eng2, _ := s.Engine("x")
	got := runJSON(t, eng2, stmt)
	want := runJSON(t, engine.New(varied), stmt)
	if !bytes.Equal(got, want) {
		t.Fatalf("after Delete+Put: got %s, want %s", got, want)
	}
	if bytes.Equal(got, stale) {
		t.Fatalf("stale answer served after Delete+Put: %s", got)
	}
}

func TestResultCacheServesDegradedStore(t *testing.T) {
	ffs := vfs.NewFaultFS(nil)
	s, _, err := NewWithStore(t.TempDir(), store.Options{Fsync: store.FsyncAlways, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fig := fixtures.Figure2()
	if err := s.Put("bib", fig); err != nil {
		t.Fatal(err)
	}
	const stmt = "PROB OBJECT A1"
	eng, _ := s.Engine("bib")
	before := runJSON(t, eng, stmt)

	// Degrade the store: writes fail, the served catalog must not change,
	// and queries keep answering — from cache where possible.
	ffs.FailAll(vfs.OpSync, "wal")
	if err := s.Put("bib", fixtures.Figure2VariedLeaves()); !errors.Is(err, store.ErrDegraded) {
		t.Fatalf("Put on degraded store = %v, want ErrDegraded", err)
	}
	eng2, _ := s.Engine("bib")
	if eng2 != eng {
		t.Fatal("rejected Put replaced the engine")
	}
	hitsBefore := eng.Metrics()["result_cache_hits"].(int64)
	after := runJSON(t, eng, stmt)
	if !bytes.Equal(before, after) {
		t.Fatalf("degraded store changed a query answer: %s vs %s", before, after)
	}
	if hits := eng.Metrics()["result_cache_hits"].(int64); hits <= hitsBefore {
		t.Fatalf("query on degraded store missed the cache (hits %d -> %d)", hitsBefore, hits)
	}
	if !bytes.Equal(after, runJSON(t, engine.New(fig), stmt)) {
		t.Fatal("cached answer diverged from fresh evaluation")
	}
}

// TestResultCacheRandomizedInterleaving drives a random sequence of
// Put/query/Delete operations and checks, at every query, that the
// (possibly cached) answer is byte-identical to a fresh, uncached
// evaluation against the instance currently installed.
func TestResultCacheRandomizedInterleaving(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	s := MustNew(Config{})
	instances := []*core.ProbInstance{treeBib(t, 0.6), treeBib(t, 0.9)}
	var cur *core.ProbInstance
	queries := 0
	for i := 0; i < 300; i++ {
		switch op := r.Intn(10); {
		case op < 2: // Put (replace or install)
			cur = instances[r.Intn(len(instances))]
			if err := s.Put("x", cur); err != nil {
				t.Fatal(err)
			}
		case op == 2: // Delete
			if _, err := s.Delete("x"); err != nil {
				t.Fatal(err)
			}
			cur = nil
		default: // Query
			if cur == nil {
				continue
			}
			eng, ok := s.Engine("x")
			if !ok {
				t.Fatal("instance missing")
			}
			stmt := cacheStmts[r.Intn(len(cacheStmts))]
			got := runJSON(t, eng, stmt)
			want := runJSON(t, engine.New(cur), stmt)
			if !bytes.Equal(got, want) {
				t.Fatalf("step %d: %s: cached %s != fresh %s", i, stmt, got, want)
			}
			queries++
		}
	}
	if queries < 100 {
		t.Fatalf("only %d queries exercised; interleaving too thin", queries)
	}
}

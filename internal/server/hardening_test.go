package server

// Hardening and degraded-mode coverage: health probes, panic recovery,
// the in-flight limiter, per-request deadlines, and the acceptance
// scenario from the fault-tolerance issue — with every fsync failing,
// the handler stack keeps serving reads and queries, writes answer 503,
// and /readyz reports the degradation.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pxml/internal/fixtures"
	"pxml/internal/store"
	"pxml/internal/vfs"
)

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, string(body)
}

func TestHealthzAndReadyz(t *testing.T) {
	s, ts := newTestServer(t)

	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"ok"`) {
		t.Fatalf("healthz = %d %q", resp.StatusCode, body)
	}
	var health map[string]any
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatal(err)
	}
	if _, ok := health["uptime_s"].(float64); !ok {
		t.Fatalf("healthz missing uptime_s: %q", body)
	}

	if resp, body = get(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusOK || !strings.Contains(body, `"ready"`) {
		t.Fatalf("readyz = %d %q", resp.StatusCode, body)
	}

	s.SetDraining(true)
	if resp, body = get(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, `"draining"`) {
		t.Fatalf("draining readyz = %d %q", resp.StatusCode, body)
	}
	// Liveness is unaffected by draining.
	if resp, _ = get(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining = %d", resp.StatusCode)
	}
	s.SetDraining(false)
	if resp, _ = get(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz after drain cleared = %d", resp.StatusCode)
	}
}

// TestDegradedStoreKeepsServingReads is the issue's acceptance scenario:
// every fsync fails, yet the service stays up read-only.
func TestDegradedStoreKeepsServingReads(t *testing.T) {
	ffs := vfs.NewFaultFS(nil)
	s, _, err := NewWithStore(t.TempDir(), store.Options{Fsync: store.FsyncAlways, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	putInstance := func(name string) *http.Response {
		req, _ := http.NewRequest(http.MethodPut, ts.URL+"/instances/"+name, strings.NewReader(figure2Text(t)))
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	if resp := putInstance("bib"); resp.StatusCode != http.StatusCreated {
		t.Fatalf("healthy PUT = %d", resp.StatusCode)
	}

	// The disk dies: every subsequent fsync fails.
	ffs.FailAll(vfs.OpSync, "")

	// The write that trips the failure and every write after it: 503.
	if resp := putInstance("doomed"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degrading PUT = %d, want 503", resp.StatusCode)
	}
	if resp := putInstance("also-doomed"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("PUT on degraded store = %d, want 503", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/instances/bib", nil)
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("DELETE on degraded store = %d, want 503", resp.StatusCode)
	}

	// Reads and queries keep serving from memory.
	if resp, _ := get(t, ts.URL+"/instances/bib"); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET on degraded store = %d, want 200", resp.StatusCode)
	}
	qresp, err := client.Post(ts.URL+"/instances/bib/query", "text/plain",
		strings.NewReader("PROB EXISTS R.book"))
	if err != nil {
		t.Fatal(err)
	}
	qbody, _ := io.ReadAll(qresp.Body)
	qresp.Body.Close()
	if qresp.StatusCode != http.StatusOK {
		t.Fatalf("query on degraded store = %d %s, want 200", qresp.StatusCode, qbody)
	}

	// Probes: alive, not ready, reason surfaced.
	if resp, _ := get(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz on degraded store = %d", resp.StatusCode)
	}
	resp2, body := get(t, ts.URL+"/readyz")
	if resp2.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, `"degraded"`) {
		t.Fatalf("readyz on degraded store = %d %q", resp2.StatusCode, body)
	}

	// /metrics carries the health section and the degraded gauge.
	_, mbody := get(t, ts.URL+"/metrics")
	var m struct {
		Server map[string]any `json:"server"`
		Store  struct {
			Health store.Health `json:"health"`
		} `json:"store"`
	}
	if err := json.Unmarshal([]byte(mbody), &m); err != nil {
		t.Fatal(err)
	}
	if !m.Store.Health.Degraded || m.Store.Health.Reason == "" {
		t.Fatalf("metrics health = %+v, want degraded with reason", m.Store.Health)
	}
	if got := m.Server["store_degraded"].(float64); got != 1 {
		t.Fatalf("store_degraded gauge = %v, want 1", got)
	}
}

func TestInflightLimiterSheds(t *testing.T) {
	s := MustNew(Config{})
	s.SetMaxInflight(1)
	entered := make(chan struct{})
	release := make(chan struct{})
	var enteredOnce sync.Once
	h := s.limitInflight(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		enteredOnce.Do(func() { close(entered) })
		<-release
		w.WriteHeader(http.StatusOK)
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()

	errc := make(chan error, 1)
	go func() {
		resp, err := http.Get(ts.URL)
		if resp != nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	<-entered

	// The slot is taken: the next request is shed, not queued.
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("429 missing Retry-After (body %q)", body)
	}
	if got := s.reg.Counter("http_shed").Value(); got != 1 {
		t.Fatalf("http_shed = %d, want 1", got)
	}

	close(release)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	// Slot free again: requests pass.
	resp, err = http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after release = %d, want 200", resp.StatusCode)
	}
}

func TestHealthProbesBypassLimiter(t *testing.T) {
	s, _ := newTestServer(t)
	s.SetMaxInflight(1)
	entered := make(chan struct{})
	release := make(chan struct{})

	// Rebuild the handler with a hook occupying the API slot.
	api := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
	})
	root := http.NewServeMux()
	root.HandleFunc("GET /healthz", s.handleHealthz)
	root.HandleFunc("GET /readyz", s.handleReadyz)
	root.Handle("/", s.limitInflight(api))
	ts := httptest.NewServer(root)
	defer ts.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Get(ts.URL + "/instances")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered
	if resp, _ := get(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz under saturation = %d, want 200", resp.StatusCode)
	}
	if resp, _ := get(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz under saturation = %d, want 200", resp.StatusCode)
	}
	// Unblock the parked request before ts.Close waits on it.
	close(release)
	<-done
}

func TestPanicRecovery(t *testing.T) {
	s := MustNew(Config{})
	h := s.instrument(s.recoverPanics(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	})))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/instances", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler = %d, want 500", rec.Code)
	}
	var body struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body.Error.Code != "internal" || body.Error.Message == "" {
		t.Fatalf("panic response body = %q, %v; want v1 error envelope", rec.Body.String(), err)
	}
	if got := s.reg.Counter("http_panics").Value(); got != 1 {
		t.Fatalf("http_panics = %d, want 1", got)
	}
	// The server keeps serving after the panic.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/instances", nil))
	if got := s.reg.Counter("http_panics").Value(); got != 2 {
		t.Fatalf("http_panics after second panic = %d, want 2", got)
	}
}

func TestRequestDeadlineAnswers503(t *testing.T) {
	s, ts := newTestServer(t)
	if err := s.Put("fig", fixtures.Figure2()); err != nil {
		t.Fatal(err)
	}
	s.SetRequestTimeout(time.Nanosecond) // expires before the engine runs
	ts.Close()
	ts2 := httptest.NewServer(s.Handler())
	defer ts2.Close()

	resp, err := http.Post(ts2.URL+"/instances/fig/query", "text/plain",
		strings.NewReader("PROB EXISTS R.book"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("expired-deadline query = %d %s, want 503", resp.StatusCode, body)
	}
}

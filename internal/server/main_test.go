package server

import (
	"fmt"
	"net/http"
	"os"
	"runtime"
	"testing"
	"time"
)

// TestMain fails the package if tests leak goroutines: every server
// started here is shut down by its cleanup, so after the run (plus idle
// HTTP connections closed and a settle window for runtime bookkeeping)
// the goroutine count must return to near its baseline. This is the
// regression net for governor work — a cancelled or shed query that
// leaves its evaluation goroutine running would show up here.
func TestMain(m *testing.M) {
	baseline := runtime.NumGoroutine()
	code := m.Run()
	http.DefaultClient.CloseIdleConnections()
	if code == 0 {
		// Allow modest slack: the HTTP transport and testing machinery
		// keep a few goroutines alive legitimately.
		const slack = 5
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > baseline+slack {
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				fmt.Fprintf(os.Stderr, "goroutine leak: %d at start, %d after tests\n%s\n",
					baseline, runtime.NumGoroutine(), buf[:n])
				code = 1
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	os.Exit(code)
}

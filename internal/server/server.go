// Package server exposes a catalog of named probabilistic instances over
// HTTP, turning the PXML library into a small probabilistic
// semistructured database service:
//
//	GET    /instances                 list instances with summary stats
//	PUT    /instances/{name}          store an instance (text or JSON body)
//	GET    /instances/{name}          fetch an instance (Accept: application/json for JSON)
//	DELETE /instances/{name}          drop an instance
//	GET    /instances/{name}/dot      Graphviz rendering of the weak graph
//	POST   /instances/{name}/query    execute one pxql statement (text body);
//	                                  ?store=<new> keeps an instance-valued
//	                                  result in the catalog under that name
//	POST   /instances/{name}/batch    execute many statements (one per line)
//	                                  concurrently over the engine's pool
//	GET    /metrics                   JSON snapshot: server counters plus
//	                                  per-instance engine metrics
//	POST   /admin/backup              cut an online backup of the durable
//	                                  store into a subdirectory of the
//	                                  configured backup root (403 until
//	                                  SetBackupRoot / pxmld -backup-dir)
//	POST   /admin/scrub               synchronous checksum scrub of the
//	                                  store's at-rest files
//	GET    /healthz                   liveness: 200 while the process runs
//	GET    /readyz                    readiness: 503 while draining or the
//	                                  store is degraded
//
// Query responses are JSON: {"text": ..., "prob": ..., "stored": ...}.
// Errors are structured JSON: {"error": ...} with the matching status code
// (400 malformed, 404 unknown, 413 oversized body, 422 invalid instance or
// failing statement, 429 shed under overload with Retry-After, 503 for
// expired request deadlines and writes against a degraded store).
//
// The handler stack is hardened for production traffic: a panic in any
// handler is recovered to a 500 (and counted), SetRequestTimeout bounds
// each request with a context deadline, and SetMaxInflight sheds excess
// concurrent requests with 429 + Retry-After instead of queueing without
// bound. Health probes bypass the limiter so liveness checks still answer
// under overload. When the backing store degrades (unrecoverable disk
// errors), writes fail fast with 503 while reads and queries keep serving
// from memory — the catalog never silently diverges from disk.
//
// Each stored instance is wrapped in an engine.Engine, so repeated queries
// against the same instance reuse its cached path index, compiled Bayesian
// network, and marginals, and every request is counted in that engine's
// metrics. The catalog is safe for concurrent use; instances are immutable
// once stored (queries never mutate their input — algebra results are
// fresh instances).
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pxml/internal/admission"
	"pxml/internal/apiv1"
	"pxml/internal/codec"
	"pxml/internal/core"
	"pxml/internal/dot"
	"pxml/internal/engine"
	"pxml/internal/govern"
	"pxml/internal/metrics"
	"pxml/internal/pxql"
	"pxml/internal/repl"
	"pxml/internal/rescache"
	"pxml/internal/store"
	"pxml/internal/telemetry"
)

// defaultMaxBody bounds instance-upload bodies unless SetMaxBody overrides.
const defaultMaxBody = 64 << 20

// defaultResultCacheBytes bounds the shared query-result cache.
const defaultResultCacheBytes = 32 << 20

// maxStatementBytes bounds a single pxql statement (or batch) body.
const maxStatementBytes = 1 << 20

// Server is a concurrency-safe catalog of named query engines, optionally
// backed by the durable storage engine (see NewPersistent) or, for the
// legacy layout, by a directory of flat text files (NewPersistentFiles).
type Server struct {
	mu sync.RWMutex
	// engines is the published engine registry: an immutable map behind
	// an atomic pointer, mirroring the store's MVCC catalog. Readers
	// (Engine, Get, request handlers) load it with one pointer read and
	// no lock; writers build a copy-on-write successor under s.mu and
	// publish it atomically (see mutateEnginesLocked). Store-backed
	// servers build engines on demand: a name missing here but live in
	// the store materializes through Engine's slow path.
	engines    atomic.Pointer[map[string]*engine.Engine]
	store      *store.Store // log-structured persistence; nil unless NewPersistent/NewWithStore
	dir        string       // legacy flat-file persistence; "" unless NewPersistentFiles
	backupRoot string       // /admin/backup destination root; "" = endpoint disabled
	maxBody    int64
	log        *slog.Logger

	// results memoizes scalar query answers across all instances; version
	// feeds each engine's cache-key prefix so entries for a replaced
	// instance become unreachable the moment Put installs the new engine.
	results      *rescache.Cache
	version      atomic.Uint64
	queryWorkers int // batch worker bound per engine; 0 = engine default

	started    time.Time
	draining   atomic.Bool
	reqTimeout time.Duration // per-request deadline; 0 = none
	sem        chan struct{} // in-flight limiter; nil = unlimited

	reg      *metrics.Registry
	requests *metrics.Counter
	errors   *metrics.Counter
	shed     *metrics.Counter
	panics   *metrics.Counter
	inflight *metrics.Gauge
	latency  *metrics.Histogram

	// Runaway-query protection: budget is the per-query resource
	// envelope every engine enforces; breaker sheds statement shapes
	// that repeatedly trip it (nil = disabled).
	budget      govern.Budget
	breaker     *govern.Breaker
	qBudget     *metrics.Counter // query_budget_exceeded
	qIntract    *metrics.Counter // query_intractable
	qCancel     *metrics.Counter // query_cancelled
	qPanic      *metrics.Counter // query_panics
	breakerShed *metrics.Counter // breaker_shed

	adm    *admission.Controller // per-tenant admission; nil = admit all
	exp    *telemetry.Exporter   // statsd push loop; nil unless configured
	expCfg telemetry.Config      // for the /v1/metrics telemetry section
	report *store.RecoveryReport // crash-recovery report from Config.StoreDir

	adminToken string                        // bearer token over /v1/admin/* and /v1/repl/*; "" = open
	follower   atomic.Pointer[followerState] // replication machinery; nil unless following (promotion retires it live)

	// Failover state (see failover.go). cfg keeps the construction-time
	// config so a rolled-back promotion can rebuild the follower loop.
	cfg           Config
	promoteMu     sync.Mutex // serializes PromoteSelf
	advertiseURL  string     // this node's base URL, told to peers/old leader
	peers         []string   // peer base URLs for the epoch probe
	outboundToken string     // bearer for outbound probe/demote calls
	probeInterval time.Duration
	proberMu      sync.Mutex
	proberCancel  context.CancelFunc
	proberDone    chan struct{}
}

// Config collects every construction-time knob in one validated place,
// replacing the former grow-a-setter surface. The zero value is a fully
// working in-memory server: defaults are applied by New, and invalid
// combinations (negative limits, unusable quotas, a bad telemetry
// address) are rejected there rather than surfacing as misbehavior at
// serve time.
type Config struct {
	// StoreDir enables the durable log-structured store in this
	// directory (see NewPersistent for recovery semantics).
	StoreDir string
	// StoreOptions tunes the durable store; only read with StoreDir.
	// Its Registry is overridden with the server's own.
	StoreOptions store.Options
	// FilesDir enables the legacy flat-file persistence layout instead.
	// Mutually exclusive with StoreDir.
	FilesDir string

	// Logger enables structured request/lifecycle logging; nil disables.
	Logger *slog.Logger
	// MaxBody bounds instance-upload bodies in bytes; 0 means 64 MiB.
	MaxBody int64
	// RequestTimeout bounds each API request with a context deadline;
	// 0 disables.
	RequestTimeout time.Duration
	// MaxInflight caps concurrently served API requests; excess sheds
	// with 429. 0 disables. Also the capacity the admission tier's
	// fairness divides.
	MaxInflight int
	// QueryWorkers bounds each engine's batch pool; 0 = engine default.
	QueryWorkers int

	// QueryDeadline bounds one statement's evaluation wall clock inside
	// the engines (independent of RequestTimeout, which covers the whole
	// HTTP exchange); 0 disables.
	QueryDeadline time.Duration
	// QueryMaxNodes bounds the cooperative work units (objects visited,
	// OPF entries scanned, factor cells filled, worlds sampled) one
	// statement may spend; 0 disables. Statements whose upfront cost
	// estimate provably exceeds it are refused before allocating.
	QueryMaxNodes int64
	// QueryMaxBytes bounds the approximate bytes one statement may
	// allocate for inference state (factor tables); 0 disables.
	QueryMaxBytes int64
	// BreakerThreshold arms the per-statement-shape circuit breaker:
	// after this many consecutive budget trips of one shape, further
	// statements of that shape shed with 503 breaker_open until the
	// cooldown passes; 0 disables.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects before probing
	// again (0 = 10s). Read only with BreakerThreshold > 0.
	BreakerCooldown time.Duration
	// BreakerProbes is how many concurrent trial statements a half-open
	// breaker admits, and how many must succeed to reclose (0 = 1).
	BreakerProbes int
	// BackupRoot enables POST /v1/admin/backup confined to this root.
	BackupRoot string
	// ResultCacheBytes bounds the shared query-result cache; 0 = 32 MiB.
	ResultCacheBytes int64

	// DefaultQuota applies to every tenant (instance name) without an
	// entry in TenantQuotas. Zero = unlimited.
	DefaultQuota admission.Quota
	// TenantQuotas maps instance names to per-tenant quotas.
	TenantQuotas map[string]admission.Quota
	// OverloadFraction is the inflight utilisation above which weighted
	// fair admission engages; 0 = admission default (0.75).
	OverloadFraction float64

	// StatsdAddr enables the telemetry push loop to this host:port.
	StatsdAddr string
	// StatsdNetwork is "udp" (default) or "tcp".
	StatsdNetwork string
	// StatsdInterval is the flush period; 0 = 10s.
	StatsdInterval time.Duration
	// StatsdPrefix namespaces exported metric names; "" = "pxmld".
	StatsdPrefix string

	// AdminToken, when non-empty, gates /v1/admin/* and /v1/repl/*
	// behind "Authorization: Bearer <token>" (401 otherwise). The
	// replication surface exposes the entire WAL, so set this on any
	// leader reachable beyond its own replicas.
	AdminToken string
	// FollowLeader runs this server as a read replica of the leader at
	// this base URL (e.g. "http://leader:8080"): the store opens in
	// follower mode (local writes 307-route to the leader), a background
	// puller replays the leader's WAL stream, and /readyz gates on
	// replication staleness. Requires StoreDir.
	FollowLeader string
	// FollowToken is the bearer token presented to the leader's
	// replication endpoints (matching the leader's AdminToken).
	FollowToken string
	// ReplMaxStaleness is how stale a follower may get before /readyz
	// flips not-ready; 0 means 10s. Ignored unless FollowLeader is set.
	ReplMaxStaleness time.Duration
	// ReplPollWait is the long-poll duration the follower requests from
	// the leader's stream (0 means 2s). A caught-up follower's freshness
	// reading is only confirmed once per poll, so keep this comfortably
	// below ReplMaxStaleness. Ignored unless FollowLeader is set.
	ReplPollWait time.Duration

	// AdvertiseURL is this node's own base URL as peers should reach it
	// (e.g. "http://10.0.0.2:8080"). A promoted leader hands it to the
	// demoted one and to probing peers so their write redirects land
	// here. Optional; without it a fenced old leader rejects writes
	// instead of redirecting them.
	AdvertiseURL string
	// Peers lists the other cluster nodes' base URLs for the epoch
	// probe. A node that starts as (or becomes) leader asks each peer
	// for its epoch — once before serving any write, then every
	// ProbeInterval — and fences itself if any peer has seen a higher
	// one. This is what stops a rebooted old leader from accepting
	// writes into a superseded era.
	Peers []string
	// FailoverPriority, when >= 1, arms the failover monitor on this
	// follower: after the leader has been silent for
	// FailoverSilence×priority, the node promotes itself (force
	// semantics). Lower numbers act first; 0 disables. Requires
	// FollowLeader.
	FailoverPriority int
	// FailoverSilence is one leader-silence window for the monitor
	// (0 means 15s).
	FailoverSilence time.Duration
	// ProbeInterval paces the periodic peer epoch probe on a leader
	// (0 means 5s). Ignored without Peers.
	ProbeInterval time.Duration
}

// New builds a server from cfg, applying defaults and validating the
// rest. The telemetry flush loop (if configured) starts immediately;
// Close stops it.
func New(cfg Config) (*Server, error) {
	if cfg.StoreDir != "" && cfg.FilesDir != "" {
		return nil, fmt.Errorf("server: StoreDir and FilesDir are mutually exclusive")
	}
	if cfg.FollowLeader != "" && cfg.StoreDir == "" {
		return nil, fmt.Errorf("server: FollowLeader requires StoreDir (the replica's WAL mirror)")
	}
	if cfg.FailoverPriority < 0 {
		return nil, fmt.Errorf("server: FailoverPriority must be >= 0")
	}
	if cfg.FailoverPriority > 0 && cfg.FollowLeader == "" {
		return nil, fmt.Errorf("server: FailoverPriority requires FollowLeader (only a follower can be a failover candidate)")
	}
	if cfg.QueryDeadline < 0 || cfg.QueryMaxNodes < 0 || cfg.QueryMaxBytes < 0 {
		return nil, fmt.Errorf("server: query budget limits must be >= 0 (0 disables)")
	}
	if cfg.BreakerThreshold < 0 || cfg.BreakerCooldown < 0 || cfg.BreakerProbes < 0 {
		return nil, fmt.Errorf("server: breaker settings must be >= 0 (0 disables/defaults)")
	}
	maxBody := cfg.MaxBody
	if maxBody <= 0 {
		maxBody = defaultMaxBody
	}
	cacheBytes := cfg.ResultCacheBytes
	if cacheBytes <= 0 {
		cacheBytes = defaultResultCacheBytes
	}
	s := &Server{
		maxBody:    maxBody,
		backupRoot: cfg.BackupRoot,
		log:        cfg.Logger,
		started:    time.Now(),
		reg:        metrics.NewRegistry(),
		results:    rescache.New(cacheBytes),
	}
	em := make(map[string]*engine.Engine)
	s.engines.Store(&em)
	s.requests = s.reg.Counter("http_requests")
	s.errors = s.reg.Counter("http_errors")
	s.shed = s.reg.Counter("http_shed")
	s.panics = s.reg.Counter("http_panics")
	s.inflight = s.reg.Gauge("http_inflight")
	s.latency = s.reg.Histogram("http_latency")
	s.qBudget = s.reg.Counter("query_budget_exceeded")
	s.qIntract = s.reg.Counter("query_intractable")
	s.qCancel = s.reg.Counter("query_cancelled")
	s.qPanic = s.reg.Counter("query_panics")
	s.breakerShed = s.reg.Counter("breaker_shed")
	s.budget = govern.Budget{
		Deadline: cfg.QueryDeadline,
		MaxSteps: cfg.QueryMaxNodes,
		MaxBytes: cfg.QueryMaxBytes,
	}
	s.breaker = govern.NewBreaker(govern.BreakerConfig{
		Threshold: cfg.BreakerThreshold,
		Cooldown:  cfg.BreakerCooldown,
		Probes:    cfg.BreakerProbes,
	})
	if cfg.RequestTimeout > 0 {
		s.reqTimeout = cfg.RequestTimeout
	}
	if cfg.MaxInflight > 0 {
		s.sem = make(chan struct{}, cfg.MaxInflight)
	}
	if cfg.QueryWorkers > 0 {
		s.queryWorkers = cfg.QueryWorkers
	}

	adm, err := admission.New(admission.Config{
		Default:          cfg.DefaultQuota,
		Tenants:          cfg.TenantQuotas,
		InflightLimit:    cfg.MaxInflight,
		OverloadFraction: cfg.OverloadFraction,
		Registry:         s.reg,
	})
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	s.adm = adm

	if cfg.StatsdAddr != "" {
		s.expCfg = telemetry.Config{
			Addr:     cfg.StatsdAddr,
			Network:  cfg.StatsdNetwork,
			Interval: cfg.StatsdInterval,
			Prefix:   cfg.StatsdPrefix,
			Registry: s.reg,
			Logger:   cfg.Logger,
			Sample:   func() { metrics.SampleRuntime(s.reg) },
		}
		exp, err := telemetry.New(s.expCfg)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		s.exp = exp
	}

	s.adminToken = cfg.AdminToken
	s.cfg = cfg
	s.advertiseURL = strings.TrimSuffix(cfg.AdvertiseURL, "/")
	s.peers = cfg.Peers
	s.probeInterval = cfg.ProbeInterval
	// Outbound probe/demote calls authenticate with the follow token
	// when one is set (homogeneous clusters share one bearer), falling
	// back to this node's own admin token.
	s.outboundToken = cfg.FollowToken
	if s.outboundToken == "" {
		s.outboundToken = cfg.AdminToken
	}

	switch {
	case cfg.StoreDir != "":
		opts := cfg.StoreOptions
		if opts.Registry == nil {
			opts.Registry = s.reg
		}
		if cfg.FollowLeader != "" {
			// A replica's WAL is a byte mirror of its leader's; the store
			// rejects local writes and rotates only on the leader's cue.
			opts.Follower = true
		} else {
			// Leaders stamp each group commit with wall-clock time so
			// followers can report staleness, not just byte lag.
			opts.Stamps = true
		}
		st, report, err := store.Open(cfg.StoreDir, opts)
		if err != nil {
			return nil, fmt.Errorf("server: opening store: %w", err)
		}
		s.store = st
		s.report = report
		// Engines build lazily: Engine's slow path materializes one on a
		// name's first query. Cold open therefore costs the store's
		// frame scan, not a full decode + engine build per instance.
	case cfg.FilesDir != "":
		if err := s.loadFlatFiles(cfg.FilesDir); err != nil {
			return nil, err
		}
	}

	if cfg.FollowLeader != "" {
		if err := s.startFollower(cfg); err != nil {
			s.store.Close()
			return nil, fmt.Errorf("server: %w", err)
		}
	} else if s.store != nil && !s.store.IsFollower() && len(s.peers) > 0 {
		// Split-brain guard for restarts: before this node serves a
		// single write as leader, ask the peers whether a higher epoch
		// exists. A rebooted old leader fences here, ahead of its first
		// client. Unreachable peers are no objection (see failover.go).
		s.probePeersOnce(context.Background())
		s.startProber()
	}

	if s.exp != nil {
		s.exp.Start()
	}
	return s, nil
}

// MustNew is New for configurations known valid at compile time (tests,
// fixed defaults); it panics on error.
func MustNew(cfg Config) *Server {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// RecoveryReport returns the durable store's crash-recovery report, or
// nil when the server is not store-backed.
func (s *Server) RecoveryReport() *store.RecoveryReport { return s.report }

// SetLogger enables structured request logging through l (nil disables).
//
// Deprecated: set Config.Logger instead.
func (s *Server) SetLogger(l *slog.Logger) { s.log = l }

// SetMaxBody overrides the instance-upload size limit (bytes).
//
// Deprecated: set Config.MaxBody instead.
func (s *Server) SetMaxBody(n int64) {
	if n > 0 {
		s.maxBody = n
	}
}

// SetRequestTimeout bounds every API request with a context deadline;
// handlers that outlive it answer 503. Zero disables.
//
// Deprecated: set Config.RequestTimeout instead.
func (s *Server) SetRequestTimeout(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.reqTimeout = d
}

// SetMaxInflight caps concurrently served API requests; excess requests
// are shed immediately with 429 + Retry-After rather than queued. Health
// probes are exempt. Zero disables.
//
// Deprecated: set Config.MaxInflight instead (which also feeds the
// admission tier's fairness capacity).
func (s *Server) SetMaxInflight(n int) {
	if n > 0 {
		s.sem = make(chan struct{}, n)
	} else {
		s.sem = nil
	}
}

// SetQueryWorkers bounds each engine's batch worker pool; n < 1 selects
// GOMAXPROCS. Existing engines are rebuilt with the new bound (their
// derived-structure caches restart cold).
//
// Deprecated: set Config.QueryWorkers instead.
func (s *Server) SetQueryWorkers(n int) {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queryWorkers = n
	s.mutateEnginesLocked(func(m map[string]*engine.Engine) {
		for name, eng := range m {
			m[name] = s.newEngine(name, eng.Instance())
		}
	})
}

// QueryWorkers returns the configured per-engine batch worker bound
// (0 until SetQueryWorkers is called — the engine default applies).
func (s *Server) QueryWorkers() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.queryWorkers
}

// newEngine wraps an instance in an engine wired to the shared result
// cache under a fresh version prefix (the \x00 separator keeps any
// name/statement pair from colliding with another prefix). Callers hold
// s.mu or have exclusive access during construction.
func (s *Server) newEngine(name string, pi *core.ProbInstance) *engine.Engine {
	prefix := fmt.Sprintf("%s@%d\x00", name, s.version.Add(1))
	opts := []engine.Option{
		engine.WithResultCache(s.results, prefix),
		// Feed every statement's shape and latency into the shared
		// percentile timers, so /v1/metrics and the statsd stream report
		// p50/p95/p99 per statement shape across all instances.
		engine.WithShapeObserver(func(shape string, d time.Duration) {
			s.reg.Timer("pxql_latency." + shape).Observe(d)
		}),
		// Per-query resource envelope (zero = no limits, cancellation
		// still reaches the kernels) plus estimated-vs-actual cost
		// telemetry per statement shape.
		engine.WithBudget(s.budget),
		engine.WithCostObserver(func(shape string, estimated, actual int64) {
			if estimated > 0 {
				s.reg.IntHistogram("query_cost_est_steps." + shape).Observe(estimated)
			}
			s.reg.IntHistogram("query_cost_actual_steps." + shape).Observe(actual)
		}),
	}
	if s.queryWorkers > 0 {
		opts = append(opts, engine.WithWorkers(s.queryWorkers))
	}
	return engine.New(pi, opts...)
}

// SetBackupRoot enables POST /v1/admin/backup and confines its
// destinations to subdirectories of root. Until set the endpoint answers
// 403: accepting arbitrary server-side paths would let any client that
// can reach the API create directories and write store-content files
// anywhere the process can.
//
// Deprecated: set Config.BackupRoot instead.
func (s *Server) SetBackupRoot(root string) { s.backupRoot = root }

// SetDraining flips the readiness probe: a draining server answers 503
// on /readyz so load balancers stop routing to it, while in-flight and
// new requests still complete. Safe to call at any time.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Draining reports whether the server is draining.
func (s *Server) Draining() bool { return s.draining.Load() }

// Put stores an instance under a name, replacing any previous one. The
// instance must not be mutated afterwards. With the durable store
// backing the catalog, durability gates acceptance: a write the store
// rejects (degraded read-only mode, append failure) is not installed in
// memory either, so the served catalog never silently diverges from
// disk — the error matches store.ErrDegraded when the store has flipped
// read-only. In legacy flat-file mode the in-memory catalog is updated
// first and the error reports the persistence outcome.
func (s *Server) Put(name string, pi *core.ProbInstance) error {
	if s.persistent() && !validName(name) {
		return fmt.Errorf("server: name %q not storable (use [A-Za-z0-9_-])", name)
	}
	if s.store != nil {
		if err := s.store.Put(name, pi); err != nil {
			return err
		}
		s.mu.Lock()
		s.mutateEnginesLocked(func(m map[string]*engine.Engine) { m[name] = s.newEngine(name, pi) })
		s.mu.Unlock()
		return nil
	}
	s.mu.Lock()
	s.mutateEnginesLocked(func(m map[string]*engine.Engine) { m[name] = s.newEngine(name, pi) })
	s.mu.Unlock()
	return s.persist(name, pi)
}

// Get returns the named instance.
func (s *Server) Get(name string) (*core.ProbInstance, bool) {
	eng, ok := s.Engine(name)
	if !ok {
		return nil, false
	}
	return eng.Instance(), true
}

// engineMap returns the published engine registry. The map is immutable;
// mutators publish successors via mutateEnginesLocked.
func (s *Server) engineMap() map[string]*engine.Engine {
	return *s.engines.Load()
}

// mutateEnginesLocked publishes a copy-on-write successor of the engine
// registry transformed by fn. Callers hold s.mu.
func (s *Server) mutateEnginesLocked(fn func(m map[string]*engine.Engine)) {
	cur := s.engineMap()
	m := make(map[string]*engine.Engine, len(cur)+1)
	for k, v := range cur {
		m[k] = v
	}
	fn(m)
	s.engines.Store(&m)
}

// Engine returns the named instance's query engine. The fast path is
// one atomic registry load — no locks. On a store-backed server a name
// that is live in the store but has no engine yet (cold start, or a
// follower apply that outpaced queries) gets one built and published on
// first touch.
func (s *Server) Engine(name string) (*engine.Engine, bool) {
	if eng, ok := s.engineMap()[name]; ok {
		return eng, true
	}
	if s.store == nil {
		return nil, false
	}
	pi, ok := s.store.Get(name)
	if !ok {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if eng, ok := s.engineMap()[name]; ok {
		return eng, true
	}
	eng := s.newEngine(name, pi)
	s.mutateEnginesLocked(func(m map[string]*engine.Engine) { m[name] = eng })
	return eng, true
}

// Delete removes the named instance, reporting whether it existed. Like
// Put, the durable store is consulted first: a degraded store rejects
// the delete (error matching store.ErrDegraded) and the instance stays
// served, rather than vanishing from memory only to resurrect from disk
// on the next restart.
func (s *Server) Delete(name string) (bool, error) {
	var existed bool
	if s.store != nil {
		// Existence comes from the store's catalog, not the engine map:
		// with lazily built engines, a recovered instance that was never
		// queried has no engine yet but very much exists.
		_, existed = s.store.Version(name)
		if err := s.store.Delete(name); err != nil {
			return false, err
		}
	}
	s.mu.Lock()
	_, ok := s.engineMap()[name]
	if ok {
		s.mutateEnginesLocked(func(m map[string]*engine.Engine) { delete(m, name) })
	}
	s.mu.Unlock()
	existed = existed || ok
	// Bump the version so any future engine for this name starts under a
	// fresh cache prefix; the dropped engine's entries are already
	// unreachable and will age out of the LRU.
	s.version.Add(1)
	if existed && s.store == nil {
		s.unpersist(name)
	}
	return existed, nil
}

// Close stops the telemetry flush loop (after one final flush), stops
// the replication puller on a follower, and releases the persistence
// backend (flushing the WAL when the store is in use). The catalog
// keeps serving from memory afterwards, but further writes are no
// longer durable.
func (s *Server) Close() error {
	if s.exp != nil {
		s.exp.Stop()
		s.exp = nil
	}
	s.stopProber()
	s.stopFollower()
	if s.store != nil {
		return s.store.Close()
	}
	return nil
}

// persistent reports whether stored names must map to durable artifacts,
// and hence are restricted to [A-Za-z0-9_-]+.
func (s *Server) persistent() bool { return s.store != nil || s.dir != "" }

// Names returns the stored names, sorted. Lock-free: the store's
// catalog (which caches its sorted key list per epoch) on store-backed
// servers, the published engine registry otherwise.
func (s *Server) Names() []string {
	if s.store != nil {
		return s.store.Names()
	}
	em := s.engineMap()
	out := make([]string, 0, len(em))
	for n := range em {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Handler returns the HTTP handler for the catalog. The API lives under
// /v1/; unversioned legacy paths answer 308 Permanent Redirect onto
// their /v1 equivalent (method- and body-preserving, so old clients that
// follow redirects keep working). API routes run under the full
// hardening stack — request metrics, optional structured logging, panic
// recovery, per-tenant admission, the in-flight limiter, and the
// per-request deadline; each route also records into its own percentile
// timer (http_latency.<endpoint>). The /healthz and /readyz probes sit
// outside the limiter, deadline, and admission so they keep answering
// when the API is saturated.
func (s *Server) Handler() http.Handler {
	// route tags a handler with its per-endpoint percentile timer.
	route := func(endpoint string, h http.HandlerFunc) http.HandlerFunc {
		t := s.reg.Timer("http_latency." + endpoint)
		return func(w http.ResponseWriter, r *http.Request) {
			start := time.Now()
			h(w, r)
			t.Observe(time.Since(start))
		}
	}
	api := http.NewServeMux()
	api.HandleFunc("GET /instances", route("list", s.handleList))
	api.HandleFunc("PUT /instances/{name}", route("put", s.handlePut))
	api.HandleFunc("GET /instances/{name}", route("get", s.handleGet))
	api.HandleFunc("DELETE /instances/{name}", route("delete", s.handleDelete))
	api.HandleFunc("GET /instances/{name}/dot", route("dot", s.handleDot))
	api.HandleFunc("POST /instances/{name}/query", route("query", s.handleQuery))
	api.HandleFunc("POST /instances/{name}/batch", route("batch", s.handleBatch))
	api.HandleFunc("GET /metrics", route("metrics", s.handleMetrics))
	api.HandleFunc("POST /admin/backup", route("backup", s.handleBackup))
	api.HandleFunc("POST /admin/scrub", route("scrub", s.handleScrub))
	api.HandleFunc("POST /admin/promote", route("promote", s.handlePromote))
	api.HandleFunc("POST /admin/demote", route("demote", s.handleDemote))
	api.HandleFunc("GET /admin/quotas", route("quotas", s.handleQuotasGet))
	api.HandleFunc("PUT /admin/quotas", route("quotas", s.handleQuotasPut))

	root := http.NewServeMux()
	root.HandleFunc("GET /healthz", s.handleHealthz)
	root.HandleFunc("GET /readyz", s.handleReadyz)
	// Replication sits outside admission, the inflight limiter, and the
	// request deadline: a follower long-polling the tail must not burn a
	// serving slot or be cut off mid-poll. The bearer token (when
	// configured) gates it instead.
	root.HandleFunc("GET "+repl.StreamPath, route("repl_stream", s.handleReplStream))
	root.HandleFunc("GET "+repl.BootstrapPath, route("repl_bootstrap", s.handleReplBootstrap))
	root.HandleFunc("GET "+repl.EpochPath, route("repl_epoch", s.handleReplEpoch))
	// Admission sits in front of the global limiter: a tenant over its
	// quota is rejected before it can occupy one of the shared slots.
	root.Handle(apiv1.Prefix+"/",
		s.authAdmin(s.admit(s.limitInflight(s.withDeadline(http.StripPrefix(apiv1.Prefix, api))))))
	root.HandleFunc("/", s.redirectLegacy)
	return s.instrument(s.recoverPanics(root))
}

// redirectLegacy maps the pre-v1 unversioned API paths onto /v1 with a
// 308 Permanent Redirect, which preserves method and body — a legacy
// client that follows redirects (Go's default http.Client does) keeps
// working unchanged.
func (s *Server) redirectLegacy(w http.ResponseWriter, r *http.Request) {
	// The escaped path keeps encoded separators intact (%2F must not
	// become a real "/" and change how the v1 mux splits segments).
	p := r.URL.EscapedPath()
	switch {
	case p == "/instances" || strings.HasPrefix(p, "/instances/"),
		p == "/metrics",
		strings.HasPrefix(p, "/admin/"):
		target := apiv1.Prefix + p
		if r.URL.RawQuery != "" {
			target += "?" + r.URL.RawQuery
		}
		http.Redirect(w, r, target, http.StatusPermanentRedirect)
	default:
		apiv1.WriteError(w, http.StatusNotFound, apiv1.CodeNotFound,
			fmt.Sprintf("no route %s (the API lives under %s)", r.URL.Path, apiv1.Prefix))
	}
}

// tenantFromPath extracts the admission tenant from a v1 request path:
// the instance name for /v1/instances/{name}[/...], "" for everything
// else (catalog listing, metrics, admin).
func tenantFromPath(p string) string {
	p = strings.TrimPrefix(p, apiv1.Prefix)
	p = strings.TrimPrefix(p, "/instances/")
	if i := strings.IndexByte(p, '/'); i >= 0 {
		p = p[:i]
	}
	return p
}

// admit runs the per-tenant admission tier: token-bucket quotas first,
// weighted fair sharing of the inflight capacity under overload second.
// Shed requests answer 429 with the structured envelope and a
// Retry-After hint and never reach the shared limiter.
func (s *Server) admit(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Admin endpoints bypass admission: operators must be able to
		// inspect and loosen quotas while the server is shedding.
		if strings.HasPrefix(r.URL.Path, apiv1.Prefix+"/admin/") {
			next.ServeHTTP(w, r)
			return
		}
		tenant := tenantFromPath(r.URL.Path)
		d := s.adm.Admit(tenant)
		if !d.OK {
			s.shed.Inc()
			code := apiv1.CodeQuotaExceeded
			msg := fmt.Sprintf("tenant %q over its request quota, retry later", tenant)
			if d.Reason == "overload" {
				code = apiv1.CodeOverloaded
				msg = fmt.Sprintf("server overloaded and tenant %q is over its fair share, retry later", tenant)
			}
			apiv1.WriteErrorRetry(w, http.StatusTooManyRequests, code, msg, d.RetryAfter)
			return
		}
		defer s.adm.Release(tenant)
		next.ServeHTTP(w, r)
	})
}

// statusRecorder captures the status code and body size a handler wrote.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
	wrote  bool
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.wrote = true
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	r.wrote = true
	n, err := r.ResponseWriter.Write(b)
	r.bytes += n
	return n, err
}

// recoverPanics converts a handler panic into a 500 (when the response
// has not started) plus a counter and a log line, so one bad request
// cannot take down the daemon. http.ErrAbortHandler keeps its meaning.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			if v == http.ErrAbortHandler {
				panic(v)
			}
			s.panics.Inc()
			if s.log != nil {
				s.log.Error("handler panic",
					"method", r.Method, "path", r.URL.Path,
					"panic", fmt.Sprint(v), "stack", string(debug.Stack()))
			}
			if rec, ok := w.(*statusRecorder); !ok || !rec.wrote {
				httpError(w, http.StatusInternalServerError, apiv1.CodeInternal, fmt.Errorf("internal error"))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// limitInflight sheds requests beyond the SetMaxInflight cap with 429 +
// Retry-After instead of queueing without bound: under overload it is
// better to fail a few requests fast than to slow every request down.
func (s *Server) limitInflight(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.sem == nil {
			next.ServeHTTP(w, r)
			return
		}
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
			next.ServeHTTP(w, r)
		default:
			s.shed.Inc()
			w.Header().Set("Retry-After", "1")
			apiv1.WriteErrorRetry(w, http.StatusTooManyRequests, apiv1.CodeOverloaded,
				fmt.Sprintf("server overloaded (%d requests in flight), retry later", cap(s.sem)), time.Second)
		}
	})
}

// withDeadline bounds the request with SetRequestTimeout via the context
// every engine call already honors; an expired deadline surfaces as 503
// through overloadStatus.
func (s *Server) withDeadline(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.reqTimeout <= 0 {
			next.ServeHTTP(w, r)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.reqTimeout)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"uptime_s": time.Since(s.started).Seconds(),
	})
}

// handleReadyz reports whether this server should receive traffic: not
// while draining for shutdown, and not ready for writes once the store
// has degraded (readiness is the operator's signal to fail over).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	if s.store != nil {
		if h := s.store.Health(); h.Degraded {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"status": "degraded",
				"reason": h.Reason,
			})
			return
		}
		if fenced, epoch, leader := s.store.Fenced(); fenced {
			// A fenced ex-leader still serves reads, but readiness is the
			// routing signal and writes belong on the successor.
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"status": "fenced",
				"epoch":  epoch,
				"leader": leader,
			})
			return
		}
	}
	if f := s.follower.Load(); f != nil {
		st := f.puller.Status()
		if st.Diverged {
			// Sticky: a diverged replica must never serve spliced history;
			// an operator re-bootstraps it.
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"status": "diverged",
				"reason": st.LastErr,
			})
			return
		}
		if !f.puller.Ready(f.maxStaleness) {
			stale := st.Staleness(time.Now()).Seconds()
			if stale > (365 * 24 * time.Hour).Seconds() {
				stale = -1 // never synced
			}
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"status":      "replica_stale",
				"staleness_s": stale,
				"lag_bytes":   st.LagBytes,
				"max_s":       f.maxStaleness.Seconds(),
			})
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
}

// instrument wraps the mux with request counting, latency observation and
// optional structured logging.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		s.inflight.Inc()
		defer s.inflight.Dec()
		next.ServeHTTP(rec, r)
		d := time.Since(start)
		s.requests.Inc()
		s.latency.Observe(d)
		if rec.status >= 400 {
			s.errors.Inc()
		}
		if s.log != nil {
			s.log.Info("request",
				"method", r.Method,
				"path", r.URL.Path,
				"status", rec.status,
				"bytes", rec.bytes,
				"duration_ms", float64(d)/float64(time.Millisecond),
				"remote", r.RemoteAddr,
			)
		}
	})
}

type listEntry struct {
	Name    string `json:"name"`
	Root    string `json:"root"`
	Objects int    `json:"objects"`
	Edges   int    `json:"edges"`
	Depth   int    `json:"depth"`
	Tree    bool   `json:"tree"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	// The registry map is immutable once published — iterate it
	// directly, no lock, no copy. Store-backed servers list the store's
	// catalog instead (engines build lazily, so the registry alone may
	// under-report); Engine materializes any not-yet-built entry.
	engines := s.engineMap()
	if s.store != nil {
		names := s.store.Names()
		engines = make(map[string]*engine.Engine, len(names))
		for _, name := range names {
			if eng, ok := s.Engine(name); ok {
				engines[name] = eng
			}
		}
	}
	entries := make([]listEntry, 0, len(engines))
	for name, eng := range engines {
		pi := eng.Instance()
		st := pi.ComputeStats()
		entries = append(entries, listEntry{
			Name: name, Root: pi.Root(),
			Objects: st.Objects, Edges: st.Edges, Depth: st.Depth,
			Tree: eng.IsTree(),
		})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	writeJSON(w, http.StatusOK, entries)
}

// updateRuntimeGauges refreshes the Go runtime gauges in the server
// registry — heap occupancy, cumulative GC pause time, goroutine count —
// so /metrics always reports a current reading.
func (s *Server) updateRuntimeGauges() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.reg.Gauge("runtime_heap_alloc_bytes").Set(int64(ms.HeapAlloc))
	s.reg.Gauge("runtime_heap_sys_bytes").Set(int64(ms.HeapSys))
	s.reg.Gauge("runtime_gc_pause_total_ns").Set(int64(ms.PauseTotalNs))
	s.reg.Gauge("runtime_num_gc").Set(int64(ms.NumGC))
	s.reg.Gauge("runtime_goroutines").Set(int64(runtime.NumGoroutine()))
}

// metricsSchemaVersion identifies the /v1/metrics payload layout.
// Bump it on any breaking change to section names or field meanings;
// additive fields inside sections do not require a bump. The section
// order below is part of the schema and is stable because the payload
// is a struct (encoding/json emits fields in declaration order).
const metricsSchemaVersion = 1

// metricsPayload is the GET /v1/metrics response. See docs/API.md.
type metricsPayload struct {
	SchemaVersion int                 `json:"schema_version"`
	UptimeS       float64             `json:"uptime_s"`
	Server        map[string]any      `json:"server"`
	Admission     *admission.Snapshot `json:"admission,omitempty"`
	Telemetry     *telemetryStatus    `json:"telemetry,omitempty"`
	Store         map[string]any      `json:"store,omitempty"`
	Replication   *replMetrics        `json:"replication,omitempty"`
	Governor      *governorStatus     `json:"governor,omitempty"`
	ResultCache   any                 `json:"result_cache"`
	Instances     map[string]any      `json:"instances"`
}

// governorStatus summarises the runaway-query protection for
// /v1/metrics: the configured per-query budget and the live
// circuit-breaker states, keyed <instance>.<shape>. Present only when
// either is enabled.
type governorStatus struct {
	QueryDeadlineS float64                         `json:"query_deadline_s,omitempty"`
	QueryMaxNodes  int64                           `json:"query_max_nodes,omitempty"`
	QueryMaxBytes  int64                           `json:"query_max_bytes,omitempty"`
	Breaker        map[string]govern.BreakerStatus `json:"breaker,omitempty"`
}

// telemetryStatus summarises the statsd exporter's configuration and
// delivery counters for /v1/metrics.
type telemetryStatus struct {
	Addr           string  `json:"addr"`
	Network        string  `json:"network"`
	IntervalS      float64 `json:"interval_s"`
	Flushes        int64   `json:"flushes"`
	DroppedFlushes int64   `json:"dropped_flushes"`
	Bytes          int64   `json:"bytes"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.updateRuntimeGauges()
	// Publish breaker states as gauges (closed=0, half-open=1, open=2),
	// keyed <instance>.<shape>, so the statsd stream and alerting see
	// transitions too.
	if s.breaker != nil {
		for key := range s.breaker.Status() {
			s.reg.Gauge("breaker_state." + key).Set(int64(s.breaker.StateOf(key)))
		}
	}
	// Live engines only: a lazily loaded instance that was never queried
	// has no engine and no per-engine metrics to report.
	em := s.engineMap()
	insts := make(map[string]any, len(em))
	for name, eng := range em {
		insts[name] = eng.Metrics()
	}
	payload := metricsPayload{
		SchemaVersion: metricsSchemaVersion,
		UptimeS:       time.Since(s.started).Seconds(),
		Server:        s.reg.Snapshot(),
		ResultCache:   s.results.Stats(),
		Instances:     insts,
	}
	if s.adm != nil {
		snap := s.adm.State()
		payload.Admission = &snap
	}
	if s.exp != nil {
		network := s.expCfg.Network
		if network == "" {
			network = "udp"
		}
		interval := s.expCfg.Interval
		if interval <= 0 {
			interval = 10 * time.Second
		}
		payload.Telemetry = &telemetryStatus{
			Addr:           s.expCfg.Addr,
			Network:        network,
			IntervalS:      interval.Seconds(),
			Flushes:        s.reg.Counter("telemetry_flushes").Value(),
			DroppedFlushes: s.reg.Counter("telemetry_dropped_flushes").Value(),
			Bytes:          s.reg.Counter("telemetry_bytes").Value(),
		}
	}
	if s.store != nil {
		payload.Store = map[string]any{
			"dir":       s.store.Dir(),
			"wal_bytes": s.store.WALSize(),
			"instances": s.store.Len(),
			"health":    s.store.Health(),
		}
	}
	payload.Replication = s.replSection()
	if !s.budget.IsZero() || s.breaker != nil {
		g := &governorStatus{
			QueryDeadlineS: s.budget.Deadline.Seconds(),
			QueryMaxNodes:  s.budget.MaxSteps,
			QueryMaxBytes:  s.budget.MaxBytes,
		}
		if s.breaker != nil {
			g.Breaker = s.breaker.Status()
		}
		payload.Governor = g
	}
	writeJSON(w, http.StatusOK, payload)
}

// handleQuotasGet reports the live admission configuration and per-tenant
// state (token balances, inflight counts).
func (s *Server) handleQuotasGet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.adm.State())
}

// quotasRequest is the PUT /v1/admin/quotas body: a full replacement of
// the default quota and the per-tenant table.
type quotasRequest struct {
	Default admission.Quota            `json:"default_quota"`
	Tenants map[string]admission.Quota `json:"tenants"`
}

// handleQuotasPut replaces the admission quota table at runtime. Shed and
// admit counters carry over; bucket levels are re-capped to the new
// bursts so a tightened quota bites immediately.
func (s *Server) handleQuotasPut(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxStatementBytes))
	if err != nil {
		httpDecodeError(w, err)
		return
	}
	var req quotasRequest
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, apiv1.CodeInvalidRequest, fmt.Errorf("decode quotas: %w", err))
		return
	}
	if err := s.adm.Reload(req.Default, req.Tenants); err != nil {
		httpError(w, http.StatusBadRequest, apiv1.CodeInvalidRequest, err)
		return
	}
	if s.log != nil {
		s.log.Info("admission quotas reloaded", "tenants", len(req.Tenants))
	}
	writeJSON(w, http.StatusOK, s.adm.State())
}

// httpWriteError maps a persistence-write failure onto the envelope:
// writes against a degraded (read-only) store are 503 — the condition is
// the server's, not the request's — a follower's read-only refusal is a
// 409 (the handler normally 307s writes away before this can happen),
// and anything else stays a 500.
func httpWriteError(w http.ResponseWriter, err error) {
	if errors.Is(err, store.ErrDegraded) {
		apiv1.WriteErrorRetry(w, http.StatusServiceUnavailable, apiv1.CodeDegraded, err.Error(), time.Second)
		return
	}
	if errors.Is(err, store.ErrFollowerReadOnly) {
		httpError(w, http.StatusConflict, apiv1.CodeConflict, err)
		return
	}
	if errors.Is(err, store.ErrEpochFenced) {
		// A fenced ex-leader without a known successor cannot redirect;
		// the hard backstop is this typed rejection — a superseded node
		// never acknowledges a write.
		httpError(w, http.StatusConflict, apiv1.CodeEpochFenced, err)
		return
	}
	httpError(w, http.StatusInternalServerError, apiv1.CodeInternal, err)
}

// breakerKey names one circuit: statement shape scoped by instance, so a
// width-bomb tripping "point" on one instance never sheds point queries
// on healthy instances. The key doubles as the breaker_state.<key> gauge
// suffix in /v1/metrics.
func breakerKey(instance, shape string) string {
	return instance + "." + shape
}

// isBreakerTrip classifies one statement outcome for the circuit
// breaker: budget exhaustion, a provably-intractable refusal, an expired
// deadline, and a contained evaluation panic all count as trips — they
// are the server protecting itself from the statement. A client that
// went away (context.Canceled) is not the statement's fault and must not
// open the breaker for everyone else.
func isBreakerTrip(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) {
		return false
	}
	return errors.Is(err, govern.ErrBudgetExceeded) ||
		errors.Is(err, govern.ErrIntractable) ||
		errors.Is(err, engine.ErrQueryPanic) ||
		errors.Is(err, context.DeadlineExceeded)
}

// countQueryError tallies one failed statement on the governor counters.
func (s *Server) countQueryError(err error) {
	switch {
	case errors.Is(err, govern.ErrIntractable):
		s.qIntract.Inc()
	case errors.Is(err, govern.ErrBudgetExceeded):
		s.qBudget.Inc()
	case errors.Is(err, engine.ErrQueryPanic):
		s.qPanic.Inc()
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		s.qCancel.Inc()
	}
}

// httpQueryError maps a statement failure onto the envelope. Governor
// refusals keep their retry semantics on the wire: an intractable
// statement is a 422 (retrying the same statement cannot succeed), a
// runtime budget trip is a 503 with Retry-After (a cheaper variant may
// fit), a contained evaluation panic is a 500. An expired per-request
// deadline (or a caller that went away) is 503 so clients and load
// balancers treat it as server pressure, not statement error.
func httpQueryError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, govern.ErrIntractable):
		apiv1.WriteError(w, http.StatusUnprocessableEntity, apiv1.CodeIntractable, err.Error())
	case errors.Is(err, govern.ErrBudgetExceeded):
		apiv1.WriteErrorRetry(w, http.StatusServiceUnavailable, apiv1.CodeBudgetExceeded, err.Error(), time.Second)
	case errors.Is(err, engine.ErrQueryPanic):
		apiv1.WriteError(w, http.StatusInternalServerError, apiv1.CodeInternal, err.Error())
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		apiv1.WriteErrorRetry(w, http.StatusServiceUnavailable, apiv1.CodeTimeout, err.Error(), time.Second)
	default:
		httpError(w, http.StatusUnprocessableEntity, apiv1.CodeStatementFailed, err)
	}
}

// httpDecodeError maps a body-read/decode error onto the envelope:
// oversized bodies (cut off by MaxBytesReader) are 413, anything else 400.
func httpDecodeError(w http.ResponseWriter, err error) {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		httpError(w, http.StatusRequestEntityTooLarge, apiv1.CodeBodyTooLarge, err)
		return
	}
	httpError(w, http.StatusBadRequest, apiv1.CodeInvalidRequest, err)
}

func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) {
	if s.redirectToLeader(w, r) {
		return
	}
	name := r.PathValue("name")
	// Read fully before decoding so an oversized body is always reported
	// as 413 rather than as whatever parse error the truncation causes.
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		httpDecodeError(w, err)
		return
	}
	var pi *core.ProbInstance
	if strings.Contains(r.Header.Get("Content-Type"), "json") {
		pi, err = codec.DecodeJSON(bytes.NewReader(raw))
	} else {
		pi, err = codec.DecodeText(bytes.NewReader(raw))
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, apiv1.CodeInvalidRequest, err)
		return
	}
	if err := pi.ValidateLite(); err != nil {
		httpError(w, http.StatusUnprocessableEntity, apiv1.CodeInvalidInstance, fmt.Errorf("instance invalid: %w", err))
		return
	}
	if s.persistent() && !validName(name) {
		httpError(w, http.StatusBadRequest, apiv1.CodeInvalidRequest, fmt.Errorf("name %q not storable (use [A-Za-z0-9_-])", name))
		return
	}
	if err := s.Put(name, pi); err != nil {
		httpWriteError(w, err)
		return
	}
	s.stampEpoch(w)
	writeJSON(w, http.StatusCreated, map[string]any{"name": name, "objects": pi.NumObjects()})
}

// stampEpoch marks a successful write acknowledgement with the leader
// epoch it was committed under, so clients (and the failover chaos
// harness) can prove no two epochs ever acknowledged writes
// concurrently.
func (s *Server) stampEpoch(w http.ResponseWriter) {
	if s.store != nil {
		w.Header().Set(repl.HeaderEpoch, strconv.FormatUint(s.store.Epoch(), 10))
	}
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	pi, ok := s.Get(r.PathValue("name"))
	if !ok {
		httpError(w, http.StatusNotFound, apiv1.CodeNotFound, fmt.Errorf("no instance %q", r.PathValue("name")))
		return
	}
	if strings.Contains(r.Header.Get("Accept"), "json") {
		w.Header().Set("Content-Type", "application/json")
		if err := codec.EncodeJSON(w, pi); err != nil {
			httpError(w, http.StatusInternalServerError, apiv1.CodeInternal, err)
		}
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := codec.EncodeText(w, pi); err != nil {
		httpError(w, http.StatusInternalServerError, apiv1.CodeInternal, err)
	}
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if s.redirectToLeader(w, r) {
		return
	}
	ok, err := s.Delete(r.PathValue("name"))
	if err != nil {
		httpWriteError(w, err)
		return
	}
	if !ok {
		httpError(w, http.StatusNotFound, apiv1.CodeNotFound, fmt.Errorf("no instance %q", r.PathValue("name")))
		return
	}
	s.stampEpoch(w)
	w.WriteHeader(http.StatusNoContent)
}

// handleBackup takes an online backup of the durable store into a
// subdirectory of the configured backup root named by the request. The
// client chooses only the name; the server chooses the filesystem
// location, and the endpoint is disabled entirely until SetBackupRoot —
// an unrestricted destination would be a filesystem-write primitive for
// anyone who can reach the API. The destination must be empty or absent;
// writes keep flowing while the backup is cut (see store.Backup). The
// response is the backup's manifest — everything a later pxmlbackup
// verify/restore needs to know about what was captured.
func (s *Server) handleBackup(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		httpError(w, http.StatusConflict, apiv1.CodeConflict, fmt.Errorf("server has no durable store to back up"))
		return
	}
	if s.backupRoot == "" {
		httpError(w, http.StatusForbidden, apiv1.CodeForbidden, fmt.Errorf("backup endpoint disabled: no backup root configured (start pxmld with -backup-dir)"))
		return
	}
	var req struct {
		Dir string `json:"dir"`
	}
	req.Dir = r.URL.Query().Get("dir")
	if r.Body != nil && req.Dir == "" {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxStatementBytes))
		if err != nil {
			httpDecodeError(w, err)
			return
		}
		if len(body) > 0 {
			if err := json.Unmarshal(body, &req); err != nil {
				httpError(w, http.StatusBadRequest, apiv1.CodeInvalidRequest, fmt.Errorf("decode backup request: %w", err))
				return
			}
		}
	}
	if req.Dir == "" {
		httpError(w, http.StatusBadRequest, apiv1.CodeInvalidRequest, fmt.Errorf("backup needs a destination name (?dir= or JSON {\"dir\": ...}) relative to the server's backup root"))
		return
	}
	dest, err := resolveBackupDir(s.backupRoot, req.Dir)
	if err != nil {
		httpError(w, http.StatusBadRequest, apiv1.CodeInvalidRequest, err)
		return
	}
	man, err := s.store.Backup(dest)
	if err != nil {
		httpError(w, http.StatusInternalServerError, apiv1.CodeInternal, err)
		return
	}
	if s.log != nil {
		s.log.Info("backup complete", "dir", dest, "instances", man.Instances, "pos", man.Pos.String())
	}
	writeJSON(w, http.StatusOK, man)
}

// resolveBackupDir maps a client-supplied backup name onto a directory
// under root, rejecting anything that could land outside it: absolute
// paths, any ".." component, or a name that resolves to the root itself.
func resolveBackupDir(root, name string) (string, error) {
	if filepath.IsAbs(name) {
		return "", fmt.Errorf("backup destination %q must be relative to the server's backup root", name)
	}
	clean := filepath.Clean(name)
	if clean == "." || clean == ".." || strings.HasPrefix(clean, ".."+string(filepath.Separator)) {
		return "", fmt.Errorf("backup destination %q escapes the server's backup root", name)
	}
	return filepath.Join(root, clean), nil
}

// handleScrub runs a synchronous full verification pass over the store's
// at-rest files. Corruption degrades the store (readyz flips) and comes
// back as a 500 so the caller knows restoration is now the job at hand.
func (s *Server) handleScrub(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		httpError(w, http.StatusConflict, apiv1.CodeConflict, fmt.Errorf("server has no durable store to scrub"))
		return
	}
	if err := s.store.Scrub(); err != nil {
		httpError(w, http.StatusInternalServerError, apiv1.CodeInternal, err)
		return
	}
	h := s.store.Health()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":       "ok",
		"scrub_passes": h.ScrubPasses,
	})
}

func (s *Server) handleDot(w http.ResponseWriter, r *http.Request) {
	pi, ok := s.Get(r.PathValue("name"))
	if !ok {
		httpError(w, http.StatusNotFound, apiv1.CodeNotFound, fmt.Errorf("no instance %q", r.PathValue("name")))
		return
	}
	w.Header().Set("Content-Type", "text/vnd.graphviz; charset=utf-8")
	io.WriteString(w, dot.Weak(pi))
}

type queryResponse struct {
	Text   string   `json:"text"`
	Prob   *float64 `json:"prob,omitempty"`
	Stored string   `json:"stored,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	// A query that stores its result writes; on a follower it belongs on
	// the leader. Plain queries serve locally — that is the point of a
	// read replica.
	if r.URL.Query().Get("store") != "" && s.redirectToLeader(w, r) {
		return
	}
	eng, ok := s.Engine(r.PathValue("name"))
	if !ok {
		httpError(w, http.StatusNotFound, apiv1.CodeNotFound, fmt.Errorf("no instance %q", r.PathValue("name")))
		return
	}
	stmt, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxStatementBytes))
	if err != nil {
		httpDecodeError(w, err)
		return
	}
	// The breaker key scopes by instance as well as shape: repeated trips
	// on one instance must not shed the same statement shape on healthy
	// instances.
	key := breakerKey(r.PathValue("name"), pxql.ClassifyShape(string(stmt)))
	if allowed, retry := s.breaker.Allow(key); !allowed {
		s.breakerShed.Inc()
		apiv1.WriteErrorRetry(w, http.StatusServiceUnavailable, apiv1.CodeBreakerOpen,
			fmt.Sprintf("circuit breaker open for %q statements (repeated budget trips)", key), retry)
		return
	}
	res, err := eng.Run(r.Context(), string(stmt))
	s.breaker.Record(key, isBreakerTrip(err))
	if err != nil {
		s.countQueryError(err)
		httpQueryError(w, err)
		return
	}
	resp := queryResponse{Text: res.Text, Prob: res.Prob}
	if store := r.URL.Query().Get("store"); store != "" {
		if res.Instance == nil {
			httpError(w, http.StatusBadRequest, apiv1.CodeInvalidRequest, fmt.Errorf("statement produced no instance to store"))
			return
		}
		if s.persistent() && !validName(store) {
			httpError(w, http.StatusBadRequest, apiv1.CodeInvalidRequest, fmt.Errorf("name %q not storable (use [A-Za-z0-9_-])", store))
			return
		}
		if err := s.Put(store, res.Instance); err != nil {
			httpWriteError(w, err)
			return
		}
		resp.Stored = store
	}
	writeJSON(w, http.StatusOK, resp)
}

type batchEntry struct {
	Statement string   `json:"statement"`
	Text      string   `json:"text,omitempty"`
	Prob      *float64 `json:"prob,omitempty"`
	Error     string   `json:"error,omitempty"`
}

// handleBatch evaluates many statements (one per non-blank line) against
// one instance, fanning them out over the engine's bounded worker pool.
// Per-statement failures are reported inline so one bad statement doesn't
// void the rest.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	eng, ok := s.Engine(r.PathValue("name"))
	if !ok {
		httpError(w, http.StatusNotFound, apiv1.CodeNotFound, fmt.Errorf("no instance %q", r.PathValue("name")))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxStatementBytes))
	if err != nil {
		httpDecodeError(w, err)
		return
	}
	var stmts []string
	for _, line := range strings.Split(string(body), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			stmts = append(stmts, line)
		}
	}
	if len(stmts) == 0 {
		httpError(w, http.StatusBadRequest, apiv1.CodeInvalidRequest, fmt.Errorf("empty batch"))
		return
	}
	// The breaker applies per statement, preserving input order: shed
	// statements report breaker_open inline and never reach the engine,
	// the rest run over the pool and feed their outcomes back.
	out := make([]batchEntry, len(stmts))
	shapes := make([]string, len(stmts))
	run := make([]string, 0, len(stmts))
	runIdx := make([]int, 0, len(stmts))
	for i, stmt := range stmts {
		out[i].Statement = stmt
		shapes[i] = breakerKey(r.PathValue("name"), pxql.ClassifyShape(stmt))
		if allowed, _ := s.breaker.Allow(shapes[i]); !allowed {
			s.breakerShed.Inc()
			out[i].Error = fmt.Sprintf("%s: circuit breaker open for %q statements", apiv1.CodeBreakerOpen, shapes[i])
			continue
		}
		run = append(run, stmt)
		runIdx = append(runIdx, i)
	}
	results := eng.RunBatch(r.Context(), run)
	for j, br := range results {
		i := runIdx[j]
		s.breaker.Record(shapes[i], isBreakerTrip(br.Err))
		if br.Err != nil {
			s.countQueryError(br.Err)
			out[i].Error = br.Err.Error()
			continue
		}
		out[i].Text = br.Result.Text
		out[i].Prob = br.Result.Prob
	}
	writeJSON(w, http.StatusOK, out)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// httpError writes the shared v1 error envelope (see apiv1).
func httpError(w http.ResponseWriter, status int, code string, err error) {
	apiv1.WriteError(w, status, code, err.Error())
}

// NewPersistent returns a catalog backed by the durable storage engine
// in dir: writes go through a write-ahead log with periodic snapshots,
// and startup runs crash recovery (replaying snapshot-then-WAL,
// quarantining corrupt records, truncating torn tails). A directory in
// the legacy flat-file layout is migrated on first open. Names are
// restricted to [A-Za-z0-9_-]+ to keep durable artifacts unambiguous.
//
// Deprecated: use New(Config{StoreDir: dir}).
func NewPersistent(dir string) (*Server, error) {
	return New(Config{StoreDir: dir})
}

// NewWithStore is NewPersistent with explicit store options, also
// returning the crash-recovery report. The server's metrics registry is
// installed into the options so store counters surface under /metrics.
//
// Deprecated: use New(Config{StoreDir: dir, StoreOptions: opts}) and
// read the report from RecoveryReport.
func NewWithStore(dir string, opts store.Options) (*Server, *store.RecoveryReport, error) {
	s, err := New(Config{StoreDir: dir, StoreOptions: opts})
	if err != nil {
		return nil, nil, err
	}
	return s, s.report, nil
}

// NewPersistentFiles returns a catalog backed by the legacy flat-file
// layout: every stored instance is written to <dir>/<name>.pxml (text
// encoding, fsynced and atomically renamed), deletes remove the file,
// and all existing files are loaded at startup. A file that fails to
// decode does not abort startup: it is logged and quarantined to
// <name>.pxml.corrupt. Names are restricted to [A-Za-z0-9_-]+ to keep
// the file mapping unambiguous.
//
// Deprecated: use New(Config{FilesDir: dir}).
func NewPersistentFiles(dir string) (*Server, error) {
	return New(Config{FilesDir: dir})
}

// loadFlatFiles wires up legacy flat-file persistence during New.
func (s *Server) loadFlatFiles(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("server: creating data dir: %w", err)
	}
	s.dir = dir
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("server: reading data dir: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".pxml") {
			continue
		}
		name := strings.TrimSuffix(e.Name(), ".pxml")
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		pi, err := codec.DecodeText(f)
		f.Close()
		if err != nil {
			// One damaged file must not take the whole catalog down:
			// set it aside for inspection and keep loading the rest.
			corrupt := path + ".corrupt"
			if rerr := os.Rename(path, corrupt); rerr != nil {
				return fmt.Errorf("server: quarantining corrupt %s: %w", e.Name(), rerr)
			}
			slog.Warn("corrupt instance file quarantined",
				"file", path, "quarantined_to", corrupt, "error", err)
			continue
		}
		s.mu.Lock()
		s.mutateEnginesLocked(func(m map[string]*engine.Engine) { m[name] = s.newEngine(name, pi) })
		s.mu.Unlock()
	}
	return nil
}

// validName reports whether a name is safe for persistent storage.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// persist writes the named instance to disk when legacy flat-file
// persistence is enabled. The temp file is fsynced before the rename and
// the directory entry after it; without both, a crash shortly after Put
// could leave a zero-length or unlinked file despite the rename being
// "atomic".
func (s *Server) persist(name string, pi *core.ProbInstance) error {
	if s.dir == "" {
		return nil
	}
	if !validName(name) {
		return fmt.Errorf("server: name %q not storable (use [A-Za-z0-9_-])", name)
	}
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := codec.EncodeText(tmp, pi); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, name+".pxml")); err != nil {
		return err
	}
	d, err := os.Open(s.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// unpersist removes the named instance's file when persistence is enabled.
func (s *Server) unpersist(name string) {
	if s.dir == "" || !validName(name) {
		return
	}
	_ = os.Remove(filepath.Join(s.dir, name+".pxml"))
}

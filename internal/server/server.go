// Package server exposes a catalog of named probabilistic instances over
// HTTP, turning the PXML library into a small probabilistic
// semistructured database service:
//
//	GET    /instances                 list instances with summary stats
//	PUT    /instances/{name}          store an instance (text or JSON body)
//	GET    /instances/{name}          fetch an instance (Accept: application/json for JSON)
//	DELETE /instances/{name}          drop an instance
//	GET    /instances/{name}/dot      Graphviz rendering of the weak graph
//	POST   /instances/{name}/query    execute one pxql statement (text body);
//	                                  ?store=<new> keeps an instance-valued
//	                                  result in the catalog under that name
//
// Query responses are JSON: {"text": ..., "prob": ..., "stored": ...}.
// The catalog is safe for concurrent use; instances are immutable once
// stored (queries never mutate their input — algebra results are fresh
// instances).
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"pxml/internal/codec"
	"pxml/internal/core"
	"pxml/internal/dot"
	"pxml/internal/pxql"
)

// maxBodyBytes bounds request bodies (instances and statements).
const maxBodyBytes = 64 << 20

// Server is a concurrency-safe catalog of named probabilistic instances,
// optionally backed by a directory (see NewPersistent).
type Server struct {
	mu        sync.RWMutex
	instances map[string]*core.ProbInstance
	dir       string
}

// New returns an empty catalog.
func New() *Server {
	return &Server{instances: make(map[string]*core.ProbInstance)}
}

// Put stores an instance under a name, replacing any previous one,
// ignoring any persistence error (the in-memory store is always updated).
// Use PutErr when the disk write outcome matters.
func (s *Server) Put(name string, pi *core.ProbInstance) {
	_ = s.PutErr(name, pi)
}

// PutErr is Put with the persistence error surfaced.
func (s *Server) PutErr(name string, pi *core.ProbInstance) error {
	s.mu.Lock()
	s.instances[name] = pi
	s.mu.Unlock()
	return s.persist(name, pi)
}

// Get returns the named instance.
func (s *Server) Get(name string) (*core.ProbInstance, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	pi, ok := s.instances[name]
	return pi, ok
}

// Delete removes the named instance, reporting whether it existed.
func (s *Server) Delete(name string) bool {
	s.mu.Lock()
	_, ok := s.instances[name]
	delete(s.instances, name)
	s.mu.Unlock()
	if ok {
		s.unpersist(name)
	}
	return ok
}

// Names returns the stored names, sorted.
func (s *Server) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.instances))
	for n := range s.instances {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Handler returns the HTTP handler for the catalog.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /instances", s.handleList)
	mux.HandleFunc("PUT /instances/{name}", s.handlePut)
	mux.HandleFunc("GET /instances/{name}", s.handleGet)
	mux.HandleFunc("DELETE /instances/{name}", s.handleDelete)
	mux.HandleFunc("GET /instances/{name}/dot", s.handleDot)
	mux.HandleFunc("POST /instances/{name}/query", s.handleQuery)
	return mux
}

type listEntry struct {
	Name    string `json:"name"`
	Root    string `json:"root"`
	Objects int    `json:"objects"`
	Edges   int    `json:"edges"`
	Depth   int    `json:"depth"`
	Tree    bool   `json:"tree"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	entries := make([]listEntry, 0, len(s.instances))
	for name, pi := range s.instances {
		st := pi.ComputeStats()
		entries = append(entries, listEntry{
			Name: name, Root: pi.Root(),
			Objects: st.Objects, Edges: st.Edges, Depth: st.Depth,
			Tree: pi.IsTree(),
		})
	}
	s.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	writeJSON(w, http.StatusOK, entries)
}

func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var pi *core.ProbInstance
	var err error
	if strings.Contains(r.Header.Get("Content-Type"), "json") {
		pi, err = codec.DecodeJSON(body)
	} else {
		pi, err = codec.DecodeText(body)
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if err := pi.ValidateLite(); err != nil {
		httpError(w, http.StatusUnprocessableEntity, fmt.Errorf("instance invalid: %w", err))
		return
	}
	if s.dir != "" && !validName(name) {
		httpError(w, http.StatusBadRequest, fmt.Errorf("name %q not storable (use [A-Za-z0-9_-])", name))
		return
	}
	if err := s.PutErr(name, pi); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"name": name, "objects": pi.NumObjects()})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	pi, ok := s.Get(r.PathValue("name"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no instance %q", r.PathValue("name")))
		return
	}
	if strings.Contains(r.Header.Get("Accept"), "json") {
		w.Header().Set("Content-Type", "application/json")
		if err := codec.EncodeJSON(w, pi); err != nil {
			httpError(w, http.StatusInternalServerError, err)
		}
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := codec.EncodeText(w, pi); err != nil {
		httpError(w, http.StatusInternalServerError, err)
	}
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if !s.Delete(r.PathValue("name")) {
		httpError(w, http.StatusNotFound, fmt.Errorf("no instance %q", r.PathValue("name")))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleDot(w http.ResponseWriter, r *http.Request) {
	pi, ok := s.Get(r.PathValue("name"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no instance %q", r.PathValue("name")))
		return
	}
	w.Header().Set("Content-Type", "text/vnd.graphviz; charset=utf-8")
	io.WriteString(w, dot.Weak(pi))
}

type queryResponse struct {
	Text   string   `json:"text"`
	Prob   *float64 `json:"prob,omitempty"`
	Stored string   `json:"stored,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	pi, ok := s.Get(r.PathValue("name"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no instance %q", r.PathValue("name")))
		return
	}
	stmt, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	res, err := pxql.Eval(pi, string(stmt))
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	resp := queryResponse{Text: res.Text, Prob: res.Prob}
	if store := r.URL.Query().Get("store"); store != "" {
		if res.Instance == nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("statement produced no instance to store"))
			return
		}
		s.Put(store, res.Instance)
		resp.Stored = store
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// NewPersistent returns a catalog backed by a directory: every stored
// instance is written to <dir>/<name>.pxml (text encoding, atomically via
// rename), deletes remove the file, and all existing files are loaded at
// startup. Names are restricted to [A-Za-z0-9_-]+ to keep the file mapping
// unambiguous.
func NewPersistent(dir string) (*Server, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: creating data dir: %w", err)
	}
	s := New()
	s.dir = dir
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("server: reading data dir: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".pxml") {
			continue
		}
		name := strings.TrimSuffix(e.Name(), ".pxml")
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		pi, err := codec.DecodeText(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("server: loading %s: %w", e.Name(), err)
		}
		s.instances[name] = pi
	}
	return s, nil
}

// validName reports whether a name is safe for persistent storage.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// persist writes the named instance to disk when persistence is enabled.
func (s *Server) persist(name string, pi *core.ProbInstance) error {
	if s.dir == "" {
		return nil
	}
	if !validName(name) {
		return fmt.Errorf("server: name %q not storable (use [A-Za-z0-9_-])", name)
	}
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := codec.EncodeText(tmp, pi); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(s.dir, name+".pxml"))
}

// unpersist removes the named instance's file when persistence is enabled.
func (s *Server) unpersist(name string) {
	if s.dir == "" || !validName(name) {
		return
	}
	_ = os.Remove(filepath.Join(s.dir, name+".pxml"))
}
